# plugvolt build / verification entry points.
#
# `make test-race` is the CI gate for the sharded characterization engine:
# the parallel sweep must stay data-race free (worker platforms are private;
# progress callbacks are serialized through the merge loop).

GO ?= go

.PHONY: build test test-race fuzz bench bench-json golden golden-update artifacts metrics-demo trace-demo fleet-demo fleet-stream-demo energy-demo

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race hygiene: vet plus the full suite under the race detector.
test-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzz pass over the grid codec, the shard merge ordering, and the
# compiled guard LUT's equivalence with the map-backed membership test.
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzGridJSONRoundTrip -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzRowMergeOrdering -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzGridFromJSON -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzLUTContainsEquivalence -fuzztime 10s
	$(GO) test ./internal/flight -run '^$$' -fuzz FuzzIncidentBundleDecode -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzRowMonotonicity -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Benchmark regression artifact: run the figure-level and hot-path
# benchmarks with enough repetition for benchstat, convert the output to
# JSON (raw text preserved in the "raw" field), and write the next numbered
# BENCH_<n>.json. The experiment-campaign benchmarks (E1-E3, ablations) are
# excluded: at -count 5 they run for tens of minutes without adding signal
# about the engine hot paths the artifact tracks. Compare artifacts with
#   go run ./cmd/plugvolt-bench -compare BENCH_0.json BENCH_1.json
# or feed the raw fields to benchstat (see EXPERIMENTS.md).
bench-json:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	{ $(GO) test -bench 'Fig|Table1MailboxCodec|CharacterizeWorkers|GuardPollSteadyState|FleetThroughput|FleetStreaming|EnergyAccounting|FlightRecorder|BisectVsSweep|AnnealTimeToFault' \
		-benchtime 300x -count 5 -run '^$$' -timeout 30m . ; \
	  $(GO) test -bench . -benchtime 300x -count 5 -run '^$$' \
		./internal/sim ./internal/timing ; } \
		| $(GO) run ./cmd/plugvolt-bench -o BENCH_$$n.json

# Golden-artifact conformance: re-derive figs 2-4 at 1/2/8 workers and diff
# bit-for-bit against artifacts/. golden-update rewrites the goldens after
# an intentional engine change.
golden:
	$(GO) test ./internal/golden -run Golden -v

golden-update:
	$(GO) test ./internal/golden -run Golden -update

# Regenerate the full experiment bundle (identical bytes for any -workers).
artifacts:
	$(GO) run ./cmd/plugvolt-report -out artifacts

# Observability demo: an attack-vs-guard run that dumps the Prometheus
# metric exposition, the structured event journal, and the victim core's
# operating-point trace, then shows the guard/attack highlights.
metrics-demo:
	$(GO) run ./cmd/plugvolt-guard -window 10ms \
		-metrics-out metrics.prom -events-out events.jsonl -trace trace.csv
	@echo
	@echo "== metrics.prom highlights"
	@grep -E '^(guard_|kernel_stolen|attack_)' metrics.prom | head -20
	@echo
	@echo "== first events"
	@head -5 events.jsonl

# Causal-trace demo: the same attack-vs-guard run with the SLO watchdog
# enabled, exporting the span trace as Chrome trace JSON (open trace.json
# at https://ui.perfetto.dev) and as a folded flamegraph (feed
# trace.folded to flamegraph.pl or speedscope). Exits non-zero if the
# guard misses an SLO.
trace-demo:
	$(GO) run ./cmd/plugvolt-guard -window 10ms -slo \
		-trace-out trace.json -folded-out trace.folded
	@echo
	@echo "== top folded stacks by self time"
	@sort -t' ' -k2 -rn trace.folded | head -8

# Energy demo: the guard's joule bill measured three ways — energy overhead
# of deploying the guard (printed next to the paper's 0.28% runtime
# overhead), the measured-vs-closed-form savings of the characterized safe
# undervolt versus a full clamp, and the per-governor energy curve.
energy-demo:
	$(GO) run ./cmd/plugvolt-overhead -energy

# Fleet demo: a 24-machine mixed fleet under a VoltJockey campaign, report
# and merged metric exposition written out. Rerun with any -workers value:
# fleet.json and fleet.prom are byte-identical (the PR 1 sharding invariant
# at fleet scale).
fleet-demo:
	$(GO) run ./cmd/plugvolt-fleet -machines 24 -attack voltjockey \
		-out fleet.json -metrics-out fleet.prom
	@echo
	@echo "== merged exposition highlights"
	@grep -E '^(guard_|attack_)' fleet.prom | head -12

# Streaming-engine demo: a checkpointed idle-guard fleet with the window
# sliced into epochs, O(batch) resident memory, and per-model rollups.
# Interrupt with ^C and rerun with -resume fleet.ckpt to continue; the
# final report is byte-identical to an uninterrupted run (EXPERIMENTS.md
# has the million-machine-window recipe).
fleet-stream-demo:
	$(GO) run ./cmd/plugvolt-fleet -stream -machines 1000 -epochs 4 \
		-attack none -window 2ms -batch 128 -progress \
		-checkpoint fleet.ckpt -out fleet.json -metrics-out fleet.prom
	@echo
	@echo "== merged exposition highlights"
	@grep -E '^guard_' fleet.prom | head -8
