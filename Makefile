# plugvolt build / verification entry points.
#
# `make test-race` is the CI gate for the sharded characterization engine:
# the parallel sweep must stay data-race free (worker platforms are private;
# progress callbacks are serialized through the merge loop).

GO ?= go

.PHONY: build test test-race fuzz bench golden golden-update artifacts metrics-demo

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race hygiene: vet plus the full suite under the race detector.
test-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzz pass over the grid codec and the shard merge ordering.
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzGridJSONRoundTrip -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzRowMergeOrdering -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzGridFromJSON -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Golden-artifact conformance: re-derive figs 2-4 at 1/2/8 workers and diff
# bit-for-bit against artifacts/. golden-update rewrites the goldens after
# an intentional engine change.
golden:
	$(GO) test ./internal/golden -run Golden -v

golden-update:
	$(GO) test ./internal/golden -run Golden -update

# Regenerate the full experiment bundle (identical bytes for any -workers).
artifacts:
	$(GO) run ./cmd/plugvolt-report -out artifacts

# Observability demo: an attack-vs-guard run that dumps the Prometheus
# metric exposition, the structured event journal, and the victim core's
# operating-point trace, then shows the guard/attack highlights.
metrics-demo:
	$(GO) run ./cmd/plugvolt-guard -window 10ms \
		-metrics-out metrics.prom -events-out events.jsonl -trace trace.csv
	@echo
	@echo "== metrics.prom highlights"
	@grep -E '^(guard_|kernel_stolen|attack_)' metrics.prom | head -20
	@echo
	@echo "== first events"
	@head -5 events.jsonl
