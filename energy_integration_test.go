package plugvolt_test

import (
	"math"
	"testing"

	"plugvolt"
	"plugvolt/internal/kernel"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

// runEnergyScenario is runInstrumentedScenario's energy twin: guarded Sky
// Lake under an LTpwn campaign, returning the live system for ledger
// inspection.
func runEnergyScenario(t *testing.T, seed int64) *plugvolt.System {
	t.Helper()
	sys, err := plugvolt.NewSystem("skylake", seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plugvolt.QuickSweep()
	cfg.Workers = 1
	grid, err := sys.Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plugvolt.NewV0LTpwn().Run(sys.Env(), guard.Name()); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(2 * sim.Millisecond)
	return sys
}

// The end-to-end energy invariants of an attacked, guarded system: the
// attribution closes exactly per core, interventions bill under their own
// kind, the modeled RAPL counters agree with the integrator, and the
// telemetry surface republishes the same ledgers.
func TestEnergyEndToEnd(t *testing.T) {
	sys := runEnergyScenario(t, 7)
	p := sys.Platform
	tr := p.Energy

	// Per-core closure, exact in integer picojoules.
	var guardTotalPJ, interventionPJ int64
	for c := 0; c < p.NumCores(); c++ {
		total := sys.Kernel.EnergyPJ(c)
		var sum int64
		for _, k := range kernel.CostKinds() {
			sum += sys.Kernel.EnergyPJBy(k, c)
		}
		if sum != total {
			t.Fatalf("core %d: per-kind energy %d pJ != total %d pJ", c, sum, total)
		}
		guardTotalPJ += total
		interventionPJ += sys.Kernel.EnergyPJBy(kernel.CostIntervention, c)
	}
	if guardTotalPJ == 0 {
		t.Fatal("guarded run booked no kernel energy")
	}
	if interventionPJ == 0 {
		t.Fatal("attacked run booked no intervention energy — corrective writes not attributed")
	}

	// Guard energy is a strict subset of the integrator's whole-core bill.
	pkgJ := tr.PackageEnergyJ()
	if pkgJ <= 0 {
		t.Fatal("integrator idle")
	}
	if g := float64(guardTotalPJ) * 1e-12; g >= tr.CoresEnergyJ() {
		t.Fatalf("guard energy %g J exceeds whole-core energy %g J", g, tr.CoresEnergyJ())
	}

	// The modeled RAPL counters read through the MSR interface must agree
	// with the integrator to one energy unit (2^-14 J quantization).
	pkgRaw, err := p.MSRFile(0).Read(msr.PkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if got := msr.DecodeEnergyStatus(pkgRaw, msr.DefaultEnergyUnitJ); math.Abs(got-pkgJ) > msr.DefaultEnergyUnitJ {
		t.Fatalf("MSR_PKG_ENERGY_STATUS %g J vs integrator %g J", got, pkgJ)
	}
	pp0Raw, err := p.MSRFile(0).Read(msr.PP0EnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if got := msr.DecodeEnergyStatus(pp0Raw, msr.DefaultEnergyUnitJ); math.Abs(got-tr.CoresEnergyJ()) > msr.DefaultEnergyUnitJ {
		t.Fatalf("MSR_PP0_ENERGY_STATUS %g J vs cores %g J", got, tr.CoresEnergyJ())
	}
	// PKG strictly exceeds PP0: the uncore draw is package-only.
	if pkgRaw <= pp0Raw {
		t.Fatalf("PKG counter %d <= PP0 counter %d; uncore energy missing", pkgRaw, pp0Raw)
	}

	// The telemetry surface republishes the same ledgers: the per-kind
	// series sum to the kernel totals, and the integrator gauges match.
	sys.CollectTelemetry()
	snap := sys.Telemetry.Registry().Snapshot()
	fam := snap.Find("power_energy_joules_total")
	if fam == nil {
		t.Fatal("power_energy_joules_total missing from the exposition")
	}
	var famSum float64
	for _, s := range fam.Series {
		famSum += s.Value
	}
	if want := float64(guardTotalPJ) * 1e-12; math.Abs(famSum-want) > 1e-9 {
		t.Fatalf("power_energy_joules_total sums to %g J, kernel ledger %g J", famSum, want)
	}
	if got := snap.Value("power_package_energy_joules", nil); math.Abs(got-tr.PackageEnergyJ()) > 1e-9 {
		t.Fatalf("power_package_energy_joules %g vs integrator %g", got, tr.PackageEnergyJ())
	}
	coreFam := snap.Find("power_core_energy_joules")
	if coreFam == nil || len(coreFam.Series) != p.NumCores() {
		t.Fatal("per-core energy gauges missing")
	}
	for _, s := range coreFam.Series {
		if s.Labels["governor"] == "" {
			t.Fatal("per-core energy gauge lacks governor label")
		}
	}
}

// Energy metering is observation, not simulation: reading the RAPL MSRs and
// the integrator mid-run any number of times must not change a single byte
// of the final exposition — the pure-read contract that keeps live
// observability compatible with fleet determinism.
func TestEnergyReadsDoNotPerturb(t *testing.T) {
	render := func(noisy bool) []byte {
		sys := runEnergyScenario(t, 42)
		if noisy {
			for i := 0; i < 50; i++ {
				if _, err := sys.Platform.MSRFile(0).Read(msr.PkgEnergyStatus); err != nil {
					t.Fatal(err)
				}
				_ = sys.Platform.Energy.PackageEnergyJ()
				sys.RunFor(20 * sim.Microsecond)
			}
		} else {
			sys.RunFor(50 * 20 * sim.Microsecond)
		}
		sys.CollectTelemetry()
		j, err := sys.Telemetry.Registry().Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	quiet, noisy := render(false), render(true)
	if string(quiet) != string(noisy) {
		t.Fatal("interleaved energy reads changed the exposition")
	}
}
