package plugvolt_test

import (
	"fmt"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

// Example shows the whole countermeasure lifecycle: characterize, deploy
// the polling module, survive a live attack, and keep benign undervolting
// working. Output is fully deterministic (seeded simulation).
func Example() {
	sys, err := plugvolt.NewSystem("skylake", 42)
	if err != nil {
		panic(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		panic(err)
	}
	onset, _ := grid.OnsetMV(3_200_000)
	fmt.Printf("fault onset at 3.2 GHz: %d mV\n", onset)
	fmt.Printf("maximal safe state: %d mV\n", grid.MaximalSafeOffsetMV(0))

	guard, err := sys.DeployGuard(grid)
	if err != nil {
		panic(err)
	}
	// Adversary writes a deeply unsafe offset; the guard rewrites the
	// register before the regulator realizes the voltage.
	if err := sys.Platform.WriteOffsetViaMSR(1, onset-60, msr.PlaneCore); err != nil {
		panic(err)
	}
	sys.RunFor(2 * sim.Millisecond)
	fmt.Printf("offset after guard intervention: %d mV\n", sys.Platform.Core(1).OffsetMV())
	fmt.Printf("interventions: %d\n", guard.Guard.Interventions)

	// A benign, safe undervolt on another core is left alone.
	if err := sys.Platform.WriteOffsetViaMSR(2, grid.MaximalSafeOffsetMV(10), msr.PlaneCore); err != nil {
		panic(err)
	}
	sys.RunFor(2 * sim.Millisecond)
	fmt.Printf("benign offset preserved: %d mV\n", sys.Platform.Core(2).OffsetMV())

	// Output:
	// fault onset at 3.2 GHz: -120 mV
	// maximal safe state: -65 mV
	// offset after guard intervention: 0 mV
	// interventions: 1
	// benign offset preserved: -55 mV
}
