package plugvolt_test

import (
	"errors"
	"testing"

	"plugvolt"
	"plugvolt/internal/core"
	"plugvolt/internal/sim"
)

func TestNewSystemModels(t *testing.T) {
	for _, m := range plugvolt.Models() {
		sys, err := plugvolt.NewSystem(m, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if sys.Platform == nil || sys.Kernel == nil || sys.Registry == nil || sys.CPUFreq == nil {
			t.Fatalf("%s: incomplete system", m)
		}
		if err := sys.Env().Validate(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if _, err := plugvolt.NewSystem("itanium", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSweepConfigs(t *testing.T) {
	paper := plugvolt.PaperSweep()
	if paper.Iterations != 1_000_000 || paper.OffsetStepMV != -1 || paper.OffsetEndMV != -300 {
		t.Fatalf("paper sweep drifted from Algorithm 2: %+v", paper)
	}
	quick := plugvolt.QuickSweep()
	if quick.OffsetStepMV != -5 || quick.Iterations != 200_000 {
		t.Fatalf("quick sweep: %+v", quick)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := plugvolt.NewSystem("skylake", 5)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Kernel.Loaded(core.ModuleName) {
		t.Fatal("guard module not resident after DeployGuard")
	}
	res, err := plugvolt.NewV0LTpwn().Run(sys.Env(), guard.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("attack beat the facade-deployed guard: %s", res)
	}
	sys.RunFor(1 * sim.Millisecond)
	if err := guard.Uninstall(sys.Env()); err != nil {
		t.Fatal(err)
	}
}

func TestDeployGuardValidation(t *testing.T) {
	sys, err := plugvolt.NewSystem("skylake", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeployGuard(nil); err == nil {
		t.Fatal("nil grid accepted")
	}
	if _, err := sys.Defenses(nil); err == nil {
		t.Fatal("nil grid accepted by Defenses")
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	bad := plugvolt.DefaultGuardConfig()
	bad.PollPeriod = 0
	if _, err := sys.DeployGuardConfig(grid, bad); err == nil {
		t.Fatal("bad guard config accepted")
	}
}

func TestDefensesLineup(t *testing.T) {
	sys, err := plugvolt.NewSystem("skylake", 6)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	defs, err := sys.Defenses(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 5 {
		t.Fatalf("lineup size %d", len(defs))
	}
	// All installable and uninstallable on the same env, one at a time.
	for _, cm := range defs {
		if err := cm.Install(sys.Env()); err != nil {
			t.Fatalf("%s install: %v", cm.Name(), err)
		}
		if err := cm.Uninstall(sys.Env()); err != nil {
			t.Fatalf("%s uninstall: %v", cm.Name(), err)
		}
	}
}

func TestCharacterizeInvalidConfig(t *testing.T) {
	sys, err := plugvolt.NewSystem("skylake", 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plugvolt.QuickSweep()
	cfg.Iterations = -1
	if _, err := sys.Characterize(cfg); err == nil {
		t.Fatal("invalid sweep accepted")
	}
	var sentinel error
	_ = errors.Is(err, sentinel) // document: errors are plain, not typed
}

func TestAttestationCarriesHTStatus(t *testing.T) {
	// 4C/8T parts attest hyperthreading enabled; the 4C/4T desktop does not.
	ht, err := plugvolt.NewSystem("kabylaker", 1)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := ht.Registry.Create("x", 0)
	if !e1.Attest(1).HyperThreadingEnabled {
		t.Fatal("kabylaker attestation missing HT flag")
	}
	noHT, err := plugvolt.NewSystem("skylake", 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := noHT.Registry.Create("x", 0)
	if e2.Attest(1).HyperThreadingEnabled {
		t.Fatal("skylake attestation claims HT")
	}
}
