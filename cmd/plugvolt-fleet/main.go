// plugvolt-fleet simulates a guarded machine fleet: N independent systems
// with mixed CPU models, each characterized, protected by the polling
// countermeasure, and run through an attack campaign or an idle guard
// window, simulated across a worker pool.
//
// Two engines share one determinism contract — the report and the merged
// metric exposition are byte-identical for any execution shape:
//
//   - The one-shot engine (default) keeps a per-machine row for every
//     machine; its outputs are invariant across -workers.
//   - The streaming epoch engine (-stream, or implied by -epochs, -batch,
//     -checkpoint or -resume) holds only one batch of machines resident at
//     a time, folds telemetry incrementally, and checkpoints after every
//     batch; its outputs are additionally invariant across -batch, -epochs
//     and any kill/-resume point. This is the engine for million
//     machine-window runs on a laptop.
//
// Usage:
//
//	plugvolt-fleet -machines 24 -attack plundervolt
//	plugvolt-fleet -machines 100 -workers 8 -attack voltjockey -metrics-out fleet.prom
//	plugvolt-fleet -stream -machines 250000 -epochs 4 -attack none \
//	    -batch 512 -checkpoint fleet.ckpt -out fleet.json
//	plugvolt-fleet -stream -machines 250000 -epochs 4 -attack none \
//	    -resume fleet.ckpt -checkpoint fleet.ckpt -out fleet.json
//
// Exit codes: 0 success; 1 configuration or runtime error; 2 usage error;
// 3 partial fleet (some machines failed; see the report); 4 halted by
// SIGINT at a batch boundary (resume with -resume).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"plugvolt/internal/buildinfo"
	"plugvolt/internal/fleet"
	"plugvolt/internal/obs"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: flag parsing, engine
// selection, output rendering and exit-code policy, with no direct os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("plugvolt-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machines   = fs.Int("machines", 8, "fleet size")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS); never changes any output byte")
		modelsFlag = fs.String("models", "", "comma-separated CPU models cycled across the fleet (default: all models)")
		seed       = fs.Int64("seed", 42, "fleet seed; machine i derives its own seed from it")
		attackName = fs.String("attack", "plundervolt", fmt.Sprintf("campaign every machine faces: %s", strings.Join(fleet.AttackNames(), ", ")))
		window     = fs.Duration("window", 10*time.Millisecond, `virtual idle time under guard when -attack none`)
		stream     = fs.Bool("stream", false, "use the streaming epoch engine (implied by -epochs, -batch, -checkpoint, -resume)")
		epochs     = fs.Int("epochs", 1, "time slices per machine window (streaming; machine-windows = machines x epochs); never changes any output byte")
		batch      = fs.Int("batch", 0, "machines resident at once (streaming; 0 = auto); bounds memory, never changes any output byte")
		checkpoint = fs.String("checkpoint", "", "write a resumable checkpoint here after every batch (streaming)")
		resumePath = fs.String("resume", "", "resume a previous run from this checkpoint file (streaming)")
		progress   = fs.Bool("progress", false, "print a progress line to stderr after every batch (streaming)")
		listen     = fs.String("listen", "", "serve live fleet progress gauges over HTTP at this address (streaming; e.g. :9090)")
		out        = fs.String("out", "", `write the fleet report JSON here ("-" = stdout; default stdout summary only)`)
		metricsOut = fs.String("metrics-out", "", `write the merged Prometheus exposition here ("-" = stdout)`)
		version    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "plugvolt-fleet: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *version {
		buildinfo.Fprint(stdout, "plugvolt-fleet")
		return 0
	}
	if *batch > *machines {
		fmt.Fprintf(stderr, "plugvolt-fleet: -batch %d exceeds -machines %d\n", *batch, *machines)
		return 2
	}

	cfg := fleet.StreamConfig{
		Config: fleet.Config{
			Machines: *machines,
			Workers:  *workers,
			Seed:     *seed,
			Attack:   *attackName,
			Window:   sim.Duration(window.Nanoseconds()) * sim.Nanosecond,
		},
		Epochs:         *epochs,
		Batch:          *batch,
		CheckpointPath: *checkpoint,
	}
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}
	streaming := *stream || *epochs > 1 || *batch > 0 || *checkpoint != "" || *resumePath != "" || *listen != "" || *progress

	if !streaming {
		rep, err := fleet.Run(cfg.Config)
		return finish(rep, err, cfg, stdout, stderr, *out, *metricsOut, "")
	}

	if *resumePath != "" {
		ck, err := fleet.ReadCheckpointFile(*resumePath)
		if err != nil {
			fmt.Fprintln(stderr, "plugvolt-fleet:", err)
			return 1
		}
		cfg.Resume = ck
		fmt.Fprintf(stderr, "plugvolt-fleet: resuming at %d/%d machines (%d batches done)\n",
			ck.MachinesDone, ck.Machines, ck.BatchesDone)
	}

	// Live observability: machine-windows completed is the fleet-level
	// virtual clock, and the progress gauges are served from their own
	// telemetry set — the report's merged exposition must stay a pure
	// function of the experiment, so the live surface never touches it.
	var windowsDone atomic.Int64
	if *listen != "" {
		live := telemetry.NewSet(func() sim.Time { return sim.Time(windowsDone.Load()) },
			telemetry.DefaultJournalCap, *seed)
		cfg.Live = live
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, "plugvolt-fleet: -listen:", err)
			return 1
		}
		defer ln.Close()
		srv := &obs.Server{Telemetry: live, Clock: func() sim.Time { return sim.Time(windowsDone.Load()) }}
		go http.Serve(ln, srv.Handler()) //nolint:errcheck // closed on return
		fmt.Fprintf(stderr, "plugvolt-fleet: serving live progress on http://%s/metrics\n", ln.Addr())
	}
	showProgress := *progress
	cfg.Progress = func(p fleet.Progress) {
		windowsDone.Store(p.WindowsDone)
		if showProgress {
			fmt.Fprintf(stderr, "plugvolt-fleet: %d/%d machine-windows (%d/%d machines, %d batches, %d errors, heap %.1f MiB)\n",
				p.WindowsDone, p.Windows, p.MachinesDone, p.Machines, p.BatchesDone, p.Errors,
				float64(p.HeapBytes)/(1<<20))
		}
	}

	// SIGINT lands the run at the next batch boundary — after that
	// boundary's checkpoint is on disk — instead of mid-simulation.
	var halt atomic.Bool
	if *checkpoint != "" {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt)
		defer signal.Stop(sigc)
		go func() {
			if _, ok := <-sigc; ok {
				halt.Store(true)
			}
		}()
		cfg.Halt = func(fleet.Progress) bool { return halt.Load() }
	}

	rep, err := fleet.RunStream(cfg)
	if errors.Is(err, fleet.ErrHalted) {
		fmt.Fprintf(stderr, "plugvolt-fleet: halted at a batch boundary; resume with -resume %s\n", *checkpoint)
		return 4
	}
	return finish(rep, err, cfg, stdout, stderr, *out, *metricsOut, *checkpoint)
}

// reporter is the surface the two report types share.
type reporter interface {
	JSON() ([]byte, error)
	WriteMetrics(w io.Writer) error
}

// finish renders the summary and requested outputs for either engine and
// maps the error to the exit-code policy.
func finish(rep reporter, err error, cfg fleet.StreamConfig, stdout, stderr io.Writer, out, metricsOut, checkpoint string) int {
	var partial *fleet.PartialError
	if err != nil && !errors.As(err, &partial) {
		fmt.Fprintln(stderr, "plugvolt-fleet:", err)
		return 1
	}

	switch r := rep.(type) {
	case *fleet.Report:
		agg := r.Aggregate
		fmt.Fprintf(stdout, "== fleet: %d machines (%s), attack %s, seed %d\n",
			agg.Machines, strings.Join(r.Fleet.Models, "/"), r.Fleet.Attack, r.Fleet.Seed)
		summarize(stdout, agg)
	case *fleet.StreamReport:
		agg := r.Aggregate
		epochs := int64(1)
		if cfg.Epochs > 1 {
			epochs = int64(cfg.Epochs)
		}
		fmt.Fprintf(stdout, "== fleet stream: %d machines x %d epochs = %d machine-windows (%s), attack %s, seed %d\n",
			agg.Machines, epochs, int64(agg.Machines)*epochs,
			strings.Join(r.Fleet.Models, "/"), r.Fleet.Attack, r.Fleet.Seed)
		summarize(stdout, agg)
		for _, m := range r.ModelRows {
			fmt.Fprintf(stdout, "  %-12s %6d machines, %d checks, %d interventions, %d errors\n",
				m.Model, m.Machines, m.GuardChecks, m.GuardInterventions, m.Errors)
		}
	}

	if out != "" {
		if werr := writeTo(out, stdout, func(w io.Writer) error {
			data, jerr := rep.JSON()
			if jerr != nil {
				return jerr
			}
			_, jerr = w.Write(append(data, '\n'))
			return jerr
		}); werr != nil {
			fmt.Fprintln(stderr, "plugvolt-fleet:", werr)
			return 1
		}
	}
	if metricsOut != "" {
		if werr := writeTo(metricsOut, stdout, rep.WriteMetrics); werr != nil {
			fmt.Fprintln(stderr, "plugvolt-fleet:", werr)
			return 1
		}
	}

	if partial != nil {
		fmt.Fprintf(stderr, "plugvolt-fleet: %d machine(s) failed:\n", partial.Total)
		for _, f := range partial.Failures {
			fmt.Fprintf(stderr, "  %s\n", f.Error())
		}
		if partial.Total > len(partial.Failures) {
			fmt.Fprintf(stderr, "  ... and %d more\n", partial.Total-len(partial.Failures))
		}
		return 3
	}
	return 0
}

// summarize prints the aggregate lines both engines share.
func summarize(stdout io.Writer, agg fleet.Aggregate) {
	fmt.Fprintf(stdout, "guard: %d checks, %d interventions across the fleet\n",
		agg.GuardChecks, agg.GuardInterventions)
	if agg.AttacksRun > 0 {
		fmt.Fprintf(stdout, "attacks: %d run, %d defeated, %d succeeded; %d mailbox writes (%d blocked), %d faults, %d crashes\n",
			agg.AttacksRun, agg.AttacksDefeated, agg.AttacksSucceeded,
			agg.MailboxWrites, agg.BlockedWrites, agg.FaultsObserved, agg.Crashes)
	}
	fmt.Fprintf(stdout, "fleet virtual time: %v; reboots: %d; machine errors: %d\n",
		sim.Duration(agg.VirtualPS), agg.Reboots, agg.Errors)
}

func writeTo(path string, stdout io.Writer, render func(io.Writer) error) error {
	if path == "-" {
		return render(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
