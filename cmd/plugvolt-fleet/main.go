// plugvolt-fleet simulates a guarded machine fleet: N independent systems
// with mixed CPU models, each characterized, protected by the polling
// countermeasure, and run through an attack campaign, simulated across a
// worker pool. The aggregate report and the merged metric exposition are
// byte-identical for any -workers value (the PR 1 sharding invariant at
// fleet scale), so fleet outputs are diffable artifacts.
//
// Usage:
//
//	plugvolt-fleet -machines 24 -attack plundervolt
//	plugvolt-fleet -machines 100 -workers 8 -attack voltjockey -metrics-out fleet.prom
//	plugvolt-fleet -machines 12 -models skylake,cometlake -out fleet.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"plugvolt/internal/buildinfo"
	"plugvolt/internal/fleet"
	"plugvolt/internal/sim"
)

func main() {
	var (
		machines   = flag.Int("machines", 8, "fleet size")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS); never changes any output byte")
		modelsFlag = flag.String("models", "", "comma-separated CPU models cycled across the fleet (default: all models)")
		seed       = flag.Int64("seed", 42, "fleet seed; machine i derives its own seed from it")
		attackName = flag.String("attack", "plundervolt", fmt.Sprintf("campaign every machine faces: %s", strings.Join(fleet.AttackNames(), ", ")))
		window     = flag.Duration("window", 10*time.Millisecond, `virtual idle time under guard when -attack none`)
		out        = flag.String("out", "", `write the fleet report JSON here ("-" = stdout; default stdout summary only)`)
		metricsOut = flag.String("metrics-out", "", `write the merged Prometheus exposition here ("-" = stdout)`)
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-fleet")
		return
	}

	cfg := fleet.Config{
		Machines: *machines,
		Workers:  *workers,
		Seed:     *seed,
		Attack:   *attackName,
		Window:   sim.Duration(window.Nanoseconds()) * sim.Nanosecond,
	}
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}

	rep, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}

	agg := rep.Aggregate
	fmt.Printf("== fleet: %d machines (%s), attack %s, seed %d\n",
		agg.Machines, strings.Join(rep.Fleet.Models, "/"), rep.Fleet.Attack, rep.Fleet.Seed)
	fmt.Printf("guard: %d checks, %d interventions across the fleet\n",
		agg.GuardChecks, agg.GuardInterventions)
	if agg.AttacksRun > 0 {
		fmt.Printf("attacks: %d run, %d defeated, %d succeeded; %d mailbox writes (%d blocked), %d faults, %d crashes\n",
			agg.AttacksRun, agg.AttacksDefeated, agg.AttacksSucceeded,
			agg.MailboxWrites, agg.BlockedWrites, agg.FaultsObserved, agg.Crashes)
	}
	fmt.Printf("fleet virtual time: %v; reboots: %d; machine errors: %d\n",
		sim.Duration(agg.VirtualPS), agg.Reboots, agg.Errors)

	if *out != "" {
		if err := writeTo(*out, func(w io.Writer) error {
			data, err := rep.JSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(data, '\n'))
			return err
		}); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, rep.WriteMetrics); err != nil {
			fatal(err)
		}
	}
	if agg.Errors > 0 {
		fmt.Fprintf(os.Stderr, "plugvolt-fleet: %d machine(s) failed; see the report rows\n", agg.Errors)
		os.Exit(3)
	}
}

func writeTo(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-fleet:", err)
	os.Exit(1)
}
