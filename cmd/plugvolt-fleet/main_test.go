package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec drives the CLI through the run() harness — the same code path main
// uses, minus os.Exit — and returns (exit code, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// tiny is the cheapest real fleet the tests can run end to end.
var tiny = []string{"-machines", "1", "-attack", "none", "-window", "1ms"}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"unknown_flag", []string{"-frobnicate"}, 2, "flag provided but not defined"},
		{"positional_args", append(tiny[:len(tiny):len(tiny)], "stray"), 2, "unexpected arguments"},
		{"bad_models", []string{"-machines", "1", "-models", "pentium4"}, 1, "pentium4"},
		{"bad_attack", []string{"-machines", "1", "-attack", "rowhammer"}, 1, "rowhammer"},
		{"zero_machines", []string{"-machines", "0"}, 1, "at least one machine"},
		{"batch_exceeds_machines", []string{"-machines", "2", "-batch", "5"}, 2, "-batch 5 exceeds -machines 2"},
		{"epochs_with_attack", []string{"-machines", "1", "-attack", "voltjockey", "-epochs", "2"}, 1, "epochs"},
		{"resume_missing", []string{"-machines", "1", "-resume", "/nonexistent/fleet.ckpt"}, 1, "reading checkpoint"},
		{"bad_listen", append(tiny[:len(tiny):len(tiny)], "-listen", "999.999.999.999:0"), 1, "-listen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := exec(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			if !strings.Contains(stderr, tc.stderr) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.stderr)
			}
		})
	}
}

func TestRunVersion(t *testing.T) {
	code, stdout, _ := exec(t, "-version")
	if code != 0 || !strings.Contains(stdout, "plugvolt-fleet") {
		t.Fatalf("exit %d, stdout %q", code, stdout)
	}
}

// TestRunBatchEngine: the default engine still works through the harness
// and writes the report artifacts.
func TestRunBatchEngine(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fleet.json")
	code, stdout, stderr := exec(t, "-machines", "1", "-attack", "none",
		"-window", "1ms", "-out", out)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== fleet: 1 machines") {
		t.Fatalf("summary missing: %q", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Machines []struct{ Model string } `json:"machines"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Machines) != 1 {
		t.Fatalf("report rows: %d", len(rep.Machines))
	}
}

// TestRunStreamEngine: streaming flags select the stream engine, whose
// report carries per-model rollups instead of per-machine rows, and whose
// outputs match a differently-shaped rerun byte for byte.
func TestRunStreamEngine(t *testing.T) {
	dir := t.TempDir()
	outA, promA := filepath.Join(dir, "a.json"), filepath.Join(dir, "a.prom")
	outB, promB := filepath.Join(dir, "b.json"), filepath.Join(dir, "b.prom")
	code, stdout, stderr := exec(t, "-machines", "3", "-attack", "none", "-window", "1ms",
		"-stream", "-batch", "1", "-epochs", "2", "-out", outA, "-metrics-out", promA)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "machine-windows") {
		t.Fatalf("stream summary missing: %q", stdout)
	}
	if code, _, stderr := exec(t, "-machines", "3", "-attack", "none", "-window", "1ms",
		"-stream", "-batch", "3", "-workers", "8", "-epochs", "1", "-out", outB, "-metrics-out", promB); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, pair := range [][2]string{{outA, outB}, {promA, promB}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ across execution shapes", pair[0], pair[1])
		}
	}
}

// TestRunResumeWorkflow drives the full CLI resume loop: checkpoint a run,
// resume it with a mismatched seed (exit 1, typed message), then resume it
// correctly and compare against an uninterrupted reference run.
func TestRunResumeWorkflow(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	ref := filepath.Join(dir, "ref.json")
	got := filepath.Join(dir, "got.json")

	// Uninterrupted reference.
	if code, _, stderr := exec(t, "-machines", "4", "-seed", "9", "-attack", "none",
		"-window", "1ms", "-stream", "-batch", "2", "-out", ref); code != 0 {
		t.Fatalf("reference run: exit %d: %s", code, stderr)
	}
	// Checkpointed run. The harness cannot deliver a mid-run SIGINT
	// deterministically, so run it to completion — the checkpoint file is
	// rewritten at every batch boundary and ends at the final boundary;
	// resuming from it must be a no-op prefix of the reference.
	if code, _, stderr := exec(t, "-machines", "4", "-seed", "9", "-attack", "none",
		"-window", "1ms", "-stream", "-batch", "2", "-checkpoint", ckpt); code != 0 {
		t.Fatalf("checkpointed run: exit %d: %s", code, stderr)
	}

	// Mismatched seed: typed rejection, exit 1.
	code, _, stderr := exec(t, "-machines", "4", "-seed", "10", "-attack", "none",
		"-window", "1ms", "-stream", "-batch", "2", "-resume", ckpt)
	if code != 1 || !strings.Contains(stderr, "does not match") {
		t.Fatalf("mismatched resume: exit %d, stderr %q", code, stderr)
	}

	// Correct resume: completes (instantly — all machines done) with the
	// reference bytes.
	code, _, stderr = exec(t, "-machines", "4", "-seed", "9", "-attack", "none",
		"-window", "1ms", "-stream", "-batch", "3", "-resume", ckpt, "-out", got)
	if code != 0 {
		t.Fatalf("resume: exit %d: %s", code, stderr)
	}
	a, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed report differs from the uninterrupted reference")
	}
}

// TestRunLiveGauges: -listen serves the fleet progress gauges over HTTP
// while never touching the report exposition.
func TestRunLiveGauges(t *testing.T) {
	dir := t.TempDir()
	prom := filepath.Join(dir, "fleet.prom")
	// Occupy a port first so the address is real; run() prints the bound
	// address to stderr. Use :0 to let the kernel pick.
	code, _, stderr := exec(t, "-machines", "2", "-attack", "none", "-window", "1ms",
		"-stream", "-batch", "1", "-listen", "127.0.0.1:0", "-metrics-out", prom)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "serving live progress on") {
		t.Fatalf("no listen banner: %q", stderr)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "fleet_stream_") {
		t.Fatal("live progress gauges leaked into the report exposition")
	}
}
