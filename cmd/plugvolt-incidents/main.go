// plugvolt-incidents inspects incident bundle files written by the flight
// recorder (-incidents-out on plugvolt-guard and plugvolt-attack, or fetched
// framed from a live /incidents endpoint). A file is framed bundles back to
// back; every subcommand decodes it all-or-nothing, so a corrupt frame is an
// error, never a silently partial listing.
//
// Usage:
//
//	plugvolt-incidents -list incidents.bin
//	plugvolt-incidents -timeline incidents.bin          # every bundle
//	plugvolt-incidents -timeline -n 2 incidents.bin     # 2nd bundle only
//	plugvolt-incidents -diff a.bin b.bin                # exit 1 when they differ
//
// Exit codes follow diff(1): 0 success/identical, 1 bundles differ, 2 error.
package main

import (
	"flag"
	"fmt"
	"os"

	"plugvolt/internal/buildinfo"
	"plugvolt/internal/flight"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the bundles in the file (one line each); the default mode")
		timeline = flag.Bool("timeline", false, "print each selected bundle as a human-readable incident timeline")
		diff     = flag.Bool("diff", false, "compare the selected bundle of two files field by field; exit 1 when they differ")
		n        = flag.Int("n", 0, "select the n-th bundle in the file (1-based); 0 means every bundle (-list, -timeline) or the first (-diff)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-incidents")
		return
	}

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two files, got %d", flag.NArg()))
		}
		a := pick(readBundles(flag.Arg(0)), *n, flag.Arg(0))
		b := pick(readBundles(flag.Arg(1)), *n, flag.Arg(1))
		same, err := flight.Diff(os.Stdout, a, b)
		if err != nil {
			fatal(err)
		}
		if !same {
			os.Exit(1)
		}
	case *timeline:
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-timeline needs exactly one file, got %d", flag.NArg()))
		}
		bundles := readBundles(flag.Arg(0))
		if *n != 0 {
			bundles = []*flight.Bundle{pick(bundles, *n, flag.Arg(0))}
		}
		for i, b := range bundles {
			if i > 0 {
				fmt.Println()
			}
			if err := b.WriteTimeline(os.Stdout); err != nil {
				fatal(err)
			}
		}
	default:
		if !*list && flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-list needs exactly one file, got %d", flag.NArg()))
		}
		bundles := readBundles(flag.Arg(0))
		for i, b := range bundles {
			fmt.Printf("%3d  %s\n", i+1, b.Label())
			if b.Detail != "" {
				fmt.Printf("     %s\n", b.Detail)
			}
		}
		if len(bundles) == 0 {
			fmt.Println("no incidents")
		}
	}
}

// readBundles decodes every framed bundle in the file.
func readBundles(path string) []*flight.Bundle {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	bundles, err := flight.DecodeAll(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return bundles
}

// pick selects the 1-based n-th bundle (0 = first) or dies with a range
// error naming the file.
func pick(bundles []*flight.Bundle, n int, path string) *flight.Bundle {
	if n == 0 {
		n = 1
	}
	if n < 1 || n > len(bundles) {
		fatal(fmt.Errorf("%s: bundle %d out of range (file has %d)", path, n, len(bundles)))
	}
	return bundles[n-1]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-incidents:", err)
	os.Exit(2)
}
