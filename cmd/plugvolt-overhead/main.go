// plugvolt-overhead regenerates Table 2: SPECrate2017 stand-in scores with
// and without the polling kernel module, on Comet Lake as in the paper.
//
// Usage:
//
//	plugvolt-overhead
//	plugvolt-overhead -cpu skylake -markdown
//	plugvolt-overhead -energy
package main

import (
	"flag"
	"fmt"
	"os"

	"plugvolt"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/core"
	"plugvolt/internal/msr"
	"plugvolt/internal/power"
	"plugvolt/internal/pstate"
	"plugvolt/internal/report"
	"plugvolt/internal/sim"
	"plugvolt/internal/spec"
)

func main() {
	var (
		cpuName  = flag.String("cpu", "cometlake", "CPU model (paper: cometlake)")
		seed     = flag.Int64("seed", 2017, "experiment seed")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain text")
		sweep    = flag.Bool("sweep", false, "sweep poll periods and report the overhead/protection trade-off")
		energy   = flag.Bool("energy", false, "report the guard's energy overhead and the safe-undervolt vs full-clamp savings")
		perCore  = flag.Bool("percore", false, "deploy one guard kthread per core instead of a single poller")
		metrics  = flag.String("metrics-out", "", `write the Prometheus metric exposition here after the run ("-" = stdout)`)
		events   = flag.String("events-out", "", `write the JSONL event journal here after the run ("-" = stdout)`)
	)
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-overhead")
		return
	}
	if *sweep {
		runSweep(*cpuName, *seed, *perCore, *metrics, *events)
		return
	}
	if *energy {
		runEnergy(*cpuName, *seed)
		return
	}

	sys, err := plugvolt.NewSystem(*cpuName, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "characterizing %s for the guard's unsafe set...\n", sys.Platform.Spec.Codename)
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		fatal(err)
	}
	gcfg := core.DefaultGuardConfig()
	gcfg.PerCoreThreads = *perCore
	gcfg.Telemetry = sys.Telemetry
	guard, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, gcfg)
	if err != nil {
		fatal(err)
	}
	h, err := spec.NewHarness(sys.Platform, sys.Kernel, spec.DefaultHarnessConfig())
	if err != nil {
		fatal(err)
	}
	loadGuard := func(on bool) error {
		loaded := sys.Kernel.Loaded(core.ModuleName)
		switch {
		case on && !loaded:
			return sys.Kernel.Load(guard.Module())
		case !on && loaded:
			return sys.Kernel.Unload(core.ModuleName)
		}
		return nil
	}
	fmt.Fprintln(os.Stderr, "measuring 23 benchmarks x {base, peak} x {module off, on}...")
	tab, err := h.MeasureTable(loadGuard, 0)
	if err != nil {
		fatal(err)
	}
	if *markdown {
		report.WriteTable2Markdown(os.Stdout, tab)
	} else {
		report.WriteTable2(os.Stdout, tab)
	}
	if err := sys.DumpTelemetry(*metrics, *events); err != nil {
		fatal(err)
	}
}

// runSweep measures the overhead/protection trade-off across poll periods:
// the paper's Algorithm 3 leaves pacing unspecified, so this table is the
// design-space view behind the default 100 us choice.
func runSweep(cpuName string, seed int64, perCore bool, metricsOut, eventsOut string) {
	sys, err := plugvolt.NewSystem(cpuName, seed)
	if err != nil {
		fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		fatal(err)
	}
	unsafe := grid.UnsafeSet()
	vrLatency := 20 * sim.Microsecond
	// The rail-race bound is set by the *shallowest* onset anywhere in the
	// table: that is the least voltage travel an attacker needs.
	shallowest := -100000
	for _, on := range unsafe.OnsetMV {
		if on > shallowest {
			shallowest = on
		}
	}
	travel := vrLatency + sim.Duration(float64(-shallowest)/0.5)*sim.Microsecond
	fmt.Printf("poll-period sweep on %s (per-core=%v); shallowest onset %d mV -> rail travel %v\n\n",
		sys.Platform.Spec.Codename, perCore, shallowest, travel)
	fmt.Printf("%-10s %14s %18s %16s\n", "period", "pinned cost", "worst turnaround", "rail-race margin")
	var last *plugvolt.System
	for _, period := range []sim.Duration{20 * sim.Microsecond, 50 * sim.Microsecond,
		100 * sim.Microsecond, 250 * sim.Microsecond, 1 * sim.Millisecond, 10 * sim.Millisecond} {
		s2, err := plugvolt.NewSystem(cpuName, seed)
		if err != nil {
			fatal(err)
		}
		last = s2
		cfg := core.DefaultGuardConfig()
		cfg.PollPeriod = period
		cfg.PerCoreThreads = perCore
		cfg.Telemetry = s2.Telemetry
		g, err := core.NewGuard(unsafe, s2.Platform.Spec.BusMHz, cfg)
		if err != nil {
			fatal(err)
		}
		if err := s2.Kernel.Load(g.Module()); err != nil {
			fatal(err)
		}
		window := 500 * sim.Millisecond
		s2.Kernel.ResetStolenTime()
		s2.RunFor(window)
		frac := float64(s2.Kernel.StolenTime(0)) / float64(window) * 100
		ta := g.WorstCaseTurnaround(vrLatency, 0.5)
		// Positive margin: the register poll beats the rail's descent to
		// the shallowest fault boundary; negative: the race is lost.
		margin := travel - period
		status := "+" + margin.String()
		if margin < 0 {
			status = "-" + (-margin).String() + " (RACE LOST)"
		}
		fmt.Printf("%-10v %13.3f%% %18v %16s\n", period, frac, ta, status)
	}
	// The sweep boots a fresh system per period; the exported metrics cover
	// the last (10 ms) configuration.
	if last != nil {
		if err := last.DumpTelemetry(metricsOut, eventsOut); err != nil {
			fatal(err)
		}
	}
}

// runEnergy puts joule numbers next to the paper's two headline claims:
// the countermeasure is nearly free (Table 2's 0.28% runtime overhead gets
// an energy twin from the kernel's attributed joule ledger), and it
// preserves benign undervolting (Sec. 6's availability argument gets a
// measured safe-undervolt vs full-clamp savings figure, cross-checked
// against the closed-form CV²f model).
func runEnergy(cpuName string, seed int64) {
	window := 500 * sim.Millisecond

	// A) Guard energy overhead. Deploy the guard exactly as plugvolt-guard
	// does, run a quiet window, and compare the kernel-attributed guard
	// joules against the package total over the same span.
	sys, err := plugvolt.NewSystem(cpuName, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "characterizing %s for the guard's unsafe set...\n", sys.Platform.Spec.Codename)
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		fatal(err)
	}
	safeMV := grid.MaximalSafeOffsetMV(5)
	if _, err := sys.DeployGuardConfig(grid, plugvolt.DefaultGuardConfig()); err != nil {
		fatal(err)
	}
	sys.Kernel.ResetStolenTime()
	tr := sys.Platform.Energy
	pkgBefore := tr.PackageEnergyJ()
	sys.RunFor(window)
	pkgJ := tr.PackageEnergyJ() - pkgBefore
	var guardJ float64
	for c := 0; c < sys.Platform.NumCores(); c++ {
		guardJ += sys.Kernel.EnergyJ(c)
	}
	runtimePct := float64(sys.Kernel.StolenTime(0)) / float64(window) * 100
	energyPct := guardJ / pkgJ * 100
	fmt.Printf("== guard overhead over %v (poll %v, %s)\n",
		window, plugvolt.DefaultGuardConfig().PollPeriod, sys.Platform.Spec.Codename)
	fmt.Printf("   package energy:        %10.4f J\n", pkgJ)
	fmt.Printf("   guard energy (attrib): %10.6f J\n", guardJ)
	fmt.Printf("   energy overhead:       %10.4f %%   (paper Table 2 runtime overhead: 0.28%%)\n", energyPct)
	fmt.Printf("   runtime overhead:      %10.4f %%\n", runtimePct)

	// B) Safe undervolt vs full clamp. The clamp deployment (Sec. 5.2)
	// forbids undervolting outright; the polling guard keeps the maximal
	// safe state available. Measure both on identical fresh systems and
	// cross-check against the model's closed form. Core planes only — the
	// fixed uncore draw would dilute both sides equally.
	clampJ := measureCoresJ(cpuName, seed, window, 0)
	safeJ := measureCoresJ(cpuName, seed, window, safeMV)
	measured := (clampJ - safeJ) / clampJ * 100
	probe, err := plugvolt.NewSystem(cpuName, seed)
	if err != nil {
		fatal(err)
	}
	c0 := probe.Platform.Core(0)
	analytic := power.ModelFor(probe.Platform.Spec.Codename).
		UndervoltSavingsPct(c0.CommandedGHz(), c0.CommandedVoltV()*1000, safeMV)
	fmt.Printf("\n== safe undervolt (%d mV) vs full clamp (0 mV) over %v\n", safeMV, window)
	fmt.Printf("   clamp energy (cores):  %10.4f J\n", clampJ)
	fmt.Printf("   safe undervolt:        %10.4f J\n", safeJ)
	fmt.Printf("   measured savings:      %10.2f %%\n", measured)
	fmt.Printf("   model closed form:     %10.2f %%   (savings the clamp deployment forfeits)\n", analytic)

	// C) Per-governor energy curve: the same window under each static
	// scaling governor, from the same integrator that labels the
	// power_core_energy_joules{governor} telemetry series.
	fmt.Printf("\n== per-governor energy over %v\n", window)
	fmt.Printf("   %-12s %12s %10s\n", "governor", "cores J", "avg W")
	for _, gov := range []string{pstate.GovPerformance, pstate.GovPowersave} {
		g, err := plugvolt.NewSystem(cpuName, seed)
		if err != nil {
			fatal(err)
		}
		for c := 0; c < g.Platform.NumCores(); c++ {
			if err := g.CPUFreq.SetGovernor(c, gov); err != nil {
				fatal(err)
			}
		}
		before := g.Platform.Energy.CoresEnergyJ()
		g.RunFor(window)
		e := g.Platform.Energy.CoresEnergyJ() - before
		fmt.Printf("   %-12s %12.4f %10.3f\n", gov, e, e/window.Seconds())
	}
}

// measureCoresJ boots a fresh system, applies offsetMV on every core's
// plane, and returns the summed core-plane energy over the window.
func measureCoresJ(cpuName string, seed int64, window sim.Duration, offsetMV int) float64 {
	s, err := plugvolt.NewSystem(cpuName, seed)
	if err != nil {
		fatal(err)
	}
	if offsetMV != 0 {
		for c := 0; c < s.Platform.NumCores(); c++ {
			if err := s.Platform.WriteOffsetViaMSR(c, offsetMV, msr.PlaneCore); err != nil {
				fatal(err)
			}
		}
	}
	before := s.Platform.Energy.CoresEnergyJ()
	s.RunFor(window)
	return s.Platform.Energy.CoresEnergyJ() - before
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-overhead:", err)
	os.Exit(1)
}
