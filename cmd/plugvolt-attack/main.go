// plugvolt-attack runs the published DVFS fault attacks against a chosen
// defense on a simulated CPU — the experiment E1/E2 driver.
//
// Usage:
//
//	plugvolt-attack -cpu skylake -attack plundervolt -defense none
//	plugvolt-attack -attack all -defense polling
//	plugvolt-attack -matrix            # full attack x defense matrix
package main

import (
	"flag"
	"fmt"
	"os"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/defense"
	"plugvolt/internal/flight"
	"plugvolt/internal/report"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// campaignClock lets one telemetry set follow the matrix across systems:
// every combination boots a fresh simulator, and the clock tracks whichever
// one is currently running. Counters and journal entries from all
// combinations accumulate in the shared set, distinguished by their
// {attack, defense} labels.
type campaignClock struct{ cur *sim.Simulator }

func (c *campaignClock) now() sim.Time {
	if c.cur == nil {
		return 0
	}
	return c.cur.Now()
}

func main() {
	var (
		cpuName = flag.String("cpu", "skylake", "CPU model: skylake, kabylaker or cometlake")
		seed    = flag.Int64("seed", 42, "experiment seed")
		atkName = flag.String("attack", "plundervolt", "attack: plundervolt, voltjockey, v0ltpwn, redteam or all")
		search  = flag.String("search", "replay", "attack schedule: replay (published fixed schedules) or anneal (adaptive red-team glitch search; one search-trace span per probe)")
		defName = flag.String("defense", "none", "defense: none, access-control, polling, microcode, clamp or all")
		matrix  = flag.Bool("matrix", false, "run every attack against every defense")
		metrics = flag.String("metrics-out", "", `write the Prometheus metric exposition here after the matrix ("-" = stdout)`)
		events  = flag.String("events-out", "", `write the JSONL event journal here after the matrix ("-" = stdout)`)
		incOut  = flag.String("incidents-out", "", "write captured flight-recorder incident bundles (framed, concatenated) here; inspect with plugvolt-incidents")
		flightW = flag.Int("flight-window", 0, "post-trigger records per incident bundle (0 = default); only meaningful with -incidents-out")
	)
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-attack")
		return
	}

	attackNames := []string{*atkName}
	defenseNames := []string{*defName}
	if *matrix || *atkName == "all" {
		attackNames = []string{"plundervolt", "voltjockey", "v0ltpwn"}
	}
	switch *search {
	case "replay":
	case "anneal":
		// The adaptive glitch search replaces the published schedules: the
		// campaign list collapses to the annealing red-team attacker.
		attackNames = []string{"redteam"}
	default:
		fatal(fmt.Errorf("unknown search mode %q (want replay or anneal)", *search))
	}
	if *matrix || *defName == "all" {
		defenseNames = []string{"none", "access-control", "polling", "microcode", "clamp"}
	}

	clock := &campaignClock{}
	tel := telemetry.NewSet(clock.now, telemetry.DefaultJournalCap, *seed)
	var results []*attack.Result
	var bundles []*flight.Bundle
	for _, dn := range defenseNames {
		for _, an := range attackNames {
			res, incidents, err := runOne(*cpuName, *seed, an, dn, *incOut != "", *flightW, tel, clock)
			if err != nil {
				fatal(err)
			}
			results = append(results, res)
			// Combo order: the incidents file is a pure function of the
			// flag set and seed, byte-identical across invocations.
			bundles = append(bundles, incidents...)
		}
	}
	report.WriteAttackResults(os.Stdout, results)
	fmt.Println()
	for _, r := range results {
		if r.Notes != "" {
			fmt.Printf("  %s vs %s: %s\n", r.Attack, r.Defense, r.Notes)
		}
	}
	if *metrics != "" {
		if err := telemetry.DumpMetrics(*metrics, tel.Registry()); err != nil {
			fatal(err)
		}
	}
	if *events != "" {
		if err := telemetry.DumpEvents(*events, tel.Events()); err != nil {
			fatal(err)
		}
	}
	if *incOut != "" {
		data, err := flight.EncodeAll(bundles)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*incOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\n%d incident bundle(s) written to %s\n", len(bundles), *incOut)
	}
}

// runOne boots a fresh system per combination so campaigns never share
// state (crashes, characterization, module residue); the shared telemetry
// set is rewired onto each system in turn. With record set, a flight
// recorder rides along and the combination's captured incident bundles are
// returned (victim faults and crashes trigger captures).
func runOne(cpuName string, seed int64, attackName, defenseName string, record bool, window int, tel *telemetry.Set, clock *campaignClock) (*attack.Result, []*flight.Bundle, error) {
	sys, err := plugvolt.NewSystem(cpuName, seed)
	if err != nil {
		return nil, nil, err
	}
	sys.SetTelemetry(tel)
	var rec *flight.Recorder
	if record {
		rec = sys.AttachFlightRecorder(0, window)
	}
	clock.cur = sys.Platform.Sim
	var cm plugvolt.Countermeasure = defense.None{}
	if defenseName != "none" {
		grid, err := sys.Characterize(plugvolt.QuickSweep())
		if err != nil {
			return nil, nil, err
		}
		all, err := sys.Defenses(grid)
		if err != nil {
			return nil, nil, err
		}
		switch defenseName {
		case "access-control":
			cm = all[1]
		case "polling":
			cm = all[2]
		case "microcode":
			cm = all[3]
		case "clamp":
			cm = all[4]
		default:
			return nil, nil, fmt.Errorf("unknown defense %q", defenseName)
		}
	}
	if err := cm.Install(sys.Env()); err != nil {
		return nil, nil, err
	}
	var atk attack.Attack
	switch attackName {
	case "plundervolt":
		atk = attack.DefaultPlundervolt(seed)
	case "voltjockey":
		atk = attack.DefaultVoltJockey()
	case "v0ltpwn":
		atk = attack.DefaultV0LTpwn()
	case "redteam":
		atk = attack.DefaultRedTeam(seed)
	default:
		return nil, nil, fmt.Errorf("unknown attack %q", attackName)
	}
	res, err := atk.Run(sys.Env(), cm.Name())
	if err == nil {
		sys.CollectTelemetry()
	}
	var incidents []*flight.Bundle
	if rec != nil {
		rec.Seal()
		incidents = rec.Bundles()
	}
	return res, incidents, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-attack:", err)
	os.Exit(1)
}
