// plugvolt-report regenerates the complete experiment bundle — every
// figure and table of the reproduction — into one directory:
//
//	artifacts/
//	  fig2_skylake.txt / .csv / .json     characterization maps (F2-F4)
//	  fig3_kabylaker.txt / ...
//	  fig4_cometlake.txt / ...
//	  table2_overhead.txt / .md           SPEC2017 overhead (T2)
//	  e1_attack_matrix.txt / .json        attack effectiveness (E1)
//	  e2_defense_matrix.txt               qualitative comparison (E2)
//	  e3_turnaround.txt                   deployment-level windows (E3)
//	  index.md                            what's what
//
// Usage:
//
//	plugvolt-report -out artifacts
//	plugvolt-report -out artifacts -full   # adds all 5 defenses + class curves
//	plugvolt-report -workers 8             # shard the sweeps; same bytes out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/report"
	"plugvolt/internal/sim"
	"plugvolt/internal/spec"
)

var (
	outDir  = flag.String("out", "artifacts", "output directory")
	seed    = flag.Int64("seed", 42, "experiment seed")
	full    = flag.Bool("full", false, "run the full defense matrix and class curves (slower)")
	workers = flag.Int("workers", 0, "frequency-row shards per sweep (0 = GOMAXPROCS); artifacts are identical for any value")
)

func main() {
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-report")
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	var index strings.Builder
	index.WriteString("# plugvolt experiment bundle\n\nRegenerated with `plugvolt-report`.\n\n")
	index.WriteString("The `fig*` grids are golden artifacts: `go test ./internal/golden -run Golden` " +
		"re-derives them with 1, 2 and 8 workers and diffs bit-for-bit; after an intentional " +
		"engine change, regenerate with `go test ./internal/golden -run Golden -update` " +
		"(or rerun `plugvolt-report`, which produces identical bytes for any `-workers` value).\n\n")

	figures(&index)
	table2(&index)
	attackMatrix(&index)
	defenseMatrix(&index)
	turnaround(&index)
	if *full {
		classCurves(&index)
	}

	write("index.md", index.String())
	fmt.Fprintf(os.Stderr, "bundle written to %s\n", *outDir)
}

// figures regenerates F2-F4 for all three CPU models.
func figures(index *strings.Builder) {
	models := []struct {
		fig   int
		model string
	}{{2, "skylake"}, {3, "kabylaker"}, {4, "cometlake"}}
	for _, m := range models {
		step("fig%d: characterizing %s", m.fig, m.model)
		sys, err := plugvolt.NewSystem(m.model, *seed)
		if err != nil {
			fatal(err)
		}
		grid, err := sys.Characterize(quickCfg())
		if err != nil {
			fatal(err)
		}
		base := fmt.Sprintf("fig%d_%s", m.fig, m.model)
		var txt, csv strings.Builder
		if err := report.WriteHeatmap(&txt, grid); err != nil {
			fatal(err)
		}
		if err := report.WriteGridCSV(&csv, grid); err != nil {
			fatal(err)
		}
		js, err := grid.JSON()
		if err != nil {
			fatal(err)
		}
		write(base+".txt", txt.String())
		write(base+".csv", csv.String())
		write(base+".json", string(js))
		fmt.Fprintf(index, "- `%s.{txt,csv,json}` — Fig. %d safe/unsafe map (%s), maximal safe state %d mV\n",
			base, m.fig, grid.Model, grid.MaximalSafeOffsetMV(0))
	}
}

// table2 regenerates the overhead table on Comet Lake.
func table2(index *strings.Builder) {
	step("table2: SPEC overhead on cometlake")
	sys, err := plugvolt.NewSystem("cometlake", 2017)
	if err != nil {
		fatal(err)
	}
	grid, err := sys.Characterize(quickCfg())
	if err != nil {
		fatal(err)
	}
	guard, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		fatal(err)
	}
	h, err := spec.NewHarness(sys.Platform, sys.Kernel, spec.DefaultHarnessConfig())
	if err != nil {
		fatal(err)
	}
	loadGuard := func(on bool) error {
		loaded := sys.Kernel.Loaded(core.ModuleName)
		switch {
		case on && !loaded:
			return sys.Kernel.Load(guard.Module())
		case !on && loaded:
			return sys.Kernel.Unload(core.ModuleName)
		}
		return nil
	}
	tab, err := h.MeasureTable(loadGuard, 0)
	if err != nil {
		fatal(err)
	}
	var txt, md strings.Builder
	report.WriteTable2(&txt, tab)
	report.WriteTable2Markdown(&md, tab)
	write("table2_overhead.txt", txt.String())
	write("table2_overhead.md", md.String())
	fmt.Fprintf(index, "- `table2_overhead.{txt,md}` — T2, mean |slowdown| %.2f%% (paper 0.28%%)\n", tab.MeanAbsPct)
}

// attackMatrix regenerates E1 (and E2's live columns with -full).
func attackMatrix(index *strings.Builder) {
	step("e1: attack matrix")
	newEnv := func() (*defense.Env, error) {
		sys, err := plugvolt.NewSystem("skylake", *seed)
		if err != nil {
			return nil, err
		}
		return sys.Env(), nil
	}
	pollBuilder := func(env *defense.Env) (defense.Countermeasure, error) {
		sc, err := core.NewShardedCharacterizer(env.Platform.Spec, env.Platform.Seed(), quickCfg())
		if err != nil {
			return nil, err
		}
		g, err := sc.Run()
		if err != nil {
			return nil, err
		}
		return defense.NewPolling(g.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	}
	defenses := []attack.DefenseFactory{
		{Name: "none", Build: func(*defense.Env) (defense.Countermeasure, error) { return defense.None{}, nil }},
		{Name: "polling", Build: pollBuilder},
	}
	if *full {
		defenses = append(defenses,
			attack.DefenseFactory{Name: "access-control", Build: func(*defense.Env) (defense.Countermeasure, error) {
				return &defense.AccessControl{}, nil
			}},
			attack.DefenseFactory{Name: "microcode", Build: func(env *defense.Env) (defense.Countermeasure, error) {
				msv, err := maximalSafe(env)
				if err != nil {
					return nil, err
				}
				return &defense.Microcode{MaxSafeOffsetMV: msv}, nil
			}},
			attack.DefenseFactory{Name: "clamp", Build: func(env *defense.Env) (defense.Countermeasure, error) {
				msv, err := maximalSafe(env)
				if err != nil {
					return nil, err
				}
				return &defense.ClampMSR{LimitMV: msv}, nil
			}},
		)
	}
	attacks := []attack.AttackFactory{
		{Name: "plundervolt", Build: func() attack.Attack { return attack.DefaultPlundervolt(*seed) }},
		{Name: "voltjockey", Build: func() attack.Attack { return attack.DefaultVoltJockey() }},
		{Name: "v0ltpwn", Build: func() attack.Attack { return attack.DefaultV0LTpwn() }},
		{Name: "voltpillager", Build: func() attack.Attack { return attack.DefaultVoltPillager() }},
	}
	results, err := attack.Matrix(newEnv, defenses, attacks)
	if err != nil {
		fatal(err)
	}
	var txt strings.Builder
	report.WriteAttackResults(&txt, results)
	txt.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&txt, "  %s vs %s: %s\n", r.Attack, r.Defense, r.Notes)
	}
	write("e1_attack_matrix.txt", txt.String())
	js, err := attack.ResultsJSON(results)
	if err != nil {
		fatal(err)
	}
	write("e1_attack_matrix.json", string(js))
	fmt.Fprintf(index, "- `e1_attack_matrix.{txt,json}` — E1, %d cells (voltpillager documents the hardware boundary)\n", len(results))
}

// defenseMatrix regenerates the E2 qualitative comparison.
func defenseMatrix(index *strings.Builder) {
	var txt strings.Builder
	report.WriteDefenseMatrix(&txt, []report.DefenseProperty{
		{Defense: "none", AllowsBenignDVFS: true},
		{Defense: "access-control (SA-00289)", PreventsFaults: true, SurvivesStepping: true},
		{Defense: "minefield (deflection)", PreventsFaults: true, AllowsBenignDVFS: true},
		{Defense: "polling (this work)", PreventsFaults: true, AllowsBenignDVFS: true, SurvivesStepping: true},
		{Defense: "microcode write-ignore", PreventsFaults: true, AllowsBenignDVFS: true, SurvivesStepping: true, HardwareCapable: true},
		{Defense: "clamp MSR", PreventsFaults: true, AllowsBenignDVFS: true, SurvivesStepping: true, HardwareCapable: true},
	})
	write("e2_defense_matrix.txt", txt.String())
	index.WriteString("- `e2_defense_matrix.txt` — E2 qualitative comparison (live evidence in internal/defense tests)\n")
}

// turnaround regenerates the E3 table.
func turnaround(index *strings.Builder) {
	step("e3: turnaround")
	sys, err := plugvolt.NewSystem("skylake", *seed)
	if err != nil {
		fatal(err)
	}
	grid, err := sys.Characterize(quickCfg())
	if err != nil {
		fatal(err)
	}
	g, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		fatal(err)
	}
	var txt strings.Builder
	report.WriteTurnaround(&txt, []report.TurnaroundRow{
		{Deployment: "kernel module (Sec. 4.3)",
			WorstCase: g.WorstCaseTurnaround(20*sim.Microsecond, 0.5).String(),
			Note:      "poll period + VR command latency + slew from sweep floor"},
		{Deployment: "microcode (Sec. 5.1)", WorstCase: "0", Note: "wrmsr write-ignored before commit"},
		{Deployment: "clamp MSR (Sec. 5.2)", WorstCase: "0", Note: "offset clamped in hardware"},
	})
	write("e3_turnaround.txt", txt.String())
	index.WriteString("- `e3_turnaround.txt` — E3 deployment-level unsafe windows (empirical rail dwell: plugvolt-trace)\n")
}

// classCurves writes the per-instruction-class onset comparison (-full).
func classCurves(index *strings.Builder) {
	step("class curves (imul/aes/fma)")
	var curves []report.OnsetCurve
	for _, class := range []string{"imul", "aesenc", "fma"} {
		sys, err := plugvolt.NewSystem("skylake", *seed)
		if err != nil {
			fatal(err)
		}
		cfg := quickCfg()
		cfg.Class = cpu.Class(class)
		grid, err := sys.Characterize(cfg)
		if err != nil {
			fatal(err)
		}
		curves = append(curves, report.OnsetCurve{Label: class, Grid: grid})
	}
	var txt strings.Builder
	if err := report.WriteOnsetCurves(&txt, curves); err != nil {
		fatal(err)
	}
	write("class_onsets.txt", txt.String())
	index.WriteString("- `class_onsets.txt` — measured per-class fault onsets (imul shallowest)\n")
}

// --- helpers ---

// quickCfg is the bundle's sweep configuration: plugvolt.QuickSweep plus
// the CLI's worker count (the grids are identical for any value).
func quickCfg() core.CharacterizerConfig {
	cfg := plugvolt.QuickSweep()
	cfg.Workers = *workers
	return cfg
}

func maximalSafe(env *defense.Env) (int, error) {
	sc, err := core.NewShardedCharacterizer(env.Platform.Spec, env.Platform.Seed(), quickCfg())
	if err != nil {
		return 0, err
	}
	g, err := sc.Run()
	if err != nil {
		return 0, err
	}
	return g.MaximalSafeOffsetMV(20), nil
}

func write(name, content string) {
	if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func step(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-report:", err)
	os.Exit(1)
}
