package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The committed BENCH_<n>.json artifacts must stay schema-equal: same
// top-level shape, same context fields, ns/op on every row, and a raw field
// whose benchstat rows cover every parsed benchmark (the drift this guards
// against: an older baseline whose raw text lacked the rows the harness now
// emits, silently breaking `benchstat old.txt new.txt`).

func repoArtifacts(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least BENCH_0.json and BENCH_1.json, got %v", paths)
	}
	sort.Strings(paths)
	return paths
}

// schema reduces an artifact to its comparable shape.
func schema(t *testing.T, art *Artifact) string {
	t.Helper()
	ctx := make([]string, 0, len(art.Context))
	for k := range art.Context {
		ctx = append(ctx, k)
	}
	sort.Strings(ctx)
	for _, b := range art.Benchmarks {
		if b.Name == "" || b.Iterations <= 0 {
			t.Errorf("malformed benchmark row %+v", b)
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			t.Errorf("row %s lacks ns/op", b.Name)
		}
	}
	return fmt.Sprintf("context[%s] benchmarks[name iterations metrics(ns/op)] raw[%t]",
		strings.Join(ctx, " "), art.Raw != "")
}

func TestCommittedArtifactsSchemaEqual(t *testing.T) {
	paths := repoArtifacts(t)
	var ref string
	for _, p := range paths {
		art, err := load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(art.Benchmarks) == 0 {
			t.Fatalf("%s: no benchmark rows", p)
		}
		s := schema(t, art)
		if ref == "" {
			ref = s
			continue
		}
		if s != ref {
			t.Errorf("%s schema %q != %s schema %q", p, s, paths[0], ref)
		}
	}
}

func TestRawFieldCoversEveryBenchmark(t *testing.T) {
	// The benchstat contract: every parsed row exists verbatim in raw, and
	// re-parsing raw yields exactly the same rows.
	for _, p := range repoArtifacts(t) {
		art, err := load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		reparsed, err := parse(strings.NewReader(art.Raw))
		if err != nil {
			t.Fatalf("%s: reparse: %v", p, err)
		}
		if len(reparsed.Benchmarks) != len(art.Benchmarks) {
			t.Fatalf("%s: raw has %d benchmark rows, parsed view has %d — raw is stale",
				p, len(reparsed.Benchmarks), len(art.Benchmarks))
		}
		for i, b := range art.Benchmarks {
			if reparsed.Benchmarks[i].Name != b.Name {
				t.Fatalf("%s: row %d: raw says %s, parsed view says %s",
					p, i, reparsed.Benchmarks[i].Name, b.Name)
			}
		}
	}
}

func TestBaselinesShareBenchmarkSet(t *testing.T) {
	// The whole point of numbered baselines is longitudinal comparison:
	// later artifacts may add benchmarks as the suite grows (BENCH_2 added
	// the guard-poll and fleet rows), but must never silently drop one an
	// earlier baseline covers — the shared history stays comparable.
	paths := repoArtifacts(t)
	nameSet := func(art *Artifact) map[string]bool {
		set := map[string]bool{}
		for _, b := range art.Benchmarks {
			set[b.Name] = true
		}
		return set
	}
	var prev map[string]bool
	var prevPath string
	for _, p := range paths {
		art, err := load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		ns := nameSet(art)
		for n := range prev {
			if !ns[n] {
				t.Errorf("%s dropped %s, which %s covers", p, n, prevPath)
			}
		}
		prev, prevPath = ns, p
	}
}

func TestCompareGateFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name, nsop string) string {
		p := filepath.Join(dir, name)
		doc := fmt.Sprintf(`{"context":{},"benchmarks":[
			{"name":"BenchmarkFig2SkyLakeCharacterization","iterations":300,"metrics":{"ns/op":%s}},
			{"name":"BenchmarkOther","iterations":300,"metrics":{"ns/op":100}}],"raw":"x"}`, nsop)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", "1000")
	newP := write("new.json", "1300") // +30% on Fig2, Other unchanged

	var sb strings.Builder
	regressed, err := compareArtifacts(&sb, oldP, newP, 20, regexp.MustCompile("Fig2"), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 1 || !strings.Contains(regressed[0], "Fig2") {
		t.Fatalf("regressed = %v, want the Fig2 benchmark", regressed)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report does not mark the regression:\n%s", sb.String())
	}

	// Under the threshold: quiet.
	okP := write("ok.json", "1100") // +10%
	regressed, err = compareArtifacts(&sb, oldP, okP, 20, regexp.MustCompile("Fig2"), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Fatalf("within-threshold run flagged: %v", regressed)
	}

	// The gate regexp scopes enforcement: Other regressing 30% is reported
	// but not fatal when the gate only watches Fig2.
	otherP := write("other.json", "1000")
	doc := `{"context":{},"benchmarks":[
		{"name":"BenchmarkFig2SkyLakeCharacterization","iterations":300,"metrics":{"ns/op":1000}},
		{"name":"BenchmarkOther","iterations":300,"metrics":{"ns/op":200}}],"raw":"x"}`
	if err := os.WriteFile(otherP, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	regressed, err = compareArtifacts(&sb, oldP, otherP, 20, regexp.MustCompile("Fig2"), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Fatalf("out-of-scope regression gated: %v", regressed)
	}
}

func TestCompareUnknownMetricFailsFastListingColumns(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.json")
	doc := `{"context":{},"benchmarks":[
		{"name":"BenchmarkX","iterations":300,"metrics":{"ns/op":100,"allocs/op":0}},
		{"name":"BenchmarkY","iterations":300,"metrics":{"ns/op":200,"J/op":0.5}}],"raw":"x"}`
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	_, err := compareArtifacts(&sb, p, p, 0, nil, "joules/op")
	if err == nil {
		t.Fatal("unknown metric accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"joules/op"`) {
		t.Fatalf("error does not name the bad metric: %v", err)
	}
	// Sorted union of every column either artifact reports.
	if !strings.Contains(msg, "J/op, allocs/op, ns/op") {
		t.Fatalf("error does not list the available columns: %v", err)
	}

	// A metric that exists still compares fine.
	if _, err := compareArtifacts(&sb, p, p, 0, nil, "J/op"); err != nil {
		t.Fatalf("known metric rejected: %v", err)
	}
}

// TestCompareNamesArtifactLackingMetric pins the diagnosis when only one
// side lacks the requested metric — e.g. a BENCH baseline recorded before
// probes/op existed: the error must name that artifact and its real
// columns, not claim no benchmarks are shared.
func TestCompareNamesArtifactLackingMetric(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", `{"context":{},"benchmarks":[
		{"name":"BenchmarkBisectVsSweep/bisect","iterations":1,"metrics":{"ns/op":100}}],"raw":"x"}`)
	newP := write("new.json", `{"context":{},"benchmarks":[
		{"name":"BenchmarkBisectVsSweep/bisect","iterations":1,"metrics":{"ns/op":90,"probes/op":120}}],"raw":"x"}`)

	var sb strings.Builder
	_, err := compareArtifacts(&sb, oldP, newP, 0, nil, "probes/op")
	if err == nil {
		t.Fatal("metric missing from the baseline accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, oldP) {
		t.Fatalf("error does not name the artifact lacking the metric: %v", err)
	}
	if strings.Contains(msg, newP) {
		t.Fatalf("error blames the artifact that has the metric: %v", err)
	}
	if !strings.Contains(msg, `"probes/op"`) || !strings.Contains(msg, "ns/op") {
		t.Fatalf("error does not state the missing metric and the real columns: %v", err)
	}
	if strings.Contains(msg, "no common") {
		t.Fatalf("still the generic no-common-benchmarks error: %v", err)
	}

	// Swapped order: the error must follow the lacking artifact.
	_, err = compareArtifacts(&sb, newP, oldP, 0, nil, "probes/op")
	if err == nil || !strings.Contains(err.Error(), oldP) {
		t.Fatalf("swapped order does not name the lacking artifact: %v", err)
	}
}
