// plugvolt-bench converts `go test -bench` output into a JSON benchmark
// artifact and compares two such artifacts.
//
// The JSON carries the verbatim benchmark text in its "raw" field, so an
// artifact remains directly consumable by benchstat:
//
//	jq -r .raw BENCH_0.json > old.txt
//	jq -r .raw BENCH_1.json > new.txt
//	benchstat old.txt new.txt
//
// Usage:
//
//	go test -bench . -count 5 ./... | plugvolt-bench -o BENCH_1.json
//	plugvolt-bench -compare BENCH_0.json BENCH_1.json
//	plugvolt-bench -compare -match Fig2 -fail-over 20 BENCH_1.json NOW.json
//
// With -fail-over the comparison becomes a CI gate: exit status 4 when any
// benchmark selected by -match regresses its mean ns/op by more than the
// given percentage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"plugvolt/internal/buildinfo"
)

// Artifact is the on-disk benchmark record. Raw preserves the exact
// benchstat-compatible text; Benchmarks is the parsed view for tooling that
// wants numbers without re-parsing.
type Artifact struct {
	// Context is the goos/goarch/pkg/cpu header lines keyed by field name.
	Context map[string]string `json:"context"`
	// Benchmarks holds one entry per benchmark result line, in input order.
	Benchmarks []Result `json:"benchmarks"`
	// Raw is the verbatim `go test -bench` text the artifact was built from.
	Raw string `json:"raw"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit to value, e.g. "ns/op": 845123.5, "allocs/op": 0.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write the JSON artifact to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two artifacts: plugvolt-bench -compare OLD.json NEW.json")
	failOver := flag.Float64("fail-over", 0, "with -compare: exit 4 if any matched benchmark's mean regresses by more than this percentage (0 = report only)")
	match := flag.String("match", "", "with -compare: regexp restricting which benchmarks the -fail-over gate applies to (default all)")
	metric := flag.String("metric", "ns/op", `with -compare: which per-op metric to compare and gate (e.g. "ns/op", "J/op", "allocs/op")`)
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-bench")
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: plugvolt-bench -compare [-fail-over PCT] [-match RE] OLD.json NEW.json")
			os.Exit(2)
		}
		gate, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plugvolt-bench: -match:", err)
			os.Exit(2)
		}
		regressed, err := compareArtifacts(os.Stdout, flag.Arg(0), flag.Arg(1), *failOver, gate, *metric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plugvolt-bench:", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "plugvolt-bench: %d benchmark(s) regressed beyond %.1f%%: %s\n",
				len(regressed), *failOver, strings.Join(regressed, ", "))
			os.Exit(4)
		}
		return
	}

	art, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plugvolt-bench:", err)
		os.Exit(1)
	}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "plugvolt-bench: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "plugvolt-bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "plugvolt-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmark lines)\n", *out, len(art.Benchmarks))
}

// parse reads `go test -bench` text, keeping every line in Raw and lifting
// header and Benchmark lines into structured fields.
func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{Context: map[string]string{}}
	var raw strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				art.Context[key] = strings.TrimSpace(v)
			}
		}
		if res, ok := parseBenchLine(line); ok {
			art.Benchmarks = append(art.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	art.Raw = raw.String()
	return art, nil
}

// parseBenchLine parses "BenchmarkName-8  100  123.4 ns/op  0 B/op ..."
// into a Result. Non-benchmark lines return ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

// compareArtifacts prints per-benchmark mean deltas for one metric between
// two artifacts and, when failOver > 0, returns the names matched by gate
// whose mean regressed beyond that percentage. The metric is any per-op unit
// benchmarks report — "ns/op" for runtime, "J/op" for the energy axis. It is
// a quick gate for CI and local runs; use benchstat on the raw fields for a
// statistically grounded comparison.
func compareArtifacts(w io.Writer, oldPath, newPath string, failOver float64, gate *regexp.Regexp, metric string) ([]string, error) {
	oldArt, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newArt, err := load(newPath)
	if err != nil {
		return nil, err
	}
	// Fail fast naming the artifact that lacks the requested metric, so a
	// stale baseline (recorded before a metric existed) is diagnosed as
	// such rather than surfacing as "no common benchmarks".
	for _, a := range []struct {
		path string
		art  *Artifact
	}{{oldPath, oldArt}, {newPath, newArt}} {
		if avail := availableMetrics(a.art); len(avail) > 0 && !contains(avail, metric) {
			return nil, fmt.Errorf("artifact %s has no %q metric; it reports: %s",
				a.path, metric, strings.Join(avail, ", "))
		}
	}
	oldMeans := means(oldArt, metric)
	newMeans := means(newArt, metric)
	names := make([]string, 0, len(oldMeans))
	for name := range oldMeans {
		if _, ok := newMeans[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no common %s benchmarks between %s and %s", metric, oldPath, newPath)
	}
	var regressed []string
	fmt.Fprintf(w, "%-50s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	for _, name := range names {
		o, n := oldMeans[name], newMeans[name]
		delta := (n - o) / o * 100
		mark := ""
		if failOver > 0 && delta > failOver && (gate == nil || gate.MatchString(name)) {
			regressed = append(regressed, name)
			mark = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-50s %14.4g %14.4g %+7.1f%%%s\n", name, o, n, delta, mark)
	}
	return regressed, nil
}

// availableMetrics is the sorted union of metric columns either artifact's
// benchmarks report, so an unknown -metric fails fast naming the real ones
// instead of claiming no benchmarks are shared.
func availableMetrics(arts ...*Artifact) []string {
	set := map[string]bool{}
	for _, art := range arts {
		for _, b := range art.Benchmarks {
			for unit := range b.Metrics {
				set[unit] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for unit := range set {
		out = append(out, unit)
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{}
	if err := json.Unmarshal(data, art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

// means averages one metric per benchmark name across repeated -count runs;
// benchmarks that never report the metric are absent from the result.
func means(art *Artifact, metric string) map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, b := range art.Benchmarks {
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		sum[b.Name] += v
		n[b.Name]++
	}
	out := make(map[string]float64, len(sum))
	for name, s := range sum {
		out[name] = s / float64(n[name])
	}
	return out
}
