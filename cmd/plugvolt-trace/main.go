// plugvolt-trace records the victim core's rail-voltage timeline during a
// live attack and reports the empirical unsafe dwell — the measured version
// of the Sec. 5 turnaround analysis.
//
// Usage:
//
//	plugvolt-trace -cpu skylake                 # guarded run, dwell stats
//	plugvolt-trace -cpu skylake -unguarded      # control run
//	plugvolt-trace -csv timeline.csv            # dump samples for plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"plugvolt"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/trace"
)

func main() {
	var (
		cpuName   = flag.String("cpu", "skylake", "CPU model")
		seed      = flag.Int64("seed", 42, "experiment seed")
		unguarded = flag.Bool("unguarded", false, "run the control experiment without the module")
		csvPath   = flag.String("csv", "", "write the sample timeline to this CSV file")
	)
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-trace")
		return
	}

	sys, err := plugvolt.NewSystem(*cpuName, *seed)
	if err != nil {
		fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		fatal(err)
	}
	unsafe := grid.UnsafeSet()
	if !*unguarded {
		if _, err := sys.DeployGuard(grid); err != nil {
			fatal(err)
		}
	}

	p := sys.Platform
	victim := 1
	rec, err := trace.NewRecorder(p.Core(victim), 5*sim.Microsecond)
	if err != nil {
		fatal(err)
	}
	if err := rec.Start(p.Sim); err != nil {
		fatal(err)
	}
	freq := p.FreqKHz(victim)
	attackOffset := unsafe.OnsetMV[freq] - 60
	attacker := p.Sim.Every(537*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(victim, attackOffset, msr.PlaneCore)
	})
	p.Sim.RunFor(25 * sim.Millisecond)
	attacker.Stop()
	rec.Stop()

	mode := "guarded"
	if *unguarded {
		mode = "UNGUARDED (control)"
	}
	fmt.Printf("%s on %s: attacker writes %d mV every 537us for 25ms; %d samples at 5us\n\n",
		mode, p.Spec.Codename, attackOffset, rec.Len())

	reg := rec.UnsafeRegisterDwell(unsafe)
	fmt.Printf("unsafe REGISTER dwell: total %v, longest %v, %d episodes (%.2f%% of run)\n",
		reg.Total, reg.Longest, reg.Episodes, reg.Fraction()*100)
	rail := rec.UnsafeRailDwell(unsafe, func(freqKHz int) float64 {
		return p.Spec.NominalMV(msr.KHzToRatio(freqKHz, p.Spec.BusMHz))
	})
	fmt.Printf("unsafe RAIL dwell:     total %v, longest %v, %d episodes (%.2f%% of run)\n",
		rail.Total, rail.Longest, rail.Episodes, rail.Fraction()*100)
	min, at, err := rec.MinRailMV()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deepest rail: %.1f mV at %v (nominal %.1f mV)\n",
		min, at, p.Spec.NominalMV(msr.KHzToRatio(freq, p.Spec.BusMHz)))
	if !*unguarded && rail.Total == 0 {
		fmt.Println("\n=> the regulator never realized an unsafe voltage: the polling guard")
		fmt.Println("   wins the register-vs-rail race, which is the measured mechanism behind")
		fmt.Println("   the paper's \"completely prevents DVFS faults\" result.")
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-trace:", err)
	os.Exit(1)
}
