// plugvolt-guard demonstrates the deployed countermeasure: it
// characterizes a machine, loads the polling module, unleashes a live
// undervolting adversary, and reports interventions, fault counts, the
// maximal safe state, and the Sec. 5 turnaround comparison (E3).
//
// Usage:
//
//	plugvolt-guard -cpu skylake
//	plugvolt-guard -cpu cometlake -poll 250us -turnaround
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"plugvolt"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/flight"
	"plugvolt/internal/kernel"
	"plugvolt/internal/msr"
	"plugvolt/internal/obs"
	"plugvolt/internal/report"
	"plugvolt/internal/sim"
	"plugvolt/internal/slo"
	"plugvolt/internal/trace"
	"plugvolt/internal/victim"
)

func main() {
	var (
		cpuName    = flag.String("cpu", "skylake", "CPU model")
		seed       = flag.Int64("seed", 42, "experiment seed")
		poll       = flag.Duration("poll", 100*time.Microsecond, "guard poll period")
		window     = flag.Duration("window", 50*time.Millisecond, "attack observation window (virtual)")
		turnaround = flag.Bool("turnaround", true, "print the E3 turnaround comparison")
		metricsOut = flag.String("metrics-out", "", `write the Prometheus metric exposition here after the run ("-" = stdout)`)
		eventsOut  = flag.String("events-out", "", `write the JSONL event journal here after the run ("-" = stdout)`)
		tracePath  = flag.String("trace", "", `record the victim core's operating-point timeline and dump it as CSV here ("-" = stdout)`)
		traceOut   = flag.String("trace-out", "", `write the causal span trace as Chrome trace JSON here ("-" = stdout); load in Perfetto`)
		foldedOut  = flag.String("folded-out", "", `write the span trace in folded flamegraph format here ("-" = stdout)`)
		listen     = flag.String("listen", "", `serve /metrics /events /traces /healthz /incidents /debug/pprof on this address (e.g. :8080) while the experiment runs`)
		sloCheck   = flag.Bool("slo", false, "evaluate the guard SLO rules after the run; exit 3 on violation")
		incOut     = flag.String("incidents-out", "", `write captured flight-recorder incident bundles (framed, concatenated) here ("-" = stdout); inspect with plugvolt-incidents`)
		flightW    = flag.Int("flight-window", 0, "post-trigger records per incident bundle (0 = default); only meaningful with -incidents-out or -listen")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-guard")
		return
	}

	sys, err := plugvolt.NewSystem(*cpuName, *seed)
	if err != nil {
		fatal(err)
	}
	buildinfo.Register(sys.Telemetry.Registry())

	// Flight recorder: attach before characterization so the ring holds the
	// freshest pre-trigger history of everything the machine did. Captures
	// fire on victim crash and on SLO/energy-budget violations below.
	var frec *flight.Recorder
	if *incOut != "" || *listen != "" {
		frec = sys.AttachFlightRecorder(0, *flightW)
	}
	dumpIncidents := func() {
		if frec == nil || *incOut == "" {
			return
		}
		frec.Seal()
		bundles := frec.Bundles()
		data, err := flight.EncodeAll(bundles)
		if err != nil {
			fatal(err)
		}
		if *incOut == "-" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*incOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d incident bundle(s) written to %s\n", len(bundles), *incOut)
	}

	// The exposition server answers from its own goroutines while main
	// drives the (single-threaded) simulator, so main holds mu while the
	// simulation advances and the server locks it per request; the attack
	// loop releases it briefly between chunks so requests drain.
	var mu sync.Mutex
	var srv *obs.Server
	if *listen != "" {
		srv = &obs.Server{
			Telemetry: sys.Telemetry,
			Collect:   sys.CollectTelemetry,
			Clock:     func() sim.Time { return sys.Platform.Sim.Now() },
			Energy:    func() *obs.EnergyHealth { return energyHealth(sys) },
			Flight:    frec,
			Lock:      &mu,
		}
		httpSrv, addr, err := srv.Start(*listen)
		if err != nil {
			fatal(err)
		}
		defer httpSrv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s\n", addr)
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("== %s (%s, microcode %s)\n", sys.Platform.Spec.Name,
		sys.Platform.Spec.Codename, sys.Platform.Spec.Microcode)

	fmt.Println("-- S1: characterizing safe/unsafe states (Algorithm 2)...")
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		fatal(err)
	}
	unsafe := grid.UnsafeSet()
	msv := grid.MaximalSafeOffsetMV(5)
	fmt.Printf("   unsafe regions found at all %d frequencies; maximal safe state %d mV; %d reboots\n",
		len(unsafe.OnsetMV), msv, grid.Reboots)

	cfg := plugvolt.DefaultGuardConfig()
	cfg.PollPeriod = sim.Duration(poll.Nanoseconds()) * sim.Nanosecond
	pol, err := sys.DeployGuardConfig(grid, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("-- S2: kernel module %q loaded, polling every %v\n", "plug_your_volt", *poll)

	// The watchdog turns the paper's temporal guarantee into checkable
	// rules: its predicate classifies a mailbox write against the grid's
	// unsafe boundary at the core's current frequency.
	p := sys.Platform
	watchdog := &slo.Watchdog{
		Tracer:  sys.Telemetry.Spans(),
		Journal: sys.Telemetry.Events(),
		Rules: append(slo.DefaultRules(cfg.PollPeriod),
			// Guard energy budget: the kernel-attributed guard power per core
			// must average under 250 mW — the energy face of the paper's
			// 0.28% runtime-overhead claim. The default 100us poll costs
			// ~0.1 W under sustained attack; a 4x faster poll (~0.4 W)
			// trips this rule.
			slo.EnergyBudgetRule(0.250)),
		Unsafe: func(core, offsetMV int) bool {
			return unsafe.Contains(p.FreqKHz(core), offsetMV)
		},
		GuardEnergyJ: sys.Kernel.EnergyJ,
		NumCores:     p.NumCores(),
	}
	if srv != nil {
		srv.Watchdog = watchdog
	}

	// Live adversary: rewrite an unsafe offset on core 1 continually.
	var rec *trace.Recorder
	if *tracePath != "" {
		rec, err = trace.NewRecorder(p.Core(1), 5*sim.Microsecond)
		if err != nil {
			fatal(err)
		}
		if err := rec.Start(p.Sim); err != nil {
			fatal(err)
		}
	}
	freq := p.FreqKHz(1)
	attackOffset := unsafe.OnsetMV[freq] - 60
	attacker := p.Sim.Every(537*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore)
	})
	defer attacker.Stop()

	faults := 0
	deadline := p.Sim.Now() + sim.Duration(window.Nanoseconds())*sim.Nanosecond
	for p.Sim.Now() < deadline {
		// Yield the simulator lock between chunks so a live exposition
		// server can answer mid-run.
		mu.Unlock()
		mu.Lock()
		p.Sim.RunFor(200 * sim.Microsecond)
		loop, err := victim.NewIMulLoop(p.Core(1), 100_000)
		if err != nil {
			fatal(err)
		}
		res, err := loop.RunBatch()
		if err != nil {
			fmt.Println("   MACHINE CRASHED under attack — guard failed")
			frec.Trigger(flight.CauseCrash, 1, fmt.Sprintf("victim crashed under attack: %v", err))
			dumpIncidents()
			os.Exit(2)
		}
		faults += res.Faults
	}
	fmt.Printf("-- attack: offset %d mV rewritten every 537us for %v (virtual)\n", attackOffset, *window)
	fmt.Printf("   EXECUTE-thread faults: %d (paper: countermeasure completely eliminates faults)\n", faults)
	fmt.Printf("   guard checks: %d, interventions: %d, last at %v\n",
		pol.Guard.Checks, pol.Guard.Interventions, pol.Guard.LastIntervention)

	printAttribution(sys)

	if rec != nil {
		rec.Stop()
		if err := writeTo(*tracePath, rec.WriteCSV); err != nil {
			fatal(err)
		}
		if *tracePath != "-" {
			fmt.Fprintf(os.Stderr, "trace (%d samples) written to %s\n", rec.Len(), *tracePath)
		}
	}

	// Evaluate the SLO before dumping the journal so violations land in the
	// events output.
	sloFailed := false
	if *sloCheck {
		rep := watchdog.Evaluate(p.Sim.Now())
		rep.EmitJournal(sys.Telemetry.Events())
		fmt.Println("\n-- SLO watchdog")
		fmt.Print(rep.Summary())
		sloFailed = !rep.OK()
		// Each violated rule freezes an incident: the ring holds the guard
		// polls and mailbox writes leading up to the breach.
		for _, v := range rep.Violations {
			cause := flight.CauseSLO
			if v.Rule.Kind == slo.KindGuardEnergyBudget {
				cause = flight.CauseEnergyBudget
			}
			frec.Trigger(cause, v.Core, fmt.Sprintf("%s: %s", v.Rule.String(), v.Detail))
		}
	}

	if *traceOut != "" {
		if err := writeTo(*traceOut, sys.Telemetry.Spans().WriteChromeTrace); err != nil {
			fatal(err)
		}
		if *traceOut != "-" {
			fmt.Fprintf(os.Stderr, "span trace (%d spans) written to %s\n",
				sys.Telemetry.Spans().Len(), *traceOut)
		}
	}
	if *foldedOut != "" {
		if err := writeTo(*foldedOut, sys.Telemetry.Spans().WriteFolded); err != nil {
			fatal(err)
		}
	}
	if err := sys.DumpTelemetry(*metricsOut, *eventsOut); err != nil {
		fatal(err)
	}

	if *turnaround {
		fmt.Println("\n-- E3: worst-case unsafe-register dwell per deployment level")
		wc := pol.Guard.WorstCaseTurnaround(20*sim.Microsecond, 0.5)
		report.WriteTurnaround(os.Stdout, []report.TurnaroundRow{
			{Deployment: "kernel module (Sec. 4.3)", WorstCase: wc.String(),
				Note: "poll period + VR command latency + slew from sweep floor"},
			{Deployment: "microcode (Sec. 5.1)", WorstCase: "0",
				Note: "wrmsr to 0x150 is write-ignored before it commits"},
			{Deployment: "clamp MSR (Sec. 5.2)", WorstCase: "0",
				Note: "offset clamped to MSR_VOLTAGE_OFFSET_LIMIT in hardware"},
		})
	}
	dumpIncidents()
	if sloFailed {
		os.Exit(3)
	}
}

// printAttribution renders the Table-2-style overhead attribution: per core,
// the kernel CPU time stolen by the guard split by primitive (kthread wake,
// rdmsr, wrmsr, corrective intervention), and the same decomposition for the
// guard's energy bill in joules. Both splits must sum exactly to the
// kernel's unattributed accounting — if they do not, the cost model leaks.
func printAttribution(sys *plugvolt.System) {
	kinds := kernel.CostKinds()
	fmt.Println("\n-- overhead attribution (virtual kernel CPU time per core)")
	fmt.Printf("   %-6s %14s", "core", "total")
	for _, k := range kinds {
		fmt.Printf(" %14s", k.String())
	}
	fmt.Println()
	for c := 0; c < sys.Platform.NumCores(); c++ {
		total := sys.Kernel.StolenTime(c)
		var sum sim.Duration
		fmt.Printf("   %-6d %14s", c, total.String())
		for _, k := range kinds {
			d := sys.Kernel.StolenTimeBy(k, c)
			sum += d
			fmt.Printf(" %14s", d.String())
		}
		fmt.Println()
		if sum != total {
			fatal(fmt.Errorf("core %d: attribution %v != stolen total %v", c, sum, total))
		}
	}
	fmt.Println("   attribution check: per-kind costs sum to the kernel accounting total on every core")

	fmt.Println("\n-- energy attribution (guard joules per core, kernel-attributed)")
	fmt.Printf("   %-6s %14s", "core", "total J")
	for _, k := range kinds {
		fmt.Printf(" %14s", k.String())
	}
	fmt.Println()
	for c := 0; c < sys.Platform.NumCores(); c++ {
		totalPJ := sys.Kernel.EnergyPJ(c)
		var sumPJ int64
		fmt.Printf("   %-6d %14.9f", c, sys.Kernel.EnergyJ(c))
		for _, k := range kinds {
			pj := sys.Kernel.EnergyPJBy(k, c)
			sumPJ += pj
			fmt.Printf(" %14.9f", float64(pj)*1e-12)
		}
		fmt.Println()
		if sumPJ != totalPJ {
			fatal(fmt.Errorf("core %d: energy attribution %d pJ != total %d pJ", c, sumPJ, totalPJ))
		}
	}
	fmt.Println("   energy check: per-kind joules sum to the core's attributed total on every core")
}

// energyHealth assembles the /healthz joule ledger from the platform's
// integrator and the kernel's guard attribution.
func energyHealth(sys *plugvolt.System) *obs.EnergyHealth {
	tr := sys.Platform.Energy
	h := &obs.EnergyHealth{
		PackageJoules: tr.PackageEnergyJ(),
		CoresJoules:   tr.CoresEnergyJ(),
		GuardByKind:   make(map[string]float64, len(kernel.CostKinds())),
	}
	for c := 0; c < sys.Platform.NumCores(); c++ {
		h.GuardJoules += sys.Kernel.EnergyJ(c)
		for _, k := range kernel.CostKinds() {
			h.GuardByKind[k.String()] += sys.Kernel.EnergyJBy(k, c)
		}
	}
	return h
}

// writeTo renders into the path, with "-" meaning stdout.
func writeTo(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-guard:", err)
	os.Exit(1)
}
