// plugvolt-characterize runs the paper's Algorithm 2 sweep on a simulated
// CPU model and renders the Fig. 2/3/4 safe/unsafe map.
//
// Usage:
//
//	plugvolt-characterize -cpu skylake                 # ASCII heatmap
//	plugvolt-characterize -cpu cometlake -csv          # raw grid CSV
//	plugvolt-characterize -cpu kabylaker -json out.json
//	plugvolt-characterize -paper                       # full 1 mV / 1M sweep
//	plugvolt-characterize -workers 8                   # shard the frequency axis
//
// The sweep is sharded across -workers goroutines (default GOMAXPROCS);
// every frequency row derives its RNG stream from seed^freqKHz, so the grid
// is bit-for-bit identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"

	"plugvolt"
	"plugvolt/internal/buildinfo"
	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/obs"
	"plugvolt/internal/report"
	"plugvolt/internal/sim"
)

func main() {
	var (
		cpuName  = flag.String("cpu", "skylake", "CPU model: skylake, kabylaker or cometlake")
		seed     = flag.Int64("seed", 42, "experiment seed (replayable)")
		paper    = flag.Bool("paper", false, "full paper sweep: 1 mV steps, 1M imuls/point (slower)")
		csv      = flag.Bool("csv", false, "emit the raw grid as CSV instead of the heatmap")
		jsonPath = flag.String("json", "", "also write the grid as JSON to this path")
		classes  = flag.Bool("classes", false, "compare fault onsets across instruction classes (imul/aes/fma)")
		seeds    = flag.Int("seeds", 1, "run N seeds and report onset spread + conservative aggregate")
		adaptive = flag.Bool("adaptive", false, "bisect onsets instead of scanning the full grid")
		strategy = flag.String("strategy", core.StrategySweep, "full-grid probe strategy: sweep (measure every cell) or bisect (per-row onset bisection; identical grid, ~10x fewer probes)")
		workers  = flag.Int("workers", 0, "frequency-row shards swept in parallel (0 = GOMAXPROCS); results are identical for any value")
		metrics  = flag.String("metrics-out", "", `write the Prometheus metric exposition here after the sweep ("-" = stdout)`)
		events   = flag.String("events-out", "", `write the JSONL event journal here after the sweep ("-" = stdout)`)
		listen   = flag.String("listen", "", "serve /metrics /events /traces /healthz on this address during the sweep; blocks after the sweep until interrupted")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "plugvolt-characterize")
		return
	}

	sys, err := plugvolt.NewSystem(*cpuName, *seed)
	if err != nil {
		fatal(err)
	}
	buildinfo.Register(sys.Telemetry.Registry())
	if *listen != "" {
		// The sharded sweep publishes into the shared telemetry set from the
		// merge loop; the lock serializes server reads against it.
		var mu sync.Mutex
		srv := &obs.Server{
			Telemetry: sys.Telemetry,
			Clock:     func() sim.Time { return sys.Platform.Sim.Now() },
			Lock:      &mu,
		}
		httpSrv, addr, err := srv.Start(*listen)
		if err != nil {
			fatal(err)
		}
		defer httpSrv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s\n", addr)
		// After the sweep (and its reports) finish, keep serving until ^C so
		// the final metrics and trace can be pulled.
		defer func() {
			fmt.Fprintln(os.Stderr, "sweep done; serving until interrupted (^C to exit)")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}()
	}
	cfg := plugvolt.QuickSweep()
	if *paper {
		cfg = plugvolt.PaperSweep()
	}
	cfg.Workers = *workers
	cfg.Strategy = *strategy
	if *classes {
		runClassComparison(*cpuName, *seed, cfg)
		return
	}
	if *seeds > 1 {
		runMultiSeed(*cpuName, *seed, *seeds, cfg)
		return
	}
	if *adaptive {
		runAdaptive(sys, cfg)
		return
	}
	defer func() {
		if err := sys.DumpTelemetry(*metrics, *events); err != nil {
			fatal(err)
		}
	}()
	cfg.Progress = func(freqKHz, done, total int) {
		fmt.Fprintf(os.Stderr, "\rcharacterizing %s: %d/%d frequencies", sys.Platform.Spec.Codename, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	grid, err := sys.Characterize(cfg)
	if err != nil {
		fatal(err)
	}
	if *csv {
		if err := report.WriteGridCSV(os.Stdout, grid); err != nil {
			fatal(err)
		}
	} else {
		if err := report.WriteHeatmap(os.Stdout, grid); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		data, err := grid.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grid written to %s\n", *jsonPath)
	}
}

// runClassComparison sweeps the same machine with three instruction
// classes and tabulates the onset curves — the measured form of the
// paper's "imul is the most faultable instruction".
func runClassComparison(cpuName string, seed int64, cfg plugvolt.CharacterizerConfig) {
	var curves []report.OnsetCurve
	for _, class := range []cpu.Class{cpu.ClassIMul, cpu.ClassAES, cpu.ClassFMA} {
		sys, err := plugvolt.NewSystem(cpuName, seed)
		if err != nil {
			fatal(err)
		}
		c := cfg
		c.Class = class
		fmt.Fprintf(os.Stderr, "sweeping class %s...\n", class)
		grid, err := sys.Characterize(c)
		if err != nil {
			fatal(err)
		}
		curves = append(curves, report.OnsetCurve{Label: string(class), Grid: grid})
	}
	if err := report.WriteOnsetCurves(os.Stdout, curves); err != nil {
		fatal(err)
	}
}

// runMultiSeed characterizes N seeds, reports the per-frequency onset
// spread and the conservative aggregate's maximal safe state.
func runMultiSeed(cpuName string, seed int64, n int, cfg plugvolt.CharacterizerConfig) {
	var grids []*core.Grid
	for i := 0; i < n; i++ {
		sys, err := plugvolt.NewSystem(cpuName, seed+int64(i))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seed %d/%d...\n", i+1, n)
		grid, err := sys.Characterize(cfg)
		if err != nil {
			fatal(err)
		}
		grids = append(grids, grid)
	}
	spreads, err := core.OnsetSpreads(grids)
	if err != nil {
		fatal(err)
	}
	report.WriteOnsetSpreads(os.Stdout, spreads)
	agg, err := core.AggregateGrids(grids)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nconservative aggregate over %d seeds: maximal safe state %d mV\n",
		n, agg.MaximalSafeOffsetMV(0))
}

// runAdaptive bisects each frequency's onset instead of scanning the grid.
func runAdaptive(sys *plugvolt.System, cfg plugvolt.CharacterizerConfig) {
	a, err := core.NewAdaptiveCharacterizer(sys.Platform, cfg, 2)
	if err != nil {
		fatal(err)
	}
	unsafe, results, err := a.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("adaptive onset probe — %s\n\n%-10s %10s %8s\n", unsafe.Model, "GHz", "onset mV", "probes")
	total := 0
	for _, r := range results {
		onset := "-"
		if r.Found {
			onset = fmt.Sprintf("%d", r.OnsetMV)
		}
		fmt.Printf("%-10.1f %10s %8d\n", float64(r.FreqKHz)/1e6, onset, r.Probes)
		total += r.Probes
	}
	points := len(results) * ((cfg.OffsetStartMV-cfg.OffsetEndMV)/(-cfg.OffsetStepMV) + 1)
	fmt.Printf("\ntotal probes: %d (full sweep: %d grid points)\n", total, points)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plugvolt-characterize:", err)
	os.Exit(1)
}
