package plugvolt_test

import (
	"bytes"
	"math"
	"testing"

	"plugvolt"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// runInstrumentedScenario boots a system, characterizes it (one worker so
// the per-worker telemetry series are schedule-independent), deploys the
// guard, runs an attack campaign, and returns the Prometheus exposition and
// the event journal bytes.
func runInstrumentedScenario(t *testing.T, seed int64) ([]byte, []byte, *telemetry.Snapshot) {
	t.Helper()
	sys, err := plugvolt.NewSystem("skylake", seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plugvolt.QuickSweep()
	cfg.Workers = 1
	grid, err := sys.Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plugvolt.NewV0LTpwn().Run(sys.Env(), guard.Name()); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(2 * sim.Millisecond)
	sys.CollectTelemetry()
	snap := sys.Telemetry.Registry().Snapshot()
	var metrics, events bytes.Buffer
	if err := snap.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := sys.Telemetry.Events().WriteJSONL(&events); err != nil {
		t.Fatal(err)
	}
	return metrics.Bytes(), events.Bytes(), snap
}

// Two identically-seeded runs must render byte-identical metric snapshots
// and event journals: the telemetry subsystem draws no randomness, reads no
// wall clock, and iterates in sorted order.
func TestTelemetryDeterminism(t *testing.T) {
	m1, e1, _ := runInstrumentedScenario(t, 42)
	m2, e2, _ := runInstrumentedScenario(t, 42)
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metric expositions differ between identically-seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("event journals differ between identically-seeded runs")
	}
	if len(e1) == 0 {
		t.Fatal("no events journaled by an attack-vs-guard scenario")
	}
}

// The acceptance check of the instrumented run: polls, interventions, a
// populated poll-latency histogram, per-core kthread CPU time — and the
// per-kind overhead attribution must sum exactly to the kernel accounting
// totals.
func TestTelemetryOverheadAttribution(t *testing.T) {
	_, _, snap := runInstrumentedScenario(t, 7)

	if snap.Total("guard_polls_total") == 0 {
		t.Fatal("no guard polls recorded")
	}
	if snap.Total("guard_interventions_total") == 0 {
		t.Fatal("no guard interventions recorded (attack never tripped the guard)")
	}
	hist := snap.Find("guard_poll_latency_seconds")
	if hist == nil || len(hist.Series) == 0 || hist.Series[0].Count == 0 {
		t.Fatal("poll-latency histogram empty")
	}
	busy := snap.Find("kernel_kthread_busy_seconds")
	if busy == nil || len(busy.Series) == 0 {
		t.Fatal("no per-core kthread CPU time")
	}

	// Attribution closure: for every core, the wake/rdmsr/wrmsr split sums
	// to the unattributed stolen-time gauge.
	stolen := snap.Find("kernel_stolen_seconds")
	attributed := snap.Find("kernel_stolen_attributed_seconds")
	if stolen == nil || attributed == nil {
		t.Fatal("kernel accounting metrics missing")
	}
	checked := 0
	for _, s := range stolen.Series {
		core := s.Labels["core"]
		var sum float64
		for _, a := range attributed.Series {
			if a.Labels["core"] == core {
				sum += a.Value
			}
		}
		if math.Abs(sum-s.Value) > 1e-12 {
			t.Fatalf("core %s: attributed %.15g != stolen %.15g", core, sum, s.Value)
		}
		if s.Value > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no core accumulated stolen time — attribution check vacuous")
	}

	// Same closure per kthread: BusyBy kinds sum to Busy.
	attrBusy := snap.Find("kernel_kthread_attributed_seconds")
	if attrBusy == nil {
		t.Fatal("per-kthread attribution missing")
	}
	for _, s := range busy.Series {
		var sum float64
		for _, a := range attrBusy.Series {
			if a.Labels["thread"] == s.Labels["thread"] && a.Labels["core"] == s.Labels["core"] {
				sum += a.Value
			}
		}
		if math.Abs(sum-s.Value) > 1e-12 {
			t.Fatalf("kthread %s/%s: attributed %.15g != busy %.15g",
				s.Labels["thread"], s.Labels["core"], sum, s.Value)
		}
	}
}
