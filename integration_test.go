package plugvolt_test

import (
	"testing"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/core"
)

// TestPaperResolutionEndToEnd runs the complete pipeline at the paper's own
// sweep resolution (1 mV steps, one million imuls per grid point — the
// exact Algorithm 2 parameters) and then defends a Plundervolt campaign
// with the resulting guard. This is the closest the repository gets to the
// published experiment run verbatim.
func TestPaperResolutionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-resolution sweep in -short mode")
	}
	sys, err := plugvolt.NewSystem("skylake", 2024)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.PaperSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	if grid.Iterations != 1_000_000 || len(grid.OffsetsMV) != 300 {
		t.Fatalf("not the paper sweep: %d iters, %d offsets", grid.Iterations, len(grid.OffsetsMV))
	}

	// Every frequency shows the published band structure.
	for _, f := range grid.FreqsKHz {
		onset, ok := grid.OnsetMV(f)
		if !ok {
			t.Fatalf("%d kHz: no unsafe region at paper resolution", f)
		}
		if onset > -20 || onset < -300 {
			t.Fatalf("%d kHz: implausible onset %d mV", f, onset)
		}
	}
	msv := grid.MaximalSafeOffsetMV(0)
	if msv >= 0 || msv < -150 {
		t.Fatalf("maximal safe state %d mV implausible at 1 mV resolution", msv)
	}

	// Onset at the top frequency is much shallower than at the bottom.
	onLow, _ := grid.OnsetMV(grid.FreqsKHz[0])
	onHigh, _ := grid.OnsetMV(grid.FreqsKHz[len(grid.FreqsKHz)-1])
	if onHigh <= onLow+100 {
		t.Fatalf("onset shape: %d mV at fmin vs %d mV at fmax", onLow, onHigh)
	}

	// Deploy and face the end-to-end Plundervolt campaign.
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := attack.DefaultPlundervolt(2024).Run(sys.Env(), guard.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.FaultsObserved != 0 || res.Crashes != 0 {
		t.Fatalf("paper-resolution guard failed: %s", res)
	}
	if guard.Guard.Interventions == 0 {
		t.Fatal("campaign never triggered the guard")
	}
	// The kernel module's proc interface reflects the campaign.
	status, err := sys.Kernel.ReadProc(core.ModuleName)
	if err != nil {
		t.Fatal(err)
	}
	if len(status) == 0 {
		t.Fatal("empty module status")
	}
}
