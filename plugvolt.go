// Package plugvolt is the public API of the "Plug Your Volt" (DAC 2024)
// reproduction: a simulated Intel DVFS platform, the paper's safe/unsafe
// state characterization (Algorithm 2), the polling countermeasure kernel
// module (Algorithm 3), the maximal-safe-state hardware variants (Sec. 5),
// the prior-work baselines, and the published attacks to evaluate them all
// against.
//
// Typical use:
//
//	sys, _ := plugvolt.NewSystem("skylake", 42)
//	grid, _ := sys.Characterize(plugvolt.QuickSweep())
//	guard, _ := sys.DeployGuard(grid)
//	res, _ := plugvolt.NewPlundervolt(7).Run(sys.Env(), guard.Name())
//	fmt.Println(res) // DEFEATED
//
// The heavy lifting lives in the internal packages; this package wires them
// together and re-exports the vocabulary types.
package plugvolt

import (
	"fmt"

	"plugvolt/internal/attack"
	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/flight"
	"plugvolt/internal/kernel"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sgx"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// Re-exported vocabulary types. Aliases keep the internal packages as the
// single source of truth while letting downstream code name everything
// through this package.
type (
	// Grid is a full safe/unsafe characterization (Figs. 2-4 in data form).
	Grid = core.Grid
	// UnsafeSet is the compiled boundary the guard polls against.
	UnsafeSet = core.UnsafeSet
	// Guard is the Algorithm 3 polling countermeasure.
	Guard = core.Guard
	// GuardConfig tunes the polling countermeasure.
	GuardConfig = core.GuardConfig
	// CharacterizerConfig tunes the Algorithm 2 sweep.
	CharacterizerConfig = core.CharacterizerConfig
	// Countermeasure is any deployable defense.
	Countermeasure = defense.Countermeasure
	// AttackResult records one attack campaign.
	AttackResult = attack.Result
	// Spec describes a CPU model.
	Spec = models.Spec
)

// Attack and defense constructors re-exported for discoverability.
var (
	// NewPlundervolt builds the RSA-CRT key-extraction campaign.
	NewPlundervolt = attack.DefaultPlundervolt
	// NewVoltJockey builds the frequency-manipulation campaign.
	NewVoltJockey = attack.DefaultVoltJockey
	// NewV0LTpwn builds the integrity-corruption campaign.
	NewV0LTpwn = attack.DefaultV0LTpwn
	// DefaultGuardConfig is the paper-faithful polling configuration.
	DefaultGuardConfig = core.DefaultGuardConfig
)

// Models lists the supported CPU model names.
func Models() []string { return []string{"skylake", "kabylaker", "cometlake"} }

// System is a ready-to-experiment machine: simulated CPU, kernel, SGX
// registry and cpufreq stack.
type System struct {
	Platform *cpu.Platform
	Kernel   *kernel.Kernel
	Registry *sgx.Registry
	CPUFreq  *pstate.Manager
	// Telemetry is the system-wide metrics registry and event journal,
	// clocked by the system simulator. Always non-nil after NewSystem; the
	// guard, kernel, attacks and characterizer publish into it by default.
	Telemetry *telemetry.Set
	// Flight is the optional flight recorder (nil until
	// AttachFlightRecorder): the continuous pre-trigger state ring behind
	// incident bundles.
	Flight *flight.Recorder
}

// NewSystem boots a simulated machine of the named model ("skylake",
// "kabylaker" or "cometlake"). The seed drives every stochastic element;
// identical seeds replay identical experiments.
func NewSystem(model string, seed int64) (*System, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	return NewSystemFromSpec(spec, seed)
}

// NewSystemFromSpec boots a machine from an existing Spec. Systems built
// from the same *Spec share its read-only derived cache — the validated
// timing-circuit template (cloned per core via timing.Clone/Prepare), the
// frequency table and the nominal-voltage table — so a caller booting many
// machines of one model (the fleet engine) pays the model preparation once
// instead of per machine.
func NewSystemFromSpec(spec *Spec, seed int64) (*System, error) {
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		return nil, err
	}
	mgr, err := pstate.NewManager(p.Sim, p, nil)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Platform:  p,
		Kernel:    kernel.New(p.Sim, p),
		Registry:  sgx.NewRegistry(p.Sim),
		CPUFreq:   mgr,
		Telemetry: telemetry.NewSet(p.Sim.Now, telemetry.DefaultJournalCap, seed),
	}
	sys.Kernel.SetTelemetry(sys.Telemetry)
	// Kernel time charges are priced in watts at the victim core's commanded
	// operating point, so every stolen slice also books joules and the
	// energy ledgers decompose by CostKind exactly like stolen time.
	sys.Kernel.SetEnergyPrice(p.Energy.PriceW)
	// The span tracer observes every OC-mailbox write at the register file;
	// the platform keeps it attached across crash reboots.
	p.SetSpanTracer(sys.Telemetry.Spans())
	// Attestation reports carry the hyperthreading status (the precedent
	// the paper cites for attesting software features); derive it from the
	// model's SMT topology.
	if topo, err := p.Topology(); err == nil {
		sys.Registry.Features.HyperThreadingEnabled = topo.SMT() > 1
	}
	return sys, nil
}

// Env packages the system for attack/defense deployment.
func (s *System) Env() *defense.Env {
	return &defense.Env{Platform: s.Platform, Kernel: s.Kernel,
		Registry: s.Registry, Telemetry: s.Telemetry, Flight: s.Flight}
}

// AttachFlightRecorder creates the system's flight recorder (ring capacity
// and post-trigger window; <= 0 selects flight.DefaultCap/DefaultWindow) and
// wires it into every observation point: mailbox writes at each core's MSR
// file, P-state retargets, energy-segment boundaries, and — through Env()
// and GuardConfig defaulting — attack triggers and guard polls. Idempotent
// per system: a second call replaces the recorder.
func (s *System) AttachFlightRecorder(ringCap, window int) *flight.Recorder {
	rec := flight.NewRecorder(s.Platform.Sim.Now, ringCap, window,
		s.Platform.Spec.Codename, s.Platform.Seed())
	s.Flight = rec
	s.Platform.SetFlightRecorder(rec)
	return rec
}

// CollectTelemetry publishes the pull-style state — kernel CPU-time
// accounting, MSR write-hook statistics, platform reboots — into the
// system's metrics registry. Counters and journal events accumulate live;
// call this right before snapshotting or exporting so the gauges reflect
// the moment of export.
func (s *System) CollectTelemetry() {
	reg := s.Telemetry.Registry()
	s.Kernel.Collect(reg)
	for i := 0; i < s.Platform.NumCores(); i++ {
		st := s.Platform.MSRFile(i).WriteHookStats(msr.OCMailbox)
		lbl := telemetry.Labels{"core": fmt.Sprintf("%d", i)}
		reg.Gauge("msr_write_hook_hits", "OC-mailbox write-hook invocations", lbl).Set(float64(st.Hits))
		reg.Gauge("msr_write_hook_rejects", "OC-mailbox writes rejected by a hook", lbl).Set(float64(st.Rejects))
		reg.Gauge("msr_write_hook_rewrites", "OC-mailbox writes rewritten by a hook", lbl).Set(float64(st.Rewrites))
	}
	reg.Gauge("platform_reboots", "machine crash/reboot count", nil).Set(float64(s.Platform.Reboots))
	if tr := s.Platform.Energy; tr != nil {
		for i := 0; i < s.Platform.NumCores(); i++ {
			gov := "none"
			if s.CPUFreq != nil {
				if pol, err := s.CPUFreq.Policy(i); err == nil && pol.Governor != "" {
					gov = pol.Governor
				}
			}
			lbl := telemetry.Labels{"core": fmt.Sprintf("%d", i), "governor": gov}
			reg.Gauge("power_core_energy_joules",
				"whole-core integrated energy (dynamic CV²f + leakage) over virtual time, labeled by the core's cpufreq governor", lbl).
				Set(tr.CoreEnergyJ(i))
		}
		reg.Gauge("power_package_energy_joules",
			"integrated package energy: all core planes plus constant uncore draw (the PKG RAPL quantity)", nil).
			Set(tr.PackageEnergyJ())
	}
	if s.Flight != nil {
		st := s.Flight.Stats()
		reg.Gauge("flight_records_total", "flight-recorder ring appends", nil).Set(float64(st.Records))
		reg.Gauge("flight_overwrites_total", "flight records evicted by ring overwrite (oldest-first)", nil).Set(float64(st.Overwrites))
		reg.Gauge("flight_triggers_total", "incident triggers fired into the flight recorder", nil).Set(float64(st.Triggers))
		reg.Gauge("flight_captures_total", "incident bundles sealed by the flight recorder", nil).Set(float64(st.Captures))
		reg.Gauge("flight_bundles_dropped_total", "sealed bundles discarded past the retention cap", nil).Set(float64(st.BundlesDropped))
	}
}

// SetTelemetry replaces the system's telemetry set and rewires every
// component holding a reference to it. Tools that boot several systems can
// point them all at one shared set so counters accumulate across runs (the
// clock must then be managed by the caller).
func (s *System) SetTelemetry(t *telemetry.Set) {
	s.Telemetry = t
	s.Kernel.SetTelemetry(t)
	s.Platform.SetSpanTracer(t.Spans())
}

// DumpTelemetry collects pull-style state and writes the Prometheus
// exposition and/or the JSONL event journal to the given paths. An empty
// path skips that output; "-" writes to stdout.
func (s *System) DumpTelemetry(metricsPath, eventsPath string) error {
	if metricsPath == "" && eventsPath == "" {
		return nil
	}
	s.CollectTelemetry()
	if metricsPath != "" {
		if err := telemetry.DumpMetrics(metricsPath, s.Telemetry.Registry()); err != nil {
			return err
		}
	}
	if eventsPath != "" {
		if err := telemetry.DumpEvents(eventsPath, s.Telemetry.Events()); err != nil {
			return err
		}
	}
	return nil
}

// PaperSweep returns the paper's full Algorithm 2 configuration: every
// table frequency at 0.1 GHz resolution, offsets -1..-300 mV in 1 mV steps,
// one million imuls per point.
func PaperSweep() CharacterizerConfig {
	return core.DefaultCharacterizerConfig()
}

// QuickSweep returns a coarser sweep (5 mV steps, 200k imuls, floor
// -350 mV) that preserves the published shape at a fraction of the cost —
// the default for examples and tests.
func QuickSweep() CharacterizerConfig {
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	return cfg
}

// Characterize runs the Algorithm 2 sweep on this system using the sharded
// parallel engine: the frequency axis is partitioned across cfg.Workers
// goroutines (default GOMAXPROCS), each row swept on a private platform
// seeded with seed^freqKHz. Results are bit-for-bit identical for any
// worker count and leave s.Platform untouched. core.NewCharacterizer
// remains available for the serial, shared-platform protocol.
func (s *System) Characterize(cfg CharacterizerConfig) (*Grid, error) {
	if cfg.Telemetry == nil {
		cfg.Telemetry = s.Telemetry
	}
	sc, err := core.NewShardedCharacterizer(s.Platform.Spec, s.Platform.Seed(), cfg)
	if err != nil {
		return nil, err
	}
	return sc.Run()
}

// DeployGuard characterizes nothing — it installs the polling defense built
// from an existing grid, with the default configuration.
func (s *System) DeployGuard(grid *Grid) (*defense.Polling, error) {
	return s.DeployGuardConfig(grid, core.DefaultGuardConfig())
}

// DeployGuardConfig installs the polling defense with a custom config.
func (s *System) DeployGuardConfig(grid *Grid, cfg GuardConfig) (*defense.Polling, error) {
	if grid == nil {
		return nil, fmt.Errorf("plugvolt: nil grid")
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = s.Telemetry
	}
	if cfg.Flight == nil {
		cfg.Flight = s.Flight
	}
	pol, err := defense.NewPolling(grid.UnsafeSet(), s.Platform.Spec.BusMHz, cfg)
	if err != nil {
		return nil, err
	}
	if err := pol.Install(s.Env()); err != nil {
		return nil, err
	}
	return pol, nil
}

// Defenses instantiates the full countermeasure lineup for a characterized
// system (experiment E2): none, access control, polling, microcode
// write-ignore and the hardware clamp. The polling defense is returned
// uninstalled; install/uninstall via the Countermeasure interface.
func (s *System) Defenses(grid *Grid) ([]Countermeasure, error) {
	if grid == nil {
		return nil, fmt.Errorf("plugvolt: nil grid")
	}
	gcfg := core.DefaultGuardConfig()
	gcfg.Telemetry = s.Telemetry
	gcfg.Flight = s.Flight
	pol, err := defense.NewPolling(grid.UnsafeSet(), s.Platform.Spec.BusMHz, gcfg)
	if err != nil {
		return nil, err
	}
	// The hardware variants clamp to the maximal safe state with a 20 mV
	// statistical guard band: the measured onset is where faults become
	// *observable* in 200k-1M instructions, and states slightly shallower
	// still fault at minute rates a patient attacker can farm (the same
	// tail the polling guard's MarginMV covers).
	msv := grid.MaximalSafeOffsetMV(20)
	return []Countermeasure{
		defense.None{},
		&defense.AccessControl{},
		pol,
		&defense.Microcode{MaxSafeOffsetMV: msv},
		&defense.ClampMSR{LimitMV: msv},
	}, nil
}

// RunFor advances the system's virtual clock (convenience wrapper).
func (s *System) RunFor(d sim.Duration) { s.Platform.Sim.RunFor(d) }
