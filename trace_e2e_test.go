package plugvolt_test

// End-to-end contract for the causal span trace: the exported Chrome trace
// is byte-identical across runs and across characterization worker counts,
// and the causality it records proves the guard's coverage — every write
// the guard issues is enclosed by a guard_intervention span, and every
// accepted unsafe attacker write is closed by a later intervention on the
// same core within the SLO dwell bound.

import (
	"bytes"
	"encoding/json"
	"testing"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/slo"
	"plugvolt/internal/telemetry/span"
)

// attackScenario characterizes, deploys the guard, runs a periodic
// undervolting adversary for 10ms of virtual time, and returns the system
// plus the exported Chrome trace bytes.
func attackScenario(t *testing.T, workers int) (*plugvolt.System, *plugvolt.Guard, *plugvolt.Grid, []byte) {
	t.Helper()
	sys, err := plugvolt.NewSystem("skylake", 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plugvolt.QuickSweep()
	cfg.Workers = workers
	grid, err := sys.Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Platform
	unsafe := grid.UnsafeSet()
	offset := unsafe.OnsetMV[p.FreqKHz(1)] - 60
	attacker := p.Sim.Every(537*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(1, offset, msr.PlaneCore)
	})
	defer attacker.Stop()
	sys.RunFor(10 * sim.Millisecond)

	var buf bytes.Buffer
	if err := sys.Telemetry.Spans().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return sys, pol.Guard, grid, buf.Bytes()
}

func TestTraceByteIdenticalAcrossRunsAndWorkers(t *testing.T) {
	_, _, _, first := attackScenario(t, 1)
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Re-running the identical experiment must reproduce the bytes.
	_, _, _, again := attackScenario(t, 1)
	if !bytes.Equal(first, again) {
		t.Fatal("trace differs between two identical runs")
	}
	// The characterization worker count is a scheduling knob, not an
	// experiment parameter: the trace must not see it.
	for _, workers := range []int{2, 8} {
		_, _, _, got := attackScenario(t, workers)
		if !bytes.Equal(first, got) {
			t.Fatalf("trace differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestGuardWritesCausallyCovered(t *testing.T) {
	sys, guard, _, _ := attackScenario(t, 1)
	spans := sys.Telemetry.Spans().Spans()
	byID := make(map[span.ID]*span.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	underIntervention := func(s *span.Span) bool {
		for cur := s; cur != nil; cur = byID[cur.Parent] {
			if cur.Name == "guard_intervention" {
				return true
			}
			if cur.Parent == 0 {
				return false
			}
		}
		return false
	}

	interventions, attacks, guardWrites := 0, 0, 0
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case "guard_intervention":
			interventions++
			// An intervention nests under its poll, which roots in the
			// kthread tick — the full causal chain of Algorithm 3.
			parent := byID[s.Parent]
			if parent == nil || parent.Name != "guard_poll" {
				t.Errorf("intervention %x not parented by a guard_poll", s.ID)
			}
		case "mailbox_write":
			if s.Attrs["outcome"] != "accepted" {
				continue
			}
			if underIntervention(s) {
				guardWrites++
			} else {
				attacks++
			}
		}
	}
	if interventions == 0 {
		t.Fatal("attack scenario produced no guard interventions")
	}
	// Every intervention performs exactly one corrective write, and every
	// guard-issued write is causally covered by an intervention span.
	if guardWrites != interventions {
		t.Fatalf("guard writes %d != interventions %d: corrective writes not covered",
			guardWrites, interventions)
	}
	if attacks == 0 {
		t.Fatal("no attacker writes recorded")
	}
	if n := guard.Interventions; int(n) != interventions {
		t.Fatalf("trace records %d interventions, guard counted %d", interventions, n)
	}
}

func TestSLOQuietOnCleanRunAndFlagsStall(t *testing.T) {
	sys, _, grid, _ := attackScenario(t, 1)
	unsafe := grid.UnsafeSet()
	p := sys.Platform
	wd := &slo.Watchdog{
		Tracer:  sys.Telemetry.Spans(),
		Journal: sys.Telemetry.Events(),
		Rules:   slo.DefaultRules(plugvolt.DefaultGuardConfig().PollPeriod),
		Unsafe: func(core, offsetMV int) bool {
			return unsafe.Contains(p.FreqKHz(core), offsetMV)
		},
	}
	rep := wd.Evaluate(p.Sim.Now())
	if !rep.OK() {
		t.Fatalf("clean guarded run violates SLO:\n%s", rep.Summary())
	}
	if rep.Stats.Interventions == 0 || rep.Stats.UnsafeWrites == 0 {
		t.Fatalf("watchdog saw no action: %+v", rep.Stats)
	}
}

func TestSLOFlagsInducedStall(t *testing.T) {
	sys, err := plugvolt.NewSystem("skylake", 42)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sys.DeployGuard(grid)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Platform
	unsafe := grid.UnsafeSet()
	offset := unsafe.OnsetMV[p.FreqKHz(1)] - 60
	attacker := p.Sim.Every(537*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(1, offset, msr.PlaneCore)
	})
	defer attacker.Stop()
	sys.RunFor(5 * sim.Millisecond)
	// The adversary unloads the module mid-window: polls stop, and the
	// last attacker writes are never corrected.
	if err := pol.Uninstall(sys.Env()); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(5 * sim.Millisecond)

	wd := &slo.Watchdog{
		Tracer:  sys.Telemetry.Spans(),
		Journal: sys.Telemetry.Events(),
		Rules:   slo.DefaultRules(plugvolt.DefaultGuardConfig().PollPeriod),
		Unsafe: func(core, offsetMV int) bool {
			return unsafe.Contains(p.FreqKHz(core), offsetMV)
		},
	}
	rep := wd.Evaluate(p.Sim.Now())
	if rep.OK() {
		t.Fatalf("stalled guard passed the SLO:\n%s", rep.Summary())
	}
	kinds := map[slo.Kind]bool{}
	for _, v := range rep.Violations {
		kinds[v.Rule.Kind] = true
	}
	if !kinds[slo.KindMaxPollGap] {
		t.Errorf("stall not flagged as max_poll_gap:\n%s", rep.Summary())
	}
	if !kinds[slo.KindInterventionClosure] {
		t.Errorf("uncorrected writes not flagged as closure violations:\n%s", rep.Summary())
	}
}
