// governor_sweep exercises the cpufreq governor stack underneath the
// polling countermeasure: the ondemand governor chases a bursty load up and
// down the full P-state spectrum while the guard is live, demonstrating
// that the defense never interferes with legitimate frequency scaling —
// only with unsafe (frequency, voltage-offset) pairs.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sim"
)

func main() {
	sys, err := plugvolt.NewSystem("cometlake", 11)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}

	// Governor stack with a synthetic bursty load signal.
	load := 0.0
	mgr, err := pstate.NewManager(sys.Platform.Sim, sys.Platform, func(core int) float64 { return load })
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.SetGovernor(0, pstate.GovOndemand); err != nil {
		log.Fatal(err)
	}
	mgr.Start()
	defer mgr.Stop()

	fmt.Printf("machine: %s, guard loaded, governor: ondemand\n\n", sys.Platform.Spec.Codename)
	fmt.Printf("%-10s %-8s %-12s %-12s %s\n", "phase", "load", "freq (GHz)", "volt (V)", "guard interventions")
	phases := []struct {
		name string
		load float64
	}{
		{"idle", 0.05},
		{"burst", 0.95},
		{"steady", 0.55},
		{"idle", 0.02},
		{"burst", 1.00},
	}
	for _, ph := range phases {
		load = ph.load
		sys.RunFor(60 * sim.Millisecond)
		sys.Platform.SettleAll()
		c := sys.Platform.Core(0)
		fmt.Printf("%-10s %-8.2f %-12.1f %-12.3f %d\n",
			ph.name, ph.load, c.FreqGHz(), c.VoltageV(), guard.Guard.Interventions)
	}
	if guard.Guard.Interventions != 0 {
		log.Fatal("guard intervened on benign governor activity")
	}
	fmt.Printf("\ntransitions issued by the governor: %d — all permitted by the countermeasure\n",
		mgr.Transitions)
	fmt.Printf("guard polled %d core-states without a single intervention\n", guard.Guard.Checks)
}
