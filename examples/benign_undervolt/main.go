// benign_undervolt demonstrates the paper's availability argument: a benign
// non-SGX process wants to undervolt within the safe region (battery life,
// thermals) while an SGX enclave is running. Under Intel's SA-00289
// access-control fix every mailbox write faults; under the paper's polling
// countermeasure (and its microcode/clamp variants) the safe undervolt goes
// through untouched.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func main() {
	sys, err := plugvolt.NewSystem("kabylaker", 7)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	// A clearly-safe request: 25 mV shallower than the universal boundary,
	// inside every defense's allowance (polling margin and hardware clamp).
	benignOffset := grid.MaximalSafeOffsetMV(25)
	fmt.Printf("machine: %s; benign undervolt request: %d mV\n",
		sys.Platform.Spec.Codename, benignOffset)

	defenses, err := sys.Defenses(grid)
	if err != nil {
		log.Fatal(err)
	}
	// An enclave is live the whole time — the condition under which
	// SA-00289 locks the mailbox.
	if _, err := sys.Registry.Create("tee-service", 3); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-34s %-10s %-14s %s\n", "defense", "write ok?", "applied (mV)", "verdict")
	for _, cm := range defenses {
		if err := cm.Install(sys.Env()); err != nil {
			log.Fatal(err)
		}
		writeErr := sys.Platform.WriteOffsetViaMSR(0, benignOffset, msr.PlaneCore)
		sys.RunFor(5 * sim.Millisecond)
		applied := sys.Platform.Core(0).OffsetMV()
		verdict := "benign DVFS preserved"
		if writeErr != nil {
			verdict = "benign DVFS BLOCKED (" + writeErr.Error() + ")"
		} else if applied > benignOffset+3 || applied < benignOffset-3 {
			verdict = fmt.Sprintf("request altered to %d mV", applied)
		}
		fmt.Printf("%-34s %-10v %-14d %s\n", cm.Name(), writeErr == nil, applied, verdict)
		// Reset for the next defense.
		_ = sys.Platform.WriteOffsetViaMSR(0, 0, msr.PlaneCore)
		sys.RunFor(2 * sim.Millisecond)
		if err := cm.Uninstall(sys.Env()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nonly the access-control baseline rejects the benign request —")
	fmt.Println("the paper's countermeasure keeps the full safe P-state spectrum available.")
}
