// Quickstart: boot a simulated Sky Lake, characterize its safe/unsafe DVFS
// states (Algorithm 2), deploy the polling countermeasure (Algorithm 3),
// and watch it defeat Plundervolt while leaving benign undervolting alone.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func main() {
	// 1. Boot a deterministic simulated machine.
	sys, err := plugvolt.NewSystem("skylake", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s (%d cores)\n", sys.Platform.Spec.Name, sys.Platform.NumCores())

	// 2. S1 — characterize the (frequency, voltage-offset) grid.
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	onset, _ := grid.OnsetMV(3_200_000)
	fmt.Printf("at 3.2 GHz faults begin at %d mV; maximal safe state is %d mV\n",
		onset, grid.MaximalSafeOffsetMV(0))

	// 3. S2 — deploy the polling kernel module.
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("polling countermeasure loaded:", guard.Name())

	// 4. Run Plundervolt against the guarded machine.
	res, err := plugvolt.NewPlundervolt(7).Run(sys.Env(), guard.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("guard interventions during the campaign: %d\n", guard.Guard.Interventions)

	// 5. Benign undervolting still works: a safe offset is left alone.
	benign := grid.MaximalSafeOffsetMV(10)
	if err := sys.Platform.WriteOffsetViaMSR(2, benign, msr.PlaneCore); err != nil {
		log.Fatal(err)
	}
	sys.RunFor(5 * sim.Millisecond)
	fmt.Printf("benign undervolt of %d mV on core 2 still applied: %d mV (guard untouched)\n",
		benign, sys.Platform.Core(2).OffsetMV())
}
