// hwp_speedshift runs the countermeasure on a modern Speed Shift (HWP)
// platform: the OS programs only a policy into IA32_HWP_REQUEST and the
// hardware picks P-states autonomously. The frequency side of DVFS has
// moved out of software — but the OC mailbox is still software-writable,
// so the attack surface is intact, and the guard still works because it
// polls the *effective* (frequency, offset) pair from PERF_STATUS rather
// than trusting any request register.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sim"
)

func main() {
	sys, err := plugvolt.NewSystem("cometlake", 55)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}

	// Enable HWP autonomy with a bursty load signal.
	load := 0.0
	hwp, err := pstate.NewHWP(sys.Platform.Sim, sys.Platform, func(int) float64 { return load },
		func(core int, d *msr.Descriptor) { sys.Platform.MSRFile(core).Declare(d) })
	if err != nil {
		log.Fatal(err)
	}
	hwp.Start()
	defer hwp.Stop()
	fmt.Printf("machine: %s, HWP autonomy on, guard loaded\n\n", sys.Platform.Spec.Codename)

	unsafe := grid.UnsafeSet()
	fmt.Printf("%-8s %-12s %-14s %-14s %s\n", "load", "freq (GHz)", "offset (mV)", "interventions", "note")
	phases := []struct {
		name string
		load float64
		atk  bool
	}{
		{"idle", 0.05, false},
		{"burst", 1.00, false},
		{"attack", 1.00, true}, // adversary writes an unsafe offset at turbo
		{"steady", 0.50, false},
	}
	for _, ph := range phases {
		load = ph.load
		if ph.atk {
			freq := sys.Platform.FreqKHz(1)
			if err := sys.Platform.WriteOffsetViaMSR(1, unsafe.OnsetMV[freq]-60, msr.PlaneCore); err != nil {
				log.Fatal(err)
			}
		}
		sys.RunFor(20 * sim.Millisecond)
		sys.Platform.SettleAll()
		c := sys.Platform.Core(1)
		fmt.Printf("%-8.2f %-12.1f %-14d %-14d %s\n",
			ph.load, c.FreqGHz(), c.OffsetMV(), guard.Guard.Interventions, ph.name)
	}
	if sys.Platform.Core(1).OffsetMV() != 0 {
		log.Fatal("guard did not restore the attacked offset")
	}
	if guard.Guard.Interventions == 0 {
		log.Fatal("attack phase never triggered the guard")
	}
	fmt.Printf("\nHWP transitions: %d — autonomy ran the whole time;\n", hwp.Transitions)
	fmt.Println("the guard saw every (frequency, offset) pair via PERF_STATUS and only")
	fmt.Println("intervened on the attacked one.")
}
