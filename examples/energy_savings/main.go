// energy_savings puts a number on the paper's availability argument: a
// laptop undervolting within the maximal safe state saves real power, and
// only defenses that keep the DVFS interface open preserve those savings.
//
// The experiment meters one core's energy over identical workload windows:
//
//	(a) stock voltage              — what SA-00289 forces while SGX runs;
//	(b) maximal-safe undervolt under the polling guard — the paper's offer.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/msr"
	"plugvolt/internal/power"
	"plugvolt/internal/sim"
)

func main() {
	sys, err := plugvolt.NewSystem("kabylaker", 3) // mobile part: battery life
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}
	// Two legitimate undervolt levels:
	//  - universal: safe at *every* frequency (what the microcode/clamp
	//    variants would also allow) — shallow on this part;
	//  - frequency-aware: the core is parked at its base frequency, whose
	//    own fault boundary is far deeper, so a much larger offset is
	//    still safe *at this frequency*. Only the polling guard, which
	//    checks the live (frequency, offset) pair, can permit this.
	universal := grid.MaximalSafeOffsetMV(10)
	freq := sys.Platform.FreqKHz(0)
	onset, _ := grid.OnsetMV(freq)
	frequencyAware := onset + 40 // 40 mV shallower than this freq's boundary
	fmt.Printf("machine: %s; guard loaded\n", sys.Platform.Spec.Codename)
	fmt.Printf("universal safe undervolt: %d mV; frequency-aware at %.1f GHz: %d mV (boundary %d mV)\n\n",
		universal, float64(freq)/1e6, frequencyAware, onset)

	measure := func(label string, offsetMV int) float64 {
		if err := sys.Platform.WriteOffsetViaMSR(0, offsetMV, msr.PlaneCore); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		sys.Platform.SettleAll()
		meter, err := power.NewMeter(power.DefaultModel(), sys.Platform.Core(0), 20*sim.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		if err := meter.Start(sys.Platform.Sim); err != nil {
			log.Fatal(err)
		}
		sys.RunFor(50 * sim.Millisecond)
		meter.Stop()
		fmt.Printf("%-28s avg %.3f W  energy %.4f J over %v\n",
			label, meter.AverageW(), meter.EnergyJ, meter.Elapsed)
		return meter.EnergyJ
	}

	stock := measure("stock voltage (lockdown)", 0)
	uni := measure("universal safe undervolt", universal)
	fa := measure("frequency-aware undervolt", frequencyAware)
	fmt.Printf("\nenergy saved: universal %.1f%%, frequency-aware %.1f%%\n",
		(stock-uni)/stock*100, (stock-fa)/stock*100)
	fmt.Printf("guard interventions during both runs: %d (zero — the undervolt is safe)\n",
		guard.Guard.Interventions)
	if guard.Guard.Interventions != 0 {
		log.Fatal("guard interfered with a safe undervolt")
	}
	fmt.Println("\nunder SA-00289 this saving is forfeited whenever an enclave exists;")
	fmt.Println("the polling countermeasure keeps it while still preventing every DVFS fault attack.")
}
