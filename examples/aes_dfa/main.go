// aes_dfa reproduces Plundervolt's AES-NI exploit end to end on the
// simulated platform, and then shows the countermeasure stopping it:
//
//  1. an enclave encrypts with a secret AES-128 key while the adversary
//     undervolts through MSR 0x150;
//  2. single-byte round-9 faults spread through MixColumns in the fixed
//     {2,1,1,3} pattern; harvested faulty ciphertexts feed the
//     Piret-Quisquater differential fault analysis;
//  3. the analysis pins the round-10 key, the key schedule is inverted,
//     and the master key falls out;
//  4. with the polling module loaded, no offset ever produces a fault and
//     the harvest starves.
package main

import (
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/attack"
)

func main() {
	// --- Act 1: undefended machine gives up its AES key. ---
	sys, err := plugvolt.NewSystem("skylake", 404)
	if err != nil {
		log.Fatal(err)
	}
	campaign := attack.DefaultPlundervoltAES(404)
	res, err := campaign.Run(sys.Env(), "none")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UNDEFENDED:", res)
	fmt.Println("  ", res.Notes)
	if !res.KeyRecovered {
		log.Fatal("expected AES key recovery on the undefended machine")
	}

	// --- Act 2: guarded machine starves the harvest. ---
	sys2, err := plugvolt.NewSystem("skylake", 404)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys2.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys2.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := attack.DefaultPlundervoltAES(404).Run(sys2.Env(), guard.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GUARDED:   ", res2)
	fmt.Println("  ", res2.Notes)
	if res2.KeyRecovered {
		log.Fatal("guard failed: AES key recovered")
	}
	fmt.Printf("   guard interventions: %d\n", guard.Guard.Interventions)
}
