// plundervolt_rsa reproduces the end-to-end Plundervolt exploit the paper
// defends against, then shows the defense working:
//
//  1. an SGX enclave signs messages with RSA-CRT;
//  2. a privileged adversary undervolts through MSR 0x150 until one
//     multiplication faults, collects the faulty signature, and factors the
//     modulus with the Boneh-DeMillo-Lipton gcd;
//  3. the same campaign is replayed against the polling countermeasure and
//     dies: the guard rewrites 0x150 before the rail ever reaches fault
//     depth.
package main

import (
	"fmt"
	"log"

	"plugvolt"
)

func main() {
	// --- Act 1: undefended machine falls. ---
	sys, err := plugvolt.NewSystem("skylake", 1001)
	if err != nil {
		log.Fatal(err)
	}
	atk := plugvolt.NewPlundervolt(1001)
	res, err := atk.Run(sys.Env(), "none")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UNDEFENDED:", res)
	fmt.Println("  ", res.Notes)
	if !res.KeyRecovered {
		log.Fatal("expected key recovery on the undefended machine")
	}

	// --- Act 2: the same machine, characterized and guarded. ---
	sys2, err := plugvolt.NewSystem("skylake", 1001)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := sys2.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys2.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := plugvolt.NewPlundervolt(1001).Run(sys2.Env(), guard.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GUARDED:   ", res2)
	fmt.Println("  ", res2.Notes)
	fmt.Printf("   guard interventions: %d, faults leaked: %d, crashes: %d\n",
		guard.Guard.Interventions, res2.FaultsObserved, res2.Crashes)
	if res2.KeyRecovered {
		log.Fatal("guard failed: key recovered")
	}

	// --- Act 3: attestation tells the client which machine to trust. ---
	encl, err := sys2.Registry.Create("rsa-service", 1)
	if err != nil {
		log.Fatal(err)
	}
	rep := encl.Attest(99)
	fmt.Printf("attestation: guard module reported=%v loaded=%v, OC mailbox disabled=%v\n",
		rep.GuardModuleReported, rep.GuardModuleLoaded, rep.OCMDisabled)
}
