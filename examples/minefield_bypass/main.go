// minefield_bypass reproduces the paper's Sec. 4.1 threat-model argument
// against deflection defenses: Minefield's trap instructions catch a naive
// continuous undervolt, but an SGX-Step single-stepping adversary undervolts
// only while payload instructions execute and restores the rail before any
// trap runs — the traps never fire, the payload faults, and the defense is
// bypassed. The paper's polling countermeasure does not depend on enclave
// execution at all, so stepping buys the adversary nothing against it.
package main

import (
	"errors"
	"fmt"
	"log"

	"plugvolt"
	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/msr"
	"plugvolt/internal/sgx"
	"plugvolt/internal/victim"
)

func main() {
	sys, err := plugvolt.NewSystem("skylake", 77)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Platform
	c := p.Core(1)

	// Attacker calibration: an offset that faults imul without crashing.
	attackOffset := 0
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(1, off, msr.PlaneCore); err != nil {
			log.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 0.02 && c.CrashProbability() < 1e-9 {
			attackOffset = off
			break
		}
	}
	restore := func() { _ = p.WriteOffsetViaMSR(1, 0, msr.PlaneCore); p.SettleAll() }
	undervolt := func() { _ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore); p.SettleAll() }
	restore()
	fmt.Printf("calibrated attack offset: %d mV\n\n", attackOffset)

	mf := &defense.Minefield{Density: 3}

	// --- Round 1: naive continuous undervolt -> trap fires. ---
	inner, err := victim.NewIMulLoop(c, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mf.Instrument(inner, c)
	if err != nil {
		log.Fatal(err)
	}
	enclave, err := sys.Registry.Create("minefield-protected", 1)
	if err != nil {
		log.Fatal(err)
	}
	undervolt()
	err = enclave.Run(prog)
	restore()
	if !errors.Is(err, defense.ErrTrapped) {
		log.Fatalf("naive attack was not detected: %v", err)
	}
	fmt.Printf("naive undervolt: DETECTED after %d traps, payload collected %d faults\n",
		prog.Traps, inner.Faults)

	// --- Round 2: SGX-Step adversary -> bypass. ---
	inner2, err := victim.NewIMulLoop(c, 2_000)
	if err != nil {
		log.Fatal(err)
	}
	prog2, err := mf.Instrument(inner2, c)
	if err != nil {
		log.Fatal(err)
	}
	stepper := sgx.NewStepper(p.Sim)
	arm := func() {
		if prog2.NextIsTrap() {
			restore()
		} else {
			undervolt()
		}
	}
	arm()
	err = stepper.Run(prog2, func(int) error { arm(); return nil })
	restore()
	if errors.Is(err, defense.ErrTrapped) {
		log.Fatal("stepping adversary tripped a trap")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-stepping:  BYPASSED — %d steps, %d traps executed, 0 fired, payload faults %d\n",
		stepper.Steps, prog2.Traps, inner2.Faults)
	if inner2.Faults == 0 {
		log.Fatal("bypass produced no faults")
	}

	// --- Round 3: the polling guard vs the same stepping adversary. ---
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		log.Fatal(err)
	}
	guard, err := sys.DeployGuard(grid)
	if err != nil {
		log.Fatal(err)
	}
	inner3, err := victim.NewIMulLoop(c, 2_000)
	if err != nil {
		log.Fatal(err)
	}
	// Stepping helps the adversary time the undervolt, but the guard polls
	// the register between steps (each AEX costs ~10 us of wall time) and
	// the rail physics never let the voltage reach fault depth.
	arm3 := func() { _ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore) }
	arm3()
	if err := stepper.Run(inner3, func(int) error { arm3(); return nil }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polling guard:    HELD — stepping adversary induced %d faults (interventions %d)\n",
		inner3.Faults, guard.Guard.Interventions)
	if inner3.Faults != 0 {
		log.Fatal("guard leaked faults under stepping")
	}
}
