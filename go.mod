module plugvolt

go 1.22
