// Benchmarks regenerating every table and figure in the paper's evaluation,
// one per artifact (see DESIGN.md §4 for the experiment index):
//
//	T1  BenchmarkTable1MailboxCodec        MSR 0x150 bit layout
//	F1  BenchmarkFig1TimingModel           Eq. 1 slack interplay
//	F2  BenchmarkFig2SkyLakeCharacterization
//	F3  BenchmarkFig3KabyLakeRCharacterization
//	F4  BenchmarkFig4CometLakeCharacterization
//	T2  BenchmarkTable2SpecOverhead        SPEC2017 overhead
//	E1  BenchmarkE1GuardEffectiveness      attacks vs polling guard
//	E2  BenchmarkE2DefenseMatrix           defense property matrix
//	E3  BenchmarkE3Turnaround              turnaround by deployment level
//
// plus ablations over the design choices DESIGN.md calls out (poll period,
// guard margin, safe-offset policy).
package plugvolt_test

import (
	"bytes"
	"fmt"
	"testing"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/core"
	"plugvolt/internal/fleet"
	"plugvolt/internal/flight"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/spec"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
	"plugvolt/internal/trace"
)

// benchSink defeats dead-code elimination in the decision-path benchmarks.
var benchSink int

// T1 — Table 1: the OC-mailbox codec (Algorithm 1 and its inverse).
func BenchmarkTable1MailboxCodec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := msr.EncodeVoltageOffset(-(i%300)-1, msr.Plane(i%5))
		d := msr.DecodeVoltageOffset(v)
		if !d.Busy {
			b.Fatal("busy bit lost")
		}
	}
}

// F1 — Fig. 1: evaluate the launch/capture timing relation across the
// operating space of the Sky Lake model's imul path.
func BenchmarkFig1TimingModel(b *testing.B) {
	s, err := models.SkyLake()
	if err != nil {
		b.Fatal(err)
	}
	circ, err := s.Circuit()
	if err != nil {
		b.Fatal(err)
	}
	p, _ := circ.PathByName(models.PathIMul)
	b.ResetTimer()
	unsafePoints := 0
	for i := 0; i < b.N; i++ {
		f := 0.8 + float64(i%29)*0.1
		v := 0.45 + float64(i%80)*0.01
		a := circ.Analyze(p, f, v)
		if !a.Safe() {
			unsafePoints++
		}
	}
	b.ReportMetric(float64(unsafePoints)/float64(b.N), "unsafe-frac")
}

// characterize runs the standard quick sweep for a model.
func characterize(b *testing.B, model string, seed int64) (*plugvolt.System, *plugvolt.Grid) {
	b.Helper()
	sys, err := plugvolt.NewSystem(model, seed)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := sys.Characterize(plugvolt.QuickSweep())
	if err != nil {
		b.Fatal(err)
	}
	return sys, grid
}

// benchCharacterization is the common body of F2/F3/F4.
func benchCharacterization(b *testing.B, model string) {
	for i := 0; i < b.N; i++ {
		_, grid := characterize(b, model, 42)
		if len(grid.UnsafeSet().OnsetMV) == 0 {
			b.Fatal("no unsafe regions found")
		}
		b.ReportMetric(float64(grid.MaximalSafeOffsetMV(0)), "maximal-safe-mV")
		b.ReportMetric(float64(grid.Reboots), "reboots")
	}
}

// F2 — Fig. 2: Sky Lake safe/unsafe characterization.
func BenchmarkFig2SkyLakeCharacterization(b *testing.B) { benchCharacterization(b, "skylake") }

// F3 — Fig. 3: Kaby Lake R safe/unsafe characterization.
func BenchmarkFig3KabyLakeRCharacterization(b *testing.B) { benchCharacterization(b, "kabylaker") }

// F4 — Fig. 4: Comet Lake safe/unsafe characterization.
func BenchmarkFig4CometLakeCharacterization(b *testing.B) { benchCharacterization(b, "cometlake") }

// Scaling — the sharded engine across worker counts on the Comet Lake
// model (the widest frequency table: 46 rows) at the paper's 1 mV offset
// resolution, where row work dominates per-row platform construction
// (~230us/row vs ~28us platform build). The grids are bit-for-bit
// identical at every worker count; only wall-clock should move, and the
// ns/op series across worker counts is what future BENCH_*.json snapshots
// track. Speedup is bounded by GOMAXPROCS: on a single-CPU host the
// series is flat-to-slightly-worse (workers time-slice one core and pay
// channel coordination); the determinism assertions below hold either
// way.
func BenchmarkCharacterizeWorkers(b *testing.B) {
	var refJSON []byte
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := plugvolt.NewSystem("cometlake", 42)
				if err != nil {
					b.Fatal(err)
				}
				cfg := plugvolt.PaperSweep()
				cfg.Workers = workers
				grid, err := sys.Characterize(cfg)
				if err != nil {
					b.Fatal(err)
				}
				js, err := grid.JSON()
				if err != nil {
					b.Fatal(err)
				}
				if refJSON == nil {
					refJSON = js
				} else if !bytes.Equal(refJSON, js) {
					b.Fatalf("workers=%d diverged from reference grid", workers)
				}
				b.ReportMetric(float64(grid.Reboots), "reboots")
			}
		})
	}
}

// T2 — Table 2: SPEC2017 overhead of the polling module on Comet Lake.
func BenchmarkTable2SpecOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, grid := characterize(b, "cometlake", 2017)
		guard, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, core.DefaultGuardConfig())
		if err != nil {
			b.Fatal(err)
		}
		h, err := spec.NewHarness(sys.Platform, sys.Kernel, spec.DefaultHarnessConfig())
		if err != nil {
			b.Fatal(err)
		}
		loadGuard := func(on bool) error {
			loaded := sys.Kernel.Loaded(core.ModuleName)
			switch {
			case on && !loaded:
				return sys.Kernel.Load(guard.Module())
			case !on && loaded:
				return sys.Kernel.Unload(core.ModuleName)
			}
			return nil
		}
		tab, err := h.MeasureTable(loadGuard, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 23 {
			b.Fatalf("rows %d", len(tab.Rows))
		}
		b.ReportMetric(tab.MeanAbsPct, "mean-abs-slowdown-%")
		b.ReportMetric(tab.DirectOverheadPct, "direct-overhead-%")
	}
}

// E1 — guard effectiveness: the three attacks against the polling module.
func BenchmarkE1GuardEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, grid := characterize(b, "skylake", 42)
		guard, err := sys.DeployGuard(grid)
		if err != nil {
			b.Fatal(err)
		}
		faults := 0
		for _, atk := range []attack.Attack{
			attack.DefaultPlundervolt(42),
			attack.DefaultVoltJockey(),
			attack.DefaultV0LTpwn(),
		} {
			res, err := atk.Run(sys.Env(), guard.Name())
			if err != nil {
				b.Fatal(err)
			}
			if res.Succeeded {
				b.Fatalf("%s beat the guard", res.Attack)
			}
			faults += res.FaultsObserved
		}
		b.ReportMetric(float64(faults), "leaked-faults")
		b.ReportMetric(float64(guard.Guard.Interventions), "interventions")
	}
}

// E2 — defense matrix: properties plus live benign-DVFS verification.
func BenchmarkE2DefenseMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, grid := characterize(b, "skylake", 42)
		defs, err := sys.Defenses(grid)
		if err != nil {
			b.Fatal(err)
		}
		benignOK := 0
		for _, cm := range defs {
			if cm.AllowsBenignDVFS() {
				benignOK++
			}
		}
		b.ReportMetric(float64(benignOK), "benign-dvfs-defenses")
		b.ReportMetric(float64(len(defs)), "defenses")
	}
}

// E3 — turnaround: worst-case unsafe dwell per deployment level, swept over
// poll periods (the kernel module's tunable) against the zero-window
// microcode/clamp variants.
func BenchmarkE3Turnaround(b *testing.B) {
	sys, grid := characterize(b, "skylake", 42)
	unsafe := grid.UnsafeSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst := sim.Duration(0)
		for _, period := range []sim.Duration{50 * sim.Microsecond, 100 * sim.Microsecond, 500 * sim.Microsecond, sim.Millisecond} {
			cfg := core.DefaultGuardConfig()
			cfg.PollPeriod = period
			g, err := core.NewGuard(unsafe, sys.Platform.Spec.BusMHz, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if ta := g.WorstCaseTurnaround(20*sim.Microsecond, 0.5); ta > worst {
				worst = ta
			}
		}
		b.ReportMetric(float64(worst)/float64(sim.Microsecond), "worst-turnaround-us")
	}
}

// Ablation: poll period vs protection and overhead. Sweeps the guard's
// period against a live attacker and reports leaked faults per period.
func BenchmarkAblationPollPeriod(b *testing.B) {
	for _, period := range []sim.Duration{50 * sim.Microsecond, 100 * sim.Microsecond, 250 * sim.Microsecond, 1 * sim.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, grid := characterize(b, "skylake", 42)
				cfg := core.DefaultGuardConfig()
				cfg.PollPeriod = period
				guard, err := sys.DeployGuardConfig(grid, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := attack.DefaultV0LTpwn().Run(sys.Env(), guard.Name())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FaultsObserved), "leaked-faults")
				b.ReportMetric(float64(guard.Guard.Interventions), "interventions")
			}
		})
	}
}

// Ablation: guard margin — how much conservative widening of the unsafe
// boundary the statistical onset needs (DESIGN.md calls this out; a zero
// margin lets a patient attacker farm rare faults just above the measured
// boundary).
func BenchmarkAblationGuardMargin(b *testing.B) {
	for _, margin := range []int{0, 5, 15, 30} {
		margin := margin
		b.Run(fmt.Sprintf("margin%dmV", margin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, grid := characterize(b, "skylake", 42)
				cfg := core.DefaultGuardConfig()
				cfg.MarginMV = margin
				guard, err := sys.DeployGuardConfig(grid, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := attack.DefaultPlundervolt(42).Run(sys.Env(), guard.Name())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FaultsObserved), "leaked-faults")
				succeeded := 0.0
				if res.Succeeded {
					succeeded = 1
				}
				b.ReportMetric(succeeded, "key-recovered")
				_ = guard
			}
		})
	}
}

// Ablation: safe-offset policy — restoring to 0 mV vs to the maximal safe
// state (the latter preserves benign undervolting through interventions).
func BenchmarkAblationSafeOffsetPolicy(b *testing.B) {
	for _, useMSV := range []bool{false, true} {
		useMSV := useMSV
		name := "restore-zero"
		if useMSV {
			name = "restore-maximal-safe"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, grid := characterize(b, "skylake", 42)
				cfg := core.DefaultGuardConfig()
				if useMSV {
					cfg.SafeOffsetMV = grid.MaximalSafeOffsetMV(20)
				}
				guard, err := sys.DeployGuardConfig(grid, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := attack.DefaultV0LTpwn().Run(sys.Env(), guard.Name())
				if err != nil {
					b.Fatal(err)
				}
				if res.Succeeded {
					b.Fatal("policy variant lost to the attack")
				}
				b.ReportMetric(float64(cfg.SafeOffsetMV), "safe-offset-mV")
			}
		})
	}
}

// E3-empirical — measured companion to BenchmarkE3Turnaround: record the
// victim rail during a guarded live attack and report the actual unsafe
// dwell of register and rail (the rail dwell is the paper's real safety
// criterion, and it measures zero).
func BenchmarkE3EmpiricalUnsafeDwell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, grid := characterize(b, "skylake", 42)
		unsafe := grid.UnsafeSet()
		if _, err := sys.DeployGuard(grid); err != nil {
			b.Fatal(err)
		}
		p := sys.Platform
		rec, err := trace.NewRecorder(p.Core(1), 5*sim.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Start(p.Sim); err != nil {
			b.Fatal(err)
		}
		freq := p.FreqKHz(1)
		attacker := p.Sim.Every(537*sim.Microsecond, func() {
			_ = p.WriteOffsetViaMSR(1, unsafe.OnsetMV[freq]-60, msr.PlaneCore)
		})
		p.Sim.RunFor(25 * sim.Millisecond)
		attacker.Stop()
		rec.Stop()
		reg := rec.UnsafeRegisterDwell(unsafe)
		rail := rec.UnsafeRailDwell(unsafe, func(freqKHz int) float64 {
			return p.Spec.NominalMV(msr.KHzToRatio(freqKHz, p.Spec.BusMHz))
		})
		if rail.Total != 0 {
			b.Fatalf("rail unsafe for %v — guard lost the race", rail.Total)
		}
		b.ReportMetric(float64(reg.Longest)/float64(sim.Microsecond), "register-dwell-max-us")
		b.ReportMetric(rail.Fraction()*100, "rail-unsafe-%")
	}
}

// Hot path — the guard decision rewrite: the per-poll membership test,
// compiled from the map-backed UnsafeSet.Contains down to a dense 256-entry
// per-ratio LUT with the guard margin pre-folded. decision-map measures the
// replaced path exactly as the old pollOne ran it (RatioToKHz, map probe,
// neighbour scan on a miss); decision-lut measures the compiled path the
// guard runs now. Both evaluate the same 4096-membership (ratio, offset)
// stream per op, so their ns/op are directly comparable. The poll-*
// sub-benches then time the full steady-state poll loop end to end — one
// kthread tick (every core polled) per op, driven through the simulator the
// way a deployment drives it — with allocations reported: the poll path is
// allocation-free both with telemetry off and with full tracing on once the
// span buffer reaches its drop-newest steady state. CI gates poll-* against
// the committed BENCH_2.json baseline.
func BenchmarkGuardPollSteadyState(b *testing.B) {
	const decisionsPerOp = 4096
	sys, grid := characterize(b, "skylake", 42)
	unsafe := grid.UnsafeSet()
	bus := sys.Platform.Spec.BusMHz
	margin := core.DefaultGuardConfig().MarginMV
	lut, err := unsafe.Compile(bus, margin)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("decision-map", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			for j := 0; j < decisionsPerOp; j++ {
				ratio := uint8(j * 11)
				offset := -(j * 7 % 300)
				if unsafe.Contains(msr.RatioToKHz(ratio, bus), offset-margin) {
					sink++
				}
			}
		}
		benchSink += sink
	})

	b.Run("decision-lut", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			for j := 0; j < decisionsPerOp; j++ {
				ratio := uint8(j * 11)
				offset := -(j * 7 % 300)
				if lut.Unsafe(ratio, offset) {
					sink++
				}
			}
		}
		benchSink += sink
	})

	// pollSteadyState deploys the guard on a freshly characterized Sky Lake
	// machine and times one poll period per op. With tracing on, a live
	// registry, journal and span tracer are attached (small caps so warm-up
	// is cheap) and the run is warmed until both journal and span buffer sit
	// in their drop-newest regime — a long experiment's normal condition.
	pollSteadyState := func(b *testing.B, tracing, flightOn bool) {
		sys, grid := characterize(b, "skylake", 42)
		cfg := core.DefaultGuardConfig()
		if flightOn {
			// Recorder riding the hot path: the <5% regression budget on
			// this sub-bench vs poll-telemetry-off is the flight recorder's
			// performance contract.
			cfg.Flight = sys.AttachFlightRecorder(0, 0)
		}
		if tracing {
			tel := &telemetry.Set{
				Reg:     telemetry.NewRegistry(sys.Platform.Sim.Now),
				Journal: telemetry.NewJournal(sys.Platform.Sim.Now, 256),
				Trace:   span.NewTracer(span.Clock(sys.Platform.Sim.Now), 42, 1024),
			}
			sys.SetTelemetry(tel)
			cfg.Telemetry = tel
		} else {
			sys.SetTelemetry(&telemetry.Set{})
		}
		guard, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Kernel.Load(guard.Module()); err != nil {
			b.Fatal(err)
		}
		if tracing {
			for i := 0; sys.Telemetry.Trace.Dropped() == 0 || !sys.Telemetry.Events().Full(); i++ {
				if i > 100 {
					b.Fatal("telemetry buffers never filled during warm-up")
				}
				sys.RunFor(50 * sim.Millisecond)
			}
		} else {
			sys.RunFor(sim.Millisecond)
		}
		checksBefore := guard.Checks
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.RunFor(cfg.PollPeriod)
		}
		b.StopTimer()
		if guard.Checks == checksBefore {
			b.Fatal("guard stopped polling")
		}
		if guard.Interventions != 0 {
			b.Fatal("benign steady state triggered interventions; wrong path measured")
		}
		b.ReportMetric(float64(guard.Checks-checksBefore)/float64(b.N), "polls/op")
	}

	b.Run("poll-telemetry-off", func(b *testing.B) { pollSteadyState(b, false, false) })
	b.Run("poll-tracing-on", func(b *testing.B) { pollSteadyState(b, true, false) })
	b.Run("poll-flight-on", func(b *testing.B) { pollSteadyState(b, false, true) })
}

// Flight recorder microbenchmarks — the ns/op axes CI gates against
// BENCH_5.json. The append path is the one that rides every guard poll and
// mailbox write, so it must stay allocation-free and cheap; trigger/encode
// are rare (per incident) but bounded here so the capture path cannot
// quietly become a stall.
func BenchmarkFlightRecorder(b *testing.B) {
	b.Run("append", func(b *testing.B) {
		var now sim.Time
		rec := flight.NewRecorder(func() sim.Time { return now }, 4096, 64, "skylake", 42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = sim.Time(i)
			rec.GuardPoll(i&3, 32, -(i % 200), false)
		}
		if rec.Stats().Records != uint64(b.N) {
			b.Fatal("ring lost records")
		}
	})

	b.Run("trigger-capture", func(b *testing.B) {
		var now sim.Time
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rec := flight.NewRecorder(func() sim.Time { return now }, 1024, 32, "skylake", 42)
			for j := 0; j < 1024; j++ {
				now = sim.Time(j)
				rec.MailboxWrite(1, -100, 0, flight.OutcomeAccepted, uint64(j))
			}
			b.StartTimer()
			rec.Trigger(flight.CauseFault, 1, "bench")
			for j := 0; j < 32; j++ {
				rec.GuardPoll(1, 32, -100, false)
			}
			if len(rec.Bundles()) != 1 {
				b.Fatal("capture did not seal")
			}
		}
	})

	b.Run("encode", func(b *testing.B) {
		var now sim.Time
		rec := flight.NewRecorder(func() sim.Time { return now }, 1024, 8, "skylake", 42)
		for j := 0; j < 1024; j++ {
			now = sim.Time(j)
			rec.MailboxWrite(1, -100, 0, flight.OutcomeAccepted, uint64(j))
		}
		rec.Trigger(flight.CauseFault, 1, "bench")
		rec.Seal()
		bundle := rec.Bundles()[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc, err := bundle.Encode()
			if err != nil {
				b.Fatal(err)
			}
			benchSink += len(enc)
		}
	})
}

// Energy accounting — the joules/op regression axis: one guard poll period
// of guarded benign steady state per op, with the platform integrator's
// package energy and the kernel-attributed guard energy reported per op.
// Both are integrals over the virtual clock, so J/op is a property of the
// power model and the guard's duty cycle — not of the host — and is stable
// enough for CI to gate against the committed BENCH_4.json baseline: a
// regression means the guard got electrically more expensive (more polls,
// costlier primitives, or a hotter commanded operating point), which no
// wall-clock metric would catch. The energy ledgers mutate only at
// event-driven instants and reads are pure, so metering here cannot perturb
// the ns/op axis of the co-gated poll benchmarks.
func BenchmarkEnergyAccounting(b *testing.B) {
	sys, grid := characterize(b, "skylake", 42)
	sys.SetTelemetry(&telemetry.Set{})
	cfg := core.DefaultGuardConfig()
	guard, err := core.NewGuard(grid.UnsafeSet(), sys.Platform.Spec.BusMHz, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Kernel.Load(guard.Module()); err != nil {
		b.Fatal(err)
	}
	sys.RunFor(sim.Millisecond)
	tr := sys.Platform.Energy
	guardPJ := func() int64 {
		var pj int64
		for c := 0; c < sys.Platform.NumCores(); c++ {
			pj += sys.Kernel.EnergyPJ(c)
		}
		return pj
	}
	b.ReportAllocs()
	b.ResetTimer()
	pkgBefore := tr.PackageEnergyJ()
	guardBefore := guardPJ()
	for i := 0; i < b.N; i++ {
		sys.RunFor(cfg.PollPeriod)
	}
	b.StopTimer()
	if guard.Interventions != 0 {
		b.Fatal("benign steady state triggered interventions; wrong path measured")
	}
	b.ReportMetric((tr.PackageEnergyJ()-pkgBefore)/float64(b.N), "J/op")
	b.ReportMetric(float64(guardPJ()-guardBefore)*1e-12/float64(b.N), "guardJ/op")
}

// Fleet throughput — the concurrent fleet-simulation engine: a mixed
// skylake/kabylaker/cometlake fleet, each machine characterized, guarded
// and attacked, simulated across the default worker pool. The aggregate is
// validated every op (the guard must hold fleet-wide); machines/s is the
// headline throughput metric.
func BenchmarkFleetThroughput(b *testing.B) {
	const machines = 4
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(fleet.Config{Machines: machines, Seed: 42, Attack: "voltjockey"})
		if err != nil {
			b.Fatal(err)
		}
		agg := rep.Aggregate
		if agg.Errors != 0 || agg.AttacksSucceeded != 0 {
			b.Fatalf("fleet aggregate %+v", agg)
		}
		if agg.GuardInterventions == 0 {
			b.Fatal("fleet guard never engaged")
		}
	}
	b.ReportMetric(float64(machines*b.N)/b.Elapsed().Seconds(), "machines/s")
}

// Fleet streaming — the O(batch) epoch engine: the same mixed fleet carried
// through epoch-sliced guard windows in bounded batches, with telemetry
// folded incrementally. machine-windows/s is the headline metric and
// heap-high-water-MB is the fleet memory assertion the bench-json artifact
// tracks: it must scale with the batch, never with the fleet.
func BenchmarkFleetStreaming(b *testing.B) {
	const machines, epochs, batchSize = 12, 4, 3
	var highWater uint64
	for i := 0; i < b.N; i++ {
		cfg := fleet.StreamConfig{
			Config: fleet.Config{Machines: machines, Seed: 42, Attack: "none",
				Window: 2 * sim.Millisecond},
			Epochs: epochs,
			Batch:  batchSize,
			Progress: func(p fleet.Progress) {
				if p.HeapBytes > highWater {
					highWater = p.HeapBytes
				}
				if p.Resident > batchSize {
					b.Fatalf("resident %d exceeds batch %d", p.Resident, batchSize)
				}
			},
		}
		rep, err := fleet.RunStream(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Aggregate.Errors != 0 || rep.Aggregate.GuardChecks == 0 {
			b.Fatalf("fleet aggregate %+v", rep.Aggregate)
		}
	}
	b.ReportMetric(float64(machines*epochs*b.N)/b.Elapsed().Seconds(), "machine-windows/s")
	b.ReportMetric(float64(highWater)/(1<<20), "heap-high-water-MB")
}

// Ablation: adaptive bisection vs the full Algorithm 2 scan — probes spent
// to obtain a guard-ready unsafe set.
func BenchmarkAblationAdaptiveVsSweep(b *testing.B) {
	b.Run("full-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, grid := characterize(b, "skylake", 42)
			points := len(grid.FreqsKHz) * len(grid.OffsetsMV)
			b.ReportMetric(float64(points), "grid-points")
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := plugvolt.NewSystem("skylake", 42)
			if err != nil {
				b.Fatal(err)
			}
			a, err := core.NewAdaptiveCharacterizer(sys.Platform, plugvolt.QuickSweep(), 2)
			if err != nil {
				b.Fatal(err)
			}
			unsafe, results, err := a.Run()
			if err != nil {
				b.Fatal(err)
			}
			if len(unsafe.OnsetMV) != 29 {
				b.Fatalf("boundaries %d", len(unsafe.OnsetMV))
			}
			probes := 0
			for _, r := range results {
				probes += r.Probes
			}
			b.ReportMetric(float64(probes), "grid-points")
		}
	})
}

// S6 — PR 6 probe economics: the bisect characterization strategy vs the
// full sweep at the Fig. 2 resolution (identical grid, fewer measured
// probes), reported as probes/op so plugvolt-bench can gate it.
func BenchmarkBisectVsSweep(b *testing.B) {
	s, err := models.ByName("skylake")
	if err != nil {
		b.Fatal(err)
	}
	for _, strategy := range []string{core.StrategySweep, core.StrategyBisect} {
		b.Run(strategy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultCharacterizerConfig()
				cfg.Strategy = strategy
				cfg.Workers = 8
				sc, err := core.NewShardedCharacterizer(s, 42, cfg)
				if err != nil {
					b.Fatal(err)
				}
				grid, err := sc.Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(grid.UnsafeSet().OnsetMV) == 0 {
					b.Fatal("no unsafe regions found")
				}
				stats := sc.Stats()
				if stats.FallbackRows != 0 {
					b.Fatalf("%d fallback rows", stats.FallbackRows)
				}
				b.ReportMetric(float64(stats.Probes), "probes/op")
			}
		})
	}
}

// S6 — the red-team annealer's time to first fault on an undefended
// machine: how many adaptive probes the attacker spends before landing a
// fault, the attacker-side cost a defense must inflate.
func BenchmarkAnnealTimeToFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := plugvolt.NewSystem("skylake", 42)
		if err != nil {
			b.Fatal(err)
		}
		res, err := attack.DefaultRedTeam(42).Run(sys.Env(), "none")
		if err != nil {
			b.Fatal(err)
		}
		if !res.Succeeded {
			b.Fatal("annealer exhausted its budget without a fault")
		}
		b.ReportMetric(float64(res.ProbesToFirstFault), "probes/op")
	}
}
