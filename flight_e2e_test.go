// End-to-end contracts of the flight recorder + incident forensics pipeline:
// a campaign that faults the victim must freeze a bundle whose pre-trigger
// history contains the unsafe MSR write that caused the fault, and the
// framed bundle bytes must be identical across independent runs of the same
// experiment — the property that makes an incident file diffable evidence
// rather than a log.
package plugvolt_test

import (
	"bytes"
	"testing"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/defense"
	"plugvolt/internal/flight"
)

// captureUnderAttack boots a fresh undefended system, rides a flight
// recorder along a plundervolt campaign, and returns the sealed bundles.
func captureUnderAttack(t *testing.T, seed int64) []*flight.Bundle {
	t.Helper()
	sys, err := plugvolt.NewSystem("skylake", seed)
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.AttachFlightRecorder(0, 16)
	cm := defense.None{}
	if err := cm.Install(sys.Env()); err != nil {
		t.Fatal(err)
	}
	res, err := atkRun(t, sys, seed, cm.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || res.FaultsObserved == 0 {
		t.Fatalf("undefended plundervolt must fault (succeeded=%v faults=%d)", res.Succeeded, res.FaultsObserved)
	}
	rec.Seal()
	return rec.Bundles()
}

func atkRun(t *testing.T, sys *plugvolt.System, seed int64, defName string) (*attack.Result, error) {
	t.Helper()
	return attack.DefaultPlundervolt(seed).Run(sys.Env(), defName)
}

// TestFlightBundleCapturedUnderAttack is the forensic acceptance contract:
// the bundle frozen by the victim's fault carries, strictly before the
// trigger record, the accepted unsafe mailbox write that produced it.
func TestFlightBundleCapturedUnderAttack(t *testing.T) {
	bundles := captureUnderAttack(t, 42)
	if len(bundles) == 0 {
		t.Fatal("faulting campaign captured no incident bundle")
	}
	b := bundles[0]
	if b.Cause != string(flight.CauseFault) {
		t.Fatalf("cause %q, want fault", b.Cause)
	}
	var faultOffset int64
	sawTrigger := false
	deepestBefore := int64(0)
	for _, r := range b.Records {
		switch r.Kind {
		case flight.KindFault:
			faultOffset = r.B
		case flight.KindTrigger:
			sawTrigger = true
		case flight.KindMailboxWrite:
			if !sawTrigger && r.Flag == flight.OutcomeAccepted && r.A < deepestBefore {
				deepestBefore = r.A
			}
		}
	}
	if !sawTrigger {
		t.Fatal("bundle carries no trigger record")
	}
	if faultOffset >= 0 {
		t.Fatalf("fault record blames offset %d, want a negative undervolt", faultOffset)
	}
	// The mailbox quantizes commanded offsets to ~1 mV units, so the write
	// that caused the fault may decode within 2 mV of the blamed offset.
	if d := deepestBefore - faultOffset; d < -2 || d > 2 {
		t.Fatalf("deepest accepted pre-trigger write %d mV does not explain the fault at %d mV",
			deepestBefore, faultOffset)
	}
	// Re-encode/decode round trip keeps the forensic bytes stable.
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := flight.DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := b2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("bundle does not round-trip byte-identically")
	}
}

// TestFlightBundleByteIdenticalAcrossRuns freezes the determinism contract:
// two independent processes-worth of the same experiment (fresh system, same
// seed) must produce byte-identical framed incident files.
func TestFlightBundleByteIdenticalAcrossRuns(t *testing.T) {
	first, err := flight.EncodeAll(captureUnderAttack(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	second, err := flight.EncodeAll(captureUnderAttack(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("incident files diverge across identical runs")
	}
	other, err := flight.EncodeAll(captureUnderAttack(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical incident files; capture is not recording the experiment")
	}
}
