package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"plugvolt/internal/flight"
	"plugvolt/internal/sim"
	"plugvolt/internal/slo"
	"plugvolt/internal/telemetry"
)

// fixture builds a server over a populated telemetry set.
func fixture(t *testing.T) (*Server, *sim.Time) {
	t.Helper()
	now := new(sim.Time)
	clock := func() sim.Time { return *now }
	set := telemetry.NewSet(clock, 16, 7)
	set.Registry().Counter("guard_polls_total", "polls", nil).Add(42)
	set.Registry().Gauge("platform_reboots", "reboots", nil).Set(3)
	*now = 1 * sim.Millisecond
	set.Events().Emit("guard_loaded", map[string]any{"period_us": 100})
	sp := set.Spans().Start("guard", "guard_poll", map[string]any{"core": 0})
	sp.EndWithCost(500 * sim.Nanosecond)
	return &Server{Telemetry: set, Clock: clock, Lock: &sync.Mutex{}}, now
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := fixture(t)
	collected := false
	srv.Collect = func() { collected = true }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !collected {
		t.Error("Collect not invoked")
	}
	for _, want := range []string{
		"# TYPE guard_polls_total counter",
		"guard_polls_total 42",
		"# TYPE platform_reboots gauge",
		"platform_reboots 3",
		"telemetry_journal_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestEventsEndpoint(t *testing.T) {
	srv, _ := fixture(t)
	for i := 0; i < 5; i++ {
		srv.Telemetry.Events().Emit("tick", map[string]any{"i": i})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/events")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", n, body)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	_, tail := get(t, ts, "/events?n=2")
	if n := strings.Count(strings.TrimSpace(tail), "\n") + 1; n != 2 {
		t.Fatalf("tail got %d lines, want 2:\n%s", n, tail)
	}
	if code, _ := get(t, ts, "/events?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", code)
	}
}

func TestTracesEndpoint(t *testing.T) {
	srv, _ := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/traces")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	code, folded := get(t, ts, "/traces?format=folded")
	if code != http.StatusOK || !strings.Contains(folded, "guard;guard_poll") {
		t.Fatalf("folded: status %d body %q", code, folded)
	}
	if code, _ := get(t, ts, "/traces?format=svg"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", code)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv, now := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	if h.NowPS != int64(*now) {
		t.Errorf("now_ps = %d, want %d", h.NowPS, int64(*now))
	}
	if h.Build.GoVersion == "" {
		t.Error("missing build go_version")
	}
	if h.Journal.Len != 1 || h.Journal.Cap != 16 {
		t.Errorf("journal health %+v", h.Journal)
	}
	if h.Spans.Len != 1 {
		t.Errorf("spans health %+v", h.Spans)
	}
	if h.SLO != nil {
		t.Error("unexpected slo section without a watchdog")
	}
}

func TestHealthzDegradedOnSLOViolation(t *testing.T) {
	srv, now := fixture(t)
	// One poll at 1ms, then silence until 100ms: a stall for the watchdog.
	*now = 100 * sim.Millisecond
	srv.Watchdog = &slo.Watchdog{
		Tracer:  srv.Telemetry.Spans(),
		Journal: srv.Telemetry.Events(),
		Rules:   slo.DefaultRules(100 * sim.Microsecond),
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "degraded" || h.SLO == nil || h.SLO.OK || len(h.SLO.Violations) == 0 {
		t.Fatalf("degraded doc wrong: %s", body)
	}
}

func TestJournalDropCountSurfaces(t *testing.T) {
	srv, _ := fixture(t)
	// Overflow the 16-event journal; drop-newest keeps the first 16.
	for i := 0; i < 40; i++ {
		srv.Telemetry.Events().Emit("flood", map[string]any{"i": i})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/healthz")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Journal.Dropped == 0 {
		t.Fatalf("healthz does not surface journal drops: %s", body)
	}
	// The same count must appear as a counter on /metrics (satellite 1).
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(metrics, "telemetry_journal_dropped_total 25") {
		t.Fatalf("drop counter missing from metrics:\n%s", metrics)
	}
}

func TestPprofAndIndex(t *testing.T) {
	srv, _ := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", code)
	}
	if code, body := get(t, ts, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, ts, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", code)
	}
}

func TestStartBindsEphemeralPort(t *testing.T) {
	srv, _ := fixture(t)
	httpSrv, addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer httpSrv.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestNilTelemetryServesEmpty(t *testing.T) {
	srv := &Server{}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/events", "/healthz"} {
		if code, _ := get(t, ts, path); code != http.StatusOK {
			t.Errorf("%s on empty server: status %d", path, code)
		}
	}
}

// /healthz republishes the joule ledger when an energy source is attached
// — package/core totals, guard total, and the per-kind split summing to it
// — and omits the section entirely without one. Degradation still flows
// from the watchdog: an energy-budget violation turns the response 503.
func TestHealthzEnergySection(t *testing.T) {
	srv, now := fixture(t)
	*now = 10 * sim.Millisecond
	srv.Energy = func() *EnergyHealth {
		return &EnergyHealth{
			PackageJoules: 1.25,
			CoresJoules:   1.05,
			GuardJoules:   0.003,
			GuardByKind:   map[string]float64{"wake": 0.001, "rdmsr": 0.0015, "wrmsr": 0, "intervention": 0.0005},
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Energy == nil {
		t.Fatal("energy section missing")
	}
	if h.Energy.PackageJoules != 1.25 || h.Energy.GuardJoules != 0.003 {
		t.Fatalf("energy section %+v", h.Energy)
	}
	var kindSum float64
	for _, v := range h.Energy.GuardByKind {
		kindSum += v
	}
	if kindSum != h.Energy.GuardJoules {
		t.Fatalf("per-kind joules %g do not sum to guard total %g", kindSum, h.Energy.GuardJoules)
	}

	// Energy-budget violation degrades the endpoint.
	srv.Watchdog = &slo.Watchdog{
		Rules:        []slo.Rule{slo.EnergyBudgetRule(0.100)},
		GuardEnergyJ: func(core int) float64 { return 0.002 }, // 200 mW over 10 ms
		NumCores:     1,
	}
	code, body = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("energy violation not degraded: status %d: %s", code, body)
	}
	if !strings.Contains(body, "guard_energy_budget") {
		t.Fatalf("violation detail missing: %s", body)
	}

	// No source: no section.
	srv.Energy = nil
	srv.Watchdog = nil
	_, body = get(t, ts, "/healthz")
	if strings.Contains(body, "package_joules") {
		t.Fatalf("energy section present without a source: %s", body)
	}
}

// flightFixture seals one captured incident into a recorder for the
// /incidents endpoint tests.
func flightFixture() *flight.Recorder {
	var now sim.Time
	rec := flight.NewRecorder(func() sim.Time { return now }, 64, 2, "skylake", 7)
	rec.SetGuardView(&flight.GuardView{Model: "skylake", BusMHz: 100,
		Thresholds: []flight.RatioThreshold{{Ratio: 30, ThresholdMV: -195}}})
	now = 5 * sim.Microsecond
	rec.MailboxWrite(1, -230, 0, flight.OutcomeAccepted, 11)
	now = 6 * sim.Microsecond
	rec.Fault(1, 1, -230)
	rec.Trigger(flight.CauseFault, 1, "test fault")
	rec.Seal()
	return rec
}

// TestIncidentsEndpoint covers the /incidents surface: the summary list,
// fetch-by-seq in JSON and framed form, and the error paths.
func TestIncidentsEndpoint(t *testing.T) {
	srv, _ := fixture(t)
	srv.Flight = flightFixture()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/incidents")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var list []IncidentSummary
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(list) != 1 || list[0].Seq != 1 || list[0].Cause != "fault" || list[0].Core != 1 {
		t.Fatalf("list %+v", list)
	}

	code, body = get(t, ts, "/incidents?seq=1")
	if code != http.StatusOK {
		t.Fatalf("fetch status %d", code)
	}
	var b flight.Bundle
	if err := json.Unmarshal([]byte(body), &b); err != nil {
		t.Fatalf("bundle not JSON: %v", err)
	}
	if b.Detail != "test fault" || len(b.Records) == 0 || b.Guard == nil {
		t.Fatalf("bundle %+v", b)
	}

	// The framed form is the -incidents-out byte format: it must decode.
	code, framed := get(t, ts, "/incidents?seq=1&format=framed")
	if code != http.StatusOK {
		t.Fatalf("framed status %d", code)
	}
	fb, n, err := flight.DecodeBundle([]byte(framed))
	if err != nil || n != len(framed) {
		t.Fatalf("framed fetch does not decode: %v (consumed %d of %d)", err, n, len(framed))
	}
	if fb.Detail != "test fault" {
		t.Fatalf("framed bundle %+v", fb)
	}

	if code, _ := get(t, ts, "/incidents?seq=99"); code != http.StatusNotFound {
		t.Fatalf("unknown seq: status %d, want 404", code)
	}
	if code, _ := get(t, ts, "/incidents?seq=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d, want 400", code)
	}
	if code, _ := get(t, ts, "/incidents?seq=1&format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("bad format: status %d, want 400", code)
	}
}

// TestIncidentsEndpointWithoutRecorder: the endpoint stays useful (empty
// list) when no recorder is attached.
func TestIncidentsEndpointWithoutRecorder(t *testing.T) {
	srv, _ := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := get(t, ts, "/incidents")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("status %d body %q, want 200 []", code, body)
	}
}

// TestHealthzFlightSection: with a recorder attached, /healthz reports ring
// utilization and capture counters.
func TestHealthzFlightSection(t *testing.T) {
	srv, _ := fixture(t)
	srv.Flight = flightFixture()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/healthz")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Flight == nil {
		t.Fatalf("flight section missing: %s", body)
	}
	if h.Flight.Triggers != 1 || h.Flight.Captures != 1 || h.Flight.Bundles != 1 || h.Flight.Records == 0 {
		t.Fatalf("flight stats %+v", h.Flight)
	}
}

// TestHealthzDegradedBodyNamesViolatedRules is the structured-503 contract:
// the degraded body must name each violated rule (kind, bound, measured
// value) and carry the window stats, not just a prose summary.
func TestHealthzDegradedBodyNamesViolatedRules(t *testing.T) {
	srv, now := fixture(t)
	*now = 100 * sim.Millisecond
	srv.Watchdog = &slo.Watchdog{
		Tracer:  srv.Telemetry.Spans(),
		Journal: srv.Telemetry.Events(),
		Rules:   slo.DefaultRules(100 * sim.Microsecond),
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.SLO == nil || len(h.SLO.ViolatedRules) == 0 {
		t.Fatalf("degraded body carries no violated_rules: %s", body)
	}
	for _, vr := range h.SLO.ViolatedRules {
		if vr.Rule == "" || vr.Kind == "" {
			t.Fatalf("violated rule lacks identity: %+v", vr)
		}
		if vr.MeasuredPS == 0 && vr.Detail == "" {
			t.Fatalf("violated rule lacks a measured value: %+v", vr)
		}
	}
	if h.SLO.Stats == nil {
		t.Fatalf("degraded body carries no window stats: %s", body)
	}
	if h.SLO.Stats.Polls == 0 {
		t.Fatalf("stats did not count the fixture's poll span: %+v", h.SLO.Stats)
	}
}
