// Package obs is the live exposition server: it puts the deterministic
// telemetry surfaces — Prometheus metrics, the event journal, the causal
// span trace, SLO health — behind plain HTTP so a running experiment can be
// watched with curl, Prometheus, or Perfetto instead of only post-mortem
// dump files.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (runs Collect first)
//	/events         event journal as JSONL; ?n=100 tails the last 100
//	/traces         Chrome trace-event JSON (load in Perfetto); ?format=folded
//	/healthz        JSON health document; 503 when an SLO is violated
//	/incidents      flight-recorder incident bundles; ?seq=N fetches one
//	/debug/pprof/*  standard Go profiling endpoints
//
// The simulator is not thread-safe and the server answers from its own
// goroutines, so Server.Lock (when set) is held for the duration of every
// handler that touches shared state; the driving loop must hold the same
// lock while advancing the simulation.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"plugvolt/internal/buildinfo"
	"plugvolt/internal/flight"
	"plugvolt/internal/sim"
	"plugvolt/internal/slo"
	"plugvolt/internal/telemetry"
)

// Server exposes one telemetry set over HTTP. Zero fields are tolerated:
// a nil Telemetry serves empty documents, a nil Watchdog omits the SLO
// section, a nil Lock skips locking.
type Server struct {
	// Telemetry is the set to expose.
	Telemetry *telemetry.Set
	// Collect, when set, is invoked before serving /metrics or /healthz so
	// pull-style gauges reflect the moment of the request (typically
	// System.CollectTelemetry).
	Collect func()
	// Watchdog, when set, is evaluated on /healthz; any violation turns the
	// response into 503 Service Unavailable.
	Watchdog *slo.Watchdog
	// Clock supplies the virtual time reported by /healthz and used as the
	// watchdog's evaluation window end.
	Clock func() sim.Time
	// Energy, when set, supplies the joule ledger /healthz reports: the
	// integrator's package/core totals and the kernel-attributed guard
	// energy broken down by CostKind (the power_energy_joules_total series,
	// surfaced here so health checks need not scrape /metrics).
	Energy func() *EnergyHealth
	// Flight, when set, backs /incidents (bundle list + fetch) and the
	// /healthz flight section (ring utilization and capture counters).
	Flight *flight.Recorder
	// Lock, when set, is held across every handler body.
	Lock sync.Locker
}

func (s *Server) lock() func() {
	if s.Lock == nil {
		return func() {}
	}
	s.Lock.Lock()
	return s.Lock.Unlock
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/incidents", s.handleIncidents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// Start listens on addr (":0" picks a free port), serves in a background
// goroutine and returns the bound address. Shut the server down via the
// returned *http.Server.
func (s *Server) Start(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "plugvolt observability endpoints:")
	fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
	fmt.Fprintln(w, "  /events?n=100   event journal tail (JSONL)")
	fmt.Fprintln(w, "  /traces         Chrome trace JSON (?format=folded for flamegraphs)")
	fmt.Fprintln(w, "  /healthz        health + SLO status (JSON)")
	fmt.Fprintln(w, "  /incidents      flight-recorder incident bundles (?seq=N fetches one)")
	fmt.Fprintln(w, "  /debug/pprof/   Go profiling")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	defer s.lock()()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Telemetry == nil {
		return
	}
	if s.Collect != nil {
		s.Collect()
	}
	if err := s.Telemetry.Registry().Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	defer s.lock()()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.Telemetry == nil {
		return
	}
	n := 0 // all
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "obs: n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	if err := s.Telemetry.Events().WriteJSONLTail(w, n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	defer s.lock()()
	tr := s.Telemetry.Spans() // nil-safe on a nil Set receiver
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := tr.WriteFolded(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "obs: unknown format "+format, http.StatusBadRequest)
	}
}

// Health is the /healthz document.
type Health struct {
	Status string         `json:"status"` // "ok" or "degraded"
	Build  buildinfo.Info `json:"build"`
	NowPS  int64          `json:"now_ps"`
	// Journal and Spans report the bounded-buffer fill state; a non-zero
	// Dropped means the run outgrew its caps and exported artifacts are
	// incomplete.
	Journal BufferHealth  `json:"journal"`
	Spans   BufferHealth  `json:"spans"`
	SLO     *SLOHealth    `json:"slo,omitempty"`
	Energy  *EnergyHealth `json:"energy,omitempty"`
	// Flight reports the flight recorder's ring utilization and capture
	// counters when a recorder is attached.
	Flight *flight.Stats `json:"flight,omitempty"`
}

// BufferHealth describes one drop-newest bounded buffer.
type BufferHealth struct {
	Len     int    `json:"len"`
	Cap     int    `json:"cap"`
	Dropped uint64 `json:"dropped"`
}

// SLOHealth summarizes the watchdog evaluation. A degraded document names
// each breached rule with its bound and measured value (ViolatedRules) and
// carries the window's evaluation stats, so an operator sees which rule
// fired — and by how much — without re-scraping /metrics.
type SLOHealth struct {
	OK         bool     `json:"ok"`
	Violations []string `json:"violations,omitempty"`
	// ViolatedRules is the structured form of Violations: one entry per
	// breach, rule identity and numbers split out.
	ViolatedRules []ViolatedRule `json:"violated_rules,omitempty"`
	// Stats is what the evaluation window saw (poll counts, tail latencies,
	// dwell maxima, worst guard power), violated or not.
	Stats *SLOStats `json:"stats,omitempty"`
}

// ViolatedRule is one structured SLO breach.
type ViolatedRule struct {
	// Rule is the rule's display form with its bound (e.g.
	// "max_poll_gap<=400us"); Kind is the bare rule family name.
	Rule string `json:"rule"`
	Kind string `json:"kind"`
	// Core is the affected core, -1 when not core-specific.
	Core       int   `json:"core"`
	AtPS       int64 `json:"at_ps"`
	MeasuredPS int64 `json:"measured_ps"`
	// LimitPS is the duration bound (latency/gap/dwell kinds); BudgetW the
	// power bound (energy-budget kind). The inapplicable one is zero.
	LimitPS int64   `json:"limit_ps,omitempty"`
	BudgetW float64 `json:"budget_w,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// SLOStats mirrors slo.Stats with a stable JSON schema.
type SLOStats struct {
	Polls            int     `json:"polls"`
	Interventions    int     `json:"interventions"`
	AcceptedWrites   int     `json:"accepted_writes"`
	UnsafeWrites     int     `json:"unsafe_writes"`
	GuardedWrites    int     `json:"guarded_writes"`
	Faults           int     `json:"faults"`
	PollLatencyP99PS int64   `json:"poll_latency_p99_ps"`
	MaxPollGapPS     int64   `json:"max_poll_gap_ps"`
	MaxUnsafeDwellPS int64   `json:"max_unsafe_dwell_ps"`
	UnclosedWindows  int     `json:"unclosed_windows"`
	MaxGuardPowerW   float64 `json:"max_guard_power_w"`
}

// EnergyHealth is the /healthz joule ledger: integrator totals plus the
// kernel-attributed guard energy (summed over cores) by cost kind. The
// per-kind values sum exactly to GuardJoules — the attribution-closure
// invariant, visible from a health probe.
type EnergyHealth struct {
	PackageJoules float64            `json:"package_joules"`
	CoresJoules   float64            `json:"cores_joules"`
	GuardJoules   float64            `json:"guard_joules"`
	GuardByKind   map[string]float64 `json:"guard_joules_by_kind,omitempty"`
}

// health assembles the document; split from the handler for tests.
func (s *Server) health() Health {
	h := Health{Status: "ok", Build: buildinfo.Get()}
	if s.Clock != nil {
		h.NowPS = int64(s.Clock())
	}
	if s.Telemetry != nil {
		j := s.Telemetry.Events()
		h.Journal = BufferHealth{Len: j.Len(), Cap: j.Cap(), Dropped: j.Dropped()}
		tr := s.Telemetry.Spans()
		h.Spans = BufferHealth{Len: tr.Len(), Cap: tr.Cap(), Dropped: tr.Dropped()}
	}
	if s.Watchdog != nil {
		end := sim.Time(0)
		if s.Clock != nil {
			end = s.Clock()
		}
		rep := s.Watchdog.Evaluate(end)
		sh := &SLOHealth{OK: rep.OK()}
		for _, v := range rep.Violations {
			sh.Violations = append(sh.Violations, v.String())
			sh.ViolatedRules = append(sh.ViolatedRules, ViolatedRule{
				Rule:       v.Rule.String(),
				Kind:       string(v.Rule.Kind),
				Core:       v.Core,
				AtPS:       int64(v.At),
				MeasuredPS: int64(v.Measured),
				LimitPS:    int64(v.Rule.Limit),
				BudgetW:    v.Rule.BudgetW,
				Detail:     v.Detail,
			})
		}
		sh.Stats = &SLOStats{
			Polls:            rep.Stats.Polls,
			Interventions:    rep.Stats.Interventions,
			AcceptedWrites:   rep.Stats.AcceptedWrites,
			UnsafeWrites:     rep.Stats.UnsafeWrites,
			GuardedWrites:    rep.Stats.GuardedWrites,
			Faults:           rep.Stats.Faults,
			PollLatencyP99PS: int64(rep.Stats.PollLatencyP99),
			MaxPollGapPS:     int64(rep.Stats.MaxPollGap),
			MaxUnsafeDwellPS: int64(rep.Stats.MaxUnsafeDwell),
			UnclosedWindows:  rep.Stats.UnclosedWindows,
			MaxGuardPowerW:   rep.Stats.MaxGuardPowerW,
		}
		h.SLO = sh
		if !rep.OK() {
			h.Status = "degraded"
		}
	}
	if s.Energy != nil {
		h.Energy = s.Energy()
	}
	if s.Flight != nil {
		st := s.Flight.Stats()
		h.Flight = &st
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	defer s.lock()()
	if s.Collect != nil {
		s.Collect()
	}
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

// IncidentSummary is one /incidents list row.
type IncidentSummary struct {
	Seq       int    `json:"seq"`
	Cause     string `json:"cause"`
	Core      int    `json:"core"`
	TriggerPS int64  `json:"trigger_ps"`
	Detail    string `json:"detail,omitempty"`
	Records   int    `json:"records"`
	Model     string `json:"model"`
	Seed      int64  `json:"seed"`
}

// handleIncidents lists sealed incident bundles, or fetches one by
// sequence number: ?seq=N returns the bundle JSON, ?seq=N&format=framed the
// CRC-framed binary encoding (the -incidents-out file format).
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	defer s.lock()()
	var bundles []*flight.Bundle
	if s.Flight != nil {
		bundles = s.Flight.Bundles()
	}
	q := r.URL.Query().Get("seq")
	if q == "" {
		list := make([]IncidentSummary, 0, len(bundles))
		for _, b := range bundles {
			list = append(list, IncidentSummary{
				Seq: b.Seq, Cause: b.Cause, Core: b.Core, TriggerPS: b.TriggerPS,
				Detail: b.Detail, Records: len(b.Records), Model: b.Model, Seed: b.Seed,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
		return
	}
	seq, err := strconv.Atoi(q)
	if err != nil {
		http.Error(w, "obs: seq must be an integer", http.StatusBadRequest)
		return
	}
	var found *flight.Bundle
	for _, b := range bundles {
		if b.Seq == seq {
			found = b
			break
		}
	}
	if found == nil {
		http.Error(w, fmt.Sprintf("obs: no incident with seq %d", seq), http.StatusNotFound)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(found)
	case "framed":
		data, err := found.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	default:
		http.Error(w, "obs: unknown format "+format, http.StatusBadRequest)
	}
}
