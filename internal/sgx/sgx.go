// Package sgx models the Intel SGX features the paper's threat model
// revolves around: enclaves, remote attestation reports carrying
// platform-feature flags, and the SGX-Step-style single-/zero-stepping
// adversary.
//
// The paper's two attestation-relevant claims are modelled directly:
//
//   - Intel's SA-00289 countermeasure adds the *OC-mailbox disabled* status
//     to attestation reports, so a client can refuse enclaves on machines
//     with DVFS enabled — at the cost of locking benign software out of
//     undervolting.
//   - The paper instead proposes adding the *countermeasure kernel module
//     loaded* status to the report, leaving the mailbox usable. Reports
//     here carry both flags, and VerifyPolicy lets a client demand either.
//
// Single-stepping matters because the Minefield-style deflection defense
// assumes the adversary cannot isolate one enclave instruction; SGX-Step
// showed they can. Stepper gives the attack code a callback between every
// victim instruction, and ZeroStep models unbounded attacker dwell time at
// a fixed instruction boundary.
package sgx

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"plugvolt/internal/sim"
)

// Program is a steppable victim computation (an enclave's trusted code).
// Implementations live in internal/victim; the interface is structural so
// victim does not import sgx.
type Program interface {
	// Step executes the next instruction; done reports completion.
	Step() (done bool, err error)
}

// Features is the platform state surfaced to attestation.
type Features struct {
	// OCMDisabled reports Intel's SA-00289 lockdown: the overclocking
	// mailbox is fused off while SGX is in use.
	OCMDisabled bool
	// HyperThreadingEnabled is included because contemporary attestation
	// already reports it (the paper cites this as precedent).
	HyperThreadingEnabled bool
	// GuardModuleLoaded queries the live load state of the paper's
	// polling-countermeasure kernel module. Nil means "not reported".
	GuardModuleLoaded func() bool
}

// Registry tracks enclaves on one platform.
type Registry struct {
	simr     *sim.Simulator
	Features Features

	enclaves map[uint64]*Enclave
	nextID   uint64
}

// NewRegistry builds an empty enclave registry.
func NewRegistry(s *sim.Simulator) *Registry {
	return &Registry{simr: s, enclaves: map[uint64]*Enclave{}}
}

// Enclave is one initialized enclave.
type Enclave struct {
	id          uint64
	name        string
	core        int
	measurement [32]byte
	reg         *Registry
	destroyed   bool
}

// Create initializes an enclave pinned to a core. The measurement commits
// to the enclave's identity (ECREATE/EINIT of its code).
func (r *Registry) Create(name string, core int) (*Enclave, error) {
	if name == "" {
		return nil, errors.New("sgx: enclave needs a name")
	}
	r.nextID++
	e := &Enclave{
		id:          r.nextID,
		name:        name,
		core:        core,
		measurement: sha256.Sum256([]byte("enclave:" + name)),
		reg:         r,
	}
	r.enclaves[e.id] = e
	return e, nil
}

// Destroy tears the enclave down (EREMOVE).
func (e *Enclave) Destroy() {
	if e.destroyed {
		return
	}
	e.destroyed = true
	delete(e.reg.enclaves, e.id)
}

// ID returns the enclave id.
func (e *Enclave) ID() uint64 { return e.id }

// Name returns the enclave name.
func (e *Enclave) Name() string { return e.name }

// Core returns the core the enclave is pinned to.
func (e *Enclave) Core() int { return e.core }

// MeasurementHex returns the MRENCLAVE-equivalent as hex.
func (e *Enclave) MeasurementHex() string { return hex.EncodeToString(e.measurement[:]) }

// AnyRunning reports whether any enclave exists — the condition under which
// SA-00289 locks the mailbox.
func (r *Registry) AnyRunning() bool { return len(r.enclaves) > 0 }

// Count returns the number of live enclaves.
func (r *Registry) Count() int { return len(r.enclaves) }

// Run executes the enclave's program to completion without adversarial
// interruption (the benign path).
func (e *Enclave) Run(p Program) error {
	if e.destroyed {
		return fmt.Errorf("sgx: enclave %q destroyed", e.name)
	}
	for {
		done, err := p.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Report is a (simplified) remote-attestation quote.
type Report struct {
	EnclaveID      uint64
	EnclaveName    string
	MeasurementHex string
	Nonce          uint64
	IssuedAt       sim.Time

	// Platform feature flags, per the paper's Sec. 4.1 discussion.
	OCMDisabled           bool
	HyperThreadingEnabled bool
	GuardModuleLoaded     bool
	GuardModuleReported   bool // whether the platform reports the flag at all
}

// Attest produces an attestation report binding the enclave identity to the
// platform's live feature flags.
func (e *Enclave) Attest(nonce uint64) Report {
	rep := Report{
		EnclaveID:             e.id,
		EnclaveName:           e.name,
		MeasurementHex:        e.MeasurementHex(),
		Nonce:                 nonce,
		IssuedAt:              e.reg.simr.Now(),
		OCMDisabled:           e.reg.Features.OCMDisabled,
		HyperThreadingEnabled: e.reg.Features.HyperThreadingEnabled,
	}
	if e.reg.Features.GuardModuleLoaded != nil {
		rep.GuardModuleReported = true
		rep.GuardModuleLoaded = e.reg.Features.GuardModuleLoaded()
	}
	return rep
}

// VerifyPolicy is the client-side acceptance policy for reports.
type VerifyPolicy struct {
	ExpectedMeasurementHex string
	// RequireOCMDisabled is Intel's SA-00289 policy.
	RequireOCMDisabled bool
	// RequireGuardModule is the paper's proposed policy: accept DVFS-enabled
	// platforms as long as the polling countermeasure is resident.
	RequireGuardModule bool
}

// Verify applies the policy; a nil return means the client accepts.
func (p VerifyPolicy) Verify(r Report) error {
	if p.ExpectedMeasurementHex != "" && r.MeasurementHex != p.ExpectedMeasurementHex {
		return fmt.Errorf("sgx: measurement mismatch (got %s)", r.MeasurementHex[:8])
	}
	if p.RequireOCMDisabled && !r.OCMDisabled {
		return errors.New("sgx: policy requires OC mailbox disabled")
	}
	if p.RequireGuardModule {
		if !r.GuardModuleReported {
			return errors.New("sgx: platform does not report guard-module state")
		}
		if !r.GuardModuleLoaded {
			return errors.New("sgx: policy requires countermeasure kernel module loaded")
		}
	}
	return nil
}

// Stepper is the SGX-Step adversary: it drives a Program one instruction at
// a time using APIC-timer interrupts, running attacker code between steps.
type Stepper struct {
	simr *sim.Simulator
	// AEXCost is the virtual time per asynchronous enclave exit + resume
	// (interrupt, attacker handler, ERESUME). SGX-Step reports ~10 us per
	// single-stepped instruction.
	AEXCost sim.Duration
	// Steps counts single-stepped instructions.
	Steps uint64
	// ZeroSteps counts zero-step dwells.
	ZeroSteps uint64
}

// NewStepper builds a stepper with the published SGX-Step cost.
func NewStepper(s *sim.Simulator) *Stepper {
	return &Stepper{simr: s, AEXCost: 10 * sim.Microsecond}
}

// Run single-steps the program. between is invoked after every instruction
// with the zero-based index of the *next* instruction; returning an error
// aborts stepping. The victim cannot detect or prevent the interruption —
// that is the SGX-Step result the paper leans on.
func (st *Stepper) Run(p Program, between func(next int) error) error {
	for i := 0; ; i++ {
		done, err := p.Step()
		st.Steps++
		st.simr.RunFor(st.AEXCost)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if between != nil {
			if err := between(i + 1); err != nil {
				return err
			}
		}
	}
}

// ZeroStep holds the enclave at its current instruction boundary for d of
// virtual time without retiring anything — the attacker's unbounded dwell
// between injecting a fault and the next victim instruction (used to defeat
// trap-based deflection).
func (st *Stepper) ZeroStep(d sim.Duration) {
	st.ZeroSteps++
	st.simr.RunFor(d)
}

// AttestationMonitor is the client-side companion of the paper's proposed
// report extension: the relying party re-attests the enclave's platform on
// a fixed period and raises an alarm as soon as a required flag regresses
// (e.g. the adversary rmmod'ed the guard module mid-session). Detection
// latency is bounded by the re-attestation period — the operational answer
// to "why can the adversary not simply unload the kernel module?".
type AttestationMonitor struct {
	enclave *Enclave
	policy  VerifyPolicy
	ticker  *sim.Ticker

	// Checks counts re-attestations; Violations counts policy failures.
	Checks     uint64
	Violations uint64
	// FirstViolation is the virtual time the first failure was detected.
	FirstViolation sim.Time
	// OnViolation, when set, runs once per failed check (alerting,
	// enclave shutdown, key revocation).
	OnViolation func(err error)
}

// NewAttestationMonitor builds a monitor; Start arms it.
func NewAttestationMonitor(e *Enclave, policy VerifyPolicy) (*AttestationMonitor, error) {
	if e == nil {
		return nil, errors.New("sgx: nil enclave")
	}
	return &AttestationMonitor{enclave: e, policy: policy}, nil
}

// Start re-attests every period on the simulator clock.
func (m *AttestationMonitor) Start(s *sim.Simulator, period sim.Duration) error {
	if m.ticker != nil {
		return errors.New("sgx: monitor already started")
	}
	if period <= 0 {
		return errors.New("sgx: period must be positive")
	}
	nonce := uint64(0)
	m.ticker = s.Every(period, func() {
		m.Checks++
		nonce++
		rep := m.enclave.Attest(nonce)
		if err := m.policy.Verify(rep); err != nil {
			m.Violations++
			if m.FirstViolation == 0 {
				m.FirstViolation = s.Now()
			}
			if m.OnViolation != nil {
				m.OnViolation(err)
			}
		}
	})
	return nil
}

// Stop halts re-attestation.
func (m *AttestationMonitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}
