package sgx

import (
	"errors"
	"testing"

	"plugvolt/internal/sim"
)

// countProgram is a trivial steppable program for registry tests.
type countProgram struct {
	n, i  int
	fail  int // step index to error at, -1 = never
	trace []int
}

func (p *countProgram) Step() (bool, error) {
	if p.fail >= 0 && p.i == p.fail {
		return false, errors.New("boom")
	}
	p.trace = append(p.trace, p.i)
	p.i++
	return p.i >= p.n, nil
}

func TestRegistryLifecycle(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	if r.AnyRunning() {
		t.Fatal("fresh registry has enclaves")
	}
	e1, err := r.Create("signer", 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Create("sealer", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AnyRunning() || r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
	if e1.ID() == e2.ID() {
		t.Fatal("duplicate enclave IDs")
	}
	if e1.Core() != 1 || e1.Name() != "signer" {
		t.Fatal("enclave metadata wrong")
	}
	e1.Destroy()
	e1.Destroy() // idempotent
	if r.Count() != 1 {
		t.Fatalf("count after destroy = %d", r.Count())
	}
	if _, err := r.Create("", 0); err == nil {
		t.Fatal("anonymous enclave accepted")
	}
}

func TestMeasurementIsIdentityBound(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	a, _ := r.Create("app", 0)
	b, _ := r.Create("app", 1)
	c, _ := r.Create("other", 0)
	if a.MeasurementHex() != b.MeasurementHex() {
		t.Fatal("same code, different measurement")
	}
	if a.MeasurementHex() == c.MeasurementHex() {
		t.Fatal("different code, same measurement")
	}
	if len(a.MeasurementHex()) != 64 {
		t.Fatal("measurement not 32 bytes hex")
	}
}

func TestEnclaveRunToCompletion(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	e, _ := r.Create("worker", 0)
	p := &countProgram{n: 5, fail: -1}
	if err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(p.trace) != 5 {
		t.Fatalf("ran %d steps", len(p.trace))
	}
	bad := &countProgram{n: 5, fail: 2}
	if err := e.Run(bad); err == nil {
		t.Fatal("program error swallowed")
	}
	e.Destroy()
	if err := e.Run(&countProgram{n: 1, fail: -1}); err == nil {
		t.Fatal("destroyed enclave ran")
	}
}

func TestAttestationReportFlags(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	guardLoaded := false
	r.Features = Features{
		OCMDisabled:           true,
		HyperThreadingEnabled: true,
		GuardModuleLoaded:     func() bool { return guardLoaded },
	}
	e, _ := r.Create("attested", 0)
	s.RunFor(5 * sim.Millisecond)
	rep := e.Attest(12345)
	if rep.Nonce != 12345 || rep.EnclaveID != e.ID() {
		t.Fatal("report identity fields wrong")
	}
	if rep.IssuedAt != 5*sim.Millisecond {
		t.Fatalf("IssuedAt = %v", rep.IssuedAt)
	}
	if !rep.OCMDisabled || !rep.HyperThreadingEnabled {
		t.Fatal("platform flags not copied")
	}
	if !rep.GuardModuleReported || rep.GuardModuleLoaded {
		t.Fatal("guard flag wrong while unloaded")
	}
	guardLoaded = true
	if rep2 := e.Attest(1); !rep2.GuardModuleLoaded {
		t.Fatal("guard flag not live")
	}
}

func TestAttestationWithoutGuardReporting(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	e, _ := r.Create("legacy", 0)
	rep := e.Attest(0)
	if rep.GuardModuleReported {
		t.Fatal("platform without guard hook reported the flag")
	}
}

func TestVerifyPolicies(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	loaded := true
	r.Features = Features{GuardModuleLoaded: func() bool { return loaded }}
	e, _ := r.Create("policy", 0)
	rep := e.Attest(1)

	// Measurement pinning.
	if err := (VerifyPolicy{ExpectedMeasurementHex: rep.MeasurementHex}).Verify(rep); err != nil {
		t.Fatalf("matching measurement rejected: %v", err)
	}
	if err := (VerifyPolicy{ExpectedMeasurementHex: "deadbeef"}).Verify(rep); err == nil {
		t.Fatal("wrong measurement accepted")
	}

	// Intel SA-00289 policy: requires OCM disabled, which this platform
	// does not do — the paper's point is this blocks benign DVFS.
	if err := (VerifyPolicy{RequireOCMDisabled: true}).Verify(rep); err == nil {
		t.Fatal("OCM-enabled platform passed SA-00289 policy")
	}

	// The paper's policy: guard module must be loaded; OCM may stay live.
	if err := (VerifyPolicy{RequireGuardModule: true}).Verify(rep); err != nil {
		t.Fatalf("guard-loaded platform rejected: %v", err)
	}
	loaded = false
	rep = e.Attest(2)
	if err := (VerifyPolicy{RequireGuardModule: true}).Verify(rep); err == nil {
		t.Fatal("guard-unloaded platform accepted — adversary could rmmod and pass attestation")
	}

	// Platform not reporting the flag at all must also fail the policy.
	r.Features.GuardModuleLoaded = nil
	rep = e.Attest(3)
	if err := (VerifyPolicy{RequireGuardModule: true}).Verify(rep); err == nil {
		t.Fatal("non-reporting platform accepted")
	}
}

func TestStepperSingleSteps(t *testing.T) {
	s := sim.New(1)
	st := NewStepper(s)
	p := &countProgram{n: 4, fail: -1}
	var between []int
	start := s.Now()
	err := st.Run(p, func(next int) error {
		between = append(between, next)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 steps; between fires after steps 1..3 (not after the final one).
	if st.Steps != 4 {
		t.Fatalf("Steps = %d", st.Steps)
	}
	if len(between) != 3 || between[0] != 1 || between[2] != 3 {
		t.Fatalf("between = %v", between)
	}
	if s.Now()-start != 4*st.AEXCost {
		t.Fatalf("AEX time = %v", s.Now()-start)
	}
}

func TestStepperAbortFromCallback(t *testing.T) {
	s := sim.New(1)
	st := NewStepper(s)
	p := &countProgram{n: 100, fail: -1}
	stop := errors.New("attacker done")
	err := st.Run(p, func(next int) error {
		if next == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v", err)
	}
	if p.i != 5 {
		t.Fatalf("victim advanced to %d", p.i)
	}
}

func TestStepperPropagatesProgramError(t *testing.T) {
	s := sim.New(1)
	st := NewStepper(s)
	p := &countProgram{n: 10, fail: 3}
	if err := st.Run(p, nil); err == nil {
		t.Fatal("program error swallowed")
	}
}

func TestZeroStepDwells(t *testing.T) {
	s := sim.New(1)
	st := NewStepper(s)
	st.ZeroStep(2 * sim.Millisecond)
	if s.Now() != 2*sim.Millisecond {
		t.Fatalf("zero-step advanced %v", s.Now())
	}
	if st.ZeroSteps != 1 {
		t.Fatalf("ZeroSteps = %d", st.ZeroSteps)
	}
}

func TestAttestationMonitorDetectsFlagRegression(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	loaded := true
	r.Features = Features{GuardModuleLoaded: func() bool { return loaded }}
	e, _ := r.Create("watched", 0)
	if _, err := NewAttestationMonitor(nil, VerifyPolicy{}); err == nil {
		t.Fatal("nil enclave accepted")
	}
	m, err := NewAttestationMonitor(e, VerifyPolicy{RequireGuardModule: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(s, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	var alarms int
	m.OnViolation = func(error) { alarms++ }
	if err := m.Start(s, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(s, 10*sim.Millisecond); err == nil {
		t.Fatal("double start accepted")
	}
	// Healthy for 50 ms: checks accumulate, no violations.
	s.RunFor(55 * sim.Millisecond)
	if m.Checks != 5 || m.Violations != 0 {
		t.Fatalf("healthy phase: checks=%d violations=%d", m.Checks, m.Violations)
	}
	// Adversarial rmmod at t=55ms: next re-attestation flags it.
	loaded = false
	s.RunFor(10 * sim.Millisecond)
	if m.Violations == 0 || alarms == 0 {
		t.Fatal("rmmod not detected")
	}
	// Detection latency bounded by one period.
	if m.FirstViolation > 65*sim.Millisecond {
		t.Fatalf("detection at %v, beyond one period", m.FirstViolation)
	}
	m.Stop()
	checks := m.Checks
	s.RunFor(30 * sim.Millisecond)
	if m.Checks != checks {
		t.Fatal("monitor kept checking after Stop")
	}
}
