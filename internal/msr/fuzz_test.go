package msr

import "testing"

// FuzzDecodeVoltageOffset exercises the Table-1 decoder with arbitrary
// 64-bit register values (go test -fuzz=FuzzDecodeVoltageOffset ./internal/msr).
// Invariants: decoding never panics, the unit field stays within the 11-bit
// two's-complement range, and re-encoding a decoded write command
// round-trips the offset field bit-exactly.
func FuzzDecodeVoltageOffset(f *testing.F) {
	f.Add(uint64(0))
	f.Add(EncodeVoltageOffset(-250, PlaneCore))
	f.Add(EncodeVoltageOffset(100, PlaneAnalogIO))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, raw uint64) {
		d := DecodeVoltageOffset(raw)
		if d.OffsetUnits < -1024 || d.OffsetUnits > 1023 {
			t.Fatalf("units %d outside 11-bit range", d.OffsetUnits)
		}
		if d.OffsetMV < -1001 || d.OffsetMV > 1000 {
			t.Fatalf("mV %d outside representable range", d.OffsetMV)
		}
		re := EncodeVoltageOffsetUnits(d.OffsetUnits, d.Plane&0x7)
		d2 := DecodeVoltageOffset(re)
		if d2.OffsetUnits != d.OffsetUnits {
			t.Fatalf("units round trip %d -> %d", d.OffsetUnits, d2.OffsetUnits)
		}
	})
}

// FuzzPerfStatus checks the PERF_STATUS codec against arbitrary raw values.
func FuzzPerfStatus(f *testing.F) {
	f.Add(uint64(0))
	f.Add(EncodePerfStatus(32, 1.056))
	f.Fuzz(func(t *testing.T, raw uint64) {
		ratio, v := DecodePerfStatus(raw)
		if v < 0 || v > 8 { // 16-bit field * 1/8192 V caps at 8 V
			t.Fatalf("voltage %v out of field range", v)
		}
		re := EncodePerfStatus(ratio, v)
		r2, v2 := DecodePerfStatus(re)
		if r2 != ratio || v2 != v {
			t.Fatalf("round trip (%d, %v) -> (%d, %v)", ratio, v, r2, v2)
		}
	})
}
