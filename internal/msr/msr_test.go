package msr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTable1Layout verifies the exact Table-1 bit layout of MSR 0x150:
// offset in bits 31:21, write-enable within bits 39:32, plane in 42:40,
// busy bit 63, reserved fields zero.
func TestTable1Layout(t *testing.T) {
	v := EncodeVoltageOffset(-100, PlaneCore)
	if v&(1<<63) == 0 {
		t.Error("bit 63 (busy) not set by Algorithm 1")
	}
	if (v>>32)&0xFF != 0x11 {
		t.Errorf("command bits 39:32 = 0x%x, want 0x11 (write)", (v>>32)&0xFF)
	}
	if v&(1<<32) == 0 {
		t.Error("bit 32 (write-enable per Table 1) not set")
	}
	if v&ocReservedLo != 0 {
		t.Errorf("reserved bits 20:0 nonzero: 0x%x", v&ocReservedLo)
	}
	if v&ocReservedHi != 0 {
		t.Errorf("reserved bits 62:43 nonzero: 0x%x", v&ocReservedHi)
	}
	// -100 mV -> -102.4 -> trunc -102 units -> two's complement 11-bit.
	wantUnits := uint64((-102)&0xFFF) & 0x7FF
	if got := (v >> 21) & 0x7FF; got != wantUnits {
		t.Errorf("offset field = 0x%x, want 0x%x", got, wantUnits)
	}
}

func TestAlgorithm1KnownValues(t *testing.T) {
	// Plundervolt's published example: -250 mV, core plane.
	// -250*1024/1000 = -256 units = 0xF00 in 12-bit two's complement.
	v := EncodeVoltageOffset(-250, PlaneCore)
	want := uint64(0x8000001100000000) | (uint64(0xF00&0xFFF)<<21)&0xFFE00000
	if v != want {
		t.Fatalf("encode(-250, core) = 0x%016x, want 0x%016x", v, want)
	}
	d := DecodeVoltageOffset(v)
	if d.OffsetUnits != -256 {
		t.Fatalf("decoded units = %d, want -256", d.OffsetUnits)
	}
	if d.OffsetMV != -250 {
		t.Fatalf("decoded mV = %d, want -250", d.OffsetMV)
	}
}

func TestPlaneField(t *testing.T) {
	for p := Plane(0); p < NumPlanes; p++ {
		v := EncodeVoltageOffset(-50, p)
		d := DecodeVoltageOffset(v)
		if d.Plane != p {
			t.Errorf("plane %v roundtrip -> %v", p, d.Plane)
		}
		if !d.Write || !d.Busy {
			t.Errorf("plane %v: write=%v busy=%v", p, d.Write, d.Busy)
		}
	}
}

func TestPlaneStringAndValid(t *testing.T) {
	names := map[Plane]string{
		PlaneCore: "core", PlaneGPU: "gpu", PlaneCache: "cache",
		PlaneUncore: "uncore", PlaneAnalogIO: "analog-io",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q want %q", p, p.String(), want)
		}
		if !p.Valid() {
			t.Errorf("plane %v reported invalid", p)
		}
	}
	if Plane(6).Valid() {
		t.Error("plane 6 reported valid")
	}
	if Plane(6).String() != "plane(6)" {
		t.Errorf("plane 6 string = %q", Plane(6).String())
	}
}

// Property (DESIGN.md §6): encode∘decode is identity on the offset up to
// the documented 1/1024-V quantization (<1 mV), exact on the plane.
func TestQuickOffsetRoundTrip(t *testing.T) {
	f := func(raw uint16, rawPlane uint8) bool {
		offset := -int(raw % 513) // 0..-512 mV, covers the sweep range
		plane := Plane(rawPlane % NumPlanes)
		d := DecodeVoltageOffset(EncodeVoltageOffset(offset, plane))
		if d.Plane != plane || !d.Write || !d.Busy {
			return false
		}
		return abs(d.OffsetMV-offset) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestZeroOffsetEncoding(t *testing.T) {
	d := DecodeVoltageOffset(EncodeVoltageOffset(0, PlaneCore))
	if d.OffsetMV != 0 || d.OffsetUnits != 0 {
		t.Fatalf("zero offset decoded as %+v", d)
	}
}

func TestPositiveOffsetEncoding(t *testing.T) {
	// Overvolting (positive offsets) must also round-trip; the paper's
	// sweeps are negative-only but the mailbox supports both directions.
	d := DecodeVoltageOffset(EncodeVoltageOffset(100, PlaneCache))
	if d.OffsetMV != 100 || d.Plane != PlaneCache {
		t.Fatalf("+100mV cache decoded as %+v", d)
	}
}

func TestPerfStatusRoundTrip(t *testing.T) {
	val := EncodePerfStatus(32, 1.056)
	ratio, v := DecodePerfStatus(val)
	if ratio != 32 {
		t.Fatalf("ratio = %d, want 32", ratio)
	}
	if math.Abs(v-1.056) > VoltageUnit {
		t.Fatalf("voltage = %v, want ~1.056 (unit %v)", v, VoltageUnit)
	}
}

func TestPerfStatusNegativeVoltageClamps(t *testing.T) {
	_, v := DecodePerfStatus(EncodePerfStatus(8, -0.5))
	if v != 0 {
		t.Fatalf("negative voltage encoded as %v", v)
	}
}

func TestQuickPerfStatusRoundTrip(t *testing.T) {
	f := func(ratio uint8, rawV uint16) bool {
		volt := float64(rawV%12000) / 8192.0 // 0 .. ~1.46 V on the unit grid
		r2, v2 := DecodePerfStatus(EncodePerfStatus(ratio, volt))
		return r2 == ratio && math.Abs(v2-volt) <= VoltageUnit/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioKHzConversions(t *testing.T) {
	if got := RatioToKHz(32, 100); got != 3_200_000 {
		t.Fatalf("RatioToKHz(32,100) = %d", got)
	}
	if got := KHzToRatio(3_200_000, 100); got != 32 {
		t.Fatalf("KHzToRatio = %d", got)
	}
	if got := KHzToRatio(3_250_000, 100); got != 33 { // rounds to nearest
		t.Fatalf("KHzToRatio rounding = %d", got)
	}
	if got := KHzToRatio(1000, 0); got != 0 {
		t.Fatalf("KHzToRatio with zero bus = %d", got)
	}
	if got := KHzToRatio(100_000_000, 100); got != 255 { // saturates
		t.Fatalf("KHzToRatio saturation = %d", got)
	}
}

func TestFileReadWriteBasics(t *testing.T) {
	f := NewFile(2)
	if f.Core() != 2 {
		t.Fatalf("Core() = %d", f.Core())
	}
	if err := f.Write(IA32PerfCtl, 0x2000); err != nil {
		t.Fatal(err)
	}
	v, err := f.Read(IA32PerfCtl)
	if err != nil || v != 0x2000 {
		t.Fatalf("read back %x, err %v", v, err)
	}
	if f.Reads != 1 || f.Writes != 1 {
		t.Fatalf("op counters: reads=%d writes=%d", f.Reads, f.Writes)
	}
}

func TestFileUnknownMSRFaults(t *testing.T) {
	f := NewFile(0)
	if _, err := f.Read(0xDEAD); err == nil {
		t.Fatal("rdmsr of unknown MSR did not fault")
	}
	err := f.Write(0xDEAD, 1)
	var gp *GPFault
	if !errors.As(err, &gp) {
		t.Fatalf("wrmsr error type %T, want *GPFault", err)
	}
	if gp.Op != "wrmsr" || gp.Addr != 0xDEAD {
		t.Fatalf("fault fields: %+v", gp)
	}
}

func TestFileReadOnlyAndLocked(t *testing.T) {
	f := NewFile(0)
	if err := f.Write(IA32PerfStatus, 1); err == nil {
		t.Fatal("write to read-only PERF_STATUS succeeded")
	}
	f.Declare(&Descriptor{Addr: 0x3A, Name: "FEATURE_CONTROL", Locked: true})
	if err := f.Write(0x3A, 5); err == nil {
		t.Fatal("write to locked MSR succeeded")
	}
}

func TestReadFnOverridesStorage(t *testing.T) {
	f := NewFile(0)
	f.Declare(&Descriptor{Addr: 0x999, Name: "DYN", ReadFn: func(*File) (uint64, error) {
		return 0xABCD, nil
	}})
	f.Poke(0x999, 1) // stored value must be ignored
	v, err := f.Read(0x999)
	if err != nil || v != 0xABCD {
		t.Fatalf("dynamic read = %x, err %v", v, err)
	}
}

func TestWriteHooksRunInOrderAndTransform(t *testing.T) {
	f := NewFile(0)
	var order []int
	f.AddWriteHook(OCMailbox, func(_ *File, _, v uint64) (uint64, error) {
		order = append(order, 1)
		return v + 1, nil
	})
	f.AddWriteHook(OCMailbox, func(_ *File, _, v uint64) (uint64, error) {
		order = append(order, 2)
		return v * 2, nil
	})
	if err := f.Write(OCMailbox, 10); err != nil {
		t.Fatal(err)
	}
	if got := f.Peek(OCMailbox); got != 22 {
		t.Fatalf("hook composition stored %d, want (10+1)*2=22", got)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hook order: %v", order)
	}
}

func TestWriteHookRejects(t *testing.T) {
	f := NewFile(0)
	f.AddWriteHook(OCMailbox, func(fl *File, _, v uint64) (uint64, error) {
		return 0, &GPFault{Addr: OCMailbox, Op: "wrmsr", Why: "rejected by guard"}
	})
	before := f.Peek(OCMailbox)
	if err := f.Write(OCMailbox, 42); err == nil {
		t.Fatal("rejected write reported success")
	}
	if f.Peek(OCMailbox) != before {
		t.Fatal("rejected write modified register")
	}
	if f.Writes != 0 {
		t.Fatal("rejected write counted as success")
	}
}

func TestWriteIgnoreSemantics(t *testing.T) {
	// The paper's Sec. 5.1 microcode guard silently ignores unsafe writes:
	// the hook returns the old value and wrmsr reports success.
	f := NewFile(0)
	f.Poke(OCMailbox, 7)
	f.AddWriteHook(OCMailbox, func(_ *File, old, v uint64) (uint64, error) {
		return old, nil
	})
	if err := f.Write(OCMailbox, 99); err != nil {
		t.Fatal(err)
	}
	if f.Peek(OCMailbox) != 7 {
		t.Fatal("write-ignore hook did not preserve old value")
	}
}

func TestRemoveWriteHooks(t *testing.T) {
	f := NewFile(0)
	f.AddWriteHook(OCMailbox, func(_ *File, _, v uint64) (uint64, error) {
		return 0, nil
	})
	f.RemoveWriteHooks(OCMailbox)
	if err := f.Write(OCMailbox, 42); err != nil {
		t.Fatal(err)
	}
	if f.Peek(OCMailbox) != 42 {
		t.Fatal("hook still active after removal")
	}
	f.RemoveWriteHooks(0xDEAD) // undeclared: no-op, no panic
}

func TestAddWriteHookUndeclaredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddWriteHook on undeclared MSR did not panic")
		}
	}()
	NewFile(0).AddWriteHook(0xDEAD, func(_ *File, _, v uint64) (uint64, error) { return v, nil })
}

func TestPokeUndeclaredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poke on undeclared MSR did not panic")
		}
	}()
	NewFile(0).Poke(0xDEAD, 1)
}

func TestGPFaultError(t *testing.T) {
	e := &GPFault{Addr: 0x150, Op: "wrmsr", Why: "test"}
	want := "#GP(wrmsr 0x150): test"
	if e.Error() != want {
		t.Fatalf("Error() = %q want %q", e.Error(), want)
	}
}

func BenchmarkEncodeVoltageOffset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EncodeVoltageOffset(-(i % 300), PlaneCore)
	}
}

func BenchmarkFileWriteWithHook(b *testing.B) {
	f := NewFile(0)
	f.AddWriteHook(OCMailbox, func(_ *File, _, v uint64) (uint64, error) { return v, nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Write(OCMailbox, uint64(i))
	}
}

// TestNewFileSingleAllocation pins the register-file construction cost: the
// inline descriptor and value buffers mean the only allocation is the File
// itself. The sharded sweep builds cores*rows files, so regressions here
// show up directly in the characterization benchmarks.
func TestNewFileSingleAllocation(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		f := NewFile(0)
		if _, err := f.Read(IA32PerfStatus); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("NewFile allocated %.1f objects, want <= 1", allocs)
	}
}
