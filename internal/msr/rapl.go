package msr

// RAPL (Running Average Power Limit) energy reporting, as software actually
// consumes it: MSR_RAPL_POWER_UNIT (0x606) publishes the scaling exponents,
// and the energy-status registers (PKG 0x611, PP0 0x639) are free-running
// 32-bit counters of energy units that wrap silently. turbostat, powercap
// and every throttling side-channel paper read them modulo 2^32 and
// difference consecutive samples; the codecs here implement exactly those
// semantics over the simulator's modeled joule totals.

// MSR_RAPL_POWER_UNIT field layout (SDM Vol. 4): each field is an exponent
// n encoding a unit of 1/2^n — power in bits 3:0 (W), energy in bits 12:8
// (J), time in bits 19:16 (s).
const (
	raplPowerUnitMask  = 0xF
	raplEnergyShift    = 8
	raplEnergyUnitMask = 0x1F
	raplTimeShift      = 16
	raplTimeUnitMask   = 0xF
)

// DefaultRAPLPowerUnit is the reset value every core publishes: 0x000A0E03
// — the stock client-part encoding (power 1/8 W, energy 2^-14 J ≈ 61 µJ,
// time 2^-10 s ≈ 0.98 ms).
const DefaultRAPLPowerUnit uint64 = 0x000A0E03

// DefaultEnergyUnitJ is the energy LSB implied by DefaultRAPLPowerUnit.
const DefaultEnergyUnitJ = 1.0 / (1 << 14)

// DecodeRAPLPowerUnit expands the unit register into the three LSB sizes.
func DecodeRAPLPowerUnit(val uint64) (powerW, energyJ, timeS float64) {
	powerW = 1.0 / float64(uint64(1)<<(val&raplPowerUnitMask))
	energyJ = 1.0 / float64(uint64(1)<<((val>>raplEnergyShift)&raplEnergyUnitMask))
	timeS = 1.0 / float64(uint64(1)<<((val>>raplTimeShift)&raplTimeUnitMask))
	return powerW, energyJ, timeS
}

// EncodeEnergyStatus converts a cumulative joule total into the 32-bit
// wrapping counter an energy-status MSR returns. Bits 63:32 read as zero,
// as on hardware.
func EncodeEnergyStatus(joules, unitJ float64) uint64 {
	if joules <= 0 || unitJ <= 0 {
		return 0
	}
	// Counters wrap modulo 2^32: convert to total units first (the modeled
	// totals stay far below 2^63 units, so the float→int conversion is
	// exact enough at the unit granularity), then truncate.
	return uint64(joules/unitJ) & 0xFFFFFFFF
}

// DecodeEnergyStatus returns the counter's joule reading at face value —
// only meaningful modulo one wrap period (2^32 units ≈ 262 kJ at the
// default unit, ~2.2 h at 33 W).
func DecodeEnergyStatus(val uint64, unitJ float64) float64 {
	return float64(uint32(val)) * unitJ
}

// EnergyCounterDeltaJ differences two energy-status samples with correct
// wraparound semantics: uint32 subtraction is modular, so a sample pair
// straddling one rollover still yields the true consumed energy. Samples
// more than one wrap period apart alias, exactly as on hardware — poll
// faster than the wrap period (SDM's guidance; ~2 h at desktop power).
func EnergyCounterDeltaJ(before, after uint32, unitJ float64) float64 {
	return float64(after-before) * unitJ
}
