// Package msr models the Intel model-specific-register interface that the
// paper's countermeasure polls and rewrites.
//
// It provides a per-core register file with rdmsr/wrmsr semantics
// (#GP-style errors on invalid access), register descriptors with dynamic
// read functions and write hooks (the attachment points for the paper's
// Section 5 microcode write-guard and hardware clamp MSR), and byte-exact
// codecs for the two registers at the heart of every DVFS fault attack:
//
//   - MSR 0x150, the overclocking mailbox, whose voltage-offset layout is
//     the paper's Table 1 and whose encoding procedure is Algorithm 1;
//   - MSR 0x198 (IA32_PERF_STATUS), which reports the current frequency
//     ratio (bits 15:8) and core voltage (bits 47:32, units of 1/8192 V).
package msr

import (
	"fmt"
	"math"

	"plugvolt/internal/flight"
	"plugvolt/internal/telemetry/span"
)

// Addr is an MSR address as used by rdmsr/wrmsr.
type Addr uint32

// Register addresses used by the reproduction. VoltageOffsetLimit is the
// hypothetical clamp register the paper proposes in Section 5.2
// (MSR_VOLTAGE_OFFSET_LIMIT); the rest are architectural Intel MSRs.
const (
	OCMailbox          Addr = 0x150 // overclocking mailbox (Table 1)
	VoltageOffsetLimit Addr = 0x154 // hypothetical clamp (paper Sec. 5.2)
	IA32PerfStatus     Addr = 0x198 // current ratio + core voltage
	IA32PerfCtl        Addr = 0x199 // requested P-state ratio
	TurboRatioLimit    Addr = 0x1AD
	RAPLPowerUnit      Addr = 0x606 // MSR_RAPL_POWER_UNIT (scaling exponents)
	PkgEnergyStatus    Addr = 0x611 // MSR_PKG_ENERGY_STATUS (32-bit wrapping)
	DRAMPowerLimit     Addr = 0x618 // MSR_DRAM_POWER_LIMIT (clamp analogy)
	DRAMPowerInfo      Addr = 0x61C // MSR_DRAM_POWER_INFO (holds DRAM_MIN_PWR)
	PP0EnergyStatus    Addr = 0x639 // MSR_PP0_ENERGY_STATUS (core power plane)
)

// GPFault is the error returned for accesses a real CPU would answer with a
// general-protection fault: unknown MSR, write to read-only MSR, malformed
// mailbox command, or write to a locked register.
type GPFault struct {
	Addr Addr
	Op   string // "rdmsr" or "wrmsr"
	Why  string
}

func (e *GPFault) Error() string {
	return fmt.Sprintf("#GP(%s 0x%x): %s", e.Op, uint32(e.Addr), e.Why)
}

// Plane selects the voltage domain addressed by an OC-mailbox command,
// per Table 1 bits 42:40.
type Plane uint8

// Voltage planes defined by the overclocking mailbox.
const (
	PlaneCore     Plane = 0
	PlaneGPU      Plane = 1
	PlaneCache    Plane = 2
	PlaneUncore   Plane = 3
	PlaneAnalogIO Plane = 4
)

// NumPlanes is the count of defined voltage planes.
const NumPlanes = 5

func (p Plane) String() string {
	switch p {
	case PlaneCore:
		return "core"
	case PlaneGPU:
		return "gpu"
	case PlaneCache:
		return "cache"
	case PlaneUncore:
		return "uncore"
	case PlaneAnalogIO:
		return "analog-io"
	default:
		return fmt.Sprintf("plane(%d)", uint8(p))
	}
}

// Valid reports whether the plane index is one of the five defined domains.
func (p Plane) Valid() bool { return p < NumPlanes }

// Overclocking-mailbox field layout (Table 1 of the paper).
const (
	ocOffsetShift = 21                    // bits 31:21 hold the 11-bit offset
	ocOffsetBits  = 11                    //
	ocOffsetMask  = uint64(0x7FF)         // 11 ones
	ocWriteEnable = uint64(1) << 32       // bit 32: enable read/write
	ocPlaneShift  = 40                    // bits 42:40
	ocPlaneMask   = uint64(0x7)           //
	ocBusyBit     = uint64(1) << 63       // bit 63 must be set for writes
	ocCommandMask = uint64(0xFF) << 32    // bits 39:32 (0x11 = write command)
	ocReservedLo  = uint64(0x1FFFFF)      // bits 20:0 reserved
	ocReservedHi  = uint64(0xFFFFF) << 43 // bits 62:43 reserved
)

// EncodeVoltageOffset builds the 64-bit OC-mailbox value for a voltage
// offset command, reproducing the paper's Algorithm 1 exactly:
//
//	val  = offset*1024/1000                       // mV -> 1/1024 V units
//	val  = 0xFFE00000 & ((val & 0xFFF) << 21)     // pack 11-bit field
//	val |= 0x8000001100000000                     // busy bit + write command
//	val |= plane << 40
//
// offsetMV is the signed voltage offset in millivolts (negative =
// undervolt). The 11-bit two's-complement field bottoms out at -1024 mV.
func EncodeVoltageOffset(offsetMV int, plane Plane) uint64 {
	units := offsetMV * 1024 / 1000
	val := uint64(0xFFE00000) & ((uint64(int64(units)) & 0xFFF) << ocOffsetShift)
	val |= 0x8000001100000000
	val |= (uint64(plane) & ocPlaneMask) << ocPlaneShift
	return val
}

// EncodeVoltageOffsetUnits builds a mailbox write command from a raw
// two's-complement offset in 1/1024-V units, skipping Algorithm 1's
// truncating millivolt conversion. Hardware-side responders use this to
// avoid compounding quantization error on re-encode.
func EncodeVoltageOffsetUnits(units int, plane Plane) uint64 {
	val := uint64(0xFFE00000) & ((uint64(int64(units)) & 0xFFF) << ocOffsetShift)
	val |= 0x8000001100000000
	val |= (uint64(plane) & ocPlaneMask) << ocPlaneShift
	return val
}

// UnitsToMV converts 1/1024-V offset units to millivolts (exact, float).
func UnitsToMV(units int) float64 { return float64(units) * 1000.0 / 1024.0 }

// DecodedMailbox is the parsed form of an OC-mailbox value.
type DecodedMailbox struct {
	// OffsetMV is the voltage offset converted back to millivolts
	// (rounded to nearest; the 1/1024-V quantization loses <1 mV).
	OffsetMV int
	// OffsetUnits is the raw sign-extended 11-bit field in 1/1024 V units.
	OffsetUnits int
	Plane       Plane
	// Write reports whether bits 39:32 carry the write command (0x11).
	Write bool
	// Busy reports bit 63, which must be set for the command to execute.
	Busy bool
}

// DecodeVoltageOffset parses an OC-mailbox register value.
func DecodeVoltageOffset(val uint64) DecodedMailbox {
	raw := (val >> ocOffsetShift) & ocOffsetMask
	units := int(raw)
	if raw&(1<<(ocOffsetBits-1)) != 0 { // sign-extend 11 bits
		units = int(raw) - (1 << ocOffsetBits)
	}
	// Invert Algorithm 1's mV -> units conversion with rounding.
	mv := int(math.Round(float64(units) * 1000.0 / 1024.0))
	return DecodedMailbox{
		OffsetMV:    mv,
		OffsetUnits: units,
		Plane:       Plane((val >> ocPlaneShift) & ocPlaneMask),
		Write:       (val&ocCommandMask)>>32 == 0x11,
		Busy:        val&ocBusyBit != 0,
	}
}

// IA32_PERF_STATUS layout: bits 15:8 current ratio (x100 MHz bus clock),
// bits 47:32 current core voltage in units of 2^-13 V.
const (
	perfRatioShift   = 8
	perfRatioMask    = uint64(0xFF)
	perfVoltageShift = 32
	perfVoltageMask  = uint64(0xFFFF)
	// VoltageUnit is the PERF_STATUS voltage LSB in volts (1/8192 V).
	VoltageUnit = 1.0 / 8192.0
)

// EncodePerfStatus packs a frequency ratio and core voltage into the
// IA32_PERF_STATUS layout.
func EncodePerfStatus(ratio uint8, voltageV float64) uint64 {
	if voltageV < 0 {
		voltageV = 0
	}
	units := uint64(math.Round(voltageV/VoltageUnit)) & perfVoltageMask
	return uint64(ratio)<<perfRatioShift | units<<perfVoltageShift
}

// DecodePerfStatus extracts the ratio and voltage from IA32_PERF_STATUS.
func DecodePerfStatus(val uint64) (ratio uint8, voltageV float64) {
	ratio = uint8((val >> perfRatioShift) & perfRatioMask)
	voltageV = float64((val>>perfVoltageShift)&perfVoltageMask) * VoltageUnit
	return ratio, voltageV
}

// RatioToKHz converts a P-state ratio to kHz given the bus clock (100 MHz
// on all three evaluated parts).
func RatioToKHz(ratio uint8, busMHz int) int { return int(ratio) * busMHz * 1000 }

// KHzToRatio converts kHz to the nearest ratio.
func KHzToRatio(khz, busMHz int) uint8 {
	if busMHz <= 0 {
		return 0
	}
	r := (khz + busMHz*500) / (busMHz * 1000)
	if r < 0 {
		r = 0
	}
	if r > 255 {
		r = 255
	}
	return uint8(r)
}

// ReadFn dynamically produces a register value at read time (e.g.
// IA32_PERF_STATUS reflecting the live PLL and voltage regulator).
type ReadFn func(f *File) (uint64, error)

// WriteHook intercepts a write. It receives the old and proposed values and
// returns the value actually stored. Returning an error rejects the write
// (#GP); transforming the value implements clamping (paper Sec. 5.2);
// returning old implements write-ignore (paper Sec. 5.1 microcode guard).
type WriteHook func(f *File, old, proposed uint64) (uint64, error)

// Descriptor declares one MSR's behaviour.
type Descriptor struct {
	Addr     Addr
	Name     string
	ReadOnly bool
	// Locked rejects writes until the file is reset (models lock bits such
	// as the OC lock in FEATURE_CONTROL-style registers).
	Locked bool
	// Reset is the architectural reset value.
	Reset uint64
	// ReadFn, when set, overrides the stored value on reads.
	ReadFn ReadFn
	// Apply is the hardware commit stage: it runs after every software
	// write hook has passed, receives the final value, and performs the
	// physical side effect (e.g. commanding the voltage regulator). Write
	// hooks therefore can reject or transform a write before hardware
	// sees it — the property the microcode/clamp defenses rely on.
	Apply WriteHook
	// hooks run in installation order on every write, before Apply.
	hooks  []hookEntry
	nextID int

	// HookStats accounts write-hook activity on this register, the raw
	// material for the telemetry exposition's per-core hook-hit series.
	HookStats HookStats
}

// HookStats counts write-hook activity on one register.
type HookStats struct {
	// Hits counts individual hook invocations (one write through N hooks
	// counts N).
	Hits uint64
	// Rejects counts writes a hook refused (#GP to the writer).
	Rejects uint64
	// Rewrites counts hook invocations that transformed the proposed value
	// (clamp or write-ignore behaviour).
	Rewrites uint64
}

type hookEntry struct {
	id int
	fn WriteHook
}

// stdDescriptors is the architectural register set every core declares at
// reset. NewFile copies it into the file's inline storage.
var stdDescriptors = [...]Descriptor{
	{Addr: OCMailbox, Name: "OC_MAILBOX"},
	{Addr: VoltageOffsetLimit, Name: "MSR_VOLTAGE_OFFSET_LIMIT"},
	{Addr: IA32PerfStatus, Name: "IA32_PERF_STATUS", ReadOnly: true},
	{Addr: IA32PerfCtl, Name: "IA32_PERF_CTL"},
	{Addr: TurboRatioLimit, Name: "MSR_TURBO_RATIO_LIMIT"},
	{Addr: RAPLPowerUnit, Name: "MSR_RAPL_POWER_UNIT", ReadOnly: true, Reset: DefaultRAPLPowerUnit},
	{Addr: PkgEnergyStatus, Name: "MSR_PKG_ENERGY_STATUS", ReadOnly: true},
	{Addr: DRAMPowerLimit, Name: "MSR_DRAM_POWER_LIMIT"},
	{Addr: DRAMPowerInfo, Name: "MSR_DRAM_POWER_INFO", ReadOnly: true},
	{Addr: PP0EnergyStatus, Name: "MSR_PP0_ENERGY_STATUS", ReadOnly: true},
}

// fileSlots is the inline register capacity: the standard set plus room for
// the handful of extra MSRs defenses and tests declare. Declaring more
// spills to the heap transparently via append.
const fileSlots = 16

// File is one logical CPU's MSR space.
//
// The register table is a set of parallel arrays scanned linearly by
// address: a core exposes only a handful of MSRs, so the scan beats map
// hashing on every rdmsr/wrmsr, and the inline backing arrays make NewFile
// a single allocation — the characterizer rebuilds four files per crash
// reboot, which previously made MSR maps the sweep's largest allocator.
// File holds slices into its own arrays and must not be copied by value.
type File struct {
	core  int
	addrs []Addr
	vals  []uint64
	descs []*Descriptor

	addrsBuf [fileSlots]Addr
	valsBuf  [fileSlots]uint64
	descsBuf [fileSlots]*Descriptor
	stdBuf   [len(stdDescriptors)]Descriptor

	// Reads and Writes count successful operations, used by the kernel
	// cost model to charge rdmsr/wrmsr time.
	Reads  uint64
	Writes uint64

	// spans, when set, receives one causal span per OC-mailbox voltage
	// write command (the security-relevant wrmsr every DVFS attack and the
	// guard's rewrite go through), tagged with the decoded offset and the
	// accepted/blocked/rewritten outcome. Nil (the default, including on the
	// characterizer's private row platforms) keeps Write allocation-free.
	spans *span.Tracer

	// flight, when set, receives the same mailbox voltage write commands as
	// compact flight records (offset, plane, outcome, causal span ID) — the
	// pre-trigger evidence stream behind incident bundles. The flight path
	// stays allocation-free even with spans detached.
	flight *flight.Recorder
}

// NewFile builds an MSR file for the given core with the standard registers
// declared (values at reset defaults).
func NewFile(core int) *File {
	f := &File{core: core}
	f.addrs = f.addrsBuf[:0]
	f.vals = f.valsBuf[:0]
	f.descs = f.descsBuf[:0]
	f.stdBuf = stdDescriptors
	for i := range f.stdBuf {
		f.Declare(&f.stdBuf[i])
	}
	return f
}

// Core returns the logical CPU index this file belongs to.
func (f *File) Core() int { return f.core }

// index returns the register table slot for addr, or -1.
func (f *File) index(addr Addr) int {
	for i, a := range f.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// Declare registers (or replaces) a descriptor and installs its reset value.
func (f *File) Declare(d *Descriptor) {
	if i := f.index(d.Addr); i >= 0 {
		f.descs[i] = d
		f.vals[i] = d.Reset
		return
	}
	f.addrs = append(f.addrs, d.Addr)
	f.vals = append(f.vals, d.Reset)
	f.descs = append(f.descs, d)
}

// Descriptor returns the descriptor for addr, or nil.
func (f *File) Descriptor(addr Addr) *Descriptor {
	if i := f.index(addr); i >= 0 {
		return f.descs[i]
	}
	return nil
}

// AddWriteHook appends a write hook to addr and returns its removal id.
// Hooks run in installation order; each sees the value produced by the
// previous one. It panics on an undeclared MSR — hook installation is
// programmer-controlled, not data.
func (f *File) AddWriteHook(addr Addr, h WriteHook) int {
	d := f.Descriptor(addr)
	if d == nil {
		panic(fmt.Sprintf("msr: AddWriteHook on undeclared MSR 0x%x", uint32(addr)))
	}
	d.nextID++
	d.hooks = append(d.hooks, hookEntry{id: d.nextID, fn: h})
	return d.nextID
}

// RemoveWriteHook removes the single hook identified by id (as returned by
// AddWriteHook), leaving other hooks — such as the platform's hardware
// wiring — in place. Unknown ids are a no-op.
func (f *File) RemoveWriteHook(addr Addr, id int) {
	d := f.Descriptor(addr)
	if d == nil {
		return
	}
	for i, e := range d.hooks {
		if e.id == id {
			d.hooks = append(d.hooks[:i], d.hooks[i+1:]...)
			return
		}
	}
}

// RemoveWriteHooks drops all hooks from addr, including platform wiring;
// prefer RemoveWriteHook for uninstalling a single layer.
func (f *File) RemoveWriteHooks(addr Addr) {
	if d := f.Descriptor(addr); d != nil {
		d.hooks = nil
	}
}

// WriteHookStats reports write-hook activity on addr (zero for undeclared
// registers or registers without hooks).
func (f *File) WriteHookStats(addr Addr) HookStats {
	if d := f.Descriptor(addr); d != nil {
		return d.HookStats
	}
	return HookStats{}
}

// Read implements rdmsr.
func (f *File) Read(addr Addr) (uint64, error) {
	i := f.index(addr)
	if i < 0 {
		return 0, &GPFault{Addr: addr, Op: "rdmsr", Why: "unimplemented MSR"}
	}
	d := f.descs[i]
	f.Reads++
	if d.ReadFn != nil {
		return d.ReadFn(f)
	}
	return f.vals[i], nil
}

// SetSpanTracer attaches (or, with nil, detaches) the causal span tracer
// that observes OC-mailbox voltage write commands on this file. The platform
// re-applies it when a reboot rebuilds the register file.
func (f *File) SetSpanTracer(tr *span.Tracer) { f.spans = tr }

// SetFlightRecorder attaches (or, with nil, detaches) the flight recorder
// that observes OC-mailbox voltage write commands on this file. As with the
// span tracer, the platform re-applies it across reboots.
func (f *File) SetFlightRecorder(rec *flight.Recorder) { f.flight = rec }

// observeMailboxWrite records one mailbox voltage-write observation: a span
// (when a tracer is attached) and a flight record (when a recorder is
// attached) carrying the span's ID so the bundle links back into the trace.
// outcome is "accepted", "rewritten" (a hook transformed the command — clamp
// or write-ignore) or "blocked" (a hook or the commit stage rejected it, #GP
// to the writer); flag is the matching flight outcome code.
func (f *File) observeMailboxWrite(dec DecodedMailbox, outcome string, flag uint8) {
	var id span.ID
	if f.spans != nil {
		id = f.spans.Instant(fmt.Sprintf("msr/core%d", f.core), "mailbox_write", map[string]any{
			"core":      f.core,
			"offset_mv": dec.OffsetMV,
			"plane":     dec.Plane.String(),
			"outcome":   outcome,
		})
	}
	f.flight.MailboxWrite(f.core, dec.OffsetMV, uint8(dec.Plane), flag, uint64(id))
}

// Write implements wrmsr, running the register's write hooks.
func (f *File) Write(addr Addr, val uint64) error {
	i := f.index(addr)
	if i < 0 {
		return &GPFault{Addr: addr, Op: "wrmsr", Why: "unimplemented MSR"}
	}
	d := f.descs[i]
	if d.ReadOnly {
		return &GPFault{Addr: addr, Op: "wrmsr", Why: "read-only MSR"}
	}
	if d.Locked {
		return &GPFault{Addr: addr, Op: "wrmsr", Why: "MSR locked"}
	}
	// Observe only OC-mailbox voltage write commands: the wrmsr at the heart
	// of every DVFS fault attack and of the guard's corrective rewrite.
	observed := (f.spans != nil || f.flight != nil) && addr == OCMailbox
	var dec DecodedMailbox
	if observed {
		dec = DecodeVoltageOffset(val)
		if !dec.Busy || !dec.Write {
			observed = false // read command or inert write: not a voltage change
		}
	}
	old := f.vals[i]
	v := val
	for _, e := range d.hooks {
		d.HookStats.Hits++
		nv, err := e.fn(f, old, v)
		if err != nil {
			d.HookStats.Rejects++
			if observed {
				f.observeMailboxWrite(dec, "blocked", flight.OutcomeBlocked)
			}
			return err
		}
		if nv != v {
			d.HookStats.Rewrites++
		}
		v = nv
	}
	hookFinal := v
	if d.Apply != nil {
		nv, err := d.Apply(f, old, v)
		if err != nil {
			if observed {
				f.observeMailboxWrite(dec, "blocked", flight.OutcomeBlocked)
			}
			return err
		}
		v = nv
	}
	if observed {
		outcome, flag := "accepted", flight.OutcomeAccepted
		if hookFinal != val {
			outcome, flag = "rewritten", flight.OutcomeRewritten
		}
		f.observeMailboxWrite(dec, outcome, flag)
	}
	// Re-resolve the slot: a hook or Apply may have Declared registers and
	// relocated the table.
	if j := f.index(addr); j >= 0 {
		f.vals[j] = v
	}
	f.Writes++
	return nil
}

// Poke stores a value bypassing hooks and read-only protection. It is the
// hardware-side backdoor used by the platform (e.g. the PLL updating
// PERF_STATUS); software paths must use Write.
func (f *File) Poke(addr Addr, val uint64) {
	i := f.index(addr)
	if i < 0 {
		panic(fmt.Sprintf("msr: Poke on undeclared MSR 0x%x", uint32(addr)))
	}
	f.vals[i] = val
}

// Peek reads the stored value bypassing ReadFn. Returns 0 for undeclared.
func (f *File) Peek(addr Addr) uint64 {
	if i := f.index(addr); i >= 0 {
		return f.vals[i]
	}
	return 0
}
