package msr

import (
	"math"
	"testing"
)

// MSR_RAPL_POWER_UNIT decode: the three unit fields are independent
// negative powers of two. The table covers the architectural default this
// repo models plus corner encodings of each field.
func TestDecodeRAPLPowerUnit(t *testing.T) {
	cases := []struct {
		name                  string
		val                   uint64
		powerW, energyJ, timeS float64
	}{
		// 0x000A0E03: power 2^-3 W, energy 2^-14 J, time 2^-10 s — the
		// value Intel documents for Sandy Bridge onward and the reset value
		// this package exposes.
		{"architectural default", DefaultRAPLPowerUnit, 1.0 / 8, 1.0 / 16384, 1.0 / 1024},
		{"all zero exponents", 0x0, 1, 1, 1},
		{"energy 2^-16 (Haswell server ESU)", 0x00001000, 1, 1.0 / 65536, 1},
		{"max field values", 0x000F1F0F, 1.0 / 32768, 1.0 / (1 << 31), 1.0 / 32768},
		// High bits outside the defined fields must be ignored.
		{"reserved bits set", 0xFFF0_0000 | DefaultRAPLPowerUnit, 1.0 / 8, 1.0 / 16384, 1.0 / 1024},
	}
	for _, tc := range cases {
		p, e, s := DecodeRAPLPowerUnit(tc.val)
		if p != tc.powerW || e != tc.energyJ || s != tc.timeS {
			t.Errorf("%s: DecodeRAPLPowerUnit(%#x) = (%g, %g, %g), want (%g, %g, %g)",
				tc.name, tc.val, p, e, s, tc.powerW, tc.energyJ, tc.timeS)
		}
	}
	if DefaultEnergyUnitJ != 1.0/16384 {
		t.Errorf("DefaultEnergyUnitJ = %g, want 2^-14", DefaultEnergyUnitJ)
	}
}

// Energy-status encode/decode: joules quantize to the energy unit and the
// counter is 32 bits wide, wrapping silently like the hardware register.
func TestEncodeEnergyStatus(t *testing.T) {
	u := DefaultEnergyUnitJ
	cases := []struct {
		name   string
		joules float64
		want   uint64
	}{
		{"zero", 0, 0},
		{"negative clamps to zero", -1, 0},
		{"one unit", u, 1},
		{"sub-unit truncates", u * 0.99, 0},
		{"one joule", 1.0, 16384},
		{"exact counter max", float64(0xFFFFFFFF) * u, 0xFFFFFFFF},
		{"wrap at 2^32 units", float64(uint64(1)<<32) * u, 0},
		{"wrap plus five", (float64(uint64(1)<<32) + 5) * u, 5},
	}
	for _, tc := range cases {
		if got := EncodeEnergyStatus(tc.joules, u); got != tc.want {
			t.Errorf("%s: EncodeEnergyStatus(%g) = %d, want %d", tc.name, tc.joules, got, tc.want)
		}
	}
	// Decode inverts encode on whole units.
	for _, units := range []uint64{0, 1, 12345, 0xFFFFFFFF} {
		j := DecodeEnergyStatus(units, u)
		if math.Abs(j-float64(units)*u) > 1e-12 {
			t.Errorf("DecodeEnergyStatus(%d) = %g, want %g", units, j, float64(units)*u)
		}
	}
}

// Delta semantics across the 32-bit rollover: uint32 subtraction gives the
// modular distance, so a reading taken just before wrap and one just after
// still yield the physically-consumed joules.
func TestEnergyCounterDeltaWraparound(t *testing.T) {
	u := DefaultEnergyUnitJ
	cases := []struct {
		name          string
		before, after uint32
		wantUnits     uint32
	}{
		{"no wrap", 100, 250, 150},
		{"equal", 7, 7, 0},
		{"wrap by one", 0xFFFFFFFF, 0, 1},
		{"wrap mid-delta", 0xFFFFFF00, 0x00000100, 0x200},
		{"full counter distance", 1, 0, 0xFFFFFFFF},
	}
	for _, tc := range cases {
		want := float64(tc.wantUnits) * u
		if got := EnergyCounterDeltaJ(tc.before, tc.after, u); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: EnergyCounterDeltaJ(%#x, %#x) = %g J, want %g J",
				tc.name, tc.before, tc.after, got, want)
		}
	}
}

// The energy-status MSRs are standard descriptors on every file: readable,
// write-protected, and backed by the unit register's reset value.
func TestRAPLDescriptorsPresent(t *testing.T) {
	f := NewFile(0)
	v, err := f.Read(RAPLPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if v != DefaultRAPLPowerUnit {
		t.Errorf("MSR_RAPL_POWER_UNIT = %#x, want %#x", v, DefaultRAPLPowerUnit)
	}
	for _, addr := range []Addr{RAPLPowerUnit, PkgEnergyStatus, PP0EnergyStatus} {
		if _, err := f.Read(addr); err != nil {
			t.Errorf("read %#x: %v", uint32(addr), err)
		}
		if err := f.Write(addr, 1); err == nil {
			t.Errorf("write %#x succeeded; energy counters must be read-only", uint32(addr))
		}
	}
}
