// Package rng provides the repository's splitmix64-based seed derivation
// and a tiny deterministic uniform stream.
//
// Two idioms recur across the codebase: deriving a well-separated child
// seed from a base seed and a small index (fleet machines, search seeds),
// and drawing a short fixed sequence of uniforms that is a pure function
// of a seed (the characterizer's coupled probe thresholds, the annealer's
// proposal stream). Both previously lived as open-coded constants; this
// package is the single tested implementation.
//
// splitmix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA '14) is used because it is stateless-derivable: the
// k-th output is a pure function of (seed, k), which is exactly the shape
// the repo's worker-count-invariance proofs need — no stream can depend on
// which goroutine consumed it first.
package rng

// Gamma is splitmix64's golden-ratio increment as a signed 64-bit
// constant: the two's-complement bit pattern of 0x9E3779B97F4A7C15. The
// fleet's MachineSeed derivation multiplies by it; keeping the signed
// spelling here preserves that derivation bit for bit.
const Gamma int64 = -0x61c8864680b583eb

// gammaU is Gamma's unsigned bit pattern, the canonical splitmix64
// increment (constant conversions between the two overflow at compile
// time, so both spellings are written out).
const gammaU uint64 = 0x9E3779B97F4A7C15

// IndexSeed derives child seed `index` from a base seed: a pure function
// of the index, so a derived stream replays identically no matter which
// worker consumes it. The index is offset by one (index 0 must not map to
// the base seed itself) and spread by Gamma so neighbouring indices get
// well-separated seeds. This is the fleet's MachineSeed derivation.
func IndexSeed(base int64, index int) int64 {
	return base ^ (int64(index)+1)*Gamma
}

// mix64 is splitmix64's output function: a bijective avalanche of the
// advanced state.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SplitMix64 is the raw splitmix64 stream. The zero value is a valid
// generator seeded with 0; use New to seed it.
type SplitMix64 struct{ state uint64 }

// New returns a stream whose outputs are a pure function of seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// NewSeeded is New for the repo's signed seeds.
func NewSeeded(seed int64) *SplitMix64 { return New(uint64(seed)) }

// Next returns the next 64-bit output.
func (s *SplitMix64) Next() uint64 {
	s.state += gammaU
	return mix64(s.state)
}

// Float64 returns a uniform in [0, 1) with 53 bits of precision, the same
// construction math/rand uses (top 53 bits / 2^53).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Next() % uint64(n))
}
