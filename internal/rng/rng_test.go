package rng

import "testing"

// TestIndexSeedMatchesFleetDerivation pins IndexSeed to the exact formula
// internal/fleet open-coded before the extraction: base ^ (i+1) * gamma.
// Fleet checkpoints and golden reports depend on these bits.
func TestIndexSeedMatchesFleetDerivation(t *testing.T) {
	legacy := func(base int64, index int) int64 {
		return base ^ (int64(index)+1)*-0x61c8864680b583eb
	}
	for _, base := range []int64{0, 1, 42, -7, 1 << 40, -1} {
		for _, idx := range []int{0, 1, 2, 15, 999, 1 << 20} {
			if got, want := IndexSeed(base, idx), legacy(base, idx); got != want {
				t.Fatalf("IndexSeed(%d, %d) = %d, legacy formula = %d", base, idx, got, want)
			}
		}
	}
}

// TestIndexSeedSeparation: neighbouring indices must not collide and index
// 0 must not alias the base seed.
func TestIndexSeedSeparation(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10_000; i++ {
		s := IndexSeed(42, i)
		if s == 42 {
			t.Fatalf("index %d aliases the base seed", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide at seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

// TestSplitMix64KnownVector pins the stream to the reference splitmix64
// outputs for seed 1234567 (from the public-domain reference
// implementation), so the generator can never silently drift.
func TestSplitMix64KnownVector(t *testing.T) {
	s := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

// TestDeterminism: same seed, same stream; distinct seeds diverge.
func TestDeterminism(t *testing.T) {
	a, b := NewSeeded(-99), NewSeeded(-99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c, d := New(7), New(8)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

// TestFloat64Range: uniforms stay in [0, 1).
func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 10_000; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("draw %d out of range: %v", i, u)
		}
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[s.Intn(7)]++
	}
	for v, n := range counts {
		if n == 0 {
			t.Fatalf("value %d never drawn", v)
		}
	}
}
