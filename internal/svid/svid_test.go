package svid

import (
	"math"
	"testing"

	"plugvolt/internal/sim"
	"plugvolt/internal/vr"
)

func rig(t *testing.T) (*sim.Simulator, *vr.Regulator, *Bus) {
	t.Helper()
	s := sim.New(1)
	rail, err := vr.New(s, vr.Config{CommandLatency: 20 * sim.Microsecond, SlewMVPerUS: 0.5, InitialMV: 1050})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBus(s, rail)
	if err != nil {
		t.Fatal(err)
	}
	return s, rail, b
}

func TestVIDCodec(t *testing.T) {
	if VIDToMV(0) != 0 {
		t.Fatal("VID 0 not off")
	}
	if VIDToMV(1) != 250 {
		t.Fatalf("VID 1 = %v mV", VIDToMV(1))
	}
	// Round trip on the 5 mV grid.
	for mv := 250.0; mv <= 1500; mv += 5 {
		if got := VIDToMV(MVToVID(mv)); math.Abs(got-mv) > 2.5 {
			t.Fatalf("VID round trip %v -> %v", mv, got)
		}
	}
	if MVToVID(100) != 1 {
		t.Fatal("sub-range voltage not clamped to VID 1")
	}
	if MVToVID(5000) != 255 {
		t.Fatal("over-range voltage not clamped")
	}
}

func TestBusValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewBus(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
	rail, _ := vr.New(s, vr.DefaultConfig(1000))
	b, _ := NewBus(s, rail)
	if err := b.send(Frame{Op: Opcode(0x55)}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestControllerDrivesRail(t *testing.T) {
	s, rail, b := rig(t)
	pcu := NewController(b)
	if err := pcu.SetVoltage(900); err != nil {
		t.Fatal(err)
	}
	// Frame must serialize first: nothing happens before FrameTime.
	s.RunFor(b.FrameTime / 2)
	if rail.Target() != 1050 {
		t.Fatal("rail retargeted before the frame finished")
	}
	s.RunFor(b.FrameTime)
	if got := rail.Target(); math.Abs(got-900) > 2.5 {
		t.Fatalf("rail target %v after SetVID", got)
	}
	if b.Frames != 1 || b.InjectedFrames != 0 || pcu.Sent != 1 {
		t.Fatalf("counters: %d/%d/%d", b.Frames, b.InjectedFrames, pcu.Sent)
	}
	if b.LastFrame.Op != OpSetVID || b.LastFrame.Injected {
		t.Fatalf("last frame %+v", b.LastFrame)
	}
}

func TestFramesSerialize(t *testing.T) {
	s, rail, b := rig(t)
	pcu := NewController(b)
	// Two back-to-back commands: the second lands one FrameTime later.
	_ = pcu.SetVoltage(900)
	_ = pcu.SetVoltage(950)
	s.RunFor(b.FrameTime + b.FrameTime/2)
	if got := rail.Target(); math.Abs(got-900) > 2.5 {
		t.Fatalf("mid-serialization target %v", got)
	}
	s.RunFor(b.FrameTime)
	if got := rail.Target(); math.Abs(got-950) > 2.5 {
		t.Fatalf("final target %v", got)
	}
}

func TestInjectorOutshoutsController(t *testing.T) {
	// The VoltPillager persistence loop: whoever speaks last owns the VR.
	s, rail, b := rig(t)
	pcu := NewController(b)
	tap := NewInjector(b)
	pin := tap.Pin(s, 600, 50*sim.Microsecond)
	defer pin.Stop()
	// The PCU keeps commanding the proper voltage every 200 us.
	pcuTick := s.Every(200*sim.Microsecond, func() { _ = pcu.SetVoltage(1050) })
	defer pcuTick.Stop()
	s.RunFor(2 * sim.Millisecond)
	// Injected frames outnumber legitimate 4:1, so the rail target is the
	// attacker's most of the time.
	if got := rail.Target(); math.Abs(got-600) > 2.5 {
		t.Fatalf("rail target %v — injector not winning", got)
	}
	if b.InjectedFrames <= b.Frames-b.InjectedFrames {
		t.Fatalf("injected %d of %d frames — persistence loop too slow", b.InjectedFrames, b.Frames)
	}
}

func TestAuditDetectsCounterfeitTraffic(t *testing.T) {
	s, _, b := rig(t)
	pcu := NewController(b)
	tap := NewInjector(b)
	_ = pcu.SetVoltage(1000)
	_ = tap.Inject(700)
	_ = tap.Inject(700)
	s.RunFor(10 * b.FrameTime)
	st := Audit(b, pcu)
	if st.Frames != 3 || st.ExpectedFrames != 1 {
		t.Fatalf("audit counts: %+v", st)
	}
	if st.Mismatch != 2 {
		t.Fatalf("mismatch %d, want 2", st.Mismatch)
	}
	// Clean bus audits clean.
	s2, rail2, _ := rig(t)
	_ = s2
	b2, _ := NewBus(s2, rail2)
	pcu2 := NewController(b2)
	_ = pcu2.SetVoltage(1000)
	s2.RunFor(5 * b2.FrameTime)
	if st2 := Audit(b2, pcu2); st2.Mismatch != 0 {
		t.Fatalf("clean bus mismatch %d", st2.Mismatch)
	}
}

func TestLogRetention(t *testing.T) {
	s, _, b := rig(t)
	b.LogCap = 4
	pcu := NewController(b)
	for i := 0; i < 10; i++ {
		_ = pcu.SetVoltage(900 + float64(i)*5)
	}
	s.RunFor(20 * b.FrameTime)
	if len(b.Log) != 4 {
		t.Fatalf("log length %d", len(b.Log))
	}
	// Retained frames are the most recent ones.
	last := b.Log[len(b.Log)-1]
	if VIDToMV(last.VID) < 940 {
		t.Fatalf("log did not retain the tail: last %v mV", VIDToMV(last.VID))
	}
}
