// Package svid models the Serial Voltage Identification bus between the
// CPU's power-control unit and the voltage regulator — the interface
// VoltPillager physically attacks ("hardware-based fault injection attacks
// against Intel SGX enclaves using the SVID voltage scaling interface").
//
// The model covers what the attack and its analysis need:
//
//   - framed commands (address, opcode, payload, parity) clocked at the
//     bus rate, so commands take real time and can interleave;
//   - a controller (the PCU) that serializes the CPU's voltage requests;
//   - an injector tap: a soldered-on microcontroller that drives frames
//     the controller never sent. Chen et al. showed the VR honors the
//     *last* command it hears, so the injector wins by re-sending after
//     every legitimate packet;
//   - a bus monitor for the defensive analysis: what could firmware see if
//     the VR logged traffic? (Counterfeit frames are electrically
//     indistinguishable, but their *count* is not — the basis for the
//     anomaly counters.)
package svid

import (
	"errors"
	"fmt"

	"plugvolt/internal/sim"
	"plugvolt/internal/vr"
)

// Opcode is an SVID command type.
type Opcode uint8

// Supported opcodes (subset of the real protocol).
const (
	OpSetVID     Opcode = 0x01 // set target voltage
	OpSetVIDFast Opcode = 0x02 // set target with fast slew
	OpGetStatus  Opcode = 0x07
)

// Frame is one bus packet.
type Frame struct {
	// Addr selects the VR rail (core, uncore...).
	Addr uint8
	Op   Opcode
	// VID is the voltage identifier; VID 0 is off, each step is 5 mV above
	// the 245 mV base (the VR12/VR12.5 convention).
	VID uint8
	// Injected marks frames that did not come from the PCU. The flag is
	// simulation metadata — the electrical bus carries no such bit, which
	// is exactly VoltPillager's point.
	Injected bool
}

// VIDToMV converts a VID code to millivolts (VR12: 245 mV + 5 mV/step).
func VIDToMV(vid uint8) float64 {
	if vid == 0 {
		return 0
	}
	return 245 + 5*float64(vid)
}

// MVToVID converts millivolts to the nearest VID (clamping into range).
func MVToVID(mv float64) uint8 {
	if mv < 250 {
		return 1
	}
	v := (mv-245)/5 + 0.5
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Bus is one SVID segment with a single VR listener.
type Bus struct {
	simr *sim.Simulator
	rail *vr.Regulator
	// FrameTime is the serialization time of one packet (the real bus
	// runs at 25 MHz with ~30-bit frames; ~1.2 us per frame).
	FrameTime sim.Duration

	// busyUntil serializes transmission (frames cannot overlap).
	busyUntil sim.Time

	// Telemetry: the VR-side view of traffic.
	Frames         uint64
	InjectedFrames uint64
	LastFrame      Frame
	// Log, when enabled, retains recent frames for the monitor.
	Log    []Frame
	LogCap int
}

// NewBus attaches a bus to a regulator rail.
func NewBus(s *sim.Simulator, rail *vr.Regulator) (*Bus, error) {
	if s == nil || rail == nil {
		return nil, errors.New("svid: need simulator and rail")
	}
	return &Bus{simr: s, rail: rail, FrameTime: 1200 * sim.Nanosecond, LogCap: 64}, nil
}

// send serializes a frame and applies it at the VR after transmission.
func (b *Bus) send(f Frame) error {
	if f.Op != OpSetVID && f.Op != OpSetVIDFast && f.Op != OpGetStatus {
		return fmt.Errorf("svid: unknown opcode 0x%x", uint8(f.Op))
	}
	start := b.simr.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	done := start + b.FrameTime
	b.busyUntil = done
	b.simr.At(done, func() {
		b.Frames++
		if f.Injected {
			b.InjectedFrames++
		}
		b.LastFrame = f
		if b.LogCap > 0 {
			b.Log = append(b.Log, f)
			if len(b.Log) > b.LogCap {
				b.Log = b.Log[len(b.Log)-b.LogCap:]
			}
		}
		if f.Op == OpSetVID || f.Op == OpSetVIDFast {
			// The VR honors whatever it last heard.
			b.rail.SetTarget(VIDToMV(f.VID))
		}
	})
	return nil
}

// Controller is the PCU's transmit path.
type Controller struct {
	bus *Bus
	// Sent counts legitimate commands.
	Sent uint64
}

// NewController builds the PCU-side endpoint.
func NewController(b *Bus) *Controller { return &Controller{bus: b} }

// SetVoltage issues a legitimate SetVID for targetMV.
func (c *Controller) SetVoltage(targetMV float64) error {
	c.Sent++
	return c.bus.send(Frame{Addr: 0, Op: OpSetVID, VID: MVToVID(targetMV)})
}

// Injector is the VoltPillager tap: a second transmitter on the same wires.
type Injector struct {
	bus *Bus
	// Sent counts injected frames.
	Sent uint64
}

// NewInjector solders onto the bus.
func NewInjector(b *Bus) *Injector { return &Injector{bus: b} }

// Inject drives a counterfeit SetVID.
func (i *Injector) Inject(targetMV float64) error {
	i.Sent++
	return i.bus.send(Frame{Addr: 0, Op: OpSetVIDFast, VID: MVToVID(targetMV), Injected: true})
}

// Pin repeatedly re-injects targetMV every period, out-shouting the PCU —
// the published attack's persistence loop. Stop the returned ticker to
// desolder.
func (i *Injector) Pin(s *sim.Simulator, targetMV float64, period sim.Duration) *sim.Ticker {
	return s.Every(period, func() { _ = i.Inject(targetMV) })
}

// MonitorStats is the defensive view: what a VR-side counter would show.
type MonitorStats struct {
	Frames         uint64
	InjectedFrames uint64
	// ExpectedFrames is the PCU's own send count; a mismatch with Frames
	// reveals out-of-band traffic even though individual frames carry no
	// provenance.
	ExpectedFrames uint64
	Mismatch       uint64
}

// Audit compares VR-side and PCU-side counters. This is the hardware
// analogue of the guard's voltage cross-check: detection is possible,
// prevention is not (the injector can also replay the exact expected
// count... only if it can suppress PCU frames, which a passive tap cannot).
func Audit(b *Bus, c *Controller) MonitorStats {
	st := MonitorStats{
		Frames:         b.Frames,
		InjectedFrames: b.InjectedFrames,
		ExpectedFrames: c.Sent,
	}
	if st.Frames > st.ExpectedFrames {
		st.Mismatch = st.Frames - st.ExpectedFrames
	}
	return st
}
