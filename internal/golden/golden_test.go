package golden

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plugvolt"
	"plugvolt/internal/core"
	"plugvolt/internal/report"
)

// update rewrites the golden artifacts from a fresh sweep:
//
//	go test ./internal/golden -run Golden -update
//
// (test-binary flags must follow the package path, or `go test` applies
// them to the current-directory package instead).
var update = flag.Bool("update", false, "rewrite the fig{2,3,4} golden artifacts from a fresh sweep")

// goldenSeed matches plugvolt-report's default; the goldens are that
// bundle's fig* files.
const goldenSeed = 42

var figures = []struct {
	model string
	base  string
}{
	{"skylake", "fig2_skylake"},
	{"kabylaker", "fig3_kabylaker"},
	{"cometlake", "fig4_cometlake"},
}

func artifactsDir() string { return filepath.Join("..", "..", "artifacts") }

func sweep(t *testing.T, model string, workers int) *core.Grid {
	t.Helper()
	sys, err := plugvolt.NewSystem(model, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plugvolt.QuickSweep()
	cfg.Workers = workers
	g, err := sys.Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGoldenFigures re-derives the three figure grids with 1, 2 and 8
// workers and asserts bit-for-bit equality with each other and with the
// checked-in artifacts. -update regenerates the artifacts instead.
func TestGoldenFigures(t *testing.T) {
	for _, fig := range figures {
		fig := fig
		t.Run(fig.base, func(t *testing.T) {
			grids := map[int]*core.Grid{}
			jsons := map[int][]byte{}
			for _, w := range []int{1, 2, 8} {
				g := sweep(t, fig.model, w)
				data, err := g.JSON()
				if err != nil {
					t.Fatal(err)
				}
				grids[w], jsons[w] = g, data
			}
			for _, w := range []int{2, 8} {
				if !bytes.Equal(jsons[1], jsons[w]) {
					t.Fatalf("workers=%d vs workers=1: %s", w, DiffGrids(grids[1], grids[w]))
				}
			}

			jsonPath := filepath.Join(artifactsDir(), fig.base+".json")
			csvPath := filepath.Join(artifactsDir(), fig.base+".csv")
			if *update {
				writeGolden(t, fig.base, grids[1], jsons[1])
			}

			golden, err := LoadGridJSON(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, jsons[1]) {
				d := DiffGrids(golden, grids[1])
				if d == "" {
					d = "JSON bytes differ but grids are equal (formatting drift — rerun -update)"
				}
				t.Fatalf("fresh sweep diverges from %s: %s", jsonPath, d)
			}

			goldenCSV, err := LoadGridCSV(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffCells(goldenCSV, grids[1]); d != "" {
				t.Fatalf("fresh sweep diverges from %s: %s", csvPath, d)
			}
		})
	}
}

// writeGolden rewrites all three renderings of one figure so the bundle
// stays self-consistent (the same files plugvolt-report produces).
func writeGolden(t *testing.T, base string, g *core.Grid, js []byte) {
	t.Helper()
	var txt, csv strings.Builder
	if err := report.WriteHeatmap(&txt, g); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteGridCSV(&csv, g); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		base + ".json": js,
		base + ".csv":  []byte(csv.String()),
		base + ".txt":  []byte(txt.String()),
	} {
		if err := os.WriteFile(filepath.Join(artifactsDir(), name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("rewrote golden %s.{json,csv,txt}", base)
}

// TestGoldenLoadersRejectCorruption exercises the loader error paths the
// conformance suite depends on: a corrupted golden must fail loudly, not
// silently pass the diff.
func TestGoldenLoadersRejectCorruption(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "freq,off,class\n"},
		{"bad field count", "freq_khz,offset_mv,class\n1000,-5\n"},
		{"bad freq", "freq_khz,offset_mv,class\nx,-5,safe\n"},
		{"bad offset", "freq_khz,offset_mv,class\n1000,x,safe\n"},
		{"bad class", "freq_khz,offset_mv,class\n1000,-5,melted\n"},
		{"duplicate cell", "freq_khz,offset_mv,class\n1000,-5,safe\n1000,-5,safe\n"},
		{"ragged row", "freq_khz,offset_mv,class\n1000,-5,safe\n1000,-10,safe\n2000,-5,safe\n"},
		{"positive offsets", "freq_khz,offset_mv,class\n1000,5,safe\n"},
	}
	for _, c := range cases {
		if _, err := LoadGridCSV(write("bad.csv", c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := LoadGridCSV(filepath.Join(dir, "absent.csv")); err == nil {
		t.Error("missing CSV accepted")
	}
	if _, err := LoadGridJSON(write("bad.json", "{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadGridJSON(write("empty.json", "{}")); err == nil {
		t.Error("structurally invalid JSON grid accepted")
	}
	if _, err := LoadGridJSON(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing JSON accepted")
	}
}

// TestGoldenCSVRoundTrip: a real artifact survives the CSV parse and
// matches its JSON sibling cell for cell — the two renderings describe the
// same grid.
func TestGoldenCSVRoundTrip(t *testing.T) {
	for _, fig := range figures {
		j, err := LoadGridJSON(filepath.Join(artifactsDir(), fig.base+".json"))
		if err != nil {
			t.Fatal(err)
		}
		c, err := LoadGridCSV(filepath.Join(artifactsDir(), fig.base+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if d := DiffCells(j, c); d != "" {
			t.Fatalf("%s: JSON and CSV renderings disagree: %s", fig.base, d)
		}
	}
}

// TestDiffReportsFirstDivergentCell pins the failure message format the
// satellite task asks for.
func TestDiffReportsFirstDivergentCell(t *testing.T) {
	a, err := LoadGridJSON(filepath.Join(artifactsDir(), "fig2_skylake.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadGridJSON(filepath.Join(artifactsDir(), "fig2_skylake.json"))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffGrids(a, b); d != "" {
		t.Fatalf("identical grids diff: %s", d)
	}
	b.Cells[3][7] = (b.Cells[3][7] + 1) % 3
	d := DiffCells(a, b)
	want := "cell ("
	if !strings.Contains(d, want) || !strings.Contains(d, "kHz") || !strings.Contains(d, "mV") {
		t.Fatalf("diff %q does not name the divergent (freq, offset) cell", d)
	}
	b.Seed++
	if d := DiffGrids(a, b); !strings.Contains(d, "seed") {
		t.Fatalf("metadata diff %q does not name the field", d)
	}
}
