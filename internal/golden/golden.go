// Package golden loads and diffs the checked-in characterization artifacts
// (artifacts/fig{2,3,4}_*.{csv,json}) so the conformance suite can assert
// that a fresh sweep — serial or sharded, any worker count — reproduces the
// published grids bit for bit. Failures point at the first divergent
// (frequency, offset) cell rather than dumping whole grids.
package golden

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plugvolt/internal/core"
)

// LoadGridJSON reads and validates a golden grid in Grid.JSON form.
func LoadGridJSON(path string) (*core.Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := core.GridFromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return g, nil
}

// LoadGridCSV parses report.WriteGridCSV output (freq_khz,offset_mv,class
// per line) back into a grid. CSV carries no metadata, so Model/Seed/
// Iterations/Reboots are zero; compare it with DiffCells, not DiffGrids.
func LoadGridCSV(path string) (*core.Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	g := &core.Grid{}
	cells := map[int]map[int]core.Classification{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != "freq_khz,offset_mv,class" {
				return nil, fmt.Errorf("golden: %s: unexpected header %q", path, text)
			}
			continue
		}
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("golden: %s:%d: %d fields", path, line, len(parts))
		}
		freq, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("golden: %s:%d: freq %q", path, line, parts[0])
		}
		off, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("golden: %s:%d: offset %q", path, line, parts[1])
		}
		cls, err := parseClass(parts[2])
		if err != nil {
			return nil, fmt.Errorf("golden: %s:%d: %w", path, line, err)
		}
		if cells[freq] == nil {
			cells[freq] = map[int]core.Classification{}
			g.FreqsKHz = append(g.FreqsKHz, freq)
		}
		if _, dup := cells[freq][off]; dup {
			return nil, fmt.Errorf("golden: %s:%d: duplicate cell (%d, %d)", path, line, freq, off)
		}
		cells[freq][off] = cls
		if len(g.FreqsKHz) == 1 {
			// First row defines the offset axis; later rows must match it.
			g.OffsetsMV = append(g.OffsetsMV, off)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Cells = make([][]core.Classification, len(g.FreqsKHz))
	for fi, freq := range g.FreqsKHz {
		row := make([]core.Classification, len(g.OffsetsMV))
		for oi, off := range g.OffsetsMV {
			cls, ok := cells[freq][off]
			if !ok {
				return nil, fmt.Errorf("golden: %s: missing cell (%d, %d)", path, freq, off)
			}
			row[oi] = cls
		}
		if len(cells[freq]) != len(g.OffsetsMV) {
			return nil, fmt.Errorf("golden: %s: row %d kHz has %d cells, want %d",
				path, freq, len(cells[freq]), len(g.OffsetsMV))
		}
		g.Cells[fi] = row
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return g, nil
}

func parseClass(s string) (core.Classification, error) {
	for _, c := range []core.Classification{core.Safe, core.Fault, core.Crash} {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("golden: unknown class %q", s)
}

// DiffCells compares the axes and cell data of two grids and returns a
// description of the first divergence ("" when identical). Metadata is
// ignored, which is what CSV goldens support.
func DiffCells(want, got *core.Grid) string {
	if d := diffAxis("frequency", want.FreqsKHz, got.FreqsKHz); d != "" {
		return d
	}
	if d := diffAxis("offset", want.OffsetsMV, got.OffsetsMV); d != "" {
		return d
	}
	for fi, f := range want.FreqsKHz {
		for oi, off := range want.OffsetsMV {
			if want.Cells[fi][oi] != got.Cells[fi][oi] {
				return fmt.Sprintf("cell (%d kHz, %d mV): golden %s, fresh %s",
					f, off, want.Cells[fi][oi], got.Cells[fi][oi])
			}
		}
	}
	return ""
}

// DiffGrids compares everything DiffCells does plus the grid metadata.
func DiffGrids(want, got *core.Grid) string {
	switch {
	case want.Model != got.Model:
		return fmt.Sprintf("model: golden %q, fresh %q", want.Model, got.Model)
	case want.Microcode != got.Microcode:
		return fmt.Sprintf("microcode: golden %q, fresh %q", want.Microcode, got.Microcode)
	case want.Seed != got.Seed:
		return fmt.Sprintf("seed: golden %d, fresh %d", want.Seed, got.Seed)
	case want.Iterations != got.Iterations:
		return fmt.Sprintf("iterations: golden %d, fresh %d", want.Iterations, got.Iterations)
	case want.Reboots != got.Reboots:
		return fmt.Sprintf("reboots: golden %d, fresh %d", want.Reboots, got.Reboots)
	}
	return DiffCells(want, got)
}

func diffAxis(name string, want, got []int) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%s axis: golden %d entries, fresh %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("%s axis[%d]: golden %d, fresh %d", name, i, want[i], got[i])
		}
	}
	return ""
}
