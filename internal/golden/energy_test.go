package golden

import (
	"math"
	"testing"

	"plugvolt"
	"plugvolt/internal/fleet"
	"plugvolt/internal/sim"
)

// TestGoldenEnergyDeterminism extends the conformance battery to the joule
// axis: the energy integrator's totals are part of the reproducibility
// contract, so they must be bit-identical (compared as float64 bit
// patterns, not within a tolerance) across every execution shape — sweep
// worker counts on a single machine, fleet worker counts, and the batch
// versus streaming engines.
func TestGoldenEnergyDeterminism(t *testing.T) {
	// Axis 1: characterization sharding. The sweep runs on throwaway shard
	// platforms, so the deployed machine's subsequent guarded window must
	// integrate to the same bits at any worker count.
	for _, fig := range figures {
		fig := fig
		t.Run(fig.base, func(t *testing.T) {
			bits := map[int]uint64{}
			for _, w := range []int{1, 2, 8} {
				sys, err := plugvolt.NewSystem(fig.model, goldenSeed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := plugvolt.QuickSweep()
				cfg.Workers = w
				grid, err := sys.Characterize(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.DeployGuardConfig(grid, plugvolt.DefaultGuardConfig()); err != nil {
					t.Fatal(err)
				}
				sys.RunFor(5 * sim.Millisecond)
				bits[w] = math.Float64bits(sys.Platform.Energy.PackageEnergyJ())
			}
			if bits[1] == 0 {
				t.Fatal("guarded window billed no energy")
			}
			for _, w := range []int{2, 8} {
				if bits[w] != bits[1] {
					t.Errorf("workers=%d: package energy %x diverges from workers=1 %x",
						w, bits[w], bits[1])
				}
			}
		})
	}

	// Axis 2: fleet execution shape. Batch at several worker counts and the
	// streaming engine must agree on the aggregate joules bit for bit.
	base := fleet.Config{Machines: 4, Seed: goldenSeed, Attack: "voltjockey"}
	var want uint64
	for _, w := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = w
		rep, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := math.Float64bits(rep.Aggregate.EnergyJ)
		if w == 1 {
			want = got
			if rep.Aggregate.EnergyJ <= 0 {
				t.Fatal("fleet billed no energy")
			}
			continue
		}
		if got != want {
			t.Errorf("fleet workers=%d: aggregate energy %x diverges from workers=1 %x", w, got, want)
		}
	}
	for _, split := range []struct{ batch, workers int }{
		{1, 1}, {2, 8}, {4, 2},
	} {
		cfg := fleet.StreamConfig{Config: base, Batch: split.batch}
		cfg.Workers = split.workers
		rep, err := fleet.RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := math.Float64bits(rep.Aggregate.EnergyJ); got != want {
			t.Errorf("stream batch=%d workers=%d: aggregate energy %x diverges from batch engine %x",
				split.batch, split.workers, got, want)
		}
	}

	// Epoch slicing (idle campaigns only) must not move a single bit either.
	idle := fleet.Config{Machines: 3, Seed: goldenSeed, Attack: "none", Window: 2 * sim.Millisecond}
	var idleWant uint64
	for _, epochs := range []int{1, 3} {
		cfg := fleet.StreamConfig{Config: idle, Batch: 3, Epochs: epochs}
		rep, err := fleet.RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := math.Float64bits(rep.Aggregate.EnergyJ)
		if epochs == 1 {
			idleWant = got
			continue
		}
		if got != idleWant {
			t.Errorf("epochs=%d: aggregate energy %x diverges from epochs=1 %x", epochs, got, idleWant)
		}
	}
}
