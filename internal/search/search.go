// Package search implements the deterministic glitch-parameter search
// primitives the characterizer and the red-team attacker share:
//
//   - BisectFirst: O(log N) binary search for the first index where a
//     monotone predicate flips, with every probe cross-checked by the
//     caller (a probe that contradicts monotonicity aborts the search so
//     the caller can fall back to a linear scan);
//   - Anneal: seeded simulated annealing over a small discrete parameter
//     space (frequency, offset, dwell, phase), driven entirely by a
//     splitmix64 stream so a fixed seed replays the exact probe sequence.
//
// The package is deliberately free of platform types: callers supply probe
// closures, so the same machinery searches a characterization row (probe =
// program + settle + measure) and a live victim (probe = glitch + run
// workload). That keeps the determinism argument local — nothing in here
// reads a clock, a map, or global state.
package search

import (
	"errors"
	"fmt"
	"math"

	"plugvolt/internal/rng"
)

// ErrNonMonotone is the sentinel a probe closure returns (wrapped) when it
// detects that the searched predicate is not actually monotone — e.g. the
// characterizer's probe finds a measured outcome contradicting its analytic
// prediction. BisectFirst aborts and surfaces it so the caller can fall
// back to a linear scan.
var ErrNonMonotone = errors.New("search: probed outcomes contradict monotonicity")

// BisectFirst locates the smallest index in [0, n) for which probe
// returns true, assuming the predicate is monotone (false* true*). It
// returns n when the predicate is false everywhere. The second result is
// the number of probe calls issued — the caller's probes-saved accounting.
//
// Monotonicity is the caller's to guarantee: binary search's own probe
// sequence is always mutually consistent with *some* monotone predicate
// (every probe lands strictly between the deepest false and the shallowest
// true seen so far), so a violation can only be detected by knowledge the
// closure itself carries. Callers embed their property check in the probe —
// return an error wrapping ErrNonMonotone — and BisectFirst aborts with it.
// What the search does guarantee on success is boundary adjacency: when
// 0 < first < n, index first was probed true and first-1 was probed false.
func BisectFirst(n int, probe func(i int) (bool, error)) (first, probes int, err error) {
	if n <= 0 {
		return 0, 0, nil
	}
	lo, hi := 0, n // invariant: every probe < lo was false, every probe >= hi was true
	for lo < hi {
		mid := lo + (hi-lo)/2
		v, perr := probe(mid)
		probes++
		if perr != nil {
			return 0, probes, perr
		}
		if v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, probes, nil
}

// Axis is one dimension of the annealer's discrete search space.
type Axis struct {
	// Name labels the axis in traces ("freq", "offset", "dwell", "phase").
	Name string
	// Size is the number of grid points on the axis (indices 0..Size-1).
	Size int
}

// Eval measures one candidate glitch. probe is the 0-based probe ordinal
// (for tracing); state holds one index per axis. It returns the candidate's
// cost (lower is better), whether the glitch faulted the victim, and a
// terminal error (which aborts the search).
type Eval func(probe int, state []int) (cost float64, faulted bool, err error)

// AnnealConfig parameterizes the annealer. The zero value is invalid; use
// DefaultAnnealConfig for sane settings.
type AnnealConfig struct {
	// Seed drives the proposal/acceptance stream (splitmix64-derived);
	// a fixed seed replays the exact probe sequence.
	Seed int64
	// Steps is the number of probes (evaluations) to spend.
	Steps int
	// InitTemp is the Metropolis temperature at step 0; Cool is the
	// geometric decay applied per step (T_k = InitTemp * Cool^k).
	InitTemp, Cool float64
	// MaxStride bounds how far along one axis a proposal may move
	// (uniform in [1, MaxStride]).
	MaxStride int
	// OnProbe, when set, observes every evaluation after it completes —
	// the hook the attack layer uses to emit one search-trace span per
	// probe. Must not mutate state.
	OnProbe func(probe int, state []int, cost float64, faulted, accepted bool)
}

// DefaultAnnealConfig returns the tuning the red-team attacker uses.
func DefaultAnnealConfig(seed int64, steps int) AnnealConfig {
	return AnnealConfig{Seed: seed, Steps: steps, InitTemp: 200, Cool: 0.97, MaxStride: 3}
}

// AnnealResult summarizes one annealing run.
type AnnealResult struct {
	// Probes is the number of evaluations spent.
	Probes int
	// FirstFaultProbe is the 1-based probe ordinal of the first faulting
	// candidate, 0 if no probe faulted — the time-to-first-fault metric.
	FirstFaultProbe int
	// Best is the lowest-cost faulting state found (one index per axis);
	// nil when no candidate faulted.
	Best []int
	// BestCost is Best's cost (math.Inf(1) when Best is nil).
	BestCost float64
	// Accepted counts Metropolis-accepted moves (diagnostic).
	Accepted int
}

// Anneal runs seeded simulated annealing over the axes. The walk starts at
// every axis's midpoint, proposes single-axis strides, and accepts with the
// Metropolis rule under a geometric cooling schedule. All randomness comes
// from one splitmix64 stream seeded by cfg.Seed, so the probe sequence —
// and therefore the result — is a pure function of (axes, cfg, eval).
func Anneal(axes []Axis, cfg AnnealConfig, eval Eval) (*AnnealResult, error) {
	if len(axes) == 0 {
		return nil, errors.New("search: no axes")
	}
	for _, a := range axes {
		if a.Size <= 0 {
			return nil, fmt.Errorf("search: axis %q has size %d", a.Name, a.Size)
		}
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("search: steps %d", cfg.Steps)
	}
	if cfg.InitTemp <= 0 || cfg.Cool <= 0 || cfg.Cool > 1 {
		return nil, fmt.Errorf("search: bad schedule (temp %v, cool %v)", cfg.InitTemp, cfg.Cool)
	}
	stride := cfg.MaxStride
	if stride < 1 {
		stride = 1
	}

	stream := rng.NewSeeded(cfg.Seed)
	cur := make([]int, len(axes))
	for i, a := range axes {
		cur[i] = a.Size / 2
	}
	res := &AnnealResult{BestCost: math.Inf(1)}

	curCost, initFault, err := evalStep(res, cfg, eval, cur, true)
	if err != nil {
		return nil, err
	}
	note(res, cur, curCost, initFault)

	cand := make([]int, len(axes))
	temp := cfg.InitTemp
	for res.Probes < cfg.Steps {
		copy(cand, cur)
		// Single-axis proposal: pick an axis, stride up or down, clamp.
		ax := stream.Intn(len(axes))
		step := 1 + stream.Intn(stride)
		if stream.Float64() < 0.5 {
			step = -step
		}
		cand[ax] += step
		if cand[ax] < 0 {
			cand[ax] = 0
		}
		if cand[ax] >= axes[ax].Size {
			cand[ax] = axes[ax].Size - 1
		}
		cost, faulted, err := evalStep(res, cfg, eval, cand, false)
		if err != nil {
			return nil, err
		}
		note(res, cand, cost, faulted)
		accept := cost <= curCost || stream.Float64() < math.Exp((curCost-cost)/temp)
		if accept {
			copy(cur, cand)
			curCost = cost
			res.Accepted++
		}
		if cfg.OnProbe != nil {
			cfg.OnProbe(res.Probes, cand, cost, faulted, accept)
		}
		temp *= cfg.Cool
	}
	return res, nil
}

// evalStep runs one evaluation, counting the probe.
func evalStep(res *AnnealResult, cfg AnnealConfig, eval Eval, state []int, initial bool) (float64, bool, error) {
	cost, faulted, err := eval(res.Probes, state)
	res.Probes++
	if err != nil {
		return 0, false, err
	}
	if initial && cfg.OnProbe != nil {
		cfg.OnProbe(res.Probes-1, state, cost, faulted, true)
	}
	return cost, faulted, nil
}

// note records fault bookkeeping for one evaluated candidate.
func note(res *AnnealResult, state []int, cost float64, faulted bool) {
	if !faulted {
		return
	}
	if res.FirstFaultProbe == 0 {
		res.FirstFaultProbe = res.Probes // 1-based: Probes was already incremented
	}
	if cost < res.BestCost {
		res.BestCost = cost
		res.Best = append(res.Best[:0], state...)
	}
}
