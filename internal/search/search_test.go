package search

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestBisectFirstFindsEveryBoundary(t *testing.T) {
	const n = 300
	for first := 0; first <= n; first++ {
		got, probes, err := BisectFirst(n, func(i int) (bool, error) { return i >= first, nil })
		if err != nil {
			t.Fatalf("first=%d: %v", first, err)
		}
		if got != first {
			t.Fatalf("first=%d: got %d", first, got)
		}
		if max := 9; probes > max { // ceil(log2(300)) = 9
			t.Fatalf("first=%d: %d probes, want <= %d", first, probes, max)
		}
	}
}

func TestBisectFirstEmptyRange(t *testing.T) {
	got, probes, err := BisectFirst(0, func(int) (bool, error) {
		t.Fatal("probe called on empty range")
		return false, nil
	})
	if err != nil || got != 0 || probes != 0 {
		t.Fatalf("got (%d, %d, %v)", got, probes, err)
	}
}

func TestBisectFirstPropagatesProbeError(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := BisectFirst(100, func(int) (bool, error) { return false, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestBisectFirstSurfacesNonMonotone: detection of a broken invariant
// lives in the probe closure (it knows what the outcome *should* be); the
// search must abort with the closure's wrapped ErrNonMonotone.
func TestBisectFirstSurfacesNonMonotone(t *testing.T) {
	predicted := func(i int) bool { return i >= 40 }
	measured := func(i int) bool { return i >= 40 && i < 45 } // dip above 45
	_, _, err := BisectFirst(100, func(i int) (bool, error) {
		m := measured(i)
		if m != predicted(i) {
			return false, fmt.Errorf("index %d: measured %v, predicted %v: %w",
				i, m, predicted(i), ErrNonMonotone)
		}
		return m, nil
	})
	if !errors.Is(err, ErrNonMonotone) {
		t.Fatalf("expected ErrNonMonotone, got %v", err)
	}
}

// TestBisectFirstAdjacencyProbed: the doc guarantee that the returned
// boundary and its predecessor were both actually probed.
func TestBisectFirstAdjacencyProbed(t *testing.T) {
	for first := 0; first <= 37; first++ {
		probed := map[int]bool{}
		got, _, err := BisectFirst(37, func(i int) (bool, error) {
			probed[i] = true
			return i >= first, nil
		})
		if err != nil || got != first {
			t.Fatalf("first=%d: got %d err %v", first, got, err)
		}
		if got < 37 && !probed[got] {
			t.Fatalf("first=%d: boundary not probed", first)
		}
		if got > 0 && !probed[got-1] {
			t.Fatalf("first=%d: predecessor not probed", first)
		}
	}
}

// landscape is a deterministic test objective: fault iff offset index deep
// enough at the row's frequency; cost prefers shallow faulting glitches.
func landscape(state []int) (float64, bool) {
	freq, off := state[0], state[1]
	onset := 20 + freq // deeper onset at higher axis index
	faulted := off >= onset
	if faulted {
		return float64(off), true
	}
	return 1000 + float64(onset-off), false
}

func TestAnnealDeterministic(t *testing.T) {
	axes := []Axis{{Name: "freq", Size: 30}, {Name: "offset", Size: 70}}
	run := func() (*AnnealResult, []string) {
		var tr []string
		cfg := DefaultAnnealConfig(42, 200)
		cfg.OnProbe = func(p int, s []int, c float64, f, a bool) {
			tr = append(tr, fmt.Sprintf("%d:%v:%.1f:%v:%v", p, s, c, f, a))
		}
		res, err := Anneal(axes, cfg, func(_ int, s []int) (float64, bool, error) {
			c, f := landscape(s)
			return c, f, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tr
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverged:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("probe traces diverged")
	}
	if r1.FirstFaultProbe == 0 {
		t.Fatalf("no fault found: %+v", r1)
	}
	if r1.Best == nil || r1.BestCost == math.Inf(1) {
		t.Fatalf("no best state recorded: %+v", r1)
	}
}

func TestAnnealSeedsDiverge(t *testing.T) {
	axes := []Axis{{Name: "freq", Size: 30}, {Name: "offset", Size: 70}}
	eval := func(_ int, s []int) (float64, bool, error) {
		c, f := landscape(s)
		return c, f, nil
	}
	a, err := Anneal(axes, DefaultAnnealConfig(1, 100), eval)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(axes, DefaultAnnealConfig(2, 100), eval)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("different seeds produced identical runs: %+v", a)
	}
}

// TestAnnealFindsMinimalGlitch: with a generous budget the walk should get
// near the true minimal faulting offset, not merely any faulting one.
func TestAnnealFindsMinimalGlitch(t *testing.T) {
	axes := []Axis{{Name: "freq", Size: 10}, {Name: "offset", Size: 100}}
	res, err := Anneal(axes, DefaultAnnealConfig(7, 600), func(_ int, s []int) (float64, bool, error) {
		c, f := landscape(s)
		return c, f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Global minimum: freq=0, offset=20, cost 20. Accept anything close.
	if res.Best == nil || res.BestCost > 30 {
		t.Fatalf("best %v cost %v, want cost <= 30", res.Best, res.BestCost)
	}
	if res.Probes != 600 {
		t.Fatalf("probes = %d, want the full budget 600", res.Probes)
	}
}

func TestAnnealConfigValidation(t *testing.T) {
	eval := func(_ int, _ []int) (float64, bool, error) { return 0, false, nil }
	cases := []struct {
		axes []Axis
		cfg  AnnealConfig
	}{
		{nil, DefaultAnnealConfig(1, 10)},
		{[]Axis{{Name: "x", Size: 0}}, DefaultAnnealConfig(1, 10)},
		{[]Axis{{Name: "x", Size: 3}}, AnnealConfig{Seed: 1, Steps: 0, InitTemp: 1, Cool: 0.9}},
		{[]Axis{{Name: "x", Size: 3}}, AnnealConfig{Seed: 1, Steps: 5, InitTemp: 0, Cool: 0.9}},
		{[]Axis{{Name: "x", Size: 3}}, AnnealConfig{Seed: 1, Steps: 5, InitTemp: 1, Cool: 1.5}},
	}
	for i, c := range cases {
		if _, err := Anneal(c.axes, c.cfg, eval); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestAnnealPropagatesEvalError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Anneal([]Axis{{Name: "x", Size: 5}}, DefaultAnnealConfig(1, 10),
		func(p int, _ []int) (float64, bool, error) {
			if p == 3 {
				return 0, false, boom
			}
			return 1, false, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
