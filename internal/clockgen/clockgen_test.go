package clockgen

import (
	"math"
	"testing"

	"plugvolt/internal/sim"
)

func cfg() Config {
	return Config{BusMHz: 100, RelockTime: DefaultRelock, MinRatio: 8, MaxRatio: 36, InitialRatio: 32}
}

func newPLL(t *testing.T, s *sim.Simulator) *PLL {
	t.Helper()
	p, err := New(s, cfg())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	s := sim.New(1)
	bad := []Config{
		{BusMHz: 0, MinRatio: 8, MaxRatio: 36, InitialRatio: 8},
		{BusMHz: 100, MinRatio: 0, MaxRatio: 36, InitialRatio: 8},
		{BusMHz: 100, MinRatio: 20, MaxRatio: 10, InitialRatio: 20},
		{BusMHz: 100, MinRatio: 8, MaxRatio: 36, InitialRatio: 40},
		{BusMHz: 100, MinRatio: 8, MaxRatio: 36, InitialRatio: 4},
		{BusMHz: 100, MinRatio: 8, MaxRatio: 36, InitialRatio: 8, RelockTime: -1},
	}
	for i, c := range bad {
		if _, err := New(s, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInitialFrequency(t *testing.T) {
	s := sim.New(1)
	p := newPLL(t, s)
	if p.FreqKHz() != 3_200_000 {
		t.Fatalf("initial freq %d kHz", p.FreqKHz())
	}
	if p.FreqGHz() != 3.2 {
		t.Fatalf("initial freq %v GHz", p.FreqGHz())
	}
	if math.Abs(p.PeriodPS()-312.5) > 1e-9 {
		t.Fatalf("period %v ps", p.PeriodPS())
	}
	if !p.Locked() {
		t.Fatal("fresh PLL not locked")
	}
}

func TestRelockDelay(t *testing.T) {
	s := sim.New(1)
	p := newPLL(t, s)
	if err := p.SetRatio(10); err != nil {
		t.Fatal(err)
	}
	if p.Ratio() != 32 {
		t.Fatalf("ratio changed before relock: %d", p.Ratio())
	}
	if p.Locked() {
		t.Fatal("reported locked during relock")
	}
	if p.PendingRatio() != 10 {
		t.Fatalf("pending = %d", p.PendingRatio())
	}
	s.RunUntil(DefaultRelock)
	if p.Ratio() != 10 || !p.Locked() {
		t.Fatalf("after relock: ratio=%d locked=%v", p.Ratio(), p.Locked())
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	s := sim.New(1)
	p := newPLL(t, s)
	if err := p.SetRatio(5); err == nil {
		t.Fatal("ratio below min accepted")
	}
	if err := p.SetRatio(40); err == nil {
		t.Fatal("ratio above max accepted")
	}
	if p.Commands != 0 {
		t.Fatalf("rejected commands counted: %d", p.Commands)
	}
}

func TestBackToBackCommands(t *testing.T) {
	s := sim.New(1)
	p := newPLL(t, s)
	if err := p.SetRatio(10); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Microsecond) // mid-relock
	if err := p.SetRatio(20); err != nil {
		t.Fatal(err)
	}
	// First command pre-empted before taking effect: the frozen current
	// ratio is still 32 until the second relock completes.
	if p.Ratio() != 32 {
		t.Fatalf("mid pre-empt ratio=%d", p.Ratio())
	}
	s.RunFor(DefaultRelock)
	if p.Ratio() != 20 {
		t.Fatalf("final ratio=%d want 20", p.Ratio())
	}
	if p.Commands != 2 {
		t.Fatalf("Commands=%d", p.Commands)
	}
}

func TestRatioTable(t *testing.T) {
	s := sim.New(1)
	p := newPLL(t, s)
	tab := p.RatioTable()
	if len(tab) != 29 {
		t.Fatalf("table length %d, want 29 (ratios 8..36)", len(tab))
	}
	if tab[0] != 8 || tab[len(tab)-1] != 36 {
		t.Fatalf("table bounds: %d..%d", tab[0], tab[len(tab)-1])
	}
	for i := 1; i < len(tab); i++ {
		if tab[i] != tab[i-1]+1 {
			t.Fatal("table not contiguous")
		}
	}
	mn, mx := p.Range()
	if mn != 8 || mx != 36 {
		t.Fatalf("Range = %d, %d", mn, mx)
	}
	if p.BusMHz() != 100 {
		t.Fatalf("BusMHz = %d", p.BusMHz())
	}
}

func TestRatioTableFullWidthNoOverflow(t *testing.T) {
	s := sim.New(1)
	p, err := New(s, Config{BusMHz: 100, MinRatio: 1, MaxRatio: 255, InitialRatio: 100})
	if err != nil {
		t.Fatal(err)
	}
	tab := p.RatioTable()
	if len(tab) != 255 {
		t.Fatalf("full-width table length %d", len(tab))
	}
}
