// Package clockgen models the core PLL: the clock generator whose output
// frequency is the T_clk side of Eq. 1.
//
// The PLL multiplies a 100 MHz bus clock by a P-state ratio. Ratio changes
// are not instantaneous — the loop relocks over a few microseconds — and the
// running clock carries the cycle-to-cycle jitter that Eq. 1 budgets as
// T_eps. Frequency-side attacks (VoltJockey, CLKSCREW) drive this unit.
package clockgen

import (
	"fmt"

	"plugvolt/internal/sim"
)

// Config describes a PLL.
type Config struct {
	// BusMHz is the reference clock (100 MHz on all evaluated parts).
	BusMHz int
	// RelockTime is the delay from a ratio command to the new frequency
	// being stable at the cores.
	RelockTime sim.Duration
	// MinRatio and MaxRatio bound programmable ratios; commands outside
	// the range are rejected, matching hardware behaviour.
	MinRatio, MaxRatio uint8
	// InitialRatio is the ratio at reset.
	InitialRatio uint8
}

// DefaultRelock is a typical PLL relock time.
const DefaultRelock = 15 * sim.Microsecond

// PLL is one core's clock generator.
type PLL struct {
	simr *sim.Simulator
	cfg  Config

	current  uint8    // ratio at the output now (after relock)
	pending  uint8    // commanded ratio
	switchAt sim.Time // when pending becomes current

	// Commands counts accepted ratio changes.
	Commands uint64
}

// New builds a PLL. The initial ratio must be within range.
func New(s *sim.Simulator, cfg Config) (*PLL, error) {
	if cfg.BusMHz <= 0 {
		return nil, fmt.Errorf("clockgen: bus clock must be positive, got %d", cfg.BusMHz)
	}
	if cfg.MinRatio == 0 || cfg.MaxRatio < cfg.MinRatio {
		return nil, fmt.Errorf("clockgen: bad ratio range [%d, %d]", cfg.MinRatio, cfg.MaxRatio)
	}
	if cfg.InitialRatio < cfg.MinRatio || cfg.InitialRatio > cfg.MaxRatio {
		return nil, fmt.Errorf("clockgen: initial ratio %d outside [%d, %d]",
			cfg.InitialRatio, cfg.MinRatio, cfg.MaxRatio)
	}
	if cfg.RelockTime < 0 {
		return nil, fmt.Errorf("clockgen: negative relock time")
	}
	return &PLL{
		simr:    s,
		cfg:     cfg,
		current: cfg.InitialRatio,
		pending: cfg.InitialRatio,
	}, nil
}

// SetRatio commands a new multiplier. Returns an error if out of range.
func (p *PLL) SetRatio(ratio uint8) error {
	if ratio < p.cfg.MinRatio || ratio > p.cfg.MaxRatio {
		return fmt.Errorf("clockgen: ratio %d outside [%d, %d]", ratio, p.cfg.MinRatio, p.cfg.MaxRatio)
	}
	p.current = p.ratioAt(p.simr.Now())
	p.pending = ratio
	p.switchAt = p.simr.Now() + p.cfg.RelockTime
	p.Commands++
	return nil
}

// ratioAt resolves the effective ratio at time t.
func (p *PLL) ratioAt(t sim.Time) uint8 {
	if t >= p.switchAt {
		return p.pending
	}
	return p.current
}

// Ratio returns the ratio currently driving the core.
func (p *PLL) Ratio() uint8 { return p.ratioAt(p.simr.Now()) }

// PendingRatio returns the commanded (possibly not yet locked) ratio.
func (p *PLL) PendingRatio() uint8 { return p.pending }

// Locked reports whether the last command has taken effect.
func (p *PLL) Locked() bool { return p.Ratio() == p.pending }

// FreqKHz returns the current output frequency in kHz.
func (p *PLL) FreqKHz() int { return int(p.Ratio()) * p.cfg.BusMHz * 1000 }

// FreqGHz returns the current output frequency in GHz.
func (p *PLL) FreqGHz() float64 { return float64(p.FreqKHz()) / 1e6 }

// PeriodPS returns the current clock period in picoseconds.
func (p *PLL) PeriodPS() float64 { return 1e9 / float64(p.FreqKHz()) }

// Range returns the programmable ratio bounds.
func (p *PLL) Range() (min, max uint8) { return p.cfg.MinRatio, p.cfg.MaxRatio }

// BusMHz returns the reference clock in MHz.
func (p *PLL) BusMHz() int { return p.cfg.BusMHz }

// RatioTable returns every programmable ratio, ascending — the paper's
// "frequency table" that Algorithm 2 enumerates at 0.1 GHz resolution
// (one ratio step = 100 MHz at a 100 MHz bus clock).
func (p *PLL) RatioTable() []uint8 {
	out := make([]uint8, 0, p.cfg.MaxRatio-p.cfg.MinRatio+1)
	for r := p.cfg.MinRatio; ; r++ {
		out = append(out, r)
		if r == p.cfg.MaxRatio {
			break
		}
	}
	return out
}
