package core

import (
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/sim"
)

func newPlatform(t *testing.T, model string, seed int64) *cpu.Platform {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// quickSweepConfig is a coarser, faster variant of the paper's sweep for
// unit tests (5 mV steps, 200k iterations).
func quickSweepConfig() CharacterizerConfig {
	cfg := DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	return cfg
}

func TestCharacterizerValidation(t *testing.T) {
	p := newPlatform(t, "skylake", 1)
	if _, err := NewCharacterizer(nil, DefaultCharacterizerConfig()); err == nil {
		t.Fatal("nil platform accepted")
	}
	bad := DefaultCharacterizerConfig()
	bad.VictimCore = bad.DriverCore
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("same victim/driver accepted")
	}
	bad = DefaultCharacterizerConfig()
	bad.VictimCore = 99
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("bogus victim core accepted")
	}
	bad = DefaultCharacterizerConfig()
	bad.Iterations = 0
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad = DefaultCharacterizerConfig()
	bad.OffsetStepMV = 1
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("positive step accepted")
	}
	bad = DefaultCharacterizerConfig()
	bad.OffsetStartMV = 5
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("positive start accepted")
	}
	bad = DefaultCharacterizerConfig()
	bad.OffsetEndMV = -1
	bad.OffsetStartMV = -100
	if _, err := NewCharacterizer(p, bad); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestCharacterizationSweepSkyLake(t *testing.T) {
	p := newPlatform(t, "skylake", 42)
	var progressRows int
	cfg := quickSweepConfig()
	cfg.Progress = func(freqKHz, done, total int) { progressRows = done }
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("sweep produced invalid grid: %v", err)
	}
	if g.Model != "Sky Lake" || g.Microcode != "0xf0" {
		t.Fatalf("grid identity: %s / %s", g.Model, g.Microcode)
	}
	if progressRows != len(g.FreqsKHz) {
		t.Fatalf("progress rows %d", progressRows)
	}
	if len(g.FreqsKHz) != 29 {
		t.Fatalf("frequency rows %d, want 29 (0.8..3.6 GHz at 0.1)", len(g.FreqsKHz))
	}

	for fi, f := range g.FreqsKHz {
		row := g.Cells[fi]
		// Shallow end must be safe; deep end must not be.
		if row[0] != Safe {
			t.Errorf("%d kHz: -5 mV not safe", f)
		}
		onset, ok := g.OnsetMV(f)
		if !ok {
			t.Errorf("%d kHz: entire sweep safe — no unsafe region found", f)
			continue
		}
		crash, ok := g.CrashMV(f)
		if !ok {
			t.Errorf("%d kHz: no crash within sweep", f)
			continue
		}
		if onset <= crash {
			t.Errorf("%d kHz: onset %d not shallower than crash %d", f, onset, crash)
		}
		// A fault band (unsafe but running) exists: the attacker's window.
		if g.FaultBandWidthMV(f) <= 0 {
			t.Errorf("%d kHz: no fault band", f)
		}
	}

	// Shape claim of Fig. 2: onset magnitude at the top frequency is
	// well below the bottom frequency's.
	onLow, _ := g.OnsetMV(g.FreqsKHz[0])
	onHigh, _ := g.OnsetMV(g.FreqsKHz[len(g.FreqsKHz)-1])
	if onHigh <= onLow+20 {
		t.Errorf("onset did not shrink with frequency: %d mV at fmin, %d mV at fmax", onLow, onHigh)
	}

	// The sweep crossed crash boundaries, so reboots must be recorded.
	if g.Reboots == 0 {
		t.Error("no reboots despite crash cells")
	}

	// Maximal safe state is safe everywhere, per definition.
	msv := g.MaximalSafeOffsetMV(0)
	if msv >= 0 {
		t.Fatalf("maximal safe state %d not an undervolt", msv)
	}
	for _, f := range g.FreqsKHz {
		if cl, ok := g.At(f, msv); !ok || cl != Safe {
			t.Fatalf("maximal safe %d mV not safe at %d kHz (%v)", msv, f, cl)
		}
	}
}

func TestCharacterizationDeterministicReplay(t *testing.T) {
	run := func() *Grid {
		p := newPlatform(t, "skylake", 77)
		cfg := quickSweepConfig()
		cfg.OffsetEndMV = -200 // shorter for speed
		ch, err := NewCharacterizer(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ch.Run()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := run(), run()
	for fi := range g1.Cells {
		for oi := range g1.Cells[fi] {
			if g1.Cells[fi][oi] != g2.Cells[fi][oi] {
				t.Fatalf("replay diverged at cell (%d, %d)", fi, oi)
			}
		}
	}
}

func TestCharacterizationAllThreeModels(t *testing.T) {
	// The paper characterizes three generations; each must produce a
	// structurally sane grid (Figs. 2, 3, 4).
	if testing.Short() {
		t.Skip("full tri-model sweep in -short mode")
	}
	for _, model := range []string{"skylake", "kabylaker", "cometlake"} {
		model := model
		t.Run(model, func(t *testing.T) {
			p := newPlatform(t, model, 7)
			cfg := quickSweepConfig()
			ch, err := NewCharacterizer(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ch.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			unsafe := g.UnsafeSet()
			if len(unsafe.OnsetMV) != len(g.FreqsKHz) {
				t.Errorf("%s: only %d/%d frequencies have unsafe regions",
					model, len(unsafe.OnsetMV), len(g.FreqsKHz))
			}
			msv := g.MaximalSafeOffsetMV(0)
			if msv >= 0 || msv < -300 {
				t.Errorf("%s: implausible maximal safe state %d mV", model, msv)
			}
		})
	}
}

func TestSweepLeavesPlatformRestored(t *testing.T) {
	p := newPlatform(t, "skylake", 5)
	cfg := quickSweepConfig()
	cfg.OffsetEndMV = -150
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Run(); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(1 * sim.Millisecond)
	p.SettleAll()
	c := p.Core(cfg.VictimCore)
	if c.OffsetMV() != 0 {
		t.Fatalf("sweep left offset %d", c.OffsetMV())
	}
	if p.Crashed() {
		t.Fatal("sweep left platform crashed")
	}
}

func TestPerClassOnsetOrdering(t *testing.T) {
	// Measured version of the paper's claim that imul is the most
	// fault-prone instruction: sweeping the same machine with shallower
	// instruction classes must find deeper (more negative) onsets.
	onsetAt := func(class cpu.Class, freqKHz int) int {
		p := newPlatform(t, "skylake", 61)
		cfg := quickSweepConfig()
		cfg.Class = class
		ch, err := NewCharacterizer(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ch.Run()
		if err != nil {
			t.Fatal(err)
		}
		onset, ok := g.OnsetMV(freqKHz)
		if !ok {
			t.Fatalf("class %s: no onset at %d kHz", class, freqKHz)
		}
		return onset
	}
	const freq = 3_200_000
	imul := onsetAt(cpu.ClassIMul, freq)
	aes := onsetAt(cpu.ClassAES, freq)
	fma := onsetAt(cpu.ClassFMA, freq)
	if !(imul > aes && aes > fma) {
		t.Fatalf("onset ordering violated: imul %d, aes %d, fma %d (want imul shallowest)",
			imul, aes, fma)
	}
}

func TestDefaultClassIsIMul(t *testing.T) {
	cfg := DefaultCharacterizerConfig()
	if cfg.Class != cpu.ClassIMul {
		t.Fatalf("default EXECUTE class %q", cfg.Class)
	}
	// Empty class falls back to imul rather than failing.
	p := newPlatform(t, "skylake", 62)
	cfg = quickSweepConfig()
	cfg.Class = ""
	cfg.OffsetEndMV = -150
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Run(); err != nil {
		t.Fatal(err)
	}
}
