package core

import (
	"testing"
)

// runGrid characterizes skylake with a short sweep under the given seed.
func runGrid(t *testing.T, seed int64) *Grid {
	t.Helper()
	p := newPlatform(t, "skylake", seed)
	cfg := quickSweepConfig()
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAggregateGridsConservative(t *testing.T) {
	grids := []*Grid{runGrid(t, 101), runGrid(t, 102), runGrid(t, 103)}
	agg, err := AggregateGrids(grids)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Validate(); err != nil {
		t.Fatal(err)
	}
	if agg.Iterations != grids[0].Iterations*3 {
		t.Fatalf("composite iterations %d", agg.Iterations)
	}
	if agg.Seed != -1 {
		t.Fatalf("composite seed %d", agg.Seed)
	}
	// Conservatism: the aggregate is never safer than any constituent.
	for fi := range agg.Cells {
		for oi := range agg.Cells[fi] {
			for _, g := range grids {
				if agg.Cells[fi][oi] < g.Cells[fi][oi] {
					t.Fatalf("aggregate cell (%d,%d) safer than a run", fi, oi)
				}
			}
		}
	}
	// Aggregate onset is the shallowest across runs at every frequency.
	for _, f := range agg.FreqsKHz {
		aggOn, ok := agg.OnsetMV(f)
		if !ok {
			t.Fatalf("aggregate lost onset at %d", f)
		}
		for _, g := range grids {
			if on, ok := g.OnsetMV(f); ok && aggOn < on {
				t.Fatalf("aggregate onset %d deeper than run onset %d at %d kHz", aggOn, on, f)
			}
		}
	}
	rb := 0
	for _, g := range grids {
		rb += g.Reboots
	}
	if agg.Reboots != rb {
		t.Fatalf("aggregate reboots %d want %d", agg.Reboots, rb)
	}
}

func TestAggregateGridsValidation(t *testing.T) {
	if _, err := AggregateGrids(nil); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	g1 := runGrid(t, 104)
	bad := runGrid(t, 105)
	bad.Model = "Other Lake"
	if _, err := AggregateGrids([]*Grid{g1, bad}); err == nil {
		t.Fatal("mixed models accepted")
	}
	short := runGrid(t, 106)
	short.FreqsKHz = short.FreqsKHz[:5]
	short.Cells = short.Cells[:5]
	if _, err := AggregateGrids([]*Grid{g1, short}); err == nil {
		t.Fatal("mismatched axes accepted")
	}
	shifted := runGrid(t, 107)
	shifted.FreqsKHz[0] += 1000
	if _, err := AggregateGrids([]*Grid{g1, shifted}); err == nil {
		t.Fatal("shifted frequency axis accepted")
	}
	offShift := runGrid(t, 108)
	offShift.OffsetsMV[1] = -6
	if _, err := AggregateGrids([]*Grid{g1, offShift}); err == nil {
		t.Fatal("shifted offset axis accepted")
	}
	invalid := &Grid{}
	if _, err := AggregateGrids([]*Grid{invalid}); err == nil {
		t.Fatal("invalid grid accepted")
	}
}

func TestOnsetSpreads(t *testing.T) {
	grids := []*Grid{runGrid(t, 111), runGrid(t, 112), runGrid(t, 113)}
	spreads, err := OnsetSpreads(grids)
	if err != nil {
		t.Fatal(err)
	}
	if len(spreads) != len(grids[0].FreqsKHz) {
		t.Fatalf("spread rows %d", len(spreads))
	}
	for _, sp := range spreads {
		if sp.Runs != 3 {
			t.Fatalf("%d kHz: runs %d", sp.FreqKHz, sp.Runs)
		}
		if sp.MinMV > sp.MaxMV {
			t.Fatalf("%d kHz: min %d > max %d", sp.FreqKHz, sp.MinMV, sp.MaxMV)
		}
		if sp.MeanMV < float64(sp.MinMV) || sp.MeanMV > float64(sp.MaxMV) {
			t.Fatalf("%d kHz: mean %v outside [%d, %d]", sp.FreqKHz, sp.MeanMV, sp.MinMV, sp.MaxMV)
		}
		// Run-to-run onset variance is real (binomial detection near the
		// statistical threshold) and is precisely why the guard carries a
		// margin; bound it loosely for sanity.
		if sp.StdMV < 0 || sp.StdMV > 60 {
			t.Fatalf("%d kHz: implausible onset std %v mV", sp.FreqKHz, sp.StdMV)
		}
		if sp.MinMV < -350 || sp.MaxMV >= 0 {
			t.Fatalf("%d kHz: onset range [%d, %d] outside the sweep", sp.FreqKHz, sp.MinMV, sp.MaxMV)
		}
	}
	if _, err := OnsetSpreads(nil); err == nil {
		t.Fatal("empty spreads accepted")
	}
}
