// Package core implements the paper's contribution: empirical safe/unsafe
// state characterization of a system (Sec. 4.2, Algorithm 2), the unsafe-set
// representation the countermeasure consults, the maximal-safe-state notion
// of Sec. 5, and the polling kernel module of Sec. 4.3 (Algorithm 3).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Classification of one (frequency, offset) grid point.
type Classification uint8

// Grid-point classes. Crash marks both observed crashes and deeper offsets
// at the same frequency that the sweep never reaches (the paper stops a
// frequency's sweep at the first crash; monotonicity of Eq. 1 in voltage
// justifies labelling everything deeper as at-least-crash).
const (
	Safe Classification = iota
	Fault
	Crash
)

func (c Classification) String() string {
	switch c {
	case Safe:
		return "safe"
	case Fault:
		return "fault"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Grid is the full characterization result for one machine: the paper's
// Figs. 2/3/4 in data form.
type Grid struct {
	Model     string `json:"model"`
	Microcode string `json:"microcode"`
	Seed      int64  `json:"seed"`
	// Iterations is the EXECUTE-thread loop length per grid point.
	Iterations int `json:"iterations"`
	// FreqsKHz are the swept frequencies, ascending.
	FreqsKHz []int `json:"freqs_khz"`
	// OffsetsMV are the swept offsets, from -1 downward (e.g. -1..-300).
	OffsetsMV []int `json:"offsets_mv"`
	// Cells[f][o] classifies (FreqsKHz[f], OffsetsMV[o]).
	Cells [][]Classification `json:"cells"`
	// Reboots is the number of crash recoveries the sweep needed.
	Reboots int `json:"reboots"`
}

// Validate checks structural consistency.
func (g *Grid) Validate() error {
	if len(g.FreqsKHz) == 0 || len(g.OffsetsMV) == 0 {
		return errors.New("core: empty grid axes")
	}
	if !sort.IntsAreSorted(g.FreqsKHz) {
		return errors.New("core: frequencies not ascending")
	}
	for i := 1; i < len(g.OffsetsMV); i++ {
		if g.OffsetsMV[i] >= g.OffsetsMV[i-1] {
			return errors.New("core: offsets not strictly descending")
		}
	}
	if g.OffsetsMV[0] >= 0 {
		return errors.New("core: offsets must be negative (undervolt sweep)")
	}
	if len(g.Cells) != len(g.FreqsKHz) {
		return fmt.Errorf("core: %d cell rows for %d frequencies", len(g.Cells), len(g.FreqsKHz))
	}
	for i, row := range g.Cells {
		if len(row) != len(g.OffsetsMV) {
			return fmt.Errorf("core: row %d has %d cells, want %d", i, len(row), len(g.OffsetsMV))
		}
	}
	return nil
}

// freqIndex locates freqKHz exactly; ok=false if unswept.
func (g *Grid) freqIndex(freqKHz int) (int, bool) {
	i := sort.SearchInts(g.FreqsKHz, freqKHz)
	if i < len(g.FreqsKHz) && g.FreqsKHz[i] == freqKHz {
		return i, true
	}
	return 0, false
}

// offsetIndex locates offsetMV on the descending offset axis.
func (g *Grid) offsetIndex(offsetMV int) (int, bool) {
	// Offsets descend: use binary search on the negated values.
	i := sort.Search(len(g.OffsetsMV), func(i int) bool { return g.OffsetsMV[i] <= offsetMV })
	if i < len(g.OffsetsMV) && g.OffsetsMV[i] == offsetMV {
		return i, true
	}
	return 0, false
}

// At classifies a swept grid point; ok=false when the point is outside the
// sweep (positive offsets and offsets shallower than the first column are
// Safe by construction and reported as such with ok=true).
func (g *Grid) At(freqKHz, offsetMV int) (Classification, bool) {
	fi, ok := g.freqIndex(freqKHz)
	if !ok {
		return Safe, false
	}
	if offsetMV > g.OffsetsMV[0] {
		// Shallower than the sweep start (incl. zero/overvolt): safe zone.
		return Safe, true
	}
	if offsetMV < g.OffsetsMV[len(g.OffsetsMV)-1] {
		// Deeper than the sweep floor: at least as bad as the floor.
		return g.Cells[fi][len(g.OffsetsMV)-1], true
	}
	oi, ok := g.offsetIndex(offsetMV)
	if !ok {
		return Safe, false
	}
	return g.Cells[fi][oi], true
}

// OnsetMV returns the first (shallowest) offset at which freqKHz leaves the
// safe region; ok=false if the whole sweep stayed safe at that frequency.
func (g *Grid) OnsetMV(freqKHz int) (int, bool) {
	fi, found := g.freqIndex(freqKHz)
	if !found {
		return 0, false
	}
	for oi, cl := range g.Cells[fi] {
		if cl != Safe {
			return g.OffsetsMV[oi], true
		}
	}
	return 0, false
}

// CrashMV returns the first offset at which freqKHz crashes.
func (g *Grid) CrashMV(freqKHz int) (int, bool) {
	fi, found := g.freqIndex(freqKHz)
	if !found {
		return 0, false
	}
	for oi, cl := range g.Cells[fi] {
		if cl == Crash {
			return g.OffsetsMV[oi], true
		}
	}
	return 0, false
}

// FaultBandWidthMV returns the width (mV) of the fault-but-no-crash band at
// freqKHz — the exploitable window attackers live in.
func (g *Grid) FaultBandWidthMV(freqKHz int) int {
	onset, ok := g.OnsetMV(freqKHz)
	if !ok {
		return 0
	}
	crash, ok := g.CrashMV(freqKHz)
	if !ok {
		// Faults but never crashed within the sweep: band extends to floor.
		return onset - g.OffsetsMV[len(g.OffsetsMV)-1]
	}
	return onset - crash
}

// MaximalSafeOffsetMV computes the paper's maximal safe state: the deepest
// swept offset that is Safe at *every* swept frequency, shifted shallower
// by an optional guard band in mV. Returns 0 if even the shallowest swept
// offset is unsafe somewhere (no undervolt is universally safe).
func (g *Grid) MaximalSafeOffsetMV(guardBandMV int) int {
	if guardBandMV < 0 {
		guardBandMV = 0
	}
	allSafe := func(oi int) bool {
		for fi := range g.FreqsKHz {
			if g.Cells[fi][oi] != Safe {
				return false
			}
		}
		return true
	}
	msv := 0
	for oi := range g.OffsetsMV { // shallow -> deep
		if !allSafe(oi) {
			break
		}
		msv = g.OffsetsMV[oi]
	}
	msv += guardBandMV
	if msv > 0 {
		msv = 0
	}
	return msv
}

// UnsafeSet compiles the lookup structure Algorithm 3 polls against.
func (g *Grid) UnsafeSet() *UnsafeSet {
	u := &UnsafeSet{
		Model:    g.Model,
		FreqsKHz: append([]int(nil), g.FreqsKHz...),
		OnsetMV:  make(map[int]int, len(g.FreqsKHz)),
		FloorMV:  g.OffsetsMV[len(g.OffsetsMV)-1],
	}
	for _, f := range g.FreqsKHz {
		if onset, ok := g.OnsetMV(f); ok {
			u.OnsetMV[f] = onset
		}
	}
	u.precomputeFallback()
	return u
}

// MarshalJSON round-trips through a shadow type to keep the exported shape
// stable; Grid itself is plain data so the default marshalling is fine.
func (g *Grid) JSON() ([]byte, error) { return json.MarshalIndent(g, "", " ") }

// GridFromJSON parses and validates a serialized grid.
func GridFromJSON(data []byte) (*Grid, error) {
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// UnsafeSet is the compiled safe/unsafe boundary: for each characterized
// frequency, the shallowest offset that is no longer safe. Membership is
// "offset at or below the boundary". Frequencies between characterized
// points resolve to the more conservative (shallower) neighbouring
// boundary, so interpolation can only over-protect, never under-protect.
type UnsafeSet struct {
	Model    string      `json:"model"`
	FreqsKHz []int       `json:"freqs_khz"`
	OnsetMV  map[int]int `json:"onset_mv"`
	// FloorMV is the deepest swept offset (context for consumers).
	FloorMV int `json:"floor_mv"`

	// fallbackMV/fallbackOK cache the global shallowest onset, the
	// conservative answer for off-grid frequencies whose neighbours are
	// entirely safe. The constructors (Grid.UnsafeSet, UnsafeSetFromJSON)
	// precompute it so that case never iterates OnsetMV on the guard's poll
	// path; hand-built literals (fallbackReady false) fall back to a live
	// scan with identical results.
	fallbackMV    int
	fallbackOK    bool
	fallbackReady bool
}

// precomputeFallback caches the global shallowest onset boundary.
func (u *UnsafeSet) precomputeFallback() {
	u.fallbackMV, u.fallbackOK = 0, false
	for _, onset := range u.OnsetMV {
		if !u.fallbackOK || onset > u.fallbackMV {
			u.fallbackMV = onset
			u.fallbackOK = true
		}
	}
	u.fallbackReady = true
}

// boundaryFor resolves the onset boundary for an arbitrary frequency.
// ok=false means no frequency in the set faults (nothing to protect).
func (u *UnsafeSet) boundaryFor(freqKHz int) (int, bool) {
	if len(u.OnsetMV) == 0 {
		return 0, false
	}
	if onset, ok := u.OnsetMV[freqKHz]; ok {
		return onset, true
	}
	// Off-grid frequency: take the shallower (more conservative) of the
	// two neighbours that have boundaries.
	i := sort.SearchInts(u.FreqsKHz, freqKHz)
	best := 0
	found := false
	consider := func(idx int) {
		if idx < 0 || idx >= len(u.FreqsKHz) {
			return
		}
		if onset, ok := u.OnsetMV[u.FreqsKHz[idx]]; ok {
			if !found || onset > best {
				best = onset
				found = true
			}
		}
	}
	consider(i - 1)
	consider(i)
	if !found {
		// Neighbours entirely safe; fall back to the global shallowest
		// boundary for conservatism.
		if u.fallbackReady {
			return u.fallbackMV, u.fallbackOK
		}
		for _, onset := range u.OnsetMV {
			if !found || onset > best {
				best = onset
				found = true
			}
		}
	}
	return best, found
}

// Contains reports whether (freqKHz, offsetMV) is an unsafe system state.
func (u *UnsafeSet) Contains(freqKHz, offsetMV int) bool {
	b, ok := u.boundaryFor(freqKHz)
	if !ok {
		return false
	}
	return offsetMV <= b
}

// SafetyMarginMV returns how far (mV) the state is from the unsafe
// boundary; positive = safe headroom, <=0 = inside the unsafe region.
func (u *UnsafeSet) SafetyMarginMV(freqKHz, offsetMV int) int {
	b, ok := u.boundaryFor(freqKHz)
	if !ok {
		return offsetMV - u.FloorMV
	}
	return offsetMV - b
}

// JSON serializes the set.
func (u *UnsafeSet) JSON() ([]byte, error) { return json.MarshalIndent(u, "", " ") }

// UnsafeSetFromJSON parses a serialized set.
func UnsafeSetFromJSON(data []byte) (*UnsafeSet, error) {
	var u UnsafeSet
	if err := json.Unmarshal(data, &u); err != nil {
		return nil, err
	}
	u.precomputeFallback()
	return &u, nil
}
