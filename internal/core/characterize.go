package core

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/msr"
	"plugvolt/internal/pstate"
	"plugvolt/internal/rng"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// CharacterizerConfig parameterizes the Algorithm 2 sweep.
type CharacterizerConfig struct {
	// VictimCore runs the EXECUTE thread; DriverCore hosts the DVFS thread
	// (distinct cores, as in the paper's two-thread framework).
	VictimCore, DriverCore int
	// Iterations is the EXECUTE-thread imul loop length per grid point
	// (paper: one million).
	Iterations int
	// OffsetStartMV..OffsetEndMV, stepped by OffsetStepMV (negative),
	// define the undervolt axis. Paper: V = {-1, -2, ..., -300}.
	OffsetStartMV, OffsetEndMV, OffsetStepMV int
	// SettleWait is extra dwell after programming a point before measuring,
	// on top of waiting for the regulator to finish slewing.
	SettleWait sim.Duration
	// Class selects the EXECUTE-thread instruction class. The paper uses
	// imul ("the imul instruction has the maximum probability of being
	// faulted"); sweeping other classes measures that claim — shallower
	// classes must show deeper onsets.
	Class cpu.Class
	// Workers is the number of frequency-row shards swept concurrently by
	// the sharded engine (ShardedCharacterizer). <=0 means runtime
	// GOMAXPROCS. The serial Characterizer ignores it. Results are
	// bit-for-bit independent of the worker count: every row derives its
	// RNG stream from seed^freqKHz, not from sweep order.
	Workers int
	// Strategy selects how the sharded engine explores each frequency row.
	// StrategySweep (or "") measures every offset cell left to right;
	// StrategyBisect predicts the row analytically, verifies the fault and
	// crash onsets with O(log N) measured probes, and falls back to a full
	// linear sweep on any row where a measured probe contradicts the
	// prediction. Both strategies produce byte-identical grids. The serial
	// Characterizer only implements StrategySweep.
	Strategy string
	// Progress, when set, is called after each frequency row completes.
	// Under the sharded engine rows finish out of order: freqKHz names the
	// row that just completed and rowsDone counts completions so far.
	// Invocations are serialized; the callback never runs concurrently.
	Progress func(freqKHz, rowsDone, rowsTotal int)
	// Telemetry, when set, receives row/cell/reboot counters, per-worker
	// utilization series, and a journal event per completed row from the
	// sharded engine. All updates happen in the merge loop, so telemetry
	// cannot perturb the grid or its worker-count invariance. Per-worker
	// series reflect the Go scheduler's row assignment and therefore vary
	// run to run; everything else is deterministic.
	Telemetry *telemetry.Set
}

// Sweep strategies accepted by CharacterizerConfig.Strategy.
const (
	// StrategySweep measures every offset cell (Algorithm 2 as written).
	StrategySweep = "sweep"
	// StrategyBisect locates each row's fault and crash onsets by
	// model-guided binary search, with a verified linear-scan fallback.
	StrategyBisect = "bisect"
)

// DefaultCharacterizerConfig matches the paper's sweep.
func DefaultCharacterizerConfig() CharacterizerConfig {
	return CharacterizerConfig{
		VictimCore:    1,
		DriverCore:    0,
		Iterations:    1_000_000,
		OffsetStartMV: -1,
		OffsetEndMV:   -300,
		OffsetStepMV:  -1,
		SettleWait:    50 * sim.Microsecond,
		Class:         cpu.ClassIMul,
	}
}

// Characterizer runs the two-thread characterization framework of Sec. 4.2
// against a platform: the DVFS thread walks the (frequency, offset) grid
// through cpupower and MSR 0x150, and the EXECUTE thread's imul loop
// detects faults.
type Characterizer struct {
	P   *cpu.Platform
	cfg CharacterizerConfig
	cp  *pstate.CPUPower
	// probes counts measurePoint calls — the sweep-vs-bisect economics the
	// sharded engine reports through SearchStats.
	probes int
}

// validateConfig checks a sweep config against a core count (shared by the
// serial and sharded engines, which validate before any platform exists).
func validateConfig(cfg CharacterizerConfig, numCores int) error {
	if cfg.VictimCore == cfg.DriverCore {
		return errors.New("core: victim and driver must be distinct cores")
	}
	for _, c := range []int{cfg.VictimCore, cfg.DriverCore} {
		if c < 0 || c >= numCores {
			return fmt.Errorf("core: no core %d", c)
		}
	}
	if cfg.Iterations <= 0 {
		return fmt.Errorf("core: iterations %d", cfg.Iterations)
	}
	if cfg.OffsetStepMV >= 0 {
		return errors.New("core: offset step must be negative")
	}
	if cfg.OffsetStartMV >= 0 || cfg.OffsetEndMV > cfg.OffsetStartMV {
		return fmt.Errorf("core: bad offset range %d..%d", cfg.OffsetStartMV, cfg.OffsetEndMV)
	}
	switch cfg.Strategy {
	case "", StrategySweep, StrategyBisect:
	default:
		return fmt.Errorf("core: unknown sweep strategy %q", cfg.Strategy)
	}
	return nil
}

// NewCharacterizer validates the config against the platform.
func NewCharacterizer(p *cpu.Platform, cfg CharacterizerConfig) (*Characterizer, error) {
	if p == nil {
		return nil, errors.New("core: nil platform")
	}
	if err := validateConfig(cfg, p.NumCores()); err != nil {
		return nil, err
	}
	mgr, err := pstate.NewManager(p.Sim, p, nil)
	if err != nil {
		return nil, err
	}
	return &Characterizer{P: p, cfg: cfg, cp: &pstate.CPUPower{M: mgr}}, nil
}

// offsetAxis materializes a sweep config's offset axis.
func offsetAxis(cfg CharacterizerConfig) []int {
	var out []int
	for o := cfg.OffsetStartMV; o >= cfg.OffsetEndMV; o += cfg.OffsetStepMV {
		out = append(out, o)
	}
	return out
}

// offsets materializes the sweep's offset axis.
func (c *Characterizer) offsets() []int { return offsetAxis(c.cfg) }

// Run executes Algorithm 2 and returns the characterization grid.
func (c *Characterizer) Run() (*Grid, error) {
	if c.cfg.Strategy == StrategyBisect {
		return nil, errors.New("core: bisect strategy requires the sharded engine (ShardedCharacterizer)")
	}
	p := c.P
	freqs := p.FreqTableKHz()
	offs := c.offsets()
	g := &Grid{
		Model:      p.Spec.Codename,
		Microcode:  p.Spec.Microcode,
		Seed:       p.Seed(),
		Iterations: c.cfg.Iterations,
		FreqsKHz:   freqs,
		OffsetsMV:  offs,
		Cells:      make([][]Classification, len(freqs)),
	}
	// One contiguous slab backs every row: a single allocation for the whole
	// grid, and better locality when the boundary extraction scans it.
	cells := make([]Classification, len(freqs)*len(offs))
	rebootsBefore := p.Reboots

	// Algorithm 2 lines 6-7: record the normal operating point.
	origStatus, err := p.MSRFile(c.cfg.VictimCore).Read(msr.IA32PerfStatus)
	if err != nil {
		return nil, err
	}
	origRatio, _ := msr.DecodePerfStatus(origStatus)
	origFreqKHz := msr.RatioToKHz(origRatio, p.Spec.BusMHz)

	for fi, freqKHz := range freqs {
		row := cells[fi*len(offs) : (fi+1)*len(offs) : (fi+1)*len(offs)]
		if err := c.sweepRowInto(row, freqKHz, offs); err != nil {
			return nil, err
		}
		g.Cells[fi] = row
		// Lines 13-14: restore normal frequency and voltage between rows.
		if err := c.restore(origFreqKHz); err != nil {
			return nil, err
		}
		if c.cfg.Progress != nil {
			c.cfg.Progress(freqKHz, fi+1, len(freqs))
		}
	}
	g.Reboots = p.Reboots - rebootsBefore
	return g, nil
}

// sweepRow runs Algorithm 2's inner loop for one frequency: pin the row
// frequency through cpupower, walk the offset axis until the first crash,
// and label everything deeper Crash (Eq. 1 is monotone in V, so deeper
// offsets are at least as bad). A crash reboots the platform and rebuilds
// the cpufreq stack, as the paper's harness must.
func (c *Characterizer) sweepRow(freqKHz int, offs []int) ([]Classification, error) {
	row := make([]Classification, len(offs))
	if err := c.sweepRowInto(row, freqKHz, offs); err != nil {
		return nil, err
	}
	return row, nil
}

// sweepRowInto is sweepRow writing into a caller-provided buffer (len(offs)
// cells), so the sweep engines can slab-allocate the whole grid up front
// instead of allocating per row.
func (c *Characterizer) sweepRowInto(row []Classification, freqKHz int, offs []int) error {
	// Line 9: set core frequency through cpupower.
	if err := c.cp.FrequencySet(c.cfg.VictimCore, freqKHz); err != nil {
		return fmt.Errorf("core: cpupower at %d kHz: %w", freqKHz, err)
	}
	crashed := false
	for oi, offsetMV := range offs {
		if crashed {
			row[oi] = Crash
			continue
		}
		cls, err := c.measurePoint(freqKHz, offsetMV)
		if err != nil {
			return err
		}
		row[oi] = cls
		if cls == Crash {
			crashed = true
			// Reboot restores stock settings; re-pinning the row frequency
			// is unnecessary (row is done), but restore the sweep's
			// cpupower state for whatever the caller runs next.
			c.P.Reboot()
			c.resetCPUPower()
		}
	}
	return nil
}

// resetCPUPower rebuilds the cpufreq manager after a reboot (module state
// does not survive the crash).
func (c *Characterizer) resetCPUPower() {
	mgr, err := pstate.NewManager(c.P.Sim, c.P, nil)
	if err != nil {
		panic(fmt.Sprintf("core: cpufreq rebuild: %v", err)) // table already validated
	}
	c.cp = &pstate.CPUPower{M: mgr}
}

// class returns the configured EXECUTE-thread class, defaulted.
func (c *Characterizer) class() cpu.Class {
	if c.cfg.Class == "" {
		return cpu.ClassIMul
	}
	return c.cfg.Class
}

// probeU derives the row's coupled probe thresholds: two uniforms that are
// a pure function of (platform seed, row frequency). The first is compared
// against P(any crash in the batch), the second against P(any fault) —
// common random numbers across every cell of the row. Coupling the cells
// this way leaves each cell's marginal outcome distributed exactly as an
// independent batch draw would be, but makes the realized row provably
// monotone whenever the underlying probabilities are (u fixed, p
// non-decreasing in depth), which is the invariant onset bisection needs.
//
// The seed mixes via a Gamma multiply rather than the sharded engine's
// RowSeed XOR: sharded row platforms are already seeded seed^freqKHz, and
// XORing freqKHz in again would cancel back to the experiment seed and
// couple all rows to each other.
func (c *Characterizer) probeU(freqKHz int) (uFault, uCrash float64) {
	stream := rng.NewSeeded(rng.IndexSeed(c.P.Seed(), freqKHz))
	uCrash = stream.Float64()
	uFault = stream.Float64()
	return uFault, uCrash
}

// classifyCoupled applies coupled thresholds to batch-level upset
// probabilities, mirroring RunBatch's ordering: the crash draw happens
// first, faults only matter in a surviving batch.
func classifyCoupled(pAnyFault, pAnyCrash, uFault, uCrash float64) Classification {
	if uCrash < pAnyCrash {
		return Crash
	}
	if uFault < pAnyFault {
		return Fault
	}
	return Safe
}

// measurePoint programs one (frequency, offset) pair and measures the
// EXECUTE thread's outcome. The batch outcome is drawn with the row's
// coupled thresholds (see probeU) against the live per-instruction
// probabilities — which reflect whatever actually reached the rail,
// including MSR-hook or defense interference — so a cell's class is a
// deterministic function of the realized operating point, identical no
// matter which strategy or visit order reaches it.
func (c *Characterizer) measurePoint(freqKHz, offsetMV int) (Classification, error) {
	p := c.P
	// Line 10-11: compute the 0x150 value via Algorithm 1 and write it.
	if err := p.WriteOffsetViaMSR(c.cfg.VictimCore, offsetMV, msr.PlaneCore); err != nil {
		return Safe, err
	}
	// SettleCommanded, not just SettleAll: the probe must observe the
	// commanded (f, V) point even when a pending relock's deadline outruns
	// the rail's settle (see its doc) — otherwise a cell's class would
	// depend on the probe order, breaking sweep/bisect equivalence.
	p.SettleCommanded(c.cfg.VictimCore)
	if c.cfg.SettleWait > 0 {
		p.Sim.RunFor(c.cfg.SettleWait)
	}
	c.probes++
	core := p.Core(c.cfg.VictimCore)
	uF, uC := c.probeU(freqKHz)
	pAnyC := cpu.BatchUpsetProbability(c.cfg.Iterations, core.CrashProbability())
	pAnyF := cpu.BatchUpsetProbability(c.cfg.Iterations, core.FaultProbability(c.class()))
	return classifyCoupled(pAnyF, pAnyC, uF, uC), nil
}

// restore re-applies the original frequency and zero offset (Algorithm 2
// lines 13-14).
func (c *Characterizer) restore(origFreqKHz int) error {
	if err := c.cp.FrequencySet(c.cfg.VictimCore, origFreqKHz); err != nil {
		return err
	}
	if err := c.P.WriteOffsetViaMSR(c.cfg.VictimCore, 0, msr.PlaneCore); err != nil {
		return err
	}
	c.P.SettleAll()
	return nil
}
