package core

import (
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/msr"
)

// AdaptiveResult is the boundary found for one frequency by the adaptive
// probe.
type AdaptiveResult struct {
	FreqKHz int
	// OnsetMV is the shallowest offset classified non-safe; 0 mV means no
	// unsafe state was found down to the floor.
	OnsetMV int
	// Found reports whether an unsafe state exists within the range.
	Found bool
	// Probes is the number of grid points measured for this frequency.
	Probes int
}

// AdaptiveCharacterize is an extension beyond the paper's Algorithm 2: it
// bisects each frequency's fault boundary instead of scanning the entire
// offset axis, cutting measurements from O(|V|) to O(log |V|) per
// frequency. Monotonicity of Eq. 1 in voltage (deeper undervolt is never
// safer) makes bisection sound; the statistical fuzziness of the onset is
// handled by re-probing each candidate `Confirm` times and treating any
// fault as non-safe, which biases the boundary conservatively shallow.
//
// The result set is intentionally *onset-only* (exactly what the guard's
// UnsafeSet consumes); crash boundaries are not charted. Probes that land
// in the crash region still crash the machine (the deep bracket endpoint
// always does), so expect one or two reboots per frequency — comparable to
// the full sweep — but an order of magnitude fewer measurements.
type AdaptiveCharacterizer struct {
	P *cpu.Platform
	// Cfg reuses the sweep parameters (victim core, iterations, offset
	// range/step, dwell). Class selects the probe instruction.
	Cfg CharacterizerConfig
	// Confirm is how many independent batches probe each candidate point
	// (>=1); more confirmations tighten the statistical boundary.
	Confirm int

	cp cpupowerSetter
}

// cpupowerSetter abstracts the frequency pinning (test seam).
type cpupowerSetter interface {
	FrequencySet(core, khz int) error
}

// NewAdaptiveCharacterizer validates the configuration.
func NewAdaptiveCharacterizer(p *cpu.Platform, cfg CharacterizerConfig, confirm int) (*AdaptiveCharacterizer, error) {
	// Reuse the sweep validation by constructing a throwaway sweeper.
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		return nil, err
	}
	if confirm < 1 {
		return nil, fmt.Errorf("core: confirm %d < 1", confirm)
	}
	return &AdaptiveCharacterizer{P: p, Cfg: cfg, Confirm: confirm, cp: ch.cp}, nil
}

// probe classifies one point by Confirm batches; any fault (or crash)
// counts as non-safe. On crash the machine is rebooted and re-pinned to
// freqKHz so the bisection can continue.
func (a *AdaptiveCharacterizer) probe(freqKHz, offsetMV int) (safe bool, err error) {
	p := a.P
	if err := p.WriteOffsetViaMSR(a.Cfg.VictimCore, offsetMV, msr.PlaneCore); err != nil {
		return false, err
	}
	p.SettleAll()
	if a.Cfg.SettleWait > 0 {
		p.Sim.RunFor(a.Cfg.SettleWait)
	}
	class := a.Cfg.Class
	if class == "" {
		class = cpu.ClassIMul
	}
	for i := 0; i < a.Confirm; i++ {
		res, err := p.Core(a.Cfg.VictimCore).RunBatch(class, a.Cfg.Iterations)
		if err != nil {
			// Crash: deepest kind of non-safe. Recover and re-pin.
			p.Reboot()
			if err2 := a.cp.FrequencySet(a.Cfg.VictimCore, freqKHz); err2 != nil {
				return false, err2
			}
			p.SettleAll()
			return false, nil
		}
		if res.Faults > 0 {
			return false, nil
		}
	}
	return true, nil
}

// FindOnset bisects the boundary at one frequency. The returned onset is
// aligned to the sweep's offset grid (Cfg.OffsetStepMV).
func (a *AdaptiveCharacterizer) FindOnset(freqKHz int) (AdaptiveResult, error) {
	res := AdaptiveResult{FreqKHz: freqKHz}
	if err := a.cp.FrequencySet(a.Cfg.VictimCore, freqKHz); err != nil {
		return res, err
	}
	a.P.SettleAll()

	step := -a.Cfg.OffsetStepMV // positive magnitude
	loIdx := 0                  // shallow index: offset = Start + idx*StepMV
	hiIdx := (a.Cfg.OffsetStartMV - a.Cfg.OffsetEndMV) / step
	offsetAt := func(idx int) int { return a.Cfg.OffsetStartMV + idx*a.Cfg.OffsetStepMV }

	// Establish the bracket: shallow end safe, deep end non-safe.
	shallowSafe, err := a.probe(freqKHz, offsetAt(loIdx))
	if err != nil {
		return res, err
	}
	res.Probes++
	if !shallowSafe {
		res.Found = true
		res.OnsetMV = offsetAt(loIdx)
		return res, a.restore()
	}
	deepSafe, err := a.probe(freqKHz, offsetAt(hiIdx))
	if err != nil {
		return res, err
	}
	res.Probes++
	if deepSafe {
		// Entire range safe at this frequency.
		return res, a.restore()
	}
	// Invariant: offsetAt(loIdx) safe, offsetAt(hiIdx) non-safe.
	for hiIdx-loIdx > 1 {
		mid := (loIdx + hiIdx) / 2
		safe, err := a.probe(freqKHz, offsetAt(mid))
		if err != nil {
			return res, err
		}
		res.Probes++
		if safe {
			loIdx = mid
		} else {
			hiIdx = mid
		}
	}
	res.Found = true
	res.OnsetMV = offsetAt(hiIdx)
	return res, a.restore()
}

// restore returns the victim to zero offset.
func (a *AdaptiveCharacterizer) restore() error {
	if err := a.P.WriteOffsetViaMSR(a.Cfg.VictimCore, 0, msr.PlaneCore); err != nil {
		return err
	}
	a.P.SettleAll()
	return nil
}

// Run probes every table frequency and compiles the guard-ready UnsafeSet.
func (a *AdaptiveCharacterizer) Run() (*UnsafeSet, []AdaptiveResult, error) {
	u := &UnsafeSet{
		Model:    a.P.Spec.Codename,
		OnsetMV:  map[int]int{},
		FloorMV:  a.Cfg.OffsetEndMV,
		FreqsKHz: a.P.FreqTableKHz(),
	}
	var all []AdaptiveResult
	for _, f := range u.FreqsKHz {
		r, err := a.FindOnset(f)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, r)
		if r.Found {
			u.OnsetMV[f] = r.OnsetMV
		}
	}
	return u, all, nil
}
