package core

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/msr"
	"plugvolt/internal/search"
	"plugvolt/internal/sim"
)

// rowStats carries one row's search economics from a worker to the merge
// loop (telemetry and SearchStats only — the grid never depends on it).
type rowStats struct {
	// probes counts measured sim probes spent on the row (bisect probes
	// plus, on fallback, the full linear re-sweep).
	probes int
	// fallback reports that the bisect strategy abandoned the row to a
	// verified linear sweep after a monotonicity check failed.
	fallback bool
}

// SearchStats aggregates the probe economics of the most recent Run.
type SearchStats struct {
	// Strategy is the resolved sweep strategy ("sweep" or "bisect").
	Strategy string
	// Rows counts merged frequency rows; Probes counts measured sim probes
	// across all of them (the sweep-vs-bisect comparison axis).
	Rows, Probes int
	// FallbackRows counts bisect rows that fell back to a linear sweep.
	FallbackRows int
	// OnsetRows counts rows with at least one non-Safe cell.
	OnsetRows int
}

// Stats returns the probe economics of the most recent Run. Valid after
// Run returns; zero before.
func (sc *ShardedCharacterizer) Stats() SearchStats { return sc.stats }

// strategy resolves the configured sweep strategy, defaulting to sweep.
func (sc *ShardedCharacterizer) strategy() string {
	if sc.cfg.Strategy == "" {
		return StrategySweep
	}
	return sc.cfg.Strategy
}

// bisectRow characterizes one frequency row on a private platform stack
// using the bisect strategy, falling back to a fresh linear sweep if any
// monotonicity check fails. The fallback rebuilds the row platform from
// scratch (the half-probed one may hold partial mailbox state or a
// crash), so its result is the sweep strategy's result by construction.
func (sc *ShardedCharacterizer) bisectRow(row []Classification, freqKHz int, offs []int) (int, sim.Duration, rowStats, error) {
	var st rowStats
	p, err := sc.Factory(RowSeed(sc.seed, freqKHz))
	if err != nil {
		return 0, 0, st, err
	}
	ch, err := NewCharacterizer(p, sc.cfg)
	if err != nil {
		return 0, 0, st, err
	}
	// Algorithm 2 lines 6-7: record the normal operating point.
	origStatus, err := p.MSRFile(sc.cfg.VictimCore).Read(msr.IA32PerfStatus)
	if err != nil {
		return 0, 0, st, err
	}
	origRatio, _ := msr.DecodePerfStatus(origStatus)
	origFreqKHz := msr.RatioToKHz(origRatio, p.Spec.BusMHz)

	err = ch.bisectRowInto(row, freqKHz, offs)
	if errors.Is(err, search.ErrNonMonotone) {
		st.fallback = true
		st.probes = ch.probes
		reboots, virtual, st2, err2 := sc.sweepRow(row, freqKHz, offs)
		st.probes += st2.probes
		return reboots, virtual, st, err2
	}
	if err != nil {
		return 0, 0, st, err
	}
	st.probes = ch.probes
	// Lines 13-14: restore the stock operating point, as the sweep does.
	if err := ch.restore(origFreqKHz); err != nil {
		return 0, 0, st, err
	}
	return p.Reboots, sim.Duration(p.Sim.Now()), st, nil
}

// bisectRowInto classifies one frequency row with O(log N) measured probes
// instead of the sweep's O(N):
//
//  1. pin the row frequency through cpupower, exactly as the sweep does;
//  2. predict every cell's batch upset probabilities analytically
//     (cpu.Core.PredictProbabilities — no sim events) and require them to
//     be non-decreasing with depth;
//  3. bisect for the measured fault onset inside the predicted non-crash
//     prefix, cross-checking every measured probe against its predicted
//     class;
//  4. verify the crash boundary: the deepest predicted non-crash cell must
//     measure non-Crash and the first predicted crash cell must measure
//     Crash — that one probe pays the same single reboot the sweep's first
//     crash cell does, keeping Grid.Reboots identical;
//  5. fill the row Safe / Fault / Crash from the verified onsets.
//
// Any contradiction — a predicted probability regression or a measured
// probe that disagrees with its prediction (an MSR hook or defense
// intercepting writes, say) — aborts with an error wrapping
// search.ErrNonMonotone so the caller can fall back to the linear sweep.
// Interference is thereby detectable exactly at probed cells; between
// probes the row's shape rests on the verified monotone model, which is
// the contract that makes O(log N) possible at all.
func (c *Characterizer) bisectRowInto(row []Classification, freqKHz int, offs []int) error {
	// Line 9: set core frequency through cpupower.
	if err := c.cp.FrequencySet(c.cfg.VictimCore, freqKHz); err != nil {
		return fmt.Errorf("core: cpupower at %d kHz: %w", freqKHz, err)
	}
	n := len(offs)
	if n == 0 {
		return nil
	}
	core := c.P.Core(c.cfg.VictimCore)
	uF, uC := c.probeU(freqKHz)
	pAnyF := make([]float64, n)
	pAnyC := make([]float64, n)
	for i, off := range offs {
		pf, pc := core.PredictProbabilities(c.class(), off)
		pAnyF[i] = cpu.BatchUpsetProbability(c.cfg.Iterations, pf)
		pAnyC[i] = cpu.BatchUpsetProbability(c.cfg.Iterations, pc)
		if i > 0 && (pAnyF[i] < pAnyF[i-1] || pAnyC[i] < pAnyC[i-1]) {
			return fmt.Errorf("core: predicted upset probability regresses at %d mV: %w",
				off, search.ErrNonMonotone)
		}
	}
	predict := func(i int) Classification { return classifyCoupled(pAnyF[i], pAnyC[i], uF, uC) }
	// First predicted Crash cell; the monotone probabilities and fixed
	// thresholds make the predicted row Safe* Fault* Crash* by construction.
	predC := n
	for i := 0; i < n; i++ {
		if predict(i) == Crash {
			predC = i
			break
		}
	}
	// Measured probes, memoized (the boundary cells can be hit both by the
	// bisection and the explicit verification) and each cross-checked
	// against its prediction.
	cache := make(map[int]Classification, 16)
	measure := func(i int) (Classification, error) {
		if cls, ok := cache[i]; ok {
			return cls, nil
		}
		cls, err := c.measurePoint(freqKHz, offs[i])
		if err != nil {
			return cls, err
		}
		cache[i] = cls
		if want := predict(i); cls != want {
			return cls, fmt.Errorf("core: cell %d mV measured %s, predicted %s: %w",
				offs[i], cls, want, search.ErrNonMonotone)
		}
		return cls, nil
	}
	// Measured fault-onset bisection over the predicted non-crash prefix.
	// Probes stay out of the crash region, so no reboot happens mid-search.
	onset, _, err := search.BisectFirst(predC, func(i int) (bool, error) {
		cls, err := measure(i)
		return cls != Safe, err
	})
	if err != nil {
		return err
	}
	// Crash-boundary verification (step 4).
	if predC > 0 {
		if _, err := measure(predC - 1); err != nil {
			return err
		}
	}
	if predC < n {
		if _, err := measure(predC); err != nil {
			return err // includes "measured non-Crash": prediction mismatch
		}
		// The verified crash reboots the platform, exactly once per
		// crashing row — the same count the sweep accumulates.
		c.P.Reboot()
		c.resetCPUPower()
	}
	for i := range row {
		switch {
		case i >= predC:
			row[i] = Crash
		case i >= onset:
			row[i] = Fault
		default:
			row[i] = Safe
		}
	}
	return nil
}
