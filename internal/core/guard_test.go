package core

import (
	"strings"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/kernel"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
	"plugvolt/internal/victim"
)

// guardRig characterizes a Sky Lake machine, builds the guard and a kernel,
// and returns everything needed for live experiments.
func guardRig(t *testing.T, seed int64) (*cpu.Platform, *kernel.Kernel, *Guard, *UnsafeSet) {
	t.Helper()
	p := newPlatform(t, "skylake", seed)
	cfg := quickSweepConfig()
	ch, err := NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	unsafe := g.UnsafeSet()
	k := kernel.New(p.Sim, p)
	guard, err := NewGuard(unsafe, p.Spec.BusMHz, DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p, k, guard, unsafe
}

func TestNewGuardValidation(t *testing.T) {
	u := &UnsafeSet{FloorMV: -300}
	if _, err := NewGuard(nil, 100, DefaultGuardConfig()); err == nil {
		t.Fatal("nil unsafe set accepted")
	}
	if _, err := NewGuard(u, 0, DefaultGuardConfig()); err == nil {
		t.Fatal("zero bus clock accepted")
	}
	bad := DefaultGuardConfig()
	bad.PollPeriod = 0
	if _, err := NewGuard(u, 100, bad); err == nil {
		t.Fatal("zero poll period accepted")
	}
	bad = DefaultGuardConfig()
	bad.SafeOffsetMV = 10
	if _, err := NewGuard(u, 100, bad); err == nil {
		t.Fatal("positive safe offset accepted")
	}
}

func TestGuardModuleLifecycle(t *testing.T) {
	_, k, guard, _ := guardRig(t, 21)
	if guard.Running() {
		t.Fatal("guard running before load")
	}
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	if !guard.Running() || !k.Loaded(ModuleName) {
		t.Fatal("guard not running after load")
	}
	if err := k.Unload(ModuleName); err != nil {
		t.Fatal(err)
	}
	if guard.Running() {
		t.Fatal("guard running after unload")
	}
}

func TestGuardModuleBadPinnedCore(t *testing.T) {
	_, k, _, unsafe := guardRig(t, 21)
	cfg := DefaultGuardConfig()
	cfg.PinnedCore = 99
	g, err := NewGuard(unsafe, 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Load(g.Module()); err == nil {
		t.Fatal("guard loaded on nonexistent core")
	}
}

func TestGuardForcesUnsafeStateBack(t *testing.T) {
	p, k, guard, unsafe := guardRig(t, 22)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	victimCore := 1
	// Adversary: pin a mid frequency and write a deeply unsafe offset.
	freq := p.FreqKHz(victimCore)
	onset, ok := unsafe.OnsetMV[freq]
	if !ok {
		t.Fatalf("no onset at %d kHz", freq)
	}
	attackOffset := onset - 40
	if err := p.WriteOffsetViaMSR(victimCore, attackOffset, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	if !unsafe.Contains(freq, attackOffset) {
		t.Fatal("attack offset not in unsafe set — test broken")
	}
	// Within one poll period (+ slack) the guard must rewrite 0x150.
	p.Sim.RunFor(2 * sim.Millisecond)
	if guard.Interventions == 0 {
		t.Fatal("guard never intervened")
	}
	if got := p.Core(victimCore).OffsetMV(); got != guard.cfg.SafeOffsetMV {
		t.Fatalf("offset after intervention %d, want %d", got, guard.cfg.SafeOffsetMV)
	}
	if guard.LastIntervention == 0 {
		t.Fatal("intervention time not recorded")
	}
}

func TestGuardLeavesBenignUndervoltAlone(t *testing.T) {
	// The paper's headline advantage over access control: benign, safe
	// undervolting keeps working under the countermeasure.
	p, k, guard, unsafe := guardRig(t, 23)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	victimCore := 1
	freq := p.FreqKHz(victimCore)
	onset := unsafe.OnsetMV[freq]
	benign := onset + 30 // 30 mV shallower than the boundary: safe
	if unsafe.Contains(freq, benign) {
		t.Fatalf("benign offset %d unexpectedly unsafe", benign)
	}
	if err := p.WriteOffsetViaMSR(victimCore, benign, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(10 * sim.Millisecond)
	if guard.Interventions != 0 {
		t.Fatalf("guard intervened %d times on a safe undervolt", guard.Interventions)
	}
	if got := p.Core(victimCore).OffsetMV(); got != benign {
		t.Fatalf("benign offset clobbered: %d", got)
	}
	if guard.Checks == 0 {
		t.Fatal("guard not polling")
	}
}

func TestGuardEliminatesFaultsUnderContinuousAttack(t *testing.T) {
	// End-to-end Sec. 4.3 claim: with the module loaded, the EXECUTE
	// thread observes zero faults even while an attacker keeps rewriting
	// 0x150 to unsafe values.
	p, k, guard, unsafe := guardRig(t, 24)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	victimCore := 1
	freq := p.FreqKHz(victimCore)
	attackOffset := unsafe.OnsetMV[freq] - 60

	totalFaults := 0
	// Attacker rewrites the unsafe offset every 5.3 ms (deliberately not a
	// multiple of the poll period, so detection latency is exercised). The
	// guard reads the *register* within 100 us, long before the regulator
	// (20 us command + 0.5 mV/us slew, i.e. hundreds of us to fault depth)
	// realizes the unsafe voltage — so the rail never dips far enough to
	// fault and the EXECUTE thread stays clean.
	attacker := p.Sim.Every(5300*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(victimCore, attackOffset, msr.PlaneCore)
	})
	defer attacker.Stop()

	// Victim: repeated imul batches sampling the live (slewing) voltage.
	for i := 0; i < 200; i++ {
		p.Sim.RunFor(250 * sim.Microsecond)
		loop, err := victim.NewIMulLoop(p.Core(victimCore), 50_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loop.RunBatch()
		if err != nil {
			t.Fatalf("crash under guarded attack: %v", err)
		}
		totalFaults += res.Faults
	}
	if totalFaults != 0 {
		t.Fatalf("guard failed to eliminate faults: %d observed", totalFaults)
	}
	if guard.Interventions == 0 {
		t.Fatal("attack ran but guard never intervened")
	}
}

func TestWithoutGuardSameAttackFaults(t *testing.T) {
	// Control experiment for the test above: identical attack, no module.
	p, _, _, unsafe := guardRig(t, 24)
	victimCore := 1
	freq := p.FreqKHz(victimCore)
	attackOffset := unsafe.OnsetMV[freq] - 60
	if err := p.WriteOffsetViaMSR(victimCore, attackOffset, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	totalFaults := 0
	for i := 0; i < 20; i++ {
		loop, err := victim.NewIMulLoop(p.Core(victimCore), 50_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loop.RunBatch()
		if err != nil {
			break // crash also demonstrates the unguarded system failing
		}
		totalFaults += res.Faults
	}
	if totalFaults == 0 && !p.Crashed() {
		t.Fatal("unguarded attack caused no faults — control experiment broken")
	}
}

func TestGuardSafeOffsetPreservesMaximalSafeUndervolt(t *testing.T) {
	// Deploying the guard with SafeOffsetMV = maximal safe state keeps
	// even the forced state undervolted (flexibility argument of Sec. 5).
	p := newPlatform(t, "skylake", 25)
	ch, err := NewCharacterizer(p, quickSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	msv := grid.MaximalSafeOffsetMV(5)
	unsafe := grid.UnsafeSet()
	cfg := DefaultGuardConfig()
	cfg.SafeOffsetMV = msv
	guard, err := NewGuard(unsafe, p.Spec.BusMHz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(p.Sim, p)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	victimCore := 1
	freq := p.FreqKHz(victimCore)
	if err := p.WriteOffsetViaMSR(victimCore, unsafe.OnsetMV[freq]-50, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3 * sim.Millisecond)
	if got := p.Core(victimCore).OffsetMV(); got > msv+2 || got < msv-2 {
		t.Fatalf("forced offset %d, want maximal safe %d", got, msv)
	}
	if unsafe.Contains(freq, p.Core(victimCore).OffsetMV()) {
		t.Fatal("forced state itself unsafe")
	}
}

func TestGuardOverheadIsTiny(t *testing.T) {
	// The kthread's stolen time over a second of polling must be well
	// under the paper's 0.28% end-to-end figure.
	p, k, guard, _ := guardRig(t, 26)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	k.ResetStolenTime()
	window := 1 * sim.Second
	p.Sim.RunFor(window)
	frac := float64(k.StolenTime(guard.cfg.PinnedCore)) / float64(window)
	if frac <= 0 {
		t.Fatal("no polling cost accounted")
	}
	// Direct cost on the pinned core must stay below 1%; spread across the
	// machine's cores this is the order of the paper's 0.28% result.
	if frac > 0.01 {
		t.Fatalf("direct polling cost %.4f%% too high", frac*100)
	}
}

func TestWorstCaseTurnaround(t *testing.T) {
	_, _, guard, unsafe := guardRig(t, 27)
	ta := guard.WorstCaseTurnaround(10*sim.Microsecond, 5)
	// Must be dominated by the poll period (1 ms) plus VR travel.
	if ta <= guard.cfg.PollPeriod {
		t.Fatalf("turnaround %v not accounting for VR", ta)
	}
	depthMV := float64(guard.cfg.SafeOffsetMV - unsafe.FloorMV)
	if depthMV < 0 {
		depthMV = -depthMV
	}
	want := guard.cfg.PollPeriod + 10*sim.Microsecond + sim.Duration(depthMV/5*float64(sim.Microsecond))
	if ta != want {
		t.Fatalf("turnaround %v, want %v", ta, want)
	}
}

func TestGuardSurvivesCrashedCore(t *testing.T) {
	// Failure injection: when a core machine-checks mid-campaign, the
	// guard's per-core MSR reads keep working for the remaining cores
	// (crashed cores have fresh MSR state after reboot; the guard itself
	// must never wedge or panic while a core is down).
	p, k, guard, unsafe := guardRig(t, 30)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	// Crash core 2 via catastrophic undervolt executed directly (bypassing
	// the register so the guard cannot prevent it — raw rail injection).
	c2 := p.Core(2)
	c2.VR.SetTarget(300) // far below Vth territory
	p.SettleAll()
	_, err := c2.RunBatch(cpu.ClassIMul, 1_000_000)
	if err == nil {
		t.Fatal("precondition: core 2 did not crash")
	}
	checksBefore := guard.Checks
	p.Sim.RunFor(5 * sim.Millisecond)
	if guard.Checks <= checksBefore {
		t.Fatal("guard stopped polling after a core crash")
	}
	// And it still protects the healthy cores.
	freq := p.FreqKHz(1)
	if err := p.WriteOffsetViaMSR(1, unsafe.OnsetMV[freq]-50, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(2 * sim.Millisecond)
	if got := p.Core(1).OffsetMV(); got != guard.cfg.SafeOffsetMV {
		t.Fatalf("healthy core not protected while core 2 down: offset %d", got)
	}
}

func TestGuardModuleReloadAfterReboot(t *testing.T) {
	// Failure injection: a reboot wipes hardware state; reloading the
	// module must restart protection cleanly.
	p, k, guard, unsafe := guardRig(t, 31)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	p.Core(3).VR.SetTarget(300)
	p.SettleAll()
	_, _ = p.Core(3).RunBatch(cpu.ClassIMul, 1_000_000)
	if !p.Crashed() {
		t.Fatal("precondition: no crash")
	}
	// Reboot: module does not survive (fresh kernel); unload + reload.
	p.Reboot()
	if err := k.Unload(ModuleName); err != nil {
		t.Fatal(err)
	}
	guard2, err := NewGuard(unsafe, p.Spec.BusMHz, DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Load(guard2.Module()); err != nil {
		t.Fatal(err)
	}
	freq := p.FreqKHz(1)
	if err := p.WriteOffsetViaMSR(1, unsafe.OnsetMV[freq]-50, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(2 * sim.Millisecond)
	if guard2.Interventions == 0 {
		t.Fatal("reloaded guard not protecting")
	}
}

func TestPerCoreGuardDeployment(t *testing.T) {
	p, k, _, unsafe := guardRig(t, 33)
	cfg := DefaultGuardConfig()
	cfg.PerCoreThreads = true
	guard, err := NewGuard(unsafe, p.Spec.BusMHz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	if !guard.Running() {
		t.Fatal("per-core guard not running")
	}
	// Protection works identically.
	freq := p.FreqKHz(2)
	if err := p.WriteOffsetViaMSR(2, unsafe.OnsetMV[freq]-50, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(2 * sim.Millisecond)
	if guard.Interventions == 0 {
		t.Fatal("per-core guard never intervened")
	}
	if got := p.Core(2).OffsetMV(); got != 0 {
		t.Fatalf("offset not restored: %d", got)
	}
	// Overhead is spread evenly: every core pays, none pays the
	// single-thread deployment's 4x bill.
	k.ResetStolenTime()
	p.Sim.RunFor(100 * sim.Millisecond)
	var min, max sim.Duration
	for c := 0; c < p.NumCores(); c++ {
		s := k.StolenTime(c)
		if s <= 0 {
			t.Fatalf("core %d pays nothing", c)
		}
		if c == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max > min*2 {
		t.Fatalf("uneven spread: min %v max %v", min, max)
	}
	if err := k.Unload(ModuleName); err != nil {
		t.Fatal(err)
	}
	if guard.Running() {
		t.Fatal("per-core guard running after unload")
	}
	p.Sim.RunFor(5 * sim.Millisecond)
	checks := guard.Checks
	p.Sim.RunFor(5 * sim.Millisecond)
	if guard.Checks != checks {
		t.Fatal("per-core threads still polling after unload")
	}
}

func TestPerCoreGuardVsSingleThreadOverheadShape(t *testing.T) {
	// Ablation: same total polling work, different distribution.
	run := func(perCore bool) (pinned, total sim.Duration) {
		p, k, _, unsafe := guardRig(t, 34)
		cfg := DefaultGuardConfig()
		cfg.PerCoreThreads = perCore
		guard, err := NewGuard(unsafe, p.Spec.BusMHz, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Load(guard.Module()); err != nil {
			t.Fatal(err)
		}
		k.ResetStolenTime()
		p.Sim.RunFor(200 * sim.Millisecond)
		for c := 0; c < p.NumCores(); c++ {
			total += k.StolenTime(c)
		}
		return k.StolenTime(0), total
	}
	pinnedSingle, totalSingle := run(false)
	pinnedPer, totalPer := run(true)
	// The single-thread deployment concentrates everything on core 0.
	if pinnedSingle != totalSingle {
		t.Fatalf("single-thread cost leaked off the pinned core: %v of %v", pinnedSingle, totalSingle)
	}
	// Per-core deployment relieves the pinned core, but not by the naive
	// 4x: each core now pays its own kthread wakeup (300 ns/tick), which
	// dominates the two 50 ns register reads. Measured: ~1.75x relief and
	// ~2.3x total work — the wakeup cost, not the MSR access, is the
	// polling module's real price. Assert the measured shape.
	if pinnedPer >= pinnedSingle {
		t.Fatalf("per-core did not relieve the pinned core: %v vs %v", pinnedPer, pinnedSingle)
	}
	if totalPer <= totalSingle || totalPer > totalSingle*4 {
		t.Fatalf("per-core total implausible: %v vs single %v", totalPer, totalSingle)
	}
}

func TestGuardProcStatus(t *testing.T) {
	p, k, guard, unsafe := guardRig(t, 35)
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}
	out, err := k.ReadProc(ModuleName)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "running=true") || !strings.Contains(out, "interventions=0") {
		t.Fatalf("proc status: %q", out)
	}
	freq := p.FreqKHz(1)
	if err := p.WriteOffsetViaMSR(1, unsafe.OnsetMV[freq]-50, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(2 * sim.Millisecond)
	out, _ = k.ReadProc(ModuleName)
	if strings.Contains(out, "interventions=0") {
		t.Fatalf("proc status not live: %q", out)
	}
	if err := k.Unload(ModuleName); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadProc(ModuleName); err == nil {
		t.Fatal("proc entry survives rmmod")
	}
}

// TestGuardPollZeroAlloc is the tentpole's allocation contract: a
// steady-state safe poll must not allocate — with telemetry off, and with
// full tracing on once the span buffer has reached its drop-newest steady
// state (a long experiment's normal condition). Uses a small span cap so
// warm-up is cheap; the LUT membership, the preallocated per-core poll
// attrs, the kernel's (core, addr) attr cache and the by-value span Scope
// together make the whole path allocation-free.
func TestGuardPollZeroAlloc(t *testing.T) {
	assertZero := func(name string, g *Guard, kt *kernel.KThread) {
		t.Helper()
		// Warm caches (msr attr maps, span seqs, histogram series).
		for i := 0; i < 200; i++ {
			g.pollOne(kt, 0)
		}
		if allocs := testing.AllocsPerRun(500, func() { g.pollOne(kt, 0) }); allocs != 0 {
			t.Errorf("%s: pollOne allocates %.1f per poll, want 0", name, allocs)
		}
	}

	t.Run("telemetry-off", func(t *testing.T) {
		_, k, guard, _ := guardRig(t, 33)
		if err := k.Load(guard.Module()); err != nil {
			t.Fatal(err)
		}
		assertZero("telemetry-off", guard, guard.thread)
	})

	t.Run("tracing-on", func(t *testing.T) {
		p := newPlatform(t, "skylake", 33)
		ch, err := NewCharacterizer(p, quickSweepConfig())
		if err != nil {
			t.Fatal(err)
		}
		grid, err := ch.Run()
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(p.Sim, p)
		tel := &telemetry.Set{
			Reg:     telemetry.NewRegistry(p.Sim.Now),
			Journal: telemetry.NewJournal(p.Sim.Now, 64),
			Trace:   span.NewTracer(span.Clock(p.Sim.Now), 33, 256),
		}
		k.SetTelemetry(tel)
		cfg := DefaultGuardConfig()
		cfg.Telemetry = tel
		guard, err := NewGuard(grid.UnsafeSet(), p.Spec.BusMHz, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Load(guard.Module()); err != nil {
			t.Fatal(err)
		}
		assertZero("tracing-on", guard, guard.thread)
		if tel.Trace.Dropped() == 0 {
			t.Fatal("span buffer never reached drop-newest steady state; warm-up too short")
		}
		if guard.Interventions != 0 {
			t.Fatal("safe operating point triggered interventions; test measures the wrong path")
		}
	})
}
