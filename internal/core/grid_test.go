package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticGrid builds a small grid with a known structure:
// freqs 1000/2000/3000 MHz; offsets -1..-10; onset deepens as frequency
// drops (onset at -8/-5/-3, crash at -10/-7/-5).
func syntheticGrid() *Grid {
	freqs := []int{1_000_000, 2_000_000, 3_000_000}
	onsets := map[int]int{1_000_000: -8, 2_000_000: -5, 3_000_000: -3}
	crashes := map[int]int{1_000_000: -10, 2_000_000: -7, 3_000_000: -5}
	var offs []int
	for o := -1; o >= -10; o-- {
		offs = append(offs, o)
	}
	g := &Grid{
		Model:      "synthetic",
		Microcode:  "0x0",
		Iterations: 1000,
		FreqsKHz:   freqs,
		OffsetsMV:  offs,
		Cells:      make([][]Classification, len(freqs)),
	}
	for fi, f := range freqs {
		row := make([]Classification, len(offs))
		for oi, o := range offs {
			switch {
			case o <= crashes[f]:
				row[oi] = Crash
			case o <= onsets[f]:
				row[oi] = Fault
			default:
				row[oi] = Safe
			}
		}
		g.Cells[fi] = row
	}
	return g
}

func TestGridValidate(t *testing.T) {
	g := syntheticGrid()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	cases := []func(*Grid){
		func(g *Grid) { g.FreqsKHz = nil },
		func(g *Grid) { g.OffsetsMV = nil },
		func(g *Grid) { g.FreqsKHz[0], g.FreqsKHz[2] = g.FreqsKHz[2], g.FreqsKHz[0] },
		func(g *Grid) { g.OffsetsMV[0], g.OffsetsMV[5] = g.OffsetsMV[5], g.OffsetsMV[0] },
		func(g *Grid) { g.OffsetsMV[0] = 5 },
		func(g *Grid) { g.Cells = g.Cells[:1] },
		func(g *Grid) { g.Cells[1] = g.Cells[1][:3] },
	}
	for i, corrupt := range cases {
		bad := syntheticGrid()
		corrupt(bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("corruption %d accepted", i)
		}
	}
}

func TestGridAt(t *testing.T) {
	g := syntheticGrid()
	cases := []struct {
		f, o int
		want Classification
	}{
		{3_000_000, -1, Safe},
		{3_000_000, -3, Fault},
		{3_000_000, -4, Fault},
		{3_000_000, -5, Crash},
		{1_000_000, -7, Safe},
		{1_000_000, -8, Fault},
		{1_000_000, -10, Crash},
	}
	for _, c := range cases {
		got, ok := g.At(c.f, c.o)
		if !ok || got != c.want {
			t.Errorf("At(%d, %d) = %v, %v; want %v", c.f, c.o, got, ok, c.want)
		}
	}
	// Shallower than the sweep start: safe.
	if cl, ok := g.At(3_000_000, 0); !ok || cl != Safe {
		t.Error("offset 0 not safe")
	}
	if cl, ok := g.At(3_000_000, 25); !ok || cl != Safe {
		t.Error("overvolt not safe")
	}
	// Deeper than the floor: floor class.
	if cl, ok := g.At(3_000_000, -50); !ok || cl != Crash {
		t.Error("below-floor not crash")
	}
	// Unswept frequency.
	if _, ok := g.At(1_500_000, -5); ok {
		t.Error("unswept frequency reported ok")
	}
}

func TestGridOnsetAndCrash(t *testing.T) {
	g := syntheticGrid()
	if on, ok := g.OnsetMV(2_000_000); !ok || on != -5 {
		t.Fatalf("onset = %d, %v", on, ok)
	}
	if cr, ok := g.CrashMV(2_000_000); !ok || cr != -7 {
		t.Fatalf("crash = %d, %v", cr, ok)
	}
	if w := g.FaultBandWidthMV(2_000_000); w != 2 {
		t.Fatalf("band width = %d", w)
	}
	if _, ok := g.OnsetMV(999); ok {
		t.Fatal("onset for unswept frequency")
	}
	// All-safe row: no onset.
	safe := syntheticGrid()
	for oi := range safe.Cells[0] {
		safe.Cells[0][oi] = Safe
	}
	if _, ok := safe.OnsetMV(1_000_000); ok {
		t.Fatal("onset reported for all-safe row")
	}
	if w := safe.FaultBandWidthMV(1_000_000); w != 0 {
		t.Fatalf("band width for safe row = %d", w)
	}
}

func TestFaultBandToFloorWhenNoCrash(t *testing.T) {
	g := syntheticGrid()
	// Remove crashes at 3 GHz: band extends to the sweep floor.
	for oi := range g.Cells[2] {
		if g.Cells[2][oi] == Crash {
			g.Cells[2][oi] = Fault
		}
	}
	if w := g.FaultBandWidthMV(3_000_000); w != -3-(-10) {
		t.Fatalf("band to floor = %d", w)
	}
}

func TestMaximalSafeOffset(t *testing.T) {
	g := syntheticGrid()
	// Shallowest onset is -3 (3 GHz); maximal safe = -2.
	if msv := g.MaximalSafeOffsetMV(0); msv != -2 {
		t.Fatalf("maximal safe = %d, want -2", msv)
	}
	// Guard band of 1 mV: -1.
	if msv := g.MaximalSafeOffsetMV(1); msv != -1 {
		t.Fatalf("guard-banded maximal safe = %d", msv)
	}
	// Guard band beyond zero clamps at 0 (no overvolt mandates).
	if msv := g.MaximalSafeOffsetMV(10); msv != 0 {
		t.Fatalf("over-banded maximal safe = %d", msv)
	}
	// Negative guard band treated as zero.
	if msv := g.MaximalSafeOffsetMV(-4); msv != -2 {
		t.Fatalf("negative band maximal safe = %d", msv)
	}
	// Maximal safe state must be Safe at every frequency.
	msv := g.MaximalSafeOffsetMV(0)
	for _, f := range g.FreqsKHz {
		if cl, ok := g.At(f, msv); !ok || cl != Safe {
			t.Fatalf("maximal safe %d not safe at %d kHz", msv, f)
		}
	}
	// One step deeper must be non-safe at some frequency.
	deeperUnsafe := false
	for _, f := range g.FreqsKHz {
		if cl, _ := g.At(f, msv-1); cl != Safe {
			deeperUnsafe = true
		}
	}
	if !deeperUnsafe {
		t.Fatal("maximal safe state not maximal")
	}
}

func TestMaximalSafeAllSafeGrid(t *testing.T) {
	g := syntheticGrid()
	for fi := range g.Cells {
		for oi := range g.Cells[fi] {
			g.Cells[fi][oi] = Safe
		}
	}
	if msv := g.MaximalSafeOffsetMV(0); msv != -10 {
		t.Fatalf("all-safe maximal = %d, want sweep floor", msv)
	}
}

func TestUnsafeSetContains(t *testing.T) {
	u := syntheticGrid().UnsafeSet()
	if u.Contains(3_000_000, -2) {
		t.Fatal("-2 mV at 3 GHz flagged unsafe")
	}
	if !u.Contains(3_000_000, -3) {
		t.Fatal("onset point not unsafe")
	}
	if !u.Contains(3_000_000, -200) {
		t.Fatal("deep offset not unsafe")
	}
	if u.Contains(1_000_000, -7) {
		t.Fatal("-7 at 1 GHz flagged unsafe (onset -8)")
	}
	if !u.Contains(1_000_000, -8) {
		t.Fatal("onset at 1 GHz not unsafe")
	}
}

func TestUnsafeSetOffGridFrequencyIsConservative(t *testing.T) {
	u := syntheticGrid().UnsafeSet()
	// 1.5 GHz sits between onsets -8 (1 GHz) and -5 (2 GHz); conservative
	// resolution uses the shallower boundary (-5).
	if !u.Contains(1_500_000, -5) {
		t.Fatal("off-grid frequency not conservatively unsafe at -5")
	}
	if u.Contains(1_500_000, -4) {
		t.Fatal("off-grid frequency unsafe above both neighbours")
	}
	// Beyond the characterized range: still resolves.
	if !u.Contains(5_000_000, -5) {
		t.Fatal("above-range frequency not conservatively handled")
	}
	if !u.Contains(100_000, -8) {
		t.Fatal("below-range frequency not conservatively handled")
	}
}

func TestUnsafeSetSafetyMargin(t *testing.T) {
	u := syntheticGrid().UnsafeSet()
	if m := u.SafetyMarginMV(3_000_000, -1); m != 2 {
		t.Fatalf("margin = %d, want 2", m)
	}
	if m := u.SafetyMarginMV(3_000_000, -3); m != 0 {
		t.Fatalf("margin at onset = %d", m)
	}
	if m := u.SafetyMarginMV(3_000_000, -10); m != -7 {
		t.Fatalf("margin deep inside = %d", m)
	}
}

func TestUnsafeSetEmpty(t *testing.T) {
	u := &UnsafeSet{Model: "none", FloorMV: -300}
	if u.Contains(1_000_000, -299) {
		t.Fatal("empty set contains a state")
	}
	if m := u.SafetyMarginMV(1_000_000, -100); m != 200 {
		t.Fatalf("empty-set margin = %d", m)
	}
}

func TestGridJSONRoundTrip(t *testing.T) {
	g := syntheticGrid()
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GridFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Model != g.Model || len(g2.Cells) != len(g.Cells) {
		t.Fatal("grid JSON round trip lost data")
	}
	for fi := range g.Cells {
		for oi := range g.Cells[fi] {
			if g.Cells[fi][oi] != g2.Cells[fi][oi] {
				t.Fatal("cells differ after round trip")
			}
		}
	}
	if _, err := GridFromJSON([]byte(`{"freqs_khz": []}`)); err == nil {
		t.Fatal("invalid grid accepted")
	}
	if _, err := GridFromJSON([]byte(`{garbage`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestUnsafeSetJSONRoundTrip(t *testing.T) {
	u := syntheticGrid().UnsafeSet()
	data, err := u.JSON()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := UnsafeSetFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1_000_000, 2_000_000, 3_000_000} {
		for o := -1; o >= -10; o-- {
			if u.Contains(f, o) != u2.Contains(f, o) {
				t.Fatalf("round trip changed membership at (%d, %d)", f, o)
			}
		}
	}
	if _, err := UnsafeSetFromJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestClassificationString(t *testing.T) {
	cases := []struct {
		c    Classification
		want string
	}{
		{Safe, "safe"},
		{Fault, "fault"},
		{Crash, "crash"},
		// Default arm: anything outside the three defined classes renders
		// as class(N) instead of aliasing a real classification.
		{Classification(3), "class(3)"},
		{Classification(9), "class(9)"},
		{Classification(255), "class(255)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Classification(%d).String() = %q, want %q", uint8(c.c), got, c.want)
		}
	}
}

// TestGridFromJSONErrorTable pins every rejection path of the grid parser:
// each payload must produce an error, never a silently-accepted grid (the
// golden suite and the guard both trust parsed grids unconditionally).
func TestGridFromJSONErrorTable(t *testing.T) {
	cases := []struct {
		name    string
		payload string
	}{
		{"malformed JSON", `{`},
		{"empty object", `{}`},
		{"empty axes", `{"freqs_khz":[],"offsets_mv":[],"cells":[]}`},
		{"frequencies not ascending", `{"freqs_khz":[2000,1000],"offsets_mv":[-1],"cells":[[0],[0]]}`},
		{"offsets not descending", `{"freqs_khz":[1000],"offsets_mv":[-2,-1],"cells":[[0,0]]}`},
		{"duplicate offsets", `{"freqs_khz":[1000],"offsets_mv":[-1,-1],"cells":[[0,0]]}`},
		{"positive offset start", `{"freqs_khz":[1000],"offsets_mv":[1,-1],"cells":[[0,0]]}`},
		{"zero offset start", `{"freqs_khz":[1000],"offsets_mv":[0,-1],"cells":[[0,0]]}`},
		{"row count mismatch", `{"freqs_khz":[1000,2000],"offsets_mv":[-1],"cells":[[0]]}`},
		{"ragged row", `{"freqs_khz":[1000],"offsets_mv":[-1,-2],"cells":[[0]]}`},
		{"cells wrong type", `{"freqs_khz":[1000],"offsets_mv":[-1],"cells":[["safe"]]}`},
		{"cells not an array", `{"freqs_khz":[1000],"offsets_mv":[-1],"cells":7}`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if g, err := GridFromJSON([]byte(c.payload)); err == nil {
				t.Fatalf("accepted as %+v", g)
			}
		})
	}
}

// Property: Contains is monotone in the offset — if a state is unsafe, any
// deeper undervolt at the same frequency is also unsafe (DESIGN.md §6).
func TestQuickContainsMonotoneInOffset(t *testing.T) {
	u := syntheticGrid().UnsafeSet()
	f := func(fi uint8, rawO uint8) bool {
		freqs := []int{1_000_000, 1_500_000, 2_000_000, 3_000_000, 4_000_000}
		freq := freqs[int(fi)%len(freqs)]
		o := -int(rawO % 20)
		if u.Contains(freq, o) && !u.Contains(freq, o-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the maximal safe state with any guard band is safe everywhere.
func TestQuickMaximalSafeAlwaysSafe(t *testing.T) {
	g := syntheticGrid()
	f := func(band uint8) bool {
		msv := g.MaximalSafeOffsetMV(int(band % 12))
		for _, freq := range g.FreqsKHz {
			if cl, ok := g.At(freq, msv); !ok || cl != Safe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
