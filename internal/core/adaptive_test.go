package core

import (
	"testing"
)

func adaptiveRig(t *testing.T, seed int64, confirm int) (*AdaptiveCharacterizer, CharacterizerConfig) {
	t.Helper()
	p := newPlatform(t, "skylake", seed)
	cfg := quickSweepConfig()
	a, err := NewAdaptiveCharacterizer(p, cfg, confirm)
	if err != nil {
		t.Fatal(err)
	}
	return a, cfg
}

func TestAdaptiveValidation(t *testing.T) {
	p := newPlatform(t, "skylake", 1)
	if _, err := NewAdaptiveCharacterizer(p, quickSweepConfig(), 0); err == nil {
		t.Fatal("confirm 0 accepted")
	}
	bad := quickSweepConfig()
	bad.Iterations = 0
	if _, err := NewAdaptiveCharacterizer(p, bad, 1); err == nil {
		t.Fatal("invalid sweep config accepted")
	}
}

func TestAdaptiveFindOnsetMatchesFullSweep(t *testing.T) {
	a, cfg := adaptiveRig(t, 201, 2)
	// Full sweep as ground truth on an identically seeded twin machine.
	twin := newPlatform(t, "skylake", 201)
	ch, err := NewCharacterizer(twin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, freq := range []int{800_000, 1_600_000, 2_400_000, 3_200_000, 3_600_000} {
		res, err := a.FindOnset(freq)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("%d kHz: adaptive found no boundary", freq)
		}
		want, ok := grid.OnsetMV(freq)
		if !ok {
			t.Fatalf("%d kHz: full sweep found no onset", freq)
		}
		// The boundary is statistical: allow a few grid steps of slack
		// (bisection probes different RNG draws than the linear scan).
		diff := res.OnsetMV - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 4*(-cfg.OffsetStepMV) {
			t.Errorf("%d kHz: adaptive onset %d vs sweep %d (diff %d mV)",
				freq, res.OnsetMV, want, diff)
		}
		// Log-scale probe count: far fewer than the 70-point row scan.
		if res.Probes > 12 {
			t.Errorf("%d kHz: %d probes — bisection not logarithmic", freq, res.Probes)
		}
	}
}

func TestAdaptiveRunBuildsUnsafeSet(t *testing.T) {
	a, _ := adaptiveRig(t, 202, 1)
	rebootsBefore := a.P.Reboots
	u, results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 29 {
		t.Fatalf("results %d", len(results))
	}
	if len(u.OnsetMV) != 29 {
		t.Fatalf("boundaries for %d/29 frequencies", len(u.OnsetMV))
	}
	// The deep bracket endpoint and early mid-probes can crash: expect a
	// couple of reboots per frequency at worst.
	if got := a.P.Reboots - rebootsBefore; got > 3*29 {
		t.Fatalf("adaptive probe rebooted %d times", got)
	}
	// Basic sanity: set is usable by the guard.
	if !u.Contains(3_200_000, -300) {
		t.Fatal("deep state not unsafe")
	}
	if u.Contains(3_200_000, -5) {
		t.Fatal("shallow state unsafe")
	}
	totalProbes := 0
	for _, r := range results {
		totalProbes += r.Probes
	}
	fullSweepPoints := 29 * 70
	if totalProbes*3 > fullSweepPoints {
		t.Fatalf("adaptive used %d probes, not clearly cheaper than %d", totalProbes, fullSweepPoints)
	}
}

func TestAdaptiveLeavesMachineClean(t *testing.T) {
	a, _ := adaptiveRig(t, 203, 1)
	if _, err := a.FindOnset(2_000_000); err != nil {
		t.Fatal(err)
	}
	if a.P.Crashed() {
		t.Fatal("machine left crashed")
	}
	if got := a.P.Core(a.Cfg.VictimCore).OffsetMV(); got != 0 {
		t.Fatalf("offset left at %d", got)
	}
}
