package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// runStrategy sweeps a model with the given strategy and worker count and
// returns the grid JSON plus the engine's probe economics.
func runStrategy(t *testing.T, model, strategy string, workers int, cfg CharacterizerConfig) ([]byte, SearchStats) {
	t.Helper()
	c := cfg
	c.Strategy = strategy
	c.Workers = workers
	sc := newShardedCharacterizer(t, model, 42, c)
	g, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, sc.Stats()
}

// TestBisectMatchesSweepAllGoldenSpecs is the tentpole equivalence claim:
// for every golden model spec and for 1/2/8 workers, the bisect strategy's
// grid is byte-identical to the full sweep's, with zero fallback rows and
// strictly fewer measured probes.
func TestBisectMatchesSweepAllGoldenSpecs(t *testing.T) {
	cfg := quickSweepConfig()
	for _, model := range []string{"skylake", "kabylaker", "cometlake"} {
		model := model
		t.Run(model, func(t *testing.T) {
			sweepJSON, sweepStats := runStrategy(t, model, StrategySweep, 1, cfg)
			for _, workers := range []int{1, 2, 8} {
				bisectJSON, bisectStats := runStrategy(t, model, StrategyBisect, workers, cfg)
				if string(sweepJSON) != string(bisectJSON) {
					t.Fatalf("workers=%d: bisect grid diverges from sweep", workers)
				}
				if bisectStats.FallbackRows != 0 {
					t.Fatalf("workers=%d: %d unexpected fallback rows", workers, bisectStats.FallbackRows)
				}
				if bisectStats.Probes >= sweepStats.Probes {
					t.Fatalf("workers=%d: bisect spent %d probes, sweep %d",
						workers, bisectStats.Probes, sweepStats.Probes)
				}
				if workers == 1 {
					t.Logf("sweep %d probes, bisect %d (%.1fx fewer)", sweepStats.Probes,
						bisectStats.Probes, float64(sweepStats.Probes)/float64(bisectStats.Probes))
				}
			}
		})
	}
}

// TestBisectProbeSavingsPaperConfig asserts the acceptance bar on the
// Fig. 2 configuration (paper-resolution offset axis, 1 mV steps): the
// bisect strategy must spend at least 10x fewer measured sim probes than
// the full sweep while producing the identical grid.
func TestBisectProbeSavingsPaperConfig(t *testing.T) {
	cfg := DefaultCharacterizerConfig()
	sweepJSON, sweepStats := runStrategy(t, "skylake", StrategySweep, 8, cfg)
	bisectJSON, bisectStats := runStrategy(t, "skylake", StrategyBisect, 8, cfg)
	if string(sweepJSON) != string(bisectJSON) {
		t.Fatal("bisect grid diverges from sweep on the Fig. 2 configuration")
	}
	if bisectStats.FallbackRows != 0 {
		t.Fatalf("%d unexpected fallback rows", bisectStats.FallbackRows)
	}
	if bisectStats.Probes*10 > sweepStats.Probes {
		t.Fatalf("bisect spent %d probes vs sweep %d: less than the required 10x saving",
			bisectStats.Probes, sweepStats.Probes)
	}
	t.Logf("sweep %d probes, bisect %d probes (%.1fx fewer)",
		sweepStats.Probes, bisectStats.Probes,
		float64(sweepStats.Probes)/float64(bisectStats.Probes))
}

// TestRowClassificationMonotone is the property bisection relies on: for
// every model spec, every frequency row's measured classification sequence
// is Safe* Fault* Crash* — never a regression to a safer class at a deeper
// offset.
func TestRowClassificationMonotone(t *testing.T) {
	specs, err := models.All()
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSweepConfig()
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Codename, func(t *testing.T) {
			sc, err := NewShardedCharacterizer(spec, 42, cfg)
			if err != nil {
				t.Fatal(err)
			}
			g, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			for fi, row := range g.Cells {
				for i := 1; i < len(row); i++ {
					if row[i] < row[i-1] {
						t.Fatalf("row %d kHz regresses from %s to %s at %d mV",
							g.FreqsKHz[fi], row[i-1], row[i], g.OffsetsMV[i])
					}
				}
			}
		})
	}
}

// FuzzRowMonotonicity fuzzes the analytic half of the bisect contract:
// for arbitrary seeds and any golden spec, the predicted batch upset
// probabilities must be non-decreasing in undervolt depth on every
// frequency row, and the coupled classification derived from them must
// therefore be monotone. This is the invariant whose violation would send
// bisect rows to the linear fallback.
func FuzzRowMonotonicity(f *testing.F) {
	f.Add(int64(42), uint8(0), uint8(0))
	f.Add(int64(-7), uint8(1), uint8(3))
	f.Add(int64(1<<40), uint8(2), uint8(7))
	specs, err := models.All()
	if err != nil {
		f.Fatal(err)
	}
	cfg := quickSweepConfig()
	offs := offsetAxis(cfg)
	f.Fuzz(func(t *testing.T, seed int64, specIdx, freqIdx uint8) {
		spec := specs[int(specIdx)%len(specs)]
		freqs := spec.FreqTableKHz()
		freqKHz := freqs[int(freqIdx)%len(freqs)]
		p, err := cpu.FactoryFor(spec)(RowSeed(seed, freqKHz))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := NewCharacterizer(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.cp.FrequencySet(cfg.VictimCore, freqKHz); err != nil {
			t.Fatal(err)
		}
		core := p.Core(cfg.VictimCore)
		uF, uC := ch.probeU(freqKHz)
		prevF, prevC := -1.0, -1.0
		prevCls := Safe
		for _, off := range offs {
			pf, pc := core.PredictProbabilities(ch.class(), off)
			pAnyF := cpu.BatchUpsetProbability(cfg.Iterations, pf)
			pAnyC := cpu.BatchUpsetProbability(cfg.Iterations, pc)
			if pAnyF < prevF || pAnyC < prevC {
				t.Fatalf("seed %d %s %d kHz: predicted upset probability regresses at %d mV",
					seed, spec.Codename, freqKHz, off)
			}
			cls := classifyCoupled(pAnyF, pAnyC, uF, uC)
			if cls < prevCls {
				t.Fatalf("seed %d %s %d kHz: coupled class regresses from %s to %s at %d mV",
					seed, spec.Codename, freqKHz, prevCls, cls, off)
			}
			prevF, prevC, prevCls = pAnyF, pAnyC, cls
		}
	})
}

// TestSearchTelemetryCounters asserts the probe-economics counters land in
// the Prometheus exposition, labelled by strategy and agreeing with the
// engine's own SearchStats.
func TestSearchTelemetryCounters(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.Strategy = StrategyBisect
	cfg.Workers = 2
	tel := telemetry.NewSet(func() sim.Time { return 0 }, 64, 1)
	cfg.Telemetry = tel
	sc := newShardedCharacterizer(t, "skylake", 42, cfg)
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	stats := sc.Stats()
	var buf bytes.Buffer
	if err := tel.Registry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`search_probes_total{strategy="bisect"} %d`, stats.Probes),
		fmt.Sprintf(`search_onset_found{strategy="bisect"} %d`, stats.OnsetRows),
		fmt.Sprintf(`search_fallback_rows_total{strategy="bisect"} %d`, stats.FallbackRows),
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if stats.OnsetRows == 0 {
		t.Error("no onset rows found on skylake")
	}
}

// hookedFactory wraps a platform factory so every built platform gets an
// OC-mailbox write hook on the victim core that rewrites voltage-offset
// commands per rewrite: interference the bisect strategy must detect.
func hookedFactory(base cpu.PlatformFactory, victim int, rewrite func(offsetMV int) (int, bool)) cpu.PlatformFactory {
	return func(seed int64) (*cpu.Platform, error) {
		p, err := base(seed)
		if err != nil {
			return nil, err
		}
		p.MSRFile(victim).AddWriteHook(msr.OCMailbox, func(_ *msr.File, _, proposed uint64) (uint64, error) {
			d := msr.DecodeVoltageOffset(proposed)
			if !d.Busy || !d.Write || d.Plane != msr.PlaneCore {
				return proposed, nil
			}
			mv := int(msr.UnitsToMV(d.OffsetUnits))
			if nv, ok := rewrite(mv); ok {
				return msr.EncodeVoltageOffset(nv, msr.PlaneCore), nil
			}
			return proposed, nil
		})
		return p, nil
	}
}

// TestBisectFallbackOnBrokenMonotonicity breaks the measured-vs-predicted
// contract with MSR write hooks that intercept mailbox commands, and
// asserts (a) the bisect strategy detects the contradiction at a probed
// cell and falls back to the linear scan, and (b) the fallback grid is
// byte-identical to what the sweep strategy measures under the same hook.
// The hooks here interfere on bands that overlap the verified boundary
// probes — the detection contract bisection actually offers (interference
// confined to never-probed interior cells is invisible to any O(log N)
// scheme by construction).
func TestBisectFallbackOnBrokenMonotonicity(t *testing.T) {
	cfg := quickSweepConfig()
	cases := []struct {
		name    string
		rewrite func(offsetMV int) (int, bool)
	}{
		// Clamp everything deeper than -60 mV to -60 mV: every predicted
		// onset vanishes, so the onset-region probes measure Safe where
		// Fault/Crash was predicted.
		{"deep writes clamped safe", func(mv int) (int, bool) {
			if mv < -60 {
				return -60, true
			}
			return 0, false
		}},
		// Rewrite the -100..-200 mV band to -80 mV: rows whose fault or
		// crash boundary lands in the band measure differently than
		// predicted exactly at the boundary probes.
		{"onset band displaced", func(mv int) (int, bool) {
			if mv <= -100 && mv >= -200 {
				return -80, true
			}
			return 0, false
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(strategy string) ([]byte, SearchStats) {
				c := cfg
				c.Strategy = strategy
				c.Workers = 4
				sc := newShardedCharacterizer(t, "skylake", 42, c)
				sc.Factory = hookedFactory(sc.Factory, cfg.VictimCore, tc.rewrite)
				g, err := sc.Run()
				if err != nil {
					t.Fatal(err)
				}
				data, err := g.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return data, sc.Stats()
			}
			sweepJSON, _ := runStrategy(t, "skylake", StrategySweep, 1, cfg)
			hookedSweepJSON, _ := run(StrategySweep)
			if string(sweepJSON) == string(hookedSweepJSON) {
				t.Fatal("hook had no observable effect; the case proves nothing")
			}
			hookedBisectJSON, stats := run(StrategyBisect)
			if stats.FallbackRows == 0 {
				t.Fatal("bisect never fell back despite broken monotonicity")
			}
			if string(hookedBisectJSON) != string(hookedSweepJSON) {
				t.Fatal("fallback grid diverges from the hooked sweep grid")
			}
			t.Logf("%d/%d rows fell back", stats.FallbackRows, stats.Rows)
		})
	}
}
