package core

import (
	"math/rand"
	"testing"

	"plugvolt/internal/msr"
)

// buildUnsafeSet derives a deterministic UnsafeSet from a seed: a mix of
// on-ratio-grid and off-grid frequencies, some entirely safe (present in
// FreqsKHz but absent from OnsetMV), occasionally empty. It exercises every
// branch of boundaryFor: exact hit, neighbour interpolation, all-safe
// neighbours falling back to the global shallowest onset, and the
// nothing-faults case.
func buildUnsafeSet(seed int64, busMHz int) *UnsafeSet {
	rng := rand.New(rand.NewSource(seed))
	u := &UnsafeSet{Model: "fuzz", OnsetMV: map[int]int{}, FloorMV: -300}
	n := rng.Intn(12) // 0 => empty set
	for i := 0; i < n; i++ {
		var f int
		if rng.Intn(2) == 0 {
			// On the pollable grid: an exact ratio multiple.
			f = msr.RatioToKHz(uint8(4+rng.Intn(50)), busMHz)
		} else {
			// Off-grid frequency (never equal to a ratio multiple).
			f = 4*busMHz*1000 + rng.Intn(46*busMHz*1000)
			if f%(busMHz*1000) == 0 {
				f += 500
			}
		}
		u.FreqsKHz = append(u.FreqsKHz, f)
		if rng.Intn(4) != 0 { // 1 in 4 frequencies stays entirely safe
			u.OnsetMV[f] = -50 - rng.Intn(250)
		}
	}
	sortInts(u.FreqsKHz)
	return u
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// checkEquivalence asserts the compiled table agrees with Contains for every
// ratio at the given offset/margin.
func checkEquivalence(t *testing.T, u *UnsafeSet, busMHz, marginMV, offsetMV int) {
	t.Helper()
	lut, err := u.Compile(busMHz, marginMV)
	if err != nil {
		t.Fatalf("Compile(%d, %d): %v", busMHz, marginMV, err)
	}
	for r := 0; r < 256; r++ {
		ratio := uint8(r)
		want := u.Contains(msr.RatioToKHz(ratio, busMHz), offsetMV-marginMV)
		if got := lut.Unsafe(ratio, offsetMV); got != want {
			b, ok := u.boundaryFor(msr.RatioToKHz(ratio, busMHz))
			t.Fatalf("ratio %d offset %d margin %d: lut=%v contains=%v (boundary %d ok=%v)",
				ratio, offsetMV, marginMV, got, want, b, ok)
		}
	}
}

// TestLUTMatchesContainsSweep is the deterministic property sweep: many set
// shapes (including the empty set), a grid of margins and offsets, every
// ratio. Off-grid pollable frequencies arise whenever a ratio multiple falls
// between characterized points.
func TestLUTMatchesContainsSweep(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, busMHz := range []int{100, 133} {
			u := buildUnsafeSet(seed, busMHz)
			for _, margin := range []int{0, 1, 15, 50} {
				for _, offset := range []int{0, -1, -49, -50, -51, -64, -65, -66, -100, -149, -150, -151, -299, -300, -301, -1000, 25} {
					checkEquivalence(t, u, busMHz, margin, offset)
				}
			}
		}
	}
}

// TestLUTEmptySet pins the no-fault case: an empty unsafe set compiles to a
// table that never fires, exactly like Contains.
func TestLUTEmptySet(t *testing.T) {
	u := &UnsafeSet{Model: "empty", OnsetMV: map[int]int{}, FloorMV: -300}
	lut, err := u.Compile(100, 15)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 256; r++ {
		if lut.Unsafe(uint8(r), -10000) {
			t.Fatalf("empty set: ratio %d flagged unsafe", r)
		}
		if _, ok := lut.Threshold(uint8(r)); ok {
			t.Fatalf("empty set: ratio %d has a threshold", r)
		}
	}
}

// TestLUTCompileValidation covers the error paths.
func TestLUTCompileValidation(t *testing.T) {
	u := buildUnsafeSet(1, 100)
	if _, err := u.Compile(0, 10); err == nil {
		t.Error("Compile accepted zero bus clock")
	}
	if _, err := u.Compile(-100, 10); err == nil {
		t.Error("Compile accepted negative bus clock")
	}
	if _, err := u.Compile(100, -1); err == nil {
		t.Error("Compile accepted negative margin")
	}
}

// TestFallbackPrecomputeMatchesScan checks the satellite optimization: the
// constructor-precomputed global-shallowest fallback answers exactly like
// the live OnsetMV scan a hand-built literal still uses.
func TestFallbackPrecomputeMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		literal := buildUnsafeSet(seed, 100) // fallbackReady = false
		data, err := literal.JSON()
		if err != nil {
			t.Fatal(err)
		}
		precomputed, err := UnsafeSetFromJSON(data) // fallbackReady = true
		if err != nil {
			t.Fatal(err)
		}
		if !precomputed.fallbackReady || literal.fallbackReady {
			t.Fatal("fallback readiness wiring broken")
		}
		for f := 0; f <= 5_200_000; f += 17_000 {
			b1, ok1 := literal.boundaryFor(f)
			b2, ok2 := precomputed.boundaryFor(f)
			if b1 != b2 || ok1 != ok2 {
				t.Fatalf("seed %d freq %d: literal (%d,%v) vs precomputed (%d,%v)",
					seed, f, b1, ok1, b2, ok2)
			}
		}
	}
}

// FuzzLUTContainsEquivalence is the randomized half of the tentpole's
// equivalence proof: arbitrary (set shape, margin, offset, ratio) tuples,
// including off-grid frequencies and the empty set, must agree between the
// compiled table and the reference Contains.
func FuzzLUTContainsEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(15), int16(-100), uint8(20))
	f.Add(int64(3), uint8(0), int16(0), uint8(0))
	f.Add(int64(7), uint8(200), int16(-300), uint8(255))
	f.Add(int64(11), uint8(1), int16(32767), uint8(8))
	f.Add(int64(13), uint8(255), int16(-32768), uint8(49))
	f.Fuzz(func(t *testing.T, seed int64, margin uint8, offset int16, ratio uint8) {
		for _, busMHz := range []int{100, 133} {
			u := buildUnsafeSet(seed, busMHz)
			lut, err := u.Compile(busMHz, int(margin))
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			freqKHz := msr.RatioToKHz(ratio, busMHz)
			want := u.Contains(freqKHz, int(offset)-int(margin))
			if got := lut.Unsafe(ratio, int(offset)); got != want {
				t.Fatalf("seed %d bus %d ratio %d offset %d margin %d: lut=%v contains=%v",
					seed, busMHz, ratio, offset, margin, got, want)
			}
			// The same tuple must also agree via SafetyMarginMV's boundary
			// view when a boundary exists.
			if th, ok := lut.Threshold(ratio); ok {
				if b, bok := u.boundaryFor(freqKHz); !bok || th != b+int(margin) {
					t.Fatalf("threshold %d != boundary %d + margin %d (ok=%v)", th, b, margin, bok)
				}
			}
		}
	})
}
