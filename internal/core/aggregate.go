package core

import (
	"errors"
	"fmt"
	"math"
)

// AggregateGrids fuses characterization grids from multiple runs (different
// seeds) of the *same* sweep into one conservative grid: a cell is Safe
// only if every run found it safe, Crash if any run crashed there, Fault
// otherwise. Fault onsets are statistical, so single-run grids carry
// silicon-lottery-style noise; fusing runs the way a deployment would
// (protect if any run faulted) tightens the boundary in the safe direction
// only.
func AggregateGrids(grids []*Grid) (*Grid, error) {
	if len(grids) == 0 {
		return nil, errors.New("core: nothing to aggregate")
	}
	ref := grids[0]
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	for _, g := range grids[1:] {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		if g.Model != ref.Model {
			return nil, fmt.Errorf("core: mixing models %q and %q", ref.Model, g.Model)
		}
		if len(g.FreqsKHz) != len(ref.FreqsKHz) || len(g.OffsetsMV) != len(ref.OffsetsMV) {
			return nil, errors.New("core: grids have different sweep axes")
		}
		for i := range g.FreqsKHz {
			if g.FreqsKHz[i] != ref.FreqsKHz[i] {
				return nil, errors.New("core: grids have different frequency axes")
			}
		}
		for i := range g.OffsetsMV {
			if g.OffsetsMV[i] != ref.OffsetsMV[i] {
				return nil, errors.New("core: grids have different offset axes")
			}
		}
	}
	out := &Grid{
		Model:      ref.Model,
		Microcode:  ref.Microcode,
		Seed:       -1, // composite
		Iterations: ref.Iterations * len(grids),
		FreqsKHz:   append([]int(nil), ref.FreqsKHz...),
		OffsetsMV:  append([]int(nil), ref.OffsetsMV...),
		Cells:      make([][]Classification, len(ref.FreqsKHz)),
	}
	for fi := range ref.FreqsKHz {
		row := make([]Classification, len(ref.OffsetsMV))
		for oi := range ref.OffsetsMV {
			worst := Safe
			for _, g := range grids {
				if c := g.Cells[fi][oi]; c > worst {
					worst = c
				}
			}
			row[oi] = worst
		}
		out.Cells[fi] = row
	}
	for _, g := range grids {
		out.Reboots += g.Reboots
	}
	return out, nil
}

// OnsetSpread summarizes run-to-run variation of the fault onset at one
// frequency across grids.
type OnsetSpread struct {
	FreqKHz int
	// MinMV / MaxMV are the shallowest and deepest onsets observed
	// (negative mV; min is the most negative).
	MinMV, MaxMV int
	// MeanMV and StdMV characterize the distribution.
	MeanMV, StdMV float64
	// Runs is how many grids had an onset at this frequency.
	Runs int
}

// OnsetSpreads computes per-frequency onset variation across grids with
// identical axes (use after the AggregateGrids axis checks, or directly —
// frequencies missing an onset in some run are reported with the runs that
// had one).
func OnsetSpreads(grids []*Grid) ([]OnsetSpread, error) {
	if len(grids) == 0 {
		return nil, errors.New("core: nothing to analyze")
	}
	ref := grids[0]
	var out []OnsetSpread
	for _, f := range ref.FreqsKHz {
		var onsets []int
		for _, g := range grids {
			if on, ok := g.OnsetMV(f); ok {
				onsets = append(onsets, on)
			}
		}
		if len(onsets) == 0 {
			continue
		}
		sp := OnsetSpread{FreqKHz: f, Runs: len(onsets), MinMV: onsets[0], MaxMV: onsets[0]}
		sum := 0.0
		for _, o := range onsets {
			if o < sp.MinMV {
				sp.MinMV = o
			}
			if o > sp.MaxMV {
				sp.MaxMV = o
			}
			sum += float64(o)
		}
		sp.MeanMV = sum / float64(len(onsets))
		var ss float64
		for _, o := range onsets {
			d := float64(o) - sp.MeanMV
			ss += d * d
		}
		sp.StdMV = math.Sqrt(ss / float64(len(onsets)))
		out = append(out, sp)
	}
	return out, nil
}
