package core

import (
	"errors"
	"fmt"

	"plugvolt/internal/flight"
	"plugvolt/internal/kernel"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
)

// ModuleName is the polling countermeasure's kernel-module name; SGX
// attestation reports reference it (paper Sec. 4.1: "we propose that the
// load/unload state of our countermeasure's kernel module be a part of SGX
// attestation").
const ModuleName = "plug_your_volt"

// GuardConfig parameterizes the Algorithm 3 polling countermeasure.
type GuardConfig struct {
	// PollPeriod is the kthread wake interval. Shorter periods shrink the
	// attack window but raise overhead (Table 2 trades these off).
	PollPeriod sim.Duration
	// PinnedCore hosts the polling kthread (single-thread deployment).
	PinnedCore int
	// PerCoreThreads starts one kthread per core, each polling only its
	// own MSRs: the per-core cost halves (no remote reads) and the
	// overhead spreads evenly instead of taxing one core — the deployment
	// a production module would choose. Ablation-comparable with the
	// single-thread form the paper's Algorithm 3 sketches.
	PerCoreThreads bool
	// SafeOffsetMV is the offset written to MSR 0x150 to force the system
	// back into a safe state. Zero (stock voltage) is always safe; setting
	// it to the maximal safe state preserves benign undervolting even
	// mid-intervention.
	SafeOffsetMV int
	// MarginMV widens the unsafe boundary by this many millivolts. The
	// empirical onset is a statistical estimate (one million imuls see
	// faults only above ~1e-6 per-instruction probability); states just
	// shallower than the measured onset still fault at minute rates that a
	// patient attacker can farm. The margin covers that tail.
	MarginMV int

	// VoltageCrossCheck is an extension beyond the paper: each poll also
	// compares the live IA32_PERF_STATUS core voltage against the value
	// implied by the polled (ratio, offset) pair. A persistent deficit
	// means the rail is being driven out of band — a VoltPillager-style
	// hardware SVID injection that never touches MSR 0x150. Software
	// cannot out-command a soldered-on injector, so the guard records the
	// anomaly (for alerting / enclave evacuation) rather than claiming
	// prevention.
	VoltageCrossCheck bool
	// ExpectedMV maps a P-state ratio to the stock rail voltage; required
	// when VoltageCrossCheck is set (models.Spec.NominalMV fits).
	ExpectedMV func(ratio uint8) float64
	// CrossCheckSlackMV is the tolerated deficit (regulator mid-slew
	// transients); default 30.
	CrossCheckSlackMV int
	// CrossCheckPersist is how many consecutive deficit polls raise an
	// anomaly (filters the recovery transient after a register
	// intervention); default 3.
	CrossCheckPersist int

	// Telemetry, when set, receives per-core poll/intervention/anomaly
	// counters, the poll-latency histogram, and journal events for every
	// intervention and anomaly. Nil disables instrumentation; the guard's
	// behaviour is identical either way (observing never charges time or
	// draws randomness).
	Telemetry *telemetry.Set

	// Flight, when set, receives one compact record per poll and per
	// intervention, and is handed the compiled unsafe-set view so incident
	// bundles carry the exact boundary the guard was enforcing. Like
	// Telemetry, attaching it never changes guard behaviour, and the
	// per-poll record stays on the allocation-free hot path.
	Flight *flight.Recorder
}

// DefaultGuardConfig polls every 100 us and restores stock voltage.
//
// The period is chosen against the regulator's physics: after a malicious
// wrmsr the rail needs cmdLatency + |onset|/slew (>= ~140 us on the fastest
// characterized part) to reach fault depth, so a 100 us register poll
// rewrites 0x150 before the voltage ever becomes exploitable — the
// mechanism behind the paper's "completely prevents DVFS faults" result.
// Per-tick cost (~0.7 us) over 100 us puts the direct overhead at ~0.3% of
// the pinned core, the same order as the paper's measured 0.28%.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{PollPeriod: 100 * sim.Microsecond, MarginMV: 15}
}

// Guard is the polling countermeasure: a kernel module whose kthread reads
// MSR 0x198 (frequency) and MSR 0x150 (voltage offset) on every core and,
// when the pair is in the unsafe set, rewrites 0x150 to force a safe state.
type Guard struct {
	cfg    GuardConfig
	unsafe *UnsafeSet
	busMHz int
	// lut is the compiled decision table: the unsafe boundary flattened over
	// the 256-slot ratio domain with MarginMV folded in, so the per-poll
	// membership test is two array loads instead of a map lookup + binary
	// search on UnsafeSet.
	lut *RatioLUT

	k       *kernel.Kernel
	thread  *kernel.KThread
	threads []*kernel.KThread // per-core deployment

	// Checks counts per-core state inspections; Interventions counts
	// forced returns to the safe state.
	Checks        uint64
	Interventions uint64
	// LastIntervention records the most recent forced transition.
	LastIntervention sim.Time

	// HardwareAnomalies counts detected out-of-band rail deficits
	// (voltage cross-check extension); LastAnomaly timestamps the latest.
	HardwareAnomalies uint64
	LastAnomaly       sim.Time
	// deficitRuns tracks consecutive deficit polls per core.
	deficitRuns map[int]int

	// Per-core instruments, indexed by core; nil slices when telemetry is
	// disabled (every method on them is then a no-op).
	pollsC         []*telemetry.Counter
	interventionsC []*telemetry.Counter
	anomaliesC     []*telemetry.Counter
	pollLatency    *telemetry.Histogram
	// spans is the causal tracer (nil when telemetry is disabled): every
	// poll opens a "guard_poll" span and every forced rewrite a
	// "guard_intervention" span enclosing the corrective wrmsr, which is the
	// causal chain the SLO watchdog and the e2e trace test check.
	spans *span.Tracer
	// pollAttrs[core] is the preallocated attribute map for that core's
	// "guard_poll" span, built once in instrument. Poll spans share the map
	// by reference (never mutated after construction) so tracing a poll does
	// not allocate.
	pollAttrs []map[string]any
	// flight is the flight recorder (nil disables it); its per-poll record
	// is a fixed-size ring store, keeping the hot path allocation-free.
	flight *flight.Recorder
}

// pollLatencyBuckets bound the per-core poll cost histogram in seconds. A
// local poll is two rdmsr (~100 ns); a remote poll adds the wrmsr of an
// intervention; the tail buckets catch pathological cost models.
var pollLatencyBuckets = []float64{
	50e-9, 100e-9, 150e-9, 200e-9, 300e-9, 500e-9, 1e-6, 2e-6, 5e-6, 10e-6,
}

// NewGuard builds a guard for a characterized machine. busMHz converts the
// polled PERF_STATUS ratio into the unsafe set's frequency domain.
func NewGuard(unsafe *UnsafeSet, busMHz int, cfg GuardConfig) (*Guard, error) {
	if unsafe == nil {
		return nil, errors.New("core: nil unsafe set")
	}
	if busMHz <= 0 {
		return nil, fmt.Errorf("core: bus clock %d MHz", busMHz)
	}
	if cfg.PollPeriod <= 0 {
		return nil, errors.New("core: poll period must be positive")
	}
	if cfg.SafeOffsetMV > 0 {
		return nil, errors.New("core: safe offset must be <= 0")
	}
	if cfg.MarginMV < 0 {
		return nil, errors.New("core: margin must be >= 0")
	}
	if cfg.VoltageCrossCheck {
		if cfg.ExpectedMV == nil {
			return nil, errors.New("core: voltage cross-check needs ExpectedMV")
		}
		if cfg.CrossCheckSlackMV == 0 {
			cfg.CrossCheckSlackMV = 30
		}
		if cfg.CrossCheckPersist == 0 {
			cfg.CrossCheckPersist = 3
		}
		if cfg.CrossCheckSlackMV < 0 || cfg.CrossCheckPersist < 1 {
			return nil, errors.New("core: bad cross-check parameters")
		}
	}
	lut, err := unsafe.Compile(busMHz, cfg.MarginMV)
	if err != nil {
		return nil, err
	}
	if cfg.Flight != nil {
		cfg.Flight.SetGuardView(guardView(lut, cfg))
	}
	return &Guard{cfg: cfg, unsafe: unsafe, busMHz: busMHz, lut: lut,
		flight: cfg.Flight, deficitRuns: map[int]int{}}, nil
}

// guardView freezes the compiled decision table into the flight recorder's
// bundle header form: the per-ratio unsafe thresholds (margin folded in) in
// ascending ratio order, plus the enforcement parameters.
func guardView(lut *RatioLUT, cfg GuardConfig) *flight.GuardView {
	v := &flight.GuardView{
		Model:       lut.Model,
		BusMHz:      lut.BusMHz,
		MarginMV:    cfg.MarginMV,
		SafeMV:      cfg.SafeOffsetMV,
		PollPeriodP: int64(cfg.PollPeriod),
	}
	for r := 0; r < 256; r++ {
		if th, ok := lut.Threshold(uint8(r)); ok {
			v.Thresholds = append(v.Thresholds, flight.RatioThreshold{Ratio: r, ThresholdMV: th})
		}
	}
	return v
}

// Module returns the loadable kernel module housing the guard. Loading it
// starts the polling kthread; unloading stops it (the adversarial rmmod the
// attestation flag defends against).
func (g *Guard) Module() *kernel.Module {
	return &kernel.Module{
		Name: ModuleName,
		Init: func(k *kernel.Kernel) error {
			g.k = k
			g.instrument(k.Machine().NumCores())
			if g.cfg.PerCoreThreads {
				for core := 0; core < k.Machine().NumCores(); core++ {
					core := core
					t, err := k.StartKThread(fmt.Sprintf("%s/%d", ModuleName, core), core,
						g.cfg.PollPeriod, func(t *kernel.KThread) { g.pollOne(t, core) })
					if err != nil {
						for _, prev := range g.threads {
							prev.Stop()
						}
						g.threads = nil
						return err
					}
					g.threads = append(g.threads, t)
				}
				_ = k.RegisterProc(ModuleName, g.Status)
				return nil
			}
			if g.cfg.PinnedCore < 0 || g.cfg.PinnedCore >= k.Machine().NumCores() {
				return fmt.Errorf("core: guard pinned to nonexistent core %d", g.cfg.PinnedCore)
			}
			t, err := k.StartKThread(ModuleName, g.cfg.PinnedCore, g.cfg.PollPeriod, g.poll)
			if err != nil {
				return err
			}
			g.thread = t
			// Expose live counters the way the real module would through
			// /proc; failures are non-fatal (the entry is informational).
			_ = k.RegisterProc(ModuleName, g.Status)
			return nil
		},
		Exit: func(k *kernel.Kernel) {
			if g.thread != nil {
				g.thread.Stop()
				g.thread = nil
			}
			for _, t := range g.threads {
				t.Stop()
			}
			g.threads = nil
			k.UnregisterProc(ModuleName)
			g.cfg.Telemetry.Events().Emit("guard_unloaded", map[string]any{
				"module": ModuleName, "checks": g.Checks, "interventions": g.Interventions,
			})
		},
	}
}

// instrument builds the per-core counters and the poll-latency histogram.
// With no telemetry set everything stays nil, and the nil-safe instrument
// methods make every observation a no-op.
func (g *Guard) instrument(numCores int) {
	tel := g.cfg.Telemetry
	if tel == nil {
		return
	}
	reg := tel.Registry()
	g.pollsC = make([]*telemetry.Counter, numCores)
	g.interventionsC = make([]*telemetry.Counter, numCores)
	g.anomaliesC = make([]*telemetry.Counter, numCores)
	g.pollAttrs = make([]map[string]any, numCores)
	for core := 0; core < numCores; core++ {
		g.pollAttrs[core] = map[string]any{"core": core}
		lbl := telemetry.Labels{"core": fmt.Sprintf("%d", core)}
		g.pollsC[core] = reg.Counter("guard_polls_total",
			"per-core (freq, offset) state inspections by the polling kthread", lbl)
		g.interventionsC[core] = reg.Counter("guard_interventions_total",
			"forced returns to the safe state via MSR 0x150", lbl)
		g.anomaliesC[core] = reg.Counter("guard_hw_anomalies_total",
			"persistent out-of-band rail deficits flagged by the voltage cross-check", lbl)
	}
	g.pollLatency = reg.Histogram("guard_poll_latency_seconds",
		"CPU cost of one per-core poll (MSR reads plus any intervention write)",
		pollLatencyBuckets, nil)
	g.spans = tel.Spans()
	mode := "single-thread"
	if g.cfg.PerCoreThreads {
		mode = "per-core"
	}
	tel.Events().Emit("guard_loaded", map[string]any{
		"module": ModuleName, "mode": mode,
		"poll_period_ps": int64(g.cfg.PollPeriod), "margin_mv": g.cfg.MarginMV,
	})
}

// Status renders the module's live counters — the /proc/plug_your_volt
// contents.
func (g *Guard) Status() string {
	mode := "single-thread"
	if g.cfg.PerCoreThreads {
		mode = "per-core"
	}
	return fmt.Sprintf(
		"plug_your_volt: running=%v mode=%s poll=%v margin=%dmV safe_offset=%dmV\nchecks=%d interventions=%d last_intervention=%v hw_anomalies=%d\n",
		g.Running(), mode, g.cfg.PollPeriod, g.cfg.MarginMV, g.cfg.SafeOffsetMV,
		g.Checks, g.Interventions, g.LastIntervention, g.HardwareAnomalies)
}

// Running reports whether any polling kthread is live.
func (g *Guard) Running() bool { return g.thread != nil || len(g.threads) > 0 }

// poll is one Algorithm 3 iteration: inspect every core, force safe states.
func (g *Guard) poll(t *kernel.KThread) {
	n := g.k.Machine().NumCores()
	for core := 0; core < n; core++ {
		g.pollOne(t, core)
	}
}

// pollOne inspects a single core's state pair and intervenes if unsafe.
//
// This is the countermeasure's steady-state cost (Table 2), so the path is
// branch-poor and allocation-free: membership is the compiled RatioLUT (two
// array loads), the poll span reuses the preallocated per-core attribute map
// through the by-value Scope API, and span/latency accounting is closed by
// an explicit endPoll at each return instead of a deferred closure. Only an
// actual intervention — rare by construction, bounded by attacks rather than
// the poll rate — takes the allocating slow path.
func (g *Guard) pollOne(t *kernel.KThread, core int) {
	g.Checks++
	busyBefore := t.Busy
	var sc span.Scope
	if g.spans != nil {
		sc = g.spans.StartScope("guard", "guard_poll", g.pollAttrs[core])
	}
	if g.pollsC != nil {
		g.pollsC[core].Inc()
	}
	status, err := t.ReadMSR(core, msr.IA32PerfStatus)
	if err != nil {
		g.endPoll(&sc, t, busyBefore)
		return // core offline (crashed); nothing to protect
	}
	ratio, liveV := msr.DecodePerfStatus(status)

	mailbox, err := t.ReadMSR(core, msr.OCMailbox)
	if err != nil {
		g.endPoll(&sc, t, busyBefore)
		return
	}
	offsetMV := msr.DecodeVoltageOffset(mailbox).OffsetMV

	if g.cfg.VoltageCrossCheck {
		g.crossCheck(core, ratio, offsetMV, liveV)
	}

	// Membership with the conservative margin pre-folded in: a state within
	// MarginMV of the measured boundary is treated as unsafe.
	unsafe := g.lut.Unsafe(ratio, offsetMV)
	g.flight.GuardPoll(core, ratio, offsetMV, unsafe)
	if unsafe {
		g.intervene(t, core, ratio, offsetMV)
	}
	g.endPoll(&sc, t, busyBefore)
}

// endPoll closes the poll span and the latency histogram with the CPU time
// the poll charged through the kthread — virtual accounting, so observing
// it cannot perturb the run.
func (g *Guard) endPoll(sc *span.Scope, t *kernel.KThread, busyBefore sim.Duration) {
	cost := t.Busy - busyBefore
	sc.EndWithCost(cost)
	if g.pollLatency != nil {
		g.pollLatency.Observe(telemetry.Seconds(cost))
	}
}

// intervene forces core back into a safe state via MSR 0x150. The
// intervention span stays open across the write so the corrective wrmsr
// (and its register-level mailbox_write outcome) is causally enclosed by
// the intervention in the trace.
func (g *Guard) intervene(t *kernel.KThread, core int, ratio uint8, offsetMV int) {
	freqKHz := msr.RatioToKHz(ratio, g.busMHz)
	var isp *span.Active
	if g.spans != nil {
		isp = g.spans.Start("guard", "guard_intervention", map[string]any{
			"core": core, "freq_khz": freqKHz, "offset_mv": offsetMV,
			"safe_mv": g.cfg.SafeOffsetMV,
		})
	}
	writeBusy := t.Busy
	energyBefore := g.k.EnergyPJ(core)
	// The corrective write books as CostIntervention: the one ledger row
	// (time and joules) that exists only because an attack happened.
	err := t.WriteMSRKind(kernel.CostIntervention, core, msr.OCMailbox, safeCommand(g.cfg.SafeOffsetMV))
	isp.SetAttr("ok", err == nil)
	isp.SetAttr("energy_pj", g.k.EnergyPJ(core)-energyBefore)
	isp.EndWithCost(t.Busy - writeBusy)
	g.flight.GuardIntervention(core, offsetMV, g.cfg.SafeOffsetMV, err == nil)
	if err == nil {
		g.Interventions++
		g.LastIntervention = g.k.Sim().Now()
		if g.interventionsC != nil {
			g.interventionsC[core].Inc()
		}
		g.cfg.Telemetry.Events().Emit("guard_intervention", map[string]any{
			"core": core, "freq_khz": freqKHz, "offset_mv": offsetMV,
			"safe_mv": g.cfg.SafeOffsetMV,
		})
	}
}

// safeCommand encodes the mailbox write that forces the safe offset.
func safeCommand(safeOffsetMV int) uint64 {
	return msr.EncodeVoltageOffset(safeOffsetMV, msr.PlaneCore)
}

// crossCheck compares the live rail against the (ratio, offset) implied
// voltage; a persistent deficit flags out-of-band undervolting.
func (g *Guard) crossCheck(core int, ratio uint8, offsetMV int, liveV float64) {
	expectedMV := g.cfg.ExpectedMV(ratio) + float64(offsetMV)
	deficit := expectedMV - liveV*1000
	if deficit > float64(g.cfg.CrossCheckSlackMV) {
		g.deficitRuns[core]++
		if g.deficitRuns[core] == g.cfg.CrossCheckPersist {
			g.HardwareAnomalies++
			g.LastAnomaly = g.k.Sim().Now()
			if g.anomaliesC != nil {
				g.anomaliesC[core].Inc()
			}
			g.cfg.Telemetry.Events().Emit("guard_hw_anomaly", map[string]any{
				"core": core, "deficit_mv": deficit, "ratio": int(ratio),
				"offset_mv": offsetMV,
			})
		}
		return
	}
	g.deficitRuns[core] = 0
}

// WorstCaseTurnaround bounds the window between entering an unsafe state
// and the voltage regulator completing the forced recovery: one full poll
// period (detection latency) plus the MSR write and regulator travel from
// the deepest characterized offset back to the safe offset.
//
// Section 5 motivates the microcode/clamp variants by driving exactly this
// number to (near) zero.
func (g *Guard) WorstCaseTurnaround(vrCommandLatency sim.Duration, slewMVPerUS float64) sim.Duration {
	depth := float64(g.cfg.SafeOffsetMV - g.unsafe.FloorMV) // mV to travel
	if depth < 0 {
		depth = -depth
	}
	slew := sim.Duration(depth / slewMVPerUS * float64(sim.Microsecond))
	return g.cfg.PollPeriod + vrCommandLatency + slew
}
