package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
)

func newShardedCharacterizer(t *testing.T, model string, seed int64, cfg CharacterizerConfig) *ShardedCharacterizer {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShardedCharacterizer(spec, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestShardedCharacterizerValidation(t *testing.T) {
	cfg := quickSweepConfig()
	if _, err := NewShardedCharacterizer(nil, 1, cfg); err == nil {
		t.Fatal("nil spec accepted")
	}
	spec, err := models.ByName("skylake")
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.VictimCore = bad.DriverCore
	if _, err := NewShardedCharacterizer(spec, 1, bad); err == nil {
		t.Fatal("same victim/driver accepted")
	}
	bad = cfg
	bad.VictimCore = spec.Cores
	if _, err := NewShardedCharacterizer(spec, 1, bad); err == nil {
		t.Fatal("out-of-range victim core accepted")
	}
	bad = cfg
	bad.OffsetStepMV = 5
	if _, err := NewShardedCharacterizer(spec, 1, bad); err == nil {
		t.Fatal("positive step accepted")
	}
}

// TestShardedWorkerCountInvariance is the engine's core guarantee: the same
// seed produces byte-identical Grid JSON no matter how many workers sweep
// it, and replays are byte-identical too.
func TestShardedWorkerCountInvariance(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.OffsetEndMV = -200 // shorter for speed
	runJSON := func(workers int) []byte {
		c := cfg
		c.Workers = workers
		sc := newShardedCharacterizer(t, "skylake", 77, c)
		g, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("workers=%d produced invalid grid: %v", workers, err)
		}
		data, err := g.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := runJSON(1)
	for _, workers := range []int{2, 3, 8} {
		if got := runJSON(workers); !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d grid JSON diverged from workers=1", workers)
		}
	}
	// Same worker count, replayed: identical as well.
	if got := runJSON(2); !bytes.Equal(ref, got) {
		t.Fatal("replay with workers=2 diverged")
	}
}

func TestShardedGridShape(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.Workers = 4
	sc := newShardedCharacterizer(t, "skylake", 42, cfg)
	g, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Model != "Sky Lake" || g.Seed != 42 {
		t.Fatalf("grid identity: %s seed %d", g.Model, g.Seed)
	}
	if g.Reboots == 0 {
		t.Fatal("no reboots despite crash cells")
	}
	for _, f := range g.FreqsKHz {
		if _, ok := g.OnsetMV(f); !ok {
			t.Errorf("%d kHz: no unsafe region", f)
		}
	}
	// The published shape survives sharding: onsets shrink with frequency.
	onLow, _ := g.OnsetMV(g.FreqsKHz[0])
	onHigh, _ := g.OnsetMV(g.FreqsKHz[len(g.FreqsKHz)-1])
	if onHigh <= onLow+20 {
		t.Errorf("onset shape lost: %d mV at fmin, %d mV at fmax", onLow, onHigh)
	}
}

// TestShardedProgressAggregation: every row reports exactly once, the done
// counter is monotonic, and callbacks are serialized through the merge loop
// (the mutation below would trip -race otherwise).
func TestShardedProgressAggregation(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.OffsetEndMV = -150
	cfg.Workers = 8
	// seen/lastDone are deliberately unsynchronized: callbacks running on
	// the merge loop's goroutine is the contract, and -race enforces it.
	seen := map[int]int{}
	lastDone := 0
	cfg.Progress = func(freqKHz, done, total int) {
		seen[freqKHz]++
		if done != lastDone+1 {
			t.Errorf("done jumped %d -> %d", lastDone, done)
		}
		lastDone = done
	}
	sc := newShardedCharacterizer(t, "skylake", 5, cfg)
	g, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != len(g.FreqsKHz) {
		t.Fatalf("progress completions %d, want %d", lastDone, len(g.FreqsKHz))
	}
	for _, f := range g.FreqsKHz {
		if seen[f] != 1 {
			t.Errorf("row %d kHz reported %d times", f, seen[f])
		}
	}
}

func TestShardedFactoryFailure(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.Workers = 3
	sc := newShardedCharacterizer(t, "skylake", 9, cfg)
	boom := errors.New("no more platforms")
	var built atomic.Int64 // factories are called from all workers at once
	inner := sc.Factory
	sc.Factory = func(seed int64) (*cpu.Platform, error) {
		if built.Add(1) > 5 {
			return nil, boom
		}
		return inner(seed)
	}
	if _, err := sc.Run(); !errors.Is(err, boom) {
		t.Fatalf("factory failure not surfaced: %v", err)
	}
}

func TestRowSeedDerivation(t *testing.T) {
	if RowSeed(42, 3_200_000) != 42^3_200_000 {
		t.Fatal("row seed is not seed^freqKHz")
	}
	// Distinct frequencies must get distinct streams for any base seed.
	if RowSeed(7, 800_000) == RowSeed(7, 900_000) {
		t.Fatal("row seeds collide across frequencies")
	}
	// And the derivation is schedule-free: it depends on nothing but its
	// arguments (compile-time property, asserted here for documentation).
	if RowSeed(1, 2) != RowSeed(1, 2) {
		t.Fatal("row seed not pure")
	}
}
