package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
)

// RowSeed derives the private RNG seed for one frequency row of a sharded
// sweep: seed ^ freqKHz. Every row's stochastic realization (jitter coin
// flips, fault masks, crash points) is a pure function of the experiment
// seed and the row frequency — never of which worker swept the row or in
// what order — which is what makes the parallel sweep bit-for-bit equal to
// the single-worker one.
func RowSeed(seed int64, freqKHz int) int64 { return seed ^ int64(freqKHz) }

// ShardedCharacterizer runs Algorithm 2 with the frequency axis partitioned
// across N workers. Frequency rows are independent by construction (each
// row starts from offset 0 and stops at its own crash onset), so the sweep
// is embarrassingly parallel; the engine preserves determinism by giving
// every row a private platform stack (simulator, cores, MSR files, PLLs,
// regulators, cpufreq) built from RowSeed and by merging finished rows by
// frequency index, not completion order.
type ShardedCharacterizer struct {
	// Factory builds the per-row platform stack. It is called concurrently
	// from every worker and must be safe for concurrent use (pure
	// constructors like the default cpu.FactoryFor(spec) are). Tests
	// substitute failing factories.
	Factory cpu.PlatformFactory

	spec *models.Spec
	seed int64
	cfg  CharacterizerConfig
}

// NewShardedCharacterizer validates the sweep config against the spec.
func NewShardedCharacterizer(spec *models.Spec, seed int64, cfg CharacterizerConfig) (*ShardedCharacterizer, error) {
	if spec == nil {
		return nil, errors.New("core: nil spec")
	}
	if err := validateConfig(cfg, spec.Cores); err != nil {
		return nil, err
	}
	return &ShardedCharacterizer{
		Factory: cpu.FactoryFor(spec),
		spec:    spec,
		seed:    seed,
		cfg:     cfg,
	}, nil
}

// workers resolves the shard count: cfg.Workers, defaulting to GOMAXPROCS,
// capped at the row count (extra workers would only idle).
func (sc *ShardedCharacterizer) workers(rows int) int {
	w := sc.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	return w
}

// rowResult carries one finished frequency row from a worker to the merge
// loop.
type rowResult struct {
	fi      int
	row     []Classification
	reboots int
	err     error
}

// Run executes the sharded sweep and returns the merged grid. The result is
// byte-identical across worker counts and schedules for a given (spec, seed,
// config); see RowSeed for why.
func (sc *ShardedCharacterizer) Run() (*Grid, error) {
	freqs := sc.spec.FreqTableKHz()
	offs := offsetAxis(sc.cfg)
	g := &Grid{
		Model:      sc.spec.Codename,
		Microcode:  sc.spec.Microcode,
		Seed:       sc.seed,
		Iterations: sc.cfg.Iterations,
		FreqsKHz:   freqs,
		OffsetsMV:  offs,
		Cells:      make([][]Classification, len(freqs)),
	}

	jobs := make(chan int)
	results := make(chan rowResult)
	var wg sync.WaitGroup
	for w := 0; w < sc.workers(len(freqs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fi := range jobs {
				row, reboots, err := sc.sweepRow(freqs[fi], offs)
				results <- rowResult{fi: fi, row: row, reboots: reboots, err: err}
			}
		}()
	}
	go func() {
		for fi := range freqs {
			jobs <- fi
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// The merge loop is the only consumer of results, so progress callbacks
	// are serialized here: rows may finish out of order, but callbacks never
	// run concurrently and rowsDone counts completions monotonically.
	var firstErr error
	done := 0
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: shard at %d kHz: %w", freqs[r.fi], r.err)
			}
			continue
		}
		mergeRow(g, r)
		done++
		if sc.cfg.Progress != nil {
			sc.cfg.Progress(freqs[r.fi], done, len(freqs))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// mergeRow lands one finished row in the grid. Placement is by frequency
// index and the reboot count is a sum, so the merged grid is independent of
// arrival order.
func mergeRow(g *Grid, r rowResult) {
	g.Cells[r.fi] = r.row
	g.Reboots += r.reboots
}

// sweepRow characterizes one frequency on a private platform stack: build
// the machine from the row seed, record the stock operating point, run the
// serial engine's row sweep, and restore — exactly the per-row protocol of
// Characterizer.Run, minus the cross-row state.
func (sc *ShardedCharacterizer) sweepRow(freqKHz int, offs []int) ([]Classification, int, error) {
	p, err := sc.Factory(RowSeed(sc.seed, freqKHz))
	if err != nil {
		return nil, 0, err
	}
	ch, err := NewCharacterizer(p, sc.cfg)
	if err != nil {
		return nil, 0, err
	}
	// Algorithm 2 lines 6-7: record the normal operating point.
	origStatus, err := p.MSRFile(sc.cfg.VictimCore).Read(msr.IA32PerfStatus)
	if err != nil {
		return nil, 0, err
	}
	origRatio, _ := msr.DecodePerfStatus(origStatus)
	origFreqKHz := msr.RatioToKHz(origRatio, p.Spec.BusMHz)

	row, err := ch.sweepRow(freqKHz, offs)
	if err != nil {
		return nil, 0, err
	}
	// Lines 13-14: restore the stock frequency and zero offset. The platform
	// is discarded afterwards, but the restore keeps the row's RNG draw
	// sequence identical to the serial engine's per-row protocol.
	if err := ch.restore(origFreqKHz); err != nil {
		return nil, 0, err
	}
	return row, p.Reboots, nil
}
