package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// RowSeed derives the private RNG seed for one frequency row of a sharded
// sweep: seed ^ freqKHz. Every row's stochastic realization (jitter coin
// flips, fault masks, crash points) is a pure function of the experiment
// seed and the row frequency — never of which worker swept the row or in
// what order — which is what makes the parallel sweep bit-for-bit equal to
// the single-worker one.
func RowSeed(seed int64, freqKHz int) int64 { return seed ^ int64(freqKHz) }

// ShardedCharacterizer runs Algorithm 2 with the frequency axis partitioned
// across N workers. Frequency rows are independent by construction (each
// row starts from offset 0 and stops at its own crash onset), so the sweep
// is embarrassingly parallel; the engine preserves determinism by giving
// every row a private platform stack (simulator, cores, MSR files, PLLs,
// regulators, cpufreq) built from RowSeed and by merging finished rows by
// frequency index, not completion order.
type ShardedCharacterizer struct {
	// Factory builds the per-row platform stack. It is called concurrently
	// from every worker and must be safe for concurrent use (pure
	// constructors like the default cpu.FactoryFor(spec) are). Tests
	// substitute failing factories.
	Factory cpu.PlatformFactory

	spec *models.Spec
	seed int64
	cfg  CharacterizerConfig
	// stats holds the most recent Run's probe economics, written only by
	// the merge loop (see Stats).
	stats SearchStats
}

// NewShardedCharacterizer validates the sweep config against the spec.
func NewShardedCharacterizer(spec *models.Spec, seed int64, cfg CharacterizerConfig) (*ShardedCharacterizer, error) {
	if spec == nil {
		return nil, errors.New("core: nil spec")
	}
	if err := validateConfig(cfg, spec.Cores); err != nil {
		return nil, err
	}
	return &ShardedCharacterizer{
		Factory: cpu.FactoryFor(spec),
		spec:    spec,
		seed:    seed,
		cfg:     cfg,
	}, nil
}

// workers resolves the shard count: cfg.Workers, defaulting to GOMAXPROCS,
// capped at the row count (extra workers would only idle).
func (sc *ShardedCharacterizer) workers(rows int) int {
	w := sc.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	return w
}

// rowResult carries one finished frequency row from a worker to the merge
// loop.
type rowResult struct {
	fi      int
	row     []Classification
	reboots int
	err     error
	// worker identifies the goroutine that swept the row; virtual is the
	// row platform's elapsed virtual time; stats carries the row's search
	// economics. All three feed telemetry only — the merged grid never
	// depends on them.
	worker  int
	virtual sim.Duration
	stats   rowStats
}

// Run executes the sharded sweep and returns the merged grid. The result is
// byte-identical across worker counts and schedules for a given (spec, seed,
// config); see RowSeed for why.
func (sc *ShardedCharacterizer) Run() (*Grid, error) {
	freqs := sc.spec.FreqTableKHz()
	offs := offsetAxis(sc.cfg)
	g := &Grid{
		Model:      sc.spec.Codename,
		Microcode:  sc.spec.Microcode,
		Seed:       sc.seed,
		Iterations: sc.cfg.Iterations,
		FreqsKHz:   freqs,
		OffsetsMV:  offs,
		Cells:      make([][]Classification, len(freqs)),
	}

	// One slab backs every row. Workers write disjoint [fi*len(offs),
	// (fi+1)*len(offs)) windows, so sharing the backing array is race-free
	// and the whole grid costs one allocation instead of one per row.
	cells := make([]Classification, len(freqs)*len(offs))

	jobs := make(chan int)
	results := make(chan rowResult)
	var wg sync.WaitGroup
	workers := sc.workers(len(freqs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for fi := range jobs {
				row := cells[fi*len(offs) : (fi+1)*len(offs) : (fi+1)*len(offs)]
				var (
					reboots int
					virtual sim.Duration
					st      rowStats
					err     error
				)
				if sc.cfg.Strategy == StrategyBisect {
					reboots, virtual, st, err = sc.bisectRow(row, freqs[fi], offs)
				} else {
					reboots, virtual, st, err = sc.sweepRow(row, freqs[fi], offs)
				}
				results <- rowResult{fi: fi, row: row, reboots: reboots,
					err: err, worker: w, virtual: virtual, stats: st}
			}
		}(w)
	}
	go func() {
		for fi := range freqs {
			jobs <- fi
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// The merge loop is the only consumer of results, so progress callbacks
	// and telemetry updates are serialized here: rows may finish out of
	// order, but callbacks never run concurrently and rowsDone counts
	// completions monotonically.
	obs := newSweepObserver(sc.cfg.Telemetry, workers, sc.strategy())
	sc.stats = SearchStats{Strategy: sc.strategy()}
	var firstErr error
	done := 0
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: shard at %d kHz: %w", freqs[r.fi], r.err)
			}
			continue
		}
		mergeRow(g, r)
		done++
		obs.row(freqs[r.fi], r)
		sc.stats.Rows++
		sc.stats.Probes += r.stats.probes
		if r.stats.fallback {
			sc.stats.FallbackRows++
		}
		if rowHasOnset(r.row) {
			sc.stats.OnsetRows++
		}
		if sc.cfg.Progress != nil {
			sc.cfg.Progress(freqs[r.fi], done, len(freqs))
		}
	}
	obs.finish()
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// sweepObserver publishes sharded-sweep telemetry from the merge loop. A
// nil telemetry set yields an observer whose instruments are all nil-safe
// no-ops.
type sweepObserver struct {
	tel     *telemetry.Set
	rowsC   *telemetry.Counter
	rebootC *telemetry.Counter
	cellsC  [3]*telemetry.Counter // indexed by Classification
	wRows   []*telemetry.Counter
	wVirt   []*telemetry.Counter
	util    []*telemetry.Gauge
	rate    *telemetry.Gauge

	probesC   *telemetry.Counter
	onsetC    *telemetry.Counter
	fallbackC *telemetry.Counter

	rows         int
	totalVirtual sim.Duration
	workerVirt   []sim.Duration
}

func newSweepObserver(tel *telemetry.Set, workers int, strategy string) *sweepObserver {
	o := &sweepObserver{tel: tel, workerVirt: make([]sim.Duration, workers)}
	if tel == nil {
		return o
	}
	reg := tel.Registry()
	o.rowsC = reg.Counter("characterize_rows_total", "completed frequency rows", nil)
	o.rebootC = reg.Counter("characterize_reboots_total", "crash recoveries during the sweep", nil)
	lbl := telemetry.Labels{"strategy": strategy}
	o.probesC = reg.Counter("search_probes_total",
		"measured sim probes spent classifying frequency rows", lbl)
	o.onsetC = reg.Counter("search_onset_found",
		"frequency rows where an unsafe onset was located", lbl)
	o.fallbackC = reg.Counter("search_fallback_rows_total",
		"bisect rows that fell back to a verified linear sweep", lbl)
	for _, cls := range []Classification{Safe, Fault, Crash} {
		o.cellsC[cls] = reg.Counter("characterize_cells_total",
			"classified (frequency, offset) grid points",
			telemetry.Labels{"class": cls.String()})
	}
	o.wRows = make([]*telemetry.Counter, workers)
	o.wVirt = make([]*telemetry.Counter, workers)
	o.util = make([]*telemetry.Gauge, workers)
	for w := 0; w < workers; w++ {
		lbl := telemetry.Labels{"worker": fmt.Sprintf("%d", w)}
		o.wRows[w] = reg.Counter("characterize_worker_rows_total",
			"rows swept per worker (scheduler-dependent; varies run to run)", lbl)
		o.wVirt[w] = reg.Counter("characterize_worker_virtual_seconds_total",
			"virtual time swept per worker (scheduler-dependent)", lbl)
		o.util[w] = reg.Gauge("characterize_worker_utilization",
			"worker's share of total swept virtual time (scheduler-dependent)", lbl)
	}
	o.rate = reg.Gauge("characterize_rows_per_virtual_second",
		"sweep throughput: rows per virtual second of row-platform time", nil)
	return o
}

// row records one merged frequency row.
func (o *sweepObserver) row(freqKHz int, r rowResult) {
	o.rows++
	o.totalVirtual += r.virtual
	if r.worker < len(o.workerVirt) {
		o.workerVirt[r.worker] += r.virtual
	}
	if o.tel == nil {
		return
	}
	var perClass [3]int
	for _, c := range r.row {
		if int(c) < len(perClass) {
			perClass[c]++
		}
	}
	o.rowsC.Inc()
	o.rebootC.Add(float64(r.reboots))
	o.probesC.Add(float64(r.stats.probes))
	if perClass[Fault]+perClass[Crash] > 0 {
		o.onsetC.Inc()
	}
	if r.stats.fallback {
		o.fallbackC.Inc()
	}
	for cls, n := range perClass {
		o.cellsC[cls].Add(float64(n))
	}
	o.wRows[r.worker].Inc()
	o.wVirt[r.worker].Add(telemetry.Seconds(r.virtual))
	o.tel.Events().Emit("characterize_row", map[string]any{
		"freq_khz": freqKHz, "worker": r.worker, "cells": len(r.row),
		"safe": perClass[Safe], "fault": perClass[Fault], "crash": perClass[Crash],
		"reboots": r.reboots, "virtual_ps": int64(r.virtual),
	})
	// One causal span per merged row. The track is per-frequency (not
	// per-worker) and the duration is the row platform's own virtual time,
	// so the exported trace is byte-identical for any worker count and any
	// merge arrival order — the worker attribution lives only in the
	// explicitly scheduler-dependent metrics above.
	o.tel.Spans().Complete(fmt.Sprintf("characterize/%d", freqKHz), "row",
		0, r.virtual, map[string]any{
			"freq_khz": freqKHz, "cells": len(r.row),
			"safe": perClass[Safe], "fault": perClass[Fault], "crash": perClass[Crash],
			"reboots": r.reboots,
		})
}

// finish publishes the end-of-sweep aggregates.
func (o *sweepObserver) finish() {
	if o.tel == nil || o.totalVirtual == 0 {
		return
	}
	o.rate.Set(float64(o.rows) / telemetry.Seconds(o.totalVirtual))
	for w, v := range o.workerVirt {
		o.util[w].Set(float64(v) / float64(o.totalVirtual))
	}
}

// rowHasOnset reports whether a row contains any non-Safe cell.
func rowHasOnset(row []Classification) bool {
	for _, c := range row {
		if c != Safe {
			return true
		}
	}
	return false
}

// mergeRow lands one finished row in the grid. Placement is by frequency
// index and the reboot count is a sum, so the merged grid is independent of
// arrival order.
func mergeRow(g *Grid, r rowResult) {
	g.Cells[r.fi] = r.row
	g.Reboots += r.reboots
}

// sweepRow characterizes one frequency on a private platform stack: build
// the machine from the row seed, record the stock operating point, run the
// serial engine's row sweep into the caller's row buffer, and restore —
// exactly the per-row protocol of Characterizer.Run, minus the cross-row
// state.
func (sc *ShardedCharacterizer) sweepRow(row []Classification, freqKHz int, offs []int) (int, sim.Duration, rowStats, error) {
	var st rowStats
	p, err := sc.Factory(RowSeed(sc.seed, freqKHz))
	if err != nil {
		return 0, 0, st, err
	}
	ch, err := NewCharacterizer(p, sc.cfg)
	if err != nil {
		return 0, 0, st, err
	}
	// Algorithm 2 lines 6-7: record the normal operating point.
	origStatus, err := p.MSRFile(sc.cfg.VictimCore).Read(msr.IA32PerfStatus)
	if err != nil {
		return 0, 0, st, err
	}
	origRatio, _ := msr.DecodePerfStatus(origStatus)
	origFreqKHz := msr.RatioToKHz(origRatio, p.Spec.BusMHz)

	if err := ch.sweepRowInto(row, freqKHz, offs); err != nil {
		return 0, 0, st, err
	}
	st.probes = ch.probes
	// Lines 13-14: restore the stock frequency and zero offset. The platform
	// is discarded afterwards, but the restore keeps the row's protocol
	// identical to the serial engine's.
	if err := ch.restore(origFreqKHz); err != nil {
		return 0, 0, st, err
	}
	return p.Reboots, sim.Duration(p.Sim.Now()), st, nil
}
