package core

import "testing"

// FuzzGridFromJSON exercises the grid parser with arbitrary bytes: it must
// never panic and must reject structurally invalid grids.
func FuzzGridFromJSON(f *testing.F) {
	g := syntheticGrid()
	data, _ := g.JSON()
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"freqs_khz":[1],"offsets_mv":[-1],"cells":[[0]]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := GridFromJSON(raw)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validator's guarantees.
		if err := parsed.Validate(); err != nil {
			t.Fatalf("accepted grid fails validation: %v", err)
		}
		// And support the boundary queries without panicking.
		for _, fr := range parsed.FreqsKHz {
			parsed.OnsetMV(fr)
			parsed.CrashMV(fr)
			parsed.FaultBandWidthMV(fr)
		}
		parsed.MaximalSafeOffsetMV(5)
		parsed.UnsafeSet().Contains(parsed.FreqsKHz[0], -1000)
	})
}

// FuzzUnsafeSetFromJSON checks the set parser the guard consumes.
func FuzzUnsafeSetFromJSON(f *testing.F) {
	u := syntheticGrid().UnsafeSet()
	data, _ := u.JSON()
	f.Add(data)
	f.Add([]byte(`{"onset_mv":{"1000":-5}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnsafeSetFromJSON(raw)
		if err != nil {
			return
		}
		// Membership queries must be total and monotone in offset.
		for freq := 0; freq <= 5_000_000; freq += 1_234_567 {
			if parsed.Contains(freq, -50) && !parsed.Contains(freq, -51) {
				t.Fatal("monotonicity violated on parsed set")
			}
			parsed.SafetyMarginMV(freq, -50)
		}
	})
}
