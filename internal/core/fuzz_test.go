package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzGridFromJSON exercises the grid parser with arbitrary bytes: it must
// never panic and must reject structurally invalid grids.
func FuzzGridFromJSON(f *testing.F) {
	g := syntheticGrid()
	data, _ := g.JSON()
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"freqs_khz":[1],"offsets_mv":[-1],"cells":[[0]]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := GridFromJSON(raw)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validator's guarantees.
		if err := parsed.Validate(); err != nil {
			t.Fatalf("accepted grid fails validation: %v", err)
		}
		// And support the boundary queries without panicking.
		for _, fr := range parsed.FreqsKHz {
			parsed.OnsetMV(fr)
			parsed.CrashMV(fr)
			parsed.FaultBandWidthMV(fr)
		}
		parsed.MaximalSafeOffsetMV(5)
		parsed.UnsafeSet().Contains(parsed.FreqsKHz[0], -1000)
	})
}

// FuzzGridJSONRoundTrip: any structurally valid grid must survive
// JSON -> parse -> JSON with identical bytes — the property the golden
// conformance suite and the sharded determinism guarantee both lean on.
func FuzzGridJSONRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(10))
	f.Add(int64(42), uint8(29), uint8(70))
	f.Fuzz(func(t *testing.T, seed int64, nFreq, nOff uint8) {
		freqs := 1 + int(nFreq%32)
		offs := 1 + int(nOff%64)
		rng := rand.New(rand.NewSource(seed))
		g := &Grid{
			Model:      "fuzz",
			Microcode:  "0x1",
			Seed:       seed,
			Iterations: 1 + rng.Intn(1000),
			Reboots:    rng.Intn(50),
		}
		for i := 0; i < freqs; i++ {
			g.FreqsKHz = append(g.FreqsKHz, (i+1)*100_000)
		}
		for i := 0; i < offs; i++ {
			g.OffsetsMV = append(g.OffsetsMV, -(i + 1))
		}
		g.Cells = make([][]Classification, freqs)
		for fi := range g.Cells {
			row := make([]Classification, offs)
			for oi := range row {
				row[oi] = Classification(rng.Intn(3))
			}
			g.Cells[fi] = row
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced invalid grid: %v", err)
		}
		data, err := g.JSON()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := GridFromJSON(data)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		again, err := parsed.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("grid JSON not byte-stable across a round trip")
		}
	})
}

// FuzzRowMergeOrdering: the sharded engine's merge must yield the same grid
// for every row-arrival order (rows land by frequency index; reboot counts
// sum). The fuzzer drives the permutation.
func FuzzRowMergeOrdering(f *testing.F) {
	f.Add([]byte{2, 0, 1})
	f.Add([]byte{0xff, 0x01})
	f.Fuzz(func(t *testing.T, order []byte) {
		src := syntheticGrid()
		rows := make([]rowResult, len(src.Cells))
		for fi := range src.Cells {
			rows[fi] = rowResult{fi: fi, row: src.Cells[fi], reboots: fi % 2}
		}
		skeleton := func() *Grid {
			return &Grid{
				Model:      src.Model,
				Microcode:  src.Microcode,
				Iterations: src.Iterations,
				FreqsKHz:   src.FreqsKHz,
				OffsetsMV:  src.OffsetsMV,
				Cells:      make([][]Classification, len(src.Cells)),
			}
		}
		ref := skeleton()
		for _, r := range rows {
			mergeRow(ref, r)
		}
		refJSON, err := ref.JSON()
		if err != nil {
			t.Fatal(err)
		}
		// Fisher-Yates driven by the fuzz input: any byte stream is a
		// schedule.
		perm := make([]int, len(rows))
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			b := 0
			if len(order) > 0 {
				b = int(order[i%len(order)])
			}
			j := b % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		got := skeleton()
		for _, i := range perm {
			mergeRow(got, rows[i])
		}
		gotJSON, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, gotJSON) {
			t.Fatalf("merge order %v changed the grid", perm)
		}
	})
}

// FuzzUnsafeSetFromJSON checks the set parser the guard consumes.
func FuzzUnsafeSetFromJSON(f *testing.F) {
	u := syntheticGrid().UnsafeSet()
	data, _ := u.JSON()
	f.Add(data)
	f.Add([]byte(`{"onset_mv":{"1000":-5}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnsafeSetFromJSON(raw)
		if err != nil {
			return
		}
		// Membership queries must be total and monotone in offset.
		for freq := 0; freq <= 5_000_000; freq += 1_234_567 {
			if parsed.Contains(freq, -50) && !parsed.Contains(freq, -51) {
				t.Fatal("monotonicity violated on parsed set")
			}
			parsed.SafetyMarginMV(freq, -50)
		}
	})
}
