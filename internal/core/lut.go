package core

import (
	"fmt"

	"plugvolt/internal/msr"
)

// RatioLUT is the guard's compiled decision table: the unsafe-set boundary
// flattened over the full P-state ratio domain with the guard margin folded
// in. The polled frequency is an 8-bit IA32_PERF_STATUS ratio, so every
// state the guard can ever observe maps to one of 256 slots — membership
// becomes two array loads and a compare, replacing the per-poll map lookup +
// binary search (+ full-map fallback for off-grid frequencies) that
// UnsafeSet.Contains pays. Compile proves nothing new: for every ratio it
// asks boundaryFor once and stores the answer, so the table is bit-for-bit
// equivalent to Contains by construction (and by the fuzz/property tests in
// lut_test.go).
type RatioLUT struct {
	// Model names the characterized machine the table was compiled from.
	Model string
	// BusMHz and MarginMV record the compilation parameters; the table is
	// only valid for a guard polling that bus clock with that margin.
	BusMHz   int
	MarginMV int

	// thresholdMV[r] is the shallowest offset treated as unsafe at P-state
	// ratio r, margin included: offset <= thresholdMV[r] is an unsafe state.
	// valid[r] gates the slot; false means no characterized frequency faults
	// (nothing to protect), matching Contains' ok=false path.
	thresholdMV [256]int
	valid       [256]bool
}

// Compile flattens the set into a RatioLUT for a machine with the given bus
// clock, pre-folding marginMV into every boundary:
//
//	lut.Unsafe(ratio, offsetMV)  ==  u.Contains(msr.RatioToKHz(ratio, busMHz), offsetMV-marginMV)
//
// for all 256 ratios and all offsets, because offset-margin <= b iff
// offset <= b+margin.
func (u *UnsafeSet) Compile(busMHz, marginMV int) (*RatioLUT, error) {
	if busMHz <= 0 {
		return nil, fmt.Errorf("core: bus clock %d MHz", busMHz)
	}
	if marginMV < 0 {
		return nil, fmt.Errorf("core: margin %d mV must be >= 0", marginMV)
	}
	l := &RatioLUT{Model: u.Model, BusMHz: busMHz, MarginMV: marginMV}
	for r := 0; r < 256; r++ {
		b, ok := u.boundaryFor(msr.RatioToKHz(uint8(r), busMHz))
		if !ok {
			continue
		}
		l.valid[r] = true
		l.thresholdMV[r] = b + marginMV
	}
	return l, nil
}

// Unsafe reports whether the polled (ratio, offsetMV) pair is an unsafe
// state under the compiled margin. Branch-poor and allocation-free: this is
// the membership test on the guard's per-poll hot path.
func (l *RatioLUT) Unsafe(ratio uint8, offsetMV int) bool {
	return l.valid[ratio] && offsetMV <= l.thresholdMV[ratio]
}

// Threshold exposes one compiled slot (margin folded in); ok=false means
// the ratio has nothing to protect. Diagnostic/test surface, not hot path.
func (l *RatioLUT) Threshold(ratio uint8) (int, bool) {
	return l.thresholdMV[ratio], l.valid[ratio]
}
