package kernel

import (
	"errors"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func testKernel(t *testing.T) (*cpu.Platform, *Kernel) {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, New(p.Sim, p)
}

func TestModuleLoadUnload(t *testing.T) {
	_, k := testKernel(t)
	inited, exited := false, false
	m := &Module{
		Name: "plug_your_volt",
		Init: func(*Kernel) error { inited = true; return nil },
		Exit: func(*Kernel) { exited = true },
	}
	if err := k.Load(m); err != nil {
		t.Fatal(err)
	}
	if !inited {
		t.Fatal("Init not called")
	}
	if !k.Loaded("plug_your_volt") {
		t.Fatal("module not reported loaded")
	}
	if err := k.Load(m); err == nil {
		t.Fatal("double load accepted")
	}
	if got := k.LoadedModules(); len(got) != 1 || got[0] != "plug_your_volt" {
		t.Fatalf("LoadedModules = %v", got)
	}
	if err := k.Unload("plug_your_volt"); err != nil {
		t.Fatal(err)
	}
	if !exited {
		t.Fatal("Exit not called")
	}
	if k.Loaded("plug_your_volt") {
		t.Fatal("module still reported loaded")
	}
	if err := k.Unload("plug_your_volt"); err == nil {
		t.Fatal("double unload accepted")
	}
}

func TestModuleInitFailureAbortsLoad(t *testing.T) {
	_, k := testKernel(t)
	m := &Module{Name: "broken", Init: func(*Kernel) error { return errors.New("boom") }}
	if err := k.Load(m); err == nil {
		t.Fatal("failing init accepted")
	}
	if k.Loaded("broken") {
		t.Fatal("failed module registered")
	}
	if err := k.Load(&Module{}); err == nil {
		t.Fatal("anonymous module accepted")
	}
	if err := k.Load(nil); err == nil {
		t.Fatal("nil module accepted")
	}
}

func TestKThreadTicksAndCharges(t *testing.T) {
	p, k := testKernel(t)
	var calls int
	th, err := k.StartKThread("poller", 0, 1*sim.Millisecond, func(t *KThread) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(10*sim.Millisecond + sim.Microsecond)
	th.Stop()
	if calls != 10 || th.Ticks != 10 {
		t.Fatalf("ticks = %d / calls = %d", th.Ticks, calls)
	}
	wantStolen := 10 * k.Costs.KthreadWake
	if got := k.StolenTime(0); got != wantStolen {
		t.Fatalf("stolen = %v, want %v", got, wantStolen)
	}
	if th.Busy != wantStolen {
		t.Fatalf("thread busy = %v", th.Busy)
	}
	// Other cores untouched.
	if k.StolenTime(1) != 0 {
		t.Fatal("stolen time leaked to other core")
	}
	p.Sim.RunFor(5 * sim.Millisecond)
	if th.Ticks != 10 {
		t.Fatal("kthread ticked after Stop")
	}
}

func TestKThreadValidation(t *testing.T) {
	_, k := testKernel(t)
	if _, err := k.StartKThread("x", -1, sim.Millisecond, func(*KThread) {}); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := k.StartKThread("x", 99, sim.Millisecond, func(*KThread) {}); err == nil {
		t.Fatal("bogus core accepted")
	}
	if _, err := k.StartKThread("x", 0, 0, func(*KThread) {}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestKThreadMSRAccessCostsAndCounters(t *testing.T) {
	p, k := testKernel(t)
	var readVal uint64
	th, err := k.StartKThread("poller", 0, 1*sim.Millisecond, func(t *KThread) {
		v, err := t.ReadMSR(1, msr.IA32PerfStatus)
		if err != nil {
			panic(err)
		}
		readVal = v
		_ = t.WriteMSR(1, msr.OCMailbox, msr.EncodeVoltageOffset(0, msr.PlaneCore))
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3*sim.Millisecond + sim.Microsecond)
	th.Stop()
	if k.MSRReads != 3 || k.MSRWrites != 3 {
		t.Fatalf("MSR ops: %d reads, %d writes", k.MSRReads, k.MSRWrites)
	}
	want := 3 * (k.Costs.KthreadWake + k.Costs.Rdmsr + k.Costs.Wrmsr)
	if got := k.StolenTime(0); got != want {
		t.Fatalf("stolen = %v, want %v", got, want)
	}
	ratio, _ := msr.DecodePerfStatus(readVal)
	if ratio != p.Spec.BaseRatio {
		t.Fatalf("kthread read ratio %d", ratio)
	}
}

func TestDirectMSRPaths(t *testing.T) {
	p, k := testKernel(t)
	v, err := k.ReadMSRDirect(2, msr.IA32PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	ratio, _ := msr.DecodePerfStatus(v)
	if ratio != p.Spec.BaseRatio {
		t.Fatalf("direct read ratio %d", ratio)
	}
	if err := k.WriteMSRDirect(2, msr.OCMailbox, msr.EncodeVoltageOffset(-50, msr.PlaneCore)); err != nil {
		t.Fatal(err)
	}
	if got := k.StolenTime(2); got != k.Costs.Rdmsr+k.Costs.Wrmsr {
		t.Fatalf("direct path stolen = %v", got)
	}
	p.SettleAll()
	if p.Core(2).OffsetMV() != -50 {
		t.Fatal("direct wrmsr did not reach hardware")
	}
}

func TestStolenTimeResetAndBounds(t *testing.T) {
	_, k := testKernel(t)
	_, _ = k.ReadMSRDirect(0, msr.IA32PerfStatus)
	if k.StolenTime(0) == 0 {
		t.Fatal("no stolen time recorded")
	}
	k.ResetStolenTime()
	if k.StolenTime(0) != 0 {
		t.Fatal("reset did not clear")
	}
	if k.StolenTime(-1) != 0 || k.StolenTime(99) != 0 {
		t.Fatal("out-of-range core returned nonzero")
	}
}

func TestOverheadFractionMatchesCostModel(t *testing.T) {
	// A poller reading 2 MSRs on each of 4 cores every 10 ms should steal
	// (wake + 8*rdmsr) / 10 ms of one core — well under 0.1%, consistent
	// with the paper's 0.28% end-to-end overhead once victim-side cache
	// effects are included.
	p, k := testKernel(t)
	th, err := k.StartKThread("guard", 0, 10*sim.Millisecond, func(t *KThread) {
		for core := 0; core < 4; core++ {
			_, _ = t.ReadMSR(core, msr.IA32PerfStatus)
			_, _ = t.ReadMSR(core, msr.OCMailbox)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	window := 1 * sim.Second
	p.Sim.RunFor(window + sim.Microsecond)
	th.Stop()
	frac := float64(k.StolenTime(0)) / float64(window)
	perTick := k.Costs.KthreadWake + 8*k.Costs.Rdmsr
	want := float64(perTick) / float64(10*sim.Millisecond)
	if frac < want*0.95 || frac > want*1.05 {
		t.Fatalf("overhead fraction %v, want ~%v", frac, want)
	}
	if frac > 0.001 {
		t.Fatalf("polling overhead %v implausibly high", frac)
	}
}

func TestKernelAccessors(t *testing.T) {
	p, k := testKernel(t)
	if k.Sim() != p.Sim {
		t.Fatal("Sim() mismatch")
	}
	if k.Machine().NumCores() != 4 {
		t.Fatal("Machine() mismatch")
	}
}

func TestProcEntries(t *testing.T) {
	_, k := testKernel(t)
	n := 0
	if err := k.RegisterProc("counter", func() string { n++; return "live" }); err != nil {
		t.Fatal(err)
	}
	if err := k.RegisterProc("counter", func() string { return "" }); err == nil {
		t.Fatal("duplicate proc accepted")
	}
	if err := k.RegisterProc("", func() string { return "" }); err == nil {
		t.Fatal("anonymous proc accepted")
	}
	if err := k.RegisterProc("nilread", nil); err == nil {
		t.Fatal("nil reader accepted")
	}
	out, err := k.ReadProc("counter")
	if err != nil || out != "live" {
		t.Fatalf("ReadProc: %q, %v", out, err)
	}
	if n != 1 {
		t.Fatal("reader not invoked lazily")
	}
	k.UnregisterProc("counter")
	if _, err := k.ReadProc("counter"); err == nil {
		t.Fatal("unregistered proc still readable")
	}
	k.UnregisterProc("never-existed") // no-op
}
