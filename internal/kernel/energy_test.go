package kernel

import (
	"testing"

	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

// Energy attribution closes exactly, by construction: the same rounded
// picojoule quantum lands in the per-core total and its per-kind row, so
// summing EnergyPJBy over CostKinds reproduces EnergyPJ bit-for-bit — the
// invariant plugvolt-guard's attribution table fatals on.
func TestEnergyAttributionClosesExactly(t *testing.T) {
	p, k := testKernel(t)
	// A deliberately awkward price (odd fraction of a watt) so per-charge
	// rounding is exercised rather than landing on integers.
	k.SetEnergyPrice(func(core int) float64 { return 7.3217 })
	th, err := k.StartKThread("poller", 0, 1*sim.Millisecond, func(t *KThread) {
		if _, err := t.ReadMSR(0, msr.IA32PerfStatus); err != nil {
			panic(err)
		}
		_ = t.WriteMSR(0, msr.OCMailbox, msr.EncodeVoltageOffset(0, msr.PlaneCore))
		_ = t.WriteMSRKind(CostIntervention, 0, msr.OCMailbox, msr.EncodeVoltageOffset(-50, msr.PlaneCore))
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(5*sim.Millisecond + sim.Microsecond)
	th.Stop()

	total := k.EnergyPJ(0)
	if total <= 0 {
		t.Fatal("no energy booked")
	}
	var sum int64
	for _, kind := range CostKinds() {
		sum += k.EnergyPJBy(kind, 0)
	}
	if sum != total {
		t.Fatalf("per-kind energy %d pJ != total %d pJ", sum, total)
	}
	// The intervention write books under its own kind, not generic wrmsr —
	// and both carry the same per-op quantum (same Wrmsr cost, same price).
	iv := k.EnergyPJBy(CostIntervention, 0)
	if iv == 0 {
		t.Fatal("intervention energy not booked")
	}
	if wr := k.EnergyPJBy(CostWrmsr, 0); wr != iv {
		t.Fatalf("wrmsr %d pJ vs intervention %d pJ; equal traffic should bill equally", wr, iv)
	}
	// Joule accessors are the same ledgers in SI units.
	if k.EnergyJ(0) != float64(total)*1e-12 {
		t.Fatalf("EnergyJ %g != %g", k.EnergyJ(0), float64(total)*1e-12)
	}
	// Out-of-range accessors are harmless.
	if k.EnergyPJ(-1) != 0 || k.EnergyPJ(99) != 0 || k.EnergyPJBy(CostKind(99), 0) != 0 {
		t.Fatal("out-of-range energy accessor not zero")
	}

	k.ResetStolenTime()
	if k.EnergyPJ(0) != 0 || k.EnergyPJBy(CostIntervention, 0) != 0 {
		t.Fatal("reset did not zero the energy ledgers")
	}
}

// Without a price function attached, charged time books no energy — the
// kernel is usable standalone, as every pre-energy test constructs it.
func TestEnergyUnpricedBooksNothing(t *testing.T) {
	p, k := testKernel(t)
	th, err := k.StartKThread("poller", 0, 1*sim.Millisecond, func(t *KThread) {
		if _, err := t.ReadMSR(0, msr.IA32PerfStatus); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3*sim.Millisecond + sim.Microsecond)
	th.Stop()
	if k.StolenTime(0) == 0 {
		t.Fatal("no time charged")
	}
	if k.EnergyPJ(0) != 0 {
		t.Fatalf("unpriced kernel booked %d pJ", k.EnergyPJ(0))
	}
}

// CostKinds carries every kind exactly once, in ledger order, with distinct
// labels — the contract table renderers iterate on.
func TestCostKindsComplete(t *testing.T) {
	kinds := CostKinds()
	if len(kinds) != int(numCostKinds) {
		t.Fatalf("CostKinds has %d entries, want %d", len(kinds), numCostKinds)
	}
	seen := map[string]bool{}
	for i, kd := range kinds {
		if int(kd) != i {
			t.Errorf("kind %d out of ledger order", i)
		}
		s := kd.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d label %q empty or duplicate", i, s)
		}
		seen[s] = true
	}
	if !seen["intervention"] {
		t.Error("intervention kind missing")
	}
}
