// Package kernel models the Linux-kernel context the paper's countermeasure
// lives in: loadable modules, kernel threads woken by hrtimers, and the cost
// of the msr(4) read/write path.
//
// Two aspects matter for the reproduction:
//
//   - Table 2 measures the *overhead* of the polling module on SPEC2017.
//     Overhead here is real, not assumed: every kthread tick charges CPU
//     time (wakeup + per-MSR ioctl costs) to the core it runs on, and the
//     workload harness converts stolen time into throughput loss.
//   - Section 4.1's threat model lets the adversary load/unload kernel
//     modules; the module registry exposes the load state so SGX
//     attestation can include it (the paper's proposed report extension).
package kernel

import (
	"errors"
	"fmt"

	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

// Machine is the hardware interface the kernel drives. *cpu.Platform plus a
// thin adapter satisfies it; tests may use fakes.
type Machine interface {
	NumCores() int
	// MSRFile returns core's MSR file for privileged access.
	MSRFile(core int) *msr.File
}

// CostModel prices the kernel's MSR-access and scheduling primitives.
// Defaults approximate the in-kernel rdmsr/wrmsr path a module executes
// (serializing instructions, ~a few hundred cycles each) plus hrtimer
// kthread scheduling. The paper cites the MSR driver's dispatch overhead
// ("the ioctl calls invoked in the kernel module that drives the MSR
// read/write functionality") as one of the two turnaround-time
// contributors; cross-core accesses ride an IPI, which dominates the cost.
type CostModel struct {
	// Rdmsr is the per-register read cost (rdmsr_on_cpu: IPI + rdmsr).
	Rdmsr sim.Duration
	// Wrmsr is the per-register write cost.
	Wrmsr sim.Duration
	// KthreadWake is the scheduling cost of one timer-driven kthread
	// activation (wakeup, context switch, return to sleep).
	KthreadWake sim.Duration
}

// DefaultCosts matches measurements of in-kernel rdmsr/wrmsr plus hrtimer
// wakeup on contemporary parts.
func DefaultCosts() CostModel {
	return CostModel{
		Rdmsr:       50 * sim.Nanosecond,
		Wrmsr:       100 * sim.Nanosecond,
		KthreadWake: 300 * sim.Nanosecond,
	}
}

// Module is a loadable kernel module.
type Module struct {
	Name string
	// Init is run at load; a non-nil error aborts the load.
	Init func(k *Kernel) error
	// Exit is run at unload.
	Exit func(k *Kernel)
}

// Kernel is the simulated kernel instance.
type Kernel struct {
	simr  *sim.Simulator
	hw    Machine
	Costs CostModel

	modules map[string]*Module
	threads []*KThread

	// stolen accumulates CPU time consumed by kernel threads per core.
	stolen []sim.Duration
	// MSRReads/MSRWrites count privileged MSR operations.
	MSRReads  uint64
	MSRWrites uint64

	// procs holds /proc-style status entries registered by modules.
	procs map[string]func() string
}

// New builds a kernel over the machine.
func New(s *sim.Simulator, hw Machine) *Kernel {
	return &Kernel{
		simr:    s,
		hw:      hw,
		Costs:   DefaultCosts(),
		modules: map[string]*Module{},
		stolen:  make([]sim.Duration, hw.NumCores()),
	}
}

// Sim exposes the kernel's time base.
func (k *Kernel) Sim() *sim.Simulator { return k.simr }

// Machine exposes the underlying hardware.
func (k *Kernel) Machine() Machine { return k.hw }

// Load inserts a module (insmod). Loading an already-loaded name fails.
func (k *Kernel) Load(m *Module) error {
	if m == nil || m.Name == "" {
		return errors.New("kernel: module must have a name")
	}
	if _, dup := k.modules[m.Name]; dup {
		return fmt.Errorf("kernel: module %q already loaded", m.Name)
	}
	if m.Init != nil {
		if err := m.Init(k); err != nil {
			return fmt.Errorf("kernel: %s init: %w", m.Name, err)
		}
	}
	k.modules[m.Name] = m
	return nil
}

// Unload removes a module (rmmod).
func (k *Kernel) Unload(name string) error {
	m, ok := k.modules[name]
	if !ok {
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	if m.Exit != nil {
		m.Exit(k)
	}
	delete(k.modules, name)
	return nil
}

// Loaded reports whether the named module is resident — the bit the paper
// proposes to include in SGX attestation reports.
func (k *Kernel) Loaded(name string) bool {
	_, ok := k.modules[name]
	return ok
}

// LoadedModules lists resident module names (unordered).
func (k *Kernel) LoadedModules() []string {
	out := make([]string, 0, len(k.modules))
	for n := range k.modules {
		out = append(out, n)
	}
	return out
}

// KThread is a periodic kernel thread pinned to a core.
type KThread struct {
	Name string
	Core int

	k      *Kernel
	ticker *sim.Ticker
	// Ticks counts completed activations.
	Ticks uint64
	// Busy is the total CPU time this thread has charged.
	Busy sim.Duration
}

// StartKThread launches a periodic kernel thread pinned to core. Each tick
// charges the wakeup cost plus whatever fn charges through the thread,
// accounting it as stolen time on the pinned core.
func (k *Kernel) StartKThread(name string, core int, period sim.Duration, fn func(*KThread)) (*KThread, error) {
	if core < 0 || core >= k.hw.NumCores() {
		return nil, fmt.Errorf("kernel: kthread %q: no core %d", name, core)
	}
	if period <= 0 {
		return nil, fmt.Errorf("kernel: kthread %q: period must be positive", name)
	}
	t := &KThread{Name: name, Core: core, k: k}
	t.ticker = k.simr.Every(period, func() {
		t.Ticks++
		t.charge(k.Costs.KthreadWake)
		fn(t)
	})
	k.threads = append(k.threads, t)
	return t, nil
}

// Stop halts the thread.
func (t *KThread) Stop() { t.ticker.Stop() }

// charge books d of CPU time to the thread's core.
func (t *KThread) charge(d sim.Duration) {
	t.Busy += d
	t.k.stolen[t.Core] += d
}

// ReadMSR performs a privileged rdmsr on the target core, charging the
// ioctl cost to the calling thread.
func (t *KThread) ReadMSR(core int, addr msr.Addr) (uint64, error) {
	t.charge(t.k.Costs.Rdmsr)
	t.k.MSRReads++
	return t.k.hw.MSRFile(core).Read(addr)
}

// WriteMSR performs a privileged wrmsr on the target core.
func (t *KThread) WriteMSR(core int, addr msr.Addr, val uint64) error {
	t.charge(t.k.Costs.Wrmsr)
	t.k.MSRWrites++
	return t.k.hw.MSRFile(core).Write(addr, val)
}

// ReadMSRDirect is the kernel's non-thread MSR read path (module init,
// syscalls); the cost is charged to the given core.
func (k *Kernel) ReadMSRDirect(core int, addr msr.Addr) (uint64, error) {
	k.stolen[core] += k.Costs.Rdmsr
	k.MSRReads++
	return k.hw.MSRFile(core).Read(addr)
}

// WriteMSRDirect is the kernel's non-thread MSR write path.
func (k *Kernel) WriteMSRDirect(core int, addr msr.Addr, val uint64) error {
	k.stolen[core] += k.Costs.Wrmsr
	k.MSRWrites++
	return k.hw.MSRFile(core).Write(addr, val)
}

// StolenTime reports the cumulative CPU time kernel threads have consumed
// on core — the quantity that becomes workload slowdown in Table 2.
func (k *Kernel) StolenTime(core int) sim.Duration {
	if core < 0 || core >= len(k.stolen) {
		return 0
	}
	return k.stolen[core]
}

// ResetStolenTime zeroes the accounting (between benchmark runs).
func (k *Kernel) ResetStolenTime() {
	for i := range k.stolen {
		k.stolen[i] = 0
	}
}

// RegisterProc exposes a read-only status file (like /proc/<name>). The
// reader runs at ReadProc time, so contents are always live.
func (k *Kernel) RegisterProc(name string, read func() string) error {
	if name == "" || read == nil {
		return errors.New("kernel: proc entry needs a name and a reader")
	}
	if k.procs == nil {
		k.procs = map[string]func() string{}
	}
	if _, dup := k.procs[name]; dup {
		return fmt.Errorf("kernel: proc %q already registered", name)
	}
	k.procs[name] = read
	return nil
}

// ReadProc returns the live contents of a proc entry.
func (k *Kernel) ReadProc(name string) (string, error) {
	read, ok := k.procs[name]
	if !ok {
		return "", fmt.Errorf("kernel: no proc entry %q", name)
	}
	return read(), nil
}

// UnregisterProc removes a proc entry (module exit path); unknown names
// are a no-op.
func (k *Kernel) UnregisterProc(name string) {
	delete(k.procs, name)
}
