// Package kernel models the Linux-kernel context the paper's countermeasure
// lives in: loadable modules, kernel threads woken by hrtimers, and the cost
// of the msr(4) read/write path.
//
// Two aspects matter for the reproduction:
//
//   - Table 2 measures the *overhead* of the polling module on SPEC2017.
//     Overhead here is real, not assumed: every kthread tick charges CPU
//     time (wakeup + per-MSR ioctl costs) to the core it runs on, and the
//     workload harness converts stolen time into throughput loss.
//   - Section 4.1's threat model lets the adversary load/unload kernel
//     modules; the module registry exposes the load state so SGX
//     attestation can include it (the paper's proposed report extension).
package kernel

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// Machine is the hardware interface the kernel drives. *cpu.Platform plus a
// thin adapter satisfies it; tests may use fakes.
type Machine interface {
	NumCores() int
	// MSRFile returns core's MSR file for privileged access.
	MSRFile(core int) *msr.File
}

// CostModel prices the kernel's MSR-access and scheduling primitives.
// Defaults approximate the in-kernel rdmsr/wrmsr path a module executes
// (serializing instructions, ~a few hundred cycles each) plus hrtimer
// kthread scheduling. The paper cites the MSR driver's dispatch overhead
// ("the ioctl calls invoked in the kernel module that drives the MSR
// read/write functionality") as one of the two turnaround-time
// contributors; cross-core accesses ride an IPI, which dominates the cost.
type CostModel struct {
	// Rdmsr is the per-register read cost (rdmsr_on_cpu: IPI + rdmsr).
	Rdmsr sim.Duration
	// Wrmsr is the per-register write cost.
	Wrmsr sim.Duration
	// KthreadWake is the scheduling cost of one timer-driven kthread
	// activation (wakeup, context switch, return to sleep).
	KthreadWake sim.Duration
}

// DefaultCosts matches measurements of in-kernel rdmsr/wrmsr plus hrtimer
// wakeup on contemporary parts.
func DefaultCosts() CostModel {
	return CostModel{
		Rdmsr:       50 * sim.Nanosecond,
		Wrmsr:       100 * sim.Nanosecond,
		KthreadWake: 300 * sim.Nanosecond,
	}
}

// Module is a loadable kernel module.
type Module struct {
	Name string
	// Init is run at load; a non-nil error aborts the load.
	Init func(k *Kernel) error
	// Exit is run at unload.
	Exit func(k *Kernel)
}

// CostKind attributes one charged slice of kernel CPU time to the primitive
// that consumed it — the decomposition behind the telemetry exposition's
// overhead attribution (poll wakeups vs. local/remote MSR traffic).
type CostKind int

// Attribution categories. Per core and per thread, the categories sum
// exactly to the stolen-time total Table 2 converts into slowdown.
// CostIntervention is the guard's corrective mailbox rewrite — a wrmsr
// electrically, but the one slice of overhead that exists only because an
// attack happened, so it gets its own ledger row (and energy row).
const (
	CostWake CostKind = iota
	CostRdmsr
	CostWrmsr
	CostIntervention
	numCostKinds
)

// String names the category for metric labels.
func (k CostKind) String() string {
	switch k {
	case CostWake:
		return "wake"
	case CostRdmsr:
		return "rdmsr"
	case CostWrmsr:
		return "wrmsr"
	case CostIntervention:
		return "intervention"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// CostKinds lists every attribution category in ledger order, for callers
// that render complete attribution tables.
func CostKinds() []CostKind {
	return []CostKind{CostWake, CostRdmsr, CostWrmsr, CostIntervention}
}

// Kernel is the simulated kernel instance.
type Kernel struct {
	simr  *sim.Simulator
	hw    Machine
	Costs CostModel

	modules map[string]*Module
	threads []*KThread

	// stolen accumulates CPU time consumed by kernel threads per core;
	// stolenBy splits the same total by cost category
	// (wake/rdmsr/wrmsr/intervention), so attribution always sums to the
	// accounting total.
	stolen   []sim.Duration
	stolenBy [numCostKinds][]sim.Duration

	// priceW, when set, prices charged CPU time in watts so every stolen
	// slice also books energy. The ledgers are kept in integer picojoules
	// (watts × picoseconds) and the same rounded quantum is added to the
	// per-core total and its per-kind row, so energy attribution closes
	// *exactly*, by construction — the same invariant stolenBy keeps for
	// time.
	priceW     func(core int) float64
	energyPJ   []int64
	energyByPJ [numCostKinds][]int64
	// MSRReads/MSRWrites count privileged MSR operations.
	MSRReads  uint64
	MSRWrites uint64

	// procs holds /proc-style status entries registered by modules.
	procs map[string]func() string

	// tel, when set, receives kthread wake events in the journal; metric
	// gauges are published on demand via Collect.
	tel *telemetry.Set
}

// New builds a kernel over the machine.
func New(s *sim.Simulator, hw Machine) *Kernel {
	k := &Kernel{
		simr:    s,
		hw:      hw,
		Costs:   DefaultCosts(),
		modules: map[string]*Module{},
		stolen:  make([]sim.Duration, hw.NumCores()),
	}
	for i := range k.stolenBy {
		k.stolenBy[i] = make([]sim.Duration, hw.NumCores())
	}
	k.energyPJ = make([]int64, hw.NumCores())
	for i := range k.energyByPJ {
		k.energyByPJ[i] = make([]int64, hw.NumCores())
	}
	return k
}

// SetEnergyPrice attaches the power price function (watts per core at the
// live commanded operating point; power.Tracker.PriceW is the canonical
// source). Nil detaches; charged time then books no energy.
func (k *Kernel) SetEnergyPrice(fn func(core int) float64) { k.priceW = fn }

// chargeEnergy books the energy of a charged time slice: price the core's
// live power, convert to an integer picojoule quantum, and add the same
// quantum to the total and per-kind ledgers. Allocation-free (the guard's
// steady-state poll path runs through here).
func (k *Kernel) chargeEnergy(kind CostKind, core int, d sim.Duration) {
	if k.priceW == nil {
		return
	}
	// watts × picoseconds is numerically picojoules.
	pj := int64(math.Round(k.priceW(core) * float64(d)))
	k.energyPJ[core] += pj
	k.energyByPJ[kind][core] += pj
}

// SetTelemetry attaches a telemetry set. Call before starting kthreads so
// every wake is journaled; nil detaches.
func (k *Kernel) SetTelemetry(t *telemetry.Set) { k.tel = t }

// Sim exposes the kernel's time base.
func (k *Kernel) Sim() *sim.Simulator { return k.simr }

// Machine exposes the underlying hardware.
func (k *Kernel) Machine() Machine { return k.hw }

// Load inserts a module (insmod). Loading an already-loaded name fails.
func (k *Kernel) Load(m *Module) error {
	if m == nil || m.Name == "" {
		return errors.New("kernel: module must have a name")
	}
	if _, dup := k.modules[m.Name]; dup {
		return fmt.Errorf("kernel: module %q already loaded", m.Name)
	}
	if m.Init != nil {
		if err := m.Init(k); err != nil {
			return fmt.Errorf("kernel: %s init: %w", m.Name, err)
		}
	}
	k.modules[m.Name] = m
	return nil
}

// Unload removes a module (rmmod).
func (k *Kernel) Unload(name string) error {
	m, ok := k.modules[name]
	if !ok {
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	if m.Exit != nil {
		m.Exit(k)
	}
	delete(k.modules, name)
	return nil
}

// Loaded reports whether the named module is resident — the bit the paper
// proposes to include in SGX attestation reports.
func (k *Kernel) Loaded(name string) bool {
	_, ok := k.modules[name]
	return ok
}

// LoadedModules lists resident module names (unordered).
func (k *Kernel) LoadedModules() []string {
	out := make([]string, 0, len(k.modules))
	for n := range k.modules {
		out = append(out, n)
	}
	return out
}

// KThread is a periodic kernel thread pinned to a core.
type KThread struct {
	Name string
	Core int

	k      *Kernel
	ticker *sim.Ticker
	// track is the thread's span-tracer timeline name ("kernel/<name>"),
	// precomputed so the hot rdmsr/wrmsr path never builds strings.
	track string
	// msrAttrs caches the rdmsr/wrmsr span attribute map per (core, addr),
	// so steady-state MSR traffic neither formats the address nor allocates
	// a map per call. Cached maps are shared by reference with recorded
	// spans and never mutated. Kthreads are single-goroutine, so the cache
	// needs no lock.
	msrAttrs map[uint64]map[string]any
	// Ticks counts completed activations.
	Ticks uint64
	// Busy is the total CPU time this thread has charged.
	Busy sim.Duration
	// BusyBy splits Busy by cost category; the entries always sum to Busy.
	BusyBy [numCostKinds]sim.Duration
}

// StartKThread launches a periodic kernel thread pinned to core. Each tick
// charges the wakeup cost plus whatever fn charges through the thread,
// accounting it as stolen time on the pinned core.
func (k *Kernel) StartKThread(name string, core int, period sim.Duration, fn func(*KThread)) (*KThread, error) {
	if core < 0 || core >= k.hw.NumCores() {
		return nil, fmt.Errorf("kernel: kthread %q: no core %d", name, core)
	}
	if period <= 0 {
		return nil, fmt.Errorf("kernel: kthread %q: period must be positive", name)
	}
	t := &KThread{Name: name, Core: core, k: k, track: "kernel/" + name}
	// The tick span's attributes never change, so one map serves every
	// activation (shared by reference with recorded spans, never mutated).
	tickAttrs := map[string]any{"core": core, "thread": name}
	t.ticker = k.simr.Every(period, func() {
		t.Ticks++
		busyBefore := t.Busy
		t.charge(CostWake, k.Costs.KthreadWake)
		if k.tel != nil {
			// Once the journal is full every further wake event would be
			// rejected anyway, so skip building the per-tick field map and
			// keep the steady-state tick allocation-free.
			if j := k.tel.Events(); j != nil && !j.Full() {
				j.Emit("kthread_wake", map[string]any{
					"thread": t.Name, "core": t.Core, "tick": t.Ticks,
				})
			}
			// The tick span's duration is the CPU time the activation
			// charged (wake cost plus whatever fn charges), not a clock
			// delta: kthread work steals time without advancing the clock.
			sp := k.tel.Spans().StartRootScope(t.track, "kthread_tick", tickAttrs)
			fn(t)
			sp.EndWithCost(t.Busy - busyBefore)
			return
		}
		fn(t)
	})
	k.threads = append(k.threads, t)
	return t, nil
}

// Stop halts the thread.
func (t *KThread) Stop() { t.ticker.Stop() }

// charge books d of CPU time of the given category to the thread's core,
// and the matching energy when a price function is attached.
func (t *KThread) charge(kind CostKind, d sim.Duration) {
	t.Busy += d
	t.BusyBy[kind] += d
	t.k.stolen[t.Core] += d
	t.k.stolenBy[kind][t.Core] += d
	t.k.chargeEnergy(kind, t.Core, d)
}

// msrSpanAttrs returns the cached span attribute map for (core, addr),
// building it on first use.
func (t *KThread) msrSpanAttrs(core int, addr msr.Addr) map[string]any {
	key := uint64(uint32(core))<<32 | uint64(uint32(addr))
	if a, ok := t.msrAttrs[key]; ok {
		return a
	}
	if t.msrAttrs == nil {
		t.msrAttrs = make(map[uint64]map[string]any, 4)
	}
	a := map[string]any{"core": core, "addr": fmt.Sprintf("0x%x", uint32(addr))}
	t.msrAttrs[key] = a
	return a
}

// ReadMSR performs a privileged rdmsr on the target core, charging the
// ioctl cost to the calling thread. The traced path uses the by-value span
// Scope and the per-(core, addr) attribute cache, so a steady-state read is
// allocation-free even with telemetry attached.
func (t *KThread) ReadMSR(core int, addr msr.Addr) (uint64, error) {
	t.charge(CostRdmsr, t.k.Costs.Rdmsr)
	t.k.MSRReads++
	if t.k.tel != nil {
		sp := t.k.tel.Spans().StartScope(t.track, "rdmsr", t.msrSpanAttrs(core, addr))
		v, err := t.k.hw.MSRFile(core).Read(addr)
		sp.EndWithCost(t.k.Costs.Rdmsr)
		return v, err
	}
	return t.k.hw.MSRFile(core).Read(addr)
}

// WriteMSR performs a privileged wrmsr on the target core. With telemetry
// attached the write runs inside a "wrmsr" span, so the MSR file's
// mailbox-write span (and thus any guard intervention above it) encloses the
// register-level outcome in the causal trace.
func (t *KThread) WriteMSR(core int, addr msr.Addr, val uint64) error {
	return t.WriteMSRKind(CostWrmsr, core, addr, val)
}

// WriteMSRKind is WriteMSR with an explicit attribution category: the
// guard's corrective rewrite books its cost (time and joules) as
// CostIntervention instead of generic wrmsr traffic, so the ledgers answer
// "what does reacting to attacks cost" separately from "what does polling
// cost". Out-of-range kinds are booked as CostWrmsr.
func (t *KThread) WriteMSRKind(kind CostKind, core int, addr msr.Addr, val uint64) error {
	if kind < 0 || kind >= numCostKinds {
		kind = CostWrmsr
	}
	t.charge(kind, t.k.Costs.Wrmsr)
	t.k.MSRWrites++
	if t.k.tel != nil {
		sp := t.k.tel.Spans().StartScope(t.track, "wrmsr", t.msrSpanAttrs(core, addr))
		err := t.k.hw.MSRFile(core).Write(addr, val)
		sp.EndWithCost(t.k.Costs.Wrmsr)
		return err
	}
	return t.k.hw.MSRFile(core).Write(addr, val)
}

// Module derives the owning module name from the thread name: per-core
// deployments name threads "<module>/<core>", so everything before the
// slash aggregates a module's fleet.
func (t *KThread) Module() string {
	if i := strings.IndexByte(t.Name, '/'); i >= 0 {
		return t.Name[:i]
	}
	return t.Name
}

// ReadMSRDirect is the kernel's non-thread MSR read path (module init,
// syscalls); the cost is charged to the given core.
func (k *Kernel) ReadMSRDirect(core int, addr msr.Addr) (uint64, error) {
	k.stolen[core] += k.Costs.Rdmsr
	k.stolenBy[CostRdmsr][core] += k.Costs.Rdmsr
	k.chargeEnergy(CostRdmsr, core, k.Costs.Rdmsr)
	k.MSRReads++
	return k.hw.MSRFile(core).Read(addr)
}

// WriteMSRDirect is the kernel's non-thread MSR write path.
func (k *Kernel) WriteMSRDirect(core int, addr msr.Addr, val uint64) error {
	k.stolen[core] += k.Costs.Wrmsr
	k.stolenBy[CostWrmsr][core] += k.Costs.Wrmsr
	k.chargeEnergy(CostWrmsr, core, k.Costs.Wrmsr)
	k.MSRWrites++
	return k.hw.MSRFile(core).Write(addr, val)
}

// StolenTime reports the cumulative CPU time kernel threads have consumed
// on core — the quantity that becomes workload slowdown in Table 2.
func (k *Kernel) StolenTime(core int) sim.Duration {
	if core < 0 || core >= len(k.stolen) {
		return 0
	}
	return k.stolen[core]
}

// StolenTimeBy reports the slice of core's stolen time attributable to one
// cost category. Summed over categories it equals StolenTime exactly.
func (k *Kernel) StolenTimeBy(kind CostKind, core int) sim.Duration {
	if kind < 0 || kind >= numCostKinds || core < 0 || core >= len(k.stolen) {
		return 0
	}
	return k.stolenBy[kind][core]
}

// EnergyPJ reports the cumulative kernel-attributed energy on core in
// integer picojoules — the exact ledger the per-kind rows sum to.
func (k *Kernel) EnergyPJ(core int) int64 {
	if core < 0 || core >= len(k.energyPJ) {
		return 0
	}
	return k.energyPJ[core]
}

// EnergyPJBy reports the slice of core's attributed energy booked to one
// cost category. Summed over categories it equals EnergyPJ exactly (both
// sides accumulate the identical rounded quanta).
func (k *Kernel) EnergyPJBy(kind CostKind, core int) int64 {
	if kind < 0 || kind >= numCostKinds || core < 0 || core >= len(k.energyPJ) {
		return 0
	}
	return k.energyByPJ[kind][core]
}

// EnergyJ is EnergyPJ in joules.
func (k *Kernel) EnergyJ(core int) float64 { return float64(k.EnergyPJ(core)) * 1e-12 }

// EnergyJBy is EnergyPJBy in joules.
func (k *Kernel) EnergyJBy(kind CostKind, core int) float64 {
	return float64(k.EnergyPJBy(kind, core)) * 1e-12
}

// ResetStolenTime zeroes the time and energy accounting (between benchmark
// runs).
func (k *Kernel) ResetStolenTime() {
	for i := range k.stolen {
		k.stolen[i] = 0
	}
	for kind := range k.stolenBy {
		for i := range k.stolenBy[kind] {
			k.stolenBy[kind][i] = 0
		}
	}
	for i := range k.energyPJ {
		k.energyPJ[i] = 0
	}
	for kind := range k.energyByPJ {
		for i := range k.energyByPJ[kind] {
			k.energyByPJ[kind][i] = 0
		}
	}
}

// Collect publishes the kernel's accounting into the registry as gauges:
// per-core stolen time split by cost category, per-thread busy time and
// tick counts (labeled by owning module), and the global MSR operation
// counts. Call it just before taking a snapshot; values are cumulative
// since boot (or the last ResetStolenTime), so Table-2-style attribution
// falls out of snapshot diffing.
func (k *Kernel) Collect(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for core := 0; core < k.hw.NumCores(); core++ {
		c := fmt.Sprintf("%d", core)
		reg.Gauge("kernel_stolen_seconds", "CPU time consumed by kernel threads per core",
			telemetry.Labels{"core": c}).Set(telemetry.Seconds(k.stolen[core]))
		for kind := CostKind(0); kind < numCostKinds; kind++ {
			reg.Gauge("kernel_stolen_attributed_seconds",
				"per-core stolen time attributed to one kernel primitive; kinds sum to kernel_stolen_seconds",
				telemetry.Labels{"core": c, "kind": kind.String()}).
				Set(telemetry.Seconds(k.stolenBy[kind][core]))
			reg.Gauge("power_energy_joules_total",
				"per-core kernel-attributed energy by primitive; kinds sum to the core's attributed total exactly",
				telemetry.Labels{"core": c, "kind": kind.String()}).
				Set(float64(k.energyByPJ[kind][core]) * 1e-12)
		}
	}
	// Threads sorted by (name, core) so repeated Collect calls create
	// series in a stable order.
	threads := append([]*KThread(nil), k.threads...)
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].Name != threads[j].Name {
			return threads[i].Name < threads[j].Name
		}
		return threads[i].Core < threads[j].Core
	})
	for _, t := range threads {
		lbl := telemetry.Labels{"thread": t.Name, "core": fmt.Sprintf("%d", t.Core), "module": t.Module()}
		reg.Gauge("kernel_kthread_busy_seconds", "CPU time charged by one kernel thread", lbl).
			Set(telemetry.Seconds(t.Busy))
		reg.Gauge("kernel_kthread_ticks", "completed kthread activations", lbl).
			Set(float64(t.Ticks))
		for kind := CostKind(0); kind < numCostKinds; kind++ {
			l := telemetry.Labels{"thread": t.Name, "core": fmt.Sprintf("%d", t.Core),
				"module": t.Module(), "kind": kind.String()}
			reg.Gauge("kernel_kthread_attributed_seconds",
				"per-thread busy time attributed to one kernel primitive; kinds sum to kernel_kthread_busy_seconds", l).
				Set(telemetry.Seconds(t.BusyBy[kind]))
		}
	}
	reg.Gauge("kernel_msr_reads", "privileged rdmsr operations", nil).Set(float64(k.MSRReads))
	reg.Gauge("kernel_msr_writes", "privileged wrmsr operations", nil).Set(float64(k.MSRWrites))
}

// RegisterProc exposes a read-only status file (like /proc/<name>). The
// reader runs at ReadProc time, so contents are always live.
func (k *Kernel) RegisterProc(name string, read func() string) error {
	if name == "" || read == nil {
		return errors.New("kernel: proc entry needs a name and a reader")
	}
	if k.procs == nil {
		k.procs = map[string]func() string{}
	}
	if _, dup := k.procs[name]; dup {
		return fmt.Errorf("kernel: proc %q already registered", name)
	}
	k.procs[name] = read
	return nil
}

// ReadProc returns the live contents of a proc entry.
func (k *Kernel) ReadProc(name string) (string, error) {
	read, ok := k.procs[name]
	if !ok {
		return "", fmt.Errorf("kernel: no proc entry %q", name)
	}
	return read(), nil
}

// UnregisterProc removes a proc entry (module exit path); unknown names
// are a no-op.
func (k *Kernel) UnregisterProc(name string) {
	delete(k.procs, name)
}
