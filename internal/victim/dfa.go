package victim

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
)

// This file implements the AES-128 differential fault analysis (DFA) that
// turns the undervolting faults of EncryptOn into full key recovery — the
// Piret-Quisquater attack in its single-byte round-9 form, which is what
// Plundervolt demonstrated against AES-NI.
//
// Setting: a fault flips one state byte at the *entry* of round 9. The
// round-9 MixColumns spreads the (unknown) post-SubBytes differential d
// over one column with the fixed coefficients of the MC matrix column
// selected by the faulted row:
//
//	diff_out[i] = M[i][r0] * d,   M = the AES MixColumns matrix.
//
// Round 10 (SubBytes, ShiftRows, AddRoundKey — no MixColumns) maps those
// four bytes to four known ciphertext positions. For each affected
// ciphertext byte j with differential pattern m*d, a round-10 key byte
// candidate k must satisfy
//
//	InvSBox(C[j]^k) ^ InvSBox(C*[j]^k) = m*d.
//
// Intersecting candidate sets over a handful of faulty ciphertexts pins
// each key byte; faults landing in all four columns recover the whole
// round-10 key, and inverting the key schedule yields the master key.

// invSbox is the AES inverse S-box.
var invSbox [256]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// gmul multiplies in GF(2^8) with the AES polynomial.
func gmul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// mcMatrix is the MixColumns coefficient matrix.
var mcMatrix = [4][4]byte{
	{2, 3, 1, 1},
	{1, 2, 3, 1},
	{1, 1, 2, 3},
	{3, 1, 1, 2},
}

// FaultyPair is one (correct, faulty) ciphertext pair for a fixed
// plaintext, with the fault known to have hit round 9.
type FaultyPair struct {
	C, CStar [16]byte
}

// CollectRound9Pairs drives the on-core encryptor until `want` pairs with a
// round-9 fault have been gathered (other rounds' faults are discarded).
// The core must already sit in a fault-prone operating point. maxTries
// bounds the total encryptions.
func (a *AES128) CollectRound9Pairs(core *cpu.Core, pt []byte, want, maxTries int) ([]FaultyPair, error) {
	if want <= 0 || maxTries <= 0 {
		return nil, errors.New("victim: want and maxTries must be positive")
	}
	ref, err := a.EncryptPure(pt)
	if err != nil {
		return nil, err
	}
	var out []FaultyPair
	for try := 0; try < maxTries && len(out) < want; try++ {
		ct, round, err := a.EncryptOn(core, pt)
		if err != nil {
			return nil, err
		}
		if round != 9 {
			continue
		}
		var p FaultyPair
		copy(p.C[:], ref)
		copy(p.CStar[:], ct)
		if _, _, ok := diffColumn(p); !ok {
			continue // multi-fault or malformed differential; discard
		}
		out = append(out, p)
	}
	if len(out) < want {
		return out, fmt.Errorf("victim: only %d/%d round-9 pairs after %d encryptions", len(out), want, maxTries)
	}
	return out, nil
}

// diffColumn determines which round-9 MC column a pair's fault spread over,
// returning the column c' and the four affected ciphertext positions
// (indexed by MC row i). ok=false if the differential does not match a
// single-column round-9 fault.
func diffColumn(p FaultyPair) (col int, positions [4]int, ok bool) {
	var diffPos []int
	for j := 0; j < 16; j++ {
		if p.C[j] != p.CStar[j] {
			diffPos = append(diffPos, j)
		}
	}
	// A genuine single-byte round-9 fault spreads to exactly four bytes:
	// the MC coefficients are nonzero and round-10 SubBytes is a bijection,
	// so no diff can collapse to zero.
	if len(diffPos) != 4 {
		return 0, positions, false
	}
	// A round-9 column c' maps through round-10 ShiftRows to ciphertext
	// positions j_i = 4*((c'-i) mod 4) + i. Find the c' consistent with
	// every observed diff position.
	for c := 0; c < 4; c++ {
		var pos [4]int
		match := true
		covered := map[int]bool{}
		for i := 0; i < 4; i++ {
			j := 4*(((c-i)%4+4)%4) + i
			pos[i] = j
			covered[j] = true
		}
		for _, j := range diffPos {
			if !covered[j] {
				match = false
				break
			}
		}
		if match {
			return c, pos, true
		}
	}
	return 0, positions, false
}

// DFARecoverRoundKey recovers the 16-byte round-10 key from round-9 faulty
// pairs. It needs pairs covering all four columns (faults land in random
// byte positions, so ~16+ pairs usually suffice).
func DFARecoverRoundKey(pairs []FaultyPair) ([16]byte, error) {
	var k10 [16]byte
	solved := [16]bool{}

	// Group pairs by affected column.
	byCol := map[int][]FaultyPair{}
	for _, p := range pairs {
		if c, _, ok := diffColumn(p); ok {
			byCol[c] = append(byCol[c], p)
		}
	}
	for c := 0; c < 4; c++ {
		colPairs := byCol[c]
		if len(colPairs) == 0 {
			return k10, fmt.Errorf("victim: no round-9 pairs hit column %d", c)
		}
		keys, err := solveColumn(c, colPairs)
		if err != nil {
			return k10, fmt.Errorf("victim: column %d: %w", c, err)
		}
		_, pos, _ := diffColumn(colPairs[0])
		for i := 0; i < 4; i++ {
			k10[pos[i]] = keys[i]
			solved[pos[i]] = true
		}
	}
	for j, s := range solved {
		if !s {
			return k10, fmt.Errorf("victim: key byte %d unsolved", j)
		}
	}
	return k10, nil
}

// solveColumn intersects per-byte key candidates across the column's pairs.
func solveColumn(col int, pairs []FaultyPair) ([4]byte, error) {
	var result [4]byte
	// cands[i] is the surviving candidate set for the byte at MC row i.
	var cands [4]map[byte]bool
	first := true
	for _, p := range pairs {
		_, pos, ok := diffColumn(p)
		if !ok {
			continue
		}
		// For this pair, a key vector is admissible if for some faulted
		// row r0 and base differential d, every byte i satisfies the
		// differential equation with coefficient M[i][r0]*d.
		pairCands := [4]map[byte]bool{}
		for i := range pairCands {
			pairCands[i] = map[byte]bool{}
		}
		for r0 := 0; r0 < 4; r0++ {
			for d := 1; d < 256; d++ {
				var perByte [4][]byte
				feasible := true
				for i := 0; i < 4; i++ {
					target := gmul(mcMatrix[i][r0], byte(d))
					j := pos[i]
					var cs []byte
					for k := 0; k < 256; k++ {
						x := invSbox[p.C[j]^byte(k)]
						xs := invSbox[p.CStar[j]^byte(k)]
						if x^xs == target {
							cs = append(cs, byte(k))
						}
					}
					if len(cs) == 0 {
						feasible = false
						break
					}
					perByte[i] = cs
				}
				if !feasible {
					continue
				}
				for i := 0; i < 4; i++ {
					for _, k := range perByte[i] {
						pairCands[i][k] = true
					}
				}
			}
		}
		// Intersect with running sets.
		for i := 0; i < 4; i++ {
			if first {
				cands[i] = pairCands[i]
				continue
			}
			for k := range cands[i] {
				if !pairCands[i][k] {
					delete(cands[i], k)
				}
			}
		}
		first = false
	}
	for i := 0; i < 4; i++ {
		if len(cands[i]) != 1 {
			return result, fmt.Errorf("byte %d: %d candidates remain (need more pairs)", i, len(cands[i]))
		}
		for k := range cands[i] {
			result[i] = k
		}
	}
	return result, nil
}

// solveColumnSets is solveColumn without the uniqueness requirement: it
// returns the surviving candidate set per byte (ascending), for callers
// that disambiguate by verification.
func solveColumnSets(pairs []FaultyPair) ([4][]byte, error) {
	var sets [4][]byte
	var cands [4]map[byte]bool
	first := true
	for _, p := range pairs {
		_, pos, ok := diffColumn(p)
		if !ok {
			continue
		}
		pairCands := [4]map[byte]bool{}
		for i := range pairCands {
			pairCands[i] = map[byte]bool{}
		}
		for r0 := 0; r0 < 4; r0++ {
			for d := 1; d < 256; d++ {
				var perByte [4][]byte
				feasible := true
				for i := 0; i < 4; i++ {
					target := gmul(mcMatrix[i][r0], byte(d))
					j := pos[i]
					var cs []byte
					for k := 0; k < 256; k++ {
						x := invSbox[p.C[j]^byte(k)]
						xs := invSbox[p.CStar[j]^byte(k)]
						if x^xs == target {
							cs = append(cs, byte(k))
						}
					}
					if len(cs) == 0 {
						feasible = false
						break
					}
					perByte[i] = cs
				}
				if !feasible {
					continue
				}
				for i := 0; i < 4; i++ {
					for _, k := range perByte[i] {
						pairCands[i][k] = true
					}
				}
			}
		}
		for i := 0; i < 4; i++ {
			if first {
				cands[i] = pairCands[i]
				continue
			}
			for k := range cands[i] {
				if !pairCands[i][k] {
					delete(cands[i], k)
				}
			}
		}
		first = false
	}
	for i := 0; i < 4; i++ {
		if len(cands[i]) == 0 {
			return sets, fmt.Errorf("byte %d: no candidates survive (inconsistent pairs)", i)
		}
		for k := 0; k < 256; k++ {
			if cands[i][byte(k)] {
				sets[i] = append(sets[i], byte(k))
			}
		}
	}
	return sets, nil
}

// DFARecoverMasterKey runs the full attack: per-column candidate solving,
// enumeration of any residual ambiguity (the differential equation admits
// a k ^ DeltaC twin that a finite pair set occasionally fails to kill),
// and verification of each enumerated master key against the known
// (plaintext, correct ciphertext) — exactly how the published attacks
// close the gap. maxCombos bounds the enumeration (65536 is generous; the
// residual product is usually 1-4).
func DFARecoverMasterKey(pairs []FaultyPair, pt []byte, maxCombos int) ([16]byte, error) {
	var master [16]byte
	if len(pairs) == 0 {
		return master, errors.New("victim: no pairs")
	}
	if maxCombos <= 0 {
		maxCombos = 65536
	}
	byCol := map[int][]FaultyPair{}
	for _, p := range pairs {
		if c, _, ok := diffColumn(p); ok {
			byCol[c] = append(byCol[c], p)
		}
	}
	// Candidate sets per ciphertext byte position.
	var perPos [16][]byte
	for c := 0; c < 4; c++ {
		colPairs := byCol[c]
		if len(colPairs) == 0 {
			return master, fmt.Errorf("victim: no round-9 pairs hit column %d", c)
		}
		sets, err := solveColumnSets(colPairs)
		if err != nil {
			return master, fmt.Errorf("victim: column %d: %w", c, err)
		}
		_, pos, _ := diffColumn(colPairs[0])
		for i := 0; i < 4; i++ {
			perPos[pos[i]] = sets[i]
		}
	}
	combos := 1
	for _, s := range perPos {
		if len(s) == 0 {
			return master, errors.New("victim: missing candidates for a key byte")
		}
		combos *= len(s)
		if combos > maxCombos {
			return master, fmt.Errorf("victim: %d+ residual combinations exceed budget (collect more pairs)", combos)
		}
	}
	// Enumerate the cartesian product, verifying each candidate.
	ref := pairs[0].C
	idx := make([]int, 16)
	for {
		var k10 [16]byte
		for j := 0; j < 16; j++ {
			k10[j] = perPos[j][idx[j]]
		}
		cand := InvertKeySchedule(k10)
		a, err := NewAES128(cand[:], 0)
		if err != nil {
			return master, err
		}
		ct, err := a.EncryptPure(pt)
		if err != nil {
			return master, err
		}
		match := true
		for j := range ct {
			if ct[j] != ref[j] {
				match = false
				break
			}
		}
		if match {
			return cand, nil
		}
		// Advance the mixed-radix counter.
		j := 0
		for ; j < 16; j++ {
			idx[j]++
			if idx[j] < len(perPos[j]) {
				break
			}
			idx[j] = 0
		}
		if j == 16 {
			return master, errors.New("victim: no enumerated key verified — pairs inconsistent")
		}
	}
}

// InvertKeySchedule walks the AES-128 key schedule backwards from the
// round-10 key to the master key.
func InvertKeySchedule(k10 [16]byte) [16]byte {
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[40+i][:], k10[4*i:4*i+4])
	}
	for i := 43; i >= 4; i-- {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{
				sbox[t[1]] ^ rcon[i/4],
				sbox[t[2]],
				sbox[t[3]],
				sbox[t[0]],
			}
		}
		for j := 0; j < 4; j++ {
			w[i-4][j] = w[i][j] ^ t[j]
		}
	}
	var key [16]byte
	for i := 0; i < 4; i++ {
		copy(key[4*i:4*i+4], w[i][:])
	}
	return key
}
