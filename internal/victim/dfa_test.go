package victim

import (
	"bytes"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/msr"
)

func TestGmulAgainstKnownProducts(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xc1}, // FIPS-197 worked example
		{0x57, 0x13, 0xfe},
		{0x02, 0x80, 0x1b},
		{0x01, 0xab, 0xab},
		{0x00, 0x55, 0x00},
	}
	for _, c := range cases {
		if got := gmul(c.a, c.b); got != c.want {
			t.Errorf("gmul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
	// Commutativity spot check.
	for a := 1; a < 256; a += 37 {
		for b := 1; b < 256; b += 41 {
			if gmul(byte(a), byte(b)) != gmul(byte(b), byte(a)) {
				t.Fatalf("gmul not commutative at %d, %d", a, b)
			}
		}
	}
}

func TestInvSboxIsInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox broken at %d", i)
		}
	}
}

func TestInvertKeySchedule(t *testing.T) {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c} // FIPS-197 example key
	a, err := NewAES128(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	var k10 [16]byte
	copy(k10[:], a.roundKeys[10][:])
	master := InvertKeySchedule(k10)
	if !bytes.Equal(master[:], key) {
		t.Fatalf("key schedule inversion: got %x want %x", master, key)
	}
}

func TestCollectRound9PairsValidation(t *testing.T) {
	p := newPlatform(t, 41)
	a, _ := NewAES128(make([]byte, 16), 1)
	if _, err := a.CollectRound9Pairs(p.Core(0), make([]byte, 16), 0, 10); err == nil {
		t.Fatal("zero want accepted")
	}
	if _, err := a.CollectRound9Pairs(p.Core(0), make([]byte, 16), 1, 0); err == nil {
		t.Fatal("zero tries accepted")
	}
	// At stock voltage no faults occur: collection must time out cleanly.
	if _, err := a.CollectRound9Pairs(p.Core(0), make([]byte, 16), 1, 50); err == nil {
		t.Fatal("collected a pair at stock voltage")
	}
}

// TestAESDFAEndToEnd is the full Plundervolt AES story: undervolt, harvest
// round-9 faulty ciphertexts, run the Piret-Quisquater analysis, recover
// the round-10 key, invert the schedule, and obtain the master key.
func TestAESDFAEndToEnd(t *testing.T) {
	p := newPlatform(t, 43)
	c := p.Core(0)
	// Window where the AES round instruction faults at a workable rate.
	found := false
	for off := -1; off >= -450; off-- {
		if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		// The AES path sits only 4% deeper than the control path, so the
		// usable fault rate is capped near ~2e-4 before crash risk explodes.
		if pr := c.FaultProbability(cpu.ClassAES); pr > 1.5e-4 && c.CrashProbability() < 1e-8 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no AES fault window")
	}

	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	a, err := NewAES128(key, 7)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("DFA target block")
	pairs, err := a.CollectRound9Pairs(c, pt, 48, 1_500_000)
	if err != nil {
		t.Fatalf("pair collection: %v", err)
	}
	master, err := DFARecoverMasterKey(pairs, pt, 0)
	if err != nil {
		t.Fatalf("master-key recovery: %v", err)
	}
	if !bytes.Equal(master[:], key) {
		t.Fatalf("recovered master key %x, want %x", master, key)
	}
	// The strict round-key path also works once enough pairs accumulate;
	// exercise it but tolerate residual ambiguity (that is what the
	// verified enumeration exists for).
	if k10, err := DFARecoverRoundKey(pairs); err == nil {
		if !bytes.Equal(k10[:], a.roundKeys[10][:]) {
			t.Fatalf("strict recovery returned wrong key %x", k10)
		}
	}
}

func TestDFANeedsAllColumns(t *testing.T) {
	// With pairs from only some columns the recovery must fail loudly.
	p := newPlatform(t, 44)
	c := p.Core(0)
	for off := -1; off >= -450; off-- {
		if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if pr := c.FaultProbability(cpu.ClassAES); pr > 1.5e-4 && c.CrashProbability() < 1e-8 {
			break
		}
	}
	a, _ := NewAES128(make([]byte, 16), 9)
	pairs, err := a.CollectRound9Pairs(c, make([]byte, 16), 12, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only one column's pairs.
	col0, _, _ := diffColumn(pairs[0])
	var oneCol []FaultyPair
	for _, pr := range pairs {
		if cc, _, _ := diffColumn(pr); cc == col0 {
			oneCol = append(oneCol, pr)
		}
	}
	if _, err := DFARecoverRoundKey(oneCol); err == nil {
		t.Fatal("recovery succeeded without full column coverage")
	}
}
