package victim

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	mrand "math/rand"
)

// RSAKey is an RSA private key with the CRT components a fast signer uses.
type RSAKey struct {
	N, E, D *big.Int
	P, Q    *big.Int
	Dp, Dq  *big.Int // D mod (p-1), D mod (q-1)
	Qinv    *big.Int // q^-1 mod p
	Bits    int
}

// deterministicPrime draws candidates from the seeded source until one
// passes Miller-Rabin. crypto/rand.Prime cannot be used here: since Go 1.20
// it deliberately defeats deterministic readers (MaybeReadByte), and the
// experiments need replayable keys. These keys are for fault-attack
// experiments, not production cryptography.
func deterministicPrime(r *mrand.Rand, bits int) *big.Int {
	buf := make([]byte, (bits+7)/8)
	for {
		r.Read(buf) // math/rand Read never fails and is deterministic
		p := new(big.Int).SetBytes(buf)
		// Trim to exactly `bits`, force the two top bits (full-size
		// modulus after multiplication) and the low bit (odd).
		excess := p.BitLen() - bits
		if excess > 0 {
			p.Rsh(p, uint(excess))
		}
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(40) {
			return p
		}
	}
}

// GenerateRSAKey creates a bits-bit RSA key deterministically from seed.
func GenerateRSAKey(bits int, seed int64) (*RSAKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("victim: RSA modulus %d bits too small (min 128 for the experiments)", bits)
	}
	rd := mrand.New(mrand.NewSource(seed))
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempt := 0; attempt < 64; attempt++ {
		p := deterministicPrime(rd, bits/2)
		q := deterministicPrime(rd, bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, e, phi).Cmp(one) != 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, phi)
		key := &RSAKey{
			N: n, E: e, D: d,
			P: p, Q: q,
			Dp:   new(big.Int).Mod(d, pm1),
			Dq:   new(big.Int).Mod(d, qm1),
			Qinv: new(big.Int).ModInverse(q, p),
			Bits: bits,
		}
		return key, nil
	}
	return nil, errors.New("victim: could not generate RSA key")
}

// HashToInt maps a message to the signing representative m = H(msg) mod N
// (full-domain-hash style; enough structure for the fault experiments).
func (k *RSAKey) HashToInt(msg []byte) *big.Int {
	h := sha256.Sum256(msg)
	m := new(big.Int).SetBytes(h[:])
	return m.Mod(m, k.N)
}

// Verify checks sig^E mod N == m.
func (k *RSAKey) Verify(m, sig *big.Int) bool {
	return new(big.Int).Exp(sig, k.E, k.N).Cmp(m) == 0
}

// FaultyCore is the execution surface the CRT signer multiplies on. It is
// the subset of *cpu.Core the signer needs; faults in IMul corrupt the
// corresponding big-integer product.
type FaultyCore interface {
	IMul(a, b uint64) (uint64, bool, error)
}

// CRTSigner signs with the CRT optimization, executing every modular
// multiplication on a (potentially undervolted) core. A single faulty
// multiplication in exactly one CRT half makes gcd(sig^e - m, N) reveal a
// prime factor — the classic Boneh–DeMillo–Lipton condition that
// Plundervolt weaponized against SGX enclaves.
type CRTSigner struct {
	Key  *RSAKey
	Core FaultyCore

	// StepHook, when set, is called before every core multiplication with
	// a running step index. Single-stepping attackers and the Minefield
	// trap instrumentation both hang off this.
	StepHook func(step int)

	// VerifyBeforeRelease enables the classic application-level fault
	// countermeasure (Boneh-DeMillo-Lipton's own recommendation): verify
	// the signature with the public key before releasing it, and retry on
	// mismatch. It stops the *key extraction* (no faulty signature ever
	// leaves the signer) at the cost of a public-key operation per
	// signature — but unlike the paper's countermeasure it does nothing
	// for non-signature victims, and it turns a fault attack into a
	// denial of service (the signer spins while undervolted).
	VerifyBeforeRelease bool
	// MaxRetries bounds the verify-retry loop (default 32); exceeding it
	// returns ErrSignatureUnstable.
	MaxRetries int
	// Retries counts verify-failure retries in the last Sign call.
	Retries int

	// rng drives fault bit placement inside big integers; seeded once so
	// runs replay.
	rng *mrand.Rand

	// Steps counts core multiplications in the last Sign call.
	Steps int
	// FaultedSteps counts multiplications whose product was corrupted.
	FaultedSteps int
}

// NewCRTSigner builds a signer bound to a key and an execution core.
func NewCRTSigner(key *RSAKey, core FaultyCore, seed int64) (*CRTSigner, error) {
	if key == nil {
		return nil, errors.New("victim: nil key")
	}
	if core == nil {
		return nil, errors.New("victim: nil core")
	}
	return &CRTSigner{Key: key, Core: core, rng: mrand.New(mrand.NewSource(seed))}, nil
}

// coreMul multiplies x*y mod mod, executing the multiply on the core. If
// the core faults the checksum multiplication, the big-integer product is
// corrupted by a bit flip before reduction — faithful to how a timing
// violation in one multiplier stage corrupts the wide result.
func (s *CRTSigner) coreMul(x, y, mod *big.Int) (*big.Int, error) {
	if s.StepHook != nil {
		s.StepHook(s.Steps)
	}
	s.Steps++
	a := low64(x) | 1
	b := low64(y) | 1
	_, faulted, err := s.Core.IMul(a, b)
	if err != nil {
		return nil, err
	}
	prod := new(big.Int).Mul(x, y)
	if faulted {
		s.FaultedSteps++
		bit := s.rng.Intn(max(prod.BitLen(), 1))
		prod.Xor(prod, new(big.Int).Lsh(big.NewInt(1), uint(bit)))
	}
	return prod.Mod(prod, mod), nil
}

var mask64 = new(big.Int).SetUint64(^uint64(0))

// low64 extracts the low 64 bits of x (the word fed to the core's
// multiplier for fault sampling).
func low64(x *big.Int) uint64 {
	return new(big.Int).And(x, mask64).Uint64()
}

// expOnCore computes base^exp mod mod by square-and-multiply with every
// multiplication routed through coreMul.
func (s *CRTSigner) expOnCore(base, exp, mod *big.Int) (*big.Int, error) {
	result := big.NewInt(1)
	b := new(big.Int).Mod(base, mod)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		var err error
		result, err = s.coreMul(result, result, mod)
		if err != nil {
			return nil, err
		}
		if exp.Bit(i) == 1 {
			result, err = s.coreMul(result, b, mod)
			if err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// ErrSignatureUnstable is returned when VerifyBeforeRelease exhausts its
// retry budget — the machine is too faulty to sign on.
var ErrSignatureUnstable = errors.New("victim: signature verification kept failing (machine faulting)")

// Sign produces the CRT signature of digest m. faulted reports whether any
// core multiplication was corrupted during the *released* computation.
// With VerifyBeforeRelease set, a corrupted signature is never released:
// the signer retries until verification passes (or MaxRetries runs out),
// so faulted is always false on success.
func (s *CRTSigner) Sign(m *big.Int) (sig *big.Int, faulted bool, err error) {
	s.Retries = 0
	if !s.VerifyBeforeRelease {
		return s.signOnce(m)
	}
	max := s.MaxRetries
	if max <= 0 {
		max = 32
	}
	for try := 0; try < max; try++ {
		sig, _, err := s.signOnce(m)
		if err != nil {
			return nil, false, err
		}
		if s.Key.Verify(m, sig) {
			return sig, false, nil
		}
		s.Retries++
	}
	return nil, false, ErrSignatureUnstable
}

// signOnce is one unprotected CRT signature.
func (s *CRTSigner) signOnce(m *big.Int) (sig *big.Int, faulted bool, err error) {
	s.Steps = 0
	s.FaultedSteps = 0
	k := s.Key
	sp, err := s.expOnCore(m, k.Dp, k.P)
	if err != nil {
		return nil, false, err
	}
	sq, err := s.expOnCore(m, k.Dq, k.Q)
	if err != nil {
		return nil, false, err
	}
	// Garner recombination: sig = sq + q * ((sp - sq) * qinv mod p).
	h := new(big.Int).Sub(sp, sq)
	h.Mod(h, k.P)
	h, err = s.coreMul(h, k.Qinv, k.P)
	if err != nil {
		return nil, false, err
	}
	sig = new(big.Int).Mul(h, k.Q)
	sig.Add(sig, sq)
	sig.Mod(sig, k.N)
	return sig, s.FaultedSteps > 0, nil
}

// StepsPerSign returns the deterministic number of core multiplications a
// Sign call issues for this key (useful for planning single-step attacks).
func (s *CRTSigner) StepsPerSign(m *big.Int) int {
	count := 0
	countExp := func(exp *big.Int) {
		for i := exp.BitLen() - 1; i >= 0; i-- {
			count++ // square
			if exp.Bit(i) == 1 {
				count++ // multiply
			}
		}
	}
	countExp(s.Key.Dp)
	countExp(s.Key.Dq)
	count++ // Garner multiply
	return count
}

// RecoverFactor runs the Boneh–DeMillo–Lipton / Lenstra attack: given the
// correct representative m, the public key (N, e) and one faulty CRT
// signature, it returns a nontrivial factor of N, or ok=false if the fault
// pattern does not satisfy the single-half condition.
func RecoverFactor(n, e, m, faultySig *big.Int) (*big.Int, bool) {
	if faultySig == nil || faultySig.Sign() == 0 {
		return nil, false
	}
	// gcd(sig^e - m mod N, N)
	t := new(big.Int).Exp(faultySig, e, n)
	t.Sub(t, m)
	t.Mod(t, n)
	g := new(big.Int).GCD(nil, nil, t, n)
	if g.Cmp(big.NewInt(1)) > 0 && g.Cmp(n) < 0 {
		return g, true
	}
	return nil, false
}

// FactorsN checks that factor divides N nontrivially.
func FactorsN(n, factor *big.Int) bool {
	if factor == nil || factor.Cmp(big.NewInt(1)) <= 0 || factor.Cmp(n) >= 0 {
		return false
	}
	return new(big.Int).Mod(n, factor).Sign() == 0
}

// SignProgram is the CRT signature decomposed into single-instruction
// steps, satisfying the sgx Program interface so enclaves, single-stepping
// adversaries and Minefield instrumentation can all drive a *real* RSA
// signing operation instruction by instruction.
//
// The schedule is precomputed from the (public) exponent bit patterns —
// square/multiply structure is not secret-dependent beyond the key itself,
// which the stepping adversary does not need.
type SignProgram struct {
	signer *CRTSigner
	m      *big.Int

	// ops is the remaining multiply schedule; state carries the running
	// values between steps.
	ops  []func() error
	pos  int
	sig  *big.Int
	sp   *big.Int
	sq   *big.Int
	work *big.Int
}

// NewSignProgram builds the steppable signature of digest m.
func NewSignProgram(s *CRTSigner, m *big.Int) (*SignProgram, error) {
	if s == nil || m == nil {
		return nil, errors.New("victim: signer and digest required")
	}
	p := &SignProgram{signer: s, m: m}
	p.plan()
	return p, nil
}

// plan builds the step list: square-and-multiply for both CRT halves, then
// the Garner recombination.
func (p *SignProgram) plan() {
	k := p.signer.Key
	half := func(exp, mod *big.Int, out **big.Int) {
		// result is captured per-half and threaded through the closures.
		p.ops = append(p.ops, func() error {
			p.work = big.NewInt(1)
			return nil
		})
		base := new(big.Int).Mod(p.m, mod)
		for i := exp.BitLen() - 1; i >= 0; i-- {
			p.ops = append(p.ops, func() error {
				r, err := p.signer.coreMul(p.work, p.work, mod)
				if err != nil {
					return err
				}
				p.work = r
				return nil
			})
			if exp.Bit(i) == 1 {
				p.ops = append(p.ops, func() error {
					r, err := p.signer.coreMul(p.work, base, mod)
					if err != nil {
						return err
					}
					p.work = r
					return nil
				})
			}
		}
		p.ops = append(p.ops, func() error {
			*out = p.work
			return nil
		})
	}
	half(k.Dp, k.P, &p.sp)
	half(k.Dq, k.Q, &p.sq)
	p.ops = append(p.ops, func() error {
		h := new(big.Int).Sub(p.sp, p.sq)
		h.Mod(h, k.P)
		h, err := p.signer.coreMul(h, k.Qinv, k.P)
		if err != nil {
			return err
		}
		sig := new(big.Int).Mul(h, k.Q)
		sig.Add(sig, p.sq)
		sig.Mod(sig, k.N)
		p.sig = sig
		return nil
	})
}

// Step implements the sgx Program interface.
func (p *SignProgram) Step() (bool, error) {
	if p.pos >= len(p.ops) {
		return true, nil
	}
	if err := p.ops[p.pos](); err != nil {
		return false, err
	}
	p.pos++
	return p.pos >= len(p.ops), nil
}

// Len returns the total step count; Pos the next step index.
func (p *SignProgram) Len() int { return len(p.ops) }

// Pos returns the next step index.
func (p *SignProgram) Pos() int { return p.pos }

// Signature returns the completed signature, or nil before completion.
func (p *SignProgram) Signature() *big.Int { return p.sig }
