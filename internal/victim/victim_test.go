package victim

import (
	"errors"
	"math/big"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
)

func newPlatform(t *testing.T, seed int64) *cpu.Platform {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// undervoltIntoFaultWindow drives the core to an operating point where imul
// faults but the machine stays up.
func undervoltIntoFaultWindow(t *testing.T, p *cpu.Platform, core int) {
	t.Helper()
	c := p.Core(core)
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(core, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 5e-4 && c.CrashProbability() < 1e-10 {
			return
		}
	}
	t.Fatal("no fault window")
}

func TestIMulLoopCleanRun(t *testing.T) {
	p := newPlatform(t, 1)
	l, err := NewIMulLoop(p.Core(0), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("%d faults at stock voltage", faults)
	}
	if l.Pos() != l.Len() {
		t.Fatalf("pos %d after full run", l.Pos())
	}
	// Step after completion keeps reporting done.
	done, err := l.Step()
	if err != nil || !done {
		t.Fatal("completed loop not done")
	}
}

func TestIMulLoopDetectsFaults(t *testing.T) {
	p := newPlatform(t, 2)
	undervoltIntoFaultWindow(t, p, 0)
	l, err := NewIMulLoop(p.Core(0), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := l.Run()
	if err != nil {
		t.Fatalf("crash inside window: %v", err)
	}
	if faults == 0 {
		t.Fatal("no faults detected in fault window")
	}
}

func TestIMulLoopBatchMatchesStatistics(t *testing.T) {
	p := newPlatform(t, 3)
	undervoltIntoFaultWindow(t, p, 0)
	l, _ := NewIMulLoop(p.Core(0), 1_000_000)
	res, err := l.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 || l.Faults != res.Faults {
		t.Fatalf("batch faults %d, loop faults %d", res.Faults, l.Faults)
	}
	if l.Pos() != l.Len() {
		t.Fatal("batch did not consume loop")
	}
}

func TestIMulLoopReset(t *testing.T) {
	p := newPlatform(t, 1)
	l, _ := NewIMulLoop(p.Core(0), 100)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	l.Reset()
	if l.Pos() != 0 || l.Faults != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestIMulLoopValidation(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := NewIMulLoop(nil, 10); err == nil {
		t.Fatal("nil core accepted")
	}
	if _, err := NewIMulLoop(p.Core(0), 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestGenerateRSAKeyDeterministic(t *testing.T) {
	k1, err := GenerateRSAKey(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateRSAKey(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 {
		t.Fatal("same seed produced different keys")
	}
	k3, err := GenerateRSAKey(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k3.N) == 0 {
		t.Fatal("different seeds produced identical keys")
	}
	if _, err := GenerateRSAKey(64, 1); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestRSAKeyInternalConsistency(t *testing.T) {
	k, err := GenerateRSAKey(512, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := k.HashToInt([]byte("consistency"))
	// Plain (non-CRT) signature verifies.
	sig := new(big.Int).Exp(m, k.D, k.N)
	if !k.Verify(m, sig) {
		t.Fatal("plain RSA signature did not verify")
	}
	// CRT parameters are consistent: Dp = D mod p-1, Qinv*Q = 1 mod p.
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(k.P, one)
	if new(big.Int).Mod(k.D, pm1).Cmp(k.Dp) != 0 {
		t.Fatal("Dp inconsistent")
	}
	if new(big.Int).Mod(new(big.Int).Mul(k.Qinv, k.Q), k.P).Cmp(one) != 0 {
		t.Fatal("Qinv inconsistent")
	}
	if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
		t.Fatal("N != P*Q")
	}
}

func TestCRTSignerCleanSignatureVerifies(t *testing.T) {
	p := newPlatform(t, 5)
	k, err := GenerateRSAKey(512, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCRTSigner(k, p.Core(0), 99)
	if err != nil {
		t.Fatal(err)
	}
	m := k.HashToInt([]byte("attack at dawn"))
	sig, faulted, err := s.Sign(m)
	if err != nil {
		t.Fatal(err)
	}
	if faulted {
		t.Fatal("fault at stock voltage")
	}
	if !k.Verify(m, sig) {
		t.Fatal("CRT signature did not verify")
	}
	if s.Steps == 0 {
		t.Fatal("no core multiplications recorded")
	}
	if got := s.StepsPerSign(m); got != s.Steps {
		t.Fatalf("StepsPerSign %d != observed %d", got, s.Steps)
	}
}

func TestCRTSignerValidation(t *testing.T) {
	p := newPlatform(t, 5)
	k, _ := GenerateRSAKey(512, 11)
	if _, err := NewCRTSigner(nil, p.Core(0), 1); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := NewCRTSigner(k, nil, 1); err == nil {
		t.Fatal("nil core accepted")
	}
}

func TestFaultySignatureEnablesFactorRecovery(t *testing.T) {
	// The Plundervolt end-to-end condition: undervolt, sign until a fault
	// lands in one CRT half, run Boneh-DeMillo-Lipton, factor N.
	p := newPlatform(t, 6)
	undervoltIntoFaultWindow(t, p, 0)
	k, err := GenerateRSAKey(512, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCRTSigner(k, p.Core(0), 17)
	if err != nil {
		t.Fatal(err)
	}
	m := k.HashToInt([]byte("plundervolt"))
	recovered := false
	for attempt := 0; attempt < 400 && !recovered; attempt++ {
		sig, faulted, err := s.Sign(m)
		if err != nil {
			t.Fatalf("crash during signing: %v", err)
		}
		if !faulted {
			continue
		}
		if k.Verify(m, sig) {
			t.Fatal("faulted signature verified — fault model broken")
		}
		if f, ok := RecoverFactor(k.N, k.E, m, sig); ok {
			if !FactorsN(k.N, f) {
				t.Fatalf("recovered non-factor %v", f)
			}
			if f.Cmp(k.P) != 0 && f.Cmp(k.Q) != 0 {
				t.Fatal("recovered factor is neither p nor q")
			}
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("factor not recovered after 400 signing attempts")
	}
}

func TestRecoverFactorRejectsCleanSignature(t *testing.T) {
	p := newPlatform(t, 5)
	k, _ := GenerateRSAKey(512, 11)
	s, _ := NewCRTSigner(k, p.Core(0), 99)
	m := k.HashToInt([]byte("clean"))
	sig, _, err := s.Sign(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := RecoverFactor(k.N, k.E, m, sig); ok {
		t.Fatal("recovered factor from a valid signature")
	}
	if _, ok := RecoverFactor(k.N, k.E, m, nil); ok {
		t.Fatal("recovered factor from nil signature")
	}
}

func TestStepHookObservesEveryMultiplication(t *testing.T) {
	p := newPlatform(t, 5)
	k, _ := GenerateRSAKey(512, 11)
	s, _ := NewCRTSigner(k, p.Core(0), 99)
	var seen []int
	s.StepHook = func(step int) { seen = append(seen, step) }
	m := k.HashToInt([]byte("hooked"))
	if _, _, err := s.Sign(m); err != nil {
		t.Fatal(err)
	}
	if len(seen) != s.Steps {
		t.Fatalf("hook saw %d steps, signer reports %d", len(seen), s.Steps)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("hook indices not sequential at %d", i)
		}
	}
}

// AES-128 FIPS-197 appendix C.1 vector.
func TestAESKnownAnswer(t *testing.T) {
	key := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	a, err := NewAES128(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := a.EncryptPure(pt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if ct[i] != want[i] {
			t.Fatalf("FIPS-197 KAT mismatch at byte %d: got %02x want %02x", i, ct[i], want[i])
		}
	}
}

func TestAESOnCoreMatchesPureAtNominal(t *testing.T) {
	p := newPlatform(t, 5)
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}
	a, err := NewAES128(key, 2)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("sixteen byte msg")
	ref, err := a.EncryptPure(pt)
	if err != nil {
		t.Fatal(err)
	}
	ct, round, err := a.EncryptOn(p.Core(0), pt)
	if err != nil {
		t.Fatal(err)
	}
	if round != -1 {
		t.Fatalf("fault at stock voltage (round %d)", round)
	}
	for i := range ref {
		if ct[i] != ref[i] {
			t.Fatal("core encryption differs from reference at stock voltage")
		}
	}
}

// undervoltIntoAESWindow targets the shallower AES path specifically.
func undervoltIntoAESWindow(t *testing.T, p *cpu.Platform, core int) {
	t.Helper()
	c := p.Core(core)
	for off := -1; off >= -450; off-- {
		if err := p.WriteOffsetViaMSR(core, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassAES) > 1e-4 && c.CrashProbability() < 1e-9 {
			return
		}
	}
	t.Fatal("no AES fault window")
}

func TestAESFaultsUnderUndervolt(t *testing.T) {
	p := newPlatform(t, 9)
	undervoltIntoAESWindow(t, p, 0)
	key := make([]byte, 16)
	a, _ := NewAES128(key, 3)
	pt := make([]byte, 16)
	ref, _ := a.EncryptPure(pt)
	sawFault := false
	for i := 0; i < 100_000 && !sawFault; i++ {
		pt[0], pt[1] = byte(i), byte(i>>8)
		ref, _ = a.EncryptPure(pt)
		ct, round, err := a.EncryptOn(p.Core(0), pt)
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		if round >= 0 {
			sawFault = true
			same := true
			for j := range ref {
				if ct[j] != ref[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("faulted round produced correct ciphertext")
			}
			if round < 1 || round > 10 {
				t.Fatalf("fault round %d out of range", round)
			}
		}
	}
	if !sawFault {
		t.Fatal("no AES fault in window")
	}
}

func TestAESValidation(t *testing.T) {
	if _, err := NewAES128(make([]byte, 15), 1); err == nil {
		t.Fatal("short key accepted")
	}
	a, _ := NewAES128(make([]byte, 16), 1)
	if _, err := a.EncryptPure(make([]byte, 5)); err == nil {
		t.Fatal("short block accepted")
	}
	p := newPlatform(t, 1)
	if _, _, err := a.EncryptOn(nil, make([]byte, 16)); err == nil {
		t.Fatal("nil core accepted")
	}
	if _, _, err := a.EncryptOn(p.Core(0), make([]byte, 3)); err == nil {
		t.Fatal("short block accepted on core")
	}
}

func TestCrashPropagatesFromLoop(t *testing.T) {
	p := newPlatform(t, 4)
	if err := p.WriteOffsetViaMSR(0, -500, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	l, _ := NewIMulLoop(p.Core(0), 1_000_000)
	_, err := l.Run()
	if !errors.Is(err, cpu.ErrCrashed) {
		t.Fatalf("expected ErrCrashed, got %v", err)
	}
}

func BenchmarkCRTSign512(b *testing.B) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 1)
	k, _ := GenerateRSAKey(512, 11)
	s, _ := NewCRTSigner(k, p.Core(0), 99)
	m := k.HashToInt([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = s.Sign(m)
	}
}

func BenchmarkAESEncryptOnCore(b *testing.B) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 1)
	a, _ := NewAES128(make([]byte, 16), 1)
	pt := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = a.EncryptOn(p.Core(0), pt)
	}
}

func TestVerifyBeforeReleaseBlocksKeyExtraction(t *testing.T) {
	// The classic application-level mitigation: a faulty CRT signature is
	// caught by public-key verification and never released, so the BDL
	// gcd has nothing to work with.
	p := newPlatform(t, 21)
	undervoltIntoFaultWindow(t, p, 0)
	k, err := GenerateRSAKey(512, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCRTSigner(k, p.Core(0), 29)
	if err != nil {
		t.Fatal(err)
	}
	s.VerifyBeforeRelease = true
	m := k.HashToInt([]byte("protected"))
	retried := false
	for i := 0; i < 200; i++ {
		sig, faulted, err := s.Sign(m)
		if errors.Is(err, ErrSignatureUnstable) {
			// Deep in the window the retry budget can run out — that is a
			// DoS, not a leak; acceptable outcome.
			retried = true
			continue
		}
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		if faulted {
			t.Fatal("protected signer reported a released faulty signature")
		}
		if !k.Verify(m, sig) {
			t.Fatal("protected signer released an invalid signature")
		}
		if s.Retries > 0 {
			retried = true
		}
		if _, ok := RecoverFactor(k.N, k.E, m, sig); ok {
			t.Fatal("released signature leaked a factor")
		}
	}
	if !retried {
		t.Fatal("fault window never triggered a verify-retry — window miscalibrated")
	}
}

func TestVerifyBeforeReleaseUnstableMachine(t *testing.T) {
	// Push the fault probability so high that retries exhaust: the signer
	// degrades to denial of service rather than leaking.
	p := newPlatform(t, 22)
	c := p.Core(0)
	for off := -1; off >= -450; off-- {
		if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 0.05 && c.CrashProbability() < 1e-9 {
			break
		}
	}
	k, _ := GenerateRSAKey(512, 23)
	s, _ := NewCRTSigner(k, c, 29)
	s.VerifyBeforeRelease = true
	s.MaxRetries = 3
	m := k.HashToInt([]byte("dos"))
	sawUnstable := false
	for i := 0; i < 50 && !sawUnstable; i++ {
		_, _, err := s.Sign(m)
		if errors.Is(err, ErrSignatureUnstable) {
			sawUnstable = true
		} else if err != nil {
			t.Fatalf("crash: %v", err)
		}
	}
	if !sawUnstable {
		t.Fatal("retry budget never exhausted at 5% per-mul fault rate")
	}
}

func TestSignProgramMatchesDirectSign(t *testing.T) {
	p := newPlatform(t, 31)
	k, err := GenerateRSAKey(512, 33)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCRTSigner(k, p.Core(0), 35)
	if err != nil {
		t.Fatal(err)
	}
	m := k.HashToInt([]byte("steppable"))
	prog, err := NewSignProgram(s, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSignProgram(nil, m); err == nil {
		t.Fatal("nil signer accepted")
	}
	if prog.Len() == 0 || prog.Signature() != nil {
		t.Fatal("bad initial state")
	}
	steps := 0
	for {
		done, err := prog.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != prog.Len() || prog.Pos() != prog.Len() {
		t.Fatalf("steps %d of %d", steps, prog.Len())
	}
	sig := prog.Signature()
	if sig == nil || !k.Verify(m, sig) {
		t.Fatal("stepped signature invalid")
	}
	// Identical to the monolithic path (deterministic platform, no faults).
	direct, _, err := s.Sign(m)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Cmp(direct) != 0 {
		t.Fatal("stepped and direct signatures differ")
	}
	// Step after completion keeps reporting done.
	if done, err := prog.Step(); err != nil || !done {
		t.Fatal("completed program not done")
	}
}

func TestSignProgramUnderSingleSteppingAttack(t *testing.T) {
	// The stepping adversary undervolts during exactly one multiply step
	// of a real RSA-CRT signature and recovers a factor from the result —
	// the full Sec. 4.1 threat model against the application layer.
	p := newPlatform(t, 32)
	c := p.Core(0)
	attackOffset := 0
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 0.4 && c.CrashProbability() < 1e-6 {
			attackOffset = off
			break
		}
	}
	if attackOffset == 0 {
		t.Fatal("no high-rate fault point")
	}
	restore := func() { _ = p.WriteOffsetViaMSR(0, 0, msr.PlaneCore); p.SettleAll() }
	undervolt := func() { _ = p.WriteOffsetViaMSR(0, attackOffset, msr.PlaneCore); p.SettleAll() }
	restore()

	k, _ := GenerateRSAKey(512, 37)
	s, _ := NewCRTSigner(k, c, 39)
	m := k.HashToInt([]byte("stepped-fault"))

	for attempt := 0; attempt < 200; attempt++ {
		prog, err := NewSignProgram(s, m)
		if err != nil {
			t.Fatal(err)
		}
		// Target one multiply inside the first CRT half.
		target := 5 + attempt%40
		for i := 0; ; i++ {
			if i == target {
				undervolt()
			}
			done, err := prog.Step()
			if i == target {
				restore()
			}
			if err != nil {
				t.Fatalf("crash at step %d: %v", i, err)
			}
			if done {
				break
			}
		}
		sig := prog.Signature()
		if k.Verify(m, sig) {
			continue // the targeted step didn't fault this time
		}
		if f, ok := RecoverFactor(k.N, k.E, m, sig); ok && FactorsN(k.N, f) {
			return // key material extracted via stepping
		}
	}
	t.Fatal("stepping attack never produced an exploitable signature")
}
