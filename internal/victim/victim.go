// Package victim provides the fault-target computations used throughout the
// reproduction:
//
//   - IMulLoop — the paper's EXECUTE thread (Sec. 4.2): a tight loop of
//     imul instructions with varying 64-bit operands whose outputs are
//     compared against the known-correct results;
//   - CRTSigner (rsa.go) — an RSA-CRT signer whose modular multiplications
//     execute on a simulated core, so undervolting yields genuinely faulty
//     signatures that the Boneh–DeMillo–Lipton attack factors N from
//     (the Plundervolt end-to-end exploit);
//   - AES128 (aes.go) — an AES encryptor whose round function executes on
//     the core, yielding faulty ciphertexts under undervolting.
package victim

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
)

// IMulLoop is the EXECUTE thread: n iterations of imul with varying
// operands, detecting faults by comparison with the architectural result.
// It implements the sgx Program interface (Step).
type IMulLoop struct {
	core *cpu.Core
	n    int
	i    int
	// Faults counts iterations whose result differed from the correct
	// product — the paper's fault-observation signal.
	Faults int
}

// NewIMulLoop builds a loop of n iterations on the core.
func NewIMulLoop(core *cpu.Core, n int) (*IMulLoop, error) {
	if core == nil {
		return nil, errors.New("victim: nil core")
	}
	if n <= 0 {
		return nil, fmt.Errorf("victim: loop length %d", n)
	}
	return &IMulLoop{core: core, n: n}, nil
}

// operands derives the iteration's multiplier pair; mixing ensures varied
// bit patterns as in the paper's "varying 64-bit operands".
func (l *IMulLoop) operands(i int) (uint64, uint64) {
	x := uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	y := (uint64(i) ^ 0xD1B54A32D192ED03) * 0x94D049BB133111EB
	return x | 1, y | 1
}

// Step executes one imul iteration. It satisfies sgx.Program.
func (l *IMulLoop) Step() (bool, error) {
	if l.i >= l.n {
		return true, nil
	}
	a, b := l.operands(l.i)
	got, _, err := l.core.IMul(a, b)
	if err != nil {
		return false, err
	}
	if got != a*b {
		l.Faults++
	}
	l.i++
	return l.i >= l.n, nil
}

// Pos returns the next iteration index.
func (l *IMulLoop) Pos() int { return l.i }

// Len returns the configured iteration count.
func (l *IMulLoop) Len() int { return l.n }

// Reset rewinds the loop for reuse, clearing the fault counter.
func (l *IMulLoop) Reset() {
	l.i = 0
	l.Faults = 0
}

// Run executes the remaining iterations step by step (per-instruction fault
// sampling). Prefer RunBatch for characterization sweeps.
func (l *IMulLoop) Run() (faults int, err error) {
	for {
		done, err := l.Step()
		if err != nil {
			return l.Faults, err
		}
		if done {
			return l.Faults, nil
		}
	}
}

// RunBatch executes the remaining iterations through the core's batched
// binomial fault sampler — equivalent statistics at sweep-compatible speed.
// The loop is marked complete afterwards.
func (l *IMulLoop) RunBatch() (cpu.BatchResult, error) {
	remaining := l.n - l.i
	res, err := l.core.RunBatch(cpu.ClassIMul, remaining)
	l.Faults += res.Faults
	l.i = l.n
	return res, err
}
