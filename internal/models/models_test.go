package models

import (
	"math"
	"testing"

	"plugvolt/internal/timing"
)

func TestAllThreeModelsCalibrate(t *testing.T) {
	specs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("All() returned %d models", len(specs))
	}
	wantCodenames := []string{"Sky Lake", "Kaby Lake R", "Comet Lake"}
	wantUcode := []string{"0xf0", "0xf4", "0xf4"}
	for i, s := range specs {
		if s.Codename != wantCodenames[i] {
			t.Errorf("model %d codename %q", i, s.Codename)
		}
		if s.Microcode != wantUcode[i] {
			t.Errorf("%s microcode %q, want %q (paper Sec. 4.2)", s.Codename, s.Microcode, wantUcode[i])
		}
		if s.Tech.K <= 0 {
			t.Errorf("%s: K not calibrated", s.Codename)
		}
	}
}

func TestCalibrationMeetsMarginAtTurbo(t *testing.T) {
	specs, _ := All()
	for _, s := range specs {
		c, err := s.Circuit()
		if err != nil {
			t.Fatalf("%s: %v", s.Codename, err)
		}
		p, ok := c.PathByName(PathIMul)
		if !ok {
			t.Fatalf("%s: no imul path", s.Codename)
		}
		a := c.Analyze(p, s.MaxGHz(), s.NominalMV(s.MaxTurboRatio)/1000)
		if math.Abs(a.SlackPS-s.MarginPS) > 0.5 {
			t.Errorf("%s: imul slack at turbo = %.2f ps, want margin %.1f ps",
				s.Codename, a.SlackPS, s.MarginPS)
		}
	}
}

func TestNominalVoltageCurve(t *testing.T) {
	s, err := SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NominalMV(s.MinRatio); got != 720 {
		t.Fatalf("Vmin = %v", got)
	}
	if got := s.NominalMV(s.MaxTurboRatio); math.Abs(got-1170) > 1e-9 {
		t.Fatalf("Vmax = %v", got)
	}
	// Clamping outside the programmable range.
	if got := s.NominalMV(0); got != 720 {
		t.Fatalf("V(below min) = %v", got)
	}
	if got := s.NominalMV(200); math.Abs(got-1170) > 1e-9 {
		t.Fatalf("V(above max) = %v", got)
	}
	// Convexity: the step size must grow with ratio.
	prevStep := -1.0
	for r := s.MinRatio; r < s.MaxTurboRatio; r++ {
		step := s.NominalMV(r+1) - s.NominalMV(r)
		if step < prevStep {
			t.Fatalf("V/f curve not convex at ratio %d", r)
		}
		prevStep = step
	}
	// Monotone increasing with ratio.
	prev := -1.0
	for r := s.MinRatio; r <= s.MaxTurboRatio; r++ {
		v := s.NominalMV(r)
		if v <= prev {
			t.Fatalf("V/f curve not increasing at ratio %d", r)
		}
		prev = v
	}
}

func TestEveryOperatingPointIsSafeAtNominal(t *testing.T) {
	// The stock V/f curve must be entirely in the safe region: a machine
	// that faults without adversarial undervolting is miscalibrated.
	specs, _ := All()
	for _, s := range specs {
		c, err := s.Circuit()
		if err != nil {
			t.Fatal(err)
		}
		for r := s.MinRatio; r <= s.MaxTurboRatio; r++ {
			f := float64(int(r)*s.BusMHz) / 1000
			v := s.NominalMV(r) / 1000
			worst, err := c.WorstSlack(f, v)
			if err != nil {
				t.Fatal(err)
			}
			// Require at least ~4.5 sigma of slack so the per-instruction
			// fault probability is negligible at stock settings.
			if worst.SlackPS < 4.5*c.JitterSigmaPS {
				t.Errorf("%s at ratio %d: worst slack %.1f ps < 4.5 sigma (%s path)",
					s.Codename, r, worst.SlackPS, worst.Path.Name)
			}
		}
	}
}

func TestFaultOnsetRequiresUndervolt(t *testing.T) {
	// At every frequency there must exist a negative offset within the
	// paper's sweep range (-1..-300 mV for the two desktop-era parts) that
	// pushes the imul path to negative slack; otherwise Figs. 2-4 would
	// have empty unsafe regions.
	specs, _ := All()
	for _, s := range specs {
		c, _ := s.Circuit()
		p, _ := c.PathByName(PathIMul)
		for r := s.MinRatio; r <= s.MaxTurboRatio; r += 4 {
			f := float64(int(r)*s.BusMHz) / 1000
			nom := s.NominalMV(r)
			// -450 mV generously covers crash territory at low ratios.
			a := c.Analyze(p, f, (nom-450)/1000)
			if a.Safe() && !math.IsInf(a.ArrivalPS, 1) {
				t.Errorf("%s ratio %d: still safe at -450 mV (slack %.1f)",
					s.Codename, r, a.SlackPS)
			}
		}
	}
}

func TestOnsetMagnitudeShrinksWithFrequency(t *testing.T) {
	// Core shape claim of Figs. 2-4: higher frequency -> smaller |offset|
	// needed to fault. We allow sub-grid (<2 mV, below the 1 mV sweep
	// step plus quantization) local deviations but require a strong
	// overall decline from the lowest to the highest frequency.
	specs, _ := All()
	for _, s := range specs {
		c, _ := s.Circuit()
		p, _ := c.PathByName(PathIMul)
		var first, last float64
		prevOnset := math.Inf(-1) // offsets are negative; onset rises toward 0
		for r := s.MinRatio; r <= s.MaxTurboRatio; r++ {
			f := float64(int(r)*s.BusMHz) / 1000
			nom := s.NominalMV(r) / 1000
			vmin, err := c.MinVoltage(p, f, nom, 1e-5)
			if err != nil {
				t.Fatalf("%s ratio %d: %v", s.Codename, r, err)
			}
			onsetMV := (vmin - nom) * 1000 // negative
			if r == s.MinRatio {
				first = onsetMV
			}
			last = onsetMV
			// Allow a shallow (<8 mV cumulative) mid-band dip; the paper's
			// empirical bands are fuzzier than that.
			if onsetMV < prevOnset-8.0 {
				t.Errorf("%s: onset offset %0.1f mV at ratio %d regressed by >8 mV (running max %0.1f)",
					s.Codename, onsetMV, r, prevOnset)
			}
			if onsetMV > prevOnset {
				prevOnset = onsetMV
			}
		}
		if last < first+30 {
			t.Errorf("%s: onset did not shrink overall: %0.1f mV at fmin vs %0.1f mV at fmax",
				s.Codename, first, last)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"skylake", "kabylaker", "cometlake", "Sky Lake", "Kaby Lake R", "Comet Lake"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("pentium4"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestFreqTable(t *testing.T) {
	s, _ := SkyLake()
	tab := s.FreqTableKHz()
	if len(tab) != int(s.MaxTurboRatio-s.MinRatio)+1 {
		t.Fatalf("table length %d", len(tab))
	}
	if tab[0] != 800_000 || tab[len(tab)-1] != 3_600_000 {
		t.Fatalf("table bounds %d..%d", tab[0], tab[len(tab)-1])
	}
	// 0.1 GHz resolution, as in Algorithm 2.
	for i := 1; i < len(tab); i++ {
		if tab[i]-tab[i-1] != 100_000 {
			t.Fatal("table not at 0.1 GHz resolution")
		}
	}
}

func TestCircuitRequiresCalibration(t *testing.T) {
	s := &Spec{Codename: "raw", Depths: baseDepths(), ControlDepth: 0.94}
	if _, err := s.Circuit(); err == nil {
		t.Fatal("Circuit before Calibrate did not error")
	}
}

func TestCalibrateRejectsBadSpecs(t *testing.T) {
	bad := &Spec{
		Codename: "bad", BusMHz: 100, MinRatio: 8, MaxTurboRatio: 36,
		VminMV: 720, VmaxMV: 1170, Gamma: 1.7,
		Tech:   timing.AlphaPower{Vth: 0.35, Alpha: 1.3},
		Depths: map[string]float64{PathIMul: 0.5},
	}
	if err := bad.Calibrate(); err == nil {
		t.Fatal("non-unit imul depth accepted")
	}
	noBudget := &Spec{
		Codename: "nb", BusMHz: 1000, MinRatio: 8, MaxTurboRatio: 200,
		VminMV: 720, VmaxMV: 800, Gamma: 1.7,
		Tech: timing.AlphaPower{Vth: 0.35, Alpha: 1.3}, SetupPS: 20, EpsPS: 15, MarginPS: 5,
		Depths: baseDepths(),
	}
	if err := noBudget.Calibrate(); err == nil {
		t.Fatal("zero timing budget accepted")
	}
	subVth := &Spec{
		Codename: "sv", BusMHz: 100, MinRatio: 8, MaxTurboRatio: 36,
		VminMV: 100, VmaxMV: 150, Gamma: 1.7,
		Tech: timing.AlphaPower{Vth: 0.35, Alpha: 1.3}, SetupPS: 20, EpsPS: 15, MarginPS: 30,
		Depths: baseDepths(),
	}
	if err := subVth.Calibrate(); err == nil {
		t.Fatal("nominal voltage below Vth accepted")
	}
}

func TestCircuitMissingPathDepth(t *testing.T) {
	s, _ := SkyLake()
	delete(s.Depths, PathFMA)
	if _, err := s.Circuit(); err == nil {
		t.Fatal("missing path depth accepted")
	}
}

func TestControlPathMarked(t *testing.T) {
	s, _ := SkyLake()
	c, err := s.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := c.PathByName(PathControl)
	if !ok || !p.Control {
		t.Fatal("control path missing or unmarked")
	}
	// imul must strictly dominate control so data faults appear before
	// crashes as the offset deepens (paper: a fault window exists).
	imul, _ := c.PathByName(PathIMul)
	if imul.Depth() <= p.Depth() {
		t.Fatal("imul not deeper than control path")
	}
}
