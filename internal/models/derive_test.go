package models

import (
	"math"
	"testing"
)

// TestNominalMVTableBitExact checks the precomputed per-ratio voltage table
// against the direct V(r) curve formula for every programmable ratio of
// every model, including the clamped edges.
func TestNominalMVTableBitExact(t *testing.T) {
	specs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		direct := func(ratio uint8) float64 {
			span := float64(s.MaxTurboRatio - s.MinRatio)
			if span == 0 {
				return s.VminMV
			}
			x := float64(ratio-s.MinRatio) / span
			return s.VminMV + (s.VmaxMV-s.VminMV)*math.Pow(x, s.Gamma)
		}
		for r := s.MinRatio; ; r++ {
			got, want := s.NominalMV(r), direct(r)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s ratio %d: cached %v != direct %v", s.Codename, r, got, want)
			}
			if r == s.MaxTurboRatio {
				break
			}
		}
		// Out-of-range ratios clamp to the table edges.
		if got := s.NominalMV(s.MinRatio - 1); got != s.NominalMV(s.MinRatio) {
			t.Fatalf("%s: below-range ratio not clamped: %v", s.Codename, got)
		}
		if got := s.NominalMV(s.MaxTurboRatio + 1); got != s.NominalMV(s.MaxTurboRatio) {
			t.Fatalf("%s: above-range ratio not clamped: %v", s.Codename, got)
		}
	}
}

// TestCircuitReturnsPrivateClones verifies repeated Circuit calls hand out
// distinct circuits (private delay memos) that analyze identically.
func TestCircuitReturnsPrivateClones(t *testing.T) {
	s, err := SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("Circuit returned the same pointer twice; clones must be private")
	}
	a1, err := c1.WorstSlack(3.6, 1.17)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c2.WorstSlack(3.6, 1.17)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a1.SlackPS) != math.Float64bits(a2.SlackPS) {
		t.Fatalf("clones disagree: %v vs %v", a1.SlackPS, a2.SlackPS)
	}
}

// TestFreqTableStable verifies the cached frequency table is consistent
// across calls and spans exactly MinRatio..MaxTurboRatio.
func TestFreqTableStable(t *testing.T) {
	s, err := CometLake()
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.FreqTableKHz(), s.FreqTableKHz()
	if len(a) != int(s.MaxTurboRatio)-int(s.MinRatio)+1 {
		t.Fatalf("table has %d entries, want %d", len(a), int(s.MaxTurboRatio)-int(s.MinRatio)+1)
	}
	for i := range a {
		want := (int(s.MinRatio) + i) * s.BusMHz * 1000
		if a[i] != want || b[i] != want {
			t.Fatalf("entry %d: %d/%d, want %d", i, a[i], b[i], want)
		}
	}
}

// TestCalibrateInvalidatesDerivedCache verifies a re-calibration does not
// serve circuits built from the stale K.
func TestCalibrateInvalidatesDerivedCache(t *testing.T) {
	s, err := SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	s.MarginPS += 10 // changes the calibrated K
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	c2, err := s.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Tech.K == c2.Tech.K {
		t.Fatal("circuit after re-Calibrate still carries the old K")
	}
	if c2.Tech.K != s.Tech.K {
		t.Fatalf("circuit K %v != spec K %v", c2.Tech.K, s.Tech.K)
	}
}
