// Package models holds the parameter sets for the three Intel processors
// the paper characterizes (Sec. 4.2):
//
//   - Intel Core i5-6500  @ 3.20 GHz — Sky Lake,   microcode 0xf0
//   - Intel Core i5-8250U @ 1.60 GHz — Kaby Lake R, microcode 0xf4
//   - Intel Core i7-10510U @ 1.80 GHz — Comet Lake, microcode 0xf4
//
// Each Spec carries the frequency range, the nominal voltage/frequency
// curve the P-state hardware follows, and the timing-model constants.
// The technology constant K is not hand-tuned: Calibrate derives it so the
// deepest path (imul, per the paper "the imul instruction has the maximum
// probability of being faulted") meets timing with the stated slack margin
// at the maximum turbo operating point. Fault-onset and crash curves are
// then *emergent* from Eq. 1 rather than tabulated, which is the point of
// the paper's root-cause argument.
package models

import (
	"fmt"
	"math"
	"sync/atomic"

	"plugvolt/internal/timing"
)

// Canonical instruction-class path names shared with package cpu.
const (
	PathIMul    = "imul"    // 64x64 integer multiply — deepest data path
	PathAES     = "aesenc"  // AES round function
	PathFMA     = "fma"     // fused multiply-add
	PathLoad    = "load"    // AGU + L1 access
	PathALU     = "alu"     // simple integer op
	PathControl = "control" // pipeline control; violation = machine check
)

// Spec describes one processor model.
type Spec struct {
	Name      string // marketing name as in the paper
	Codename  string
	Microcode string
	Cores     int
	Threads   int
	BusMHz    int

	// Ratio range: MinRatio..MaxTurboRatio are programmable; BaseRatio is
	// the guaranteed all-core frequency.
	MinRatio      uint8
	BaseRatio     uint8
	MaxTurboRatio uint8

	// Nominal V/f curve followed by hardware P-states. Real Intel curves
	// are convex: nearly flat near the efficiency floor and steep toward
	// turbo. We model V(r) = Vmin + (Vmax-Vmin)*((r-rmin)/(rmax-rmin))^Gamma.
	// The convexity is what makes the fault-onset magnitude shrink with
	// frequency in Figs. 2-4 (and in Plundervolt's published sweeps).
	VminMV, VmaxMV float64
	Gamma          float64

	// Timing-model constants. Tech.K is filled in by Calibrate.
	Tech          timing.AlphaPower
	EpsPS         float64
	JitterSigmaPS float64
	SetupPS       float64
	// MarginPS is the designed worst-case slack of the deepest path at the
	// maximum turbo point (the silicon guard-band).
	MarginPS float64
	// Depths maps path name to total gate depth relative to the imul
	// path's depth of 1.0.
	Depths map[string]float64
	// ControlDepth is the relative depth of the pipeline-control path.
	ControlDepth float64

	// derived caches the pure derivations every hot path re-requests: the
	// validated circuit template, the frequency table, and the nominal V/f
	// curve. Calibrate invalidates it; other fields must not be mutated
	// once a Spec is in use (the shared-across-workers contract FactoryFor
	// already imposes).
	derived atomic.Pointer[derivedSpec]
}

// derivedSpec is the immutable cache behind Spec's accessors. The sharded
// characterizer shares one Spec across workers, so it is built once and
// published via atomic pointer; every field is read-only after publication.
type derivedSpec struct {
	circ    *timing.Circuit // validated, fully indexed template (nil before Calibrate)
	circErr error
	freqKHz []int
	nomMV   []float64 // indexed by ratio - MinRatio
}

// derive returns the cached derivations, building them on first use.
func (s *Spec) derive() *derivedSpec {
	if d := s.derived.Load(); d != nil {
		return d
	}
	d := &derivedSpec{}
	for r := s.MinRatio; ; r++ {
		d.freqKHz = append(d.freqKHz, int(r)*s.BusMHz*1000)
		d.nomMV = append(d.nomMV, s.nominalMV(r))
		if r == s.MaxTurboRatio {
			break
		}
	}
	if s.Tech.K != 0 {
		d.circ, d.circErr = s.buildCircuit()
		if d.circ != nil {
			d.circ.Prepare()
		}
	}
	// Concurrent first callers may race to build; any winner's copy is
	// equivalent, so publish with CompareAndSwap and reload.
	s.derived.CompareAndSwap(nil, d)
	return s.derived.Load()
}

// NominalMV returns the stock core voltage the P-state hardware requests at
// the given ratio (before any OC-mailbox offset). Ratios outside the
// programmable range are clamped. Values come from a precomputed per-ratio
// table (every P-state retarget used to pay a math.Pow here).
func (s *Spec) NominalMV(ratio uint8) float64 {
	if ratio < s.MinRatio {
		ratio = s.MinRatio
	}
	if ratio > s.MaxTurboRatio {
		ratio = s.MaxTurboRatio
	}
	d := s.derive()
	if i := int(ratio) - int(s.MinRatio); i >= 0 && i < len(d.nomMV) {
		return d.nomMV[i]
	}
	return s.nominalMV(ratio) // degenerate ranges fall back to the formula
}

// nominalMV is the direct V(r) curve evaluation backing the cached table.
func (s *Spec) nominalMV(ratio uint8) float64 {
	span := float64(s.MaxTurboRatio - s.MinRatio)
	if span == 0 {
		return s.VminMV
	}
	x := float64(ratio-s.MinRatio) / span
	return s.VminMV + (s.VmaxMV-s.VminMV)*math.Pow(x, s.Gamma)
}

// MaxGHz returns the maximum turbo frequency in GHz.
func (s *Spec) MaxGHz() float64 {
	return float64(int(s.MaxTurboRatio)*s.BusMHz) / 1000.0
}

// FreqTableKHz enumerates the programmable frequencies (one per ratio).
// The returned slice is cached and shared — callers must treat it as
// read-only (every existing consumer only iterates or copies it).
func (s *Spec) FreqTableKHz() []int { return s.derive().freqKHz }

// Calibrate derives Tech.K so that the deepest path has exactly MarginPS of
// slack at (MaxTurboRatio, NominalMV(MaxTurboRatio)), then validates the
// resulting circuit. It must be called once before Circuit.
func (s *Spec) Calibrate() error {
	if s.Depths[PathIMul] != 1.0 {
		return fmt.Errorf("models: %s: imul must be the unit-depth reference path", s.Codename)
	}
	fmax := s.MaxGHz()
	vmax := s.NominalMV(s.MaxTurboRatio) / 1000.0
	tclk := 1000.0 / fmax
	budget := tclk - s.SetupPS - s.EpsPS
	target := budget - s.MarginPS
	if target <= 0 {
		return fmt.Errorf("models: %s: no timing budget at fmax (budget %.1f ps, margin %.1f ps)",
			s.Codename, budget, s.MarginPS)
	}
	// delay = K * depth * V/(V-Vth)^alpha; solve K for depth=1 at (fmax, vmax).
	probe := timing.AlphaPower{K: 1, Vth: s.Tech.Vth, Alpha: s.Tech.Alpha}
	factor := probe.Delay(vmax)
	if factor <= 0 {
		return fmt.Errorf("models: %s: nominal voltage %.3f V not above Vth %.3f V", s.Codename, vmax, s.Tech.Vth)
	}
	s.Tech.K = target / factor
	// K changed, so any derivations cached before calibration are stale.
	s.derived.Store(nil)
	return s.Tech.Validate()
}

// Circuit returns the per-core timing circuit for the model. Calibrate must
// have been called (Tech.K non-zero). The circuit is built and validated
// once per Spec; each call returns a cheap clone of the cached template, so
// every core gets a private delay memo over shared, prepared path tables.
func (s *Spec) Circuit() (*timing.Circuit, error) {
	if s.Tech.K == 0 {
		return nil, fmt.Errorf("models: %s: Circuit before Calibrate", s.Codename)
	}
	d := s.derive()
	if d.circErr != nil {
		return nil, d.circErr
	}
	if d.circ == nil {
		// Cached before K was set without going through Calibrate; build
		// directly rather than serve a stale miss.
		return s.buildCircuit()
	}
	return d.circ.Clone(), nil
}

// buildCircuit constructs and validates the circuit from the model tables.
func (s *Spec) buildCircuit() (*timing.Circuit, error) {
	c := &timing.Circuit{
		Tech:          s.Tech,
		EpsPS:         s.EpsPS,
		JitterSigmaPS: s.JitterSigmaPS,
	}
	for _, name := range []string{PathIMul, PathAES, PathFMA, PathLoad, PathALU} {
		d, ok := s.Depths[name]
		if !ok {
			return nil, fmt.Errorf("models: %s: missing depth for path %q", s.Codename, name)
		}
		c.Paths = append(c.Paths, timing.Path{
			Name:      name,
			SrcDepth:  0.12 * d,
			PropDepth: 0.88 * d,
			SetupPS:   s.SetupPS,
		})
	}
	c.Paths = append(c.Paths, timing.Path{
		Name:      PathControl,
		SrcDepth:  0.12 * s.ControlDepth,
		PropDepth: 0.88 * s.ControlDepth,
		SetupPS:   s.SetupPS,
		Control:   true,
	})
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func baseDepths() map[string]float64 {
	// Ordering matters: imul is the most fault-sensitive instruction (the
	// paper's EXECUTE-thread choice), AES and FMA follow (Plundervolt and
	// V0LTpwn's targets), and all three are deeper than the control path
	// (0.92) so a data-fault window exists before the machine crashes.
	return map[string]float64{
		PathIMul: 1.00,
		PathAES:  0.96,
		PathFMA:  0.94,
		PathLoad: 0.78,
		PathALU:  0.58,
	}
}

// SkyLake returns the calibrated Spec for the Intel Core i5-6500
// (desktop, 65 W, 4C/4T, 3.2 GHz base / 3.6 GHz turbo).
func SkyLake() (*Spec, error) {
	s := &Spec{
		Name:          "Intel(R) Core(TM) i5-6500 CPU @ 3.20GHz",
		Codename:      "Sky Lake",
		Microcode:     "0xf0",
		Cores:         4,
		Threads:       4,
		BusMHz:        100,
		MinRatio:      8,
		BaseRatio:     32,
		MaxTurboRatio: 36,
		VminMV:        720,
		VmaxMV:        1170,
		Gamma:         1.7,
		Tech:          timing.AlphaPower{Vth: 0.35, Alpha: 1.30},
		EpsPS:         15,
		JitterSigmaPS: 4,
		SetupPS:       20,
		MarginPS:      30,
		Depths:        baseDepths(),
		ControlDepth:  0.92,
	}
	if err := s.Calibrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// KabyLakeR returns the calibrated Spec for the Intel Core i5-8250U
// (mobile, 15 W, 4C/8T, 1.6 GHz base / 3.4 GHz turbo).
func KabyLakeR() (*Spec, error) {
	s := &Spec{
		Name:          "Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz",
		Codename:      "Kaby Lake R",
		Microcode:     "0xf4",
		Cores:         4,
		Threads:       8,
		BusMHz:        100,
		MinRatio:      4,
		BaseRatio:     16,
		MaxTurboRatio: 34,
		VminMV:        640,
		VmaxMV:        1040,
		Gamma:         1.7,
		Tech:          timing.AlphaPower{Vth: 0.34, Alpha: 1.32},
		EpsPS:         16,
		JitterSigmaPS: 4.5,
		SetupPS:       21,
		MarginPS:      28,
		Depths:        baseDepths(),
		ControlDepth:  0.92,
	}
	if err := s.Calibrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// CometLake returns the calibrated Spec for the Intel Core i7-10510U
// (mobile, 15 W, 4C/8T, 1.8 GHz base / 4.9 GHz turbo).
func CometLake() (*Spec, error) {
	s := &Spec{
		Name:          "Intel(R) Core(TM) i7-10510U CPU @ 1.80GHz",
		Codename:      "Comet Lake",
		Microcode:     "0xf4",
		Cores:         4,
		Threads:       8,
		BusMHz:        100,
		MinRatio:      4,
		BaseRatio:     18,
		MaxTurboRatio: 49,
		VminMV:        620,
		VmaxMV:        1160,
		Gamma:         1.7,
		Tech:          timing.AlphaPower{Vth: 0.33, Alpha: 1.34},
		EpsPS:         14,
		JitterSigmaPS: 3.8,
		SetupPS:       18,
		MarginPS:      26,
		Depths:        baseDepths(),
		ControlDepth:  0.92,
	}
	if err := s.Calibrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ByName resolves a model by codename or short alias (case-sensitive short
// aliases: "skylake", "kabylaker", "cometlake").
func ByName(name string) (*Spec, error) {
	switch name {
	case "skylake", "Sky Lake":
		return SkyLake()
	case "kabylaker", "Kaby Lake R":
		return KabyLakeR()
	case "cometlake", "Comet Lake":
		return CometLake()
	default:
		return nil, fmt.Errorf("models: unknown CPU model %q (want skylake, kabylaker or cometlake)", name)
	}
}

// All returns the three evaluated models in paper order.
func All() ([]*Spec, error) {
	sk, err := SkyLake()
	if err != nil {
		return nil, err
	}
	kb, err := KabyLakeR()
	if err != nil {
		return nil, err
	}
	cm, err := CometLake()
	if err != nil {
		return nil, err
	}
	return []*Spec{sk, kb, cm}, nil
}
