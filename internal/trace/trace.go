// Package trace records operating-point timelines of a simulated core —
// rail voltage, frequency, register offset — and computes dwell statistics
// over them.
//
// Its headline use is making the Section 5 turnaround analysis *empirical*:
// instead of bounding the unsafe window analytically, a Recorder samples
// the core during a live attack-vs-guard run and reports exactly how long
// the rail (not just the register) sat below each frequency's fault
// boundary. If that dwell is zero, the guard's race win is measured, not
// assumed.
package trace

import (
	"errors"
	"fmt"
	"io"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// Sample is one observation of a core's operating point.
type Sample struct {
	At sim.Time
	// FreqKHz is the live PLL output.
	FreqKHz int
	// RailMV is the live regulator output (mid-slew values included).
	RailMV float64
	// OffsetMV is the register-level OC-mailbox offset.
	OffsetMV int
}

// Recorder samples one core on a fixed period.
type Recorder struct {
	core    *cpu.Core
	period  sim.Duration
	ticker  *sim.Ticker
	samples []Sample
	// Cap bounds memory; 0 = unbounded. When full, recording stops.
	Cap int
}

// NewRecorder builds a recorder for the core; Start arms it.
func NewRecorder(c *cpu.Core, period sim.Duration) (*Recorder, error) {
	if c == nil {
		return nil, errors.New("trace: nil core")
	}
	if period <= 0 {
		return nil, errors.New("trace: period must be positive")
	}
	return &Recorder{core: c, period: period}, nil
}

// Start begins sampling on the simulator clock.
func (r *Recorder) Start(s *sim.Simulator) error {
	if r.ticker != nil {
		return errors.New("trace: recorder already started")
	}
	r.ticker = s.Every(r.period, func() {
		if r.Cap > 0 && len(r.samples) >= r.Cap {
			r.ticker.Stop()
			return
		}
		r.samples = append(r.samples, Sample{
			At:       s.Now(),
			FreqKHz:  r.core.PLL.FreqKHz(),
			RailMV:   r.core.VR.OutputMV(),
			OffsetMV: r.core.OffsetMV(),
		})
	})
	return nil
}

// Stop halts sampling.
func (r *Recorder) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// Samples returns the recorded timeline (live slice; do not mutate).
func (r *Recorder) Samples() []Sample { return r.samples }

// Len returns the sample count.
func (r *Recorder) Len() int { return len(r.samples) }

// DwellStats summarizes time spent in a predicate state.
type DwellStats struct {
	// Total is the cumulative time the predicate held (sample period
	// resolution).
	Total sim.Duration
	// Longest is the longest contiguous episode.
	Longest sim.Duration
	// Episodes counts contiguous runs.
	Episodes int
	// Observed is the full recording span.
	Observed sim.Duration
}

// Fraction returns Total/Observed.
func (d DwellStats) Fraction() float64 {
	if d.Observed == 0 {
		return 0
	}
	return float64(d.Total) / float64(d.Observed)
}

// Dwell computes dwell statistics for an arbitrary predicate over samples.
func (r *Recorder) Dwell(pred func(Sample) bool) DwellStats {
	var st DwellStats
	if len(r.samples) == 0 {
		return st
	}
	st.Observed = r.samples[len(r.samples)-1].At - r.samples[0].At + r.period
	var run sim.Duration
	for _, s := range r.samples {
		if pred(s) {
			run += r.period
			st.Total += r.period
			if run > st.Longest {
				st.Longest = run
			}
			if run == r.period {
				st.Episodes++
			}
		} else {
			run = 0
		}
	}
	return st
}

// UnsafeRegisterDwell measures time the *register* state was in the unsafe
// set — what the guard reacts to.
func (r *Recorder) UnsafeRegisterDwell(u *core.UnsafeSet) DwellStats {
	return r.Dwell(func(s Sample) bool {
		return u.Contains(s.FreqKHz, s.OffsetMV)
	})
}

// UnsafeRailDwell measures time the *realized rail voltage* was below the
// fault boundary for the live frequency — the physically exploitable
// window. nominalMV maps a frequency to the stock voltage so the rail can
// be converted into an effective offset.
func (r *Recorder) UnsafeRailDwell(u *core.UnsafeSet, nominalMV func(freqKHz int) float64) DwellStats {
	return r.Dwell(func(s Sample) bool {
		effOffset := int(s.RailMV - nominalMV(s.FreqKHz))
		return u.Contains(s.FreqKHz, effOffset)
	})
}

// MinRailMV returns the deepest rail voltage seen (and when).
func (r *Recorder) MinRailMV() (float64, sim.Time, error) {
	if len(r.samples) == 0 {
		return 0, 0, errors.New("trace: no samples")
	}
	min := r.samples[0]
	for _, s := range r.samples[1:] {
		if s.RailMV < min.RailMV {
			min = s
		}
	}
	return min.RailMV, min.At, nil
}

// WriteCSV dumps the timeline for external plotting.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_ps,freq_khz,rail_mv,offset_mv"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%d\n", int64(s.At), s.FreqKHz, s.RailMV, s.OffsetMV); err != nil {
			return err
		}
	}
	return nil
}

// Histogram buckets rail voltages into binMV-wide bins (floor of mV) and
// returns sorted bin lower-bounds with counts — a quick distribution view.
// Binning is true floor division (telemetry.FloorBin), so negative rail
// values land in the bin whose lower bound is below them; the earlier
// integer-division version truncated toward zero and put e.g. -0.5 mV into
// the [0, binMV) bin.
func (r *Recorder) Histogram(binMV int) ([]int, map[int]int, error) {
	b, err := telemetry.NewBins(binMV)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	for _, s := range r.samples {
		b.Observe(s.RailMV)
	}
	bins, counts := b.Snapshot()
	return bins, counts, nil
}
