package trace

import (
	"strings"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/kernel"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func newPlatform(t *testing.T, seed int64) *cpu.Platform {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecorderValidation(t *testing.T) {
	p := newPlatform(t, 1)
	if _, err := NewRecorder(nil, sim.Microsecond); err == nil {
		t.Fatal("nil core accepted")
	}
	if _, err := NewRecorder(p.Core(0), 0); err == nil {
		t.Fatal("zero period accepted")
	}
	r, err := NewRecorder(p.Core(0), sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(p.Sim); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestRecorderSamplesTimeline(t *testing.T) {
	p := newPlatform(t, 2)
	r, err := NewRecorder(p.Core(0), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	// Undervolt mid-recording; the timeline must show the slew.
	p.Sim.RunFor(100 * sim.Microsecond)
	if err := p.WriteOffsetViaMSR(0, -200, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(800 * sim.Microsecond)
	r.Stop()
	if r.Len() < 80 {
		t.Fatalf("samples %d", r.Len())
	}
	first, last := r.Samples()[0], r.Samples()[r.Len()-1]
	if first.RailMV <= last.RailMV {
		t.Fatalf("rail did not descend: %v -> %v", first.RailMV, last.RailMV)
	}
	if last.OffsetMV > -198 || last.OffsetMV < -202 { // ±Algorithm-1 quantization
		t.Fatalf("final register offset %d", last.OffsetMV)
	}
	// Mid-slew samples exist: some rail value strictly between endpoints.
	sawMid := false
	for _, s := range r.Samples() {
		if s.RailMV < first.RailMV-20 && s.RailMV > last.RailMV+20 {
			sawMid = true
			break
		}
	}
	if !sawMid {
		t.Fatal("no mid-slew samples — VR transition invisible to trace")
	}
	min, at, err := r.MinRailMV()
	if err != nil {
		t.Fatal(err)
	}
	if min != last.RailMV || at == 0 {
		t.Fatalf("min rail %v at %v", min, at)
	}
}

func TestRecorderCap(t *testing.T) {
	p := newPlatform(t, 3)
	r, _ := NewRecorder(p.Core(0), sim.Microsecond)
	r.Cap = 5
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(100 * sim.Microsecond)
	if r.Len() != 5 {
		t.Fatalf("cap not enforced: %d samples", r.Len())
	}
}

func TestDwellStats(t *testing.T) {
	p := newPlatform(t, 4)
	r, _ := NewRecorder(p.Core(0), 10*sim.Microsecond)
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	// 200 us at stock, then undervolt -100 for ~500 us, then restore.
	p.Sim.RunFor(200 * sim.Microsecond)
	_ = p.WriteOffsetViaMSR(0, -100, msr.PlaneCore)
	p.Sim.RunFor(500 * sim.Microsecond)
	_ = p.WriteOffsetViaMSR(0, 0, msr.PlaneCore)
	p.Sim.RunFor(500 * sim.Microsecond)
	r.Stop()
	st := r.Dwell(func(s Sample) bool { return s.OffsetMV <= -100 })
	if st.Episodes != 1 {
		t.Fatalf("episodes %d", st.Episodes)
	}
	if st.Total < 400*sim.Microsecond || st.Total > 600*sim.Microsecond {
		t.Fatalf("dwell total %v", st.Total)
	}
	if st.Longest != st.Total {
		t.Fatalf("single episode: longest %v != total %v", st.Longest, st.Total)
	}
	if f := st.Fraction(); f < 0.3 || f > 0.55 {
		t.Fatalf("fraction %v", f)
	}
	if (DwellStats{}).Fraction() != 0 {
		t.Fatal("empty stats fraction nonzero")
	}
}

// The headline measurement: under a guarded live attack, the *register* is
// transiently unsafe but the *rail* never is.
func TestGuardedAttackHasZeroUnsafeRailDwell(t *testing.T) {
	p := newPlatform(t, 5)
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	ch, err := core.NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	unsafe := grid.UnsafeSet()
	k := kernel.New(p.Sim, p)
	guard, err := core.NewGuard(unsafe, p.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Load(guard.Module()); err != nil {
		t.Fatal(err)
	}

	victim := 1
	rec, err := NewRecorder(p.Core(victim), 5*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	freq := p.FreqKHz(victim)
	attackOffset := unsafe.OnsetMV[freq] - 60
	attacker := p.Sim.Every(537*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(victim, attackOffset, msr.PlaneCore)
	})
	p.Sim.RunFor(20 * sim.Millisecond)
	attacker.Stop()
	rec.Stop()

	reg := rec.UnsafeRegisterDwell(unsafe)
	if reg.Episodes == 0 {
		t.Fatal("attack never made the register unsafe — test broken")
	}
	// Register dwell per episode bounded by the poll period (+ sampling).
	if reg.Longest > guard.WorstCaseTurnaround(0, 1e9)+10*sim.Microsecond {
		t.Fatalf("register unsafe for %v, beyond one poll period", reg.Longest)
	}
	rail := rec.UnsafeRailDwell(unsafe, func(freqKHz int) float64 {
		return p.Spec.NominalMV(msr.KHzToRatio(freqKHz, p.Spec.BusMHz))
	})
	if rail.Total != 0 {
		t.Fatalf("rail reached unsafe depth for %v (%d episodes) — guard lost the race",
			rail.Total, rail.Episodes)
	}
	if guard.Interventions == 0 {
		t.Fatal("guard never intervened")
	}
}

func TestUnguardedAttackHasNonzeroUnsafeRailDwell(t *testing.T) {
	// Control: without the module the rail does reach unsafe depth.
	p := newPlatform(t, 5)
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	ch, _ := core.NewCharacterizer(p, cfg)
	grid, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	unsafe := grid.UnsafeSet()
	victim := 1
	rec, _ := NewRecorder(p.Core(victim), 5*sim.Microsecond)
	if err := rec.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	freq := p.FreqKHz(victim)
	_ = p.WriteOffsetViaMSR(victim, unsafe.OnsetMV[freq]-60, msr.PlaneCore)
	p.Sim.RunFor(3 * sim.Millisecond)
	rec.Stop()
	rail := rec.UnsafeRailDwell(unsafe, func(freqKHz int) float64 {
		return p.Spec.NominalMV(msr.KHzToRatio(freqKHz, p.Spec.BusMHz))
	})
	if rail.Total == 0 {
		t.Fatal("unguarded rail never unsafe — control broken")
	}
}

func TestWriteCSVAndHistogram(t *testing.T) {
	p := newPlatform(t, 6)
	r, _ := NewRecorder(p.Core(0), 10*sim.Microsecond)
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	_ = p.WriteOffsetViaMSR(0, -150, msr.PlaneCore)
	p.Sim.RunFor(500 * sim.Microsecond)
	r.Stop()
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t_ps,freq_khz,rail_mv,offset_mv" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != r.Len()+1 {
		t.Fatalf("csv rows %d for %d samples", len(lines)-1, r.Len())
	}
	bins, counts, err := r.Histogram(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 2 {
		t.Fatalf("histogram bins %d — slew invisible", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += counts[b]
	}
	if total != r.Len() {
		t.Fatalf("histogram total %d != samples %d", total, r.Len())
	}
	if _, _, err := r.Histogram(0); err == nil {
		t.Fatal("zero bin width accepted")
	}
}

func TestRecorderCapStaysStopped(t *testing.T) {
	// Once the cap is hit the ticker stops for good: running the sim much
	// longer adds nothing, the first Cap samples are retained (drop-newest),
	// and Stop remains safe to call.
	p := newPlatform(t, 8)
	r, _ := NewRecorder(p.Core(0), sim.Microsecond)
	r.Cap = 3
	if err := r.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(10 * sim.Microsecond)
	if r.Len() != 3 {
		t.Fatalf("cap not enforced: %d samples", r.Len())
	}
	firstAt := r.Samples()[0].At
	p.Sim.RunFor(10 * sim.Millisecond)
	if r.Len() != 3 {
		t.Fatalf("sampling resumed after cap: %d samples", r.Len())
	}
	if r.Samples()[0].At != firstAt {
		t.Fatal("cap evicted the oldest sample; expected drop-newest")
	}
	r.Stop() // must not panic on an already-stopped ticker
}

func TestDwellSingleSample(t *testing.T) {
	p := newPlatform(t, 9)
	r, _ := NewRecorder(p.Core(0), 10*sim.Microsecond)
	r.samples = []Sample{{At: 100 * sim.Microsecond, OffsetMV: -50}}
	st := r.Dwell(func(s Sample) bool { return s.OffsetMV < 0 })
	if st.Observed != r.period {
		t.Fatalf("single-sample observed %v, want one period %v", st.Observed, r.period)
	}
	if st.Total != r.period || st.Longest != r.period || st.Episodes != 1 {
		t.Fatalf("single matching sample: %+v", st)
	}
	if st.Fraction() != 1 {
		t.Fatalf("fraction %v, want 1", st.Fraction())
	}
	// The same sample failing the predicate: zero dwell, nonzero span.
	st = r.Dwell(func(s Sample) bool { return s.OffsetMV > 0 })
	if st.Total != 0 || st.Episodes != 0 || st.Observed != r.period {
		t.Fatalf("single non-matching sample: %+v", st)
	}
}

func TestDwellAllTrue(t *testing.T) {
	p := newPlatform(t, 10)
	r, _ := NewRecorder(p.Core(0), 10*sim.Microsecond)
	const n = 7
	for i := 0; i < n; i++ {
		r.samples = append(r.samples, Sample{At: sim.Time(i) * 10 * sim.Microsecond})
	}
	st := r.Dwell(func(Sample) bool { return true })
	want := sim.Duration(n) * 10 * sim.Microsecond
	if st.Total != want || st.Observed != want {
		t.Fatalf("all-true total %v observed %v, want %v", st.Total, st.Observed, want)
	}
	if st.Episodes != 1 || st.Longest != want {
		t.Fatalf("all-true is one episode spanning the recording: %+v", st)
	}
	if st.Fraction() != 1 {
		t.Fatalf("fraction %v, want 1", st.Fraction())
	}
}

func TestHistogramFloorsNegativeBins(t *testing.T) {
	// Rail values below zero must land in the bin whose lower bound is
	// below them. The old integer-division binning truncated toward zero:
	// -0.5 and -10.1 both mis-binned one bin too high.
	p := newPlatform(t, 11)
	r, _ := NewRecorder(p.Core(0), sim.Microsecond)
	r.samples = []Sample{
		{RailMV: -0.5},  // → bin -10
		{RailMV: -10},   // exactly on a boundary → bin -10
		{RailMV: -10.1}, // → bin -20
		{RailMV: 0.5},   // → bin 0
		{RailMV: 9.9},   // → bin 0
	}
	bins, counts, err := r.Histogram(10)
	if err != nil {
		t.Fatal(err)
	}
	wantBins := []int{-20, -10, 0}
	if len(bins) != len(wantBins) {
		t.Fatalf("bins %v, want %v", bins, wantBins)
	}
	for i, b := range wantBins {
		if bins[i] != b {
			t.Fatalf("bins %v, want %v", bins, wantBins)
		}
	}
	for bin, want := range map[int]int{-20: 1, -10: 2, 0: 2} {
		if counts[bin] != want {
			t.Fatalf("bin %d count %d, want %d", bin, counts[bin], want)
		}
	}
}

func TestEmptyRecorderEdges(t *testing.T) {
	p := newPlatform(t, 7)
	r, _ := NewRecorder(p.Core(0), sim.Microsecond)
	if st := r.Dwell(func(Sample) bool { return true }); st.Total != 0 {
		t.Fatal("dwell on empty recorder")
	}
	if _, _, err := r.MinRailMV(); err == nil {
		t.Fatal("MinRailMV on empty recorder")
	}
}
