package cpu

import "fmt"

// Topology describes the platform's SMT layout: the Kaby Lake R and Comet
// Lake models are 4C/8T, so logical CPUs 2k and 2k+1 share physical core k
// (its PLL, voltage rail and timing paths). Hyperthreading matters to the
// paper twice: SGX attestation reports already include the HT-enabled flag
// (the precedent for attesting the guard module), and co-resident attacks
// (V0LTpwn pins a sibling thread to keep the victim core loaded) rely on
// the shared physical core.
type Topology struct {
	physical int
	smt      int
}

// Topology derives the SMT layout from the model (Threads per Cores).
func (p *Platform) Topology() (*Topology, error) {
	if p.Spec.Cores <= 0 || p.Spec.Threads < p.Spec.Cores {
		return nil, fmt.Errorf("cpu: bad topology %dC/%dT", p.Spec.Cores, p.Spec.Threads)
	}
	if p.Spec.Threads%p.Spec.Cores != 0 {
		return nil, fmt.Errorf("cpu: non-uniform SMT %dC/%dT", p.Spec.Cores, p.Spec.Threads)
	}
	return &Topology{physical: p.Spec.Cores, smt: p.Spec.Threads / p.Spec.Cores}, nil
}

// SMT returns the threads-per-core factor (1 = no hyperthreading).
func (t *Topology) SMT() int { return t.smt }

// NumLogical returns the logical CPU count.
func (t *Topology) NumLogical() int { return t.physical * t.smt }

// NumPhysical returns the physical core count.
func (t *Topology) NumPhysical() int { return t.physical }

// PhysicalOf maps a logical CPU to its physical core index. Logical CPUs
// are numbered Linux-style: logical l sits on physical l / SMT... Intel
// actually interleaves (l mod cores), but the paper's tooling (taskset on
// /proc/cpuinfo core ids) treats siblings as (l, l+cores); we follow that
// convention: logical l maps to physical l % NumPhysical.
func (t *Topology) PhysicalOf(logical int) (int, error) {
	if logical < 0 || logical >= t.NumLogical() {
		return 0, fmt.Errorf("cpu: no logical CPU %d", logical)
	}
	return logical % t.physical, nil
}

// SiblingsOf lists all logical CPUs sharing the given logical CPU's
// physical core (including itself), ascending.
func (t *Topology) SiblingsOf(logical int) ([]int, error) {
	phys, err := t.PhysicalOf(logical)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, t.smt)
	for s := 0; s < t.smt; s++ {
		out = append(out, phys+s*t.physical)
	}
	return out, nil
}

// CoResident reports whether two logical CPUs share a physical core —
// the condition under which a sibling attacker shares the victim's
// voltage/frequency domain.
func (t *Topology) CoResident(a, b int) (bool, error) {
	pa, err := t.PhysicalOf(a)
	if err != nil {
		return false, err
	}
	pb, err := t.PhysicalOf(b)
	if err != nil {
		return false, err
	}
	return pa == pb, nil
}

// LogicalCore resolves a logical CPU to its physical core's execution
// engine: siblings execute on, fault with, and crash with the same core.
func (p *Platform) LogicalCore(logical int) (*Core, error) {
	t, err := p.Topology()
	if err != nil {
		return nil, err
	}
	phys, err := t.PhysicalOf(logical)
	if err != nil {
		return nil, err
	}
	return p.Core(phys), nil
}
