// Package cpu assembles the simulated Intel platform: per-core MSR files,
// PLLs, voltage regulators and the Eq. 1 timing circuit, plus an execution
// engine that manifests timing violations as real incorrect results.
//
// The wiring mirrors hardware:
//
//   - wrmsr IA32_PERF_CTL (0x199) commands the PLL and retargets the core
//     voltage rail along the model's nominal V/f curve;
//   - wrmsr OC_MAILBOX (0x150) with the write command applies a voltage
//     offset to the selected plane (Algorithm 1's encoding);
//   - rdmsr IA32_PERF_STATUS (0x198) reports the live ratio and the live
//     regulator output, which is what the paper's kernel module polls;
//   - executing instructions samples the fault model: when the current
//     (frequency, voltage) point gives an instruction class negative slack,
//     results get bit flips, and control-path violations crash the core.
package cpu

import (
	"errors"
	"fmt"
	"math"

	"plugvolt/internal/clockgen"
	"plugvolt/internal/flight"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/power"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry/span"
	"plugvolt/internal/timing"
	"plugvolt/internal/vr"
)

// ErrCrashed is returned when code executes on a crashed core: a prior
// control-path timing violation has machine-checked the machine and it must
// be rebooted (Platform.Reboot).
var ErrCrashed = errors.New("cpu: core has crashed (control-path timing violation)")

// Class identifies an instruction class; values are the models path names.
type Class string

// Instruction classes with distinct critical-path depths.
const (
	ClassIMul Class = models.PathIMul
	ClassAES  Class = models.PathAES
	ClassFMA  Class = models.PathFMA
	ClassLoad Class = models.PathLoad
	ClassALU  Class = models.PathALU
)

// throughputCPI is the steady-state cycles per instruction of a tight loop
// of the class (pipelined throughput, not latency).
var throughputCPI = map[Class]float64{
	ClassIMul: 1.0,
	ClassAES:  1.0,
	ClassFMA:  0.5,
	ClassLoad: 0.5,
	ClassALU:  0.25,
}

// resolvedPath is one cached PathByName result (see Core.analysis).
type resolvedPath struct {
	name string
	path timing.Path
}

// Core is one simulated CPU core.
type Core struct {
	index int
	simr  *sim.Simulator
	spec  *models.Spec
	circ  *timing.Circuit

	MSRs *msr.File
	PLL  *clockgen.PLL
	VR   *vr.Regulator

	// planeOffsets holds the OC-mailbox offset per voltage plane in raw
	// 1/1024-V units (the mailbox field's native resolution, avoiding
	// cumulative quantization on re-encode). Only the core plane feeds the
	// timing model; the others are tracked so reads return what was
	// written.
	planeOffsets [msr.NumPlanes]int

	crashed bool

	// targetRatio is the most recently commanded P-state ratio. It can
	// run ahead of PLL.PendingRatio during an up-transition (the PCU holds
	// the relock until the rail arrives); all voltage targets derive from
	// it so a concurrent mailbox write cannot compute the rail from a
	// stale ratio.
	targetRatio uint8
	// pendingUp is the deferred PLL relock of an in-flight up-transition;
	// a newer P-state command pre-empts it. The zero Event is inert, so no
	// nil checks are needed around Cancel.
	pendingUp sim.Event
	// pathCache holds the timing paths this core has resolved by name (at
	// most one per path in the circuit; linear-scanned).
	pathCache []resolvedPath
	// energy, when set, is touched at every commanded operating-point
	// transition so the platform's joule integrator closes the previous
	// piecewise-constant segment exactly at the transition instant.
	energy *power.Tracker
	// flight, when set, records every commanded operating-point change —
	// the P-state transition stream an incident bundle replays.
	flight *flight.Recorder

	// Retired counts successfully executed instructions; Faulted counts
	// instructions whose result was corrupted.
	Retired uint64
	Faulted uint64
}

// Index returns the core number.
func (c *Core) Index() int { return c.index }

// Crashed reports whether this core has machine-checked.
func (c *Core) Crashed() bool { return c.crashed }

// OffsetMV returns the current OC-mailbox offset on the core plane,
// rounded to the nearest millivolt.
func (c *Core) OffsetMV() int { return c.PlaneOffsetMV(msr.PlaneCore) }

// PlaneOffsetMV returns the current offset on any plane, rounded to the
// nearest millivolt.
func (c *Core) PlaneOffsetMV(p msr.Plane) int {
	if !p.Valid() {
		return 0
	}
	return int(math.Round(msr.UnitsToMV(c.planeOffsets[p])))
}

// Ratio returns the live P-state ratio.
func (c *Core) Ratio() uint8 { return c.PLL.Ratio() }

// FreqGHz returns the live core frequency.
func (c *Core) FreqGHz() float64 { return c.PLL.FreqGHz() }

// VoltageV returns the live rail voltage in volts (nominal + offset,
// mid-slew values included).
func (c *Core) VoltageV() float64 { return c.VR.OutputMV() / 1000.0 }

// CommandedGHz returns the frequency of the most recently commanded
// P-state ratio. It can run ahead of the live PLL output during a relock;
// energy accounting bills the commanded point (see power.PointFn).
func (c *Core) CommandedGHz() float64 {
	return float64(int(c.targetRatio)*c.spec.BusMHz) / 1000.0
}

// CommandedVoltV returns the commanded rail target in volts: the nominal
// voltage of the commanded ratio plus the core-plane mailbox offset.
func (c *Core) CommandedVoltV() float64 {
	return (c.spec.NominalMV(c.targetRatio) + msr.UnitsToMV(c.planeOffsets[msr.PlaneCore])) / 1000.0
}

// retarget recomputes the rail target from the commanded ratio and the
// core plane offset and commands the regulator. Every commanded
// operating-point change — P-state writes on either transition direction
// and mailbox offset commands — funnels through here, which is what makes
// it the single energy-integration point.
func (c *Core) retarget() {
	nominal := c.spec.NominalMV(c.targetRatio)
	target := nominal + msr.UnitsToMV(c.planeOffsets[msr.PlaneCore])
	c.VR.SetTarget(target)
	if c.energy != nil {
		c.energy.Touch(c.index)
	}
	c.flight.PStateRetarget(c.index, c.targetRatio, int64(target*1000))
}

// SetRatio commands a P-state change through the hardware path. The PCU
// sequences voltage and frequency so the transition itself never violates
// Eq. 1: on an up-transition the rail rises first and the PLL relocks only
// once the regulator reports the new level (CLKSCREW exploited platforms
// that let software skip this ordering); on a down-transition the clock
// slows first and the rail follows. Software should prefer writing
// IA32_PERF_CTL via the MSR file; this is the path that write lands on.
func (c *Core) SetRatio(ratio uint8) error {
	minR, maxR := c.PLL.Range()
	if ratio < minR || ratio > maxR {
		// Surface the range error synchronously, as the PLL would.
		return c.PLL.SetRatio(ratio)
	}
	c.pendingUp.Cancel()
	c.pendingUp = sim.Event{}
	if ratio > c.PLL.PendingRatio() {
		// Up-transition: voltage first, frequency after the rail settles.
		// The relock re-arms itself if a concurrent command (mailbox
		// offset, deeper undervolt) moved the rail's target meanwhile —
		// the clock must never outrun the rail.
		c.targetRatio = ratio
		c.retarget()
		var relock func()
		relock = func() {
			if c.targetRatio != ratio {
				return // pre-empted by a newer command
			}
			if !c.VR.Settled() {
				// Re-arm strictly in the future: SettleTime is computed in
				// float mV/us and can round to the current instant.
				next := c.VR.SettleTime()
				if next <= c.simr.Now() {
					next = c.simr.Now() + sim.Microsecond
				}
				c.pendingUp = c.simr.At(next, relock)
				return
			}
			c.pendingUp = sim.Event{}
			_ = c.PLL.SetRatio(ratio) // range checked above
		}
		c.pendingUp = c.simr.At(c.VR.SettleTime(), relock)
		return nil
	}
	// Down- or same-transition: frequency first, voltage follows.
	if err := c.PLL.SetRatio(ratio); err != nil {
		return err
	}
	c.targetRatio = ratio
	c.retarget()
	return nil
}

// resolve returns the circuit path for name, caching the lookup per core
// (the circuit's path set is immutable; linear scan over at most a handful
// of entries).
func (c *Core) resolve(path string) timing.Path {
	for i := range c.pathCache {
		if c.pathCache[i].name == path {
			return c.pathCache[i].path
		}
	}
	p, ok := c.circ.PathByName(path)
	if !ok {
		panic(fmt.Sprintf("cpu: unknown timing path %q", path))
	}
	c.pathCache = append(c.pathCache, resolvedPath{name: path, path: p})
	return p
}

// analysis runs Eq. 1 for the class at the live operating point. Resolved
// paths are cached per core, because RunBatch consults the control and
// class paths on every batch.
func (c *Core) analysis(path string) timing.Analysis {
	return c.circ.Analyze(c.resolve(path), c.PLL.FreqGHz(), c.VoltageV())
}

// FaultProbability returns the per-instruction fault probability of the
// class at the live operating point.
func (c *Core) FaultProbability(class Class) float64 {
	return c.circ.FaultProbability(c.analysis(string(class)))
}

// CrashProbability returns the per-instruction probability of a
// control-path violation at the live operating point.
func (c *Core) CrashProbability() float64 {
	return c.circ.FaultProbability(c.analysis(models.PathControl))
}

// Slack returns the live slack (ps) of the class's timing path.
func (c *Core) Slack(class Class) float64 {
	return c.analysis(string(class)).SlackPS
}

// BatchUpsetProbability lifts a per-instruction upset probability p to the
// probability of at least one upset in an n-instruction batch,
// 1-(1-p)^n, computed in log space exactly as RunBatch's crash draw does.
func BatchUpsetProbability(n int, p float64) float64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return -math.Expm1(float64(n) * math.Log1p(-p))
}

// PredictProbabilities returns the per-instruction fault and control-path
// violation probabilities this core would read once a mailbox write of
// offsetMV to the core plane settles at the currently commanded ratio —
// without programming anything. It mirrors the real path's arithmetic
// exactly: the offset is quantized through the mailbox encode/decode
// round-trip, the rail target is nominal(ratio) + offset (the retarget
// formula, which the regulator settles to exactly), and the frequency is
// the commanded ratio times the bus clock. After an actual
// WriteOffsetViaMSR + settle, FaultProbability/CrashProbability therefore
// return these same values — unless something intercepted the write (an
// MSR hook, a defense) or re-commanded the operating point, which is
// precisely the discrepancy the bisection search uses as its tamper check.
func (c *Core) PredictProbabilities(class Class, offsetMV int) (pFault, pCrash float64) {
	units := msr.DecodeVoltageOffset(msr.EncodeVoltageOffset(offsetMV, msr.PlaneCore)).OffsetUnits
	v := (c.spec.NominalMV(c.targetRatio) + msr.UnitsToMV(units)) / 1000.0
	f := float64(int(c.targetRatio)*c.spec.BusMHz*1000) / 1e6
	pFault = c.circ.FaultProbability(c.circ.Analyze(c.resolve(string(class)), f, v))
	pCrash = c.circ.FaultProbability(c.circ.Analyze(c.resolve(models.PathControl), f, v))
	return pFault, pCrash
}

// crashCheck samples one control-path traversal; on violation the core
// machine-checks.
func (c *Core) crashCheck() bool {
	p := c.CrashProbability()
	if p > 0 && c.simr.Rand().Float64() < p {
		c.crashed = true
		return true
	}
	return false
}

// faultMask returns a random low-weight XOR mask, modelling the one- or
// two-bit upsets DVFS faults produce in practice (Plundervolt observed
// predominantly single-bit flips in multiply results).
func (c *Core) faultMask() uint64 {
	mask := uint64(1) << uint(c.simr.Rand().Intn(64))
	if c.simr.Rand().Float64() < 0.25 { // occasional double-bit upset
		mask |= uint64(1) << uint(c.simr.Rand().Intn(64))
	}
	return mask
}

// IMul executes a 64x64->64 integer multiply on the core, subject to the
// fault model. It returns the (possibly corrupted) product and whether the
// result was faulted.
func (c *Core) IMul(a, b uint64) (uint64, bool, error) {
	return c.execALUOp(ClassIMul, a*b)
}

// ALUOp executes a simple integer operation with result `exact`.
func (c *Core) ALUOp(exact uint64) (uint64, bool, error) {
	return c.execALUOp(ClassALU, exact)
}

// Exec executes one instruction of the given class whose exact result is
// provided by the caller, applying the fault model.
func (c *Core) Exec(class Class, exact uint64) (uint64, bool, error) {
	return c.execALUOp(class, exact)
}

func (c *Core) execALUOp(class Class, exact uint64) (uint64, bool, error) {
	if c.crashed {
		return 0, false, ErrCrashed
	}
	if c.crashCheck() {
		return 0, false, ErrCrashed
	}
	c.Retired++
	p := c.FaultProbability(class)
	if p > 0 && c.simr.Rand().Float64() < p {
		c.Faulted++
		return exact ^ c.faultMask(), true, nil
	}
	return exact, false, nil
}

// BatchResult summarizes a RunBatch execution.
type BatchResult struct {
	// Executed is the number of instructions retired (≤ requested when the
	// core crashes mid-batch).
	Executed int
	// Faults is the number of corrupted results.
	Faults int
	// Elapsed is the virtual time the batch took at the live frequency.
	Elapsed sim.Duration
	// Crashed reports a control-path violation during the batch.
	Crashed bool
}

// RunBatch executes n instructions of the class as a tight loop at the
// *current* operating point, sampling the number of faults from the
// binomial distribution instead of rolling per instruction. This is what
// makes full-grid characterization sweeps tractable (Algorithm 2 runs one
// million imuls per grid point).
//
// The operating point is sampled once at call time; callers that need to
// observe mid-slew behaviour should issue smaller batches.
func (c *Core) RunBatch(class Class, n int) (BatchResult, error) {
	if n < 0 {
		return BatchResult{}, fmt.Errorf("cpu: negative batch size %d", n)
	}
	if c.crashed {
		return BatchResult{}, ErrCrashed
	}
	cpi, ok := throughputCPI[class]
	if !ok {
		return BatchResult{}, fmt.Errorf("cpu: unknown instruction class %q", class)
	}
	var res BatchResult
	pCrash := c.CrashProbability()
	executed := n
	if pCrash > 0 {
		// P(crash within n) = 1-(1-p)^n; if it happens, the crash point is
		// geometrically distributed.
		pAny := -math.Expm1(float64(n) * math.Log1p(-pCrash))
		if c.simr.Rand().Float64() < pAny {
			res.Crashed = true
			c.crashed = true
			executed = c.simr.Rand().Intn(n + 1)
		}
	}
	res.Executed = executed
	pFault := c.FaultProbability(class)
	res.Faults = binomial(c.simr, executed, pFault)
	c.Retired += uint64(executed)
	c.Faulted += uint64(res.Faults)

	cycles := float64(executed) * cpi
	periodPS := c.PLL.PeriodPS()
	res.Elapsed = sim.Duration(cycles * periodPS)
	if res.Crashed {
		return res, ErrCrashed
	}
	return res, nil
}

// binomial samples Binomial(n, p) from the simulator's RNG. It uses exact
// per-trial sampling for small n, a Poisson approximation for rare events
// and a normal approximation for the bulk regime.
func binomial(s *sim.Simulator, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if s.Rand().Float64() < p {
				k++
			}
		}
		return k
	case float64(n)*p < 30:
		// Poisson(np) via Knuth; lambda < 30 keeps the loop short.
		lambda := float64(n) * p
		l := math.Exp(-lambda)
		k, prod := 0, s.Rand().Float64()
		for prod > l {
			k++
			prod *= s.Rand().Float64()
		}
		if k > n {
			k = n
		}
		return k
	default:
		mean := float64(n) * p
		sd := math.Sqrt(mean * (1 - p))
		k := int(math.Round(mean + sd*s.Rand().NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}

// BatchDuration returns the virtual time a batch of n instructions of the
// class takes at the current frequency, without executing it.
func (c *Core) BatchDuration(class Class, n int) sim.Duration {
	cpi := throughputCPI[class]
	return sim.Duration(float64(n) * cpi * c.PLL.PeriodPS())
}

// Platform is the whole simulated machine.
type Platform struct {
	Sim   *sim.Simulator
	Spec  *models.Spec
	cores []*Core

	// RebootTime is the virtual downtime consumed by Reboot.
	RebootTime sim.Duration
	// Reboots counts crash recoveries, which the characterizer reports.
	Reboots int

	seed int64

	// spans is the causal tracer attached to every core's MSR file; kept
	// here so Reboot can re-attach it after rebuilding the files.
	spans *span.Tracer

	// flight is the flight recorder attached to every observation point;
	// kept here so Reboot can re-attach it like the span tracer.
	flight *flight.Recorder

	// Energy is the platform's deterministic joule integrator. It bills
	// each core's commanded operating point piecewise-constantly over the
	// virtual clock (touched from retarget) and backs the modeled RAPL
	// energy-status MSRs; reboot downtime is billed at zero watts.
	Energy *power.Tracker
}

// DefaultRebootTime approximates a fast reboot cycle.
const DefaultRebootTime = 30 * sim.Second

// NewPlatform builds a machine of the given model. The seed drives all
// stochastic behaviour (jitter realizations, fault coin flips).
func NewPlatform(spec *models.Spec, seed int64) (*Platform, error) {
	if spec == nil {
		return nil, errors.New("cpu: nil spec")
	}
	if spec.Tech.K == 0 {
		return nil, fmt.Errorf("cpu: spec %q not calibrated", spec.Codename)
	}
	p := &Platform{
		Sim:        sim.New(seed),
		Spec:       spec,
		RebootTime: DefaultRebootTime,
		seed:       seed,
	}
	if err := p.buildCores(); err != nil {
		return nil, err
	}
	tr, err := power.NewTracker(power.ModelFor(spec.Codename), spec.Cores, p.Sim.Now, p.commandedPoint)
	if err != nil {
		return nil, err
	}
	p.Energy = tr
	p.wireEnergy()
	return p, nil
}

// commandedPoint adapts the cores to power.PointFn.
func (p *Platform) commandedPoint(core int) (freqGHz, voltV float64) {
	c := p.cores[core]
	return c.CommandedGHz(), c.CommandedVoltV()
}

// wireEnergy attaches the joule integrator to every core: transition
// touches via retarget, and RAPL energy-status reads on the core's MSR
// file. Re-run after Reboot rebuilds the register files.
func (p *Platform) wireEnergy() {
	if p.Energy == nil {
		return
	}
	for _, c := range p.cores {
		c.energy = p.Energy
		c.wireRAPL(p.Energy)
	}
}

// wireRAPL backs the energy-status MSRs with the integrator. The read
// functions are pure — the tracker extrapolates without mutating — so
// polling RAPL never perturbs the deterministic energy totals.
func (c *Core) wireRAPL(tr *power.Tracker) {
	c.MSRs.Descriptor(msr.PkgEnergyStatus).ReadFn = func(*msr.File) (uint64, error) {
		return msr.EncodeEnergyStatus(tr.PackageEnergyJ(), msr.DefaultEnergyUnitJ), nil
	}
	c.MSRs.Descriptor(msr.PP0EnergyStatus).ReadFn = func(*msr.File) (uint64, error) {
		return msr.EncodeEnergyStatus(tr.CoresEnergyJ(), msr.DefaultEnergyUnitJ), nil
	}
}

func (p *Platform) buildCores() error {
	p.cores = p.cores[:0]
	for i := 0; i < p.Spec.Cores; i++ {
		circ, err := p.Spec.Circuit()
		if err != nil {
			return err
		}
		pll, err := clockgen.New(p.Sim, clockgen.Config{
			BusMHz:       p.Spec.BusMHz,
			RelockTime:   clockgen.DefaultRelock,
			MinRatio:     p.Spec.MinRatio,
			MaxRatio:     p.Spec.MaxTurboRatio,
			InitialRatio: p.Spec.BaseRatio,
		})
		if err != nil {
			return err
		}
		rail, err := vr.New(p.Sim, vr.DefaultConfig(p.Spec.NominalMV(p.Spec.BaseRatio)))
		if err != nil {
			return err
		}
		core := &Core{
			index:       i,
			simr:        p.Sim,
			spec:        p.Spec,
			circ:        circ,
			MSRs:        msr.NewFile(i),
			PLL:         pll,
			VR:          rail,
			targetRatio: p.Spec.BaseRatio,
		}
		core.wireMSRs()
		p.cores = append(p.cores, core)
	}
	return nil
}

// wireMSRs connects the MSR file's software-visible registers to the
// hardware blocks.
func (c *Core) wireMSRs() {
	// IA32_PERF_STATUS reflects the live PLL ratio and rail voltage.
	c.MSRs.Descriptor(msr.IA32PerfStatus).ReadFn = func(*msr.File) (uint64, error) {
		return msr.EncodePerfStatus(c.PLL.Ratio(), c.VR.OutputMV()/1000.0), nil
	}
	// IA32_PERF_CTL bits 15:8 select the target ratio. Apply is the
	// hardware commit stage, so software defenses hooked on the register
	// run first.
	c.MSRs.Descriptor(msr.IA32PerfCtl).Apply = func(_ *msr.File, _, v uint64) (uint64, error) {
		ratio := uint8((v >> 8) & 0xFF)
		if err := c.SetRatio(ratio); err != nil {
			return 0, &msr.GPFault{Addr: msr.IA32PerfCtl, Op: "wrmsr", Why: err.Error()}
		}
		return v, nil
	}
	// OC mailbox: decode Algorithm 1 commands. The stored value has the
	// busy bit cleared (hardware consumes the command), so a subsequent
	// rdmsr returns the applied offset — what Algorithm 3 polls.
	c.MSRs.Descriptor(msr.OCMailbox).Apply = func(_ *msr.File, old, v uint64) (uint64, error) {
		d := msr.DecodeVoltageOffset(v)
		if !d.Busy {
			// Command without the run bit is ignored by hardware.
			return old, nil
		}
		if !d.Plane.Valid() {
			return 0, &msr.GPFault{Addr: msr.OCMailbox, Op: "wrmsr", Why: fmt.Sprintf("invalid plane %d", d.Plane)}
		}
		if !d.Write {
			// Read command: respond with the current offset for the plane.
			resp := msr.EncodeVoltageOffsetUnits(c.planeOffsets[d.Plane], d.Plane) &^ (1 << 63)
			return resp, nil
		}
		c.planeOffsets[d.Plane] = d.OffsetUnits
		if d.Plane == msr.PlaneCore {
			c.retarget()
		}
		return v &^ (1 << 63), nil
	}
}

// NumCores returns the core count.
func (p *Platform) NumCores() int { return len(p.cores) }

// Core returns core i.
func (p *Platform) Core(i int) *Core { return p.cores[i] }

// Cores returns all cores.
func (p *Platform) Cores() []*Core { return p.cores }

// Crashed reports whether any core has machine-checked. On real hardware a
// control-path violation takes down the whole machine; we model the crash
// per-core but treat any crashed core as a machine-wide crash.
func (p *Platform) Crashed() bool {
	for _, c := range p.cores {
		if c.crashed {
			return true
		}
	}
	return false
}

// Reboot recovers from a crash: all cores return to the base P-state with
// zero offsets and cleared fault state, and virtual time advances by
// RebootTime. Retired/Faulted counters survive (they model host-side
// experiment bookkeeping, not machine state).
func (p *Platform) Reboot() {
	for _, c := range p.cores {
		// Close the core's energy segment at the crash instant; the
		// downtime below is billed at zero watts until the post-boot touch.
		if p.Energy != nil {
			p.Energy.Blackout(c.index)
		}
		c.crashed = false
		c.planeOffsets = [msr.NumPlanes]int{}
		c.MSRs = msr.NewFile(c.index)
		pll, err := clockgen.New(p.Sim, clockgen.Config{
			BusMHz:       p.Spec.BusMHz,
			RelockTime:   clockgen.DefaultRelock,
			MinRatio:     p.Spec.MinRatio,
			MaxRatio:     p.Spec.MaxTurboRatio,
			InitialRatio: p.Spec.BaseRatio,
		})
		if err != nil {
			panic(fmt.Sprintf("cpu: reboot rebuild: %v", err)) // spec already validated
		}
		c.PLL = pll
		rail, err := vr.New(p.Sim, vr.DefaultConfig(p.Spec.NominalMV(p.Spec.BaseRatio)))
		if err != nil {
			panic(fmt.Sprintf("cpu: reboot rebuild: %v", err))
		}
		c.VR = rail
		c.targetRatio = p.Spec.BaseRatio
		c.pendingUp.Cancel()
		c.pendingUp = sim.Event{}
		c.wireMSRs()
		// The rebuilt register file must keep observing mailbox writes: a
		// crash-reboot cycle mid-experiment would otherwise silently detach
		// the causal trace — and the flight recorder, whose whole job is
		// explaining the crash that caused this very reboot.
		c.MSRs.SetSpanTracer(p.spans)
		c.MSRs.SetFlightRecorder(p.flight)
	}
	// The rebuilt register files need the RAPL read functions back, exactly
	// like the span tracer above.
	p.wireEnergy()
	p.Reboots++
	p.Sim.RunFor(p.RebootTime)
	if p.Energy != nil {
		// Power-on: bill the downtime at zero and reopen each core's
		// segment at the rebuilt base operating point.
		p.Energy.TouchAll()
	}
}

// SetSpanTracer attaches the causal span tracer to every core's MSR file
// (and keeps it attached across reboots). Nil detaches.
func (p *Platform) SetSpanTracer(tr *span.Tracer) {
	p.spans = tr
	for _, c := range p.cores {
		c.MSRs.SetSpanTracer(tr)
	}
}

// SetFlightRecorder attaches the flight recorder to every observation point
// the platform owns — mailbox writes at each core's MSR file, commanded
// operating-point changes at retarget, and energy-segment boundaries at the
// joule integrator — and keeps it attached across reboots. Nil detaches.
func (p *Platform) SetFlightRecorder(rec *flight.Recorder) {
	p.flight = rec
	for _, c := range p.cores {
		c.flight = rec
		c.MSRs.SetFlightRecorder(rec)
	}
	if p.Energy != nil {
		p.Energy.SetFlightRecorder(rec)
	}
}

// MSRFile returns core's MSR file (kernel.Machine interface).
func (p *Platform) MSRFile(core int) *msr.File { return p.cores[core].MSRs }

// FreqTableKHz exposes the model's frequency table (pstate interface).
func (p *Platform) FreqTableKHz() []int { return p.Spec.FreqTableKHz() }

// FreqKHz returns core i's live frequency (pstate interface).
func (p *Platform) FreqKHz(core int) int { return p.cores[core].PLL.FreqKHz() }

// SetRatioViaMSR performs the software P-state change: a wrmsr to
// IA32_PERF_CTL on the target core, as cpupower's userspace governor does.
func (p *Platform) SetRatioViaMSR(core int, ratio uint8) error {
	return p.cores[core].MSRs.Write(msr.IA32PerfCtl, uint64(ratio)<<8)
}

// WriteOffsetViaMSR applies a voltage offset through the OC mailbox on the
// target core — the Plundervolt/Algorithm 1 software path.
func (p *Platform) WriteOffsetViaMSR(core int, offsetMV int, plane msr.Plane) error {
	return p.cores[core].MSRs.Write(msr.OCMailbox, msr.EncodeVoltageOffset(offsetMV, plane))
}

// SettleAll advances virtual time until every core's PLL has relocked and
// every rail has settled — convenient between characterization steps.
func (p *Platform) SettleAll() {
	var latest sim.Time
	for _, c := range p.cores {
		if st := c.VR.SettleTime(); st > latest {
			latest = st
		}
	}
	if latest > p.Sim.Now() {
		p.Sim.RunUntil(latest)
	}
	// PLL relock is bounded; run a little past the worst case.
	p.Sim.RunFor(2 * clockgen.DefaultRelock)
}

// SettleCommanded runs the simulation until the core's commanded operating
// point is fully realized: rail settled and PLL output at the commanded
// ratio. SettleAll alone is not always enough: an up-transition's relock
// event is armed for the rail's settle time as of the P-state command, and
// a subsequent mailbox write can drag the target low enough that the rail
// settles long before that stale deadline — leaving the clock at the old
// ratio past SettleAll's bounded window. Measurement paths that must
// observe the commanded (f, V) point — the characterizer's probes — call
// this instead.
func (p *Platform) SettleCommanded(core int) {
	c := p.Core(core)
	// Each SettleAll advances virtual time by at least the relock margin,
	// and the pending relock deadline is bounded by the rail's full-range
	// slew, so this converges; the cap is a backstop against a commanded
	// point that can never be realized.
	for i := 0; i < 10_000; i++ {
		if c.VR.Settled() && c.PLL.Ratio() == c.targetRatio {
			return
		}
		p.SettleAll()
	}
}

// Seed returns the platform's RNG seed.
func (p *Platform) Seed() int64 { return p.seed }

// PlatformFactory constructs independent Platform instances on demand. The
// sharded characterization engine hands every worker its own platform stack
// (simulator, cores, MSR files, PLLs, regulators) built from a private seed,
// so no simulated hardware is ever shared between goroutines.
type PlatformFactory func(seed int64) (*Platform, error)

// FactoryFor returns the canonical PlatformFactory for a spec: a fresh
// NewPlatform per call. Spec is treated as read-only by the platform, so one
// spec can safely back many concurrent factories.
func FactoryFor(spec *models.Spec) PlatformFactory {
	return func(seed int64) (*Platform, error) { return NewPlatform(spec, seed) }
}
