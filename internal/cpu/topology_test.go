package cpu

import (
	"testing"

	"plugvolt/internal/models"
	"plugvolt/internal/msr"
)

func topoFor(t *testing.T, model string) (*Platform, *Topology) {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := p.Topology()
	if err != nil {
		t.Fatal(err)
	}
	return p, topo
}

func TestTopologyShapes(t *testing.T) {
	_, sky := topoFor(t, "skylake") // 4C/4T
	if sky.SMT() != 1 || sky.NumLogical() != 4 || sky.NumPhysical() != 4 {
		t.Fatalf("skylake topology %d/%d/%d", sky.SMT(), sky.NumLogical(), sky.NumPhysical())
	}
	_, kbl := topoFor(t, "kabylaker") // 4C/8T
	if kbl.SMT() != 2 || kbl.NumLogical() != 8 {
		t.Fatalf("kabylaker topology %d/%d", kbl.SMT(), kbl.NumLogical())
	}
}

func TestSiblingMapping(t *testing.T) {
	_, topo := topoFor(t, "cometlake") // 4C/8T
	// Linux convention: logical l and l+4 share physical l.
	for l := 0; l < 4; l++ {
		phys, err := topo.PhysicalOf(l)
		if err != nil || phys != l {
			t.Fatalf("PhysicalOf(%d) = %d, %v", l, phys, err)
		}
		phys2, err := topo.PhysicalOf(l + 4)
		if err != nil || phys2 != l {
			t.Fatalf("PhysicalOf(%d) = %d, %v", l+4, phys2, err)
		}
		sibs, err := topo.SiblingsOf(l)
		if err != nil || len(sibs) != 2 || sibs[0] != l || sibs[1] != l+4 {
			t.Fatalf("SiblingsOf(%d) = %v, %v", l, sibs, err)
		}
	}
	co, err := topo.CoResident(1, 5)
	if err != nil || !co {
		t.Fatalf("CoResident(1,5) = %v, %v", co, err)
	}
	co, err = topo.CoResident(1, 2)
	if err != nil || co {
		t.Fatalf("CoResident(1,2) = %v, %v", co, err)
	}
	if _, err := topo.PhysicalOf(8); err == nil {
		t.Fatal("bogus logical accepted")
	}
	if _, err := topo.SiblingsOf(-1); err == nil {
		t.Fatal("negative logical accepted")
	}
	if _, err := topo.CoResident(0, 99); err == nil {
		t.Fatal("bogus pair accepted")
	}
}

func TestLogicalCoreSharesPhysicalState(t *testing.T) {
	p, _ := topoFor(t, "kabylaker")
	c1, err := p.LogicalCore(1)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := p.LogicalCore(5)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c5 {
		t.Fatal("siblings resolve to different physical cores")
	}
	c2, err := p.LogicalCore(2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("distinct physical cores aliased")
	}
	// An undervolt applied via one sibling's physical core is visible to
	// the other — the shared-domain property co-resident attacks use.
	if err := p.WriteOffsetViaMSR(c1.Index(), -60, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if c5.OffsetMV() != -60 {
		t.Fatalf("sibling does not see shared offset: %d", c5.OffsetMV())
	}
	if _, err := p.LogicalCore(99); err == nil {
		t.Fatal("bogus logical accepted")
	}
}
