package cpu

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func newSkyLake(t *testing.T, seed int64) *Platform {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(nil, 1); err == nil {
		t.Fatal("nil spec accepted")
	}
	raw := &models.Spec{Codename: "raw"}
	if _, err := NewPlatform(raw, 1); err == nil {
		t.Fatal("uncalibrated spec accepted")
	}
}

func TestPlatformBootState(t *testing.T) {
	p := newSkyLake(t, 1)
	if p.NumCores() != 4 {
		t.Fatalf("cores = %d", p.NumCores())
	}
	for i, c := range p.Cores() {
		if c.Index() != i {
			t.Errorf("core %d index %d", i, c.Index())
		}
		if c.Ratio() != p.Spec.BaseRatio {
			t.Errorf("core %d boot ratio %d", i, c.Ratio())
		}
		wantV := p.Spec.NominalMV(p.Spec.BaseRatio) / 1000
		if math.Abs(c.VoltageV()-wantV) > 1e-9 {
			t.Errorf("core %d boot voltage %v, want %v", i, c.VoltageV(), wantV)
		}
		if c.Crashed() {
			t.Errorf("core %d crashed at boot", i)
		}
		if c.OffsetMV() != 0 {
			t.Errorf("core %d boot offset %d", i, c.OffsetMV())
		}
	}
	if p.Crashed() {
		t.Fatal("platform crashed at boot")
	}
}

func TestPerfStatusReflectsLiveState(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	v, err := c.MSRs.Read(msr.IA32PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	ratio, volt := msr.DecodePerfStatus(v)
	if ratio != p.Spec.BaseRatio {
		t.Fatalf("PERF_STATUS ratio %d", ratio)
	}
	wantV := p.Spec.NominalMV(p.Spec.BaseRatio) / 1000
	if math.Abs(volt-wantV) > msr.VoltageUnit {
		t.Fatalf("PERF_STATUS voltage %v want %v", volt, wantV)
	}
}

func TestPerfCtlChangesFrequencyAndVoltage(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	if err := p.SetRatioViaMSR(0, 10); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if c.Ratio() != 10 {
		t.Fatalf("ratio after PERF_CTL write: %d", c.Ratio())
	}
	wantV := p.Spec.NominalMV(10) / 1000
	if math.Abs(c.VoltageV()-wantV) > 1e-9 {
		t.Fatalf("voltage after P-state change %v, want %v", c.VoltageV(), wantV)
	}
}

func TestPerfCtlOutOfRangeFaults(t *testing.T) {
	p := newSkyLake(t, 1)
	if err := p.SetRatioViaMSR(0, 99); err == nil {
		t.Fatal("out-of-range ratio accepted")
	}
	var gp *msr.GPFault
	if err := p.SetRatioViaMSR(0, 2); !errors.As(err, &gp) {
		t.Fatalf("error type %T", err)
	}
}

func TestOCMailboxAppliesOffset(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -100, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := c.OffsetMV(); got != -100 {
		t.Fatalf("applied offset %d", got)
	}
	wantV := (p.Spec.NominalMV(p.Spec.BaseRatio) - 100) / 1000
	if math.Abs(c.VoltageV()-wantV) > 1.5e-3 { // mailbox quantizes to ~1 mV
		t.Fatalf("undervolted rail %v, want ~%v", c.VoltageV(), wantV)
	}
	// Stored mailbox value has busy bit cleared, offset intact.
	raw := c.MSRs.Peek(msr.OCMailbox)
	if raw&(1<<63) != 0 {
		t.Fatal("busy bit not cleared after command")
	}
	if d := msr.DecodeVoltageOffset(raw); d.OffsetMV != -100 {
		t.Fatalf("mailbox readback offset %d", d.OffsetMV)
	}
}

func TestOCMailboxNonCorePlaneDoesNotMoveRail(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	before := c.VoltageV()
	if err := p.WriteOffsetViaMSR(0, -150, msr.PlaneGPU); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if c.VoltageV() != before {
		t.Fatal("GPU-plane offset moved the core rail")
	}
	if got := c.PlaneOffsetMV(msr.PlaneGPU); got < -151 || got > -148 {
		// Algorithm 1's truncating mV->units conversion loses <2 mV.
		t.Fatalf("GPU plane offset %d", got)
	}
	if c.PlaneOffsetMV(msr.Plane(7)) != 0 {
		t.Fatal("invalid plane lookup nonzero")
	}
}

func TestOCMailboxWithoutBusyBitIgnored(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	cmd := msr.EncodeVoltageOffset(-100, msr.PlaneCore) &^ (1 << 63)
	if err := c.MSRs.Write(msr.OCMailbox, cmd); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if c.OffsetMV() != 0 {
		t.Fatal("command without busy bit applied")
	}
}

func TestOCMailboxInvalidPlaneFaults(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	cmd := msr.EncodeVoltageOffset(-10, msr.Plane(6))
	if err := c.MSRs.Write(msr.OCMailbox, cmd); err == nil {
		t.Fatal("invalid plane accepted")
	}
}

func TestOCMailboxReadCommand(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -80, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	// Issue a read command (bits 39:32 = 0x10) for the core plane.
	readCmd := uint64(1)<<63 | uint64(0x10)<<32
	if err := c.MSRs.Write(msr.OCMailbox, readCmd); err != nil {
		t.Fatal(err)
	}
	v, err := c.MSRs.Read(msr.OCMailbox)
	if err != nil {
		t.Fatal(err)
	}
	if d := msr.DecodeVoltageOffset(v); d.OffsetMV < -81 || d.OffsetMV > -78 {
		// One pass of Algorithm 1 quantization: applied offset is -79 mV.
		t.Fatalf("read command returned offset %d, want ~-80", d.OffsetMV)
	}
}

func TestNoFaultsAtNominal(t *testing.T) {
	p := newSkyLake(t, 42)
	c := p.Core(0)
	res, err := c.RunBatch(ClassIMul, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 {
		t.Fatalf("%d faults at stock settings", res.Faults)
	}
	if res.Crashed {
		t.Fatal("crash at stock settings")
	}
	if res.Executed != 1_000_000 {
		t.Fatalf("executed %d", res.Executed)
	}
	// 1M imuls at 1 CPI, 3.2 GHz -> 312.5 us.
	want := sim.Duration(1e6 * c.PLL.PeriodPS())
	if res.Elapsed != want {
		t.Fatalf("elapsed %v, want %v", res.Elapsed, want)
	}
}

func TestDeepUndervoltFaultsIMul(t *testing.T) {
	p := newSkyLake(t, 42)
	c := p.Core(0)
	// Push well past onset but short of the control-path crash boundary:
	// find an offset where imul slack < 0 but control slack is comfortably
	// positive.
	offset := findFaultWindow(t, p)
	if err := p.WriteOffsetViaMSR(0, offset, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	res, err := c.RunBatch(ClassIMul, 1_000_000)
	if err != nil {
		t.Fatalf("unexpected crash at offset %d: %v", offset, err)
	}
	if res.Faults == 0 {
		t.Fatalf("no faults at offset %d (imul slack %.1f ps)", offset, c.Slack(ClassIMul))
	}
}

// findFaultWindow locates a negative offset where the imul path faults
// at appreciable probability but the control path is still ~safe.
func findFaultWindow(t *testing.T, p *Platform) int {
	t.Helper()
	c := p.Core(0)
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(ClassIMul) > 1e-4 && c.CrashProbability() < 1e-9 {
			// reset before handing back
			if err := p.WriteOffsetViaMSR(0, off, msr.PlaneCore); err != nil {
				t.Fatal(err)
			}
			return off
		}
		if c.CrashProbability() >= 1e-9 {
			break
		}
	}
	t.Fatal("no fault window found — model miscalibrated")
	return 0
}

func TestCatastrophicUndervoltCrashes(t *testing.T) {
	p := newSkyLake(t, 7)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -500, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	_, err := c.RunBatch(ClassIMul, 1_000_000)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	if !c.Crashed() || !p.Crashed() {
		t.Fatal("crash flags not set")
	}
	// Execution on a crashed core keeps failing.
	if _, _, err := c.IMul(3, 5); !errors.Is(err, ErrCrashed) {
		t.Fatal("crashed core still executes")
	}
	if _, err := c.RunBatch(ClassALU, 10); !errors.Is(err, ErrCrashed) {
		t.Fatal("crashed core still batch-executes")
	}
}

func TestRebootRecovers(t *testing.T) {
	p := newSkyLake(t, 7)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -500, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	_, _ = c.RunBatch(ClassIMul, 1_000_000)
	if !p.Crashed() {
		t.Fatal("precondition: not crashed")
	}
	before := p.Sim.Now()
	p.Reboot()
	if p.Crashed() {
		t.Fatal("still crashed after reboot")
	}
	if p.Reboots != 1 {
		t.Fatalf("Reboots = %d", p.Reboots)
	}
	if p.Sim.Now()-before != p.RebootTime {
		t.Fatalf("reboot consumed %v", p.Sim.Now()-before)
	}
	c = p.Core(0)
	if c.OffsetMV() != 0 || c.Ratio() != p.Spec.BaseRatio {
		t.Fatal("reboot did not restore stock operating point")
	}
	res, err := c.RunBatch(ClassIMul, 100_000)
	if err != nil || res.Faults != 0 {
		t.Fatalf("post-reboot execution: %v, faults=%d", err, res.Faults)
	}
}

func TestIMulCorrectnessAndFaultMask(t *testing.T) {
	p := newSkyLake(t, 3)
	c := p.Core(0)
	for i := uint64(1); i < 1000; i++ {
		got, faulted, err := c.IMul(i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if faulted {
			t.Fatal("fault at stock settings")
		}
		if got != i*(i+1) {
			t.Fatalf("imul(%d,%d) = %d", i, i+1, got)
		}
	}
}

func TestFaultedResultDiffersByLowWeightMask(t *testing.T) {
	p := newSkyLake(t, 11)
	c := p.Core(0)
	off := findFaultWindow(t, p)
	_ = off
	p.SettleAll()
	sawFault := false
	for i := 0; i < 200_000 && !sawFault; i++ {
		a, b := uint64(i)*0x9E3779B97F4A7C15+1, uint64(i)^0xDEADBEEF
		got, faulted, err := c.IMul(a, b)
		if err != nil {
			t.Fatalf("crash inside fault window: %v", err)
		}
		if faulted {
			sawFault = true
			diff := got ^ (a * b)
			if diff == 0 {
				t.Fatal("faulted flag set but result exact")
			}
			if popcount(diff) > 2 {
				t.Fatalf("fault mask weight %d > 2", popcount(diff))
			}
		}
	}
	if !sawFault {
		t.Fatal("no faults observed in window")
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestBatchNegativeSize(t *testing.T) {
	p := newSkyLake(t, 1)
	if _, err := p.Core(0).RunBatch(ClassIMul, -1); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestBatchUnknownClass(t *testing.T) {
	p := newSkyLake(t, 1)
	if _, err := p.Core(0).RunBatch(Class("bogus"), 10); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestBatchDuration(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	d := c.BatchDuration(ClassALU, 1000)
	want := sim.Duration(1000 * 0.25 * c.PLL.PeriodPS())
	if d != want {
		t.Fatalf("BatchDuration = %v want %v", d, want)
	}
}

func TestFaultProbabilityOrderingAcrossClasses(t *testing.T) {
	// Deeper paths must be at least as likely to fault: imul >= aes >= fma
	// >= load >= alu, matching the paper's observation that imul is the
	// most faultable instruction.
	p := newSkyLake(t, 1)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -200, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	classes := []Class{ClassIMul, ClassAES, ClassFMA, ClassLoad, ClassALU}
	prev := math.Inf(1)
	for _, cl := range classes {
		pr := c.FaultProbability(cl)
		if pr > prev+1e-15 {
			t.Fatalf("class %s more faultable than shallower predecessor", cl)
		}
		prev = pr
	}
}

func TestBinomialSampler(t *testing.T) {
	s := sim.New(5)
	if binomial(s, 0, 0.5) != 0 {
		t.Fatal("binomial(0, p) != 0")
	}
	if binomial(s, 100, 0) != 0 {
		t.Fatal("binomial(n, 0) != 0")
	}
	if binomial(s, 100, 1) != 100 {
		t.Fatal("binomial(n, 1) != n")
	}
	// Small-n exact path.
	total := 0
	for i := 0; i < 2000; i++ {
		total += binomial(s, 10, 0.3)
	}
	mean := float64(total) / 2000
	if math.Abs(mean-3.0) > 0.2 {
		t.Fatalf("small-n mean %v, want ~3", mean)
	}
	// Poisson path: n=1e6, p=1e-5 -> lambda 10.
	total = 0
	for i := 0; i < 500; i++ {
		total += binomial(s, 1_000_000, 1e-5)
	}
	mean = float64(total) / 500
	if math.Abs(mean-10) > 1.0 {
		t.Fatalf("poisson-regime mean %v, want ~10", mean)
	}
	// Normal path: n=1e6, p=0.2 -> mean 2e5, sd ~400.
	k := binomial(s, 1_000_000, 0.2)
	if k < 190_000 || k > 210_000 {
		t.Fatalf("normal-regime draw %d implausible", k)
	}
	// Bounds respected in all regimes.
	for i := 0; i < 1000; i++ {
		if k := binomial(s, 50, 0.99); k < 0 || k > 50 {
			t.Fatalf("binomial out of range: %d", k)
		}
	}
}

func TestDeterministicPlatformReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		spec, _ := models.SkyLake()
		p, _ := NewPlatform(spec, 99)
		c := p.Core(0)
		_ = p.WriteOffsetViaMSR(0, -220, msr.PlaneCore)
		p.SettleAll()
		res, _ := c.RunBatch(ClassIMul, 500_000)
		return uint64(res.Faults), c.Retired
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", f1, r1, f2, r2)
	}
}

func TestSettleAllWaitsForSlew(t *testing.T) {
	p := newSkyLake(t, 1)
	c := p.Core(0)
	if err := p.WriteOffsetViaMSR(0, -250, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	// Immediately after the write, the rail hasn't moved (VR latency).
	if c.OffsetMV() != -250 {
		t.Fatal("offset not registered")
	}
	nominal := p.Spec.NominalMV(p.Spec.BaseRatio) / 1000
	if math.Abs(c.VoltageV()-nominal) > 1e-9 {
		t.Fatal("rail moved instantly — VR latency not modelled")
	}
	p.SettleAll()
	if math.Abs(c.VoltageV()-(nominal-0.250)) > 2e-3 {
		t.Fatalf("rail after settle %v", c.VoltageV())
	}
}

func BenchmarkRunBatchMillionIMuls(b *testing.B) {
	spec, _ := models.SkyLake()
	p, _ := NewPlatform(spec, 1)
	c := p.Core(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.RunBatch(ClassIMul, 1_000_000)
	}
}

func BenchmarkIMulSingle(b *testing.B) {
	spec, _ := models.SkyLake()
	p, _ := NewPlatform(spec, 1)
	c := p.Core(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = c.IMul(uint64(i), uint64(i)+3)
	}
}

func TestUpTransitionSequencesVoltageBeforeFrequency(t *testing.T) {
	// The PCU raises the rail before relocking the PLL, so the transition
	// itself never creates an Eq. 1 violation (the CLKSCREW ordering bug).
	p := newSkyLake(t, 8)
	c := p.Core(0)
	if err := p.SetRatioViaMSR(0, 10); err != nil { // park low first
		t.Fatal(err)
	}
	p.SettleAll()
	lowV := c.VoltageV()
	if err := p.SetRatioViaMSR(0, 36); err != nil { // jump to turbo
		t.Fatal(err)
	}
	// Walk the transition: at every instant the worst-case path must stay
	// safe (the clock may not outrun the rail).
	sawRampWithOldClock := false
	for i := 0; i < 4000; i++ {
		p.Sim.RunFor(sim.Microsecond)
		if c.CrashProbability() > 1e-12 || c.FaultProbability(ClassIMul) > 1e-12 {
			t.Fatalf("transition transiently unsafe at %v (f=%.1f GHz V=%.3f V)",
				p.Sim.Now(), c.FreqGHz(), c.VoltageV())
		}
		if c.Ratio() == 10 && c.VoltageV() > lowV+0.05 {
			sawRampWithOldClock = true
		}
		if c.Ratio() == 36 {
			break
		}
	}
	if !sawRampWithOldClock {
		t.Fatal("voltage did not lead the frequency on the up-transition")
	}
	p.SettleAll()
	if c.Ratio() != 36 {
		t.Fatalf("transition never completed: ratio %d", c.Ratio())
	}
}

func TestDownTransitionSafeAndPreemption(t *testing.T) {
	p := newSkyLake(t, 9)
	c := p.Core(0)
	// Down-transition: clock first, voltage follows — never unsafe either.
	if err := p.SetRatioViaMSR(0, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		p.Sim.RunFor(sim.Microsecond)
		if c.FaultProbability(ClassIMul) > 1e-12 {
			t.Fatalf("down-transition unsafe at %v", p.Sim.Now())
		}
	}
	p.SettleAll()
	if c.Ratio() != 8 {
		t.Fatalf("ratio %d", c.Ratio())
	}
	// Pre-emption: start an up-transition, immediately command down; the
	// deferred relock must not fire later and yank the clock up.
	if err := p.SetRatioViaMSR(0, 30); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(5 * sim.Microsecond) // mid voltage ramp
	if err := p.SetRatioViaMSR(0, 12); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	p.Sim.RunFor(2 * sim.Millisecond)
	if c.Ratio() != 12 {
		t.Fatalf("pre-empted transition resolved to ratio %d, want 12", c.Ratio())
	}
}

// Fuzz-style property: arbitrary 64-bit writes to the OC mailbox either
// fault cleanly or leave the core in a decodable, consistent state — no
// panics, no invalid planes, and the platform keeps executing.
func TestQuickMailboxFuzz(t *testing.T) {
	p := newSkyLake(t, 13)
	c := p.Core(0)
	f := func(raw uint64) bool {
		err := c.MSRs.Write(msr.OCMailbox, raw)
		if err != nil {
			// Rejected writes must not change the register.
			return true
		}
		d := msr.DecodeVoltageOffset(c.MSRs.Peek(msr.OCMailbox))
		if d.Plane >= msr.NumPlanes && d.Write && d.Busy {
			return false // applied an invalid plane
		}
		// The platform stays usable: an imul on a (possibly undervolted
		// but voltage-lagged) core still executes or crashes cleanly.
		_, _, execErr := c.IMul(3, 7)
		if execErr != nil {
			p.Reboot()
			c = p.Core(0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

// Property: PERF_CTL fuzzing — arbitrary writes either #GP (ratio out of
// range) or move the PLL to a table ratio.
func TestQuickPerfCtlFuzz(t *testing.T) {
	p := newSkyLake(t, 15)
	c := p.Core(1)
	minR, maxR := c.PLL.Range()
	f := func(raw uint64) bool {
		err := c.MSRs.Write(msr.IA32PerfCtl, raw)
		ratio := uint8((raw >> 8) & 0xFF)
		inRange := ratio >= minR && ratio <= maxR
		if inRange != (err == nil) {
			return false
		}
		p.SettleAll()
		r := c.Ratio()
		return r >= minR && r <= maxR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(16))}); err != nil {
		t.Fatal(err)
	}
}
