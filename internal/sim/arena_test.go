package sim

import (
	"math/rand"
	"testing"
)

// TestScheduleFireZeroAlloc asserts the schedule→fire hot path is
// allocation-free in steady state (slots and heap capacity recycled).
func TestScheduleFireZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the arena and heap capacity.
	for i := 0; i < 64; i++ {
		s.Schedule(Duration(i)*Nanosecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(Nanosecond, fn)
		s.RunFor(2 * Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocated %.1f per op, want 0", allocs)
	}
}

// TestScheduleCancelZeroAlloc asserts eager cancellation recycles the slot
// without allocating.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(Duration(i)*Nanosecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		ev := s.Schedule(Microsecond, fn)
		ev.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocated %.1f per op, want 0", allocs)
	}
	if s.Pending() != 0 {
		t.Fatalf("cancelled events left %d pending", s.Pending())
	}
}

// TestTickerReArmZeroAlloc asserts a ticker re-arms without allocating a
// fresh closure per tick.
func TestTickerReArmZeroAlloc(t *testing.T) {
	s := New(1)
	ticks := 0
	tk := s.Every(Microsecond, func() { ticks++ })
	s.RunFor(10 * Microsecond) // warm-up: arena, heap, closure all built
	allocs := testing.AllocsPerRun(100, func() {
		s.RunFor(10 * Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("ticker re-arm allocated %.1f per 10 ticks, want 0", allocs)
	}
	if ticks < 1000 {
		t.Fatalf("ticker only fired %d times", ticks)
	}
	tk.Stop()
}

// TestPendingCountsLiveEvents verifies Pending excludes cancelled events
// (the old implementation counted corpses until they were popped).
func TestPendingCountsLiveEvents(t *testing.T) {
	s := New(1)
	fn := func() {}
	a := s.Schedule(10*Nanosecond, fn)
	s.Schedule(20*Nanosecond, fn)
	s.Schedule(30*Nanosecond, fn)
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	a.Cancel()
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", got)
	}
	if !a.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
	a.Cancel() // double-cancel is a no-op
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", got)
	}
}

// TestCancelledEventsDoNotGrowQueue verifies a schedule/cancel churn leaves
// no residue in the queue (the unbounded-growth bug this PR fixes).
func TestCancelledEventsDoNotGrowQueue(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 100_000; i++ {
		ev := s.Schedule(Duration(i+1)*Microsecond, fn)
		ev.Cancel()
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending = %d after cancel churn, want 0", got)
	}
	if len(s.heap) != 0 {
		t.Fatalf("heap holds %d entries after cancel churn, want 0", len(s.heap))
	}
	if len(s.slots) > 4 {
		t.Fatalf("arena grew to %d slots under schedule/cancel churn", len(s.slots))
	}
}

// TestStaleHandleAfterRecycle verifies that cancelling a fired event whose
// slot was recycled by a newer event does not disturb the newer event.
func TestStaleHandleAfterRecycle(t *testing.T) {
	s := New(1)
	firstFired, secondFired := false, false
	ev1 := s.Schedule(10*Nanosecond, func() { firstFired = true })
	s.RunFor(15 * Nanosecond) // ev1 fires; its slot returns to the free list
	ev2 := s.Schedule(10*Nanosecond, func() { secondFired = true })
	ev1.Cancel() // stale handle: same slot, older generation
	s.Run()
	if !firstFired || !secondFired {
		t.Fatalf("fired = (%v, %v), want both", firstFired, secondFired)
	}
	if !ev1.Cancelled() {
		t.Fatal("stale handle should still report Cancelled")
	}
	_ = ev2
}

// refSim is a brute-force reference scheduler: events kept in a plain
// slice, the next one found by linear minimum over (time, seq). It encodes
// the semantics the arena heap must preserve.
type refSim struct {
	now Time
	seq uint64
	q   []*refEvent
}

type refEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
}

func (r *refSim) schedule(delay Duration, id int) *refEvent {
	if delay < 0 {
		delay = 0
	}
	r.seq++
	e := &refEvent{at: r.now + delay, seq: r.seq, id: id}
	r.q = append(r.q, e)
	return e
}

func (r *refSim) runUntil(t Time, fired *[]int) {
	for {
		best := -1
		for i, e := range r.q {
			if e.cancelled || e.at > t {
				continue
			}
			if best < 0 || e.at < r.q[best].at ||
				(e.at == r.q[best].at && e.seq < r.q[best].seq) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := r.q[best]
		r.q = append(r.q[:best], r.q[best+1:]...)
		r.now = e.at
		*fired = append(*fired, e.id)
	}
	if t > r.now {
		r.now = t
	}
	// Drop cancelled corpses so pending counts compare.
	live := r.q[:0]
	for _, e := range r.q {
		if !e.cancelled {
			live = append(live, e)
		}
	}
	r.q = live
}

// TestArenaMatchesReferenceScheduler drives the arena simulator and the
// reference scheduler with an identical randomized schedule/cancel/run
// workload and requires the same firing order at every step.
func TestArenaMatchesReferenceScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New(7)
	ref := &refSim{}

	var gotOrder, wantOrder []int
	var handles []Event
	var refHandles []*refEvent
	nextID := 0

	for round := 0; round < 300; round++ {
		// Schedule a burst, including duplicate timestamps to exercise FIFO.
		for n := rng.Intn(8); n > 0; n-- {
			id := nextID
			nextID++
			delay := Duration(rng.Intn(50)-5) * Nanosecond // negatives clamp
			handles = append(handles, s.Schedule(delay, func() {
				gotOrder = append(gotOrder, id)
			}))
			refHandles = append(refHandles, ref.schedule(delay, id))
		}
		// Cancel a few arbitrary outstanding (or already-fired) handles.
		for n := rng.Intn(3); n > 0 && len(handles) > 0; n-- {
			i := rng.Intn(len(handles))
			handles[i].Cancel()
			refHandles[i].cancelled = true
		}
		window := Duration(rng.Intn(40)) * Nanosecond
		s.RunFor(window)
		ref.runUntil(ref.now+window, &wantOrder)

		if s.Now() != ref.now {
			t.Fatalf("round %d: clock %v, reference %v", round, s.Now(), ref.now)
		}
		if s.Pending() != len(ref.q) {
			t.Fatalf("round %d: pending %d, reference %d", round, s.Pending(), len(ref.q))
		}
	}
	s.Run()
	ref.runUntil(maxTime, &wantOrder)

	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("fired %d events, reference fired %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("firing order diverges at %d: got id %d, want id %d", i, gotOrder[i], wantOrder[i])
		}
	}
}
