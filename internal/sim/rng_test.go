package sim

import (
	"math"
	"math/rand"
	"testing"
)

// rngTestSeeds exercises boundary seeds plus RowSeed-style derivatives
// (experiment seed ^ frequency kHz), the cache's real working set.
var rngTestSeeds = []int64{
	0, 1, -1, 42, 12345, -987654321,
	math.MaxInt64, math.MinInt64,
	42 ^ 800_000, 42 ^ 3_600_000, 7 ^ 1_800_000,
}

// TestCachedSourceMatchesMathRand requires the simulator's random stream to
// be bit-for-bit rand.New(rand.NewSource(seed))'s, across the 607-output
// replay boundary where the cached source switches from buffer replay to
// stepping the reconstructed generator.
func TestCachedSourceMatchesMathRand(t *testing.T) {
	for _, seed := range rngTestSeeds {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed).Rand()
		// 2000 draws cross the lfibLen=607 boundary several times over, and
		// the mixed draw types exercise every rand.Rand derivation path the
		// simulation uses (jitter, fault coins, fault masks).
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				if g, w := got.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 1:
				g, w := got.Float64(), ref.Float64()
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 2:
				g, w := got.NormFloat64(), ref.NormFloat64()
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 3:
				if g, w := got.Intn(64), ref.Intn(64); g != w {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestCachedSourceRepeatSeed verifies the cache-hit path (second simulator
// with a seed) replays the identical stream the cache-fill path produced.
func TestCachedSourceRepeatSeed(t *testing.T) {
	const seed = 4242
	first := New(seed).Rand()
	var want [1000]int64
	for i := range want {
		want[i] = first.Int63()
	}
	second := New(seed).Rand()
	for i := range want {
		if g := second.Int63(); g != want[i] {
			t.Fatalf("draw %d: cache-hit stream %d != first-use stream %d", i, g, want[i])
		}
	}
}

// TestCachedSourceSeedReset verifies Seed rewinds the source to the start
// of the (possibly different) seed's stream.
func TestCachedSourceSeedReset(t *testing.T) {
	src := newCachedSource(11)
	for i := 0; i < 700; i++ { // past the replay boundary
		src.Int63()
	}
	src.Seed(13)
	ref := rand.NewSource(13)
	for i := 0; i < 700; i++ {
		if g, w := src.Int63(), ref.Int63(); g != w {
			t.Fatalf("draw %d after Seed: %d != %d", i, g, w)
		}
	}
}

// TestStateReconstruction directly checks the permutation argument: the
// ring rebuilt from the first 607 outputs must continue the genuine stream
// far beyond the built-in verification depth.
func TestStateReconstruction(t *testing.T) {
	ref := rand.NewSource(777).(rand.Source64)
	st := &seedState{}
	for i := range st.out {
		st.out[i] = ref.Uint64()
	}
	clone := &cachedSource{st: st, pos: lfibLen}
	for i := 0; i < 10*lfibLen; i++ {
		if g, w := clone.Uint64(), ref.Uint64(); g != w {
			t.Fatalf("reconstructed stream diverges at draw %d: %d != %d", i, g, w)
		}
	}
}
