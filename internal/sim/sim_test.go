package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	s.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	s.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30*Nanosecond {
		t.Fatalf("clock = %v, want 30ns", s.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*Microsecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-5*Nanosecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v on clamped event", s.Now())
	}
}

func TestAtInThePastClamps(t *testing.T) {
	s := New(1)
	s.Schedule(100*Nanosecond, func() {
		s.At(10*Nanosecond, func() {
			if s.Now() != 100*Nanosecond {
				t.Fatalf("past event fired at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(10*Nanosecond, func() { fired = true })
	ev.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	late := s.Schedule(20*Nanosecond, func() { fired = true })
	s.Schedule(10*Nanosecond, func() { late.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	s.Schedule(1*Millisecond, func() {})
	s.RunUntil(500 * Microsecond)
	if s.Now() != 500*Microsecond {
		t.Fatalf("RunUntil left clock at %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("future event lost: pending=%d", s.Pending())
	}
	s.RunUntil(2 * Millisecond)
	if s.Fired() != 1 {
		t.Fatalf("fired=%d, want 1", s.Fired())
	}
}

func TestRunForRelative(t *testing.T) {
	s := New(1)
	s.RunFor(3 * Second)
	if s.Now() != 3*Second {
		t.Fatalf("RunFor: clock=%v", s.Now())
	}
	s.RunFor(2 * Second)
	if s.Now() != 5*Second {
		t.Fatalf("RunFor twice: clock=%v", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 100; i++ {
		s.Schedule(Duration(i)*Nanosecond, func() {
			n++
			if n == 5 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 5 {
		t.Fatalf("Stop did not halt run: fired %d", n)
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := New(1)
	var at []Time
	tk := s.Every(1*Millisecond, func() { at = append(at, s.Now()) })
	s.RunUntil(5500 * Microsecond)
	tk.Stop()
	s.RunUntil(10 * Millisecond)
	if len(at) != 5 {
		t.Fatalf("ticks=%d, want 5 (times %v)", len(at), at)
	}
	for i, ti := range at {
		want := Time(i+1) * Millisecond
		if ti != want {
			t.Fatalf("tick %d at %v, want %v", i, ti, want)
		}
	}
	if tk.Fires != 5 {
		t.Fatalf("Fires=%d, want 5", tk.Fires)
	}
	if tk.LastFire() != 5*Millisecond {
		t.Fatalf("LastFire=%v", tk.LastFire())
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(1*Microsecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Fatalf("ticker ran %d times after Stop inside callback", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var draws []int64
		for i := 0; i < 50; i++ {
			d := Duration(1+i%7) * Microsecond
			s.Schedule(d*Duration(i+1), func() { draws = append(draws, s.Rand().Int63()) })
		}
		s.Run()
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at draw %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// Property: for any batch of delays, events fire in nondecreasing time order
// and the final clock equals the max delay.
func TestQuickEventOrderInvariant(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := New(7)
		var fireTimes []Time
		var max Time
		for _, r := range raw {
			d := Duration(r % 1_000_000_000) // up to 1ms
			if d > max {
				max = d
			}
			s.Schedule(d, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return s.Now() == max && len(fireTimes) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{250 * Microsecond, "250us"},
		{7 * Millisecond, "7ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds=%v", got)
	}
}
