package sim

import (
	"math/rand"
	"sync"
)

// math/rand's default source is an additive lagged-Fibonacci generator over
// a 607-word ring with tap offset 273. Seeding it is expensive (it steps an
// LCG hundreds of times to fill the ring), and the sharded characterizer
// builds a freshly seeded simulator per frequency row, so seeding shows up
// as ~20% of sweep CPU. The generator has a property that lets us cache the
// seeding work without touching unexported state: stepping it is
//
//	tap--; feed--            // mod 607, starting at tap=0, feed=334
//	x := vec[feed] + vec[tap]
//	vec[feed] = x            // x is also the output
//
// so after exactly 607 draws the tap/feed cursors are back at their initial
// positions and every ring slot has been overwritten exactly once — with the
// draw outputs themselves, at known positions. The first 607 outputs of a
// seed therefore ARE the generator state: a clone can replay them verbatim
// and then reconstruct the ring by permutation and continue the trivial
// additive recurrence. cachedSource implements exactly that, reproducing
// rand.NewSource(seed)'s stream bit-for-bit at a fraction of the
// construction cost for repeated seeds.
const (
	lfibLen  = 607 // ring length of math/rand's lagged-Fibonacci source
	lfibFeed = 334 // initial feed cursor (lfibLen - tap offset 273)
	// verifySteps is the runtime self-check depth: a reconstructed clone is
	// stepped this many draws against the genuine source at cache-fill time.
	// Any divergence (e.g. a hypothetical future change to math/rand's
	// algorithm) permanently disables the cache and every simulator falls
	// back to plain rand.NewSource.
	verifySteps = 128
	// rngCacheCap bounds cache memory (~5 KiB per entry). On overflow the
	// whole cache is dropped; recent seeds then re-cache on demand.
	rngCacheCap = 512
)

// seedState is the immutable cached seeding result: the first lfibLen
// outputs of rand.NewSource(seed), shared by every simulator with that seed.
type seedState struct {
	out [lfibLen]uint64
}

var rngCache = struct {
	mu       sync.RWMutex
	m        map[int64]*seedState
	disabled bool
}{m: make(map[int64]*seedState)}

// cachedSource is a rand.Source64 that replays a seedState's buffered
// outputs and then continues the lagged-Fibonacci recurrence from the
// reconstructed ring. It is not safe for concurrent use, matching
// math/rand's own sources.
type cachedSource struct {
	st   *seedState
	pos  int  // replay cursor into st.out
	live bool // ring reconstructed, stepping the recurrence
	tap  int
	feed int
	vec  [lfibLen]int64
	// raw, when non-nil, delegates everything to a stock source. Only Seed
	// can set it, and only after cache verification has failed globally.
	raw rand.Source
}

// newCachedSource returns a source producing rand.NewSource(seed)'s exact
// stream. It returns a cachedSource when the seeding result is (or can be)
// cached and verified, otherwise the stock source itself.
func newCachedSource(seed int64) rand.Source {
	if st := stateFor(seed); st != nil {
		return &cachedSource{st: st}
	}
	return rand.NewSource(seed)
}

// stateFor returns the cached seeding result for seed, filling and
// verifying the cache entry on first use. It returns nil when the cache is
// disabled (verification failed, or the stock source stopped implementing
// Source64).
func stateFor(seed int64) *seedState {
	rngCache.mu.RLock()
	st, ok := rngCache.m[seed]
	disabled := rngCache.disabled
	rngCache.mu.RUnlock()
	if ok {
		return st
	}
	if disabled {
		return nil
	}

	src, ok64 := rand.NewSource(seed).(rand.Source64)
	if !ok64 {
		disableRNGCache()
		return nil
	}
	st = &seedState{}
	for i := range st.out {
		st.out[i] = src.Uint64()
	}
	// Self-check: the reconstructed ring must continue the genuine stream.
	probe := &cachedSource{st: st, pos: lfibLen}
	probe.activate()
	for i := 0; i < verifySteps; i++ {
		if probe.Uint64() != src.Uint64() {
			disableRNGCache()
			return nil
		}
	}

	rngCache.mu.Lock()
	if rngCache.disabled {
		rngCache.mu.Unlock()
		return nil
	}
	if len(rngCache.m) >= rngCacheCap {
		rngCache.m = make(map[int64]*seedState)
	}
	rngCache.m[seed] = st
	rngCache.mu.Unlock()
	return st
}

func disableRNGCache() {
	rngCache.mu.Lock()
	rngCache.disabled = true
	rngCache.m = nil
	rngCache.mu.Unlock()
}

// activate reconstructs the generator ring from the buffered outputs. Draw k
// writes output o_k into slot (333-k) mod 607, and 607 consecutive draws
// touch every slot exactly once, so:
//
//	vec[j] = o[333-j]  for j in [0, 333]
//	vec[j] = o[940-j]  for j in [334, 606]
//
// with the cursors back at their initial positions.
func (s *cachedSource) activate() {
	for j := 0; j <= 333; j++ {
		s.vec[j] = int64(s.st.out[333-j])
	}
	for j := 334; j < lfibLen; j++ {
		s.vec[j] = int64(s.st.out[940-j])
	}
	s.tap, s.feed = 0, lfibFeed
	s.live = true
}

// Uint64 produces the next value of rand.NewSource(seed)'s stream.
func (s *cachedSource) Uint64() uint64 {
	if s.raw != nil {
		if s64, ok := s.raw.(rand.Source64); ok {
			return s64.Uint64()
		}
		// Degraded path for a hypothetical plain source: synthesize 64 bits
		// the way rand.Rand itself does.
		return uint64(s.raw.Int63())>>31 | uint64(s.raw.Int63())<<32
	}
	if !s.live {
		if s.pos < lfibLen {
			v := s.st.out[s.pos]
			s.pos++
			return v
		}
		s.activate()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += lfibLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfibLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 matches math/rand's source: the low 63 bits of Uint64.
func (s *cachedSource) Int63() int64 {
	if s.raw != nil {
		return s.raw.Int63()
	}
	return int64(s.Uint64() &^ (1 << 63))
}

// Seed resets the source to the start of seed's stream.
func (s *cachedSource) Seed(seed int64) {
	if st := stateFor(seed); st != nil {
		*s = cachedSource{st: st}
		return
	}
	// Cache disabled: delegate to the stock source from here on.
	*s = cachedSource{raw: rand.NewSource(seed)}
}
