package sim

import "testing"

// BenchmarkSimEventThroughput measures the scheduler hot loop: a mixed
// schedule/fire/cancel workload over a warm arena, mirroring what a
// characterization row puts through the event queue (guard tickers,
// batch-retire callbacks, relock timers that usually get cancelled).
func BenchmarkSimEventThroughput(b *testing.B) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the arena and heap
		s.Schedule(Duration(i)*Nanosecond, fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(10*Nanosecond, fn)
		s.Schedule(20*Nanosecond, fn)
		ev := s.Schedule(30*Nanosecond, fn)
		ev.Cancel()
		s.RunFor(25 * Nanosecond)
	}
}

// BenchmarkTickerReArm measures the steady-state cost of one periodic tick
// (pop, fire, re-arm) — the guard sampling loop's fixed overhead.
func BenchmarkTickerReArm(b *testing.B) {
	s := New(1)
	tk := s.Every(Microsecond, func() {})
	defer tk.Stop()
	s.RunFor(10 * Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunFor(Microsecond)
	}
}
