// Package sim provides a deterministic discrete-event simulator used as the
// time base for the simulated Intel DVFS platform.
//
// All hardware substrates (voltage regulator slew, PLL relock, kernel-module
// polling, victim execution) schedule work on a single virtual clock with
// picosecond resolution. Determinism is a hard requirement: every experiment
// in the reproduction must be replayable bit-for-bit from a seed, so the
// simulator owns a seeded random source and events at equal timestamps fire
// in scheduling order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, measured in picoseconds since simulation
// start. int64 picoseconds cover ~106 days of virtual time, far beyond any
// experiment in this repository.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a Time using the largest natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending work (e.g. a kernel module being unloaded mid
// poll interval).
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// Time reports when the event fires (or was scheduled to fire).
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event simulation kernel.
// The zero value is not usable; construct with New.
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	seed    int64
	fired   uint64
	stopped bool
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and driven by the same schedule of
// calls produce identical event orders and identical random draws.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the seed the simulator was constructed with.
func (s *Simulator) Seed() int64 { return s.seed }

// Rand exposes the simulator's deterministic random source. All stochastic
// models (clock jitter, fault coin flips) must draw from this source and
// never from the global rand, otherwise replays diverge.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far; useful for tests and
// for asserting progress bounds.
func (s *Simulator) Fired() uint64 { return s.fired }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fires at the current instant, after already-queued events at the
// same timestamp).
func (s *Simulator) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error
// in the caller; we clamp to now to keep the clock monotone, which is the
// least surprising recovery.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

// step executes the earliest pending event. It returns false when the queue
// is empty.
func (s *Simulator) step(limit Time) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		if next.cancelled {
			continue
		}
		s.now = next.at
		s.fired++
		next.fn()
		return true
	}
	return false
}

const maxTime = Time(1<<63 - 1)

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(maxTime) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && s.step(t) {
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now + d) }

// Ticker invokes fn every period until cancelled. The first invocation is
// one full period after the call. Cancel the returned Ticker to stop.
type Ticker struct {
	sim      *Simulator
	period   Duration
	fn       func()
	ev       *Event
	stopped  bool
	Fires    uint64 // number of completed invocations
	lastFire Time
}

// Every creates and starts a Ticker. Period must be positive.
func (s *Simulator) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.Fires++
		t.lastFire = t.sim.Now()
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times and from within the
// tick callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// LastFire reports the virtual time of the most recent completed tick.
func (t *Ticker) LastFire() Time { return t.lastFire }
