// Package sim provides a deterministic discrete-event simulator used as the
// time base for the simulated Intel DVFS platform.
//
// All hardware substrates (voltage regulator slew, PLL relock, kernel-module
// polling, victim execution) schedule work on a single virtual clock with
// picosecond resolution. Determinism is a hard requirement: every experiment
// in the reproduction must be replayable bit-for-bit from a seed, so the
// simulator owns a seeded random source and events at equal timestamps fire
// in scheduling order.
//
// The event queue is a hand-rolled binary min-heap over an index-stable
// event arena: scheduling recycles slots through a free list instead of
// allocating an Event per call, heap entries are small value structs (no
// interface boxing), and cancellation removes the entry eagerly via the
// tracked heap index. The steady-state schedule/fire/cancel path performs no
// heap allocation, which matters because the characterization sweeps push
// hundreds of millions of events.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, measured in picoseconds since simulation
// start. int64 picoseconds cover ~106 days of virtual time, far beyond any
// experiment in this repository.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a Time using the largest natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel pending work (e.g. a kernel module being
// unloaded mid poll interval). It is a value handle into the simulator's
// event arena: copying it is cheap and scheduling allocates nothing. The
// generation counter makes stale handles harmless — cancelling an event that
// has already fired, been cancelled, or whose slot was recycled is a no-op
// on the simulator. The zero Event is valid and inert.
type Event struct {
	s    *Simulator
	at   Time
	slot int32
	gen  uint32
	// done records that Cancel was called through this handle, preserving
	// the historical Cancelled() semantics independent of slot recycling.
	done bool
}

// Time reports when the event fires (or was scheduled to fire).
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing, removing it from the queue
// immediately. Cancelling an event that has already fired or been cancelled
// is a no-op.
func (e *Event) Cancel() {
	if e.done {
		return
	}
	e.done = true
	if e.s != nil {
		e.s.cancel(e.slot, e.gen)
	}
}

// Cancelled reports whether Cancel was called on this handle.
func (e *Event) Cancelled() bool { return e.done }

// eventSlot is one arena cell. Live slots hold the callback and track their
// heap position; free slots chain through next.
type eventSlot struct {
	fn   func()
	at   Time
	gen  uint32
	heap int32 // index into Simulator.heap, -1 when not queued
	next int32 // free-list link, meaningful only while free
}

// heapEnt is one packed entry of the min-heap. Ordering is (at, seq): seq is
// a global schedule counter, so events at equal timestamps fire in
// scheduling order — the FIFO property determinism depends on.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator is a single-threaded discrete-event simulation kernel.
// The zero value is not usable; construct with New.
type Simulator struct {
	now      Time
	heap     []heapEnt
	slots    []eventSlot
	freeHead int32 // top of the free-slot stack, -1 when empty
	seq      uint64
	rng      *rand.Rand
	seed     int64
	fired    uint64
	stopped  bool
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and driven by the same schedule of
// calls produce identical event orders and identical random draws.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:      rand.New(newCachedSource(seed)),
		seed:     seed,
		freeHead: -1,
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the seed the simulator was constructed with.
func (s *Simulator) Seed() int64 { return s.seed }

// Rand exposes the simulator's deterministic random source. All stochastic
// models (clock jitter, fault coin flips) must draw from this source and
// never from the global rand, otherwise replays diverge.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far; useful for tests and
// for asserting progress bounds.
func (s *Simulator) Fired() uint64 { return s.fired }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fires at the current instant, after already-queued events at the
// same timestamp).
func (s *Simulator) Schedule(delay Duration, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error
// in the caller; we clamp to now to keep the clock monotone, which is the
// least surprising recovery.
func (s *Simulator) At(t Time, fn func()) Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	i := s.allocSlot()
	sl := &s.slots[i]
	sl.fn = fn
	sl.at = t
	s.heapPush(heapEnt{at: t, seq: s.seq, slot: i})
	return Event{s: s, at: t, slot: i, gen: sl.gen}
}

// allocSlot pops a recycled slot from the free list or grows the arena.
func (s *Simulator) allocSlot() int32 {
	if s.freeHead >= 0 {
		i := s.freeHead
		s.freeHead = s.slots[i].next
		return i
	}
	s.slots = append(s.slots, eventSlot{heap: -1})
	return int32(len(s.slots) - 1)
}

// freeSlot returns a slot to the free list. Bumping the generation
// invalidates every outstanding handle; clearing fn releases the callback's
// closure to the garbage collector.
func (s *Simulator) freeSlot(i int32) {
	sl := &s.slots[i]
	sl.fn = nil
	sl.gen++
	sl.heap = -1
	sl.next = s.freeHead
	s.freeHead = i
}

// cancel removes the event in slot i from the queue if the handle's
// generation still matches (i.e. the event has not fired or been recycled).
func (s *Simulator) cancel(i int32, gen uint32) {
	if i < 0 || int(i) >= len(s.slots) {
		return
	}
	sl := &s.slots[i]
	if sl.gen != gen || sl.heap < 0 {
		return
	}
	s.heapRemove(sl.heap)
	s.freeSlot(i)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of live queued events. Cancelled events are
// removed eagerly and never counted.
func (s *Simulator) Pending() int { return len(s.heap) }

// step executes the earliest pending event. It returns false when the queue
// is empty or the next event lies beyond limit.
func (s *Simulator) step(limit Time) bool {
	if len(s.heap) == 0 {
		return false
	}
	top := s.heap[0]
	if top.at > limit {
		return false
	}
	fn := s.slots[top.slot].fn
	s.heapPopRoot()
	s.freeSlot(top.slot)
	s.now = top.at
	s.fired++
	fn()
	return true
}

const maxTime = Time(1<<63 - 1)

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(maxTime) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && s.step(t) {
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now + d) }

// heapPush appends e and restores the heap property, maintaining each live
// slot's back-pointer into the heap.
func (s *Simulator) heapPush(e heapEnt) {
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap) - 1)
}

// heapPopRoot removes the minimum entry.
func (s *Simulator) heapPopRoot() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

// heapRemove deletes the entry at heap index i (eager cancellation).
func (s *Simulator) heapRemove(i int32) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if int(i) == n {
		return
	}
	s.heap[i] = last
	if !s.siftDown(int(i)) {
		s.siftUp(int(i))
	}
}

func (s *Simulator) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !entLess(e, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.slots[s.heap[i].slot].heap = int32(i)
		i = p
	}
	s.heap[i] = e
	s.slots[e.slot].heap = int32(i)
}

// siftDown restores the heap property below i and reports whether the entry
// moved (heapRemove uses this to decide if a sift-up is still needed).
func (s *Simulator) siftDown(i int) bool {
	e := s.heap[i]
	n := len(s.heap)
	moved := false
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && entLess(s.heap[r], s.heap[l]) {
			c = r
		}
		if !entLess(s.heap[c], e) {
			break
		}
		s.heap[i] = s.heap[c]
		s.slots[s.heap[i].slot].heap = int32(i)
		i = c
		moved = true
	}
	s.heap[i] = e
	s.slots[e.slot].heap = int32(i)
	return moved
}

// Ticker invokes fn every period until cancelled. The first invocation is
// one full period after the call. Cancel the returned Ticker to stop.
type Ticker struct {
	sim      *Simulator
	period   Duration
	fn       func()
	tick     func() // single re-armed closure, built once in Every
	ev       Event
	stopped  bool
	Fires    uint64 // number of completed invocations
	lastFire Time
}

// Every creates and starts a Ticker. Period must be positive.
func (s *Simulator) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.Fires++
		t.lastFire = t.sim.Now()
		t.fn()
		if !t.stopped {
			t.ev = t.sim.Schedule(t.period, t.tick)
		}
	}
	t.ev = s.Schedule(period, t.tick)
	return t
}

// Stop cancels future ticks. Safe to call multiple times and from within the
// tick callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// LastFire reports the virtual time of the most recent completed tick.
func (t *Ticker) LastFire() Time { return t.lastFire }
