package flight

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Incident bundles share the fleet checkpoint's wire discipline: a binary
// header frames a JSON payload so a truncated copy, a flipped bit, or a
// foreign file is rejected deterministically instead of half-parsing.
//
// Layout (big-endian):
//
//	offset  size  field
//	0       4     magic "PVFR"
//	4       2     format version (BundleVersion)
//	6       2     reserved (zero)
//	8       8     payload length in bytes
//	16      4     CRC32 (IEEE) of the payload
//	20      ...   payload: JSON-encoded Bundle
//
// Frames are self-delimiting, so one incidents file holds any number of
// bundles back to back (see AppendEncoded / DecodeAll).
var bundleMagic = [4]byte{'P', 'V', 'F', 'R'}

// BundleVersion is the current bundle format version. Decoders accept
// exactly this version.
const BundleVersion = 1

// bundleHeaderLen is the fixed frame header size.
const bundleHeaderLen = 20

// maxBundlePayload bounds the declared payload length before any allocation
// happens, so a corrupt length field cannot drive a huge allocation.
const maxBundlePayload = 1 << 31

// Sentinel error classes for bundle decoding. Callers match with errors.Is;
// the concrete *BundleError carries the detail.
var (
	ErrBundleTruncated = errors.New("flight: bundle truncated")
	ErrBundleMagic     = errors.New("flight: bad bundle magic")
	ErrBundleVersion   = errors.New("flight: unsupported bundle version")
	ErrBundleChecksum  = errors.New("flight: bundle checksum mismatch")
	ErrBundlePayload   = errors.New("flight: malformed bundle payload")
)

// BundleError wraps a sentinel class with human-readable detail.
type BundleError struct {
	Class  error
	Detail string
}

func (e *BundleError) Error() string { return e.Class.Error() + ": " + e.Detail }

// Unwrap lets errors.Is match the sentinel class.
func (e *BundleError) Unwrap() error { return e.Class }

// bundleErr builds a classed decode error.
func bundleErr(class error, format string, args ...any) error {
	return &BundleError{Class: class, Detail: fmt.Sprintf(format, args...)}
}

// Bundle is one frozen incident: header fields describing the trigger, the
// guard's compiled unsafe-set view at trigger time, and the captured window
// of pre- and post-trigger flight records. Field order is the schema;
// encoding is deterministic (encoding/json emits struct fields in
// declaration order, and Records/Thresholds are slices, never maps).
type Bundle struct {
	Version int    `json:"version"`
	Seq     int    `json:"seq"`
	Cause   string `json:"cause"`
	Core    int    `json:"core"`
	Detail  string `json:"detail,omitempty"`
	// TriggerPS is the virtual-clock instant the trigger fired.
	TriggerPS int64  `json:"trigger_ps"`
	Model     string `json:"model"`
	Seed      int64  `json:"seed"`
	// WindowRecords is the configured post-trigger capture window.
	WindowRecords int        `json:"window_records"`
	Guard         *GuardView `json:"guard,omitempty"`
	Records       []Record   `json:"records"`
}

// Encode serializes the bundle into a framed byte slice.
func (b *Bundle) Encode() ([]byte, error) {
	payload, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("flight: encode bundle: %w", err)
	}
	buf := make([]byte, bundleHeaderLen+len(payload))
	copy(buf[0:4], bundleMagic[:])
	binary.BigEndian.PutUint16(buf[4:6], BundleVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[bundleHeaderLen:], payload)
	return buf, nil
}

// DecodeBundle parses and validates one framed bundle from the front of
// data, returning the bundle and the number of bytes consumed. Every
// rejection is a *BundleError wrapping one of the sentinel classes; the
// decoder never panics on arbitrary input.
func DecodeBundle(data []byte) (*Bundle, int, error) {
	if len(data) < bundleHeaderLen {
		return nil, 0, bundleErr(ErrBundleTruncated, "%d bytes, need at least %d", len(data), bundleHeaderLen)
	}
	if [4]byte(data[0:4]) != bundleMagic {
		return nil, 0, bundleErr(ErrBundleMagic, "got %q", data[0:4])
	}
	ver := binary.BigEndian.Uint16(data[4:6])
	if ver != BundleVersion {
		return nil, 0, bundleErr(ErrBundleVersion, "got %d, support %d", ver, BundleVersion)
	}
	plen := binary.BigEndian.Uint64(data[8:16])
	if plen > maxBundlePayload {
		return nil, 0, bundleErr(ErrBundlePayload, "declared payload %d exceeds limit %d", plen, maxBundlePayload)
	}
	end := bundleHeaderLen + int(plen)
	if len(data) < end {
		return nil, 0, bundleErr(ErrBundleTruncated, "payload declares %d bytes, %d available", plen, len(data)-bundleHeaderLen)
	}
	payload := data[bundleHeaderLen:end]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(data[16:20]); got != want {
		return nil, 0, bundleErr(ErrBundleChecksum, "crc32 %08x, header says %08x", got, want)
	}
	var b Bundle
	dec := json.NewDecoder(newByteReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, 0, bundleErr(ErrBundlePayload, "json: %v", err)
	}
	if b.Version != BundleVersion {
		return nil, 0, bundleErr(ErrBundleVersion, "payload declares version %d, frame %d", b.Version, BundleVersion)
	}
	if b.Seq < 1 {
		return nil, 0, bundleErr(ErrBundlePayload, "seq %d out of range", b.Seq)
	}
	if b.TriggerPS < 0 {
		return nil, 0, bundleErr(ErrBundlePayload, "trigger_ps %d negative", b.TriggerPS)
	}
	if b.WindowRecords < 0 {
		return nil, 0, bundleErr(ErrBundlePayload, "window_records %d negative", b.WindowRecords)
	}
	for i, rec := range b.Records {
		if _, ok := kindNames[rec.Kind]; !ok {
			return nil, 0, bundleErr(ErrBundlePayload, "record %d has unknown kind %d", i, rec.Kind)
		}
		if rec.At < 0 {
			return nil, 0, bundleErr(ErrBundlePayload, "record %d at_ps %d negative", i, rec.At)
		}
	}
	return &b, end, nil
}

// byteReader adapts a byte slice for json.Decoder without bytes.NewReader's
// extra interface surface.
type byteReader struct {
	data []byte
	off  int
}

func newByteReader(b []byte) *byteReader { return &byteReader{data: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// DecodeAll parses every framed bundle in data (an incidents file is framed
// bundles back to back). Trailing garbage or a corrupt frame fails the whole
// decode — forensic artifacts are all-or-nothing.
func DecodeAll(data []byte) ([]*Bundle, error) {
	var out []*Bundle
	for len(data) > 0 {
		b, n, err := DecodeBundle(data)
		if err != nil {
			return nil, fmt.Errorf("bundle %d: %w", len(out), err)
		}
		out = append(out, b)
		data = data[n:]
	}
	return out, nil
}

// EncodeAll frames the bundles back to back, in order — the on-disk format
// behind -incidents-out.
func EncodeAll(bundles []*Bundle) ([]byte, error) {
	var out []byte
	for i, b := range bundles {
		enc, err := b.Encode()
		if err != nil {
			return nil, fmt.Errorf("bundle %d: %w", i, err)
		}
		out = append(out, enc...)
	}
	return out, nil
}

// Label is the one-line identity used by listings: sequence, cause, core and
// trigger instant.
func (b *Bundle) Label() string {
	return fmt.Sprintf("seq=%d cause=%s core=%d trigger=%s model=%s records=%d",
		b.Seq, b.Cause, b.Core, fmtPS(b.TriggerPS), b.Model, len(b.Records))
}

// fmtPS renders a picosecond instant with a readable unit.
func fmtPS(ps int64) string {
	switch {
	case ps >= 1e12:
		return fmt.Sprintf("%.6fs", float64(ps)/1e12)
	case ps >= 1e6:
		return fmt.Sprintf("%.3fus", float64(ps)/1e6)
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

// describe renders one record's payload for the timeline.
func describe(rec Record) string {
	switch rec.Kind {
	case KindMailboxWrite:
		s := fmt.Sprintf("mailbox_write  offset=%dmV plane=%d %s", rec.A, rec.B, outcomeName(rec.Flag))
		if rec.Span != 0 {
			s += fmt.Sprintf(" span=%016x", rec.Span)
		}
		return s
	case KindPStateRetarget:
		return fmt.Sprintf("pstate         ratio=%d target=%.3fmV", rec.A, float64(rec.B)/1000)
	case KindGuardPoll:
		verdict := "safe"
		if rec.Flag != 0 {
			verdict = "UNSAFE"
		}
		return fmt.Sprintf("guard_poll     ratio=%d offset=%dmV %s", rec.A, rec.B, verdict)
	case KindGuardIntervention:
		status := "failed"
		if rec.Flag != 0 {
			status = "ok"
		}
		return fmt.Sprintf("intervention   offset=%dmV -> safe=%dmV %s", rec.A, rec.B, status)
	case KindEnergySegment:
		return fmt.Sprintf("energy_segment price=%.6fW", float64(rec.A)/1e6)
	case KindFault:
		return fmt.Sprintf("fault          count=%d offset=%dmV", rec.A, rec.B)
	case KindCrash:
		return fmt.Sprintf("crash          offset=%dmV", rec.A)
	case KindTrigger:
		return fmt.Sprintf("TRIGGER        cause_code=%d", rec.A)
	}
	return fmt.Sprintf("%s a=%d b=%d c=%d flag=%d", rec.Kind, rec.A, rec.B, rec.C, rec.Flag)
}

// WriteTimeline pretty-prints the bundle as a human-readable incident
// timeline: header, guard view summary, then every record with its offset
// relative to the trigger instant (negative = pre-trigger).
func (b *Bundle) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "incident %s\n", b.Label()); err != nil {
		return err
	}
	if b.Detail != "" {
		fmt.Fprintf(w, "  detail: %s\n", b.Detail)
	}
	if g := b.Guard; g != nil {
		ratios := make([]int, 0, len(g.Thresholds))
		for _, t := range g.Thresholds {
			ratios = append(ratios, t.Ratio)
		}
		fmt.Fprintf(w, "  guard view: model=%s bus=%dMHz margin=%dmV safe=%dmV ratios=%d",
			g.Model, g.BusMHz, g.MarginMV, g.SafeMV, len(g.Thresholds))
		if len(ratios) > 0 {
			fmt.Fprintf(w, " [%d..%d]", ratios[0], ratios[len(ratios)-1])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-14s %-6s %s\n", "t-trigger", "core", "event")
	for _, rec := range b.Records {
		dt := int64(rec.At) - b.TriggerPS
		sign := "+"
		if dt < 0 {
			sign, dt = "-", -dt
		}
		if _, err := fmt.Fprintf(w, "  %s%-13s core%-2d %s\n", sign, fmtPS(dt), rec.Core, describe(rec)); err != nil {
			return err
		}
	}
	return nil
}

// Diff compares two bundles and writes a field-by-field report: header
// deltas, guard-view deltas, and the first diverging record. Returns true
// when the bundles are identical.
func Diff(w io.Writer, a, b *Bundle) (bool, error) {
	same := true
	note := func(format string, args ...any) {
		same = false
		fmt.Fprintf(w, "  "+format+"\n", args...)
	}
	fmt.Fprintf(w, "diff %s\n  vs %s\n", a.Label(), b.Label())
	if a.Cause != b.Cause {
		note("cause: %s vs %s", a.Cause, b.Cause)
	}
	if a.Core != b.Core {
		note("core: %d vs %d", a.Core, b.Core)
	}
	if a.TriggerPS != b.TriggerPS {
		note("trigger_ps: %d vs %d (delta %s)", a.TriggerPS, b.TriggerPS, fmtPS(abs64(a.TriggerPS-b.TriggerPS)))
	}
	if a.Model != b.Model {
		note("model: %s vs %s", a.Model, b.Model)
	}
	if a.Seed != b.Seed {
		note("seed: %d vs %d", a.Seed, b.Seed)
	}
	if a.Detail != b.Detail {
		note("detail: %q vs %q", a.Detail, b.Detail)
	}
	diffGuard(w, a.Guard, b.Guard, note)
	if len(a.Records) != len(b.Records) {
		note("records: %d vs %d", len(a.Records), len(b.Records))
	}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if a.Records[i] != b.Records[i] {
			note("first diverging record at index %d:", i)
			fmt.Fprintf(w, "    a: %s %s\n", fmtPS(int64(a.Records[i].At)), describe(a.Records[i]))
			fmt.Fprintf(w, "    b: %s %s\n", fmtPS(int64(b.Records[i].At)), describe(b.Records[i]))
			break
		}
	}
	if same {
		fmt.Fprintln(w, "  identical")
	}
	return same, nil
}

// diffGuard reports guard-view deltas, including per-ratio threshold
// differences in ascending ratio order.
func diffGuard(w io.Writer, a, b *GuardView, note func(string, ...any)) {
	switch {
	case a == nil && b == nil:
		return
	case a == nil || b == nil:
		note("guard view: present=%v vs present=%v", a != nil, b != nil)
		return
	}
	if a.Model != b.Model {
		note("guard model: %s vs %s", a.Model, b.Model)
	}
	if a.MarginMV != b.MarginMV {
		note("guard margin: %dmV vs %dmV", a.MarginMV, b.MarginMV)
	}
	if a.SafeMV != b.SafeMV {
		note("guard safe offset: %dmV vs %dmV", a.SafeMV, b.SafeMV)
	}
	at := thresholdMap(a.Thresholds)
	bt := thresholdMap(b.Thresholds)
	ratios := make([]int, 0, len(at)+len(bt))
	for r := range at {
		ratios = append(ratios, r)
	}
	for r := range bt {
		if _, ok := at[r]; !ok {
			ratios = append(ratios, r)
		}
	}
	sort.Ints(ratios)
	for _, r := range ratios {
		av, aok := at[r]
		bv, bok := bt[r]
		switch {
		case !aok:
			note("guard threshold ratio=%d: (none) vs %dmV", r, bv)
		case !bok:
			note("guard threshold ratio=%d: %dmV vs (none)", r, av)
		case av != bv:
			note("guard threshold ratio=%d: %dmV vs %dmV", r, av, bv)
		}
	}
}

func thresholdMap(ts []RatioThreshold) map[int]int {
	m := make(map[int]int, len(ts))
	for _, t := range ts {
		m[t.Ratio] = t.ThresholdMV
	}
	return m
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
