// Package flight is the deterministic flight recorder behind the incident
// forensics pipeline: a fixed-capacity ring of compact records continuously
// capturing pre-trigger machine state on the virtual clock — mailbox writes,
// P-state retargets, guard polls and interventions, energy segments — and a
// trigger/capture mechanism that freezes a window of pre- and post-trigger
// records into a versioned incident bundle (see bundle.go).
//
// The recorder inverts the journal's drop-newest policy on purpose: a flight
// recorder exists to explain the *most recent* history before a fault, so the
// ring overwrites its oldest records. Everything else follows the telemetry
// subsystem's determinism rules — timestamps come from an injected
// func() sim.Time, nothing reads the wall clock, and every method is
// nil-receiver safe so instrumented hot paths hold a possibly-nil *Recorder
// and call it unconditionally.
//
// The steady-state Append path is allocation-free (asserted by
// TestRecorderAppendAllocs): records are fixed-size values written into a
// preallocated ring under a mutex. Only a trigger — rare by construction,
// bounded by incidents rather than the poll rate — takes the allocating slow
// path that snapshots the ring into a bundle.
package flight

import (
	"fmt"
	"sync"

	"plugvolt/internal/sim"
)

// Kind discriminates flight records. The zero Kind is invalid, so a decoded
// record with Kind 0 is detectably malformed.
type Kind uint8

// Record kinds and their payload field semantics (A, B, C are
// kind-dependent; unused fields are zero):
const (
	// KindMailboxWrite is one OC-mailbox voltage write command observed at
	// the register file. A = offset mV, B = plane, Flag = outcome
	// (OutcomeAccepted/Rewritten/Blocked), Span = the mailbox_write span ID.
	KindMailboxWrite Kind = iota + 1
	// KindPStateRetarget is one commanded operating-point change (P-state
	// write or mailbox offset landing). A = commanded ratio, B = commanded
	// rail target in microvolts.
	KindPStateRetarget
	// KindGuardPoll is one guard state inspection. A = polled ratio,
	// B = polled offset mV, Flag = 1 when the pair was in the unsafe set.
	KindGuardPoll
	// KindGuardIntervention is one forced return to the safe state.
	// A = offending offset mV, B = safe offset mV, Flag = 1 when the
	// corrective write succeeded.
	KindGuardIntervention
	// KindEnergySegment is one energy-integrator segment boundary.
	// A = the new commanded-point power in microwatts.
	KindEnergySegment
	// KindFault is one observed victim fault site. A = fault count,
	// B = offset mV at the observation.
	KindFault
	// KindCrash is one machine crash. A = offset mV at the crash.
	KindCrash
	// KindTrigger marks the incident trigger instant. A = the cause code
	// (see Cause); the bundle header carries the cause string and detail.
	KindTrigger
)

// kindNames maps kinds to their stable schema names; the bundle codec
// round-trips kinds through these strings and rejects unknown names.
var kindNames = map[Kind]string{
	KindMailboxWrite:      "mailbox_write",
	KindPStateRetarget:    "pstate_retarget",
	KindGuardPoll:         "guard_poll",
	KindGuardIntervention: "guard_intervention",
	KindEnergySegment:     "energy_segment",
	KindFault:             "fault",
	KindCrash:             "crash",
	KindTrigger:           "trigger",
}

// String returns the kind's stable schema name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Mailbox-write outcomes carried in Record.Flag for KindMailboxWrite,
// mirroring the span tracer's outcome attribute.
const (
	OutcomeAccepted  uint8 = 0
	OutcomeRewritten uint8 = 1
	OutcomeBlocked   uint8 = 2
)

// outcomeNames renders mailbox outcomes for the timeline.
func outcomeName(flag uint8) string {
	switch flag {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRewritten:
		return "rewritten"
	case OutcomeBlocked:
		return "blocked"
	}
	return fmt.Sprintf("outcome(%d)", flag)
}

// Record is one fixed-size flight entry. Field semantics depend on Kind (see
// the Kind constants); keeping the payload as three integers is what makes
// the steady-state append a plain array store.
type Record struct {
	At   sim.Time `json:"at_ps"`
	Kind Kind     `json:"kind"`
	Core int16    `json:"core"`
	Flag uint8    `json:"flag"`
	A    int64    `json:"a"`
	B    int64    `json:"b"`
	C    int64    `json:"c"`
	// Span links the record to its causal span in the trace (0 = none).
	Span uint64 `json:"span,omitempty"`
}

// Cause names what fired an incident trigger.
type Cause string

// Trigger causes.
const (
	CauseFault        Cause = "fault"
	CauseCrash        Cause = "crash"
	CauseSLO          Cause = "slo_violation"
	CauseEnergyBudget Cause = "energy_budget"
	CauseManual       Cause = "manual"
)

// causeCodes gives each cause a stable integer for the trigger record's A
// payload; unknown causes map to 0.
var causeCodes = map[Cause]int64{
	CauseFault: 1, CauseCrash: 2, CauseSLO: 3, CauseEnergyBudget: 4, CauseManual: 5,
}

// RatioThreshold is one compiled guard decision slot: the shallowest offset
// treated as unsafe at a P-state ratio (guard margin folded in).
type RatioThreshold struct {
	Ratio       int `json:"ratio"`
	ThresholdMV int `json:"threshold_mv"`
}

// GuardView is the guard's compiled view of the unsafe set, frozen into
// every bundle so an incident is explainable against the exact boundary the
// guard was enforcing at trigger time. Thresholds are in ascending ratio
// order by construction (the 256-slot LUT is walked in index order).
type GuardView struct {
	Model       string           `json:"model"`
	BusMHz      int              `json:"bus_mhz"`
	MarginMV    int              `json:"margin_mv"`
	SafeMV      int              `json:"safe_mv"`
	Thresholds  []RatioThreshold `json:"thresholds"`
	PollPeriodP int64            `json:"poll_period_ps"`
}

// Defaults for the recorder geometry.
const (
	// DefaultCap is the ring capacity when the constructor gets cap <= 0:
	// enough pre-trigger history to cover several guard poll periods of
	// polls, writes and retargets without growing a machine's footprint.
	DefaultCap = 4096
	// DefaultWindow is the post-trigger record count captured into a bundle
	// when the constructor gets window <= 0.
	DefaultWindow = 256
	// DefaultMaxBundles bounds retained bundles per recorder; captures past
	// the cap are counted as dropped rather than growing without bound.
	DefaultMaxBundles = 16
)

// Stats is the recorder's self-accounting, published as the flight_* metric
// family and the /healthz flight section.
type Stats struct {
	// Records counts every append; Overwrites counts appends that evicted
	// the oldest record (ring saturated).
	Records    uint64 `json:"records"`
	Overwrites uint64 `json:"overwrites"`
	// Triggers counts Trigger calls; Captures counts sealed bundles;
	// BundlesDropped counts captures discarded past the bundle cap.
	Triggers       uint64 `json:"triggers"`
	Captures       uint64 `json:"captures"`
	BundlesDropped uint64 `json:"bundles_dropped"`
	// Len/Cap describe ring utilization; Bundles is the retained count.
	Len     int `json:"len"`
	Cap     int `json:"cap"`
	Window  int `json:"window"`
	Bundles int `json:"bundles"`
}

// capture is an incident in flight: the bundle under construction and the
// post-trigger records still owed to it.
type capture struct {
	bundle    *Bundle
	remaining int
}

// Recorder is the flight ring. Construct with NewRecorder; a nil *Recorder
// is a valid no-op sink (every method nil-checks the receiver).
//
// The mutex exists for the same reason as the journal's: the simulation core
// is single-threaded, but the obs server reads stats and bundles from its
// own goroutines.
type Recorder struct {
	mu  sync.Mutex
	now func() sim.Time

	buf    []Record
	head   uint64 // total records ever appended; buf slot = head % cap
	window int

	records        uint64
	overwrites     uint64
	triggers       uint64
	captures       uint64
	bundlesDropped uint64

	pending    *capture
	bundles    []*Bundle
	maxBundles int
	nextSeq    int

	model string
	seed  int64
	guard *GuardView
}

// NewRecorder builds a recorder clocked by now (nil stamps records at time
// zero), with the given ring capacity and post-trigger window (<= 0 selects
// the defaults). model and seed identify the machine in bundle headers.
func NewRecorder(now func() sim.Time, cap, window int, model string, seed int64) *Recorder {
	if cap <= 0 {
		cap = DefaultCap
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if window > cap {
		window = cap
	}
	return &Recorder{
		now:        now,
		buf:        make([]Record, cap),
		window:     window,
		maxBundles: DefaultMaxBundles,
		nextSeq:    1,
		model:      model,
		seed:       seed,
	}
}

// SetGuardView freezes the guard's compiled unsafe-set view into subsequent
// bundles. The view must not be mutated after handoff.
func (r *Recorder) SetGuardView(v *GuardView) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.guard = v
	r.mu.Unlock()
}

// at reads the recorder clock.
func (r *Recorder) at() sim.Time {
	if r.now == nil {
		return 0
	}
	return r.now()
}

// append writes one record: overwrite-oldest into the ring and, when a
// capture is open, into the pending bundle. Steady state (no open capture)
// performs no allocation.
func (r *Recorder) append(rec Record) {
	r.mu.Lock()
	i := int(r.head % uint64(len(r.buf)))
	if r.head >= uint64(len(r.buf)) {
		r.overwrites++
	}
	r.buf[i] = rec
	r.head++
	r.records++
	if p := r.pending; p != nil {
		p.bundle.Records = append(p.bundle.Records, rec)
		p.remaining--
		if p.remaining <= 0 {
			r.sealLocked()
		}
	}
	r.mu.Unlock()
}

// MailboxWrite records one OC-mailbox voltage write command and its outcome
// at the register file, linked to its causal span.
func (r *Recorder) MailboxWrite(core, offsetMV int, plane uint8, outcome uint8, span uint64) {
	if r == nil {
		return
	}
	r.append(Record{At: r.at(), Kind: KindMailboxWrite, Core: int16(core),
		Flag: outcome, A: int64(offsetMV), B: int64(plane), Span: span})
}

// PStateRetarget records one commanded operating-point change.
func (r *Recorder) PStateRetarget(core int, ratio uint8, targetUV int64) {
	if r == nil {
		return
	}
	r.append(Record{At: r.at(), Kind: KindPStateRetarget, Core: int16(core),
		A: int64(ratio), B: targetUV})
}

// GuardPoll records one guard state inspection.
func (r *Recorder) GuardPoll(core int, ratio uint8, offsetMV int, unsafe bool) {
	if r == nil {
		return
	}
	var f uint8
	if unsafe {
		f = 1
	}
	r.append(Record{At: r.at(), Kind: KindGuardPoll, Core: int16(core),
		Flag: f, A: int64(ratio), B: int64(offsetMV)})
}

// GuardIntervention records one forced return to the safe state.
func (r *Recorder) GuardIntervention(core, offsetMV, safeMV int, ok bool) {
	if r == nil {
		return
	}
	var f uint8
	if ok {
		f = 1
	}
	r.append(Record{At: r.at(), Kind: KindGuardIntervention, Core: int16(core),
		Flag: f, A: int64(offsetMV), B: int64(safeMV)})
}

// EnergySegment records one energy-integrator segment boundary with the new
// commanded-point power in microwatts.
func (r *Recorder) EnergySegment(core int, priceW float64) {
	if r == nil {
		return
	}
	r.append(Record{At: r.at(), Kind: KindEnergySegment, Core: int16(core),
		A: int64(priceW * 1e6)})
}

// Fault records one victim fault observation site.
func (r *Recorder) Fault(core, faults, offsetMV int) {
	if r == nil {
		return
	}
	r.append(Record{At: r.at(), Kind: KindFault, Core: int16(core),
		A: int64(faults), B: int64(offsetMV)})
}

// Crash records one machine crash.
func (r *Recorder) Crash(core, offsetMV int) {
	if r == nil {
		return
	}
	r.append(Record{At: r.at(), Kind: KindCrash, Core: int16(core),
		A: int64(offsetMV)})
}

// Trigger fires an incident: it appends the trigger record, snapshots the
// ring (the pre-trigger history) into a new bundle, and keeps capturing
// until the post-trigger window fills (or Seal is called). A trigger while a
// capture is already open is counted but does not open a second capture —
// the open bundle already covers it.
func (r *Recorder) Trigger(cause Cause, core int, detail string) {
	if r == nil {
		return
	}
	at := r.at()
	r.mu.Lock()
	r.triggers++
	trig := Record{At: at, Kind: KindTrigger, Core: int16(core), A: causeCodes[cause]}
	i := int(r.head % uint64(len(r.buf)))
	if r.head >= uint64(len(r.buf)) {
		r.overwrites++
	}
	r.buf[i] = trig
	r.head++
	r.records++
	if r.pending != nil {
		r.pending.bundle.Records = append(r.pending.bundle.Records, trig)
		r.pending.remaining--
		if r.pending.remaining <= 0 {
			r.sealLocked()
		}
		r.mu.Unlock()
		return
	}
	// Snapshot the ring in time order, with room for the post window so the
	// per-record appends during capture never reallocate.
	n := int(r.head)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	records := make([]Record, 0, n+r.window)
	if r.head > uint64(len(r.buf)) {
		start := int(r.head % uint64(len(r.buf)))
		records = append(records, r.buf[start:]...)
		records = append(records, r.buf[:start]...)
	} else {
		records = append(records, r.buf[:n]...)
	}
	b := &Bundle{
		Version:       BundleVersion,
		Seq:           r.nextSeq,
		Cause:         string(cause),
		Core:          core,
		Detail:        detail,
		TriggerPS:     int64(at),
		Model:         r.model,
		Seed:          r.seed,
		WindowRecords: r.window,
		Guard:         r.guard,
		Records:       records,
	}
	r.nextSeq++
	r.pending = &capture{bundle: b, remaining: r.window}
	r.mu.Unlock()
}

// sealLocked finalizes the pending capture. Caller holds r.mu.
func (r *Recorder) sealLocked() {
	if r.pending == nil {
		return
	}
	b := r.pending.bundle
	r.pending = nil
	r.captures++
	if len(r.bundles) >= r.maxBundles {
		r.bundlesDropped++
		return
	}
	r.bundles = append(r.bundles, b)
}

// Seal closes any open capture with however many post-trigger records
// arrived — the end-of-run flush that keeps a trigger near the end of an
// experiment from losing its bundle.
func (r *Recorder) Seal() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sealLocked()
	r.mu.Unlock()
}

// Bundles returns the sealed bundles in capture order. The returned slice is
// a copy; the bundles themselves are shared and must be treated read-only.
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.bundles...)
}

// Stats reports the recorder's self-accounting.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.head)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	return Stats{
		Records:        r.records,
		Overwrites:     r.overwrites,
		Triggers:       r.triggers,
		Captures:       r.captures,
		BundlesDropped: r.bundlesDropped,
		Len:            n,
		Cap:            len(r.buf),
		Window:         r.window,
		Bundles:        len(r.bundles),
	}
}
