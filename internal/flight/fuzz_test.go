package flight

import (
	"errors"
	"testing"

	"plugvolt/internal/sim"
)

// FuzzIncidentBundleDecode feeds DecodeBundle arbitrary bytes: it must never
// panic, and every rejection must be a *BundleError wrapping one of the
// sentinel classes. Accepted inputs must round-trip byte-identically.
func FuzzIncidentBundleDecode(f *testing.F) {
	// Seed with a valid frame and targeted corruptions of it.
	var now sim.Time
	r := NewRecorder(func() sim.Time { return now }, 16, 2, "skylake", 7)
	r.SetGuardView(&GuardView{Model: "skylake", BusMHz: 100,
		Thresholds: []RatioThreshold{{Ratio: 30, ThresholdMV: -195}}})
	now = 5
	r.MailboxWrite(1, -230, 0, OutcomeAccepted, 3)
	r.Trigger(CauseFault, 1, "seed")
	r.Seal()
	good, err := r.Bundles()[0].Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:bundleHeaderLen])
	f.Add(good[:len(good)-1])
	bad := append([]byte(nil), good...)
	bad[0] = 'Q'
	f.Add(bad)
	flip := append([]byte(nil), good...)
	flip[len(flip)-2] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBundle(data)
		if err != nil {
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("rejection %T is not *BundleError: %v", err, err)
			}
			if !errors.Is(err, ErrBundleTruncated) && !errors.Is(err, ErrBundleMagic) &&
				!errors.Is(err, ErrBundleVersion) && !errors.Is(err, ErrBundleChecksum) &&
				!errors.Is(err, ErrBundlePayload) {
				t.Fatalf("rejection has no sentinel class: %v", err)
			}
			return
		}
		if n < bundleHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc, err := b.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted bundle: %v", err)
		}
		b2, _, err := DecodeBundle(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted bundle: %v", err)
		}
		enc2, err := b2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatal("accepted bundle does not round-trip byte-identically")
		}
	})
}
