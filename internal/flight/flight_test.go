package flight

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

// testRecorder builds a recorder over a manual clock.
func testRecorder(capacity, window int) (*Recorder, *sim.Time) {
	var now sim.Time
	r := NewRecorder(func() sim.Time { return now }, capacity, window, "skylake", 42)
	return r, &now
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.MailboxWrite(0, -100, 0, OutcomeAccepted, 1)
	r.PStateRetarget(0, 30, 900000)
	r.GuardPoll(0, 30, -100, false)
	r.GuardIntervention(0, -200, 0, true)
	r.EnergySegment(0, 1.5)
	r.Fault(0, 1, -200)
	r.Crash(0, -250)
	r.Trigger(CauseManual, 0, "nil")
	r.Seal()
	r.SetGuardView(&GuardView{})
	if got := r.Bundles(); got != nil {
		t.Fatalf("nil recorder bundles = %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", st)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r, now := testRecorder(4, 2)
	for i := 0; i < 6; i++ {
		*now = sim.Time(i)
		r.GuardPoll(0, 30, -i, false)
	}
	st := r.Stats()
	if st.Records != 6 || st.Overwrites != 2 || st.Len != 4 || st.Cap != 4 {
		t.Fatalf("stats = %+v, want records=6 overwrites=2 len=4 cap=4", st)
	}
	// A trigger snapshot exposes the surviving window: appends 2..5 plus the
	// trigger record itself, in time order.
	r.Trigger(CauseManual, 0, "inspect")
	r.Seal()
	bs := r.Bundles()
	if len(bs) != 1 {
		t.Fatalf("bundles = %d, want 1", len(bs))
	}
	recs := bs[0].Records
	if len(recs) != 4 {
		t.Fatalf("snapshot records = %d, want 4 (ring cap)", len(recs))
	}
	// Oldest two polls (B=0,-1) must have been evicted; the trigger is last.
	if recs[0].B != -3 || recs[len(recs)-1].Kind != KindTrigger {
		t.Fatalf("snapshot window wrong: first B=%d last kind=%v", recs[0].B, recs[len(recs)-1].Kind)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("snapshot not time-ordered at %d", i)
		}
	}
}

func TestTriggerCaptureWindow(t *testing.T) {
	r, now := testRecorder(64, 3)
	for i := 0; i < 5; i++ {
		*now = sim.Time(i)
		r.GuardPoll(1, 30, -50, false)
	}
	*now = 5
	r.Trigger(CauseFault, 1, "victim faulted")
	// Post-trigger records: exactly window(3) more seal the bundle.
	for i := 0; i < 4; i++ {
		*now = sim.Time(6 + i)
		r.MailboxWrite(1, -230, 0, OutcomeAccepted, 0)
	}
	bs := r.Bundles()
	if len(bs) != 1 {
		t.Fatalf("bundles = %d, want 1 (sealed at window)", len(bs))
	}
	b := bs[0]
	if b.Cause != string(CauseFault) || b.Core != 1 || b.Seq != 1 || b.TriggerPS != 5 {
		t.Fatalf("bundle header = %+v", b)
	}
	// 5 polls + trigger + 3 post records.
	if len(b.Records) != 9 {
		t.Fatalf("bundle records = %d, want 9", len(b.Records))
	}
	if got := b.Records[len(b.Records)-1]; got.Kind != KindMailboxWrite || got.At != 8 {
		t.Fatalf("last captured record = %+v", got)
	}
	st := r.Stats()
	if st.Triggers != 1 || st.Captures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetriggerDuringOpenCapture(t *testing.T) {
	r, now := testRecorder(64, 10)
	*now = 1
	r.Trigger(CauseFault, 0, "first")
	*now = 2
	r.Trigger(CauseFault, 0, "second") // same capture, counted
	r.Seal()
	st := r.Stats()
	if st.Triggers != 2 || st.Captures != 1 {
		t.Fatalf("stats = %+v, want triggers=2 captures=1", st)
	}
	bs := r.Bundles()
	if len(bs) != 1 || bs[0].Detail != "first" {
		t.Fatalf("bundles = %+v", bs)
	}
	// Both trigger records are in the window.
	trigs := 0
	for _, rec := range bs[0].Records {
		if rec.Kind == KindTrigger {
			trigs++
		}
	}
	if trigs != 2 {
		t.Fatalf("trigger records = %d, want 2", trigs)
	}
}

func TestSealWithoutTriggerIsNoOp(t *testing.T) {
	r, _ := testRecorder(8, 2)
	r.GuardPoll(0, 30, -10, false)
	r.Seal()
	if st := r.Stats(); st.Captures != 0 || st.Bundles != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBundleRetentionCap(t *testing.T) {
	r, now := testRecorder(16, 1)
	for i := 0; i < DefaultMaxBundles+3; i++ {
		*now = sim.Time(i * 2)
		r.Trigger(CauseManual, 0, "again")
		*now = sim.Time(i*2 + 1)
		r.GuardPoll(0, 30, 0, false) // seals (window 1)
	}
	st := r.Stats()
	if st.Captures != uint64(DefaultMaxBundles+3) {
		t.Fatalf("captures = %d", st.Captures)
	}
	if st.Bundles != DefaultMaxBundles || st.BundlesDropped != 3 {
		t.Fatalf("bundles=%d dropped=%d, want %d/3", st.Bundles, st.BundlesDropped, DefaultMaxBundles)
	}
	// Retained bundles are the first N, in capture order.
	for i, b := range r.Bundles() {
		if b.Seq != i+1 {
			t.Fatalf("bundle %d seq = %d", i, b.Seq)
		}
	}
}

// TestRecorderAppendAllocs asserts the acceptance criterion: the
// steady-state append path performs zero allocations per record.
func TestRecorderAppendAllocs(t *testing.T) {
	r, _ := testRecorder(1024, 16)
	core := 0
	if got := testing.AllocsPerRun(2048, func() {
		r.GuardPoll(core, 30, -120, false)
		r.MailboxWrite(core, -120, 0, OutcomeAccepted, 7)
		r.PStateRetarget(core, 30, 850000)
		r.EnergySegment(core, 2.25)
	}); got != 0 {
		t.Fatalf("steady-state append allocates %v allocs/op, want 0", got)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	r, now := testRecorder(32, 2)
	r.SetGuardView(&GuardView{
		Model: "skylake", BusMHz: 100, MarginMV: 15, SafeMV: 0,
		Thresholds:  []RatioThreshold{{Ratio: 30, ThresholdMV: -195}, {Ratio: 40, ThresholdMV: -160}},
		PollPeriodP: 100_000_000,
	})
	*now = 10
	r.MailboxWrite(1, -230, 0, OutcomeAccepted, 0xdeadbeef)
	*now = 20
	r.Fault(1, 3, -230)
	r.Trigger(CauseFault, 1, "detail text")
	*now = 30
	r.GuardPoll(1, 30, -230, true)
	r.GuardIntervention(1, -230, 0, true)
	b := r.Bundles()[0]

	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode of decoded bundle is not byte-identical")
	}
	if got.Guard == nil || len(got.Guard.Thresholds) != 2 {
		t.Fatalf("guard view lost: %+v", got.Guard)
	}
	if got.Records[0].Span != 0xdeadbeef {
		t.Fatalf("span id lost: %+v", got.Records[0])
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	r, now := testRecorder(8, 1)
	for i := 0; i < 3; i++ {
		*now = sim.Time(i * 10)
		r.Trigger(CauseCrash, 0, "boom")
		*now = sim.Time(i*10 + 1)
		r.GuardPoll(0, 30, 0, false)
	}
	bs := r.Bundles()
	data, err := EncodeAll(bs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d bundles, want 3", len(got))
	}
	for i, b := range got {
		if b.Seq != i+1 {
			t.Fatalf("bundle %d seq = %d", i, b.Seq)
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	r, _ := testRecorder(8, 1)
	r.Trigger(CauseManual, 0, "x")
	r.Seal()
	good, err := r.Bundles()[0].Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrBundleTruncated},
		{"short header", func(b []byte) []byte { return b[:10] }, ErrBundleTruncated},
		{"bad magic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c }, ErrBundleMagic},
		{"bad version", func(b []byte) []byte { c := append([]byte(nil), b...); c[5] = 99; return c }, ErrBundleVersion},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, ErrBundleTruncated},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 1
			return c
		}, ErrBundleChecksum},
		{"oversized length", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := 8; i < 16; i++ {
				c[i] = 0xff
			}
			return c
		}, ErrBundlePayload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeBundle(tc.mutate(good))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want class %v", err, tc.wantErr)
			}
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("err %T is not *BundleError", err)
			}
		})
	}
}

func TestTimelineAndDiff(t *testing.T) {
	r, now := testRecorder(16, 2)
	*now = 1_000_000
	r.MailboxWrite(1, -230, 0, OutcomeAccepted, 1)
	*now = 2_000_000
	r.Fault(1, 1, -230)
	r.Trigger(CauseFault, 1, "faulted")
	*now = 3_000_000
	r.GuardIntervention(1, -230, 0, true)
	r.Seal()
	b := r.Bundles()[0]

	var tl strings.Builder
	if err := b.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	out := tl.String()
	for _, want := range []string{"cause=fault", "mailbox_write", "TRIGGER", "intervention"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}

	var d strings.Builder
	same, err := Diff(&d, b, b)
	if err != nil || !same {
		t.Fatalf("self-diff same=%v err=%v:\n%s", same, err, d.String())
	}

	other := *b
	other.Cause = string(CauseCrash)
	other.Records = b.Records[:len(b.Records)-1]
	d.Reset()
	same, err = Diff(&d, b, &other)
	if err != nil || same {
		t.Fatalf("diff same=%v err=%v", same, err)
	}
	if !strings.Contains(d.String(), "cause: fault vs crash") {
		t.Fatalf("diff output missing cause delta:\n%s", d.String())
	}
}
