package buildinfo

import (
	"strings"
	"testing"

	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

func TestGetReportsGoVersion(t *testing.T) {
	i := Get()
	if i.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if !strings.Contains(i.String(), i.GoVersion) {
		t.Fatalf("String() %q omits go version", i.String())
	}
}

func TestFprint(t *testing.T) {
	var sb strings.Builder
	Fprint(&sb, "plugvolt-guard")
	if !strings.HasPrefix(sb.String(), "plugvolt-guard: ") {
		t.Fatalf("output %q", sb.String())
	}
}

func TestRegisterPublishesGauge(t *testing.T) {
	now := sim.Time(0)
	reg := telemetry.NewRegistry(func() sim.Time { return now })
	Register(reg)
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "plugvolt_build_info{") || !strings.Contains(out, "} 1") {
		t.Fatalf("build info gauge missing:\n%s", out)
	}
	for _, label := range []string{"module=", "version=", "go_version=", "revision="} {
		if !strings.Contains(out, label) {
			t.Errorf("label %s missing:\n%s", label, out)
		}
	}
}

func TestShort(t *testing.T) {
	if got := short("0123456789abcdef"); got != "0123456789ab" {
		t.Fatalf("short = %q", got)
	}
	if got := short("abc"); got != "abc" {
		t.Fatalf("short = %q", got)
	}
}
