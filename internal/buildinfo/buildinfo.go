// Package buildinfo surfaces the binary's module version and VCS stamp —
// the reproducibility metadata every exported artifact should carry. The
// paper's grids and benchmark baselines are only comparable when the code
// that produced them is identified; this package reads the information the
// Go linker already embeds (runtime/debug.ReadBuildInfo) so no build-system
// plumbing is needed.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"plugvolt/internal/telemetry"
)

// Info is the subset of the embedded build metadata the tools expose.
type Info struct {
	// Module is the main module path ("plugvolt").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for tree builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that produced the binary.
	GoVersion string `json:"go_version"`
	// Revision and Time are the VCS stamp when the build had one.
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
}

// Get reads the embedded build information. It degrades gracefully: a
// binary built without module support still reports the Go version.
func Get() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// short truncates a revision hash for display.
func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// String renders a one-line identification.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s (%s)", orDefault(i.Module, "plugvolt"),
		orDefault(i.Version, "(devel)"), i.GoVersion)
	if i.Revision != "" {
		s += fmt.Sprintf(" rev %s", short(i.Revision))
		if i.Dirty {
			s += "+dirty"
		}
	}
	return s
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// Fprint writes the `-version` output for the named tool.
func Fprint(w io.Writer, tool string) {
	i := Get()
	fmt.Fprintf(w, "%s: %s\n", tool, i)
	if i.Time != "" {
		fmt.Fprintf(w, "built: %s\n", i.Time)
	}
}

// Register publishes the build identity as the conventional
// plugvolt_build_info gauge: constant value 1 with the identifying fields
// as labels, so PromQL joins can annotate every other series with the
// version that produced it.
func Register(reg *telemetry.Registry) {
	i := Get()
	reg.Gauge("plugvolt_build_info",
		"build identity; constant 1, metadata in labels",
		telemetry.Labels{
			"module":     orDefault(i.Module, "plugvolt"),
			"version":    orDefault(i.Version, "(devel)"),
			"go_version": i.GoVersion,
			"revision":   short(i.Revision),
		}).Set(1)
}
