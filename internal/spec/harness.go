package spec

import (
	"errors"
	"fmt"
	"math"
	mrand "math/rand"

	"plugvolt/internal/cpu"
	"plugvolt/internal/kernel"
	"plugvolt/internal/sim"
)

// Table2Row is one regenerated row of the paper's Table 2.
type Table2Row struct {
	Benchmark string
	// BaseWithout/BaseWith are SPECrate base scores without/with the
	// polling module; Peak* are the peak-tuning scores.
	BaseWithout, BaseWith float64
	BaseSlowdownPct       float64
	PeakWithout, PeakWith float64
	PeakSlowdownPct       float64
}

// Table2 is the full regenerated table.
type Table2 struct {
	Model string
	Rows  []Table2Row
	// MeanAbsBasePct / MeanAbsPeakPct / MeanAbsPct summarize the
	// magnitude of the measured slowdowns (the paper reports 0.28%).
	MeanAbsBasePct, MeanAbsPeakPct, MeanAbsPct float64
	// DirectOverheadPct is the polling kthread's measured stolen-time
	// share of its pinned core.
	DirectOverheadPct float64
}

// HarnessConfig parameterizes the overhead measurement.
type HarnessConfig struct {
	// Copies is the number of rate copies (one per core).
	Copies int
	// UnitsPerRun is the virtual work per copy per measurement.
	UnitsPerRun int
	// NoiseSigmaPct is the run-to-run measurement noise (SPEC reporting
	// rules tolerate small variation; the paper's table is visibly
	// noise-dominated). Deterministic per (benchmark, mode) from Seed.
	NoiseSigmaPct float64
	// Seed drives the deterministic noise.
	Seed int64
}

// DefaultHarnessConfig matches the evaluated machines (4 copies) with the
// noise magnitude evident in the published table.
func DefaultHarnessConfig() HarnessConfig {
	return HarnessConfig{
		Copies:        4,
		UnitsPerRun:   200,
		NoiseSigmaPct: 0.45,
		Seed:          2017,
	}
}

// Harness measures polling overhead on a platform. The guard module is
// installed/uninstalled by the caller between Measure calls; the harness
// only runs workloads and accounts stolen time.
type Harness struct {
	P   *cpu.Platform
	K   *kernel.Kernel
	cfg HarnessConfig
}

// NewHarness validates and builds the harness.
func NewHarness(p *cpu.Platform, k *kernel.Kernel, cfg HarnessConfig) (*Harness, error) {
	if p == nil || k == nil {
		return nil, errors.New("spec: harness needs platform and kernel")
	}
	if cfg.Copies <= 0 || cfg.Copies > p.NumCores() {
		return nil, fmt.Errorf("spec: copies %d out of range (1..%d)", cfg.Copies, p.NumCores())
	}
	if cfg.UnitsPerRun <= 0 {
		return nil, errors.New("spec: units per run must be positive")
	}
	if cfg.NoiseSigmaPct < 0 {
		return nil, errors.New("spec: negative noise")
	}
	return &Harness{P: p, K: k, cfg: cfg}, nil
}

// runRate executes one rate measurement of b: Copies copies, one per core,
// in virtual time, at the given P-state ratio. It returns the aggregate
// rate normalized so the no-interference rate equals ref.
func (h *Harness) runRate(b *Benchmark, ratio uint8, ref float64, noise float64) (float64, error) {
	p := h.P
	for c := 0; c < h.cfg.Copies; c++ {
		if err := p.SetRatioViaMSR(c, ratio); err != nil {
			return 0, err
		}
	}
	p.SettleAll()

	// Ideal per-copy runtime at this frequency.
	period := p.Core(0).PLL.PeriodPS()
	cycles := float64(h.cfg.UnitsPerRun) * float64(b.InstrPerUnit) * b.WeightedCPI()
	ideal := sim.Duration(cycles * period)

	// Record stolen time before, advance the window, read it after: each
	// copy's wall time inflates by the kernel time stolen from its core.
	before := make([]sim.Duration, h.cfg.Copies)
	for c := range before {
		before[c] = h.K.StolenTime(c)
	}
	p.Sim.RunFor(ideal)
	rate := 0.0
	perCopyRef := ref / float64(h.cfg.Copies)
	for c := 0; c < h.cfg.Copies; c++ {
		stolen := h.K.StolenTime(c) - before[c]
		wall := ideal + stolen
		rate += perCopyRef * float64(ideal) / float64(wall)
	}
	return rate * (1 + noise/100), nil
}

// noiseFor derives the deterministic measurement noise (in percent) for a
// (benchmark, mode) pair.
func (h *Harness) noiseFor(name, mode string) float64 {
	hash := int64(1469598103934665603)
	for _, c := range name + "|" + mode {
		hash = (hash ^ int64(c)) * 1099511628211
	}
	rng := mrand.New(mrand.NewSource(hash ^ h.cfg.Seed))
	return rng.NormFloat64() * h.cfg.NoiseSigmaPct
}

// MeasureRow regenerates one Table 2 row. withGuard toggles whether the
// polling module is currently loaded (the caller manages the module; this
// just labels which measurements land in which column).
func (h *Harness) MeasureRow(b *Benchmark, loadGuard func(bool) error) (Table2Row, error) {
	row := Table2Row{Benchmark: b.Name}
	baseRatio := h.P.Spec.BaseRatio
	peakRatio := h.P.Spec.MaxTurboRatio

	type cell struct {
		ratio uint8
		ref   float64
		mode  string
		dst   *float64
		guard bool
	}
	cells := []cell{
		{baseRatio, b.RefBaseRate, "base-off", &row.BaseWithout, false},
		{baseRatio, b.RefBaseRate, "base-on", &row.BaseWith, true},
		{peakRatio, b.RefPeakRate, "peak-off", &row.PeakWithout, false},
		{peakRatio, b.RefPeakRate, "peak-on", &row.PeakWith, true},
	}
	for _, c := range cells {
		if err := loadGuard(c.guard); err != nil {
			return row, err
		}
		r, err := h.runRate(b, c.ratio, c.ref, h.noiseFor(b.Name, c.mode))
		if err != nil {
			return row, err
		}
		*c.dst = r
	}
	row.BaseSlowdownPct = (row.BaseWith - row.BaseWithout) / row.BaseWithout * 100
	row.PeakSlowdownPct = (row.PeakWith - row.PeakWithout) / row.PeakWithout * 100
	return row, nil
}

// MeasureTable regenerates the full Table 2. loadGuard must load (true) or
// unload (false) the polling module; guardCore identifies the kthread's
// pinned core for the direct-overhead figure.
func (h *Harness) MeasureTable(loadGuard func(bool) error, guardCore int) (*Table2, error) {
	t := &Table2{Model: h.P.Spec.Codename}
	var sumBase, sumPeak float64
	for _, b := range All() {
		row, err := h.MeasureRow(b, loadGuard)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		sumBase += math.Abs(row.BaseSlowdownPct)
		sumPeak += math.Abs(row.PeakSlowdownPct)
	}
	n := float64(len(t.Rows))
	t.MeanAbsBasePct = sumBase / n
	t.MeanAbsPeakPct = sumPeak / n
	t.MeanAbsPct = (sumBase + sumPeak) / (2 * n)

	// Direct polling cost measurement: run the guard alone for a window.
	if err := loadGuard(true); err != nil {
		return nil, err
	}
	h.K.ResetStolenTime()
	window := 500 * sim.Millisecond
	before := h.K.StolenTime(guardCore)
	h.P.Sim.RunFor(window)
	t.DirectOverheadPct = float64(h.K.StolenTime(guardCore)-before) / float64(window) * 100
	if err := loadGuard(false); err != nil {
		return nil, err
	}
	return t, nil
}
