package spec

import (
	"math"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/kernel"
	"plugvolt/internal/models"
	"plugvolt/internal/sim"
)

func TestTwentyThreeBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("benchmark count %d, want 23 (Table 2)", len(all))
	}
	fp, ir := 0, 0
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		switch b.Suite {
		case FPRate:
			fp++
		case IntRate:
			ir++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		if b.Kernel == nil {
			t.Errorf("%s: nil kernel", b.Name)
		}
		if b.InstrPerUnit <= 0 || b.RefBaseRate <= 0 || b.RefPeakRate <= 0 {
			t.Errorf("%s: bad parameters", b.Name)
		}
		sum := 0.0
		for _, f := range b.Mix {
			sum += f
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("%s: mix sums to %v", b.Name, sum)
		}
		cpi := b.WeightedCPI()
		if cpi <= 0 || cpi > 1 {
			t.Errorf("%s: weighted CPI %v", b.Name, cpi)
		}
	}
	if fp != 13 || ir != 10 {
		t.Fatalf("suite split %d FP / %d INT, want 13/10", fp, ir)
	}
}

func TestPaperReferenceRates(t *testing.T) {
	// Spot-check normalization constants against Table 2.
	cases := map[string][2]float64{
		"503.bwaves_r":    {628.59, 604.21},
		"519.lbm_r":       {224.08, 176.56},
		"500.perlbench_r": {295.87511, 253.71},
		"557.xz_r":        {387.71, 373.41},
	}
	for name, want := range cases {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if b.RefBaseRate != want[0] || b.RefPeakRate != want[1] {
			t.Errorf("%s ref rates %v/%v, want %v/%v", name, b.RefBaseRate, b.RefPeakRate, want[0], want[1])
		}
	}
	if _, ok := ByName("599.nonexistent"); ok {
		t.Fatal("found nonexistent benchmark")
	}
}

func TestKernelsDeterministicAndDistinct(t *testing.T) {
	a := Checksums()
	b := Checksums()
	if len(a) != 23 {
		t.Fatalf("checksum count %d", len(a))
	}
	for name, v := range a {
		if b[name] != v {
			t.Errorf("%s: kernel not deterministic", name)
		}
	}
	// All kernels must actually compute something different from each
	// other (no copy-paste kernels).
	inv := map[uint64][]string{}
	for name, v := range a {
		inv[v] = append(inv[v], name)
	}
	for v, names := range inv {
		if len(names) > 1 {
			t.Errorf("kernels %v share checksum %x", names, v)
		}
	}
}

func TestKernelsScaleWithWork(t *testing.T) {
	// Doubling n must change the state evolution for (nearly) all kernels:
	// a kernel ignoring n would be a stub.
	for _, b := range All() {
		if b.Kernel(2) == b.Kernel(1) && b.Kernel(3) == b.Kernel(1) {
			t.Errorf("%s: kernel output independent of work amount", b.Name)
		}
	}
}

func TestNamesAndSorting(t *testing.T) {
	names := Names()
	if len(names) != 23 || names[0] != "503.bwaves_r" {
		t.Fatalf("Names() = %v...", names[:1])
	}
	sorted := SortedBySuite()
	for i := 0; i < 13; i++ {
		if sorted[i].Suite != FPRate {
			t.Fatalf("position %d not FP after sort", i)
		}
	}
	for i := 13; i < 23; i++ {
		if sorted[i].Suite != IntRate {
			t.Fatalf("position %d not INT after sort", i)
		}
	}
}

// table2Rig builds platform + kernel + guard-toggling closure.
func table2Rig(t *testing.T) (*Harness, func(bool) error, *core.Guard) {
	t.Helper()
	spec, err := models.CometLake() // the paper runs Table 2 on Comet Lake
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 2017)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	ch, err := core.NewCharacterizer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(p.Sim, p)
	guard, err := core.NewGuard(grid.UnsafeSet(), spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(p, k, DefaultHarnessConfig())
	if err != nil {
		t.Fatal(err)
	}
	loadGuard := func(on bool) error {
		loaded := k.Loaded(core.ModuleName)
		switch {
		case on && !loaded:
			return k.Load(guard.Module())
		case !on && loaded:
			return k.Unload(core.ModuleName)
		}
		return nil
	}
	return h, loadGuard, guard
}

func TestHarnessValidation(t *testing.T) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 1)
	k := kernel.New(p.Sim, p)
	if _, err := NewHarness(nil, k, DefaultHarnessConfig()); err == nil {
		t.Fatal("nil platform accepted")
	}
	bad := DefaultHarnessConfig()
	bad.Copies = 0
	if _, err := NewHarness(p, k, bad); err == nil {
		t.Fatal("zero copies accepted")
	}
	bad = DefaultHarnessConfig()
	bad.Copies = 99
	if _, err := NewHarness(p, k, bad); err == nil {
		t.Fatal("too many copies accepted")
	}
	bad = DefaultHarnessConfig()
	bad.UnitsPerRun = 0
	if _, err := NewHarness(p, k, bad); err == nil {
		t.Fatal("zero units accepted")
	}
	bad = DefaultHarnessConfig()
	bad.NoiseSigmaPct = -1
	if _, err := NewHarness(p, k, bad); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestTable2SingleRow(t *testing.T) {
	h, loadGuard, _ := table2Rig(t)
	b, _ := ByName("503.bwaves_r")
	row, err := h.MeasureRow(b, loadGuard)
	if err != nil {
		t.Fatal(err)
	}
	// Rates are near the published normalization.
	if math.Abs(row.BaseWithout-628.59)/628.59 > 0.03 {
		t.Fatalf("base rate %v too far from reference", row.BaseWithout)
	}
	if math.Abs(row.PeakWithout-604.21)/604.21 > 0.03 {
		t.Fatalf("peak rate %v too far from reference", row.PeakWithout)
	}
	// Slowdowns are small (noise + sub-percent overhead).
	if math.Abs(row.BaseSlowdownPct) > 3 || math.Abs(row.PeakSlowdownPct) > 3 {
		t.Fatalf("slowdowns implausible: %+v", row)
	}
}

func TestTable2FullRegeneration(t *testing.T) {
	h, loadGuard, guard := table2Rig(t)
	tab, err := h.MeasureTable(loadGuard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 23 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Model != "Comet Lake" {
		t.Fatalf("model %q", tab.Model)
	}
	// Headline claim: overhead is a fraction of a percent, the order of
	// the paper's 0.28%.
	if tab.MeanAbsPct <= 0 || tab.MeanAbsPct > 1.0 {
		t.Fatalf("mean |slowdown| = %.3f%%, want (0, 1]", tab.MeanAbsPct)
	}
	// Direct kthread cost also sub-percent and nonzero.
	if tab.DirectOverheadPct <= 0 || tab.DirectOverheadPct > 1.0 {
		t.Fatalf("direct overhead %.3f%%", tab.DirectOverheadPct)
	}
	if guard.Checks == 0 {
		t.Fatal("guard never polled during the measurement")
	}
	// The module must end the run unloaded (loadGuard(false) at the end).
	if h.K.Loaded(core.ModuleName) {
		t.Fatal("module left loaded")
	}
}

func TestTable2Deterministic(t *testing.T) {
	h1, lg1, _ := table2Rig(t)
	h2, lg2, _ := table2Rig(t)
	b, _ := ByName("505.mcf_r")
	r1, err := h1.MeasureRow(b, lg1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.MeasureRow(b, lg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BaseWith != r2.BaseWith || r1.PeakSlowdownPct != r2.PeakSlowdownPct {
		t.Fatalf("Table 2 row not reproducible: %+v vs %+v", r1, r2)
	}
}

func TestStolenTimeActuallySlowsRates(t *testing.T) {
	// With an artificially expensive poll, the slowdown must become
	// clearly visible — the measurement is causal, not cosmetic.
	h, loadGuard, _ := table2Rig(t)
	h.cfg.NoiseSigmaPct = 0 // isolate the causal effect
	h.K.Costs.Rdmsr = 200 * sim.Microsecond
	h.K.Costs.KthreadWake = 500 * sim.Microsecond
	b, _ := ByName("519.lbm_r")
	row, err := h.MeasureRow(b, loadGuard)
	if err != nil {
		t.Fatal(err)
	}
	if row.BaseWith >= row.BaseWithout {
		t.Fatalf("expensive polling did not reduce rate: %+v", row)
	}
	if row.BaseSlowdownPct > -1 {
		t.Fatalf("slowdown %.3f%% too small for 1000x cost inflation", row.BaseSlowdownPct)
	}
}

func BenchmarkNativeKernels(b *testing.B) {
	for _, bench := range All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= bench.Kernel(10)
			}
			_ = sink
		})
	}
}
