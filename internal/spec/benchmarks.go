// Package spec provides the SPEC CPU2017 rate-suite stand-in used to
// regenerate Table 2 (polling-countermeasure overhead).
//
// Real SPEC2017 is proprietary, so each of the 23 benchmarks in the paper's
// table is represented by (a) a deterministic Go compute kernel in the
// spirit of the original workload — used by `go test -bench` for native
// measurements — and (b) an instruction-mix profile consumed by the
// virtual-time rate harness, which measures how much throughput the polling
// kthread steals.
//
// Reference rates are normalized to the paper's published "without polling"
// columns so regenerated rows are directly comparable to Table 2; only the
// *slowdown* columns are measured quantities here.
package spec

import (
	"math"
	"sort"

	"plugvolt/internal/cpu"
)

// Suite distinguishes SPECrate2017 Floating Point from Integer.
type Suite string

// Suite values.
const (
	FPRate  Suite = "fprate"
	IntRate Suite = "intrate"
)

// Benchmark is one SPEC2017-rate workload stand-in.
type Benchmark struct {
	// Name is the SPEC identifier, e.g. "503.bwaves_r".
	Name  string
	Suite Suite
	// Mix is the instruction-class mix of the hot loops (fractions sum
	// to 1); feeds the virtual-time execution model.
	Mix map[cpu.Class]float64
	// InstrPerUnit is the instruction count of one work unit.
	InstrPerUnit int
	// RefBaseRate / RefPeakRate are the paper's measured "without polling"
	// rates, used as normalization so regenerated rows are recognizable.
	RefBaseRate, RefPeakRate float64
	// Kernel is the native Go compute kernel: it performs `n` work units
	// and returns a checksum (consumed so the compiler cannot elide it).
	Kernel func(n int) uint64
}

// WeightedCPI returns the mix-weighted throughput CPI of the benchmark on
// the simulated core model.
func (b *Benchmark) WeightedCPI() float64 {
	cpi := 0.0
	for class, frac := range b.Mix {
		cpi += frac * throughputCPI(class)
	}
	return cpi
}

// throughputCPI mirrors the cpu package's class throughputs for the
// analytic model (kept here to avoid exporting cpu internals).
func throughputCPI(c cpu.Class) float64 {
	switch c {
	case cpu.ClassIMul, cpu.ClassAES:
		return 1.0
	case cpu.ClassFMA, cpu.ClassLoad:
		return 0.5
	default:
		return 0.25
	}
}

// mix builds an instruction mix; the four weights are FMA, load, ALU, imul.
func mix(fma, load, alu, imul float64) map[cpu.Class]float64 {
	return map[cpu.Class]float64{
		cpu.ClassFMA:  fma,
		cpu.ClassLoad: load,
		cpu.ClassALU:  alu,
		cpu.ClassIMul: imul,
	}
}

// All returns the 23 Table-2 benchmarks in paper order.
func All() []*Benchmark {
	return []*Benchmark{
		// ---- SPECrate2017 Floating Point ----
		{Name: "503.bwaves_r", Suite: FPRate, Mix: mix(0.55, 0.30, 0.13, 0.02), InstrPerUnit: 4000, RefBaseRate: 628.59, RefPeakRate: 604.21, Kernel: kBwaves},
		{Name: "507.cactuBSSN_r", Suite: FPRate, Mix: mix(0.50, 0.32, 0.15, 0.03), InstrPerUnit: 5200, RefBaseRate: 222.95, RefPeakRate: 202.87, Kernel: kCactu},
		{Name: "508.namd_r", Suite: FPRate, Mix: mix(0.60, 0.25, 0.13, 0.02), InstrPerUnit: 3600, RefBaseRate: 175.96, RefPeakRate: 179.55, Kernel: kNamd},
		{Name: "510.parest_r", Suite: FPRate, Mix: mix(0.45, 0.38, 0.15, 0.02), InstrPerUnit: 4400, RefBaseRate: 387.96, RefPeakRate: 324.46, Kernel: kParest},
		{Name: "511.povray_r", Suite: FPRate, Mix: mix(0.48, 0.27, 0.22, 0.03), InstrPerUnit: 3000, RefBaseRate: 328.67, RefPeakRate: 267.29, Kernel: kPovray},
		{Name: "519.lbm_r", Suite: FPRate, Mix: mix(0.58, 0.32, 0.09, 0.01), InstrPerUnit: 5000, RefBaseRate: 224.08, RefPeakRate: 176.56, Kernel: kLbm},
		{Name: "521.wrf_r", Suite: FPRate, Mix: mix(0.52, 0.30, 0.16, 0.02), InstrPerUnit: 4800, RefBaseRate: 404.21, RefPeakRate: 428.21, Kernel: kWrf},
		{Name: "526.blender_r", Suite: FPRate, Mix: mix(0.44, 0.28, 0.25, 0.03), InstrPerUnit: 3400, RefBaseRate: 256.54, RefPeakRate: 239.52, Kernel: kBlender},
		{Name: "527.cam4_r", Suite: FPRate, Mix: mix(0.47, 0.31, 0.20, 0.02), InstrPerUnit: 4600, RefBaseRate: 315.77, RefPeakRate: 324.12, Kernel: kCam4},
		{Name: "538.imagick_r", Suite: FPRate, Mix: mix(0.50, 0.33, 0.15, 0.02), InstrPerUnit: 3800, RefBaseRate: 401.88, RefPeakRate: 318.06, Kernel: kImagick},
		{Name: "544.nab_r", Suite: FPRate, Mix: mix(0.56, 0.27, 0.15, 0.02), InstrPerUnit: 3500, RefBaseRate: 315.25, RefPeakRate: 282.02, Kernel: kNab},
		{Name: "549.fotonik3d_r", Suite: FPRate, Mix: mix(0.57, 0.33, 0.09, 0.01), InstrPerUnit: 5400, RefBaseRate: 418.76, RefPeakRate: 415.46, Kernel: kFotonik},
		{Name: "554.roms_r", Suite: FPRate, Mix: mix(0.54, 0.31, 0.13, 0.02), InstrPerUnit: 5000, RefBaseRate: 322.51, RefPeakRate: 279.39, Kernel: kRoms},
		// ---- SPECrate2017 Integer ----
		{Name: "500.perlbench_r", Suite: IntRate, Mix: mix(0.02, 0.40, 0.52, 0.06), InstrPerUnit: 2600, RefBaseRate: 295.87511, RefPeakRate: 253.71, Kernel: kPerlbench},
		{Name: "502.gcc_r", Suite: IntRate, Mix: mix(0.01, 0.43, 0.52, 0.04), InstrPerUnit: 3100, RefBaseRate: 221.4159, RefPeakRate: 218.91, Kernel: kGcc},
		{Name: "505.mcf_r", Suite: IntRate, Mix: mix(0.01, 0.52, 0.44, 0.03), InstrPerUnit: 3300, RefBaseRate: 339.97, RefPeakRate: 297.68, Kernel: kMcf},
		{Name: "520.omnetpp_r", Suite: IntRate, Mix: mix(0.02, 0.46, 0.48, 0.04), InstrPerUnit: 2900, RefBaseRate: 509.805, RefPeakRate: 479.08, Kernel: kOmnetpp},
		{Name: "523.xalancbmk_r", Suite: IntRate, Mix: mix(0.01, 0.45, 0.50, 0.04), InstrPerUnit: 2700, RefBaseRate: 287.7046, RefPeakRate: 283.57, Kernel: kXalanc},
		{Name: "525.x264_r", Suite: IntRate, Mix: mix(0.06, 0.40, 0.46, 0.08), InstrPerUnit: 2400, RefBaseRate: 318.11903, RefPeakRate: 290.76, Kernel: kX264},
		{Name: "531.deepsjeng_r", Suite: IntRate, Mix: mix(0.01, 0.37, 0.55, 0.07), InstrPerUnit: 2200, RefBaseRate: 306.148284, RefPeakRate: 284.09, Kernel: kDeepsjeng},
		{Name: "541.leela_r", Suite: IntRate, Mix: mix(0.02, 0.39, 0.53, 0.06), InstrPerUnit: 2500, RefBaseRate: 417.2528, RefPeakRate: 383.03, Kernel: kLeela},
		{Name: "548.exchange2_r", Suite: IntRate, Mix: mix(0.00, 0.34, 0.61, 0.05), InstrPerUnit: 2000, RefBaseRate: 345.38, RefPeakRate: 248.6, Kernel: kExchange2},
		{Name: "557.xz_r", Suite: IntRate, Mix: mix(0.01, 0.44, 0.49, 0.06), InstrPerUnit: 2800, RefBaseRate: 387.71, RefPeakRate: 373.41, Kernel: kXz},
	}
}

// ByName finds a benchmark.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// Names lists all benchmark names in paper order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}

// ---------------------------------------------------------------------------
// Native Go kernels. Each does real, distinct computation in the flavor of
// its SPEC namesake and returns a checksum.
// ---------------------------------------------------------------------------

// kBwaves: blast-wave stencil — 3D 7-point Laplacian relaxation.
func kBwaves(n int) uint64 {
	const d = 12
	var g [d][d][d]float64
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				g[i][j][k] = float64(i*j + k + 1)
			}
		}
	}
	for it := 0; it < n; it++ {
		g[1][1][1] += 0.5 * float64(it+1) // moving blast source
		for i := 1; i < d-1; i++ {
			for j := 1; j < d-1; j++ {
				for k := 1; k < d-1; k++ {
					g[i][j][k] = 0.125*(g[i-1][j][k]+g[i+1][j][k]+g[i][j-1][k]+
						g[i][j+1][k]+g[i][j][k-1]+g[i][j][k+1]) + 0.25*g[i][j][k]
				}
			}
		}
	}
	acc := 0.0
	for i := 0; i < d; i++ {
		acc += g[i][i][i]
	}
	return math.Float64bits(acc)
}

// kCactu: BSSN-like finite differencing with mixed derivatives.
func kCactu(n int) uint64 {
	const d = 24
	var u, v [d][d]float64
	for i := range u {
		for j := range u[i] {
			u[i][j] = math.Sin(float64(i)) * math.Cos(float64(j))
		}
	}
	for it := 0; it < n; it++ {
		for i := 2; i < d-2; i++ {
			for j := 2; j < d-2; j++ {
				dxx := u[i-2][j] - 2*u[i][j] + u[i+2][j]
				dyy := u[i][j-2] - 2*u[i][j] + u[i][j+2]
				dxy := u[i+1][j+1] - u[i+1][j-1] - u[i-1][j+1] + u[i-1][j-1]
				v[i][j] = u[i][j] + 0.01*(dxx+dyy) + 0.0025*dxy
			}
		}
		u, v = v, u
	}
	return math.Float64bits(u[d/2][d/2])
}

// kNamd: n-body Lennard-Jones force accumulation.
func kNamd(n int) uint64 {
	const bodies = 24
	var px, py, pz, fx [bodies]float64
	for i := range px {
		px[i], py[i], pz[i] = float64(i), float64(i*i%7), float64(i%5)
	}
	for it := 0; it < n; it++ {
		for i := 0; i < bodies; i++ {
			for j := i + 1; j < bodies; j++ {
				dx, dy, dz := px[i]-px[j], py[i]-py[j], pz[i]-pz[j]
				r2 := dx*dx + dy*dy + dz*dz + 1.0
				inv := 1.0 / r2
				inv3 := inv * inv * inv
				f := inv3 * (inv3 - 0.5)
				fx[i] += f * dx
				fx[j] -= f * dx
			}
		}
	}
	return math.Float64bits(fx[0] + fx[bodies-1])
}

// kParest: Jacobi sweep on a sparse 5-point system (PDE parameter fit).
func kParest(n int) uint64 {
	const d = 32
	var x, b [d * d]float64
	for i := range b {
		b[i] = float64(i%13) * 0.1
	}
	for it := 0; it < n; it++ {
		b[(it*29)%len(b)] += 0.05 // observation update between sweeps
		for i := 1; i < d-1; i++ {
			for j := 1; j < d-1; j++ {
				k := i*d + j
				x[k] = 0.25 * (b[k] + x[k-1] + x[k+1] + x[k-d] + x[k+d])
			}
		}
	}
	acc := 0.0
	for _, v := range x {
		acc += v
	}
	return math.Float64bits(acc)
}

// kPovray: ray-sphere intersection batches.
func kPovray(n int) uint64 {
	hits := uint64(0)
	for it := 0; it < n; it++ {
		for s := 0; s < 32; s++ {
			ox, oy, oz := float64(it%17)*0.1, float64(s)*0.2, -5.0
			dx, dy, dz := 0.01*float64(s), 0.02, 1.0
			cx, cy, cz, r := 0.5, 0.5, 0.0, 1.5
			lx, ly, lz := cx-ox, cy-oy, cz-oz
			tca := lx*dx + ly*dy + lz*dz
			d2 := lx*lx + ly*ly + lz*lz - tca*tca
			if d2 < r*r {
				thc := math.Sqrt(r*r - d2)
				t0 := tca - thc
				hits += uint64(math.Float64bits(t0) & 0xFF)
			}
		}
	}
	return hits
}

// kLbm: D2Q9 lattice-Boltzmann collide step.
func kLbm(n int) uint64 {
	const cells = 64
	var f [9][cells]float64
	for q := range f {
		for c := range f[q] {
			f[q][c] = 1.0 / 9.0 * float64(q+c%3+1)
		}
	}
	w := [9]float64{4. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 36, 1. / 36, 1. / 36, 1. / 36}
	for it := 0; it < n; it++ {
		f[1][it%cells] += 0.01 // inflow perturbation
		for c := 0; c < cells; c++ {
			rho := 0.0
			for q := 0; q < 9; q++ {
				rho += f[q][c]
			}
			for q := 0; q < 9; q++ {
				eq := w[q] * rho
				f[q][c] += 0.6 * (eq - f[q][c])
			}
		}
	}
	acc := 0.0
	for c := 0; c < cells; c++ {
		acc += f[4][c] - f[0][c]
	}
	return math.Float64bits(acc)
}

// kWrf: layered atmosphere advection-diffusion column update.
func kWrf(n int) uint64 {
	const levels = 48
	var t, q [levels]float64
	for i := range t {
		t[i] = 288 - 6.5*float64(i)*0.5
		q[i] = 0.01 * math.Exp(-float64(i)/8)
	}
	for it := 0; it < n; it++ {
		for i := 1; i < levels-1; i++ {
			adv := -0.3 * (t[i] - t[i-1])
			diff := 0.05 * (t[i-1] - 2*t[i] + t[i+1])
			lat := 2.5e3 * q[i] * 0.001
			t[i] += adv + diff + lat
			q[i] *= 0.9995
		}
	}
	return math.Float64bits(t[levels/2] + q[10])
}

// kBlender: mesh vertex transform + normal renormalization.
func kBlender(n int) uint64 {
	const verts = 48
	var vx, vy, vz [verts]float64
	for i := range vx {
		vx[i], vy[i], vz[i] = float64(i)*0.3, float64(i)*0.7, float64(i)*0.1
	}
	s, c := math.Sin(0.03), math.Cos(0.03)
	for it := 0; it < n; it++ {
		for i := 0; i < verts; i++ {
			x := c*vx[i] - s*vy[i]
			y := s*vx[i] + c*vy[i]
			z := vz[i] + 0.001*x
			inv := 1.0 / math.Sqrt(x*x+y*y+z*z+1e-9)
			vx[i], vy[i], vz[i] = x*inv, y*inv, z*inv
		}
	}
	return math.Float64bits(vx[7] + vy[13] + vz[21])
}

// kCam4: column physics with saturation vapor pressure (exp-heavy).
func kCam4(n int) uint64 {
	const cols = 32
	var temp [cols]float64
	for i := range temp {
		temp[i] = 250 + float64(i)
	}
	acc := 0.0
	for it := 0; it < n; it++ {
		for i := 0; i < cols; i++ {
			es := 610.78 * math.Exp(17.27*(temp[i]-273.15)/(temp[i]-35.85))
			qs := 0.622 * es / (101325 - es)
			temp[i] += 0.001 * (qs - 0.005)
			acc += qs
		}
	}
	return math.Float64bits(acc)
}

// kImagick: 3x3 convolution over a grayscale tile.
func kImagick(n int) uint64 {
	const d = 24
	var img, out [d][d]float64
	for i := range img {
		for j := range img[i] {
			img[i][j] = float64((i*31 + j*17) % 255)
		}
	}
	kern := [3][3]float64{{0.0625, 0.125, 0.0625}, {0.125, 0.25, 0.125}, {0.0625, 0.125, 0.0625}}
	for it := 0; it < n; it++ {
		for i := 1; i < d-1; i++ {
			for j := 1; j < d-1; j++ {
				s := 0.0
				for a := -1; a <= 1; a++ {
					for b := -1; b <= 1; b++ {
						s += kern[a+1][b+1] * img[i+a][j+b]
					}
				}
				out[i][j] = s
			}
		}
		img, out = out, img
	}
	return math.Float64bits(img[d/2][d/2])
}

// kNab: nucleic-acid distance matrix + energy sum.
func kNab(n int) uint64 {
	const atoms = 28
	var x [atoms]float64
	for i := range x {
		x[i] = float64(i) * 1.5
	}
	e := 0.0
	for it := 0; it < n; it++ {
		for i := 0; i < atoms; i++ {
			for j := i + 1; j < atoms; j++ {
				d := x[i] - x[j]
				r := math.Abs(d) + 0.1
				e += 1.0/math.Pow(r, 12) - 1.0/math.Pow(r, 6)
			}
		}
		x[it%atoms] += 0.001
	}
	return math.Float64bits(e)
}

// kFotonik: 1D FDTD E/H leapfrog updates.
func kFotonik(n int) uint64 {
	const d = 96
	var e, h [d]float64
	for it := 0; it < n; it++ {
		e[d/2] += math.Sin(0.1*float64(it)) + 0.3 // source fires before the sweep
		for i := 1; i < d; i++ {
			h[i] += 0.5 * (e[i] - e[i-1])
		}
		for i := 0; i < d-1; i++ {
			e[i] += 0.5 * (h[i+1] - h[i])
		}
	}
	acc := 0.0
	for i := 0; i < d; i++ {
		acc += e[i]*float64(i+1) + h[i]
	}
	return math.Float64bits(acc)
}

// kRoms: ocean free-surface stencil with Coriolis term.
func kRoms(n int) uint64 {
	const d = 20
	var eta, u, v [d][d]float64
	for i := range eta {
		for j := range eta[i] {
			eta[i][j] = 0.1 * math.Sin(float64(i+j))
		}
	}
	for it := 0; it < n; it++ {
		for i := 1; i < d-1; i++ {
			for j := 1; j < d-1; j++ {
				u[i][j] += -9.81*0.01*(eta[i+1][j]-eta[i-1][j]) + 1e-4*v[i][j]
				v[i][j] += -9.81*0.01*(eta[i][j+1]-eta[i][j-1]) - 1e-4*u[i][j]
				eta[i][j] -= 0.01 * (u[i+1][j] - u[i-1][j] + v[i][j+1] - v[i][j-1])
			}
		}
	}
	return math.Float64bits(eta[d/2][d/2])
}

// kPerlbench: string hashing and pattern scanning.
func kPerlbench(n int) uint64 {
	text := []byte("the quick brown fox jumps over the lazy dog 0123456789 plundervolt voltjockey v0ltpwn")
	var acc uint64
	for it := 0; it < n; it++ {
		h := uint64(5381)
		for _, c := range text {
			h = h*33 ^ uint64(c)
		}
		// naive substring scan
		pat := []byte{text[it%len(text)], text[(it+3)%len(text)]}
		for i := 0; i+1 < len(text); i++ {
			if text[i] == pat[0] && text[i+1] == pat[1] {
				acc++
			}
		}
		acc ^= h
	}
	return acc
}

// kGcc: dominator-ish bitset dataflow over a small CFG.
func kGcc(n int) uint64 {
	const nodes = 48
	var succ [nodes][2]int
	for i := 0; i < nodes; i++ {
		succ[i][0] = (i*7 + 1) % nodes
		succ[i][1] = (i*13 + 5) % nodes
	}
	var in, out [nodes]uint64
	acc := uint64(0)
	for it := 0; it < n; it++ {
		for i := 0; i < nodes; i++ {
			in[i] = out[succ[i][0]] & out[succ[i][1]]
			out[i] = in[i] | 1<<uint((i+it)%64) // gen set shifts per pass
		}
		for _, v := range out {
			acc = acc*1099511628211 ^ v
		}
	}
	return acc
}

// kMcf: Bellman-Ford relaxation on a small network.
func kMcf(n int) uint64 {
	const nodes = 40
	var dist [nodes]int64
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[0] = 0
	for it := 0; it < n; it++ {
		for u := 0; u < nodes; u++ {
			for _, e := range [3]int{1, 7, 11} {
				v := (u + e) % nodes
				w := int64((u*e)%17 + 1)
				if dist[u]+w < dist[v] {
					dist[v] = dist[u] + w
				}
			}
		}
		dist[it%nodes] += int64(it % 3)
	}
	acc := uint64(0)
	for _, d := range dist {
		acc = acc*31 + uint64(d)
	}
	return acc
}

// kOmnetpp: binary-heap discrete-event churn.
func kOmnetpp(n int) uint64 {
	heap := make([]uint64, 0, 64)
	push := func(v uint64) {
		heap = append(heap, v)
		i := len(heap) - 1
		for i > 0 && heap[(i-1)/2] > heap[i] {
			heap[(i-1)/2], heap[i] = heap[i], heap[(i-1)/2]
			i = (i - 1) / 2
		}
	}
	pop := func() uint64 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < last && heap[l] < heap[m] {
				m = l
			}
			if r < last && heap[r] < heap[m] {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	seed := uint64(0x9E3779B97F4A7C15)
	acc := uint64(0)
	for i := 0; i < 32; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		push(seed >> 16)
	}
	for it := 0; it < n; it++ {
		t := pop()
		acc ^= t
		seed = seed*6364136223846793005 + 1442695040888963407
		push(t + (seed >> 48) + 1)
	}
	return acc
}

// kXalanc: tag tokenizer + depth bookkeeping (XSLT-ish).
func kXalanc(n int) uint64 {
	doc := []byte("<a><b x='1'><c>text</c></b><d/><e><f>42</f></e></a>")
	acc := uint64(0)
	for it := 0; it < n; it++ {
		depth := 0
		for i := 0; i < len(doc); i++ {
			if doc[i] == '<' {
				if i+1 < len(doc) && doc[i+1] == '/' {
					depth--
				} else {
					depth++
				}
				acc = acc*131 + uint64(depth) + uint64(doc[i])
			}
		}
		acc ^= uint64(it)
	}
	return acc
}

// kX264: 8x8 SAD block search.
func kX264(n int) uint64 {
	const d = 16
	var ref, cur [d][d]uint8
	for i := range ref {
		for j := range ref[i] {
			ref[i][j] = uint8(i*31 + j*7)
			cur[i][j] = uint8(i*29 + j*11)
		}
	}
	best := uint64(0)
	for it := 0; it < n; it++ {
		minSAD := ^uint64(0)
		for dy := 0; dy < d-8; dy++ {
			for dx := 0; dx < d-8; dx++ {
				sad := uint64(0)
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						a, b := int(cur[y][x]), int(ref[y+dy][x+dx])
						if a > b {
							sad += uint64(a - b)
						} else {
							sad += uint64(b - a)
						}
					}
				}
				if sad < minSAD {
					minSAD = sad
				}
			}
		}
		best ^= minSAD + uint64(it)
		cur[it%d][(it*3)%d]++
	}
	return best
}

// kDeepsjeng: bitboard knight-move population counting.
func kDeepsjeng(n int) uint64 {
	acc := uint64(0)
	occ := uint64(0x00FF00000000FF00)
	for it := 0; it < n; it++ {
		for sq := 0; sq < 64; sq++ {
			b := uint64(1) << uint(sq)
			moves := (b<<17 | b<<15 | b<<10 | b<<6 | b>>17 | b>>15 | b>>10 | b>>6) &^ occ
			// popcount
			x := moves
			cnt := 0
			for ; x != 0; x &= x - 1 {
				cnt++
			}
			acc += uint64(cnt)
		}
		occ = occ<<1 | occ>>63
	}
	return acc
}

// kLeela: xorshift playout scoring on a small board.
func kLeela(n int) uint64 {
	var board [81]int8
	rng := uint64(88172645463325252)
	score := uint64(0)
	for it := 0; it < n; it++ {
		for mv := 0; mv < 16; mv++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			pos := rng % 81
			if board[pos] == 0 {
				board[pos] = int8(1 + int(rng>>62)&1)
				score += uint64(pos)
			}
		}
		for i := range board {
			if board[i] != 0 && (it+i)%23 == 0 {
				board[i] = 0
			}
		}
	}
	return score ^ rng
}

// kExchange2: permutation-based recursive placement (sudoku flavor).
func kExchange2(n int) uint64 {
	acc := uint64(0)
	var place func(perm []int, used uint32, depth int) int
	place = func(perm []int, used uint32, depth int) int {
		if depth == len(perm) {
			return 1
		}
		cnt := 0
		for v := 0; v < len(perm); v++ {
			if used&(1<<uint(v)) != 0 {
				continue
			}
			if depth > 0 && (perm[depth-1]+v)%3 == 0 {
				continue
			}
			perm[depth] = v
			cnt += place(perm, used|1<<uint(v), depth+1)
		}
		return cnt
	}
	for it := 0; it < n; it++ {
		perm := make([]int, 6)
		perm[0] = it % 6
		acc += uint64(place(perm, 1<<uint(it%6), 1))
	}
	return acc
}

// kXz: LZ77-style match finding plus a range-mixer.
func kXz(n int) uint64 {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte((i * i) % 251)
	}
	acc := uint64(0)
	for it := 0; it < n; it++ {
		state := uint64(it + 1)
		for pos := 8; pos < len(data)-4; pos++ {
			bestLen := 0
			for back := 1; back <= 8; back++ {
				l := 0
				for l < 4 && data[pos+l] == data[pos-back+l] {
					l++
				}
				if l > bestLen {
					bestLen = l
				}
			}
			state = state*0x100000001B3 ^ uint64(bestLen)
		}
		acc ^= state
	}
	return acc
}

// Checksums runs every kernel once (one unit) and returns name->checksum;
// used by determinism tests.
func Checksums() map[string]uint64 {
	out := map[string]uint64{}
	for _, b := range All() {
		out[b.Name] = b.Kernel(1)
	}
	return out
}

// SortedBySuite returns the benchmarks grouped fprate-then-intrate, stable
// in paper order (the paper's Table 2 lists FP first).
func SortedBySuite() []*Benchmark {
	all := All()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Suite != all[j].Suite {
			return all[i].Suite == FPRate
		}
		return false
	})
	return all
}
