package pstate

import (
	"errors"
	"fmt"
	"sort"

	"plugvolt/internal/sim"
)

// CState describes one idle state (the paper's Sec. 1 background: "a core
// is said to be in a C-state when it is idle, wherein several components of
// the core are switched to reduced power supply").
type CState struct {
	// Name follows Intel convention (C0 = executing).
	Name string
	// Index orders states by depth (0 = running).
	Index int
	// ExitLatency is the wakeup cost.
	ExitLatency sim.Duration
	// TargetResidency is the minimum idle span for which entering pays off.
	TargetResidency sim.Duration
	// PowerFactor scales the core's C0 power while resident (1.0 = C0).
	PowerFactor float64
}

// DefaultCStates returns an Intel-typical ladder (POLL omitted).
func DefaultCStates() []CState {
	return []CState{
		{Name: "C0", Index: 0, ExitLatency: 0, TargetResidency: 0, PowerFactor: 1.00},
		{Name: "C1", Index: 1, ExitLatency: 2 * sim.Microsecond, TargetResidency: 2 * sim.Microsecond, PowerFactor: 0.55},
		{Name: "C1E", Index: 2, ExitLatency: 10 * sim.Microsecond, TargetResidency: 20 * sim.Microsecond, PowerFactor: 0.35},
		{Name: "C6", Index: 3, ExitLatency: 133 * sim.Microsecond, TargetResidency: 600 * sim.Microsecond, PowerFactor: 0.05},
	}
}

// coreIdle tracks one core's idle status.
type coreIdle struct {
	state     int // index into states
	enteredAt sim.Time
	residency map[string]sim.Duration
	entries   map[string]uint64
}

// IdleGovernor is a menu-style cpuidle governor: given a predicted idle
// span it picks the deepest state whose target residency fits.
type IdleGovernor struct {
	simr   *sim.Simulator
	states []CState
	cores  []*coreIdle
	// Wakeups counts Exit calls.
	Wakeups uint64
}

// NewIdleGovernor validates the ladder and builds per-core tracking.
func NewIdleGovernor(s *sim.Simulator, numCores int, states []CState) (*IdleGovernor, error) {
	if numCores <= 0 {
		return nil, errors.New("pstate: need at least one core")
	}
	if len(states) == 0 || states[0].Index != 0 || states[0].ExitLatency != 0 {
		return nil, errors.New("pstate: ladder must start at C0 with zero exit latency")
	}
	for i := 1; i < len(states); i++ {
		prev, cur := states[i-1], states[i]
		if cur.Index != prev.Index+1 {
			return nil, fmt.Errorf("pstate: ladder indices not contiguous at %s", cur.Name)
		}
		if cur.ExitLatency < prev.ExitLatency || cur.TargetResidency < prev.TargetResidency {
			return nil, fmt.Errorf("pstate: deeper state %s cheaper than %s", cur.Name, prev.Name)
		}
		if cur.PowerFactor >= prev.PowerFactor || cur.PowerFactor < 0 {
			return nil, fmt.Errorf("pstate: deeper state %s does not save power", cur.Name)
		}
	}
	g := &IdleGovernor{simr: s, states: states}
	for i := 0; i < numCores; i++ {
		g.cores = append(g.cores, &coreIdle{
			residency: map[string]sim.Duration{},
			entries:   map[string]uint64{},
		})
	}
	return g, nil
}

// States returns the ladder.
func (g *IdleGovernor) States() []CState { return g.states }

// Current returns core's resident state.
func (g *IdleGovernor) Current(core int) (CState, error) {
	if core < 0 || core >= len(g.cores) {
		return CState{}, fmt.Errorf("pstate: no core %d", core)
	}
	return g.states[g.cores[core].state], nil
}

// Select returns the state the menu heuristic would choose for a predicted
// idle span, without entering it.
func (g *IdleGovernor) Select(predictedIdle sim.Duration) CState {
	chosen := g.states[0]
	for _, st := range g.states[1:] {
		if st.TargetResidency <= predictedIdle && st.ExitLatency*2 <= predictedIdle {
			chosen = st
		}
	}
	return chosen
}

// Enter puts the core into the state selected for predictedIdle and starts
// residency accounting. Entering from a non-C0 state is an error (the
// kernel always wakes before re-idling).
func (g *IdleGovernor) Enter(core int, predictedIdle sim.Duration) (CState, error) {
	if core < 0 || core >= len(g.cores) {
		return CState{}, fmt.Errorf("pstate: no core %d", core)
	}
	ci := g.cores[core]
	if ci.state != 0 {
		return CState{}, fmt.Errorf("pstate: core %d already idle in %s", core, g.states[ci.state].Name)
	}
	st := g.Select(predictedIdle)
	ci.state = st.Index
	ci.enteredAt = g.simr.Now()
	ci.entries[st.Name]++
	return st, nil
}

// Exit wakes the core, charges the exit latency on the simulator clock and
// returns it. Exiting C0 is a no-op.
func (g *IdleGovernor) Exit(core int) (sim.Duration, error) {
	if core < 0 || core >= len(g.cores) {
		return 0, fmt.Errorf("pstate: no core %d", core)
	}
	ci := g.cores[core]
	if ci.state == 0 {
		return 0, nil
	}
	st := g.states[ci.state]
	ci.residency[st.Name] += g.simr.Now() - ci.enteredAt
	ci.state = 0
	g.Wakeups++
	g.simr.RunFor(st.ExitLatency)
	return st.ExitLatency, nil
}

// Residency returns core's accumulated time per state name.
func (g *IdleGovernor) Residency(core int) map[string]sim.Duration {
	if core < 0 || core >= len(g.cores) {
		return nil
	}
	out := make(map[string]sim.Duration, len(g.cores[core].residency))
	for k, v := range g.cores[core].residency {
		out[k] = v
	}
	return out
}

// Entries returns core's entry counts per state name.
func (g *IdleGovernor) Entries(core int) map[string]uint64 {
	if core < 0 || core >= len(g.cores) {
		return nil
	}
	out := make(map[string]uint64, len(g.cores[core].entries))
	for k, v := range g.cores[core].entries {
		out[k] = v
	}
	return out
}

// PowerFactor returns the resident state's power factor for core — the
// hook the power meter uses to discount idle cores.
func (g *IdleGovernor) PowerFactor(core int) float64 {
	if core < 0 || core >= len(g.cores) {
		return 1
	}
	return g.states[g.cores[core].state].PowerFactor
}

// SortedNames lists state names in depth order (stable output for reports).
func SortedNames(m map[string]sim.Duration) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
