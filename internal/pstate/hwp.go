package pstate

import (
	"errors"
	"fmt"

	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

// IA32_HWP_REQUEST (0x774) — Hardware-Controlled Performance states (Intel
// Speed Shift). On HWP parts the OS stops issuing per-change PERF_CTL
// writes; it programs a *policy* (min/max ratio, desired ratio, an
// energy-performance preference) and the package control unit picks
// P-states autonomously.
//
// HWP matters to the paper's story: the DVFS *frequency* side moves from
// software into hardware, but the voltage-offset mailbox (0x150) stays
// software-writable — so the attack surface and the countermeasure's
// polling loop are unchanged. The guard keeps working because it reads the
// *effective* ratio from PERF_STATUS, not the request register.
const HWPRequest msr.Addr = 0x774

// HWP request field layout (per the SDM): min ratio bits 7:0, max ratio
// 15:8, desired 23:16, EPP 31:24.
const (
	hwpMinShift     = 0
	hwpMaxShift     = 8
	hwpDesiredShift = 16
	hwpEPPShift     = 24
)

// HWPRequestFields is the decoded request register.
type HWPRequestFields struct {
	MinRatio, MaxRatio uint8
	// DesiredRatio, when nonzero, pins the frequency (autonomy off).
	DesiredRatio uint8
	// EPP is the energy-performance preference: 0 = max performance,
	// 255 = max energy saving.
	EPP uint8
}

// EncodeHWPRequest packs the request fields.
func EncodeHWPRequest(f HWPRequestFields) uint64 {
	return uint64(f.MinRatio)<<hwpMinShift |
		uint64(f.MaxRatio)<<hwpMaxShift |
		uint64(f.DesiredRatio)<<hwpDesiredShift |
		uint64(f.EPP)<<hwpEPPShift
}

// DecodeHWPRequest unpacks a request register value.
func DecodeHWPRequest(v uint64) HWPRequestFields {
	return HWPRequestFields{
		MinRatio:     uint8(v >> hwpMinShift),
		MaxRatio:     uint8(v >> hwpMaxShift),
		DesiredRatio: uint8(v >> hwpDesiredShift),
		EPP:          uint8(v >> hwpEPPShift),
	}
}

// HWP is the autonomous P-state controller for one machine.
type HWP struct {
	simr   *sim.Simulator
	cpu    CPU
	load   LoadFn
	ticker *sim.Ticker
	// Period is the autonomy evaluation interval (hardware reacts in
	// ~1 ms or faster; we default to 1 ms).
	Period sim.Duration
	// Transitions counts autonomous ratio changes.
	Transitions uint64

	reqs []HWPRequestFields
}

// NewHWP builds the controller and declares IA32_HWP_REQUEST on every
// core's MSR file. machine must also expose the MSR files (kernel.Machine
// shape); we accept them via the declare callback to avoid an import knot.
func NewHWP(s *sim.Simulator, hw CPU, load LoadFn, declare func(core int, d *msr.Descriptor)) (*HWP, error) {
	if hw == nil || declare == nil {
		return nil, errors.New("pstate: HWP needs hardware and a declare hook")
	}
	if load == nil {
		load = func(int) float64 { return 0 }
	}
	table := hw.FreqTableKHz()
	if len(table) == 0 {
		return nil, errors.New("pstate: empty frequency table")
	}
	busKHz := table[0]
	if len(table) > 1 {
		busKHz = table[1] - table[0]
	}
	minRatio := uint8(table[0] / busKHz)
	maxRatio := uint8(table[len(table)-1] / busKHz)

	h := &HWP{
		simr:   s,
		cpu:    hw,
		load:   load,
		Period: 1 * sim.Millisecond,
		reqs:   make([]HWPRequestFields, hw.NumCores()),
	}
	for i := 0; i < hw.NumCores(); i++ {
		i := i
		h.reqs[i] = HWPRequestFields{MinRatio: minRatio, MaxRatio: maxRatio, EPP: 128}
		declare(i, &msr.Descriptor{
			Addr:  HWPRequest,
			Name:  "IA32_HWP_REQUEST",
			Reset: EncodeHWPRequest(h.reqs[i]),
			Apply: func(_ *msr.File, _, v uint64) (uint64, error) {
				f := DecodeHWPRequest(v)
				if f.MinRatio > f.MaxRatio {
					return 0, &msr.GPFault{Addr: HWPRequest, Op: "wrmsr", Why: "min ratio above max"}
				}
				h.reqs[i] = f
				return v, nil
			},
		})
	}
	return h, nil
}

// Request returns core's live policy.
func (h *HWP) Request(core int) (HWPRequestFields, error) {
	if core < 0 || core >= len(h.reqs) {
		return HWPRequestFields{}, fmt.Errorf("pstate: no core %d", core)
	}
	return h.reqs[core], nil
}

// Start launches the autonomous controller.
func (h *HWP) Start() {
	if h.ticker != nil {
		return
	}
	h.ticker = h.simr.Every(h.Period, h.step)
}

// Stop halts autonomy.
func (h *HWP) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
		h.ticker = nil
	}
}

// step picks each core's ratio: desired pins it; otherwise the target
// scales with load, biased by EPP (performance preference overshoots the
// load, energy preference undershoots).
func (h *HWP) step() {
	table := h.cpu.FreqTableKHz()
	busKHz := table[0]
	if len(table) > 1 {
		busKHz = table[1] - table[0]
	}
	for core := 0; core < h.cpu.NumCores(); core++ {
		req := h.reqs[core]
		var target uint8
		if req.DesiredRatio != 0 {
			target = req.DesiredRatio
		} else {
			util := clamp01(h.load(core))
			// EPP 0 -> 1.4x headroom, EPP 255 -> 0.8x (lagging).
			bias := 1.4 - 0.6*float64(req.EPP)/255.0
			span := float64(req.MaxRatio-req.MinRatio) * util * bias
			target = req.MinRatio + uint8(span+0.5)
		}
		if target < req.MinRatio {
			target = req.MinRatio
		}
		if target > req.MaxRatio {
			target = req.MaxRatio
		}
		if h.cpu.FreqKHz(core) != int(target)*busKHz {
			if err := h.cpu.SetRatioViaMSR(core, target); err == nil {
				h.Transitions++
			}
		}
	}
}
