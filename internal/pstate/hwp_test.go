package pstate

import (
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sim"
)

func hwpRig(t *testing.T, load LoadFn) (*cpu.Platform, *HWP) {
	t.Helper()
	spec, err := models.CometLake() // HWP-era part
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHWP(p.Sim, p, load, func(core int, d *msr.Descriptor) {
		p.MSRFile(core).Declare(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, h
}

func TestHWPRequestCodec(t *testing.T) {
	f := HWPRequestFields{MinRatio: 4, MaxRatio: 49, DesiredRatio: 20, EPP: 128}
	got := DecodeHWPRequest(EncodeHWPRequest(f))
	if got != f {
		t.Fatalf("round trip %+v -> %+v", f, got)
	}
}

func TestHWPValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewHWP(s, nil, nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestHWPDefaultsAndMSRSurface(t *testing.T) {
	p, h := hwpRig(t, nil)
	req, err := h.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if req.MinRatio != 4 || req.MaxRatio != 49 || req.EPP != 128 {
		t.Fatalf("default request %+v", req)
	}
	// The request register is software-visible with the reset value.
	v, err := p.MSRFile(0).Read(HWPRequest)
	if err != nil {
		t.Fatal(err)
	}
	if DecodeHWPRequest(v) != req {
		t.Fatal("MSR reset value mismatch")
	}
	// Invalid policy is rejected with #GP.
	bad := EncodeHWPRequest(HWPRequestFields{MinRatio: 30, MaxRatio: 10})
	if err := p.MSRFile(0).Write(HWPRequest, bad); err == nil {
		t.Fatal("min>max accepted")
	}
	if _, err := h.Request(99); err == nil {
		t.Fatal("bogus core accepted")
	}
}

func TestHWPAutonomyTracksLoadAndEPP(t *testing.T) {
	load := 0.0
	p, h := hwpRig(t, func(core int) float64 { return load })
	h.Start()
	h.Start() // idempotent
	defer h.Stop()

	load = 1.0
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 4_900_000 {
		t.Fatalf("full load with balanced EPP: %d", got)
	}

	load = 0.0
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 400_000 {
		t.Fatalf("idle: %d", got)
	}

	// Energy-biased EPP undershoots a mid load; performance EPP overshoots.
	load = 0.5
	if err := p.MSRFile(0).Write(HWPRequest, EncodeHWPRequest(HWPRequestFields{
		MinRatio: 4, MaxRatio: 49, EPP: 255})); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	eco := p.FreqKHz(0)
	if err := p.MSRFile(0).Write(HWPRequest, EncodeHWPRequest(HWPRequestFields{
		MinRatio: 4, MaxRatio: 49, EPP: 0})); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	perf := p.FreqKHz(0)
	if perf <= eco {
		t.Fatalf("EPP had no effect: eco %d vs perf %d", eco, perf)
	}
	if h.Transitions == 0 {
		t.Fatal("no autonomous transitions")
	}
}

func TestHWPDesiredPinsFrequency(t *testing.T) {
	load := 1.0
	p, h := hwpRig(t, func(core int) float64 { return load })
	h.Start()
	defer h.Stop()
	if err := p.MSRFile(2).Write(HWPRequest, EncodeHWPRequest(HWPRequestFields{
		MinRatio: 4, MaxRatio: 49, DesiredRatio: 18})); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(2); got != 1_800_000 {
		t.Fatalf("desired-pinned freq %d", got)
	}
	// Other cores remain autonomous (full load -> turbo).
	if got := p.FreqKHz(1); got != 4_900_000 {
		t.Fatalf("autonomous core %d", got)
	}
}

func TestHWPBoundsClampAutonomy(t *testing.T) {
	load := 1.0
	p, h := hwpRig(t, func(core int) float64 { return load })
	h.Start()
	defer h.Stop()
	if err := p.MSRFile(0).Write(HWPRequest, EncodeHWPRequest(HWPRequestFields{
		MinRatio: 10, MaxRatio: 20, EPP: 0})); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 2_000_000 {
		t.Fatalf("max-bound not honored: %d", got)
	}
	load = 0.0
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 1_000_000 {
		t.Fatalf("min-bound not honored: %d", got)
	}
}

func TestHWPCompatibleWithGuardSurface(t *testing.T) {
	// The countermeasure reads PERF_STATUS for the *effective* ratio; HWP
	// autonomy must be visible there (not just in the request register).
	load := 1.0
	p, h := hwpRig(t, func(core int) float64 { return load })
	h.Start()
	defer h.Stop()
	p.Sim.RunFor(3 * sim.Millisecond)
	p.SettleAll()
	v, err := p.MSRFile(0).Read(msr.IA32PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	ratio, _ := msr.DecodePerfStatus(v)
	if ratio != 49 {
		t.Fatalf("PERF_STATUS ratio %d under HWP turbo", ratio)
	}
}
