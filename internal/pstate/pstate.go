// Package pstate reproduces the Linux cpufreq stack the paper's Algorithm 2
// drives: per-core frequency policies, scaling governors, and a cpupower(1)
// equivalent used by the characterization sweep ("we use the cpupower Linux
// utility to modify the core frequency").
//
// The paper's countermeasure explicitly preserves this machinery for benign
// processes — access-control defenses lock it down, ours does not — so the
// governor stack is a first-class substrate here, not a stub.
package pstate

import (
	"fmt"
	"sort"

	"plugvolt/internal/sim"
)

// CPU is the hardware interface the cpufreq layer drives. *cpu.Platform
// satisfies it.
type CPU interface {
	NumCores() int
	// FreqKHz returns core's live frequency.
	FreqKHz(core int) int
	// SetRatioViaMSR requests a P-state through the software path.
	SetRatioViaMSR(core int, ratio uint8) error
	// FreqTableKHz lists the supported frequencies ascending.
	FreqTableKHz() []int
}

// Governor names, matching the Linux scaling_governor values.
const (
	GovPerformance  = "performance"
	GovPowersave    = "powersave"
	GovUserspace    = "userspace"
	GovOndemand     = "ondemand"
	GovConservative = "conservative"
	GovSchedutil    = "schedutil"
)

// LoadFn reports a core's utilization in [0, 1]; sampled by the dynamic
// governors. Experiments plug in workload-driven or synthetic signals.
type LoadFn func(core int) float64

// Policy is one core's cpufreq policy.
type Policy struct {
	Core     int
	MinKHz   int
	MaxKHz   int
	Governor string
	// SetSpeedKHz is the userspace governor's requested frequency.
	SetSpeedKHz int
}

// Manager owns the per-core policies and runs the dynamic governors.
type Manager struct {
	simr  *sim.Simulator
	cpu   CPU
	table []int // ascending kHz
	pols  []*Policy
	load  LoadFn

	tickers []*sim.Ticker
	// SamplePeriod is the dynamic governors' evaluation interval
	// (Linux default ondemand sampling_rate is ~10 ms).
	SamplePeriod sim.Duration
	// Transitions counts frequency changes issued by governors.
	Transitions uint64
}

// NewManager builds a manager with every core on the performance governor,
// bounds spanning the full table.
func NewManager(s *sim.Simulator, hw CPU, load LoadFn) (*Manager, error) {
	table := hw.FreqTableKHz()
	if len(table) == 0 {
		return nil, fmt.Errorf("pstate: empty frequency table")
	}
	if !sort.IntsAreSorted(table) {
		return nil, fmt.Errorf("pstate: frequency table not ascending")
	}
	if load == nil {
		load = func(int) float64 { return 0 }
	}
	m := &Manager{
		simr:         s,
		cpu:          hw,
		table:        table,
		load:         load,
		SamplePeriod: 10 * sim.Millisecond,
	}
	for i := 0; i < hw.NumCores(); i++ {
		m.pols = append(m.pols, &Policy{
			Core:     i,
			MinKHz:   table[0],
			MaxKHz:   table[len(table)-1],
			Governor: GovPerformance,
		})
	}
	return m, nil
}

// Policy returns core's policy (read-only view; mutate via setters).
func (m *Manager) Policy(core int) (Policy, error) {
	if core < 0 || core >= len(m.pols) {
		return Policy{}, fmt.Errorf("pstate: no core %d", core)
	}
	return *m.pols[core], nil
}

// Table returns the supported frequencies ascending.
func (m *Manager) Table() []int {
	out := make([]int, len(m.table))
	copy(out, m.table)
	return out
}

// nearest returns the table frequency closest to khz, clamped to [min, max].
func (m *Manager) nearest(khz, minKHz, maxKHz int) int {
	best, bestDiff := m.table[0], -1
	for _, f := range m.table {
		if f < minKHz || f > maxKHz {
			continue
		}
		d := f - khz
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = f, d
		}
	}
	if bestDiff < 0 {
		// Bounds exclude everything (misconfigured); fall back to min bound
		// clamped into the table.
		return m.nearest(minKHz, m.table[0], m.table[len(m.table)-1])
	}
	return best
}

// SetBounds updates a policy's frequency bounds and re-applies the governor.
func (m *Manager) SetBounds(core, minKHz, maxKHz int) error {
	if core < 0 || core >= len(m.pols) {
		return fmt.Errorf("pstate: no core %d", core)
	}
	if minKHz > maxKHz {
		return fmt.Errorf("pstate: min %d > max %d", minKHz, maxKHz)
	}
	p := m.pols[core]
	p.MinKHz, p.MaxKHz = minKHz, maxKHz
	return m.applyStatic(p)
}

// SetGovernor switches a core's scaling governor.
func (m *Manager) SetGovernor(core int, gov string) error {
	if core < 0 || core >= len(m.pols) {
		return fmt.Errorf("pstate: no core %d", core)
	}
	switch gov {
	case GovPerformance, GovPowersave, GovUserspace, GovOndemand, GovConservative, GovSchedutil:
	default:
		return fmt.Errorf("pstate: unknown governor %q", gov)
	}
	p := m.pols[core]
	p.Governor = gov
	return m.applyStatic(p)
}

// SetSpeed requests a specific frequency under the userspace governor.
func (m *Manager) SetSpeed(core, khz int) error {
	if core < 0 || core >= len(m.pols) {
		return fmt.Errorf("pstate: no core %d", core)
	}
	p := m.pols[core]
	if p.Governor != GovUserspace {
		return fmt.Errorf("pstate: core %d governor is %q, not userspace", core, p.Governor)
	}
	p.SetSpeedKHz = khz
	return m.setFreq(p, khz)
}

// applyStatic immediately enforces the non-sampling part of a policy.
func (m *Manager) applyStatic(p *Policy) error {
	switch p.Governor {
	case GovPerformance:
		return m.setFreq(p, p.MaxKHz)
	case GovPowersave:
		return m.setFreq(p, p.MinKHz)
	case GovUserspace:
		if p.SetSpeedKHz == 0 {
			p.SetSpeedKHz = m.cpu.FreqKHz(p.Core)
		}
		return m.setFreq(p, p.SetSpeedKHz)
	default:
		// Dynamic governors act on their next sample.
		return nil
	}
}

// setFreq issues the hardware P-state request for the nearest valid table
// frequency.
func (m *Manager) setFreq(p *Policy, khz int) error {
	target := m.nearest(khz, p.MinKHz, p.MaxKHz)
	busKHz := m.busKHz()
	ratio := target / busKHz
	if err := m.cpu.SetRatioViaMSR(p.Core, uint8(ratio)); err != nil {
		return err
	}
	m.Transitions++
	return nil
}

// busKHz derives the ratio step from the table (uniform grid).
func (m *Manager) busKHz() int {
	if len(m.table) > 1 {
		return m.table[1] - m.table[0]
	}
	return m.table[0]
}

// Start launches the dynamic-governor sampling loop. Idempotent per call —
// callers should Stop before re-Starting.
func (m *Manager) Start() {
	t := m.simr.Every(m.SamplePeriod, m.sample)
	m.tickers = append(m.tickers, t)
}

// Stop halts dynamic-governor sampling.
func (m *Manager) Stop() {
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
}

// sample evaluates the dynamic governors once.
func (m *Manager) sample() {
	for _, p := range m.pols {
		switch p.Governor {
		case GovOndemand:
			m.ondemand(p)
		case GovConservative:
			m.conservative(p)
		case GovSchedutil:
			m.schedutil(p)
		}
	}
}

// ondemand implements the classic Linux heuristic: jump to max above the up
// threshold, otherwise scale proportionally to load.
func (m *Manager) ondemand(p *Policy) {
	const upThreshold = 0.80
	load := clamp01(m.load(p.Core))
	var target int
	if load >= upThreshold {
		target = p.MaxKHz
	} else {
		target = p.MinKHz + int(load*float64(p.MaxKHz-p.MinKHz))
	}
	if m.nearest(target, p.MinKHz, p.MaxKHz) != m.cpu.FreqKHz(p.Core) {
		_ = m.setFreq(p, target)
	}
}

// schedutil implements the utilization-driven kernel default:
// f = headroom * fmax * util, with a 25% headroom factor so the core runs
// just above the demand rather than saturated.
func (m *Manager) schedutil(p *Policy) {
	util := clamp01(m.load(p.Core))
	target := int(1.25 * float64(p.MaxKHz) * util)
	if target < p.MinKHz {
		target = p.MinKHz
	}
	if target > p.MaxKHz {
		target = p.MaxKHz
	}
	if m.nearest(target, p.MinKHz, p.MaxKHz) != m.cpu.FreqKHz(p.Core) {
		_ = m.setFreq(p, target)
	}
}

// conservative steps one table entry at a time toward the load.
func (m *Manager) conservative(p *Policy) {
	const upThreshold, downThreshold = 0.80, 0.20
	load := clamp01(m.load(p.Core))
	cur := m.cpu.FreqKHz(p.Core)
	idx := sort.SearchInts(m.table, cur)
	if idx >= len(m.table) || m.table[idx] != cur {
		_ = m.setFreq(p, cur) // resync to the table
		return
	}
	switch {
	case load >= upThreshold && idx+1 < len(m.table) && m.table[idx+1] <= p.MaxKHz:
		_ = m.setFreq(p, m.table[idx+1])
	case load <= downThreshold && idx > 0 && m.table[idx-1] >= p.MinKHz:
		_ = m.setFreq(p, m.table[idx-1])
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CPUPower is the cpupower(1) command-line equivalent used by Algorithm 2.
type CPUPower struct {
	M *Manager
}

// FrequencySet pins a core to khz, forcing the userspace governor — the
// behaviour of `cpupower frequency-set -f`.
func (c *CPUPower) FrequencySet(core, khz int) error {
	p, err := c.M.Policy(core)
	if err != nil {
		return err
	}
	if p.Governor != GovUserspace {
		if err := c.M.SetGovernor(core, GovUserspace); err != nil {
			return err
		}
	}
	return c.M.SetSpeed(core, khz)
}

// FrequencyInfo mirrors `cpupower frequency-info` for one core.
type FrequencyInfo struct {
	Core       int
	CurrentKHz int
	MinKHz     int
	MaxKHz     int
	Governor   string
	TableKHz   []int
}

// FrequencyInfo reports a core's cpufreq state.
func (c *CPUPower) FrequencyInfo(core int) (FrequencyInfo, error) {
	p, err := c.M.Policy(core)
	if err != nil {
		return FrequencyInfo{}, err
	}
	return FrequencyInfo{
		Core:       core,
		CurrentKHz: c.M.cpu.FreqKHz(core),
		MinKHz:     p.MinKHz,
		MaxKHz:     p.MaxKHz,
		Governor:   p.Governor,
		TableKHz:   c.M.Table(),
	}, nil
}
