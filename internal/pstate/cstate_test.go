package pstate

import (
	"testing"

	"plugvolt/internal/sim"
)

func idleRig(t *testing.T) (*sim.Simulator, *IdleGovernor) {
	t.Helper()
	s := sim.New(1)
	g, err := NewIdleGovernor(s, 4, DefaultCStates())
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestIdleGovernorValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewIdleGovernor(s, 0, DefaultCStates()); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewIdleGovernor(s, 1, nil); err == nil {
		t.Fatal("empty ladder accepted")
	}
	bad := DefaultCStates()
	bad[0].ExitLatency = sim.Microsecond
	if _, err := NewIdleGovernor(s, 1, bad); err == nil {
		t.Fatal("C0 with exit latency accepted")
	}
	gap := DefaultCStates()
	gap[2].Index = 5
	if _, err := NewIdleGovernor(s, 1, gap); err == nil {
		t.Fatal("index gap accepted")
	}
	cheapDeep := DefaultCStates()
	cheapDeep[3].ExitLatency = 0
	if _, err := NewIdleGovernor(s, 1, cheapDeep); err == nil {
		t.Fatal("deep state cheaper than shallow accepted")
	}
	noSave := DefaultCStates()
	noSave[3].PowerFactor = 0.9
	if _, err := NewIdleGovernor(s, 1, noSave); err == nil {
		t.Fatal("deep state without power saving accepted")
	}
}

func TestMenuSelection(t *testing.T) {
	_, g := idleRig(t)
	cases := []struct {
		idle sim.Duration
		want string
	}{
		{0, "C0"},
		{1 * sim.Microsecond, "C0"},
		{5 * sim.Microsecond, "C1"},
		{50 * sim.Microsecond, "C1E"},
		{400 * sim.Microsecond, "C1E"}, // C6 residency not met
		{1 * sim.Millisecond, "C6"},
		{1 * sim.Second, "C6"},
	}
	for _, c := range cases {
		if got := g.Select(c.idle); got.Name != c.want {
			t.Errorf("Select(%v) = %s, want %s", c.idle, got.Name, c.want)
		}
	}
}

func TestEnterExitAccounting(t *testing.T) {
	s, g := idleRig(t)
	st, err := g.Enter(1, 1*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C6" {
		t.Fatalf("entered %s", st.Name)
	}
	if _, err := g.Enter(1, sim.Millisecond); err == nil {
		t.Fatal("double enter accepted")
	}
	cur, err := g.Current(1)
	if err != nil || cur.Name != "C6" {
		t.Fatalf("current %v %v", cur, err)
	}
	if pf := g.PowerFactor(1); pf != 0.05 {
		t.Fatalf("power factor %v", pf)
	}
	s.RunFor(2 * sim.Millisecond)
	lat, err := g.Exit(1)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 133*sim.Microsecond {
		t.Fatalf("exit latency %v", lat)
	}
	res := g.Residency(1)
	if res["C6"] != 2*sim.Millisecond {
		t.Fatalf("C6 residency %v", res["C6"])
	}
	if g.Entries(1)["C6"] != 1 {
		t.Fatalf("entries %v", g.Entries(1))
	}
	if g.Wakeups != 1 {
		t.Fatalf("wakeups %d", g.Wakeups)
	}
	// Exit latency advanced the clock.
	if s.Now() != 2*sim.Millisecond+133*sim.Microsecond {
		t.Fatalf("clock %v", s.Now())
	}
	// Exiting C0 is a no-op.
	if lat, err := g.Exit(1); err != nil || lat != 0 {
		t.Fatalf("C0 exit: %v %v", lat, err)
	}
	// Other cores independent.
	if g.PowerFactor(2) != 1.0 {
		t.Fatal("idle state leaked across cores")
	}
}

func TestIdleBogusCore(t *testing.T) {
	_, g := idleRig(t)
	if _, err := g.Enter(-1, sim.Millisecond); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := g.Exit(9); err == nil {
		t.Fatal("bogus core accepted")
	}
	if _, err := g.Current(9); err == nil {
		t.Fatal("bogus core accepted")
	}
	if g.Residency(9) != nil || g.Entries(9) != nil {
		t.Fatal("bogus core stats non-nil")
	}
	if g.PowerFactor(9) != 1 {
		t.Fatal("bogus core power factor")
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]sim.Duration{"C6": 1, "C1": 2, "C1E": 3}
	names := SortedNames(m)
	if len(names) != 3 || names[0] != "C1" || names[1] != "C1E" || names[2] != "C6" {
		t.Fatalf("sorted %v", names)
	}
}

func TestRepeatedIdleCycles(t *testing.T) {
	s, g := idleRig(t)
	for i := 0; i < 100; i++ {
		if _, err := g.Enter(0, 30*sim.Microsecond); err != nil {
			t.Fatal(err)
		}
		s.RunFor(30 * sim.Microsecond)
		if _, err := g.Exit(0); err != nil {
			t.Fatal(err)
		}
	}
	if g.Entries(0)["C1E"] != 100 {
		t.Fatalf("entries %v", g.Entries(0))
	}
	if g.Residency(0)["C1E"] != 100*30*sim.Microsecond {
		t.Fatalf("residency %v", g.Residency(0))
	}
}
