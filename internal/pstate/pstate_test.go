package pstate

import (
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/sim"
)

// testRig builds a Sky Lake platform with a pstate manager attached.
func testRig(t *testing.T, load LoadFn) (*cpu.Platform, *Manager) {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(p.Sim, p, load)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestNewManagerDefaults(t *testing.T) {
	p, m := testRig(t, nil)
	for i := 0; i < p.NumCores(); i++ {
		pol, err := m.Policy(i)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Governor != GovPerformance {
			t.Errorf("core %d default governor %q", i, pol.Governor)
		}
		if pol.MinKHz != 800_000 || pol.MaxKHz != 3_600_000 {
			t.Errorf("core %d bounds %d..%d", i, pol.MinKHz, pol.MaxKHz)
		}
	}
	if _, err := m.Policy(99); err == nil {
		t.Error("policy for bogus core")
	}
}

func TestPerformanceGovernorPinsMax(t *testing.T) {
	p, m := testRig(t, nil)
	if err := m.SetGovernor(0, GovPerformance); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(0); got != 3_600_000 {
		t.Fatalf("performance governor freq %d", got)
	}
}

func TestPowersaveGovernorPinsMin(t *testing.T) {
	p, m := testRig(t, nil)
	if err := m.SetGovernor(0, GovPowersave); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(0); got != 800_000 {
		t.Fatalf("powersave governor freq %d", got)
	}
}

func TestUserspaceGovernorSetSpeed(t *testing.T) {
	p, m := testRig(t, nil)
	if err := m.SetSpeed(0, 2_000_000); err == nil {
		t.Fatal("SetSpeed under non-userspace governor accepted")
	}
	if err := m.SetGovernor(0, GovUserspace); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeed(0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(0); got != 2_000_000 {
		t.Fatalf("userspace speed %d", got)
	}
	// Off-grid request snaps to nearest table entry.
	if err := m.SetSpeed(0, 2_040_000); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(0); got != 2_000_000 {
		t.Fatalf("off-grid snapped to %d", got)
	}
}

func TestBoundsClampGovernors(t *testing.T) {
	p, m := testRig(t, nil)
	if err := m.SetBounds(0, 1_000_000, 2_500_000); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(0); got != 2_500_000 {
		t.Fatalf("performance within bounds: %d", got)
	}
	if err := m.SetBounds(0, 3_000_000, 1_000_000); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if err := m.SetBounds(42, 1, 2); err == nil {
		t.Fatal("bogus core accepted")
	}
}

func TestUnknownGovernorRejected(t *testing.T) {
	_, m := testRig(t, nil)
	if err := m.SetGovernor(0, "turbo-nitro"); err == nil {
		t.Fatal("unknown governor accepted")
	}
	if err := m.SetGovernor(-1, GovPerformance); err == nil {
		t.Fatal("negative core accepted")
	}
}

func TestOndemandGovernorTracksLoad(t *testing.T) {
	load := 0.0
	p, m := testRig(t, func(core int) float64 { return load })
	if err := m.SetGovernor(0, GovOndemand); err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	load = 1.0 // saturated: jump to max
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 3_600_000 {
		t.Fatalf("ondemand under full load: %d", got)
	}

	load = 0.0 // idle: fall to min
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 800_000 {
		t.Fatalf("ondemand idle: %d", got)
	}

	load = 0.5 // proportional middle
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	got := p.FreqKHz(0)
	if got < 1_800_000 || got > 2_600_000 {
		t.Fatalf("ondemand at 50%% load: %d", got)
	}
}

func TestConservativeGovernorStepsGradually(t *testing.T) {
	load := 1.0
	p, m := testRig(t, func(core int) float64 { return load })
	if err := m.SetGovernor(0, GovUserspace); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeed(0, 800_000); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if err := m.SetGovernor(0, GovConservative); err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	// One sample: exactly one 100 MHz step up.
	p.Sim.RunFor(11 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 900_000 {
		t.Fatalf("conservative first step: %d", got)
	}
	// Drop load: steps back down.
	load = 0.0
	p.Sim.RunFor(11 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 800_000 {
		t.Fatalf("conservative step down: %d", got)
	}
	if m.Transitions == 0 {
		t.Fatal("no transitions counted")
	}
}

func TestCPUPowerFrequencySet(t *testing.T) {
	// The Algorithm 2 path: cpupower forces userspace and pins frequency.
	p, m := testRig(t, nil)
	cp := &CPUPower{M: m}
	if err := cp.FrequencySet(1, 1_500_000); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.FreqKHz(1); got != 1_500_000 {
		t.Fatalf("cpupower set freq %d", got)
	}
	pol, _ := m.Policy(1)
	if pol.Governor != GovUserspace {
		t.Fatalf("cpupower left governor %q", pol.Governor)
	}
	info, err := cp.FrequencyInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if info.CurrentKHz != 1_500_000 || info.Governor != GovUserspace {
		t.Fatalf("frequency-info: %+v", info)
	}
	if len(info.TableKHz) != 29 {
		t.Fatalf("table length %d", len(info.TableKHz))
	}
	if _, err := cp.FrequencyInfo(77); err == nil {
		t.Fatal("info for bogus core")
	}
}

func TestSetSpeedBogusCore(t *testing.T) {
	_, m := testRig(t, nil)
	if err := m.SetSpeed(9, 1_000_000); err == nil {
		t.Fatal("bogus core accepted")
	}
}

func TestTableCopyIsDefensive(t *testing.T) {
	_, m := testRig(t, nil)
	tab := m.Table()
	tab[0] = 42
	if m.Table()[0] == 42 {
		t.Fatal("Table() exposes internal slice")
	}
}

func TestSchedutilGovernorTracksUtilization(t *testing.T) {
	load := 0.0
	p, m := testRig(t, func(core int) float64 { return load })
	if err := m.SetGovernor(0, GovSchedutil); err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	load = 1.0
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 3_600_000 {
		t.Fatalf("schedutil at full util: %d", got)
	}

	load = 0.5 // 1.25 * 3.6 GHz * 0.5 = 2.25 GHz -> nearest 2.2/2.3
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got < 2_100_000 || got > 2_400_000 {
		t.Fatalf("schedutil at 50%% util: %d", got)
	}

	load = 0.0
	p.Sim.RunFor(25 * sim.Millisecond)
	p.SettleAll()
	if got := p.FreqKHz(0); got != 800_000 {
		t.Fatalf("schedutil idle: %d", got)
	}
}
