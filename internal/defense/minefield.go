package defense

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/sgx"
)

// ErrTrapped is returned when a Minefield trap instruction faults: the
// enclave detects the ongoing DVFS attack and aborts before the adversary
// can use any corrupted result.
var ErrTrapped = errors.New("defense: minefield trap faulted — enclave aborted")

// Minefield models the compiler-based deflection defense of Kogler et al.
// (USENIX Security '22): the compiler interleaves highly fault-susceptible
// dummy instructions ("traps") with the protected code. Because the traps
// use the deepest timing paths (multiplications), an undervolt that could
// fault real code overwhelmingly faults a trap first, converting the attack
// into a detected abort.
//
// Its documented blind spot — the reason the paper refuses to inherit its
// threat model — is instruction isolation: an SGX-Step adversary undervolts
// only while the *target* instruction executes and restores safe voltage
// before any trap runs, so no trap ever faults. TrappedProgram exposes
// exactly this surface: traps run as separate steps that a single-stepping
// attacker can distinguish from payload steps.
type Minefield struct {
	// Density is the number of trap instructions inserted around every
	// payload instruction (Minefield's protection level; the published
	// evaluation uses up to 3 traps per instruction).
	Density int
}

// Name implements the labelling part of Countermeasure for result tables.
func (m *Minefield) Name() string {
	return fmt.Sprintf("minefield (deflection, density %d)", m.Density)
}

// AllowsBenignDVFS: Minefield does not touch the DVFS interface at all —
// benign undervolting keeps working (its cost is enclave slowdown instead).
func (*Minefield) AllowsBenignDVFS() bool { return true }

// HardwareLevel implements the Sec. 5 criterion: a compiler pass cannot
// move below the kernel.
func (*Minefield) HardwareLevel() bool { return false }

// Instrument wraps an enclave program with trap steps. The returned program
// is what the enclave actually runs.
func (m *Minefield) Instrument(inner sgx.Program, core *cpu.Core) (*TrappedProgram, error) {
	if m.Density <= 0 {
		return nil, fmt.Errorf("defense: minefield density %d", m.Density)
	}
	if inner == nil || core == nil {
		return nil, errors.New("defense: minefield needs a program and a core")
	}
	return &TrappedProgram{inner: inner, core: core, density: m.Density}, nil
}

// TrappedProgram interleaves trap instructions with the inner program's
// steps. Step indices alternate: for density d, steps 0..d-1 are traps,
// step d is payload, and so on.
type TrappedProgram struct {
	inner   sgx.Program
	core    *cpu.Core
	density int

	phase int // 0..density-1 = trap, density = payload
	// Traps counts executed trap instructions; Detected latches when one
	// faults.
	Traps    uint64
	Detected bool
}

// trapOperands are chosen so the trap multiply exercises full-width carry
// chains (maximum path sensitization), as Minefield's generated traps do.
const (
	trapOpA uint64 = 0xFFFF_FFFF_FFFF_FFFB
	trapOpB uint64 = 0xFFFF_FFFF_FFFF_FFC5
)

// NextIsTrap reports whether the next Step executes a trap instruction —
// the information a single-stepping adversary reconstructs from the
// instruction stream layout.
func (t *TrappedProgram) NextIsTrap() bool { return t.phase < t.density }

// Step implements sgx.Program.
func (t *TrappedProgram) Step() (bool, error) {
	if t.Detected {
		return false, ErrTrapped
	}
	if t.phase < t.density {
		t.phase++
		t.Traps++
		got, faulted, err := t.core.IMul(trapOpA, trapOpB)
		if err != nil {
			return false, err
		}
		var a, b uint64 = trapOpA, trapOpB
		if faulted || got != a*b {
			t.Detected = true
			return false, ErrTrapped
		}
		return false, nil
	}
	t.phase = 0
	return t.inner.Step()
}
