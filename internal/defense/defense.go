// Package defense implements the paper's countermeasure (the polling kernel
// module), its two deeper-deployment variants (microcode write-guard and
// hardware clamp MSR, Sec. 5), and the two prior-work baselines the paper
// compares against:
//
//   - access control (Intel SA-00289 [12]): the OC mailbox is rejected
//     while any SGX enclave exists, and the lockdown state is attested —
//     blocking *benign* DVFS along with the attack;
//   - deflection (Minefield [15]): the compiler interleaves
//     fault-magnet trap instructions with enclave code so a DVFS fault is
//     overwhelmingly likely to hit a trap first — sound only if the
//     adversary cannot single-step the enclave.
//
// All countermeasures install against the same Env, so the evaluation
// matrix (experiment E2) exercises them uniformly.
package defense

import (
	"errors"
	"fmt"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/flight"
	"plugvolt/internal/kernel"
	"plugvolt/internal/msr"
	"plugvolt/internal/sgx"
	"plugvolt/internal/telemetry"
)

// Env is the machine a countermeasure deploys onto.
type Env struct {
	Platform *cpu.Platform
	Kernel   *kernel.Kernel
	Registry *sgx.Registry
	// Telemetry, when set, receives attack/defense instrumentation (mailbox
	// write counters, fault events). Optional: a nil set disables it and
	// every instrument degrades to a no-op.
	Telemetry *telemetry.Set
	// Flight, when set, is the machine's flight recorder: attack campaigns
	// fire incident triggers into it at every observed victim fault and
	// machine crash. Optional; nil disables capture.
	Flight *flight.Recorder
}

// Validate checks the env is complete.
func (e *Env) Validate() error {
	if e == nil || e.Platform == nil || e.Kernel == nil || e.Registry == nil {
		return errors.New("defense: env needs platform, kernel and registry")
	}
	return nil
}

// Countermeasure is a deployable DVFS-fault defense.
type Countermeasure interface {
	// Name identifies the defense in result tables.
	Name() string
	// Install deploys onto the environment.
	Install(env *Env) error
	// Uninstall reverts the deployment.
	Uninstall(env *Env) error
	// AllowsBenignDVFS reports whether a benign process can still apply a
	// *safe* undervolt while the defense is active and an enclave exists —
	// the paper's availability criterion.
	AllowsBenignDVFS() bool
	// HardwareLevel reports whether the defense could be implemented below
	// the kernel (microcode or MSR), per the paper's Sec. 5 criterion.
	HardwareLevel() bool
}

// None is the undefended baseline.
type None struct{}

// Name implements Countermeasure.
func (None) Name() string { return "none" }

// Install implements Countermeasure.
func (None) Install(env *Env) error { return env.Validate() }

// Uninstall implements Countermeasure.
func (None) Uninstall(*Env) error { return nil }

// AllowsBenignDVFS implements Countermeasure.
func (None) AllowsBenignDVFS() bool { return true }

// HardwareLevel implements Countermeasure.
func (None) HardwareLevel() bool { return false }

// AccessControl models Intel's SA-00289 response: while any enclave exists,
// writes to the OC mailbox general-protection fault, and the lockdown is
// visible in attestation (OCMDisabled).
type AccessControl struct {
	installed bool
	hookIDs   []int
}

// Name implements Countermeasure.
func (*AccessControl) Name() string { return "access-control (SA-00289)" }

// Install implements Countermeasure.
func (a *AccessControl) Install(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if a.installed {
		return errors.New("defense: access control already installed")
	}
	reg := env.Registry
	a.hookIDs = a.hookIDs[:0]
	for i := 0; i < env.Platform.NumCores(); i++ {
		f := env.Platform.MSRFile(i)
		id := f.AddWriteHook(msr.OCMailbox, func(_ *msr.File, old, v uint64) (uint64, error) {
			if reg.AnyRunning() {
				return 0, &msr.GPFault{Addr: msr.OCMailbox, Op: "wrmsr",
					Why: "OC mailbox disabled while SGX is in use (SA-00289)"}
			}
			return v, nil
		})
		a.hookIDs = append(a.hookIDs, id)
	}
	env.Registry.Features.OCMDisabled = true
	a.installed = true
	return nil
}

// Uninstall implements Countermeasure.
func (a *AccessControl) Uninstall(env *Env) error {
	if !a.installed {
		return nil
	}
	for i, id := range a.hookIDs {
		env.Platform.MSRFile(i).RemoveWriteHook(msr.OCMailbox, id)
	}
	a.hookIDs = nil
	env.Registry.Features.OCMDisabled = false
	a.installed = false
	return nil
}

// AllowsBenignDVFS implements Countermeasure: the lockdown rejects *all*
// mailbox writes while an enclave exists, benign or not.
func (*AccessControl) AllowsBenignDVFS() bool { return false }

// HardwareLevel implements Countermeasure: SA-00289 is a microcode change,
// but it gates access rather than states; the paper classifies it as an
// access-control path fix, not a state-level hardware countermeasure.
func (*AccessControl) HardwareLevel() bool { return false }

// Polling is the paper's countermeasure packaged as a Countermeasure: the
// Algorithm 3 kernel module plus the attestation-report extension.
type Polling struct {
	Guard *core.Guard
}

// NewPolling builds the polling defense from a characterized unsafe set.
func NewPolling(unsafe *core.UnsafeSet, busMHz int, cfg core.GuardConfig) (*Polling, error) {
	g, err := core.NewGuard(unsafe, busMHz, cfg)
	if err != nil {
		return nil, err
	}
	return &Polling{Guard: g}, nil
}

// Name implements Countermeasure.
func (*Polling) Name() string { return "polling (this work)" }

// Install implements Countermeasure: insmod + attestation wiring.
func (p *Polling) Install(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if err := env.Kernel.Load(p.Guard.Module()); err != nil {
		return err
	}
	// The paper swaps the OCM flag for the module-loaded flag in reports.
	k := env.Kernel
	env.Registry.Features.GuardModuleLoaded = func() bool { return k.Loaded(core.ModuleName) }
	return nil
}

// Uninstall implements Countermeasure (rmmod; the attestation hook stays
// and now reports false — which is the point).
func (p *Polling) Uninstall(env *Env) error {
	if !env.Kernel.Loaded(core.ModuleName) {
		return nil
	}
	return env.Kernel.Unload(core.ModuleName)
}

// AllowsBenignDVFS implements Countermeasure: safe-region undervolts are
// untouched by Algorithm 3.
func (*Polling) AllowsBenignDVFS() bool { return true }

// HardwareLevel implements Countermeasure: the kernel-module deployment is
// software, but the safe-state characterization admits the deeper variants
// below; the module itself is not hardware-level.
func (*Polling) HardwareLevel() bool { return false }

// Microcode is the Sec. 5.1 deployment: a microcode hook on wrmsr 0x150
// silently ignores writes that would violate the maximal safe state
// ("this write-ignore behaviour is implemented upon several other MSRs").
type Microcode struct {
	// MaxSafeOffsetMV is the maximal safe state from characterization.
	MaxSafeOffsetMV int
	installed       bool
	hookIDs         []int
	// Ignored counts writes dropped by the guard.
	Ignored uint64
}

// Name implements Countermeasure.
func (*Microcode) Name() string { return "microcode write-ignore" }

// Install implements Countermeasure.
func (m *Microcode) Install(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if m.MaxSafeOffsetMV > 0 {
		return fmt.Errorf("defense: maximal safe offset %d must be <= 0", m.MaxSafeOffsetMV)
	}
	if m.installed {
		return errors.New("defense: microcode guard already installed")
	}
	m.hookIDs = m.hookIDs[:0]
	for i := 0; i < env.Platform.NumCores(); i++ {
		id := env.Platform.MSRFile(i).AddWriteHook(msr.OCMailbox, func(_ *msr.File, old, v uint64) (uint64, error) {
			d := msr.DecodeVoltageOffset(v)
			if d.Busy && d.Write && d.Plane == msr.PlaneCore && d.OffsetMV < m.MaxSafeOffsetMV {
				m.Ignored++
				return old, nil // write-ignore: wrmsr succeeds, state unchanged
			}
			return v, nil
		})
		m.hookIDs = append(m.hookIDs, id)
	}
	m.installed = true
	return nil
}

// Uninstall implements Countermeasure.
func (m *Microcode) Uninstall(env *Env) error {
	if !m.installed {
		return nil
	}
	for i, id := range m.hookIDs {
		env.Platform.MSRFile(i).RemoveWriteHook(msr.OCMailbox, id)
	}
	m.hookIDs = nil
	m.installed = false
	return nil
}

// AllowsBenignDVFS implements Countermeasure: undervolts within the maximal
// safe state pass through.
func (*Microcode) AllowsBenignDVFS() bool { return true }

// HardwareLevel implements Countermeasure.
func (*Microcode) HardwareLevel() bool { return true }

// ClampMSR is the Sec. 5.2 deployment: a new MSR_VOLTAGE_OFFSET_LIMIT
// (modelled at 0x154) holds the maximal safe state, and writes to 0x150
// are *clamped* to it — the DRAM_MIN_PWR pattern from MSR_DRAM_POWER_INFO.
type ClampMSR struct {
	// LimitMV is the clamp value programmed into MSR_VOLTAGE_OFFSET_LIMIT.
	LimitMV   int
	installed bool
	hookIDs   []int
	// Clamped counts writes whose offset was pulled up to the limit.
	Clamped uint64
}

// Name implements Countermeasure.
func (*ClampMSR) Name() string { return "clamp MSR (MSR_VOLTAGE_OFFSET_LIMIT)" }

// Install implements Countermeasure.
func (c *ClampMSR) Install(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if c.LimitMV > 0 {
		return fmt.Errorf("defense: clamp limit %d must be <= 0", c.LimitMV)
	}
	if c.installed {
		return errors.New("defense: clamp MSR already installed")
	}
	c.hookIDs = c.hookIDs[:0]
	for i := 0; i < env.Platform.NumCores(); i++ {
		f := env.Platform.MSRFile(i)
		// Program the limit register (read-only to software in spirit;
		// vendors would fuse it).
		f.Poke(msr.VoltageOffsetLimit, uint64(int64(c.LimitMV))&0xFFFF)
		id := f.AddWriteHook(msr.OCMailbox, func(_ *msr.File, old, v uint64) (uint64, error) {
			d := msr.DecodeVoltageOffset(v)
			if d.Busy && d.Write && d.Plane == msr.PlaneCore && d.OffsetMV < c.LimitMV {
				c.Clamped++
				return msr.EncodeVoltageOffset(c.LimitMV, d.Plane), nil
			}
			return v, nil
		})
		c.hookIDs = append(c.hookIDs, id)
	}
	c.installed = true
	return nil
}

// Uninstall implements Countermeasure.
func (c *ClampMSR) Uninstall(env *Env) error {
	if !c.installed {
		return nil
	}
	for i, id := range c.hookIDs {
		env.Platform.MSRFile(i).RemoveWriteHook(msr.OCMailbox, id)
	}
	c.hookIDs = nil
	c.installed = false
	return nil
}

// AllowsBenignDVFS implements Countermeasure.
func (*ClampMSR) AllowsBenignDVFS() bool { return true }

// HardwareLevel implements Countermeasure.
func (*ClampMSR) HardwareLevel() bool { return true }
