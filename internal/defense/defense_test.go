package defense

import (
	"errors"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/kernel"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/sgx"
	"plugvolt/internal/sim"
	"plugvolt/internal/victim"
)

// newEnv builds a Sky Lake machine with kernel and SGX registry.
func newEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &Env{
		Platform: p,
		Kernel:   kernel.New(p.Sim, p),
		Registry: sgx.NewRegistry(p.Sim),
	}
}

// characterize runs a quick sweep and returns the unsafe set and grid.
func characterize(t *testing.T, env *Env) (*core.UnsafeSet, *core.Grid) {
	t.Helper()
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	ch, err := core.NewCharacterizer(env.Platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	return g.UnsafeSet(), g
}

func TestEnvValidate(t *testing.T) {
	if err := (&Env{}).Validate(); err == nil {
		t.Fatal("empty env accepted")
	}
	var nilEnv *Env
	if err := nilEnv.Validate(); err == nil {
		t.Fatal("nil env accepted")
	}
	if err := newEnv(t, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoneBaseline(t *testing.T) {
	env := newEnv(t, 1)
	var n None
	if n.Name() != "none" || !n.AllowsBenignDVFS() || n.HardwareLevel() {
		t.Fatal("None properties wrong")
	}
	if err := n.Install(env); err != nil {
		t.Fatal(err)
	}
	if err := n.Uninstall(env); err != nil {
		t.Fatal(err)
	}
}

func TestAccessControlBlocksMailboxWhileEnclaveRuns(t *testing.T) {
	env := newEnv(t, 2)
	ac := &AccessControl{}
	if err := ac.Install(env); err != nil {
		t.Fatal(err)
	}
	if err := ac.Install(env); err == nil {
		t.Fatal("double install accepted")
	}
	// No enclave: writes pass (lockdown is SGX-conditional).
	if err := env.Platform.WriteOffsetViaMSR(0, -20, msr.PlaneCore); err != nil {
		t.Fatalf("write without enclave blocked: %v", err)
	}
	// With an enclave: #GP.
	encl, _ := env.Registry.Create("victim", 1)
	err := env.Platform.WriteOffsetViaMSR(0, -20, msr.PlaneCore)
	var gp *msr.GPFault
	if !errors.As(err, &gp) {
		t.Fatalf("write with enclave: %v", err)
	}
	// Attestation reflects the lockdown.
	if rep := encl.Attest(1); !rep.OCMDisabled {
		t.Fatal("OCM lockdown not attested")
	}
	if ac.AllowsBenignDVFS() {
		t.Fatal("access control claims to allow benign DVFS")
	}
	// Uninstall restores the mailbox and clears the flag.
	if err := ac.Uninstall(env); err != nil {
		t.Fatal(err)
	}
	if err := env.Platform.WriteOffsetViaMSR(0, -20, msr.PlaneCore); err != nil {
		t.Fatalf("write after uninstall blocked: %v", err)
	}
	if rep := encl.Attest(2); rep.OCMDisabled {
		t.Fatal("flag survives uninstall")
	}
	if err := ac.Uninstall(env); err != nil {
		t.Fatal("double uninstall errored")
	}
}

func TestPollingDefenseInstallAndAttestation(t *testing.T) {
	env := newEnv(t, 3)
	unsafe, _ := characterize(t, env)
	pol, err := NewPolling(unsafe, env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	if !env.Kernel.Loaded(core.ModuleName) {
		t.Fatal("module not loaded")
	}
	encl, _ := env.Registry.Create("attested", 1)
	rep := encl.Attest(7)
	if !rep.GuardModuleReported || !rep.GuardModuleLoaded {
		t.Fatal("guard module state not attested")
	}
	if rep.OCMDisabled {
		t.Fatal("polling defense must not disable the OCM")
	}
	// Client policy accepts; after adversarial rmmod it must reject.
	pos := sgx.VerifyPolicy{RequireGuardModule: true}
	if err := pos.Verify(rep); err != nil {
		t.Fatal(err)
	}
	if err := pol.Uninstall(env); err != nil {
		t.Fatal(err)
	}
	rep = encl.Attest(8)
	if err := pos.Verify(rep); err == nil {
		t.Fatal("attestation passed after rmmod")
	}
	if err := pol.Uninstall(env); err != nil {
		t.Fatal("double uninstall errored")
	}
	if !pol.AllowsBenignDVFS() {
		t.Fatal("polling must allow benign DVFS")
	}
}

func TestMicrocodeWriteIgnore(t *testing.T) {
	env := newEnv(t, 4)
	_, grid := characterize(t, env)
	msv := grid.MaximalSafeOffsetMV(5)
	mc := &Microcode{MaxSafeOffsetMV: msv}
	if err := mc.Install(env); err != nil {
		t.Fatal(err)
	}
	if err := mc.Install(env); err == nil {
		t.Fatal("double install accepted")
	}
	c := env.Platform.Core(0)

	// A write within the maximal safe state passes.
	benign := msv + 10 // shallower
	if err := env.Platform.WriteOffsetViaMSR(0, benign, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	env.Platform.SettleAll()
	if got := c.OffsetMV(); got > benign+2 || got < benign-2 {
		t.Fatalf("benign offset not applied: %d", got)
	}

	// An unsafe write succeeds (no #GP, like real write-ignore MSRs) but
	// changes nothing.
	if err := env.Platform.WriteOffsetViaMSR(0, msv-100, msr.PlaneCore); err != nil {
		t.Fatalf("write-ignore returned error: %v", err)
	}
	env.Platform.SettleAll()
	if got := c.OffsetMV(); got > benign+2 || got < benign-2 {
		t.Fatalf("unsafe write changed offset to %d", got)
	}
	if mc.Ignored != 1 {
		t.Fatalf("Ignored = %d", mc.Ignored)
	}
	if !mc.AllowsBenignDVFS() || !mc.HardwareLevel() {
		t.Fatal("microcode properties wrong")
	}
	if err := mc.Uninstall(env); err != nil {
		t.Fatal(err)
	}
	// After uninstall the unsafe write lands (machine unprotected again).
	if err := env.Platform.WriteOffsetViaMSR(0, msv-100, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	env.Platform.SettleAll()
	if got := c.OffsetMV(); got > msv-90 {
		t.Fatalf("uninstall did not restore mailbox: offset %d", got)
	}
}

func TestMicrocodeRejectsPositiveLimit(t *testing.T) {
	env := newEnv(t, 4)
	mc := &Microcode{MaxSafeOffsetMV: 5}
	if err := mc.Install(env); err == nil {
		t.Fatal("positive maximal safe accepted")
	}
}

func TestClampMSR(t *testing.T) {
	env := newEnv(t, 5)
	_, grid := characterize(t, env)
	limit := grid.MaximalSafeOffsetMV(5)
	cl := &ClampMSR{LimitMV: limit}
	if err := cl.Install(env); err != nil {
		t.Fatal(err)
	}
	if err := cl.Install(env); err == nil {
		t.Fatal("double install accepted")
	}
	c := env.Platform.Core(0)

	// Unsafe write is clamped to the limit, not rejected (DRAM_MIN_PWR
	// semantics).
	if err := env.Platform.WriteOffsetViaMSR(0, limit-150, msr.PlaneCore); err != nil {
		t.Fatalf("clamped write errored: %v", err)
	}
	env.Platform.SettleAll()
	if got := c.OffsetMV(); got > limit+2 || got < limit-2 {
		t.Fatalf("offset %d, want clamped to %d", got, limit)
	}
	if cl.Clamped != 1 {
		t.Fatalf("Clamped = %d", cl.Clamped)
	}
	// Within-limit write passes unmodified.
	benign := limit + 15
	if err := env.Platform.WriteOffsetViaMSR(0, benign, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	env.Platform.SettleAll()
	if got := c.OffsetMV(); got > benign+2 || got < benign-2 {
		t.Fatalf("benign offset %d, want %d", got, benign)
	}
	if !cl.AllowsBenignDVFS() || !cl.HardwareLevel() {
		t.Fatal("clamp properties wrong")
	}
	if err := cl.Uninstall(env); err != nil {
		t.Fatal(err)
	}
	if err := (&ClampMSR{LimitMV: 1}).Install(env); err == nil {
		t.Fatal("positive limit accepted")
	}
}

func TestClampGuaranteesNoUnsafeStateEver(t *testing.T) {
	// The hardware clamp has zero turnaround: no matter what software
	// writes, the register never holds an unsafe offset.
	env := newEnv(t, 6)
	unsafe, grid := characterize(t, env)
	limit := grid.MaximalSafeOffsetMV(5)
	cl := &ClampMSR{LimitMV: limit}
	if err := cl.Install(env); err != nil {
		t.Fatal(err)
	}
	for off := -5; off >= -350; off -= 15 {
		if err := env.Platform.WriteOffsetViaMSR(1, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		freq := env.Platform.FreqKHz(1)
		if unsafe.Contains(freq, env.Platform.Core(1).OffsetMV()) {
			t.Fatalf("register in unsafe state at requested %d", off)
		}
	}
}

func TestMinefieldDetectsNaiveUndervolting(t *testing.T) {
	// Without single-stepping, a continuous undervolt faults a trap long
	// before enough payload faults accumulate: the attack is detected.
	env := newEnv(t, 7)
	p := env.Platform
	c := p.Core(1)
	// Drive into the fault window (imul faulting, machine up).
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(1, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 1e-3 && c.CrashProbability() < 1e-9 {
			break
		}
	}
	mf := &Minefield{Density: 3}
	inner, err := victim.NewIMulLoop(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mf.Instrument(inner, c)
	if err != nil {
		t.Fatal(err)
	}
	encl, _ := env.Registry.Create("protected", 1)
	err = encl.Run(prog)
	if !errors.Is(err, ErrTrapped) {
		t.Fatalf("expected trap detection, got %v (payload faults %d)", err, inner.Faults)
	}
	if !prog.Detected || prog.Traps == 0 {
		t.Fatal("detection state inconsistent")
	}
	// Density 3: at least ~3 traps per payload step ran before detection.
	if inner.Faults > 3 {
		t.Fatalf("payload collected %d faults before a trap fired", inner.Faults)
	}
}

func TestMinefieldBypassedBySingleStepping(t *testing.T) {
	// The paper's Sec. 4.1 argument: an SGX-Step adversary undervolts only
	// during payload instructions and restores before traps execute, so
	// Minefield never detects. We model the idealized stepping attacker
	// with instant voltage actuation (zero-slew rail) to isolate the
	// architectural argument from regulator physics.
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Platform: p, Kernel: kernel.New(p.Sim, p), Registry: sgx.NewRegistry(p.Sim)}
	c := p.Core(1)

	// Find the unsafe offset (register-level) for the pinned frequency.
	attackOffset := 0
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(1, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 0.02 && c.CrashProbability() < 1e-9 {
			attackOffset = off
			break
		}
	}
	if attackOffset == 0 {
		t.Fatal("no workable attack offset")
	}
	restore := func() {
		_ = p.WriteOffsetViaMSR(1, 0, msr.PlaneCore)
		p.SettleAll()
	}
	undervolt := func() {
		_ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore)
		p.SettleAll()
	}
	restore()

	mf := &Minefield{Density: 3}
	inner, err := victim.NewIMulLoop(c, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mf.Instrument(inner, c)
	if err != nil {
		t.Fatal(err)
	}
	_ = env // env documents the full-machine setup; stepping drives prog directly

	stepper := sgx.NewStepper(p.Sim)
	// Attacker callback: undervolt exactly when the *next* step is
	// payload, restore otherwise.
	if prog.NextIsTrap() {
		restore()
	} else {
		undervolt()
	}
	err = stepper.Run(prog, func(int) error {
		if prog.NextIsTrap() {
			restore()
		} else {
			undervolt()
		}
		return nil
	})
	if errors.Is(err, ErrTrapped) {
		t.Fatal("single-stepping adversary still tripped a trap")
	}
	if err != nil {
		t.Fatal(err)
	}
	if inner.Faults == 0 {
		t.Fatal("stepping attack induced no payload faults — bypass demonstration failed")
	}
}

func TestMinefieldValidation(t *testing.T) {
	env := newEnv(t, 9)
	mf := &Minefield{Density: 0}
	inner, _ := victim.NewIMulLoop(env.Platform.Core(0), 10)
	if _, err := mf.Instrument(inner, env.Platform.Core(0)); err == nil {
		t.Fatal("zero density accepted")
	}
	mf.Density = 2
	if _, err := mf.Instrument(nil, env.Platform.Core(0)); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := mf.Instrument(inner, nil); err == nil {
		t.Fatal("nil core accepted")
	}
	if mf.Name() == "" || !mf.AllowsBenignDVFS() || mf.HardwareLevel() {
		t.Fatal("minefield properties wrong")
	}
}

func TestCountermeasureMatrixProperties(t *testing.T) {
	// Experiment E2's static columns: who allows benign DVFS, who can sink
	// to hardware.
	env := newEnv(t, 10)
	unsafe, grid := characterize(t, env)
	pol, err := NewPolling(unsafe, env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	msv := grid.MaximalSafeOffsetMV(5)
	all := []Countermeasure{
		None{},
		&AccessControl{},
		pol,
		&Microcode{MaxSafeOffsetMV: msv},
		&ClampMSR{LimitMV: msv},
	}
	wantBenign := []bool{true, false, true, true, true}
	wantHW := []bool{false, false, false, true, true}
	for i, cm := range all {
		if cm.AllowsBenignDVFS() != wantBenign[i] {
			t.Errorf("%s: benign DVFS = %v", cm.Name(), cm.AllowsBenignDVFS())
		}
		if cm.HardwareLevel() != wantHW[i] {
			t.Errorf("%s: hardware level = %v", cm.Name(), cm.HardwareLevel())
		}
	}
}

func TestGuardStopsLiveAttackEndToEnd(t *testing.T) {
	// Polling defense vs a live undervolting attacker with victim load.
	env := newEnv(t, 11)
	unsafe, _ := characterize(t, env)
	pol, err := NewPolling(unsafe, env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	p := env.Platform
	freq := p.FreqKHz(1)
	attackOffset := unsafe.OnsetMV[freq] - 50
	attacker := p.Sim.Every(777*sim.Microsecond, func() {
		_ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore)
	})
	defer attacker.Stop()
	faults := 0
	for i := 0; i < 100; i++ {
		p.Sim.RunFor(333 * sim.Microsecond)
		loop, _ := victim.NewIMulLoop(p.Core(1), 100_000)
		res, err := loop.RunBatch()
		if err != nil {
			t.Fatalf("crash under defense: %v", err)
		}
		faults += res.Faults
	}
	if faults != 0 {
		t.Fatalf("defense leaked %d faults", faults)
	}
	if pol.Guard.Interventions == 0 {
		t.Fatal("defense never intervened")
	}
}

func TestZeroSteppingGivesUnboundedRecoveryWindow(t *testing.T) {
	// The paper's Sec. 4.1 second stepping primitive: zero-stepping gives
	// the adversary "unbounded time between injection of DVFS fault and
	// occurrence of trap deflections". With the realistic slow regulator
	// (0.5 mV/us), a single-stepping attacker could NOT restore the rail
	// between a faulted payload step and the next trap (~10 us later) —
	// the trap would fault and detect the attack. Zero-stepping provides
	// the arbitrarily long dwell that lets the rail recover first.
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 66)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Core(1)
	attackOffset := 0
	for off := -1; off >= -400; off-- {
		if err := p.WriteOffsetViaMSR(1, off, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if c.FaultProbability(cpu.ClassIMul) > 0.05 && c.CrashProbability() < 1e-9 {
			attackOffset = off
			break
		}
	}
	if err := p.WriteOffsetViaMSR(1, 0, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()

	mf := &Minefield{Density: 3}
	inner, err := victim.NewIMulLoop(c, 800)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mf.Instrument(inner, c)
	if err != nil {
		t.Fatal(err)
	}
	stepper := sgx.NewStepper(p.Sim)
	// Rail travel for |attackOffset| at 0.5 mV/us plus command latency.
	dwell := sim.Duration(float64(-attackOffset)/0.5)*sim.Microsecond + 40*sim.Microsecond
	railLow := false
	arm := func() {
		if prog.NextIsTrap() {
			if railLow {
				_ = p.WriteOffsetViaMSR(1, 0, msr.PlaneCore)
				stepper.ZeroStep(dwell) // unbounded attacker time: rail recovers
				railLow = false
			}
			return
		}
		if !railLow {
			_ = p.WriteOffsetViaMSR(1, attackOffset, msr.PlaneCore)
			stepper.ZeroStep(dwell) // rail descends before the payload step
			railLow = true
		}
	}
	arm()
	err = stepper.Run(prog, func(int) error { arm(); return nil })
	if errors.Is(err, ErrTrapped) {
		t.Fatal("zero-stepping adversary still tripped a trap")
	}
	if err != nil {
		t.Fatal(err)
	}
	if inner.Faults == 0 {
		t.Fatal("no payload faults — zero-stepping bypass failed")
	}
	if stepper.ZeroSteps == 0 {
		t.Fatal("test exercised no zero-stepping")
	}
}
