package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"

	"plugvolt/internal/sim"
)

// realCheckpoint produces a checkpoint the way the engine does: by halting
// a real streaming run at its first batch boundary.
func realCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	cfg := StreamConfig{
		Config:         Config{Machines: 3, Seed: 9, Attack: "none", Window: sim.Millisecond},
		Batch:          2,
		Epochs:         2,
		CheckpointPath: path,
		Halt:           func(p Progress) bool { return true },
	}
	if _, err := RunStream(cfg); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestCheckpointRoundTrip: encode/decode is lossless — the decoded state
// re-encodes to the identical bytes, and the folded telemetry snapshot
// survives with its exposition intact (float values round-trip exactly
// through the JSON payload).
func TestCheckpointRoundTrip(t *testing.T) {
	ck := realCheckpoint(t)
	blob, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("checkpoint does not round-trip byte-for-byte")
	}
	var a, b bytes.Buffer
	if err := ck.Merged.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.Merged.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged snapshot exposition changed across the round trip")
	}
	if back.MachinesDone != 2 || back.Machines != 3 || back.Epochs != 2 {
		t.Fatalf("decoded state %+v", back)
	}
}

// reframe rebuilds a valid frame around an arbitrary payload — for forging
// blobs whose header is consistent but whose payload is wrong.
func reframe(payload []byte) []byte {
	buf := make([]byte, checkpointHeaderLen+len(payload))
	copy(buf[0:4], checkpointMagic[:])
	binary.BigEndian.PutUint16(buf[4:6], CheckpointVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[checkpointHeaderLen:], payload)
	return buf
}

// TestCheckpointDecodeRejections drives every typed rejection class: the
// decoder must classify each malformation, never panic, and never hand back
// state it cannot vouch for.
func TestCheckpointDecodeRejections(t *testing.T) {
	valid, err := realCheckpoint(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	mangle := func(f func([]byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name  string
		blob  []byte
		class error
	}{
		{"empty", nil, ErrCheckpointTruncated},
		{"short_header", valid[:checkpointHeaderLen-1], ErrCheckpointTruncated},
		{"truncated_payload", valid[:len(valid)-3], ErrCheckpointTruncated},
		{"bad_magic", mangle(func(b []byte) []byte { b[0] = 'X'; return b }), ErrCheckpointMagic},
		{"version_skew", mangle(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:6], CheckpointVersion+1)
			return b
		}), ErrCheckpointVersion},
		{"flipped_payload_byte", mangle(func(b []byte) []byte {
			b[checkpointHeaderLen+5] ^= 0xff
			return b
		}), ErrCheckpointChecksum},
		{"absurd_length", mangle(func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[8:16], 1<<40)
			return b
		}), ErrCheckpointPayload},
		{"garbage_json", reframe([]byte("{not json")), ErrCheckpointPayload},
		{"payload_version_skew", reframe(func() []byte {
			ck := *mustDecode(t, valid)
			ck.Version = CheckpointVersion + 1
			p, _ := json.Marshal(&ck)
			return p
		}()), ErrCheckpointVersion},
		{"machines_done_out_of_range", reframe(func() []byte {
			ck := *mustDecode(t, valid)
			ck.MachinesDone = ck.Machines + 1
			p, _ := json.Marshal(&ck)
			return p
		}()), ErrCheckpointPayload},
		{"negative_epochs", reframe(func() []byte {
			ck := *mustDecode(t, valid)
			ck.Epochs = 0
			p, _ := json.Marshal(&ck)
			return p
		}()), ErrCheckpointPayload},
		{"empty_models", reframe(func() []byte {
			ck := *mustDecode(t, valid)
			ck.Models = nil
			p, _ := json.Marshal(&ck)
			return p
		}()), ErrCheckpointPayload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(tc.blob)
			if err == nil {
				t.Fatal("malformed checkpoint accepted")
			}
			if !errors.Is(err, tc.class) {
				t.Fatalf("got %v, want class %v", err, tc.class)
			}
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection %v is not a *CheckpointError", err)
			}
		})
	}
}

func mustDecode(t *testing.T, blob []byte) *Checkpoint {
	t.Helper()
	ck, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestWriteCheckpointFileAtomic: a rewrite leaves no .tmp debris and the
// file always decodes to the latest state.
func TestWriteCheckpointFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	ck := realCheckpoint(t)
	for i := 0; i < 2; i++ {
		ck.BatchesDone = i + 1
		if err := WriteCheckpointFile(path, ck); err != nil {
			t.Fatal(err)
		}
	}
	back, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.BatchesDone != 2 {
		t.Fatalf("file holds batch %d, want the latest write", back.BatchesDone)
	}
	if _, err := ReadCheckpointFile(path + ".tmp"); err == nil {
		t.Fatal("temporary file left behind")
	}
	if _, err := ReadCheckpointFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint file read successfully")
	}
}

// FuzzFleetCheckpointDecode: the decoder must never panic and must reject
// every malformed blob with a typed *CheckpointError; anything it accepts
// must re-encode losslessly (no silently-wrong resume state).
func FuzzFleetCheckpointDecode(f *testing.F) {
	// Seed with a real checkpoint and systematic malformations of it.
	cfg := StreamConfig{
		Config:         Config{Machines: 2, Seed: 3, Attack: "none", Window: sim.Millisecond},
		Batch:          1,
		CheckpointPath: filepath.Join(f.TempDir(), "seed.ckpt"),
		Halt:           func(p Progress) bool { return true },
	}
	if _, err := RunStream(cfg); !errors.Is(err, ErrHalted) {
		f.Fatal(err)
	}
	valid, err := ReadCheckpointFile(cfg.CheckpointPath)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := valid.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:checkpointHeaderLen])
	f.Add([]byte("PVFC"))
	f.Add(reframe([]byte(`{"version":1}`)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped rejection: %v", err)
			}
			if ck != nil {
				t.Fatal("state returned alongside an error")
			}
			return
		}
		// Accepted: the state must be internally consistent and survive a
		// re-encode/decode cycle with identical JSON.
		if ck.MachinesDone < 0 || ck.MachinesDone > ck.Machines || ck.Epochs < 1 {
			t.Fatalf("accepted inconsistent state %+v", ck)
		}
		re, err := ck.Encode()
		if err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
		back, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		j1, _ := json.Marshal(ck)
		j2, _ := json.Marshal(back)
		if !bytes.Equal(j1, j2) {
			t.Fatal("checkpoint state drifts across re-encode")
		}
	})
}

// TestCheckpointCarriesFailures: partial-failure state survives the
// checkpoint so a resumed run reports the same PartialError totals.
func TestCheckpointCarriesFailures(t *testing.T) {
	failpoint = func(stage string, idx int) error {
		if stage == "deploy" && idx == 0 {
			return errors.New("injected")
		}
		return nil
	}
	defer func() { failpoint = nil }()
	base := Config{Machines: 4, Seed: 2, Attack: "none", Window: sim.Millisecond}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	cut := StreamConfig{Config: base, Batch: 2, CheckpointPath: path,
		Halt: func(p Progress) bool { return p.BatchesDone >= 1 }}
	if _, err := RunStream(cut); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	failpoint = nil // the failure happened before the kill; resume is clean
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunStream(StreamConfig{Config: base, Batch: 2, Resume: ck})
	var partial *PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("resumed run lost the failure: %v", err)
	}
	if partial.Total != 1 || partial.Failures[0].Index != 0 || partial.Failures[0].Stage != "deploy" {
		t.Fatalf("partial %+v", partial)
	}
	if rep.Aggregate.Errors != 1 {
		t.Fatalf("aggregate errors %d, want 1", rep.Aggregate.Errors)
	}
}
