// Checkpoint codec for the streaming epoch engine.
//
// A checkpoint is the engine's entire mutable state at a batch boundary:
// machines done (which, because per-machine seeds are pure functions of the
// machine index, IS the RNG position of the stream), the running aggregate,
// the per-model rollup, the recorded failures, and the folded telemetry
// snapshot. The blob is framed — magic, version, payload length, CRC32,
// JSON payload — and the decoder rejects truncation, corruption and version
// skew with typed errors; it never panics and never silently resumes wrong
// state. A config fingerprint binds the checkpoint to the experiment that
// produced it: resuming under a different seed, fleet size, model cycle,
// sweep or guard config is a mismatch error, while execution shape (batch,
// workers) is deliberately outside the fingerprint and may change freely
// between the original run and the resume.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"

	"plugvolt/internal/telemetry"
)

// checkpointMagic opens every checkpoint blob.
var checkpointMagic = [4]byte{'P', 'V', 'F', 'C'}

// CheckpointVersion is the current encoding version. Decoders accept
// exactly this version: the format carries deterministic engine state, so
// cross-version resumption would risk a silently different report.
const CheckpointVersion = 1

// checkpointHeaderLen is magic(4) + version(2) + reserved(2) + payload
// length(8) + CRC32(4).
const checkpointHeaderLen = 20

// maxCheckpointPayload bounds the declared payload length so a corrupted
// header cannot demand an absurd allocation.
const maxCheckpointPayload = 1 << 31

// Typed checkpoint failure classes. DecodeCheckpoint wraps each in a
// *CheckpointError, so callers can errors.Is against the class or
// errors.As for the detail.
var (
	ErrCheckpointTruncated = errors.New("checkpoint truncated")
	ErrCheckpointMagic     = errors.New("not a plugvolt fleet checkpoint")
	ErrCheckpointVersion   = errors.New("unsupported checkpoint version")
	ErrCheckpointChecksum  = errors.New("checkpoint checksum mismatch")
	ErrCheckpointPayload   = errors.New("malformed checkpoint payload")
	ErrCheckpointMismatch  = errors.New("checkpoint does not match this configuration")
)

// CheckpointError is the typed decode/resume failure: the class (one of the
// Err* sentinels) plus human-readable detail.
type CheckpointError struct {
	Class  error
	Detail string
}

func (e *CheckpointError) Error() string {
	if e.Detail == "" {
		return "fleet: " + e.Class.Error()
	}
	return fmt.Sprintf("fleet: %s: %s", e.Class.Error(), e.Detail)
}

func (e *CheckpointError) Unwrap() error { return e.Class }

func ckptErr(class error, format string, args ...any) *CheckpointError {
	return &CheckpointError{Class: class, Detail: fmt.Sprintf(format, args...)}
}

// Checkpoint is the decoded engine state. The experiment-identity fields
// (Machines..WindowPS) are stored redundantly with the fingerprint so a
// mismatch error can say what differs.
type Checkpoint struct {
	Version      int                 `json:"version"`
	Fingerprint  uint64              `json:"fingerprint"`
	Machines     int                 `json:"machines"`
	MachinesDone int                 `json:"machines_done"`
	BatchesDone  int                 `json:"batches_done"`
	Epochs       int                 `json:"epochs"`
	Seed         int64               `json:"seed"`
	Attack       string              `json:"attack"`
	Models       []string            `json:"models"`
	WindowPS     int64               `json:"window_ps"`
	Aggregate    Aggregate           `json:"aggregate"`
	ModelRows    []ModelSummary      `json:"by_model"`
	Failures     []*MachineError     `json:"failures,omitempty"`
	TotalErrors  int                 `json:"total_errors"`
	// Incidents carries the capped flight-recorder bundle list across the
	// boundary (the exact count lives in Aggregate.Incidents), so a resumed
	// run's incident collection is byte-identical to an uninterrupted one.
	// Additive and omitempty: checkpoints without flight recording keep
	// their version-1 shape.
	Incidents []Incident          `json:"incidents,omitempty"`
	Merged    *telemetry.Snapshot `json:"merged"`
}

// fingerprint hashes every config field that can change a result byte —
// the experiment identity. Batch and worker counts are excluded by design:
// they shape execution, never results, so a resume may re-slice freely.
func (cfg *StreamConfig) fingerprint(epochs int, modelNames []string) uint64 {
	h := fnv.New64a()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	put("machines=%d|epochs=%d|seed=%d|attack=%s|window=%d|", cfg.Machines, epochs, cfg.Seed, cfg.Attack, int64(cfg.Window))
	for _, m := range modelNames {
		put("model=%s|", m)
	}
	s := cfg.Sweep
	put("sweep=%d,%d,%d,%d,%d,%d,%d,%d|", s.VictimCore, s.DriverCore, s.Iterations,
		s.OffsetStartMV, s.OffsetEndMV, s.OffsetStepMV, int64(s.SettleWait), s.Class)
	g := cfg.Guard
	put("guard=%d,%d,%t,%d,%d,%t,%d,%d|", int64(g.PollPeriod), g.PinnedCore, g.PerCoreThreads,
		g.SafeOffsetMV, g.MarginMV, g.VoltageCrossCheck, g.CrossCheckSlackMV, g.CrossCheckPersist)
	// The flight window is experiment identity: it decides which records a
	// captured bundle carries, so a resume must not re-slice it.
	put("flight=%d|", cfg.FlightWindow)
	return h.Sum64()
}

// checkpoint captures the engine state after a completed batch.
func (cfg *StreamConfig) checkpoint(st *streamState, epochs int, modelNames []string) *Checkpoint {
	return &Checkpoint{
		Version:      CheckpointVersion,
		Fingerprint:  cfg.fingerprint(epochs, modelNames),
		Machines:     cfg.Machines,
		MachinesDone: st.machinesDone,
		BatchesDone:  st.batchesDone,
		Epochs:       epochs,
		Seed:         cfg.Seed,
		Attack:       cfg.Attack,
		Models:       modelNames,
		WindowPS:     int64(cfg.Window),
		Aggregate:    st.agg,
		ModelRows:    st.modelRows(),
		Failures:     st.partial.Failures,
		TotalErrors:  st.partial.Total,
		Incidents:    st.incidents,
		Merged:       st.merged,
	}
}

// restore loads a checkpoint into the engine state, after verifying it
// belongs to this configuration.
func (ck *Checkpoint) restore(cfg *StreamConfig, epochs int, modelNames []string, st *streamState) error {
	want := cfg.fingerprint(epochs, modelNames)
	if ck.Fingerprint != want {
		return ckptErr(ErrCheckpointMismatch,
			"checkpoint is for seed %d, %d machines, %d epochs, attack %q, models %v; this run wants seed %d, %d machines, %d epochs, attack %q, models %v",
			ck.Seed, ck.Machines, ck.Epochs, ck.Attack, ck.Models,
			cfg.Seed, cfg.Machines, epochs, cfg.Attack, modelNames)
	}
	st.machinesDone = ck.MachinesDone
	st.batchesDone = ck.BatchesDone
	st.agg = ck.Aggregate
	for i := range ck.ModelRows {
		row := ck.ModelRows[i]
		st.models[row.Model] = &row
	}
	st.partial = &PartialError{Total: ck.TotalErrors, Failures: ck.Failures}
	st.incidents = ck.Incidents
	if ck.Merged != nil {
		st.merged = ck.Merged
	}
	return nil
}

// Encode frames the checkpoint: magic, version, payload length, CRC32 of
// the payload, then the JSON payload. Struct-field JSON keeps the bytes
// deterministic for a given state.
func (ck *Checkpoint) Encode() ([]byte, error) {
	payload, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, checkpointHeaderLen+len(payload))
	copy(buf[0:4], checkpointMagic[:])
	binary.BigEndian.PutUint16(buf[4:6], CheckpointVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[checkpointHeaderLen:], payload)
	return buf, nil
}

// DecodeCheckpoint parses and verifies a checkpoint blob. Every rejection
// is a *CheckpointError wrapping one of the Err* classes; it never panics,
// and a blob that decodes cleanly carries internally-consistent state
// (counts in range, version matched) — resuming from silently wrong state
// is the failure mode this decoder exists to prevent.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < checkpointHeaderLen {
		return nil, ckptErr(ErrCheckpointTruncated, "%d bytes, need at least the %d-byte header", len(data), checkpointHeaderLen)
	}
	if [4]byte(data[0:4]) != checkpointMagic {
		return nil, ckptErr(ErrCheckpointMagic, "magic %q", data[0:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != CheckpointVersion {
		return nil, ckptErr(ErrCheckpointVersion, "version %d, this build reads only version %d", v, CheckpointVersion)
	}
	plen := binary.BigEndian.Uint64(data[8:16])
	if plen > maxCheckpointPayload {
		return nil, ckptErr(ErrCheckpointPayload, "declared payload length %d exceeds the %d limit", plen, maxCheckpointPayload)
	}
	if uint64(len(data)-checkpointHeaderLen) < plen {
		return nil, ckptErr(ErrCheckpointTruncated, "payload declares %d bytes, %d present", plen, len(data)-checkpointHeaderLen)
	}
	payload := data[checkpointHeaderLen : checkpointHeaderLen+int(plen)]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[16:20]) {
		return nil, ckptErr(ErrCheckpointChecksum, "payload CRC32 %08x, header says %08x", sum, binary.BigEndian.Uint32(data[16:20]))
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, ckptErr(ErrCheckpointPayload, "%v", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, ckptErr(ErrCheckpointVersion, "payload version %d disagrees with header version %d", ck.Version, CheckpointVersion)
	}
	if ck.Machines <= 0 || ck.MachinesDone < 0 || ck.MachinesDone > ck.Machines {
		return nil, ckptErr(ErrCheckpointPayload, "machines_done %d out of range for %d machines", ck.MachinesDone, ck.Machines)
	}
	if ck.Epochs < 1 || ck.BatchesDone < 0 || ck.TotalErrors < 0 || ck.TotalErrors > ck.Machines {
		return nil, ckptErr(ErrCheckpointPayload, "inconsistent counters (epochs %d, batches %d, errors %d)", ck.Epochs, ck.BatchesDone, ck.TotalErrors)
	}
	if len(ck.Models) == 0 {
		return nil, ckptErr(ErrCheckpointPayload, "empty model cycle")
	}
	return ck, nil
}

// WriteCheckpointFile atomically replaces path with the encoded checkpoint
// (write to path.tmp, fsync, rename) so a kill mid-write leaves the
// previous boundary's checkpoint intact.
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile reads and decodes a checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}
