// Package fleet is the repository's first fleet-scale workload: a worker-pool
// engine that simulates N independent guarded machines — mixed Sky Lake /
// Kaby Lake R / Comet Lake specs — each booting, characterizing, deploying
// the polling countermeasure and (optionally) surviving an attack campaign,
// with every machine's telemetry merged into one aggregate report.
//
// This is the setting the ROADMAP's production north star describes and the
// one software-driven fault attacks actually target: not one lab machine but
// a heterogeneous fleet, every member running the guard continuously. The
// engine exists to answer fleet-shaped questions (how many interventions per
// thousand machines? what does the merged poll-latency distribution look
// like?) and to give the benchmark harness a multi-core workload whose inner
// loop is the guard's zero-alloc poll path.
//
// Determinism mirrors the PR 1 sharding invariant: machine i's seed is
// MachineSeed(fleet seed, i) — a pure function of the index — machines are
// simulated on private platforms, and results are merged by index after all
// workers finish, never in completion order. The report (JSON and merged
// Prometheus exposition) is therefore byte-identical for any -workers value.
//
// Model specs are shared: one *models.Spec per distinct model serves every
// machine of that model, so the validated timing-circuit template and the
// derived frequency/voltage tables (models' derived cache, timing
// Clone/Prepare) are built once per model, not once per machine.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"plugvolt"
	"plugvolt/internal/attack"
	"plugvolt/internal/flight"
	"plugvolt/internal/models"
	"plugvolt/internal/rng"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
)

// AttackNames lists the campaign selectors Config.Attack accepts; "none"
// idles the fleet under guard for Config.Window instead of attacking it.
func AttackNames() []string {
	return []string{"plundervolt", "voltjockey", "v0ltpwn", "redteam", "none"}
}

// MachineError is one machine's failure: which machine, which lifecycle
// stage ("boot", "characterize", "deploy", "attack") and why. The cause is
// carried as a string so the error is checkpoint- and JSON-serializable.
type MachineError struct {
	Index int    `json:"index"`
	Model string `json:"model"`
	Stage string `json:"stage"`
	Cause string `json:"cause"`
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("machine %d (%s): %s: %s", e.Index, e.Model, e.Stage, e.Cause)
}

// maxRecordedFailures bounds how many MachineErrors a PartialError retains
// verbatim; Total keeps the full count so a million-machine run with a
// systematic failure cannot balloon the error (or a checkpoint) itself.
const maxRecordedFailures = 16

// PartialError reports that the fleet completed but some machines failed.
// Run and RunStream return it alongside a fully-populated report: the
// healthy machines' results are valid, and the caller decides whether a
// partial fleet is acceptable. Failures are listed in machine-index order,
// capped at maxRecordedFailures; Total counts every failure.
type PartialError struct {
	Total    int             `json:"total"`
	Failures []*MachineError `json:"failures"`
}

func (e *PartialError) Error() string {
	if len(e.Failures) == 0 {
		return fmt.Sprintf("fleet: %d machine(s) failed", e.Total)
	}
	msg := fmt.Sprintf("fleet: %d machine(s) failed; first: %s", e.Total, e.Failures[0].Error())
	if e.Total > len(e.Failures) {
		msg += fmt.Sprintf(" (+%d more not recorded)", e.Total-len(e.Failures))
	}
	return msg
}

// record appends a failure, honouring the cap.
func (e *PartialError) record(me *MachineError) {
	e.Total++
	if len(e.Failures) < maxRecordedFailures {
		e.Failures = append(e.Failures, me)
	}
}

// failpoint, when non-nil, injects an error at the named lifecycle stage of
// machine idx. Test-only hook: it lets the partial-failure contract be
// exercised per stage and per machine without contriving real hardware
// failures. Set before calling Run/RunStream, restore after it returns.
var failpoint func(stage string, idx int) error

func injectedFailure(stage string, idx int) error {
	if failpoint == nil {
		return nil
	}
	return failpoint(stage, idx)
}

// Config parameterizes a fleet run.
type Config struct {
	// Machines is the fleet size.
	Machines int
	// Workers bounds simulation concurrency; <= 0 means GOMAXPROCS. The
	// worker count never changes any result byte — only wall-clock time.
	Workers int
	// Models are cycled over the machine index (machine i gets
	// Models[i%len]); empty means plugvolt.Models() — the full mixed fleet.
	Models []string
	// Seed is the fleet seed; machine i derives MachineSeed(Seed, i).
	Seed int64
	// Attack names the campaign every machine faces (see AttackNames).
	Attack string
	// Window is how long an unattacked machine idles under guard (Attack
	// "none"); default 10 ms of virtual time.
	Window sim.Duration
	// Sweep overrides the characterization config; the zero value selects
	// plugvolt.QuickSweep(). Sweep.Workers is forced to 1: parallelism
	// belongs to the fleet pool, and a single-sharded sweep keeps the
	// worker-labeled characterizer metrics deterministic.
	Sweep plugvolt.CharacterizerConfig
	// Guard overrides the countermeasure config; the zero value selects
	// plugvolt.DefaultGuardConfig().
	Guard plugvolt.GuardConfig
	// FlightWindow, when > 0, attaches a flight recorder to every machine:
	// pre-trigger state (mailbox writes, P-state retargets, guard polls,
	// energy segments) is continuously ring-logged on the virtual clock, and
	// a victim fault or crash freezes a deterministic incident bundle with
	// this many post-trigger records. Captured bundles surface in the
	// report's Incidents list (machine index order, capped at
	// maxRecordedIncidents) and in per-row/per-model/aggregate counts.
	// 0 disables recording entirely — the guard hot path never sees the
	// recorder.
	FlightWindow int
}

// MachineSeed derives machine index's seed from the fleet seed — a pure
// function of the index, mirroring the characterizer's RowSeed(seed, freq)
// idiom, so a machine replays identically no matter which worker runs it.
func MachineSeed(base int64, index int) int64 {
	return rng.IndexSeed(base, index)
}

// AttackSummary is the per-machine campaign outcome in report form.
type AttackSummary struct {
	Name           string `json:"name"`
	Succeeded      bool   `json:"succeeded"`
	Attempts       int    `json:"attempts"`
	MailboxWrites  int    `json:"mailbox_writes"`
	BlockedWrites  int    `json:"blocked_writes"`
	FaultsObserved int    `json:"faults_observed"`
	Crashes        int    `json:"crashes"`
	// ProbesToFirstFault is the 1-based probe ordinal at which a
	// search-based campaign (redteam) landed its first fault; 0 means no
	// fault, or a fixed-schedule campaign.
	ProbesToFirstFault int    `json:"probes_to_first_fault,omitempty"`
	DurationPS         int64  `json:"duration_ps"`
	Notes              string `json:"notes,omitempty"`
}

// MachineSummary is one machine's row in the fleet report.
type MachineSummary struct {
	Index              int            `json:"index"`
	Model              string         `json:"model"`
	Seed               int64          `json:"seed"`
	GuardChecks        uint64         `json:"guard_checks"`
	GuardInterventions uint64         `json:"guard_interventions"`
	Reboots            int            `json:"reboots"`
	VirtualPS          int64          `json:"virtual_ps"`
	// EnergyJ is the machine's integrated package energy (all core planes
	// plus uncore) over its virtual window, from the platform's
	// deterministic joule integrator.
	EnergyJ float64        `json:"energy_joules"`
	Attack  *AttackSummary `json:"attack,omitempty"`
	// Incidents counts the flight-recorder bundles this machine captured
	// (0 and absent unless Config.FlightWindow enabled recording).
	Incidents int    `json:"incidents,omitempty"`
	Err       string `json:"error,omitempty"`
}

// Aggregate is the fleet-level rollup, summed in machine-index order.
type Aggregate struct {
	Machines           int    `json:"machines"`
	Errors             int    `json:"errors"`
	GuardChecks        uint64 `json:"guard_checks"`
	GuardInterventions uint64 `json:"guard_interventions"`
	AttacksRun         int    `json:"attacks_run"`
	AttacksSucceeded   int    `json:"attacks_succeeded"`
	AttacksDefeated    int    `json:"attacks_defeated"`
	MailboxWrites      int    `json:"mailbox_writes"`
	BlockedWrites      int    `json:"blocked_writes"`
	FaultsObserved     int    `json:"faults_observed"`
	Crashes            int    `json:"crashes"`
	Reboots            int    `json:"reboots"`
	VirtualPS          int64  `json:"virtual_ps"`
	// EnergyJ sums the machines' package energy in index order; like every
	// other aggregate field it is independent of the execution split.
	EnergyJ float64 `json:"energy_joules"`
	// Incidents counts every flight-recorder capture across the fleet —
	// exact at any scale, even when the report's verbatim bundle list is
	// capped. Absent when flight recording is disabled.
	Incidents int `json:"incidents,omitempty"`
}

// Report is a completed fleet run. Its JSON and the merged exposition are
// byte-identical across worker counts, which is why the worker count itself
// is deliberately absent from the report body.
type Report struct {
	Fleet struct {
		Machines int      `json:"machines"`
		Models   []string `json:"models"`
		Seed     int64    `json:"seed"`
		Attack   string   `json:"attack"`
	} `json:"fleet"`
	MachineRows []MachineSummary `json:"machines"`
	Aggregate   Aggregate        `json:"aggregate"`
	// Incidents are the captured flight-recorder bundles in machine index
	// order, capped at maxRecordedIncidents; Aggregate.Incidents keeps the
	// exact count. Empty unless Config.FlightWindow enabled recording.
	Incidents []Incident `json:"incidents,omitempty"`
	// Merged is the fleet-wide telemetry aggregate: every machine's snapshot
	// folded through telemetry.MergeSnapshots in index order. Excluded from
	// the JSON report (it has its own exposition format); render it with
	// WriteMetrics.
	Merged *telemetry.Snapshot `json:"-"`
}

// JSON renders the report deterministically.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteMetrics renders the merged fleet exposition in Prometheus text form.
func (r *Report) WriteMetrics(w io.Writer) error {
	return r.Merged.WritePrometheus(w)
}

// machineResult carries one finished machine from a worker to the merge
// step: the report row, the machine's telemetry snapshot, and its typed
// failure (nil for a healthy machine).
type machineResult struct {
	row       MachineSummary
	snap      *telemetry.Snapshot
	err       *MachineError
	incidents []Incident
}

// Run simulates the fleet and merges the results. Per-machine failures are
// recorded in that machine's row (and counted in Aggregate.Errors), and the
// run keeps going; when any machine failed, the fully-populated report is
// returned together with a *PartialError naming each failed machine and
// stage. Only configuration errors abort the run with a nil report.
func Run(cfg Config) (*Report, error) {
	modelNames, specs, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Machines {
		workers = cfg.Machines
	}

	// Index-addressed results: workers write disjoint slots, the merge below
	// reads them in index order after the barrier — completion order (and
	// thus the worker count) can never reorder the report.
	results := make([]machineResult, cfg.Machines)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				model := modelNames[idx%len(modelNames)]
				results[idx] = runMachine(&cfg, idx, model, specs[model], 1)
			}
		}()
	}
	for i := 0; i < cfg.Machines; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := &Report{}
	rep.Fleet.Machines = cfg.Machines
	rep.Fleet.Models = modelNames
	rep.Fleet.Seed = cfg.Seed
	rep.Fleet.Attack = cfg.Attack
	rep.Aggregate.Machines = cfg.Machines
	partial := &PartialError{}
	snaps := make([]*telemetry.Snapshot, 0, cfg.Machines)
	for i := range results {
		row := results[i].row
		rep.MachineRows = append(rep.MachineRows, row)
		foldRow(&rep.Aggregate, &row)
		rep.Incidents = appendIncidents(rep.Incidents, results[i].incidents)
		if results[i].err != nil {
			partial.record(results[i].err)
		}
		if results[i].snap != nil {
			snaps = append(snaps, results[i].snap)
		}
	}
	merged, err := telemetry.MergeSnapshots(snaps...)
	if err != nil {
		return nil, fmt.Errorf("fleet: merging telemetry: %w", err)
	}
	rep.Merged = merged
	if partial.Total > 0 {
		return rep, partial
	}
	return rep, nil
}

// normalize validates the configuration, defaults the attack and window, and
// resolves the model cycle to shared Specs: one *models.Spec per distinct
// model, so every machine of that model reuses its prepared derived cache.
func (cfg *Config) normalize() ([]string, map[string]*models.Spec, error) {
	if cfg.Machines <= 0 {
		return nil, nil, errors.New("fleet: need at least one machine")
	}
	modelNames := cfg.Models
	if len(modelNames) == 0 {
		modelNames = plugvolt.Models()
	}
	if cfg.Attack == "" {
		cfg.Attack = "none"
	}
	if !validAttack(cfg.Attack) {
		return nil, nil, fmt.Errorf("fleet: unknown attack %q (have %v)", cfg.Attack, AttackNames())
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * sim.Millisecond
	}
	specs := make(map[string]*models.Spec, len(modelNames))
	for _, name := range modelNames {
		if _, ok := specs[name]; ok {
			continue
		}
		spec, err := models.ByName(name)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %w", err)
		}
		specs[name] = spec
	}
	return modelNames, specs, nil
}

// foldRow accumulates one machine row into the aggregate. Both engines and
// the checkpoint resume path fold through this single function, in machine
// index order, so their aggregates are identical by construction.
func foldRow(agg *Aggregate, row *MachineSummary) {
	agg.GuardChecks += row.GuardChecks
	agg.GuardInterventions += row.GuardInterventions
	agg.Reboots += row.Reboots
	agg.VirtualPS += row.VirtualPS
	agg.EnergyJ += row.EnergyJ
	agg.Incidents += row.Incidents
	if row.Err != "" {
		agg.Errors++
	}
	if a := row.Attack; a != nil {
		agg.AttacksRun++
		if a.Succeeded {
			agg.AttacksSucceeded++
		} else {
			agg.AttacksDefeated++
		}
		agg.MailboxWrites += a.MailboxWrites
		agg.BlockedWrites += a.BlockedWrites
		agg.FaultsObserved += a.FaultsObserved
		agg.Crashes += a.Crashes
	}
}

func validAttack(name string) bool {
	for _, n := range AttackNames() {
		if n == name {
			return true
		}
	}
	return false
}

// runMachine simulates one fleet member end to end: boot from the shared
// spec, characterize (single-sharded), deploy the guard, face the campaign
// (or idle the guard window in epochs fixed time slices — slicing advances
// the same simulator through the same events, so the epoch count never
// changes a result byte), collect telemetry. Every error is folded into the
// row and surfaced as a typed MachineError so the fleet keeps going; rows
// are pure functions of (cfg, idx, spec).
func runMachine(cfg *Config, idx int, model string, spec *models.Spec, epochs int) machineResult {
	seed := MachineSeed(cfg.Seed, idx)
	row := MachineSummary{Index: idx, Model: model, Seed: seed}
	fail := func(stage string, err error) machineResult {
		row.Err = fmt.Sprintf("%s: %v", stage, err)
		return machineResult{row: row,
			err: &MachineError{Index: idx, Model: model, Stage: stage, Cause: err.Error()}}
	}
	stage := func(name string) (machineResult, error) {
		if err := injectedFailure(name, idx); err != nil {
			return fail(name, err), err
		}
		return machineResult{}, nil
	}
	if res, err := stage("boot"); err != nil {
		return res
	}
	sys, err := plugvolt.NewSystemFromSpec(spec, seed)
	if err != nil {
		return fail("boot", err)
	}
	// Attach before deploy so the guard freezes its unsafe-set view into the
	// recorder and every poll/write of the machine's life is on the ring.
	var rec *flight.Recorder
	if cfg.FlightWindow > 0 {
		rec = sys.AttachFlightRecorder(0, cfg.FlightWindow)
	}
	sweep := cfg.Sweep
	if sweep.Iterations == 0 {
		sweep = plugvolt.QuickSweep()
	}
	// Fleet-level parallelism only: a single shard keeps the sweep's
	// worker-labeled metrics deterministic and avoids nested goroutine fan-out.
	sweep.Workers = 1
	if res, err := stage("characterize"); err != nil {
		return res
	}
	grid, err := sys.Characterize(sweep)
	if err != nil {
		return fail("characterize", err)
	}
	gcfg := cfg.Guard
	if gcfg.PollPeriod == 0 {
		gcfg = plugvolt.DefaultGuardConfig()
	}
	if res, err := stage("deploy"); err != nil {
		return res
	}
	pol, err := sys.DeployGuardConfig(grid, gcfg)
	if err != nil {
		return fail("deploy", err)
	}
	if atk := campaignFor(cfg.Attack, seed); atk != nil {
		if res, err := stage("attack"); err != nil {
			return res
		}
		res, err := atk.Run(sys.Env(), pol.Name())
		if err != nil {
			return fail("attack", err)
		}
		row.Attack = &AttackSummary{
			Name: res.Attack, Succeeded: res.Succeeded, Attempts: res.Attempts,
			MailboxWrites: res.MailboxWrites, BlockedWrites: res.BlockedWrites,
			FaultsObserved: res.FaultsObserved, Crashes: res.Crashes,
			ProbesToFirstFault: res.ProbesToFirstFault,
			DurationPS:         int64(res.Duration), Notes: res.Notes,
		}
	} else {
		if epochs < 1 {
			epochs = 1
		}
		slice := cfg.Window / sim.Duration(epochs)
		for e := 0; e < epochs; e++ {
			d := slice
			if e == epochs-1 {
				// Last slice absorbs the division remainder so the total
				// always equals the configured window exactly.
				d = cfg.Window - slice*sim.Duration(epochs-1)
			}
			sys.RunFor(d)
		}
	}
	row.GuardChecks = pol.Guard.Checks
	row.GuardInterventions = pol.Guard.Interventions
	row.Reboots = sys.Platform.Reboots
	row.VirtualPS = int64(sys.Platform.Sim.Now())
	row.EnergyJ = sys.Platform.Energy.PackageEnergyJ()
	incidents := collectIncidents(idx, model, rec)
	row.Incidents = len(incidents)
	sys.CollectTelemetry()
	return machineResult{row: row, snap: sys.Telemetry.Registry().Snapshot(), incidents: incidents}
}

// campaignFor builds the per-machine attack campaign; nil means "none".
func campaignFor(name string, seed int64) attack.Attack {
	switch name {
	case "plundervolt":
		return attack.DefaultPlundervolt(seed)
	case "voltjockey":
		return attack.DefaultVoltJockey()
	case "v0ltpwn":
		return attack.DefaultV0LTpwn()
	case "redteam":
		return attack.DefaultRedTeam(seed)
	default:
		return nil
	}
}
