// Fleet-side incident forensics: every machine can carry a flight recorder
// (internal/flight), and the bundles it captures — frozen pre-fault history
// plus the post-trigger window — surface in the fleet report as a capped,
// machine-index-ordered incident list with per-model and aggregate counts.
//
// The collection discipline mirrors maxRecordedFailures: counts are exact at
// any fleet size, while verbatim bundles are bounded so a million-machine run
// with a systematic fault cannot balloon the report or a checkpoint. Bundles
// are carried framed (flight.DecodeBundle reads each Incident.Bundle
// verbatim), so a report or checkpoint is a self-contained forensic artifact.
package fleet

import "plugvolt/internal/flight"

// maxRecordedIncidents bounds how many incident bundles a fleet report (and
// a stream checkpoint) retains verbatim. Counts — per row, per model, and in
// the aggregate — always cover every capture; only the framed bundles are
// capped. Collection is in machine index order, so which incidents survive
// the cap is a pure function of the experiment, never of the execution split.
const maxRecordedIncidents = 32

// Incident is one captured flight-recorder bundle in fleet report form: the
// summary fields a rollup needs, plus the framed bundle blob itself
// (base64 in JSON; decode with flight.DecodeBundle or feed a file of
// concatenated blobs to plugvolt-incidents).
type Incident struct {
	Machine   int    `json:"machine"`
	Model     string `json:"model"`
	Seq       int    `json:"seq"`
	Cause     string `json:"cause"`
	Core      int    `json:"core"`
	TriggerPS int64  `json:"trigger_ps"`
	Records   int    `json:"records"`
	Detail    string `json:"detail,omitempty"`
	Bundle    []byte `json:"bundle,omitempty"`
}

// incidentFor converts one sealed bundle into its fleet report form. An
// encode failure (structurally impossible for recorder-produced bundles)
// degrades to a summary-only incident rather than failing the machine.
func incidentFor(machine int, model string, b *flight.Bundle) Incident {
	inc := Incident{
		Machine:   machine,
		Model:     model,
		Seq:       b.Seq,
		Cause:     string(b.Cause),
		Core:      b.Core,
		TriggerPS: int64(b.TriggerPS),
		Records:   len(b.Records),
		Detail:    b.Detail,
	}
	if enc, err := b.Encode(); err == nil {
		inc.Bundle = enc
	}
	return inc
}

// collectIncidents seals the recorder and returns every captured bundle in
// fleet form, in capture (seq) order. nil recorder means flight recording is
// disabled for this run.
func collectIncidents(machine int, model string, rec *flight.Recorder) []Incident {
	if rec == nil {
		return nil
	}
	rec.Seal()
	bundles := rec.Bundles()
	if len(bundles) == 0 {
		return nil
	}
	out := make([]Incident, 0, len(bundles))
	for _, b := range bundles {
		out = append(out, incidentFor(machine, model, b))
	}
	return out
}

// appendIncidents folds one machine's incidents into a capped collection,
// honouring maxRecordedIncidents. Both engines fold in machine index order,
// so the retained prefix is identical across worker counts and batch sizes.
func appendIncidents(dst []Incident, incs []Incident) []Incident {
	for i := range incs {
		if len(dst) >= maxRecordedIncidents {
			break
		}
		dst = append(dst, incs[i])
	}
	return dst
}
