// Streaming epoch engine: the fleet workload restructured so resident
// memory is O(batch), not O(fleet).
//
// The one-shot Run engine materializes every machine's report row and
// telemetry snapshot before merging — fine for 64 machines, fatal for the
// million-machine north star. RunStream instead advances the fleet as a
// stream of batches: a bounded worker pool carries one batch of machines
// through their whole lifecycle (boot from the shared per-model Spec derived
// cache, characterize, deploy the guard LUT, then the guard window in
// Epochs fixed time slices), folds the batch into a running aggregate, a
// per-model rollup and a merged telemetry snapshot, and discards it. Only
// the current batch's results — and at most Workers live Systems — are ever
// resident.
//
// Determinism is the contract the test battery enforces: machine i is a
// pure function of (config, i) via MachineSeed, batches fold in machine
// index order, and telemetry folds as a strict left-fold through
// telemetry.MergeSnapshots — the same sequence of floating-point additions
// the one-shot merge performs — so the report JSON and the merged
// Prometheus exposition are byte-identical to the batch engine's and across
// every batch size, worker count, epoch split, and kill/resume point. The
// report body deliberately carries no execution-shape field (no workers, no
// batch, no epochs): byte-identity is designed, not accidental.
//
// Checkpointing piggybacks on the fold: after each batch the engine's
// entire mutable state is (machines done, aggregate, rollup, failures,
// merged snapshot) — the RNG "position" is just the next machine index,
// because per-machine seeds are index-pure — so a versioned checkpoint
// written at every batch boundary lets a killed 1M-machine-window run
// resume with a byte-identical final report.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"plugvolt/internal/telemetry"
)

// DefaultStreamBatch is the resident-set size when StreamConfig.Batch is
// unset: large enough to keep a worker pool fed, small enough that a
// laptop's memory never sees the fleet size.
const DefaultStreamBatch = 256

// ErrHalted is returned by RunStream when the Halt callback stopped the
// run at a batch boundary. The checkpoint written for that boundary (when
// checkpointing is enabled) resumes the run.
var ErrHalted = errors.New("fleet: stream halted at batch boundary")

// StreamConfig parameterizes a streaming fleet run. The embedded Config
// fields keep their one-shot meaning; Workers is additionally clamped to
// the batch size.
type StreamConfig struct {
	Config

	// Epochs slices each machine's guard window into this many fixed time
	// slices (machine-windows = Machines x Epochs). Slicing advances the
	// same simulator through the same events, so the epoch count never
	// changes a result byte; it sets the granularity at which long idle
	// windows yield progress. Only meaningful with Attack "none" — a
	// campaign drives its own timeline — so Epochs > 1 with an attack is a
	// configuration error. <= 0 means 1.
	Epochs int
	// Batch is how many machines are resident at once; <= 0 means
	// min(Machines, DefaultStreamBatch). Larger batches exist only to
	// amortize pool churn — the batch size never changes a result byte.
	Batch int

	// CheckpointPath, when set, atomically rewrites this file after every
	// completed batch with a versioned checkpoint of the whole engine
	// state. A killed run resumes from it via Resume.
	CheckpointPath string
	// Resume, when set, continues a previous run from its checkpoint. The
	// checkpoint's config fingerprint must match this config (seed,
	// machines, epochs, models, attack, window, sweep, guard) — execution
	// shape (batch, workers) may differ freely.
	Resume *Checkpoint

	// Progress, when set, is called after every completed batch (and once
	// at resume with the checkpoint's state). Calls are serialized.
	Progress func(Progress)
	// Halt, when set, is consulted after every completed batch — after the
	// checkpoint for that boundary was written — and stops the run with
	// ErrHalted when it returns true. This is how a CLI turns SIGINT into
	// a clean resumable exit.
	Halt func(Progress) bool
	// Live, when set, receives epoch-progress gauges
	// (fleet_stream_machines_done, fleet_stream_windows_done, ...) after
	// every batch. It is a live observability surface (plugvolt-fleet
	// -listen serves it); it is never folded into the report, which must
	// stay a pure function of the experiment.
	Live *telemetry.Set
}

// Progress is the per-batch progress report.
type Progress struct {
	// BatchesDone counts completed batches; MachinesDone counts machines
	// carried through their full lifecycle.
	BatchesDone  int
	MachinesDone int
	Machines     int
	// WindowsDone/Windows count machine-windows (machines x epochs), the
	// workload unit of the streaming engine.
	WindowsDone int64
	Windows     int64
	// Resident is the size of the batch just retired — the engine's
	// resident-set bound. It never exceeds the configured batch size.
	Resident int
	// Errors counts failed machines so far.
	Errors int
	// HeapBytes is runtime.MemStats.HeapAlloc sampled after the batch
	// folded — the live O(batch) memory evidence.
	HeapBytes uint64
}

// ModelSummary is the per-model rollup row of a streaming report: the
// MachineSummary totals of every machine of one model, summed in machine
// index order. Rollups replace per-machine rows at fleet scale — a million
// rows is itself an O(fleet) report.
type ModelSummary struct {
	Model              string `json:"model"`
	Machines           int    `json:"machines"`
	Errors             int    `json:"errors"`
	GuardChecks        uint64 `json:"guard_checks"`
	GuardInterventions uint64 `json:"guard_interventions"`
	AttacksRun         int    `json:"attacks_run"`
	AttacksSucceeded   int    `json:"attacks_succeeded"`
	AttacksDefeated    int    `json:"attacks_defeated"`
	FaultsObserved     int    `json:"faults_observed"`
	Crashes            int    `json:"crashes"`
	Reboots            int    `json:"reboots"`
	VirtualPS          int64  `json:"virtual_ps"`
	// EnergyJ is the model's total package energy, folded in machine index
	// order so the rollup is byte-identical across execution splits.
	EnergyJ float64 `json:"energy_joules"`
	// Incidents counts the model's flight-recorder captures; absent unless
	// Config.FlightWindow enabled recording.
	Incidents int `json:"incidents,omitempty"`
}

// foldModel accumulates one machine row into its model's rollup.
func (m *ModelSummary) foldModel(row *MachineSummary) {
	m.Machines++
	m.GuardChecks += row.GuardChecks
	m.GuardInterventions += row.GuardInterventions
	m.Reboots += row.Reboots
	m.VirtualPS += row.VirtualPS
	m.EnergyJ += row.EnergyJ
	m.Incidents += row.Incidents
	if row.Err != "" {
		m.Errors++
	}
	if a := row.Attack; a != nil {
		m.AttacksRun++
		if a.Succeeded {
			m.AttacksSucceeded++
		} else {
			m.AttacksDefeated++
		}
		m.FaultsObserved += a.FaultsObserved
		m.Crashes += a.Crashes
	}
}

// StreamReport is a completed streaming run. Everything in the JSON body is
// a pure function of the experiment (machines, models, seed, attack,
// window) — execution shape (batch, workers, epochs) and interruption
// history are structurally absent, which is what makes byte-identity across
// those axes designed rather than accidental.
type StreamReport struct {
	Fleet struct {
		Machines int      `json:"machines"`
		Models   []string `json:"models"`
		Seed     int64    `json:"seed"`
		Attack   string   `json:"attack"`
		WindowPS int64    `json:"window_ps"`
	} `json:"fleet"`
	ModelRows []ModelSummary `json:"by_model"`
	Aggregate Aggregate      `json:"aggregate"`
	// Incidents are the captured flight-recorder bundles in machine index
	// order, capped at maxRecordedIncidents and carried across checkpoint
	// boundaries; Aggregate.Incidents keeps the exact count.
	Incidents []Incident `json:"incidents,omitempty"`
	// Merged is the fleet-wide telemetry fold; render with WriteMetrics.
	Merged *telemetry.Snapshot `json:"-"`
}

// JSON renders the report deterministically.
func (r *StreamReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteMetrics renders the merged fleet exposition in Prometheus text form.
func (r *StreamReport) WriteMetrics(w io.Writer) error {
	return r.Merged.WritePrometheus(w)
}

// streamState is the engine's entire mutable state between batches — what a
// checkpoint captures and a resume restores.
type streamState struct {
	machinesDone int
	agg          Aggregate
	models       map[string]*ModelSummary
	partial      *PartialError
	merged       *telemetry.Snapshot
	incidents    []Incident
	batchesDone  int
}

// RunStream simulates the fleet as a stream of batches and returns the
// folded report. Machine failures do not abort the stream; as with Run, a
// fully-populated report is returned together with a *PartialError when any
// machine failed. Configuration errors — and a Resume checkpoint whose
// fingerprint does not match the config — abort with a nil report.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	modelNames, specs, err := cfg.Config.normalize()
	if err != nil {
		return nil, err
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	if epochs > 1 && cfg.Attack != "none" {
		return nil, fmt.Errorf("fleet: epochs %d requires attack \"none\" (a campaign drives its own timeline); got %q", epochs, cfg.Attack)
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	if batch > cfg.Machines {
		batch = cfg.Machines
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batch {
		workers = batch
	}

	st := &streamState{
		models:  make(map[string]*ModelSummary, len(modelNames)),
		partial: &PartialError{},
		merged:  &telemetry.Snapshot{},
	}
	st.agg.Machines = cfg.Machines
	if cfg.Resume != nil {
		if err := cfg.Resume.restore(&cfg, epochs, modelNames, st); err != nil {
			return nil, err
		}
		cfg.progress(st, epochs, 0)
	}

	results := make([]machineResult, batch)
	for st.machinesDone < cfg.Machines {
		n := cfg.Machines - st.machinesDone
		if n > batch {
			n = batch
		}
		// Index-addressed slots within the batch: workers write disjoint
		// entries, the fold below reads them in index order after the
		// barrier, so completion order can never reorder the stream.
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					idx := st.machinesDone + j
					model := modelNames[idx%len(modelNames)]
					results[j] = runMachine(&cfg.Config, idx, model, specs[model], epochs)
				}
			}()
		}
		for j := 0; j < n; j++ {
			jobs <- j
		}
		close(jobs)
		wg.Wait()

		for j := 0; j < n; j++ {
			r := &results[j]
			foldRow(&st.agg, &r.row)
			st.modelRollup(r.row.Model).foldModel(&r.row)
			st.incidents = appendIncidents(st.incidents, r.incidents)
			if r.err != nil {
				st.partial.record(r.err)
			}
		}
		snaps := make([]*telemetry.Snapshot, 0, n+1)
		snaps = append(snaps, st.merged)
		for j := 0; j < n; j++ {
			if results[j].snap != nil {
				snaps = append(snaps, results[j].snap)
			}
			results[j] = machineResult{} // release the batch before the next one
		}
		// Strict left-fold in machine index order: MergeSnapshots(merged,
		// s_i, s_i+1, ...) performs the identical sequence of additions the
		// one-shot MergeSnapshots(s_0, ..., s_n-1) performs, so incremental
		// folding is exact, not just approximately commutative.
		st.merged, err = telemetry.MergeSnapshots(snaps...)
		if err != nil {
			return nil, fmt.Errorf("fleet: merging telemetry: %w", err)
		}
		st.machinesDone += n
		st.batchesDone++

		if cfg.CheckpointPath != "" {
			ck := cfg.checkpoint(st, epochs, modelNames)
			if err := WriteCheckpointFile(cfg.CheckpointPath, ck); err != nil {
				return nil, fmt.Errorf("fleet: writing checkpoint: %w", err)
			}
		}
		p := cfg.progress(st, epochs, n)
		if cfg.Halt != nil && cfg.Halt(p) {
			return nil, ErrHalted
		}
	}

	rep := &StreamReport{}
	rep.Fleet.Machines = cfg.Machines
	rep.Fleet.Models = modelNames
	rep.Fleet.Seed = cfg.Seed
	rep.Fleet.Attack = cfg.Attack
	rep.Fleet.WindowPS = int64(cfg.Window)
	rep.ModelRows = st.modelRows()
	rep.Aggregate = st.agg
	rep.Incidents = st.incidents
	rep.Merged = st.merged
	if st.partial.Total > 0 {
		return rep, st.partial
	}
	return rep, nil
}

// modelRollup returns (creating on first use) the rollup row for a model.
func (st *streamState) modelRollup(model string) *ModelSummary {
	m := st.models[model]
	if m == nil {
		m = &ModelSummary{Model: model}
		st.models[model] = m
	}
	return m
}

// modelRows emits the rollup sorted by model name — map iteration order
// must never reach the report.
func (st *streamState) modelRows() []ModelSummary {
	names := make([]string, 0, len(st.models))
	for n := range st.models {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]ModelSummary, 0, len(names))
	for _, n := range names {
		rows = append(rows, *st.models[n])
	}
	return rows
}

// progress publishes one batch's progress to the Live gauges and the
// Progress callback, and returns the Progress value for Halt.
func (cfg *StreamConfig) progress(st *streamState, epochs, resident int) Progress {
	p := Progress{
		BatchesDone:  st.batchesDone,
		MachinesDone: st.machinesDone,
		Machines:     cfg.Machines,
		WindowsDone:  int64(st.machinesDone) * int64(epochs),
		Windows:      int64(cfg.Machines) * int64(epochs),
		Resident:     resident,
		Errors:       st.partial.Total,
	}
	if cfg.Progress != nil || cfg.Live != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		p.HeapBytes = ms.HeapAlloc
	}
	if cfg.Live != nil {
		reg := cfg.Live.Registry()
		reg.Gauge("fleet_stream_machines_done", "machines carried through their full lifecycle", nil).Set(float64(p.MachinesDone))
		reg.Gauge("fleet_stream_machines_total", "configured fleet size", nil).Set(float64(p.Machines))
		reg.Gauge("fleet_stream_windows_done", "machine-windows completed (machines x epochs)", nil).Set(float64(p.WindowsDone))
		reg.Gauge("fleet_stream_windows_total", "machine-windows configured", nil).Set(float64(p.Windows))
		reg.Gauge("fleet_stream_batches_done", "completed stream batches (checkpointable boundaries)", nil).Set(float64(p.BatchesDone))
		reg.Gauge("fleet_stream_resident_machines", "machines resident in the batch just retired", nil).Set(float64(p.Resident))
		reg.Gauge("fleet_stream_errors", "failed machines so far", nil).Set(float64(p.Errors))
		reg.Gauge("fleet_stream_heap_bytes", "heap in use after the last batch fold", nil).Set(float64(p.HeapBytes))
	}
	if cfg.Progress != nil {
		cfg.Progress(p)
	}
	return p
}
