package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

// renderStream runs one streaming configuration and renders both report
// forms; any error (including a partial fleet) is fatal.
func renderStream(t *testing.T, cfg StreamConfig) (reportJSON, metrics []byte) {
	t.Helper()
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return renderStreamReport(t, rep)
}

func renderStreamReport(t *testing.T, rep *StreamReport) (reportJSON, metrics []byte) {
	t.Helper()
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return j, buf.Bytes()
}

// rollupFromBatch derives the streaming engine's per-model rollup from a
// one-shot report's per-machine rows, folding in machine index order — the
// reference the golden test compares the stream against.
func rollupFromBatch(rep *Report) []ModelSummary {
	st := &streamState{models: map[string]*ModelSummary{}}
	for i := range rep.MachineRows {
		st.modelRollup(rep.MachineRows[i].Model).foldModel(&rep.MachineRows[i])
	}
	return st.modelRows()
}

// TestStreamMatchesBatch is the batch-vs-streaming golden test: same seed,
// same fleet — the streaming engine must reproduce the one-shot engine's
// aggregate, per-model totals, and merged Prometheus exposition
// byte-for-byte, for every batch/worker split. Runs under -race in the CI
// fleet-stream-smoke job at workers 1/2/8.
func TestStreamMatchesBatch(t *testing.T) {
	base := Config{Machines: 6, Seed: 11, Attack: "voltjockey"}
	batchRep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var wantMetrics bytes.Buffer
	if err := batchRep.WriteMetrics(&wantMetrics); err != nil {
		t.Fatal(err)
	}
	wantRollup := rollupFromBatch(batchRep)

	for _, split := range []struct{ batch, workers int }{
		{1, 1}, {2, 2}, {3, 8}, {6, 1},
	} {
		t.Run(fmt.Sprintf("batch=%d_workers=%d", split.batch, split.workers), func(t *testing.T) {
			cfg := StreamConfig{Config: base, Batch: split.batch}
			cfg.Workers = split.workers
			rep, err := RunStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep.Aggregate, batchRep.Aggregate) {
				t.Errorf("aggregate diverges:\nstream %+v\nbatch  %+v", rep.Aggregate, batchRep.Aggregate)
			}
			if !reflect.DeepEqual(rep.ModelRows, wantRollup) {
				t.Errorf("rollup diverges:\nstream %+v\nbatch  %+v", rep.ModelRows, wantRollup)
			}
			var m bytes.Buffer
			if err := rep.WriteMetrics(&m); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m.Bytes(), wantMetrics.Bytes()) {
				t.Error("merged exposition diverges from the one-shot engine")
			}
		})
	}
}

// TestStreamByteIdentityAcrossSplits pins the full streaming report (JSON
// and exposition) across every execution-shape axis at once: batch size,
// worker count and epoch count must never change a byte.
func TestStreamByteIdentityAcrossSplits(t *testing.T) {
	base := Config{Machines: 5, Seed: 21, Attack: "none", Window: 2 * sim.Millisecond}
	ref := StreamConfig{Config: base, Batch: 5, Epochs: 1}
	ref.Workers = 1
	wantJSON, wantMetrics := renderStream(t, ref)
	for _, shape := range []struct{ batch, workers, epochs int }{
		{1, 1, 1}, {2, 2, 2}, {3, 8, 3}, {5, 2, 5}, {4, 3, 1},
	} {
		cfg := StreamConfig{Config: base, Batch: shape.batch, Epochs: shape.epochs}
		cfg.Workers = shape.workers
		j, m := renderStream(t, cfg)
		if !bytes.Equal(j, wantJSON) {
			t.Errorf("batch=%d workers=%d epochs=%d: report JSON diverges", shape.batch, shape.workers, shape.epochs)
		}
		if !bytes.Equal(m, wantMetrics) {
			t.Errorf("batch=%d workers=%d epochs=%d: exposition diverges", shape.batch, shape.workers, shape.epochs)
		}
	}
}

// TestStreamCheckpointResume kills the stream at every batch boundary,
// resumes from the on-disk checkpoint — with a different batch size and
// worker count, which the fingerprint deliberately ignores — and requires
// the final report JSON and exposition to be byte-identical to the
// uninterrupted run's.
func TestStreamCheckpointResume(t *testing.T) {
	base := Config{Machines: 6, Seed: 5, Attack: "none", Window: sim.Millisecond}
	uncut := StreamConfig{Config: base, Batch: 2, Epochs: 2}
	wantJSON, wantMetrics := renderStream(t, uncut)

	const batches = 3 // 6 machines / batch 2
	for k := 1; k < batches; k++ {
		t.Run(fmt.Sprintf("kill_after_batch_%d", k), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "fleet.ckpt")
			cut := uncut
			cut.CheckpointPath = path
			cut.Halt = func(p Progress) bool { return p.BatchesDone >= k }
			if _, err := RunStream(cut); !errors.Is(err, ErrHalted) {
				t.Fatalf("want ErrHalted, got %v", err)
			}
			ck, err := ReadCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if ck.MachinesDone != 2*k {
				t.Fatalf("checkpoint at %d machines, want %d", ck.MachinesDone, 2*k)
			}
			resumed := StreamConfig{Config: base, Batch: 3, Epochs: 2, Resume: ck}
			resumed.Workers = 2
			j, m := renderStream(t, resumed)
			if !bytes.Equal(j, wantJSON) {
				t.Error("resumed report JSON diverges from the uninterrupted run")
			}
			if !bytes.Equal(m, wantMetrics) {
				t.Error("resumed exposition diverges from the uninterrupted run")
			}
		})
	}
}

// TestStreamResumeMismatch: a checkpoint from one experiment must not
// resume another. Every fingerprinted axis is tried.
func TestStreamResumeMismatch(t *testing.T) {
	base := Config{Machines: 2, Seed: 5, Attack: "none", Window: sim.Millisecond}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	cfg := StreamConfig{Config: base, Batch: 1, CheckpointPath: path,
		Halt: func(p Progress) bool { return true }}
	if _, err := RunStream(cfg); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*StreamConfig){
		"seed":     func(c *StreamConfig) { c.Seed = 6 },
		"machines": func(c *StreamConfig) { c.Machines = 3 },
		"attack":   func(c *StreamConfig) { c.Attack = "voltjockey" },
		"window":   func(c *StreamConfig) { c.Window = 2 * sim.Millisecond },
		"models":   func(c *StreamConfig) { c.Models = []string{"skylake"} },
		"epochs":   func(c *StreamConfig) { c.Epochs = 4 },
		"guard":    func(c *StreamConfig) { c.Guard.MarginMV = 25; c.Guard.PollPeriod = 30 * sim.Microsecond },
	}
	for name, mutate := range mutations {
		bad := StreamConfig{Config: base, Resume: ck}
		mutate(&bad)
		if _, err := RunStream(bad); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s mutation: want ErrCheckpointMismatch, got %v", name, err)
		}
	}
	// The same checkpoint under a different execution shape is fine.
	good := StreamConfig{Config: base, Resume: ck, Batch: 2}
	good.Workers = 8
	if _, err := RunStream(good); err != nil {
		t.Errorf("execution-shape change rejected: %v", err)
	}
}

// TestStreamEpochSliceCommutesWithMachineOrder is the randomized property
// test: for random fleets, slicing machine windows into epochs and grouping
// machines into batches (which changes which machines are co-resident, i.e.
// the stream's machine order) commute — any (epochs, batch, workers)
// execution shape renders the same bytes as the canonical serial run.
func TestStreamEpochSliceCommutesWithMachineOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 3; trial++ {
		machines := 2 + rng.Intn(3)
		base := Config{
			Machines: machines,
			Seed:     rng.Int63(),
			Attack:   "none",
			Window:   sim.Duration(1+rng.Intn(2)) * sim.Millisecond,
		}
		ref := StreamConfig{Config: base, Batch: machines, Epochs: 1}
		ref.Workers = 1
		wantJSON, wantMetrics := renderStream(t, ref)
		for variant := 0; variant < 3; variant++ {
			cfg := StreamConfig{Config: base,
				Batch:  1 + rng.Intn(machines),
				Epochs: 1 + rng.Intn(4),
			}
			cfg.Workers = 1 + rng.Intn(3)
			j, m := renderStream(t, cfg)
			if !bytes.Equal(j, wantJSON) || !bytes.Equal(m, wantMetrics) {
				t.Fatalf("trial %d: seed %d machines %d: shape (batch=%d workers=%d epochs=%d) diverges",
					trial, base.Seed, machines, cfg.Batch, cfg.Workers, cfg.Epochs)
			}
		}
	}
}

// TestStreamResidentBound asserts the O(batch) contract structurally: the
// engine never reports more resident machines than the batch size, retires
// the fleet in ceil(machines/batch) batches, and completes every
// machine-window.
func TestStreamResidentBound(t *testing.T) {
	var progressCalls []Progress
	cfg := StreamConfig{
		Config:   Config{Machines: 9, Seed: 1, Attack: "none", Window: sim.Millisecond},
		Batch:    4,
		Epochs:   3,
		Progress: func(p Progress) { progressCalls = append(progressCalls, p) },
	}
	if _, err := RunStream(cfg); err != nil {
		t.Fatal(err)
	}
	if len(progressCalls) != 3 { // ceil(9/4)
		t.Fatalf("%d batches retired, want 3", len(progressCalls))
	}
	for _, p := range progressCalls {
		if p.Resident > cfg.Batch {
			t.Fatalf("resident %d exceeds batch %d: the stream is not O(batch)", p.Resident, cfg.Batch)
		}
		if p.WindowsDone != int64(p.MachinesDone)*3 {
			t.Fatalf("windows %d != machines %d x epochs 3", p.WindowsDone, p.MachinesDone)
		}
	}
	last := progressCalls[len(progressCalls)-1]
	if last.MachinesDone != 9 || last.WindowsDone != 27 || last.Windows != 27 {
		t.Fatalf("final progress %+v: fleet incomplete", last)
	}
}

// TestStreamReportOmitsExecutionShape guards byte-identity structurally,
// like TestFleetReportOmitsWorkers does for the one-shot engine: no
// execution-shape word may appear in the report JSON.
func TestStreamReportOmitsExecutionShape(t *testing.T) {
	cfg := StreamConfig{Config: Config{Machines: 2, Seed: 1, Attack: "none",
		Window: sim.Millisecond}, Batch: 1, Epochs: 2}
	cfg.Workers = 3
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, word := range []string{"workers", "batch", "epoch"} {
		if strings.Contains(string(j), word) {
			t.Errorf("report JSON leaks execution shape: %q", word)
		}
	}
}

// TestStreamConfigValidation covers the streaming-specific config errors on
// top of the shared ones.
func TestStreamConfigValidation(t *testing.T) {
	if _, err := RunStream(StreamConfig{Config: Config{Machines: 0}}); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := RunStream(StreamConfig{Config: Config{Machines: 1, Attack: "rowhammer"}}); err == nil {
		t.Error("unknown attack accepted")
	}
	if _, err := RunStream(StreamConfig{Config: Config{Machines: 1, Models: []string{"pentium4"}}}); err == nil {
		t.Error("unknown model accepted")
	}
	_, err := RunStream(StreamConfig{Config: Config{Machines: 1, Attack: "voltjockey"}, Epochs: 2})
	if err == nil || !strings.Contains(err.Error(), "epochs") {
		t.Errorf("epochs > 1 with an attack accepted (err=%v)", err)
	}
}

// TestPartialFailureTyped is the table-driven contract for the typed
// partial-failure error: for every lifecycle stage, a machine failure must
// surface as a *PartialError naming the machine index, model, stage and
// cause — from both engines — while the healthy machines' results survive.
func TestPartialFailureTyped(t *testing.T) {
	base := Config{Machines: 3, Seed: 7, Attack: "voltjockey"}
	for _, stage := range []string{"boot", "characterize", "deploy", "attack"} {
		t.Run(stage, func(t *testing.T) {
			failpoint = func(s string, idx int) error {
				if s == stage && idx == 1 {
					return fmt.Errorf("injected %s failure", s)
				}
				return nil
			}
			defer func() { failpoint = nil }()

			check := func(t *testing.T, agg Aggregate, err error) *PartialError {
				t.Helper()
				var partial *PartialError
				if !errors.As(err, &partial) {
					t.Fatalf("want *PartialError, got %v", err)
				}
				if partial.Total != 1 || len(partial.Failures) != 1 {
					t.Fatalf("partial %+v: want exactly one failure", partial)
				}
				f := partial.Failures[0]
				if f.Index != 1 || f.Stage != stage || !strings.Contains(f.Cause, "injected") {
					t.Fatalf("failure %+v: want index 1, stage %s", f, stage)
				}
				if f.Model == "" {
					t.Fatal("failure does not name the machine model")
				}
				if agg.Errors != 1 {
					t.Fatalf("aggregate errors %d, want 1", agg.Errors)
				}
				if agg.GuardChecks == 0 {
					t.Fatal("healthy machines did not run")
				}
				return partial
			}

			rep, err := Run(base)
			if rep == nil {
				t.Fatal("partial failure must still return the report")
			}
			check(t, rep.Aggregate, err)
			if rep.MachineRows[1].Err == "" || rep.MachineRows[0].Err != "" || rep.MachineRows[2].Err != "" {
				t.Fatalf("rows misattribute the failure: %+v", rep.MachineRows)
			}

			srep, serr := RunStream(StreamConfig{Config: base, Batch: 2})
			if srep == nil {
				t.Fatal("stream partial failure must still return the report")
			}
			check(t, srep.Aggregate, serr)
			if !reflect.DeepEqual(srep.Aggregate, rep.Aggregate) {
				t.Errorf("engines disagree under partial failure:\nstream %+v\nbatch  %+v", srep.Aggregate, rep.Aggregate)
			}
		})
	}
}

// TestPartialFailureCap: a systematic failure across a fleet larger than
// the recording cap keeps the full count but bounds the recorded list.
func TestPartialFailureCap(t *testing.T) {
	failpoint = func(s string, idx int) error {
		if s == "boot" {
			return errors.New("systematic")
		}
		return nil
	}
	defer func() { failpoint = nil }()
	machines := maxRecordedFailures + 4
	rep, err := RunStream(StreamConfig{
		Config: Config{Machines: machines, Seed: 1, Attack: "none", Window: sim.Millisecond},
		Batch:  5,
	})
	var partial *PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if partial.Total != machines || len(partial.Failures) != maxRecordedFailures {
		t.Fatalf("total %d (want %d), recorded %d (want %d)",
			partial.Total, machines, len(partial.Failures), maxRecordedFailures)
	}
	if rep.Aggregate.Errors != machines {
		t.Fatalf("aggregate errors %d, want %d", rep.Aggregate.Errors, machines)
	}
	if !strings.Contains(partial.Error(), "more not recorded") {
		t.Errorf("error text hides the cap: %q", partial.Error())
	}
}
