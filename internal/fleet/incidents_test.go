package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"plugvolt/internal/flight"
	"plugvolt/internal/sim"
)

// weakGuardFleet is a fleet whose guard polls far too slowly to stop
// plundervolt: every machine faults, so every machine's flight recorder
// captures an incident. This is the forensics scenario — the recorder
// exists to explain exactly these losses.
func weakGuardFleet() Config {
	cfg := Config{Machines: 4, Seed: 13, Attack: "plundervolt", FlightWindow: 8}
	cfg.Guard.PollPeriod = 20 * sim.Millisecond
	return cfg
}

// TestFleetIncidentsCaptured runs the forensics scenario end to end: every
// faulted machine contributes an incident, counts agree at every level, and
// each carried bundle decodes to the frozen pre-fault history — including
// the accepted unsafe mailbox write that caused the triggering fault.
func TestFleetIncidentsCaptured(t *testing.T) {
	rep, err := Run(weakGuardFleet())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.AttacksSucceeded != rep.Aggregate.Machines {
		t.Fatalf("weak guard scenario: %d/%d attacks succeeded; incidents need faults",
			rep.Aggregate.AttacksSucceeded, rep.Aggregate.Machines)
	}
	if rep.Aggregate.Incidents == 0 {
		t.Fatal("no incidents captured across a faulting fleet")
	}
	rowTotal := 0
	for _, row := range rep.MachineRows {
		rowTotal += row.Incidents
	}
	if rowTotal != rep.Aggregate.Incidents {
		t.Fatalf("per-row incident counts sum to %d, aggregate says %d", rowTotal, rep.Aggregate.Incidents)
	}
	if len(rep.Incidents) != rep.Aggregate.Incidents {
		t.Fatalf("report retains %d incidents, aggregate counts %d (under the cap they must match)",
			len(rep.Incidents), rep.Aggregate.Incidents)
	}
	lastMachine := -1
	for _, inc := range rep.Incidents {
		if inc.Machine < lastMachine {
			t.Fatalf("incident list not in machine index order: %d after %d", inc.Machine, lastMachine)
		}
		lastMachine = inc.Machine
		if inc.Cause != string(flight.CauseFault) {
			t.Errorf("machine %d: cause %q, want fault", inc.Machine, inc.Cause)
		}
		b, n, err := flight.DecodeBundle(inc.Bundle)
		if err != nil {
			t.Fatalf("machine %d: carried bundle does not decode: %v", inc.Machine, err)
		}
		if n != len(inc.Bundle) {
			t.Errorf("machine %d: bundle has %d trailing bytes", inc.Machine, len(inc.Bundle)-n)
		}
		// The row carries the fleet cycle name ("skylake"), the bundle the
		// spec codename ("Sky Lake") — both must be present and the
		// structural fields must agree.
		if b.Model == "" || len(b.Records) != inc.Records || b.Seq != inc.Seq {
			t.Errorf("machine %d: summary (%d records, seq %d) disagrees with bundle (%q, %d, %d)",
				inc.Machine, inc.Records, inc.Seq, b.Model, len(b.Records), b.Seq)
		}
		if b.Guard == nil || len(b.Guard.Thresholds) == 0 {
			t.Errorf("machine %d: bundle carries no guard unsafe-set view", inc.Machine)
		}
		// The forensic payoff: the pre-trigger history must contain the
		// accepted unsafe write that produced the fault — the deepest
		// undervolt on the ring, strictly before the trigger, within the
		// mailbox's ~1 mV unit quantization of the offset the fault record
		// blames.
		var faultOffset int64
		for _, r := range b.Records {
			if r.Kind == flight.KindFault {
				faultOffset = r.B
			}
		}
		if faultOffset >= 0 {
			t.Fatalf("machine %d: fault record blames offset %d, want a negative undervolt", inc.Machine, faultOffset)
		}
		var deepest int64
		for _, r := range b.Records {
			if r.Kind == flight.KindTrigger {
				break
			}
			if r.Kind == flight.KindMailboxWrite && r.Flag == flight.OutcomeAccepted && r.A < deepest {
				deepest = r.A
			}
		}
		if deepest == 0 {
			t.Errorf("machine %d: no accepted undervolt write before the trigger", inc.Machine)
		} else if d := deepest - faultOffset; d < -2 || d > 2 {
			t.Errorf("machine %d: deepest accepted write %d mV does not explain the fault at %d mV",
				inc.Machine, deepest, faultOffset)
		}
	}
}

// TestFleetIncidentByteIdentityAcrossWorkers extends the fleet determinism
// contract to the carried bundles: the full report JSON — framed incident
// bytes included — must be identical at -workers 1, 2 and 8.
func TestFleetIncidentByteIdentityAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := weakGuardFleet()
		cfg.Workers = workers
		j, _ := renderFleet(t, cfg)
		if want == nil {
			want = j
			continue
		}
		if !bytes.Equal(j, want) {
			t.Errorf("workers=%d: report (incl. incident bundles) diverges from workers=1", workers)
		}
	}
	if !bytes.Contains(want, []byte(`"incidents"`)) {
		t.Fatal("report carries no incidents")
	}
}

// TestStreamIncidentsMatchBatch: the streaming engine must collect the
// byte-identical incident list the one-shot engine collects, for every
// batch/worker split.
func TestStreamIncidentsMatchBatch(t *testing.T) {
	base := weakGuardFleet()
	batchRep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchRep.Incidents) == 0 {
		t.Fatal("scenario captured no incidents")
	}
	for _, split := range []struct{ batch, workers int }{{1, 1}, {2, 2}, {4, 8}} {
		t.Run(fmt.Sprintf("batch=%d_workers=%d", split.batch, split.workers), func(t *testing.T) {
			cfg := StreamConfig{Config: base, Batch: split.batch}
			cfg.Workers = split.workers
			rep, err := RunStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep.Incidents, batchRep.Incidents) {
				t.Error("stream incident list diverges from the one-shot engine")
			}
			if rep.Aggregate.Incidents != batchRep.Aggregate.Incidents {
				t.Errorf("stream counts %d incidents, batch %d", rep.Aggregate.Incidents, batchRep.Aggregate.Incidents)
			}
		})
	}
}

// TestStreamIncidentCheckpointResume kills the stream at a batch boundary
// and resumes with a different split: the incident collection must survive
// the checkpoint and the final report must be byte-identical to the
// uninterrupted run's.
func TestStreamIncidentCheckpointResume(t *testing.T) {
	base := weakGuardFleet()
	uncut := StreamConfig{Config: base, Batch: 2}
	wantJSON, wantMetrics := renderStream(t, uncut)

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	cut := uncut
	cut.CheckpointPath = path
	cut.Halt = func(p Progress) bool { return p.BatchesDone >= 1 }
	if _, err := RunStream(cut); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Incidents) == 0 {
		t.Fatal("checkpoint carries no incidents from the completed batch")
	}
	for _, inc := range ck.Incidents {
		if _, _, err := flight.DecodeBundle(inc.Bundle); err != nil {
			t.Fatalf("machine %d: checkpointed bundle corrupt after JSON round trip: %v", inc.Machine, err)
		}
	}
	resumed := StreamConfig{Config: base, Batch: 1, Resume: ck}
	resumed.Workers = 2
	j, m := renderStream(t, resumed)
	if !bytes.Equal(j, wantJSON) {
		t.Error("resumed report JSON (incl. incidents) diverges from the uninterrupted run")
	}
	if !bytes.Equal(m, wantMetrics) {
		t.Error("resumed exposition diverges from the uninterrupted run")
	}
}

// TestFleetIncidentCap: a fleet with more captures than maxRecordedIncidents
// keeps exact counts while capping the verbatim list at the first
// maxRecordedIncidents incidents in machine index order.
func TestFleetIncidentCap(t *testing.T) {
	cfg := weakGuardFleet()
	cfg.Machines = maxRecordedIncidents + 4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.Incidents <= maxRecordedIncidents {
		t.Skipf("scenario produced only %d incidents; cap not exercised", rep.Aggregate.Incidents)
	}
	if len(rep.Incidents) != maxRecordedIncidents {
		t.Fatalf("retained %d incidents, want cap %d", len(rep.Incidents), maxRecordedIncidents)
	}
	for i, inc := range rep.Incidents {
		if i > 0 && inc.Machine < rep.Incidents[i-1].Machine {
			t.Fatal("capped list not in machine index order")
		}
	}
}

// TestFleetNoFlightNoIncidents: FlightWindow 0 must leave every incident
// surface absent — recording is strictly opt-in.
func TestFleetNoFlightNoIncidents(t *testing.T) {
	cfg := weakGuardFleet()
	cfg.FlightWindow = 0
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.Incidents != 0 || len(rep.Incidents) != 0 {
		t.Fatalf("flight disabled but report carries %d/%d incidents",
			rep.Aggregate.Incidents, len(rep.Incidents))
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(j, []byte(`"incidents"`)) {
		t.Fatal("disabled recording still surfaces incident fields in the report JSON")
	}
}
