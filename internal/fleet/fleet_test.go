package fleet

import (
	"bytes"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

// renderFleet runs one fleet configuration and renders both report forms.
func renderFleet(t *testing.T, cfg Config) (reportJSON, metrics []byte) {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return j, buf.Bytes()
}

// TestFleetDeterminismAcrossWorkers is the tentpole invariant, mirroring the
// PR 1 sharding contract: the full report JSON and the merged Prometheus
// exposition must be byte-identical at -workers 1, 2 and 8. Runs under -race
// in CI (the test job runs the whole suite with the race detector), which
// also vets the worker pool's disjoint-slot writes.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	base := Config{Machines: 5, Seed: 99, Attack: "voltjockey"}
	var wantJSON, wantMetrics []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		j, m := renderFleet(t, cfg)
		if wantJSON == nil {
			wantJSON, wantMetrics = j, m
			continue
		}
		if !bytes.Equal(j, wantJSON) {
			t.Errorf("workers=%d: report JSON diverges from workers=1", workers)
		}
		if !bytes.Equal(m, wantMetrics) {
			t.Errorf("workers=%d: merged exposition diverges from workers=1", workers)
		}
	}
	if !bytes.Contains(wantJSON, []byte(`"voltjockey"`)) {
		t.Error("report carries no attack outcome")
	}
}

// TestFleetRedTeamDeterminismAcrossWorkers extends the byte-identity
// contract to the adaptive red-team mode: even though each machine's
// annealing attacker chooses its probe sequence from its own seeded stream,
// the fleet report JSON and merged exposition must be byte-identical at
// -workers 1, 2 and 8.
func TestFleetRedTeamDeterminismAcrossWorkers(t *testing.T) {
	base := Config{Machines: 3, Seed: 21, Attack: "redteam"}
	var wantJSON, wantMetrics []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		j, m := renderFleet(t, cfg)
		if wantJSON == nil {
			wantJSON, wantMetrics = j, m
			continue
		}
		if !bytes.Equal(j, wantJSON) {
			t.Errorf("workers=%d: red-team report JSON diverges from workers=1", workers)
		}
		if !bytes.Equal(m, wantMetrics) {
			t.Errorf("workers=%d: red-team merged exposition diverges from workers=1", workers)
		}
	}
	if !bytes.Contains(wantJSON, []byte(`"redteam"`)) {
		t.Error("report carries no red-team outcome")
	}
}

// TestFleetGuardProtects sanity-checks the simulated outcome: a guarded
// mixed fleet under attack sees interventions and no successful campaigns.
func TestFleetGuardProtects(t *testing.T) {
	rep, err := Run(Config{Machines: 3, Workers: 2, Seed: 7, Attack: "voltjockey"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.Errors != 0 {
		t.Fatalf("fleet errors: %+v", rep.MachineRows)
	}
	if rep.Aggregate.AttacksRun != 3 || rep.Aggregate.AttacksSucceeded != 0 {
		t.Fatalf("aggregate %+v: want 3 attacks run, 0 succeeded", rep.Aggregate)
	}
	if rep.Aggregate.GuardChecks == 0 || rep.Aggregate.GuardInterventions == 0 {
		t.Fatalf("aggregate %+v: guard never engaged", rep.Aggregate)
	}
	// The default model cycle covers all three specs.
	models := map[string]bool{}
	for _, row := range rep.MachineRows {
		models[row.Model] = true
	}
	if len(models) != 3 {
		t.Fatalf("fleet models %v: want all three specs", models)
	}
	// The merged exposition aggregates per-machine series: total polls in
	// the merged snapshot must equal the sum of per-machine checks.
	if got := rep.Merged.Total("guard_polls_total"); got != float64(rep.Aggregate.GuardChecks) {
		t.Fatalf("merged guard_polls_total %v != aggregate checks %d", got, rep.Aggregate.GuardChecks)
	}
}

// TestFleetIdleWindow covers the "none" campaign: machines idle under guard
// for the configured window and accumulate poll checks proportional to it.
func TestFleetIdleWindow(t *testing.T) {
	rep, err := Run(Config{Machines: 2, Workers: 2, Seed: 3, Attack: "none",
		Window: 5 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.AttacksRun != 0 {
		t.Fatalf("idle fleet ran %d attacks", rep.Aggregate.AttacksRun)
	}
	if rep.Aggregate.Errors != 0 || rep.Aggregate.GuardChecks == 0 {
		t.Fatalf("aggregate %+v", rep.Aggregate)
	}
	for _, row := range rep.MachineRows {
		if row.VirtualPS < int64(5*sim.Millisecond) {
			t.Fatalf("machine %d only reached %d ps", row.Index, row.VirtualPS)
		}
	}
}

// TestFleetConfigValidation covers the config error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Machines: 0}); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := Run(Config{Machines: 1, Attack: "rowhammer"}); err == nil {
		t.Error("unknown attack accepted")
	}
	if _, err := Run(Config{Machines: 1, Models: []string{"pentium4"}}); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestMachineSeedProperties pins the seed derivation: index-pure, distinct
// across a large fleet, and sensitive to the fleet seed.
func TestMachineSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 4096; i++ {
		s := MachineSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("MachineSeed(42, %d) == MachineSeed(42, %d)", i, prev)
		}
		seen[s] = i
		if s != MachineSeed(42, i) {
			t.Fatal("MachineSeed not pure")
		}
	}
	if MachineSeed(1, 0) == MachineSeed(2, 0) {
		t.Error("fleet seed does not reach machine seeds")
	}
}

// TestFleetReportOmitsWorkers guards the invariant structurally: the report
// must not mention the worker count anywhere, or byte-identity across
// -workers values becomes accidental instead of designed.
func TestFleetReportOmitsWorkers(t *testing.T) {
	rep, err := Run(Config{Machines: 1, Workers: 3, Seed: 1, Attack: "none", Window: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(j), "workers") {
		t.Fatal("report JSON leaks the worker count")
	}
}

// TestFleetEnergyRollup pins the joule axis of the report: every machine
// bills energy, the aggregate is the index-ordered sum of the rows (so it
// cannot depend on the execution split), and the streaming engine's
// aggregate and per-model energy reproduce the batch engine's bit for bit.
func TestFleetEnergyRollup(t *testing.T) {
	base := Config{Machines: 4, Seed: 13, Attack: "voltjockey"}
	cfg := base
	cfg.Workers = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	byModel := map[string]float64{}
	for _, row := range rep.MachineRows {
		if row.EnergyJ <= 0 {
			t.Fatalf("machine %d billed %g J", row.Index, row.EnergyJ)
		}
		sum += row.EnergyJ
		byModel[row.Model] += row.EnergyJ
	}
	if sum != rep.Aggregate.EnergyJ {
		t.Fatalf("aggregate energy %v != index-ordered row sum %v", rep.Aggregate.EnergyJ, sum)
	}

	scfg := StreamConfig{Config: base, Batch: 2}
	scfg.Workers = 8
	srep, err := RunStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Aggregate.EnergyJ != rep.Aggregate.EnergyJ {
		t.Fatalf("stream aggregate energy %v != batch %v", srep.Aggregate.EnergyJ, rep.Aggregate.EnergyJ)
	}
	for _, m := range srep.ModelRows {
		if m.EnergyJ != byModel[m.Model] {
			t.Fatalf("model %s stream energy %v != batch fold %v", m.Model, m.EnergyJ, byModel[m.Model])
		}
	}
}
