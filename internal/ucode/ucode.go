// Package ucode models the Intel microcode-update machinery the paper's
// Section 5.1 deployment rides on.
//
// Real microcode updates are encrypted blobs loaded via BIOS or the OS
// early loader; the patch RAM holds replacement micro-op sequences and the
// *match registers* redirect architectural events — such as a wrmsr to a
// particular MSR — into the sequencer, which runs the patched routine.
// Reverse-engineering work (Koppe et al., Borrello et al., cited by the
// paper) showed exactly this structure.
//
// The model captures the deployment-relevant behaviour:
//
//   - updates carry a revision and a set of wrmsr match/patch handlers;
//   - loading is privileged, monotonic in revision by default (downgrade
//     protection), and resets with the machine (updates are volatile);
//   - the loaded revision is visible to attestation, which is how a client
//     knows the Sec. 5.1 write-guard is actually resident;
//   - the paper's countermeasure becomes a Patch on MSR 0x150 whose
//     handler write-ignores offsets beyond the maximal safe state, with
//     the value burned into the update's ROM constants.
package ucode

import (
	"errors"
	"fmt"
	"sort"

	"plugvolt/internal/cpu"
	"plugvolt/internal/msr"
)

// Patch is one match-register entry: a wrmsr handler for an MSR address.
type Patch struct {
	// Addr is the matched MSR.
	Addr msr.Addr
	// Handler runs instead of the stock wrmsr commit; semantics follow
	// msr.WriteHook (transform, write-ignore by returning old, or #GP).
	Handler msr.WriteHook
	// Note documents the patch for the update manifest.
	Note string
}

// Update is a loadable microcode update.
type Update struct {
	// Revision is the update version (e.g. 0xf4); loads must be monotone.
	Revision uint32
	// CPUSignature ties the update to a model (family/model/stepping in
	// reality; the codename here).
	CPUSignature string
	// Patches are the match-register entries.
	Patches []Patch
	// ROM holds named constants compiled into the update (the paper:
	// "the microcode ROM stores the value of the maximal safe state").
	ROM map[string]int64
}

// Validate checks structural sanity.
func (u *Update) Validate() error {
	if u.Revision == 0 {
		return errors.New("ucode: revision 0 is reserved for 'no update'")
	}
	if u.CPUSignature == "" {
		return errors.New("ucode: update needs a CPU signature")
	}
	seen := map[msr.Addr]bool{}
	for _, p := range u.Patches {
		if p.Handler == nil {
			return fmt.Errorf("ucode: patch for 0x%x has no handler", uint32(p.Addr))
		}
		if seen[p.Addr] {
			return fmt.Errorf("ucode: duplicate patch for 0x%x", uint32(p.Addr))
		}
		seen[p.Addr] = true
	}
	return nil
}

// Sequencer is one machine's microcode facility.
type Sequencer struct {
	platform *cpu.Platform
	loaded   *Update
	hookIDs  map[msr.Addr][]int // per-address hook ids, per core order
	// AllowDowngrade disables the monotonicity check (debug fuses).
	AllowDowngrade bool
	// Loads counts successful update loads.
	Loads uint64
}

// NewSequencer attaches the facility to a platform.
func NewSequencer(p *cpu.Platform) (*Sequencer, error) {
	if p == nil {
		return nil, errors.New("ucode: nil platform")
	}
	return &Sequencer{platform: p, hookIDs: map[msr.Addr][]int{}}, nil
}

// Revision returns the loaded revision (0 = stock ROM only).
func (s *Sequencer) Revision() uint32 {
	if s.loaded == nil {
		return 0
	}
	return s.loaded.Revision
}

// ROMValue reads a named constant from the loaded update.
func (s *Sequencer) ROMValue(name string) (int64, bool) {
	if s.loaded == nil {
		return 0, false
	}
	v, ok := s.loaded.ROM[name]
	return v, ok
}

// Load applies an update: validates, checks the signature and revision
// monotonicity, unhooks any previous update and installs the new match
// registers on every core.
func (s *Sequencer) Load(u *Update) error {
	if u == nil {
		return errors.New("ucode: nil update")
	}
	if err := u.Validate(); err != nil {
		return err
	}
	if u.CPUSignature != s.platform.Spec.Codename {
		return fmt.Errorf("ucode: update signed for %q, machine is %q",
			u.CPUSignature, s.platform.Spec.Codename)
	}
	if !s.AllowDowngrade && u.Revision <= s.Revision() {
		return fmt.Errorf("ucode: revision 0x%x not newer than loaded 0x%x",
			u.Revision, s.Revision())
	}
	s.unhook()
	for _, p := range u.Patches {
		p := p
		for i := 0; i < s.platform.NumCores(); i++ {
			id := s.platform.MSRFile(i).AddWriteHook(p.Addr, p.Handler)
			s.hookIDs[p.Addr] = append(s.hookIDs[p.Addr], id)
		}
	}
	s.loaded = u
	s.Loads++
	return nil
}

// unhook removes the previous update's match registers.
func (s *Sequencer) unhook() {
	for addr, ids := range s.hookIDs {
		for i, id := range ids {
			core := i % s.platform.NumCores()
			s.platform.MSRFile(core).RemoveWriteHook(addr, id)
		}
	}
	s.hookIDs = map[msr.Addr][]int{}
}

// Reset models a machine reset: microcode updates are volatile, so the
// patch RAM empties and the revision returns to 0. Must be called by
// whoever drives Platform.Reboot (reboot rebuilds MSR files, so the hooks
// are gone either way; Reset keeps the sequencer's book-keeping honest).
func (s *Sequencer) Reset() {
	s.hookIDs = map[msr.Addr][]int{}
	s.loaded = nil
}

// Manifest renders the loaded update for audit logs.
func (s *Sequencer) Manifest() string {
	if s.loaded == nil {
		return "microcode: stock ROM (no update loaded)"
	}
	out := fmt.Sprintf("microcode revision 0x%x for %s\n", s.loaded.Revision, s.loaded.CPUSignature)
	for _, p := range s.loaded.Patches {
		out += fmt.Sprintf("  match wrmsr 0x%x: %s\n", uint32(p.Addr), p.Note)
	}
	keys := make([]string, 0, len(s.loaded.ROM))
	for k := range s.loaded.ROM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += fmt.Sprintf("  rom %s = %d\n", k, s.loaded.ROM[k])
	}
	return out
}

// ROMKeyMaxSafe is the ROM constant name carrying the maximal safe state.
const ROMKeyMaxSafe = "maximal_safe_offset_mv"

// PlugVoltUpdate builds the Sec. 5.1 countermeasure as a microcode update:
// a wrmsr match on the OC mailbox whose handler write-ignores any core-
// plane offset deeper than the maximal safe state stored in the update ROM.
// ignored, when non-nil, counts dropped writes.
func PlugVoltUpdate(revision uint32, cpuSignature string, maxSafeOffsetMV int, ignored *uint64) (*Update, error) {
	if maxSafeOffsetMV > 0 {
		return nil, fmt.Errorf("ucode: maximal safe offset %d must be <= 0", maxSafeOffsetMV)
	}
	return &Update{
		Revision:     revision,
		CPUSignature: cpuSignature,
		ROM:          map[string]int64{ROMKeyMaxSafe: int64(maxSafeOffsetMV)},
		Patches: []Patch{{
			Addr: msr.OCMailbox,
			Note: fmt.Sprintf("write-ignore core-plane undervolts beyond %d mV (Plug Your Volt, Sec. 5.1)", maxSafeOffsetMV),
			Handler: func(_ *msr.File, old, v uint64) (uint64, error) {
				d := msr.DecodeVoltageOffset(v)
				if d.Busy && d.Write && d.Plane == msr.PlaneCore && d.OffsetMV < maxSafeOffsetMV {
					if ignored != nil {
						*ignored++
					}
					return old, nil
				}
				return v, nil
			},
		}},
	}, nil
}
