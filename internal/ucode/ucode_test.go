package ucode

import (
	"strings"
	"testing"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
)

func newPlatform(t *testing.T) *cpu.Platform {
	t.Helper()
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSequencerBasics(t *testing.T) {
	p := newPlatform(t)
	if _, err := NewSequencer(nil); err == nil {
		t.Fatal("nil platform accepted")
	}
	s, err := NewSequencer(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Revision() != 0 {
		t.Fatalf("stock revision %d", s.Revision())
	}
	if _, ok := s.ROMValue("anything"); ok {
		t.Fatal("ROM value from stock ROM")
	}
	if !strings.Contains(s.Manifest(), "stock ROM") {
		t.Fatalf("manifest %q", s.Manifest())
	}
}

func TestUpdateValidation(t *testing.T) {
	noop := func(_ *msr.File, _, v uint64) (uint64, error) { return v, nil }
	cases := []*Update{
		nil,
		{Revision: 0, CPUSignature: "Sky Lake"},
		{Revision: 1, CPUSignature: ""},
		{Revision: 1, CPUSignature: "Sky Lake", Patches: []Patch{{Addr: msr.OCMailbox}}},
		{Revision: 1, CPUSignature: "Sky Lake", Patches: []Patch{
			{Addr: msr.OCMailbox, Handler: noop},
			{Addr: msr.OCMailbox, Handler: noop},
		}},
	}
	p := newPlatform(t)
	s, _ := NewSequencer(p)
	for i, u := range cases {
		if err := s.Load(u); err == nil {
			t.Errorf("bad update %d accepted", i)
		}
	}
}

func TestSignatureAndRevisionChecks(t *testing.T) {
	p := newPlatform(t)
	s, _ := NewSequencer(p)
	wrong, err := PlugVoltUpdate(0xf1, "Comet Lake", -70, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wrong); err == nil {
		t.Fatal("wrong-signature update accepted")
	}
	u1, _ := PlugVoltUpdate(0xf1, "Sky Lake", -70, nil)
	if err := s.Load(u1); err != nil {
		t.Fatal(err)
	}
	if s.Revision() != 0xf1 {
		t.Fatalf("revision %x", s.Revision())
	}
	// Downgrade and same-revision rejected.
	u0, _ := PlugVoltUpdate(0xf0, "Sky Lake", -70, nil)
	if err := s.Load(u0); err == nil {
		t.Fatal("downgrade accepted")
	}
	same, _ := PlugVoltUpdate(0xf1, "Sky Lake", -60, nil)
	if err := s.Load(same); err == nil {
		t.Fatal("same revision accepted")
	}
	// Debug fuse allows it.
	s.AllowDowngrade = true
	if err := s.Load(u0); err != nil {
		t.Fatal(err)
	}
	if s.Loads != 2 {
		t.Fatalf("loads %d", s.Loads)
	}
}

func TestPlugVoltUpdateWriteIgnores(t *testing.T) {
	p := newPlatform(t)
	s, _ := NewSequencer(p)
	var ignored uint64
	u, err := PlugVoltUpdate(0xf1, "Sky Lake", -70, &ignored)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlugVoltUpdate(1, "Sky Lake", 5, nil); err == nil {
		t.Fatal("positive maximal safe accepted")
	}
	if err := s.Load(u); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.ROMValue(ROMKeyMaxSafe); !ok || v != -70 {
		t.Fatalf("ROM constant %d, %v", v, ok)
	}
	if !strings.Contains(s.Manifest(), "write-ignore") {
		t.Fatalf("manifest: %s", s.Manifest())
	}

	// Safe write passes on every core; unsafe write is ignored on every
	// core (the update installs machine-wide).
	for core := 0; core < p.NumCores(); core++ {
		if err := p.WriteOffsetViaMSR(core, -50, msr.PlaneCore); err != nil {
			t.Fatal(err)
		}
		p.SettleAll()
		if got := p.Core(core).OffsetMV(); got != -50 {
			t.Fatalf("core %d safe write: %d", core, got)
		}
		if err := p.WriteOffsetViaMSR(core, -200, msr.PlaneCore); err != nil {
			t.Fatalf("write-ignore errored: %v", err)
		}
		p.SettleAll()
		if got := p.Core(core).OffsetMV(); got != -50 {
			t.Fatalf("core %d unsafe write applied: %d", core, got)
		}
	}
	if ignored != uint64(p.NumCores()) {
		t.Fatalf("ignored %d", ignored)
	}
}

func TestNewerUpdateReplacesPatches(t *testing.T) {
	p := newPlatform(t)
	s, _ := NewSequencer(p)
	var ig1, ig2 uint64
	u1, _ := PlugVoltUpdate(0xf1, "Sky Lake", -70, &ig1)
	if err := s.Load(u1); err != nil {
		t.Fatal(err)
	}
	u2, _ := PlugVoltUpdate(0xf2, "Sky Lake", -120, &ig2)
	if err := s.Load(u2); err != nil {
		t.Fatal(err)
	}
	// -100 is beyond u1's limit but within u2's: it must now pass,
	// proving u1's handler is gone.
	if err := p.WriteOffsetViaMSR(0, -100, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.Core(0).OffsetMV(); got != -100 {
		t.Fatalf("offset %d — old patch still resident", got)
	}
	if ig1 != 0 {
		t.Fatalf("old handler fired %d times", ig1)
	}
	if err := p.WriteOffsetViaMSR(0, -200, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	if ig2 != 1 {
		t.Fatalf("new handler fired %d times", ig2)
	}
}

func TestResetDropsUpdate(t *testing.T) {
	p := newPlatform(t)
	s, _ := NewSequencer(p)
	u, _ := PlugVoltUpdate(0xf1, "Sky Lake", -70, nil)
	if err := s.Load(u); err != nil {
		t.Fatal(err)
	}
	p.Reboot() // wipes MSR files and with them the hooks
	s.Reset()
	if s.Revision() != 0 {
		t.Fatalf("revision after reset %x", s.Revision())
	}
	// Unsafe write passes again: the machine is unprotected until the
	// early loader reapplies the update — exactly the volatility the
	// attestation revision check exists for.
	if err := p.WriteOffsetViaMSR(0, -200, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.SettleAll()
	if got := p.Core(0).OffsetMV(); got > -195 {
		t.Fatalf("offset %d — protection survived reset?!", got)
	}
	// And the same update can be loaded again post-reset.
	if err := s.Load(u); err != nil {
		t.Fatal(err)
	}
}
