// Package slo turns the paper's temporal safety argument into
// machine-checked service-level objectives over the causal span trace.
//
// The polling countermeasure's guarantee is temporal: the window between an
// unsafe `wrmsr 0x150` and the guard's corrective rewrite must stay shorter
// than the time the regulator needs to reach fault depth (PAPER.md §S2;
// V0LTpwn demonstrates how little unsafe dwell an attacker needs). A guard
// that is loaded but stalled — kthread wedged, period misconfigured, module
// unloaded by the adversary — silently forfeits that guarantee while every
// counter keeps its last healthy value. The watchdog makes the failure
// loud: declarative rules are evaluated against the virtual clock using the
// span tracer (guard_poll / guard_intervention / mailbox_write spans) and
// the event journal, and violations become journal events plus a non-zero
// exit from `plugvolt-guard -slo`.
//
// Evaluate is pure — it never mutates the journal or tracer — so live
// health endpoints can call it repeatedly; EmitJournal records a report's
// violations explicitly.
package slo

import (
	"fmt"
	"sort"
	"strings"

	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
)

// Kind names one rule family.
type Kind string

// Rule kinds.
const (
	// KindPollLatencyP99 bounds the 99th percentile CPU cost of a single
	// guard poll. Limit is a duration.
	KindPollLatencyP99 Kind = "poll_latency_p99"
	// KindMaxPollGap bounds the virtual time between consecutive guard
	// polls on the same core, and from the last poll to the end of the
	// evaluation window — the stall detector. Limit is a duration.
	KindMaxPollGap Kind = "max_poll_gap"
	// KindMaxUnsafeDwell bounds the time from an accepted unsafe non-guard
	// mailbox write to the guard intervention that closes it. Limit is a
	// duration.
	KindMaxUnsafeDwell Kind = "max_unsafe_dwell"
	// KindInterventionClosure requires every accepted unsafe non-guard
	// write to be closed by a later guard intervention on the same core
	// before the window ends, and every observed fault to fall inside an
	// open unsafe window (a fault with no unsafe write preceding it points
	// at out-of-band injection). Limit is ignored.
	KindInterventionClosure Kind = "intervention_closure"
	// KindGuardEnergyBudget bounds the guard's mean attributed power on
	// every core: kernel-attributed joules over the window divided by the
	// window length must stay under BudgetW. A guard that keeps the fault
	// guarantee by burning watts has just moved the denial of service into
	// the electricity bill; this rule makes that loud. Limit is ignored;
	// BudgetW is the bound. Skipped when the watchdog has no energy source.
	KindGuardEnergyBudget Kind = "guard_energy_budget"
)

// Rule is one declarative objective.
type Rule struct {
	Kind Kind
	// Limit is the rule's bound; its meaning depends on Kind (see the Kind
	// constants). Ignored by KindInterventionClosure and KindGuardEnergyBudget.
	Limit sim.Duration
	// BudgetW is the per-core mean-power bound of KindGuardEnergyBudget, in
	// watts. Ignored by the other kinds.
	BudgetW float64
}

// String renders the rule for reports.
func (r Rule) String() string {
	switch r.Kind {
	case KindInterventionClosure:
		return string(r.Kind)
	case KindGuardEnergyBudget:
		return fmt.Sprintf("%s<=%gW", r.Kind, r.BudgetW)
	}
	return fmt.Sprintf("%s<=%v", r.Kind, sim.Time(r.Limit))
}

// EnergyBudgetRule builds the energy-budget objective with a per-core mean
// guard power bound in watts.
func EnergyBudgetRule(budgetW float64) Rule {
	return Rule{Kind: KindGuardEnergyBudget, BudgetW: budgetW}
}

// DefaultRules derives the standard rule set from the guard's poll period:
//
//   - poll latency p99 within 2 us (a poll is two rdmsr plus at most one
//     intervention wrmsr; anything slower points at a broken cost model or
//     a runaway poll body);
//   - no poll gap beyond 4 poll periods (stall detection with slack for
//     load/unload edges);
//   - unsafe dwell within 2 poll periods plus the wrmsr cost (detection
//     latency of Algorithm 3's polling loop at the register level);
//   - full intervention closure.
func DefaultRules(pollPeriod sim.Duration) []Rule {
	return []Rule{
		{Kind: KindPollLatencyP99, Limit: 2 * sim.Microsecond},
		{Kind: KindMaxPollGap, Limit: 4 * pollPeriod},
		{Kind: KindMaxUnsafeDwell, Limit: 2*pollPeriod + 10*sim.Microsecond},
		{Kind: KindInterventionClosure},
	}
}

// Violation is one rule breach.
type Violation struct {
	Rule Rule
	// Core is the affected core, -1 when not core-specific.
	Core int
	// At is the virtual time the breach is anchored to.
	At sim.Time
	// Measured is the observed value (duration for latency/gap/dwell rules;
	// 0 for closure).
	Measured sim.Duration
	Detail   string
}

// String renders one violation line.
func (v Violation) String() string {
	core := "-"
	if v.Core >= 0 {
		core = fmt.Sprintf("%d", v.Core)
	}
	return fmt.Sprintf("SLO VIOLATION %-20s core=%s at=%v: %s", v.Rule.Kind, core, v.At, v.Detail)
}

// Stats summarizes what the evaluation saw.
type Stats struct {
	Polls           int
	Interventions   int
	AcceptedWrites  int
	UnsafeWrites    int
	GuardedWrites   int
	Faults          int
	PollLatencyP99  sim.Duration
	MaxPollGap      sim.Duration
	MaxUnsafeDwell  sim.Duration
	UnclosedWindows int
	// MaxGuardPowerW is the worst per-core mean attributed guard power seen
	// by the energy-budget rule (0 when the rule didn't run).
	MaxGuardPowerW float64
}

// Report is the outcome of one Evaluate call.
type Report struct {
	End        sim.Time
	Rules      []Rule
	Violations []Violation
	Stats      Stats
	// Truncated reports that the span buffer overflowed (drop-newest) and
	// the window was clamped to the last recorded span — verdicts beyond
	// that horizon are unknowable, not clean.
	Truncated bool
}

// OK reports whether every rule held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var sb strings.Builder
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	fmt.Fprintf(&sb, "SLO %s (window end %v)\n", status, r.End)
	if r.Truncated {
		sb.WriteString("  WARNING: span buffer overflowed; window clamped to the recorded horizon\n")
	}
	fmt.Fprintf(&sb, "  polls=%d interventions=%d writes(accepted=%d unsafe=%d guard=%d) faults=%d\n",
		r.Stats.Polls, r.Stats.Interventions, r.Stats.AcceptedWrites,
		r.Stats.UnsafeWrites, r.Stats.GuardedWrites, r.Stats.Faults)
	fmt.Fprintf(&sb, "  poll_latency_p99=%v max_poll_gap=%v max_unsafe_dwell=%v unclosed=%d\n",
		sim.Time(r.Stats.PollLatencyP99), sim.Time(r.Stats.MaxPollGap),
		sim.Time(r.Stats.MaxUnsafeDwell), r.Stats.UnclosedWindows)
	if r.Stats.MaxGuardPowerW > 0 {
		fmt.Fprintf(&sb, "  max_guard_power=%.6gW\n", r.Stats.MaxGuardPowerW)
	}
	for _, rule := range r.Rules {
		fmt.Fprintf(&sb, "  rule %v\n", rule)
	}
	for _, v := range r.Violations {
		sb.WriteString("  " + v.String() + "\n")
	}
	return sb.String()
}

// maxViolationEvents caps the journal events EmitJournal writes per report,
// so a long stall cannot flood the bounded journal.
const maxViolationEvents = 100

// EmitJournal records the report into the journal: one slo_violation event
// per breach (capped) plus one slo_report summary event.
func (r *Report) EmitJournal(j *telemetry.Journal) {
	if j == nil {
		return
	}
	for i, v := range r.Violations {
		if i >= maxViolationEvents {
			break
		}
		j.Emit("slo_violation", map[string]any{
			"rule": string(v.Rule.Kind), "core": v.Core, "at_ps": int64(v.At),
			"measured_ps": int64(v.Measured), "limit_ps": int64(v.Rule.Limit),
			"detail": v.Detail,
		})
	}
	j.Emit("slo_report", map[string]any{
		"ok": r.OK(), "violations": len(r.Violations),
		"polls": r.Stats.Polls, "interventions": r.Stats.Interventions,
		"unsafe_writes": r.Stats.UnsafeWrites, "faults": r.Stats.Faults,
	})
}

// Watchdog evaluates SLO rules over a tracer and journal.
type Watchdog struct {
	Tracer  *span.Tracer
	Journal *telemetry.Journal
	Rules   []Rule
	// Unsafe classifies an accepted non-guard mailbox write: true when
	// (core's frequency, offset) is in the characterized unsafe set. The
	// dwell and closure rules only consider writes this reports unsafe;
	// a nil predicate treats every negative-offset write as unsafe (a
	// conservative fallback when no characterization is at hand).
	Unsafe func(core, offsetMV int) bool
	// GuardEnergyJ reports the kernel-attributed guard energy on a core in
	// joules (kernel.Kernel.EnergyJ); NumCores bounds the scan. Both must
	// be set for KindGuardEnergyBudget to run — a nil source skips the rule
	// rather than fabricating a zero reading.
	GuardEnergyJ func(core int) float64
	NumCores     int
}

// window is one open unsafe interval on a core.
type window struct {
	core  int
	start sim.Time
	end   sim.Time // closure time; end == -1 while open
}

// Evaluate checks every rule against the spans and journal up to virtual
// time end. It is pure: repeated calls with the same inputs return equal
// reports and nothing is mutated.
func (w *Watchdog) Evaluate(end sim.Time) *Report {
	rep := &Report{End: end, Rules: w.Rules}
	spans := sortSpans(w.Tracer.Spans())
	// A saturated drop-newest buffer records nothing past some horizon; a
	// poll "gap" from there to end is an artifact of truncation, not a
	// stall. Clamp the window to the last recorded span so the rules only
	// judge time the trace actually covers.
	if w.Tracer.Dropped() > 0 && len(spans) > 0 {
		if horizon := spans[len(spans)-1].Start; horizon < end {
			end = horizon
			rep.End = end
			rep.Truncated = true
		}
	}
	byID := make(map[span.ID]*span.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}

	var polls, interventions, writes []*span.Span
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case "guard_poll":
			polls = append(polls, s)
		case "guard_intervention":
			interventions = append(interventions, s)
		case "mailbox_write":
			if attrString(s, "outcome") == "accepted" {
				writes = append(writes, s)
			}
		}
	}
	rep.Stats.Polls = len(polls)
	rep.Stats.Interventions = len(interventions)
	rep.Stats.AcceptedWrites = len(writes)

	// Partition accepted writes into guard-issued (parent chain reaches a
	// guard_intervention span) and foreign, and keep the unsafe foreigners.
	guarded := func(s *span.Span) bool {
		cur := s
		for depth := 0; cur != nil && depth < 64; depth++ {
			if cur.Name == "guard_intervention" {
				return true
			}
			if cur.Parent == 0 {
				return false
			}
			cur = byID[cur.Parent]
		}
		return false
	}
	unsafe := func(core, offsetMV int) bool {
		if w.Unsafe != nil {
			return w.Unsafe(core, offsetMV)
		}
		return offsetMV < 0
	}
	var unsafeWrites []*span.Span
	for _, s := range writes {
		if guarded(s) {
			rep.Stats.GuardedWrites++
			continue
		}
		if unsafe(attrInt(s, "core"), attrInt(s, "offset_mv")) {
			unsafeWrites = append(unsafeWrites, s)
		}
	}
	rep.Stats.UnsafeWrites = len(unsafeWrites)

	// Build unsafe windows: each unsafe write opens (or extends) a window on
	// its core; the next guard intervention on that core closes every window
	// open on it.
	windows := buildWindows(unsafeWrites, interventions, end)

	for _, rule := range w.Rules {
		switch rule.Kind {
		case KindPollLatencyP99:
			w.checkPollLatency(rep, rule, polls)
		case KindMaxPollGap:
			w.checkPollGap(rep, rule, polls, end)
		case KindMaxUnsafeDwell:
			w.checkDwell(rep, rule, windows)
		case KindInterventionClosure:
			w.checkClosure(rep, rule, windows, end)
		case KindGuardEnergyBudget:
			w.checkEnergyBudget(rep, rule, end)
		}
	}
	return rep
}

// checkEnergyBudget converts each core's attributed joules into mean watts
// over the window and compares against the budget. Pure: the energy source
// is a cumulative-counter read, never a mutation.
func (w *Watchdog) checkEnergyBudget(rep *Report, rule Rule, end sim.Time) {
	if w.GuardEnergyJ == nil || w.NumCores <= 0 || end <= 0 {
		return
	}
	windowS := end.Seconds()
	for core := 0; core < w.NumCores; core++ {
		avgW := w.GuardEnergyJ(core) / windowS
		if avgW > rep.Stats.MaxGuardPowerW {
			rep.Stats.MaxGuardPowerW = avgW
		}
		if avgW > rule.BudgetW {
			rep.Violations = append(rep.Violations, Violation{
				Rule: rule, Core: core, At: end,
				Detail: fmt.Sprintf("guard mean power %.6g W over budget %g W (%.6g J in %v)",
					avgW, rule.BudgetW, w.GuardEnergyJ(core), end),
			})
		}
	}
}

// sortSpans orders spans by (Start, Track, Seq) — deterministic regardless
// of emission interleaving, mirroring the exporters.
func sortSpans(spans []span.Span) []span.Span {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Seq < b.Seq
	})
	return spans
}

func attrInt(s *span.Span, key string) int {
	switch v := s.Attrs[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}

func attrString(s *span.Span, key string) string {
	v, _ := s.Attrs[key].(string)
	return v
}

// buildWindows pairs unsafe writes with the interventions that close them.
// Both slices are in time order.
func buildWindows(unsafeWrites, interventions []*span.Span, end sim.Time) []window {
	perCore := map[int][]*span.Span{}
	for _, iv := range interventions {
		c := attrInt(iv, "core")
		perCore[c] = append(perCore[c], iv)
	}
	out := make([]window, 0, len(unsafeWrites))
	for _, uw := range unsafeWrites {
		c := attrInt(uw, "core")
		win := window{core: c, start: uw.Start, end: -1}
		for _, iv := range perCore[c] {
			if iv.Start >= uw.Start {
				win.end = iv.Start
				break
			}
		}
		out = append(out, win)
	}
	return out
}

func (w *Watchdog) checkPollLatency(rep *Report, rule Rule, polls []*span.Span) {
	if len(polls) == 0 {
		return
	}
	durs := make([]sim.Duration, len(polls))
	for i, p := range polls {
		durs[i] = p.Dur
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	// Nearest-rank p99.
	idx := (99*len(durs) + 99) / 100
	if idx > 0 {
		idx--
	}
	p99 := durs[idx]
	rep.Stats.PollLatencyP99 = p99
	if p99 > rule.Limit {
		rep.Violations = append(rep.Violations, Violation{
			Rule: rule, Core: -1, At: rep.End, Measured: p99,
			Detail: fmt.Sprintf("poll latency p99 %v over limit %v (%d polls)",
				sim.Time(p99), sim.Time(rule.Limit), len(durs)),
		})
	}
}

func (w *Watchdog) checkPollGap(rep *Report, rule Rule, polls []*span.Span, end sim.Time) {
	// Group poll start times per core (spans are already time-sorted).
	perCore := map[int][]sim.Time{}
	cores := []int{}
	for _, p := range polls {
		c := attrInt(p, "core")
		if _, ok := perCore[c]; !ok {
			cores = append(cores, c)
		}
		perCore[c] = append(perCore[c], p.Start)
	}
	sort.Ints(cores)
	for _, c := range cores {
		times := perCore[c]
		worstGap := sim.Duration(0)
		worstAt := sim.Time(0)
		for i := 1; i < len(times); i++ {
			if g := times[i] - times[i-1]; g > worstGap {
				worstGap, worstAt = g, times[i]
			}
		}
		// The stall case: polls simply stop before the window ends.
		if g := end - times[len(times)-1]; g > worstGap {
			worstGap, worstAt = g, end
		}
		if worstGap > rep.Stats.MaxPollGap {
			rep.Stats.MaxPollGap = worstGap
		}
		if worstGap > rule.Limit {
			rep.Violations = append(rep.Violations, Violation{
				Rule: rule, Core: c, At: worstAt, Measured: worstGap,
				Detail: fmt.Sprintf("poll gap %v over limit %v (guard stalled?)",
					sim.Time(worstGap), sim.Time(rule.Limit)),
			})
		}
	}
}

func (w *Watchdog) checkDwell(rep *Report, rule Rule, windows []window) {
	for _, win := range windows {
		if win.end < 0 {
			continue // unclosed: the closure rule reports it
		}
		dwell := win.end - win.start
		if dwell > rep.Stats.MaxUnsafeDwell {
			rep.Stats.MaxUnsafeDwell = dwell
		}
		if dwell > rule.Limit {
			rep.Violations = append(rep.Violations, Violation{
				Rule: rule, Core: win.core, At: win.start, Measured: dwell,
				Detail: fmt.Sprintf("unsafe dwell %v over limit %v before intervention",
					sim.Time(dwell), sim.Time(rule.Limit)),
			})
		}
	}
}

func (w *Watchdog) checkClosure(rep *Report, rule Rule, windows []window, end sim.Time) {
	for _, win := range windows {
		if win.end < 0 {
			rep.Stats.UnclosedWindows++
			rep.Violations = append(rep.Violations, Violation{
				Rule: rule, Core: win.core, At: win.start, Measured: end - win.start,
				Detail: fmt.Sprintf("unsafe write at %v never closed by a guard intervention",
					win.start),
			})
		}
	}
	// Every journaled fault must land inside an open unsafe window; a fault
	// with no preceding unsafe mailbox write points at out-of-band injection
	// (VoltPillager-style) or a broken trace.
	if w.Journal == nil {
		return
	}
	for _, e := range w.Journal.OfType("attack_fault") {
		if e.At > end {
			continue // past the (possibly clamped) window
		}
		rep.Stats.Faults++
		covered := false
		for _, win := range windows {
			hi := win.end
			if hi < 0 {
				hi = end
			}
			if e.At >= win.start && e.At <= hi {
				covered = true
				break
			}
		}
		if !covered {
			rep.Violations = append(rep.Violations, Violation{
				Rule: rule, Core: -1, At: e.At,
				Detail: "fault observed outside any open unsafe-write window (out-of-band injection?)",
			})
		}
	}
}
