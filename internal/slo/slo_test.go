package slo

import (
	"reflect"
	"strings"
	"testing"

	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
)

const pollPeriod = 100 * sim.Microsecond

// harness builds a tracer+journal pair on a hand-cranked virtual clock.
type harness struct {
	now sim.Time
	tr  *span.Tracer
	j   *telemetry.Journal
}

func newHarness() *harness {
	h := &harness{}
	clock := func() sim.Time { return h.now }
	h.tr = span.NewTracer(clock, 1, 0)
	h.j = telemetry.NewJournal(clock, 256)
	return h
}

func (h *harness) watchdog(unsafe func(core, offsetMV int) bool) *Watchdog {
	return &Watchdog{Tracer: h.tr, Journal: h.j, Rules: DefaultRules(pollPeriod), Unsafe: unsafe}
}

// polls emits healthy guard_poll spans on the core every pollPeriod from
// start to end.
func (h *harness) polls(core int, start, end sim.Time) {
	for t := start; t < end; t += sim.Time(pollPeriod) {
		h.tr.Complete("guard", "guard_poll", t, 500*sim.Nanosecond,
			map[string]any{"core": core})
	}
}

// attackWrite emits an accepted foreign mailbox write.
func (h *harness) attackWrite(at sim.Time, core, offsetMV int) {
	h.now = at
	h.tr.Instant("msr/core0", "mailbox_write", map[string]any{
		"core": core, "offset_mv": offsetMV, "plane": 0, "outcome": "accepted"})
}

// intervention emits a guard_intervention span enclosing its corrective
// mailbox write, exactly as the guard's pollOne does.
func (h *harness) intervention(at sim.Time, core int) {
	h.now = at
	isp := h.tr.Start("guard", "guard_intervention", map[string]any{
		"core": core, "offset_mv": -200, "safe_mv": 0})
	h.tr.Instant("msr/core0", "mailbox_write", map[string]any{
		"core": core, "offset_mv": 0, "plane": 0, "outcome": "accepted"})
	isp.EndWithCost(300 * sim.Nanosecond)
}

func allUnsafe(core, offsetMV int) bool { return offsetMV <= -100 }

func TestCleanRunIsQuiet(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, end)
	// One unsafe write closed well within the dwell budget.
	h.attackWrite(1*sim.Millisecond, 0, -200)
	h.intervention(1*sim.Millisecond+sim.Time(pollPeriod), 0)
	h.now = 1*sim.Millisecond + sim.Time(pollPeriod)
	h.j.Emit("attack_fault", map[string]any{"core": 0})

	rep := h.watchdog(allUnsafe).Evaluate(end)
	if !rep.OK() {
		t.Fatalf("clean run flagged:\n%s", rep.Summary())
	}
	if rep.Stats.Polls == 0 || rep.Stats.Interventions != 1 || rep.Stats.UnsafeWrites != 1 {
		t.Fatalf("stats wrong: %+v", rep.Stats)
	}
	if rep.Stats.GuardedWrites != 1 {
		t.Fatalf("guard's own write not attributed to the intervention: %+v", rep.Stats)
	}
	if rep.Stats.Faults != 1 {
		t.Fatalf("fault not counted: %+v", rep.Stats)
	}
	if !strings.Contains(rep.Summary(), "SLO OK") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestStallIsFlagged(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, 5*sim.Millisecond) // guard wedges halfway through

	rep := h.watchdog(allUnsafe).Evaluate(end)
	if rep.OK() {
		t.Fatalf("stall not flagged:\n%s", rep.Summary())
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule.Kind == KindMaxPollGap && v.Core == 0 {
			found = true
			if v.Measured < 5*sim.Millisecond {
				t.Fatalf("gap measured %v, want >= 5ms", sim.Time(v.Measured))
			}
		}
	}
	if !found {
		t.Fatalf("no max_poll_gap violation in:\n%s", rep.Summary())
	}
}

func TestUnclosedWindowAndLateIntervention(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, end)
	// Write A: closed, but only after 5 poll periods — a dwell violation.
	h.attackWrite(1*sim.Millisecond, 0, -250)
	h.intervention(1*sim.Millisecond+5*sim.Time(pollPeriod), 0)
	// Write B: never closed — a closure violation.
	h.attackWrite(8*sim.Millisecond, 0, -250)

	rep := h.watchdog(allUnsafe).Evaluate(end)
	var kinds []Kind
	for _, v := range rep.Violations {
		kinds = append(kinds, v.Rule.Kind)
	}
	want := map[Kind]bool{KindMaxUnsafeDwell: false, KindInterventionClosure: false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, got := range want {
		if !got {
			t.Errorf("missing %s violation; got %v\n%s", k, kinds, rep.Summary())
		}
	}
	if rep.Stats.UnclosedWindows != 1 {
		t.Errorf("UnclosedWindows = %d, want 1", rep.Stats.UnclosedWindows)
	}
}

func TestSafeWritesIgnored(t *testing.T) {
	h := newHarness()
	end := sim.Time(2 * sim.Millisecond)
	h.polls(0, 0, end)
	h.attackWrite(1*sim.Millisecond, 0, -50) // shallow: Unsafe says safe
	rep := h.watchdog(allUnsafe).Evaluate(end)
	if !rep.OK() || rep.Stats.UnsafeWrites != 0 {
		t.Fatalf("safe write misclassified:\n%s", rep.Summary())
	}
}

func TestNilPredicateTreatsNegativeAsUnsafe(t *testing.T) {
	h := newHarness()
	end := sim.Time(2 * sim.Millisecond)
	h.polls(0, 0, end)
	h.attackWrite(1*sim.Millisecond, 0, -10)
	rep := h.watchdog(nil).Evaluate(end)
	if rep.Stats.UnsafeWrites != 1 {
		t.Fatalf("nil predicate should flag negative offsets: %+v", rep.Stats)
	}
}

func TestFaultOutsideWindowFlagged(t *testing.T) {
	h := newHarness()
	end := sim.Time(2 * sim.Millisecond)
	h.polls(0, 0, end)
	h.now = 1 * sim.Millisecond
	h.j.Emit("attack_fault", map[string]any{"core": 0}) // no unsafe write anywhere
	rep := h.watchdog(allUnsafe).Evaluate(end)
	found := false
	for _, v := range rep.Violations {
		if v.Rule.Kind == KindInterventionClosure && strings.Contains(v.Detail, "out-of-band") {
			found = true
		}
	}
	if !found {
		t.Fatalf("uncovered fault not flagged:\n%s", rep.Summary())
	}
}

func TestTruncatedBufferClampsWindow(t *testing.T) {
	h := newHarness()
	h.tr = span.NewTracer(func() sim.Time { return h.now }, 1, 8)
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, end) // 100 polls into an 8-span buffer: 92 dropped
	rep := h.watchdog(allUnsafe).Evaluate(end)
	if !rep.Truncated {
		t.Fatal("overflowed buffer not reported as truncated")
	}
	if rep.End != 7*sim.Time(pollPeriod) {
		t.Fatalf("window end %v, want clamp to last recorded poll", rep.End)
	}
	// The silence past the horizon is truncation, not a stall.
	if !rep.OK() {
		t.Fatalf("truncation misread as violation:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "WARNING") {
		t.Fatalf("summary omits truncation warning:\n%s", rep.Summary())
	}
}

func TestEvaluateIsPure(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, 3*sim.Millisecond)
	h.attackWrite(1*sim.Millisecond, 0, -250)
	wd := h.watchdog(allUnsafe)
	a := wd.Evaluate(end)
	b := wd.Evaluate(end)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Evaluate not pure:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if n := h.j.Len(); n != 0 {
		t.Fatalf("Evaluate wrote %d journal events", n)
	}
}

func TestEmitJournal(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond)
	h.polls(0, 0, 2*sim.Millisecond) // stall
	rep := h.watchdog(allUnsafe).Evaluate(end)
	rep.EmitJournal(h.j)
	if len(h.j.OfType("slo_violation")) == 0 {
		t.Fatal("no slo_violation events")
	}
	reports := h.j.OfType("slo_report")
	if len(reports) != 1 {
		t.Fatalf("slo_report events = %d, want 1", len(reports))
	}
	if ok, _ := reports[0].Fields["ok"].(bool); ok {
		t.Fatal("slo_report claims ok on a stalled run")
	}
}

func TestPollLatencyP99(t *testing.T) {
	h := newHarness()
	end := sim.Time(200 * sim.Microsecond)
	// 50 fast polls and one pathological 10us poll: nearest-rank p99 of 51
	// samples lands on the slow one.
	for i := 0; i < 50; i++ {
		h.tr.Complete("guard", "guard_poll", sim.Time(i)*sim.Time(sim.Microsecond),
			400*sim.Nanosecond, map[string]any{"core": 0})
	}
	h.tr.Complete("guard", "guard_poll", 50*sim.Time(sim.Microsecond),
		10*sim.Microsecond, map[string]any{"core": 0})
	wd := &Watchdog{Tracer: h.tr, Rules: []Rule{{Kind: KindPollLatencyP99, Limit: 2 * sim.Microsecond}}}
	rep := wd.Evaluate(end)
	if rep.OK() {
		t.Fatalf("slow p99 not flagged: p99=%v", sim.Time(rep.Stats.PollLatencyP99))
	}
	if rep.Stats.PollLatencyP99 != 10*sim.Microsecond {
		t.Fatalf("p99 = %v, want 10us", sim.Time(rep.Stats.PollLatencyP99))
	}
}

// The energy-budget rule converts each core's attributed joules into mean
// watts over the window: under budget is quiet, over budget names the core,
// and a watchdog without an energy source skips the rule entirely.
func TestEnergyBudgetRule(t *testing.T) {
	h := newHarness()
	end := sim.Time(10 * sim.Millisecond) // window 0.01 s
	h.polls(0, 0, end)
	// Core 0: 0.4 mJ over 10 ms = 40 mW; core 1: 2 mJ = 200 mW.
	joules := []float64{0.0004, 0.002}

	wd := h.watchdog(allUnsafe)
	wd.Rules = append(DefaultRules(pollPeriod), EnergyBudgetRule(0.100))
	wd.GuardEnergyJ = func(core int) float64 { return joules[core] }
	wd.NumCores = 2
	rep := wd.Evaluate(end)
	if rep.OK() {
		t.Fatalf("200 mW over a 100 mW budget not flagged:\n%s", rep.Summary())
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Core != 1 {
		t.Fatalf("violations %+v: want exactly core 1", rep.Violations)
	}
	if rep.Violations[0].Rule.Kind != KindGuardEnergyBudget {
		t.Fatalf("wrong rule kind %v", rep.Violations[0].Rule.Kind)
	}
	if got := rep.Stats.MaxGuardPowerW; got < 0.199 || got > 0.201 {
		t.Fatalf("MaxGuardPowerW = %g, want ~0.2", got)
	}
	if !strings.Contains(rep.Summary(), "max_guard_power") {
		t.Fatalf("summary omits guard power: %s", rep.Summary())
	}
	if !strings.Contains(EnergyBudgetRule(0.100).String(), "guard_energy_budget<=0.1W") {
		t.Fatalf("rule renders as %q", EnergyBudgetRule(0.100).String())
	}

	// Raising the budget over the hottest core silences the rule.
	wd.Rules = append(DefaultRules(pollPeriod), EnergyBudgetRule(0.250))
	if rep := wd.Evaluate(end); !rep.OK() {
		t.Fatalf("under-budget run flagged:\n%s", rep.Summary())
	}

	// No energy source: the rule is skipped, not violated.
	bare := h.watchdog(allUnsafe)
	bare.Rules = append(DefaultRules(pollPeriod), EnergyBudgetRule(0.000001))
	if rep := bare.Evaluate(end); !rep.OK() {
		t.Fatalf("sourceless energy rule fired:\n%s", rep.Summary())
	}
}
