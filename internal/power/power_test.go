// External test package: cpu imports power (the platform owns an energy
// Tracker), so these tests — which build real platforms — must live outside
// package power to avoid an import cycle.
package power_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plugvolt/internal/cpu"
	"plugvolt/internal/models"
	"plugvolt/internal/msr"
	"plugvolt/internal/power"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sim"
)

func TestModelValidate(t *testing.T) {
	if err := power.DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []power.Model{
		{CeffNF: 0, Activity: 1, LeakA: 0.1, LeakVT: 0.4},
		{CeffNF: 3, Activity: -0.1, LeakA: 0.1, LeakVT: 0.4},
		{CeffNF: 3, Activity: 1.5, LeakA: 0.1, LeakVT: 0.4},
		{CeffNF: 3, Activity: 1, LeakA: -1, LeakVT: 0.4},
		{CeffNF: 3, Activity: 1, LeakA: 0.1, LeakVT: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestCalibrationPoint(t *testing.T) {
	m := power.DefaultModel()
	dyn := m.DynamicW(3.2, 1.10)
	if dyn < 12 || dyn > 14 {
		t.Fatalf("dynamic power at calibration point %v W, want ~13", dyn)
	}
	st := m.StaticW(1.10)
	if st < 1.0 || st > 2.0 {
		t.Fatalf("static power %v W, want ~1.5", st)
	}
	if m.StaticW(0) != 0 || m.StaticW(-1) != 0 {
		t.Fatal("nonpositive voltage leaked")
	}
	if tot := m.TotalW(3.2, 1.10); math.Abs(tot-dyn-st) > 1e-12 {
		t.Fatal("total != dyn + static")
	}
}

func TestModelFor(t *testing.T) {
	specs := []string{"Sky Lake", "Kaby Lake R", "Comet Lake", "unknown"}
	for _, name := range specs {
		m := power.ModelFor(name)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if power.ModelFor("unknown") != power.DefaultModel() {
		t.Fatal("unknown codename should fall back to the default model")
	}
	// The three fleet models must be distinguishable at a common point, so
	// fleet joule rollups actually reflect the model mix.
	sky := power.ModelFor("Sky Lake").TotalW(3.2, 1.10)
	kbl := power.ModelFor("Kaby Lake R").TotalW(3.2, 1.10)
	cml := power.ModelFor("Comet Lake").TotalW(3.2, 1.10)
	if !(kbl < sky && sky < cml) {
		t.Fatalf("model ordering at 3.2GHz/1.10V: kbl %v, sky %v, cml %v", kbl, sky, cml)
	}
}

// Property: power is strictly increasing in both f and V (physical sanity).
func TestQuickPowerMonotone(t *testing.T) {
	m := power.DefaultModel()
	f := func(rf, rv uint8) bool {
		freq := 0.5 + float64(rf%40)*0.1
		v := 0.6 + float64(rv%60)*0.01
		if m.TotalW(freq+0.1, v) <= m.TotalW(freq, v) {
			return false
		}
		return m.TotalW(freq, v+0.01) > m.TotalW(freq, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestUndervoltSavings(t *testing.T) {
	m := power.DefaultModel()
	// -70 mV at 3.2 GHz / 1104 mV nominal: V drops 6.3%, dynamic ~12%.
	s := m.UndervoltSavingsPct(3.2, 1104, -70)
	if s < 8 || s > 18 {
		t.Fatalf("savings %v%%, want ~12%%", s)
	}
	if z := m.UndervoltSavingsPct(3.2, 1104, 0); z != 0 {
		t.Fatalf("zero offset saved %v%%", z)
	}
	if neg := m.UndervoltSavingsPct(3.2, 1104, 50); neg >= 0 {
		t.Fatal("overvolting reported as saving")
	}
}

func TestMeterIntegratesEnergy(t *testing.T) {
	spec, err := models.SkyLake()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := power.NewMeter(power.DefaultModel(), p.Core(0), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(p.Sim); err == nil {
		t.Fatal("double start accepted")
	}
	p.Sim.RunFor(10 * sim.Millisecond)
	m.Stop()
	if m.Elapsed != 10*sim.Millisecond {
		t.Fatalf("elapsed %v", m.Elapsed)
	}
	// Constant operating point: E = P * t.
	wantW := power.DefaultModel().TotalW(p.Core(0).FreqGHz(), p.Core(0).VoltageV())
	if math.Abs(m.AverageW()-wantW) > 1e-9 {
		t.Fatalf("average %v W want %v", m.AverageW(), wantW)
	}
	wantJ := wantW * 0.010
	if math.Abs(m.EnergyJ-wantJ)/wantJ > 1e-6 {
		t.Fatalf("energy %v J want %v", m.EnergyJ, wantJ)
	}
	if m.PeakW != wantW || m.LastW() != wantW {
		t.Fatal("peak/last inconsistent at constant point")
	}
}

func TestMeterSeesUndervolt(t *testing.T) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 2)
	m, err := power.NewMeter(power.DefaultModel(), p.Core(0), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(5 * sim.Millisecond)
	baseline := m.LastW()
	if err := p.WriteOffsetViaMSR(0, -70, msr.PlaneCore); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(5 * sim.Millisecond)
	m.Stop()
	if m.LastW() >= baseline {
		t.Fatalf("undervolt did not reduce power: %v -> %v", baseline, m.LastW())
	}
	reduction := (baseline - m.LastW()) / baseline * 100
	if reduction < 5 || reduction > 20 {
		t.Fatalf("reduction %v%% implausible", reduction)
	}
}

func TestMeterValidation(t *testing.T) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 1)
	if _, err := power.NewMeter(power.Model{}, p.Core(0), sim.Microsecond); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := power.NewMeter(power.DefaultModel(), nil, sim.Microsecond); err == nil {
		t.Fatal("nil core accepted")
	}
	if _, err := power.NewMeter(power.DefaultModel(), p.Core(0), 0); err == nil {
		t.Fatal("zero period accepted")
	}
	m, _ := power.NewMeter(power.DefaultModel(), p.Core(0), sim.Microsecond)
	if m.AverageW() != 0 {
		t.Fatal("average on unstarted meter")
	}
}

func TestMeterWithIdleStates(t *testing.T) {
	spec, _ := models.SkyLake()
	p, _ := cpu.NewPlatform(spec, 3)
	gov, err := pstate.NewIdleGovernor(p.Sim, p.NumCores(), pstate.DefaultCStates())
	if err != nil {
		t.Fatal(err)
	}
	m, err := power.NewMeter(power.DefaultModel(), p.Core(0), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Idle = gov
	if err := m.Start(p.Sim); err != nil {
		t.Fatal(err)
	}
	// 5 ms awake, then 5 ms in C6 (5% power).
	p.Sim.RunFor(5 * sim.Millisecond)
	awakeW := m.LastW()
	if _, err := gov.Enter(0, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.Sim.RunFor(5 * sim.Millisecond)
	idleW := m.LastW()
	if _, err := gov.Exit(0); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	if idleW >= awakeW*0.10 {
		t.Fatalf("C6 power %v not ~5%% of awake %v", idleW, awakeW)
	}
	// Energy is between all-idle and all-awake bounds.
	span := m.Elapsed.Seconds()
	if m.EnergyJ >= awakeW*span || m.EnergyJ <= idleW*span {
		t.Fatalf("energy %v outside (%v, %v)", m.EnergyJ, idleW*span, awakeW*span)
	}
}
