package power_test

import (
	"math"
	"testing"

	"plugvolt/internal/power"
	"plugvolt/internal/sim"
)

// trackerRig is a hand-cranked clock plus a mutable per-core operating
// point, standing in for the platform's commanded-point adapter.
type trackerRig struct {
	now  sim.Time
	freq []float64
	volt []float64
}

func (r *trackerRig) clock() sim.Time { return r.now }

func (r *trackerRig) point(core int) (float64, float64) {
	return r.freq[core], r.volt[core]
}

func newRig(cores int, freqGHz, voltV float64) *trackerRig {
	r := &trackerRig{freq: make([]float64, cores), volt: make([]float64, cores)}
	for i := range r.freq {
		r.freq[i] = freqGHz
		r.volt[i] = voltV
	}
	return r
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b))
}

// A constant operating point integrates to exactly P·t, and the package
// total adds the fixed uncore draw on top of the core planes.
func TestTrackerConstantPoint(t *testing.T) {
	rig := newRig(2, 3.2, 1.10)
	m := power.DefaultModel()
	tr, err := power.NewTracker(m, 2, rig.clock, rig.point)
	if err != nil {
		t.Fatal(err)
	}
	rig.now = 500 * sim.Millisecond
	wantCore := m.TotalW(3.2, 1.10) * 0.5
	for c := 0; c < 2; c++ {
		if got := tr.CoreEnergyJ(c); !approx(got, wantCore) {
			t.Errorf("core %d energy %g J, want %g J", c, got, wantCore)
		}
	}
	if got := tr.CoresEnergyJ(); !approx(got, 2*wantCore) {
		t.Errorf("cores energy %g J, want %g J", got, 2*wantCore)
	}
	wantPkg := 2*wantCore + tr.UncoreW*0.5
	if got := tr.PackageEnergyJ(); !approx(got, wantPkg) {
		t.Errorf("package energy %g J, want %g J", got, wantPkg)
	}
}

// Reads are pure: interleaving any number of mid-segment reads must leave
// the committed totals bit-identical to an unread twin — this is what lets
// live observability (RAPL reads, /metrics scrapes) coexist with the fleet
// determinism contract.
func TestTrackerReadsArePure(t *testing.T) {
	run := func(reads int) float64 {
		rig := newRig(1, 3.2, 1.10)
		tr, err := power.NewTracker(power.DefaultModel(), 1, rig.clock, rig.point)
		if err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 4; step++ {
			rig.now += 137 * sim.Microsecond
			for i := 0; i < reads*step; i++ {
				_ = tr.CoreEnergyJ(0)
				_ = tr.PackageEnergyJ()
			}
			rig.volt[0] -= 0.005
			tr.Touch(0)
		}
		rig.now += 50 * sim.Microsecond
		return tr.CoreEnergyJ(0)
	}
	quiet, noisy := run(0), run(7)
	if quiet != noisy {
		t.Errorf("mid-segment reads changed the integral: %v != %v", noisy, quiet)
	}
}

// A point change bills the old power up to the Touch instant and the new
// power after it — piecewise-constant, no smearing.
func TestTrackerPiecewiseSegments(t *testing.T) {
	rig := newRig(1, 3.2, 1.10)
	m := power.DefaultModel()
	tr, err := power.NewTracker(m, 1, rig.clock, rig.point)
	if err != nil {
		t.Fatal(err)
	}
	rig.now = 100 * sim.Millisecond
	rig.freq[0], rig.volt[0] = 1.2, 0.85
	tr.Touch(0)
	rig.now = 300 * sim.Millisecond
	want := m.TotalW(3.2, 1.10)*0.1 + m.TotalW(1.2, 0.85)*0.2
	if got := tr.CoreEnergyJ(0); !approx(got, want) {
		t.Errorf("two-segment energy %g J, want %g J", got, want)
	}
	// Undervolting at fixed frequency strictly reduces the bill relative to
	// the nominal voltage over the same window.
	nom := newRig(1, 3.2, 1.10)
	trN, err := power.NewTracker(m, 1, nom.clock, nom.point)
	if err != nil {
		t.Fatal(err)
	}
	nom.now = 300 * sim.Millisecond
	deep := newRig(1, 3.2, 1.10-0.055)
	trU, err := power.NewTracker(m, 1, deep.clock, deep.point)
	if err != nil {
		t.Fatal(err)
	}
	deep.now = 300 * sim.Millisecond
	if trU.CoreEnergyJ(0) >= trN.CoreEnergyJ(0) {
		t.Error("undervolted core did not consume less energy than nominal")
	}
}

// Blackout opens a zero-watt segment: reboot downtime costs nothing until
// the next Touch resamples the live point.
func TestTrackerBlackout(t *testing.T) {
	rig := newRig(1, 3.2, 1.10)
	m := power.DefaultModel()
	tr, err := power.NewTracker(m, 1, rig.clock, rig.point)
	if err != nil {
		t.Fatal(err)
	}
	rig.now = 10 * sim.Millisecond
	tr.Blackout(0)
	rig.now = 40 * sim.Millisecond // 30 ms dark
	tr.Touch(0)
	rig.now = 50 * sim.Millisecond
	want := m.TotalW(3.2, 1.10) * (0.010 + 0.010)
	if got := tr.CoreEnergyJ(0); !approx(got, want) {
		t.Errorf("energy across blackout %g J, want %g J (dark window billed)", got, want)
	}
	if w := tr.CoreW(0); !approx(w, m.TotalW(3.2, 1.10)) {
		t.Errorf("post-blackout power %g W, want live point", w)
	}
}

func TestTrackerValidates(t *testing.T) {
	rig := newRig(1, 3.2, 1.10)
	if _, err := power.NewTracker(power.Model{CeffNF: -1}, 1, rig.clock, rig.point); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := power.NewTracker(power.DefaultModel(), 0, rig.clock, rig.point); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := power.NewTracker(power.DefaultModel(), 1, nil, rig.point); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := power.NewTracker(power.DefaultModel(), 1, rig.clock, nil); err == nil {
		t.Error("nil point fn accepted")
	}
}
