package power

import (
	"errors"

	"plugvolt/internal/flight"
	"plugvolt/internal/sim"
)

// PointFn reports a core's *commanded* operating point: the frequency of
// the most recently commanded P-state ratio and the rail target voltage
// (nominal + OC-mailbox offset). The Tracker deliberately bills the
// commanded point rather than the mid-slew regulator output: commanded
// power is piecewise-constant between transitions, which is what makes
// lazy exact integration possible, and it is also what RAPL firmware
// effectively does (energy models keyed off the requested P-state).
type PointFn func(core int) (freqGHz, voltV float64)

// DefaultUncoreW is the constant uncore/package-infrastructure power that
// separates MSR_PKG_ENERGY_STATUS from MSR_PP0_ENERGY_STATUS.
const DefaultUncoreW = 2.0

// coreMeter is one core's integration state: energy accrued through lastT,
// and the power in effect since then.
type coreMeter struct {
	lastT   sim.Time
	lastW   float64
	energyJ float64
}

// Tracker is the deterministic per-core energy integrator: dynamic CV²f
// plus leakage, integrated over the virtual clock as a piecewise-constant
// function of the commanded operating point.
//
// Determinism contract: Touch/Blackout mutate state and must be called at
// exactly the same virtual instants on every replay of a run (they are —
// the only callers are the cpu package's retarget and reboot paths, which
// are themselves event-driven). Every read (CoreEnergyJ, CoresEnergyJ,
// PackageEnergyJ, PriceW) is PURE: it extrapolates the open segment to the
// current virtual time without closing it, so a live /metrics or RAPL MSR
// read mid-run can never regroup the floating-point accrual and break
// byte-identity of the final totals across -workers/-batch/-epochs splits.
type Tracker struct {
	model Model
	now   func() sim.Time
	point PointFn
	cores []coreMeter

	// UncoreW is billed on top of the per-core integrals in
	// PackageEnergyJ (PKG = PP0 + uncore), constant while powered.
	UncoreW float64

	// flight, when set, records every segment boundary (Touch/Blackout)
	// with the newly billed power — the energy-segment stream an incident
	// bundle correlates against P-state retargets and mailbox writes.
	// Observation only: it never changes what is billed.
	flight *flight.Recorder
}

// SetFlightRecorder attaches (nil detaches) the flight recorder observing
// segment boundaries.
func (t *Tracker) SetFlightRecorder(rec *flight.Recorder) { t.flight = rec }

// NewTracker builds a tracker over numCores cores. The clock and point
// functions must be non-nil; each core's first segment opens at now().
func NewTracker(model Model, numCores int, now func() sim.Time, point PointFn) (*Tracker, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if numCores <= 0 {
		return nil, errors.New("power: tracker needs at least one core")
	}
	if now == nil || point == nil {
		return nil, errors.New("power: tracker needs clock and point functions")
	}
	t := &Tracker{
		model:   model,
		now:     now,
		point:   point,
		cores:   make([]coreMeter, numCores),
		UncoreW: DefaultUncoreW,
	}
	for i := range t.cores {
		t.cores[i].lastT = now()
		t.cores[i].lastW = t.PriceW(i)
	}
	return t, nil
}

// Model returns the power model the tracker integrates.
func (t *Tracker) Model() Model { return t.model }

// NumCores returns the tracked core count.
func (t *Tracker) NumCores() int { return len(t.cores) }

// PriceW returns the live commanded-point power of a core in watts — the
// price the kernel cost-attribution path multiplies by charged CPU time.
// Pure; allocation-free.
func (t *Tracker) PriceW(core int) float64 {
	f, v := t.point(core)
	return t.model.TotalW(f, v)
}

// accrue closes the open segment at the current instant.
func (t *Tracker) accrue(core int) *coreMeter {
	m := &t.cores[core]
	if nw := t.now(); nw > m.lastT {
		m.energyJ += m.lastW * sim.Duration(nw-m.lastT).Seconds()
		m.lastT = nw
	}
	return m
}

// Touch must be called at every commanded operating-point transition of a
// core: it bills the elapsed segment at the old power and re-samples the
// commanded point for the next one.
func (t *Tracker) Touch(core int) {
	m := t.accrue(core)
	m.lastW = t.PriceW(core)
	t.flight.EnergySegment(core, m.lastW)
}

// TouchAll touches every core (index order, for deterministic rounding).
func (t *Tracker) TouchAll() {
	for i := range t.cores {
		t.Touch(i)
	}
}

// Blackout closes a core's segment and bills subsequent time at zero watts
// until the next Touch — the machine-off span of a crash reboot.
func (t *Tracker) Blackout(core int) {
	m := t.accrue(core)
	m.lastW = 0
	t.flight.EnergySegment(core, 0)
}

// CoreW returns the power currently billed to a core.
func (t *Tracker) CoreW(core int) float64 { return t.cores[core].lastW }

// CoreEnergyJ returns a core's integrated energy through the current
// virtual instant. Pure: the open segment is extrapolated, not closed.
func (t *Tracker) CoreEnergyJ(core int) float64 {
	m := &t.cores[core]
	e := m.energyJ
	if nw := t.now(); nw > m.lastT {
		e += m.lastW * sim.Duration(nw-m.lastT).Seconds()
	}
	return e
}

// CoresEnergyJ returns the sum over cores — the PP0 (core power plane)
// energy that backs MSR_PP0_ENERGY_STATUS. Pure.
func (t *Tracker) CoresEnergyJ() float64 {
	var e float64
	for i := range t.cores {
		e += t.CoreEnergyJ(i)
	}
	return e
}

// PackageEnergyJ returns PP0 plus the constant uncore draw — the package
// energy that backs MSR_PKG_ENERGY_STATUS. Pure.
func (t *Tracker) PackageEnergyJ() float64 {
	return t.CoresEnergyJ() + t.UncoreW*t.now().Seconds()
}
