// Package power models CPU power draw — the reason DVFS interfaces exist
// at all (paper Sec. 1: "below-par energy management decisions increase
// power consumption... direct impact on battery life").
//
// Dynamic power follows the classic CV²f law; static power is a
// leakage term super-linear in supply voltage. The Meter integrates power
// over a core's live operating point in virtual time, so experiments can
// put a number on the paper's availability argument: how much energy a
// benign undervolt saves under the polling countermeasure versus the
// access-control lockdown that forbids it.
package power

import (
	"errors"
	"math"

	"plugvolt/internal/sim"
)

// Model holds one core's power parameters.
type Model struct {
	// CeffNF is the effective switched capacitance in nanofarads:
	// Pdyn = Ceff * f * V^2 (W, with f in GHz and V in volts, Ceff in nF).
	CeffNF float64
	// Activity scales dynamic power by workload intensity [0, 1].
	Activity float64
	// LeakA is the leakage current scale (A) and LeakVT the exponential
	// slope (V): Pstat = LeakA * V * exp(V / LeakVT).
	LeakA  float64
	LeakVT float64
}

// DefaultModel is calibrated to a desktop Sky Lake core: ~13 W dynamic at
// 3.2 GHz / 1.10 V full activity, ~1.5 W static at 1.10 V.
func DefaultModel() Model {
	return Model{
		CeffNF:   3.36,
		Activity: 1.0,
		LeakA:    0.085,
		LeakVT:   0.40,
	}
}

// Validate checks physicality.
func (m Model) Validate() error {
	if m.CeffNF <= 0 {
		return errors.New("power: Ceff must be positive")
	}
	if m.Activity < 0 || m.Activity > 1 {
		return errors.New("power: activity outside [0, 1]")
	}
	if m.LeakA < 0 || m.LeakVT <= 0 {
		return errors.New("power: bad leakage parameters")
	}
	return nil
}

// DynamicW returns the dynamic power at an operating point.
func (m Model) DynamicW(freqGHz, voltV float64) float64 {
	return m.CeffNF * m.Activity * freqGHz * voltV * voltV
}

// StaticW returns the leakage power at a supply voltage.
func (m Model) StaticW(voltV float64) float64 {
	if voltV <= 0 {
		return 0
	}
	return m.LeakA * voltV * math.Exp(voltV/m.LeakVT)
}

// TotalW returns dynamic + static power.
func (m Model) TotalW(freqGHz, voltV float64) float64 {
	return m.DynamicW(freqGHz, voltV) + m.StaticW(voltV)
}

// UndervoltSavingsPct returns the percentage power reduction from applying
// offsetMV at a fixed frequency relative to the nominal voltage nomMV.
func (m Model) UndervoltSavingsPct(freqGHz, nomMV float64, offsetMV int) float64 {
	base := m.TotalW(freqGHz, nomMV/1000)
	under := m.TotalW(freqGHz, (nomMV+float64(offsetMV))/1000)
	if base == 0 {
		return 0
	}
	return (base - under) / base * 100
}

// ModelFor returns the power model calibrated for a CPU model codename
// (models.Spec.Codename). Unknown codenames get the Sky Lake default, so
// mixed fleets always have a physical model per machine.
func ModelFor(codename string) Model {
	switch codename {
	case "Kaby Lake R":
		// 14nm+ mobile-derived part: lower switched capacitance, slightly
		// less leakage than the desktop calibration.
		return Model{CeffNF: 2.90, Activity: 1.0, LeakA: 0.072, LeakVT: 0.40}
	case "Comet Lake":
		// Late 14nm desktop refresh: clocked harder, leakier.
		return Model{CeffNF: 3.60, Activity: 1.0, LeakA: 0.098, LeakVT: 0.41}
	default:
		return DefaultModel()
	}
}

// IdleScaler reports the idle-state power factor for a core (1.0 = C0);
// *pstate.IdleGovernor satisfies it.
type IdleScaler interface {
	PowerFactor(core int) float64
}

// OperatingPoint is the live electrical view of one core that a Meter
// samples; *cpu.Core implements it. Keeping it an interface here is what
// lets the cpu package own a power.Tracker without an import cycle.
type OperatingPoint interface {
	FreqGHz() float64
	VoltageV() float64
	Index() int
}

// Meter integrates a live core's power over virtual time.
type Meter struct {
	model  Model
	core   OperatingPoint
	period sim.Duration
	ticker *sim.Ticker

	// Idle, when set, scales each sample by the core's resident C-state
	// power factor, so sleep time is billed at idle power.
	Idle IdleScaler

	// EnergyJ is the accumulated energy in joules.
	EnergyJ float64
	// PeakW and lastW track instantaneous power.
	PeakW float64
	lastW float64
	// Elapsed is the metered virtual time.
	Elapsed sim.Duration
}

// NewMeter builds a meter sampling the core every period.
func NewMeter(model Model, c OperatingPoint, period sim.Duration) (*Meter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, errors.New("power: nil core")
	}
	if period <= 0 {
		return nil, errors.New("power: period must be positive")
	}
	return &Meter{model: model, core: c, period: period}, nil
}

// Start begins metering.
func (m *Meter) Start(s *sim.Simulator) error {
	if m.ticker != nil {
		return errors.New("power: meter already started")
	}
	m.ticker = s.Every(m.period, func() {
		w := m.model.TotalW(m.core.FreqGHz(), m.core.VoltageV())
		if m.Idle != nil {
			w *= m.Idle.PowerFactor(m.core.Index())
		}
		m.lastW = w
		if w > m.PeakW {
			m.PeakW = w
		}
		m.EnergyJ += w * m.period.Seconds()
		m.Elapsed += m.period
	})
	return nil
}

// Stop halts metering.
func (m *Meter) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// AverageW returns the mean power over the metered span.
func (m *Meter) AverageW() float64 {
	if m.Elapsed == 0 {
		return 0
	}
	return m.EnergyJ / m.Elapsed.Seconds()
}

// LastW returns the most recent instantaneous sample.
func (m *Meter) LastW() float64 { return m.lastW }
