package vr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plugvolt/internal/sim"
)

func newRail(t *testing.T, s *sim.Simulator, initial float64) *Regulator {
	t.Helper()
	r, err := New(s, Config{CommandLatency: 10 * sim.Microsecond, SlewMVPerUS: 5, InitialMV: initial})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInvalidConfig(t *testing.T) {
	s := sim.New(1)
	if _, err := New(s, Config{SlewMVPerUS: 0}); err == nil {
		t.Fatal("zero slew accepted")
	}
	if _, err := New(s, Config{SlewMVPerUS: 5, CommandLatency: -1}); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestInitialOutput(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 1100)
	if r.OutputMV() != 1100 {
		t.Fatalf("initial output %v", r.OutputMV())
	}
	if !r.Settled() {
		t.Fatal("fresh rail not settled")
	}
}

func TestCommandLatencyHoldsOutput(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 1100)
	r.SetTarget(1000)
	s.RunUntil(9 * sim.Microsecond) // still inside command latency
	if r.OutputMV() != 1100 {
		t.Fatalf("output moved during command latency: %v", r.OutputMV())
	}
}

func TestSlewDown(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 1100)
	r.SetTarget(1000) // 100 mV at 5 mV/us = 20 us after 10 us latency
	s.RunUntil(20 * sim.Microsecond)
	want := 1100.0 - 5*10 // 10 us of motion
	if math.Abs(r.OutputMV()-want) > 1e-9 {
		t.Fatalf("mid-slew output %v, want %v", r.OutputMV(), want)
	}
	s.RunUntil(30 * sim.Microsecond)
	if r.OutputMV() != 1000 {
		t.Fatalf("final output %v", r.OutputMV())
	}
	if !r.Settled() {
		t.Fatal("not settled at target")
	}
	if got := r.SettleTime(); got != 30*sim.Microsecond {
		t.Fatalf("SettleTime = %v, want 30us", got)
	}
}

func TestSlewUp(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 900)
	r.SetTarget(950)
	s.RunUntil(15 * sim.Microsecond)
	want := 900.0 + 5*5
	if math.Abs(r.OutputMV()-want) > 1e-9 {
		t.Fatalf("mid up-slew %v want %v", r.OutputMV(), want)
	}
	s.RunUntil(1 * sim.Millisecond)
	if r.OutputMV() != 950 {
		t.Fatalf("final %v", r.OutputMV())
	}
}

func TestPreemptingCommandStartsFromCurrentOutput(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 1100)
	r.SetTarget(900)
	s.RunUntil(20 * sim.Microsecond) // output now 1050
	r.SetTarget(1100)                // reverse mid-flight
	got := r.OutputMV()
	if math.Abs(got-1050) > 1e-9 {
		t.Fatalf("pre-empt point %v, want 1050", got)
	}
	s.RunUntil(21 * sim.Microsecond) // inside new command latency
	if math.Abs(r.OutputMV()-1050) > 1e-9 {
		t.Fatal("moved during new command latency")
	}
	s.RunUntil(50 * sim.Microsecond)
	if r.OutputMV() != 1100 {
		t.Fatalf("reversed target not reached: %v", r.OutputMV())
	}
	if r.Commands != 2 {
		t.Fatalf("Commands = %d", r.Commands)
	}
}

func TestTurnaroundFor(t *testing.T) {
	s := sim.New(1)
	r := newRail(t, s, 1100)
	// 100 mV away at 5 mV/us = 20 us + 10 us latency.
	if got := r.TurnaroundFor(1000); got != 30*sim.Microsecond {
		t.Fatalf("TurnaroundFor = %v, want 30us", got)
	}
	if got := r.TurnaroundFor(1100); got != 10*sim.Microsecond {
		t.Fatalf("TurnaroundFor(no-op) = %v, want latency only", got)
	}
}

// Property: the output never overshoots the segment between the pre-empt
// point and the target, and always settles exactly at the target.
func TestQuickNoOvershoot(t *testing.T) {
	f := func(rawInit, rawTarget uint16, rawWait uint8) bool {
		s := sim.New(2)
		init := 800 + float64(rawInit%500)
		target := 600 + float64(rawTarget%700)
		r, err := New(s, DefaultConfig(init))
		if err != nil {
			return false
		}
		r.SetTarget(target)
		lo, hi := math.Min(init, target), math.Max(init, target)
		for i := 0; i < 10; i++ {
			s.RunFor(sim.Duration(1+rawWait%50) * sim.Microsecond)
			v := r.OutputMV()
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		s.RunUntil(r.SettleTime() + sim.Microsecond)
		return r.OutputMV() == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOutputMV(b *testing.B) {
	s := sim.New(1)
	r, _ := New(s, DefaultConfig(1100))
	r.SetTarget(900)
	s.RunUntil(15 * sim.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.OutputMV()
	}
}
