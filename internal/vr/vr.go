// Package vr models the SVID voltage regulator that actually applies the
// voltage selected by the P-state machinery plus the OC-mailbox offset.
//
// Two properties matter for the paper's turnaround-time analysis (Sec. 5):
//
//  1. a wrmsr to 0x150 does not change the core voltage instantly — the
//     regulator has a command latency and then slews toward the target at a
//     finite rate (mV/us), so "the delay between a successful write to MSR
//     0x150 and the actual change in voltage" is non-zero;
//  2. the voltage is a continuous function of time, so a polling defense
//     can observe the system mid-transition.
package vr

import (
	"fmt"

	"plugvolt/internal/sim"
)

// Config sets the regulator's dynamic behaviour.
type Config struct {
	// CommandLatency is the delay between receiving a target command (SVID
	// packet) and the output starting to move.
	CommandLatency sim.Duration
	// SlewMVPerUS is the output slew rate in millivolts per microsecond.
	SlewMVPerUS float64
	// InitialMV is the output voltage at simulation start.
	InitialMV float64
}

// DefaultConfig matches the behaviour Plundervolt measured for OC-mailbox
// voltage transitions: the offset takes effect over several hundred
// microseconds ("the system takes some time for the scaled voltage to
// apply"), here modelled as a 20 us command turnaround plus a 0.5 mV/us
// slew (a 250 mV undervolt lands after ~520 us). This slow descent is what
// gives a polling defense its race-winning window.
func DefaultConfig(initialMV float64) Config {
	return Config{
		CommandLatency: 20 * sim.Microsecond,
		SlewMVPerUS:    0.5,
		InitialMV:      initialMV,
	}
}

// Regulator is one voltage rail (one plane).
type Regulator struct {
	simr *sim.Simulator
	cfg  Config

	// segment describing the in-flight transition: output moves linearly
	// from fromMV at start toward targetMV at SlewMVPerUS.
	fromMV   float64
	targetMV float64
	startAt  sim.Time // when motion begins (command time + latency)

	// Commands counts accepted voltage commands.
	Commands uint64
}

// New builds a regulator on the given simulator.
func New(s *sim.Simulator, cfg Config) (*Regulator, error) {
	if cfg.SlewMVPerUS <= 0 {
		return nil, fmt.Errorf("vr: slew rate must be positive, got %v", cfg.SlewMVPerUS)
	}
	if cfg.CommandLatency < 0 {
		return nil, fmt.Errorf("vr: negative command latency %v", cfg.CommandLatency)
	}
	return &Regulator{
		simr:     s,
		cfg:      cfg,
		fromMV:   cfg.InitialMV,
		targetMV: cfg.InitialMV,
		startAt:  0,
	}, nil
}

// SetTarget commands the rail to targetMV. The output starts moving after
// the command latency and slews linearly. A new command pre-empts an
// in-flight transition from the output's current position.
func (r *Regulator) SetTarget(targetMV float64) {
	now := r.simr.Now()
	r.fromMV = r.outputAt(now)
	r.targetMV = targetMV
	r.startAt = now + r.cfg.CommandLatency
	r.Commands++
}

// Target returns the most recently commanded voltage.
func (r *Regulator) Target() float64 { return r.targetMV }

// OutputMV returns the rail voltage now.
func (r *Regulator) OutputMV() float64 { return r.outputAt(r.simr.Now()) }

// outputAt evaluates the piecewise-linear transition at time t.
func (r *Regulator) outputAt(t sim.Time) float64 {
	if t <= r.startAt {
		return r.fromMV
	}
	elapsedUS := float64(t-r.startAt) / float64(sim.Microsecond)
	delta := r.targetMV - r.fromMV
	moved := r.cfg.SlewMVPerUS * elapsedUS
	if delta < 0 {
		if -delta <= moved {
			return r.targetMV
		}
		return r.fromMV - moved
	}
	if delta <= moved {
		return r.targetMV
	}
	return r.fromMV + moved
}

// Settled reports whether the output has reached the commanded target.
func (r *Regulator) Settled() bool {
	return r.OutputMV() == r.targetMV
}

// SettleTime returns the absolute virtual time at which the current
// transition completes (equals Now or earlier if already settled).
func (r *Regulator) SettleTime() sim.Time {
	delta := r.targetMV - r.fromMV
	if delta < 0 {
		delta = -delta
	}
	us := delta / r.cfg.SlewMVPerUS
	return r.startAt + sim.Duration(us*float64(sim.Microsecond))
}

// TurnaroundFor returns the total duration from a command issued now until
// the output would reach targetMV — the regulator half of the paper's
// countermeasure turnaround time.
func (r *Regulator) TurnaroundFor(targetMV float64) sim.Duration {
	delta := targetMV - r.OutputMV()
	if delta < 0 {
		delta = -delta
	}
	us := delta / r.cfg.SlewMVPerUS
	return r.cfg.CommandLatency + sim.Duration(us*float64(sim.Microsecond))
}
