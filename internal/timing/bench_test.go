package timing

import "testing"

// benchCircuit is a six-path circuit shaped like the calibrated model
// circuits (five instruction classes plus control).
func benchCircuit() *Circuit {
	c := &Circuit{
		Tech:          testTech(),
		EpsPS:         15,
		JitterSigmaPS: 4,
		Paths: []Path{
			{Name: "imul", SrcDepth: 0.12, PropDepth: 0.88, SetupPS: 20},
			{Name: "aesenc", SrcDepth: 0.115, PropDepth: 0.845, SetupPS: 20},
			{Name: "fma", SrcDepth: 0.113, PropDepth: 0.827, SetupPS: 20},
			{Name: "load", SrcDepth: 0.094, PropDepth: 0.686, SetupPS: 20},
			{Name: "alu", SrcDepth: 0.07, PropDepth: 0.51, SetupPS: 20},
			{Name: "control", SrcDepth: 0.11, PropDepth: 0.81, SetupPS: 20, Control: true},
		},
	}
	c.Prepare()
	return c
}

// BenchmarkWorstSlackGrid sweeps WorstSlack over a frequency x voltage grid
// sized like one characterization row window: 29 frequencies by 64 offsets,
// revisiting the same quantized operating points the way Algorithm 2 does.
// This is the timing model's contribution to the Fig. 2 inner loop.
func BenchmarkWorstSlackGrid(b *testing.B) {
	c := benchCircuit()
	freqs := make([]float64, 29)
	for i := range freqs {
		freqs[i] = 0.8 + float64(i)*0.1
	}
	volts := make([]float64, 64)
	for i := range volts {
		volts[i] = 1.17 - float64(i)*0.005
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range freqs {
			for _, v := range volts {
				a, err := c.WorstSlack(f, v)
				if err != nil {
					b.Fatal(err)
				}
				c.FaultProbability(a)
			}
		}
	}
}
